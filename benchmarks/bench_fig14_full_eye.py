"""Fig 14 — simulated eye of the I/O interface @ 10 Gb/s, PRBS 2^7-1.

Paper series: (a) 4 mV pp input -> 250 mV output; (b) 1.8 V pp input ->
250 mV output.  The point is the 40 dB input dynamic range: the
limiting receiver produces the same clean full-swing eye at both
extremes.

Reproduced: output eye measurements at both input swings (plus a
mid-range point), with ASCII eye renderings archived.
"""

from conftest import run_once
from repro.analysis import EyeDiagram
from repro.core import build_input_interface
from repro.reporting import format_table, render_eye
from repro.signals import bits_to_nrz, prbs7

BIT_RATE = 10e9
SWEEP_VPP = (0.004, 0.1, 1.8)


def stimulus(vpp):
    return bits_to_nrz(prbs7(300), BIT_RATE, amplitude=vpp,
                       samples_per_bit=16)


def measure_all():
    rx = build_input_interface()
    results = {}
    for vpp in SWEEP_VPP:
        out = rx.process(stimulus(vpp))
        eye = EyeDiagram(out, BIT_RATE, skip_ui=16)
        results[vpp] = (eye, eye.measure())
    return results


def test_fig14_eye_across_dynamic_range(benchmark, save_report):
    results = run_once(benchmark, measure_all)
    rows = []
    art = []
    for vpp, (eye, m) in results.items():
        rows.append({
            "input (Vpp)": vpp,
            "eye height (mV)": m.eye_height * 1e3,
            "eye amplitude (mV)": m.eye_amplitude * 1e3,
            "eye width (UI)": m.eye_width_ui,
            "jitter pp (ps)": m.jitter_pp * 1e12,
            "Q": m.q_factor,
        })
        label = "a" if vpp == 0.004 else ("b" if vpp == 1.8 else "mid")
        art.append(render_eye(
            eye, title=f"Fig 14({label}) input {vpp * 1e3:g} mVpp"
        ))
    save_report("fig14_full_interface_eyes",
                format_table(rows) + "\n\n" + "\n\n".join(art))

    m_4mv = results[0.004][1]
    m_1v8 = results[1.8][1]
    # Both extremes give open, full-swing eyes (the paper's claim).
    for m in (m_4mv, m_1v8):
        assert m.is_open
        assert m.eye_width_ui > 0.7
        # ~250 mV limiting amplitude -> ~500 mV differential eye.
        assert 0.3 < m.eye_amplitude < 0.6


def test_fig14_output_swing_independent_of_input(benchmark):
    results = run_once(benchmark, measure_all)
    amplitudes = [m.eye_amplitude for _, m in results.values()]
    # 4 mV to 1.8 V input (53 dB range): output amplitude within +-20 %.
    assert max(amplitudes) / min(amplitudes) < 1.45
