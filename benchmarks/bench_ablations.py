"""Design-choice ablations (DESIGN.md section 4, last row).

The paper's three wide-band techniques are each claimed to be load-
bearing.  These benches knock each one out of the default input
interface and measure what it costs:

* active feedback off        -> bandwidth collapses;
* negative Miller cap off    -> input poles drop, bandwidth falls;
* offset cancellation off    -> a realistic mismatch saturates the LA;
* all wideband tricks off    -> the interface no longer does 10 Gb/s.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.analysis import EyeDiagram
from repro.core import build_input_interface
from repro.reporting import format_table
from repro.signals import bits_to_nrz, prbs7

BIT_RATE = 10e9


def variants():
    base = build_input_interface()
    no_feedback = base.limiting_amplifier.without_feedback()
    no_miller = base.limiting_amplifier.without_neg_miller()
    import dataclasses

    return {
        "full design": base,
        "no active feedback": dataclasses.replace(
            base, limiting_amplifier=no_feedback
        ),
        "no negative Miller": dataclasses.replace(
            base, limiting_amplifier=no_miller
        ),
        "no feedback + no Miller": dataclasses.replace(
            base,
            limiting_amplifier=no_feedback.without_neg_miller(),
        ),
    }


def test_ablation_bandwidth_table(benchmark, save_report):
    def run():
        rows = []
        for name, rx in variants().items():
            rows.append({
                "variant": name,
                "DC gain (dB)": rx.dc_gain_db(),
                "BW (GHz)": rx.bandwidth_3db() / 1e9,
            })
        return rows

    rows = run_once(benchmark, run)
    save_report("ablation_bandwidth", format_table(rows))
    by_name = {row["variant"]: row for row in rows}
    full_bw = by_name["full design"]["BW (GHz)"]
    assert by_name["no active feedback"]["BW (GHz)"] < 0.8 * full_bw
    assert by_name["no negative Miller"]["BW (GHz)"] < full_bw
    assert by_name["no feedback + no Miller"]["BW (GHz)"] \
        < by_name["no active feedback"]["BW (GHz)"]
    # DC gain is technique-independent (the techniques buy bandwidth).
    gains = [row["DC gain (dB)"] for row in rows]
    assert max(gains) - min(gains) < 1.0


def test_ablation_eye_at_10gbps(benchmark, save_report):
    def run():
        wave = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=0.05,
                           samples_per_bit=16)
        rows = []
        for name, rx in variants().items():
            m = EyeDiagram.measure_waveform(rx.process(wave), BIT_RATE,
                                            skip_ui=16)
            rows.append({
                "variant": name,
                "eye width (UI)": m.eye_width_ui,
                "jitter pp (ps)": m.jitter_pp * 1e12,
            })
        return rows

    rows = run_once(benchmark, run)
    save_report("ablation_eye", format_table(rows))
    by_name = {row["variant"]: row for row in rows}
    assert by_name["full design"]["eye width (UI)"] \
        >= by_name["no feedback + no Miller"]["eye width (UI)"]


def test_ablation_offset_cancellation(benchmark, save_report):
    """Fig 8's motivation: with 5 mV of input mismatch and 35+ dB of
    gain, the uncancelled offset exceeds the entire output swing; the
    loop reduces it to a small fraction."""
    def run():
        la = build_input_interface().limiting_amplifier.with_offset(5e-3)
        return (la.uncancelled_output_offset(),
                la.residual_output_offset(), la.output_swing)

    uncancelled, residual, swing = run_once(benchmark, run)
    save_report("ablation_offset", format_table([{
        "input offset (mV)": 5.0,
        "uncancelled output offset (mV)": uncancelled * 1e3,
        "with loop (mV)": residual * 1e3,
        "output swing (mV)": swing * 1e3,
    }]))
    assert uncancelled > swing
    assert residual < 0.05 * swing


def test_ablation_duty_cycle_distortion(benchmark, save_report):
    """Offset-induced DCD at the output, with and without the loop."""
    from repro.core import duty_cycle_distortion

    def run():
        la = build_input_interface().limiting_amplifier.with_offset(5e-3)
        swing = la.output_swing
        rise = 25e-12
        with_loop = duty_cycle_distortion(
            la.residual_output_offset(), swing, rise, BIT_RATE
        )
        capped_offset = min(la.uncancelled_output_offset(), 0.9 * swing)
        without_loop = duty_cycle_distortion(
            capped_offset, swing, rise, BIT_RATE
        )
        return with_loop, without_loop

    with_loop, without_loop = run_once(benchmark, run)
    save_report("ablation_dcd", format_table([{
        "DCD with loop (%UI)": with_loop * 100,
        "DCD without loop (%UI)": without_loop * 100,
    }]))
    assert with_loop < 0.1 * without_loop
