"""The batched closed-loop CDR engine vs the serial per-scenario loop.

PR 1 stopped batching at the analog front end; this bench pins the
contract for the last serial layers.  A ≥500-scenario study — one
jittered PRBS pattern per scenario, each with its own noise draw — is
recovered twice:

* **batched**: the CDR stage dispatch (``repro.link.stage(cdr)``)
  advances all N bang-bang loops together, one bit-step at a time, with
  vectorized interpolation sampling, vectorized Alexander votes and
  per-row phase/integral/slip state;
* **serial**: :meth:`~repro.cdr.BangBangCdr.recover` per scenario — the
  reference loop.

Acceptance: the batched path is >= 5x faster wall-clock, and every
row's decisions, phase track, votes, lock index and slip count match
the serial run exactly.

A second section exercises the framed link end to end:
:func:`~repro.link.run_framed_link` serializes a payload once, fans it
out over per-scenario noise, recovers all scenarios with one batched
CDR pass and decodes each stream — producing a frame-error-rate /
lock-yield table per noise level.

``BENCH_CDR_SCENARIOS`` shrinks the scenario count for CI smoke runs;
the speedup floor is only enforced at full scale (row-exactness always
is).
"""

import os
import time

import numpy as np

from conftest import run_once
from repro.cdr import BangBangCdr, CdrConfig
from repro.reporting import format_table
from repro.signals import (
    NrzEncoder,
    RandomJitter,
    WaveformBatch,
    add_awgn,
    prbs7,
)
from repro.link import run_framed_link, stage
from repro.serdes import run_link
from repro.sweep import ScenarioGrid, SweepAxis, SweepRunner, \
    closed_loop_cdr_measure

BIT_RATE = 10e9
N_SCENARIOS = int(os.environ.get("BENCH_CDR_SCENARIOS", "500"))
N_BITS = 280
SAMPLES_PER_BIT = 8
SPEEDUP_FLOOR = 5.0


def make_batch(n_scenarios):
    """One jittered + noisy PRBS waveform per scenario."""
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=SAMPLES_PER_BIT,
                         amplitude=0.4)
    bits = prbs7(N_BITS)
    waves = []
    for seed in range(1, n_scenarios + 1):
        jitter = RandomJitter(3e-12, seed=seed)
        wave = encoder.encode(bits,
                              edge_offsets=jitter.offsets(N_BITS, BIT_RATE))
        waves.append(add_awgn(wave, rms_volts=0.02, seed=seed))
    return WaveformBatch.stack(waves)


def test_batched_cdr_speedup_and_row_exactness(save_report, save_json):
    batch = make_batch(N_SCENARIOS)
    cdr = BangBangCdr(CdrConfig(bit_rate=BIT_RATE, kp=8e-3, ki=2e-5))

    link_cdr = stage(cdr)

    # Warm both paths on a slice so first-call overheads cancel.
    link_cdr.recover(batch[:2])
    cdr.recover(batch[0])

    t0 = time.perf_counter()
    batched = link_cdr.recover(batch)
    t_batched = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = [cdr.recover(row) for row in batch.rows()]
    t_serial = time.perf_counter() - t0

    speedup = t_serial / t_batched
    save_report("cdr_link_engine_speedup", format_table([{
        "scenarios": N_SCENARIOS,
        "bits/scenario": N_BITS,
        "serial (s)": t_serial,
        "batched (s)": t_batched,
        "speedup (x)": speedup,
        "lock yield (%)": 100 * batched.lock_yield(),
    }]))
    row_exact = all(
        np.array_equal(batched.row(i).decisions, ref.decisions)
        and np.array_equal(batched.row(i).phase_track_ui,
                           ref.phase_track_ui)
        and batched.row(i).slips == ref.slips
        for i, ref in enumerate(serial)
    )
    save_json("cdr_link_engine", {
        "scenarios": N_SCENARIOS,
        "bits_per_scenario": N_BITS,
        "serial_s": t_serial,
        "batched_s": t_batched,
        "speedup_x": speedup,
        "row_exact": row_exact,
        "lock_yield": batched.lock_yield(),
        "speedup_floor_enforced": N_SCENARIOS >= 500,
    })

    for i, reference in enumerate(serial):
        row = batched.row(i)
        np.testing.assert_array_equal(row.decisions, reference.decisions,
                                      err_msg=f"decisions differ, row {i}")
        np.testing.assert_array_equal(row.phase_track_ui,
                                      reference.phase_track_ui,
                                      err_msg=f"phase track differs, row {i}")
        np.testing.assert_array_equal(row.votes, reference.votes,
                                      err_msg=f"votes differ, row {i}")
        assert row.locked_at_bit == reference.locked_at_bit, i
        assert row.slips == reference.slips, i
    assert batched.lock_yield() > 0.95
    # Row-exactness is always enforced; the wall-clock gate only at
    # full scale (smoke runs time tens of milliseconds, where a CI
    # scheduler hiccup would make the ratio meaningless).
    if N_SCENARIOS >= 500:
        assert speedup >= SPEEDUP_FLOOR, (
            f"batched CDR only {speedup:.1f}x faster than serial "
            f"(need >= {SPEEDUP_FLOOR}x)"
        )


def test_framed_link_noise_sweep(benchmark, save_report):
    """BER-style framed-link yield vs noise: one batched pass per level."""
    payload = bytes(range(48))
    n_per_level = max(4, N_SCENARIOS // 25)
    noise_levels = (0.005, 0.05, 0.12)

    def sweep():
        rows = []
        for rms in noise_levels:
            seeds = range(1, n_per_level + 1)
            report = run_framed_link(
                payload,
                path=lambda w, rms=rms, seeds=seeds:
                    WaveformBatch.with_noise_seeds(w, rms, list(seeds)),
                training_commas=24,
                training_bytes=4,
            )
            rows.append({
                "noise rms (mV)": 1e3 * rms,
                "scenarios": n_per_level,
                "lock yield (%)": 100 * report.lock_yield(),
                "frame errors (%)": 100 * report.frame_error_rate(),
                "max |slips|": int(np.max(np.abs(report.slips()))),
            })
        return rows

    rows = run_once(benchmark, sweep)
    save_report("framed_link_noise_sweep", format_table(rows))
    # Clean link: every frame survives.  Destroyed link: none do.
    assert rows[0]["frame errors (%)"] == 0.0
    assert rows[0]["lock yield (%)"] == 100.0
    assert rows[-1]["frame errors (%)"] == 100.0


def test_framed_link_batch_matches_serial_run_link(benchmark, save_report):
    """run_framed_link rows reproduce run_link scenario by scenario."""
    payload = b"batched-framed-link!"
    rms = 0.01
    seeds = list(range(1, 7))

    def compare():
        batch_report = run_framed_link(
            payload,
            path=lambda w: WaveformBatch.with_noise_seeds(
                w, rms, seeds),
            training_commas=24, training_bytes=4,
        )
        mismatches = 0
        for seed, from_batch in zip(seeds, batch_report):
            reference = run_link(
                payload,
                analog_path=lambda w, seed=seed: add_awgn(w, rms, seed=seed),
                training_commas=24, training_bytes=4,
            )
            if (from_batch.payload_received != reference.payload_received
                    or from_batch.cdr_locked != reference.cdr_locked
                    or from_batch.cdr_slips != reference.cdr_slips):
                mismatches += 1
        return mismatches, batch_report.frame_error_rate()

    mismatches, fer = run_once(benchmark, compare)
    save_report("framed_link_batch_vs_serial", format_table([{
        "scenarios": len(seeds),
        "row mismatches": mismatches,
        "frame errors (%)": 100 * fer,
    }]))
    assert mismatches == 0
    assert fer == 0.0


def test_closed_loop_sweep_lock_yield(benchmark, save_report):
    """The sweep subsystem driving recover_batch: lock-time yield grid."""
    n_seeds = max(6, N_SCENARIOS // 25)
    grid = ScenarioGrid([
        SweepAxis("amplitude", (0.2, 0.4)),
        SweepAxis("seed", tuple(range(1, n_seeds + 1))),
    ])
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=SAMPLES_PER_BIT,
                         amplitude=1.0)
    bits = prbs7(N_BITS)

    def stimulus(params):
        jitter = RandomJitter(2e-12, seed=params["seed"])
        wave = encoder.encode(bits,
                              edge_offsets=jitter.offsets(N_BITS, BIT_RATE))
        return wave * params["amplitude"]

    measure, measure_batch = closed_loop_cdr_measure(
        CdrConfig(bit_rate=BIT_RATE, kp=8e-3, ki=2e-5),
        reduce=lambda r, p: r.locked_at_bit,
    )
    runner = SweepRunner(grid, stimulus=stimulus, measure=measure,
                         measure_batch=measure_batch)

    def sweep():
        batched = runner.run()
        serial = runner.run_serial()
        assert batched.results == serial.results
        locks = batched.values(float)
        return float(np.mean(locks >= 0)), float(np.median(locks[locks >= 0]))

    lock_yield, median_lock = run_once(benchmark, sweep)
    save_report("closed_loop_sweep_lock_yield", format_table([{
        "scenarios": grid.n_scenarios,
        "lock yield (%)": 100 * lock_yield,
        "median lock (bits)": median_lock,
    }]))
    assert lock_yield == 1.0
    assert median_lock < N_BITS / 2
