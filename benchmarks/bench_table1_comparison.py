"""Table I — performance and comparison with published results.

Paper rows: process / supply / power / data rate / bandwidth / DC gain /
core area, columns: this work, [7] Tao-Berroth, [5] Galal-Razavi.

Reproduced: the "this work" column is measured live from the behavioral
models and printed next to the paper's column and both published
records.  Shape assertions: this work wins power and area (the paper's
stated conclusion), operates at 10 Gb/s, and the measured column tracks
the paper's within tolerance.
"""

import pytest

from conftest import run_once
from repro.baselines import (
    GALAL_RAZAVI_2003,
    PAPER_THIS_WORK,
    TAO_BERROTH_2003,
    measured_this_work,
    table1_rows,
)
from repro.reporting import format_table


def test_table1_regeneration(benchmark, save_report):
    rows = run_once(benchmark, table1_rows)
    save_report("table1_comparison", format_table(rows))

    measured = measured_this_work()
    # Paper-vs-measured tracking.
    assert measured.power_mw == pytest.approx(PAPER_THIS_WORK.power_mw,
                                              rel=0.10)
    assert measured.bandwidth_ghz == pytest.approx(
        PAPER_THIS_WORK.bandwidth_ghz, rel=0.10
    )
    assert measured.dc_gain_db == pytest.approx(PAPER_THIS_WORK.dc_gain_db,
                                                abs=2.5)
    assert measured.area_mm2 == pytest.approx(PAPER_THIS_WORK.area_mm2,
                                              rel=0.02)


def test_table1_this_work_wins_power_and_area(benchmark, save_report):
    measured = run_once(benchmark, measured_this_work)
    lines = []
    for other in (TAO_BERROTH_2003, GALAL_RAZAVI_2003):
        lines.append(
            f"vs {other.label}: power {measured.power_mw:.1f} vs "
            f"{other.power_mw:.0f} mW, area {measured.area_mm2:.3f} vs "
            f"{other.area_mm2:.2f} mm^2"
        )
        # "our results have better performances in area and power".
        assert measured.power_mw < other.power_mw
        assert measured.area_mm2 < other.area_mm2
    save_report("table1_winners", "\n".join(lines))


def test_table1_bandwidth_ordering(benchmark):
    measured = run_once(benchmark, measured_this_work)
    # Paper's ordering: this work (9.5) > Galal-Razavi (9.4) >
    # Tao-Berroth (6.5).  Allow the measured value to land near the
    # paper's with the ordering against [7] strict.
    assert measured.bandwidth_ghz > TAO_BERROTH_2003.bandwidth_ghz
    assert measured.bandwidth_ghz == pytest.approx(
        GALAL_RAZAVI_2003.bandwidth_ghz, rel=0.12
    )


def test_table1_figure_of_merit(benchmark, save_report):
    measured = run_once(benchmark, measured_this_work)
    rows = [
        {
            "design": column.label,
            "GBW/power ((lin)GHz/mW)": column.figure_of_merit(),
        }
        for column in (measured, PAPER_THIS_WORK, TAO_BERROTH_2003,
                       GALAL_RAZAVI_2003)
    ]
    save_report("table1_figure_of_merit", format_table(rows))
    assert measured.figure_of_merit() > TAO_BERROTH_2003.figure_of_merit()