"""Fig 5 — equalizer gain vs frequency under NMOS (V1) control.

Paper series: (a) equalizer *without* the feedback current buffers
M1/M2, (b) *with* them; both swept over the NMOS gate voltage, showing
gain adjustable "from DC to 6 GHz".

Reproduced series: gain (dB) at log-spaced frequencies for V1 in
{0.55 .. 1.0 V}, for both variants.  Shape assertions: lower V1 gives
more boost and a lower zero; the current buffers add gain and
output-referred linearity.
"""

import numpy as np

from conftest import run_once
from repro.core import CherryHooperEqualizer
from repro.devices import nmos
from repro.reporting import format_table, render_gain_curve

V1_SWEEP = (0.55, 0.6, 0.7, 0.85, 1.0)
FREQS = np.logspace(7.0, 10.3, 60)


def build(v1, with_buffers=True):
    eq = CherryHooperEqualizer(input_pair=nmos(20e-6, 0.18e-6, 1e-3),
                               control_voltage=v1)
    return eq if with_buffers else eq.without_current_buffers()


def sweep(with_buffers):
    rows = []
    for v1 in V1_SWEEP:
        eq = build(v1, with_buffers)
        gain = eq.gain_db(FREQS)
        rows.append({
            "V1 (V)": v1,
            "DC gain (dB)": eq.dc_gain_db(),
            "boost (dB)": eq.boost_db,
            "zero (GHz)": eq.zero_hz / 1e9,
            "peak gain (dB)": float(np.max(gain)),
            "gain @5GHz (dB)": float(
                eq.gain_db(np.array([5e9]))[0]
            ),
            "out P1dB (mV)": eq.output_p1db() * 1e3,
        })
    return rows


def test_fig05a_without_current_buffers(benchmark, save_report):
    rows = run_once(benchmark, lambda: sweep(with_buffers=False))
    save_report("fig05a_equalizer_no_buffers", format_table(rows))
    boosts = [row["boost (dB)"] for row in rows]
    assert boosts == sorted(boosts, reverse=True)  # lower V1 = more boost


def test_fig05b_with_current_buffers(benchmark, save_report):
    rows = run_once(benchmark, lambda: sweep(with_buffers=True))
    curve = render_gain_curve(
        FREQS, build(0.6).gain_db(FREQS),
        title="Fig 5(b) equalizer gain, V1 = 0.6 V (with buffers)",
    )
    save_report("fig05b_equalizer_with_buffers",
                format_table(rows) + "\n\n" + curve)
    without = sweep(with_buffers=False)
    # The paper's (a)->(b) improvement: gain and linearity both up.
    for row_with, row_without in zip(rows, without):
        assert row_with["DC gain (dB)"] > row_without["DC gain (dB)"] + 4.0
        assert row_with["out P1dB (mV)"] > 1.5 * row_without["out P1dB (mV)"]


def test_fig05_zero_tunes_with_v1(benchmark, save_report):
    rows = run_once(benchmark, lambda: sweep(with_buffers=True))
    zeros = [row["zero (GHz)"] for row in rows]
    assert zeros == sorted(zeros)  # zero moves up as V1 rises
    # "The equalizer gain from DC to 6 GHz can be adjusted": the V1
    # sweep moves the 5 GHz gain over a multi-dB range.
    gains_5g = [row["gain @5GHz (dB)"] for row in rows]
    assert max(gains_5g) - min(gains_5g) > 2.0
    save_report("fig05_tuning_summary", format_table(rows))
