"""PAM4 through the batched facade, timed against NRZ.

The modulation refactor replaced the hardcoded sign slicer with a
``Modulation`` value that rides through the DFE, the CDR and the eye
scope.  This bench pins what that generality costs and proves it is
not paid on correctness:

* **matched payload rate** — the same payload bits run as 10 Gb/s NRZ
  and as 5 GBd PAM4 (same sample count per scenario) through
  ``LinkSession.run_batch``; wall-clock for both is reported, and the
  PAM4 pass must produce three sub-eyes per scenario with four-level
  decisions.
* **three-sub-eye measurement cost** — ``measure_eye_batch`` with the
  PAM4 alphabet (3 sub-eyes, 4 level clusters) is timed against the
  binary measurement on an equal-shape batch; the ratio is gated at
  full scale only.
* **decode exactness** — back-to-back (empty chain), the PAM4-sliced
  DFE must recover the Gray-coded payload bits exactly.  Always
  enforced, any scale.

``BENCH_PAM4_SCENARIOS`` shrinks the batches for CI smoke runs.
"""

import os
import time

import numpy as np

from repro.analysis import measure_eye_batch
from repro.link import ChannelConfig, DfeConfig, LinkSession, TxConfig
from repro.reporting import format_table
from repro.signals import Nrz, Pam4, SymbolEncoder, WaveformBatch

PAYLOAD_BIT_RATE = 10e9
N_SCENARIOS = int(os.environ.get("BENCH_PAM4_SCENARIOS", "200"))
N_PAYLOAD_BITS = 240
NOISE_RMS = 0.01
SUB_EYE_COST_CEILING = 12.0  # 3 sub-eyes + 4 clusters vs 1 eye + 2


def _time(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def make_batch(modulation, n_scenarios):
    """The same payload bits as NRZ or PAM4 at matched sample count."""
    enc = SymbolEncoder(
        symbol_rate=PAYLOAD_BIT_RATE / modulation.bits_per_symbol,
        modulation=modulation, amplitude=0.4,
        samples_per_symbol=8 * modulation.bits_per_symbol)
    bits = np.random.default_rng(7).integers(0, 2, N_PAYLOAD_BITS)
    wave = enc.encode_bits(bits)
    return WaveformBatch.with_noise_seeds(
        wave, rms_volts=NOISE_RMS,
        seeds=list(range(1, n_scenarios + 1))), bits, wave


def _session(modulation):
    return LinkSession.from_configs(
        tx=TxConfig(modulation=modulation), channel=ChannelConfig(0.1),
        bit_rate=PAYLOAD_BIT_RATE / modulation.bits_per_symbol,
        dfe=DfeConfig(taps=(0.05,), decision_amplitude=0.2))


def test_pam4_vs_nrz_matched_payload(save_report, save_json):
    """One payload, two line codes, one facade: timings + contracts."""
    nrz, pam4 = Nrz(), Pam4()
    nrz_batch, _, _ = make_batch(nrz, N_SCENARIOS)
    pam4_batch, bits, clean_wave = make_batch(pam4, N_SCENARIOS)
    assert nrz_batch.data.shape == pam4_batch.data.shape

    sessions = {"nrz": _session(nrz), "pam4": _session(pam4)}
    batches = {"nrz": nrz_batch, "pam4": pam4_batch}
    timings, results = {}, {}
    for name in ("nrz", "pam4"):
        sessions[name].run_batch(batches[name][:2])  # warm
        results[name], timings[name] = _time(
            lambda name=name: sessions[name].run_batch(batches[name]))

    # The PAM4 pass carried the alphabet through every layer.
    for eye in results["pam4"].eyes:
        assert eye.n_levels == 4 and eye.n_eyes == 3
        assert all(h > 0 for h in eye.eye_heights)
    assert int(results["pam4"].dfe_decisions.max()) == 3
    for eye in results["nrz"].eyes:
        assert eye.n_levels == 2 and eye.n_eyes == 1

    # Three-sub-eye measurement cost on equal-shape received batches.
    received = {name: results[name].output for name in ("nrz", "pam4")}
    measure_eye_batch(received["nrz"][:2], PAYLOAD_BIT_RATE)  # warm
    _, t_eye_nrz = _time(lambda: measure_eye_batch(
        received["nrz"], PAYLOAD_BIT_RATE, modulation=nrz))
    _, t_eye_pam4 = _time(lambda: measure_eye_batch(
        received["pam4"], PAYLOAD_BIT_RATE / 2, modulation=pam4))
    eye_cost_ratio = t_eye_pam4 / t_eye_nrz

    # Back-to-back, the Gray decode is exact — any scale.
    b2b = LinkSession([], bit_rate=PAYLOAD_BIT_RATE / 2, modulation=pam4,
                      dfe=DfeConfig(taps=(1e-12,), decision_amplitude=0.2))
    decisions = b2b.run(clean_wave).dfe_decisions
    symbols = pam4.bits_to_symbols(bits)
    n = min(len(decisions), len(symbols))
    decode_exact = (
        np.array_equal(decisions[:n], symbols[:n])
        and np.array_equal(pam4.symbols_to_bits(decisions[:n]),
                           bits[:2 * n]))

    save_report("pam4_vs_nrz_link", format_table([
        {
            "line code": name,
            "scenarios": N_SCENARIOS,
            "payload Gb/s": PAYLOAD_BIT_RATE / 1e9,
            "sub-eyes": results[name].eyes[0].n_eyes,
            "run_batch (s)": timings[name],
            "worst eye (mV)": 1e3 * min(e.eye_height
                                        for e in results[name].eyes),
        }
        for name in ("nrz", "pam4")
    ]))
    save_json("pam4_link", {
        "scenarios": N_SCENARIOS,
        "payload_bits": N_PAYLOAD_BITS,
        "payload_bit_rate_hz": PAYLOAD_BIT_RATE,
        "run_batch_s": timings,
        "pam4_over_nrz_runtime_x": timings["pam4"] / timings["nrz"],
        "eye_measurement_s": {"nrz": t_eye_nrz, "pam4": t_eye_pam4},
        "sub_eye_cost_ratio_x": eye_cost_ratio,
        "sub_eye_cost_ceiling_x": SUB_EYE_COST_CEILING,
        "cost_ceiling_enforced": N_SCENARIOS >= 200,
        "back_to_back_decode_exact": decode_exact,
    })

    assert decode_exact, "back-to-back PAM4 Gray decode is not exact"
    # The wall-clock gate only at full scale (smoke runs time
    # milliseconds, where scheduler noise drowns the ratio).
    if N_SCENARIOS >= 200:
        assert eye_cost_ratio < SUB_EYE_COST_CEILING, (
            f"three-sub-eye measurement costs {eye_cost_ratio:.1f}x the "
            f"binary eye (ceiling {SUB_EYE_COST_CEILING}x)"
        )
