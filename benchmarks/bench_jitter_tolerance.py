"""Jitter-tolerance of the receive path: the classic SJ template sweep.

A receiver + CDR must track low-frequency sinusoidal jitter (the loop
follows it) and absorb high-frequency jitter within its eye margin —
producing the standard jitter-tolerance "template": large tolerable SJ
amplitude at low frequency, flattening to a fraction of a UI above the
loop bandwidth.  The paper's LA feeds exactly such a CDR.

The sweep subsystem executes the template as a declarative grid:
(SJ frequency x SJ amplitude) are batchable axes — every point is a
stimulus variation on the same receiver — so the runner stacks all
jittered patterns into one :class:`~repro.signals.WaveformBatch` and
:func:`~repro.sweep.closed_loop_cdr_measure` advances every point's CDR
loop together through the batched CDR kernel (the path ``repro.link``
dispatches): nothing in the sweep is serial any more.  The tolerance at each frequency is the largest amplitude on
the grid with an error-free run (amplitudes above the first failure do
not count, mirroring the bisection this replaces).
"""

import numpy as np

from conftest import run_once
from repro.cdr import CdrConfig
from repro.reporting import format_table
from repro.signals import NrzEncoder, SinusoidalJitter, prbs7
from repro.sweep import (
    ScenarioGrid,
    SweepAxis,
    SweepRunner,
    closed_loop_cdr_measure,
)

BIT_RATE = 10e9
N_BITS = 700

#: Geometric amplitude ladder (UI): the grid replaces the old bisection;
#: resolution is one rung (~1.4x).
AMPLITUDES_UI = (0.01, 0.05, 0.1, 0.15, 0.22, 0.33, 0.5, 0.7, 1.0,
                 1.4, 2.0, 2.8, 4.0)


def make_stimulus(params):
    """A jittered PRBS pattern for one (frequency, amplitude) point."""
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=16,
                         amplitude=0.4)
    bits = prbs7(N_BITS)
    jitter = SinusoidalJitter(
        peak_seconds=params["sj_amplitude_ui"] / BIT_RATE,
        frequency=params["sj_freq"],
    )
    return encoder.encode(bits, edge_offsets=jitter.offsets(N_BITS, BIT_RATE))


def error_free(result, params):
    """Does the recovered decision stream reproduce the pattern?"""
    bits = prbs7(N_BITS)
    decisions = result.decisions
    errors = min(
        int(np.sum(decisions[lag:lag + 500] != bits[:500]))
        for lag in range(0, 4)
    )
    return errors == 0


def tolerance_grid(frequencies, amplitudes=AMPLITUDES_UI):
    """Tolerance (UI) per frequency from one batched closed-loop sweep."""
    grid = ScenarioGrid([
        SweepAxis("sj_freq", tuple(frequencies)),
        SweepAxis("sj_amplitude_ui", tuple(amplitudes)),
    ])
    measure, measure_batch = closed_loop_cdr_measure(
        CdrConfig(bit_rate=BIT_RATE, kp=8e-3, ki=2e-4),
        reduce=error_free,
    )
    result = SweepRunner(grid, stimulus=make_stimulus,
                         measure=measure,
                         measure_batch=measure_batch).run()
    ok = result.values(float)  # (n_freq, n_amp) of 0/1
    tolerances = []
    for row in ok:
        passed = 0.0
        for amplitude, good in zip(amplitudes, row):
            if not good:
                break
            passed = amplitude
        tolerances.append(passed)
    return tolerances


def test_jitter_tolerance_template(benchmark, save_report):
    frequencies = (1e6, 10e6, 100e6, 1e9)

    def sweep():
        tolerances = tolerance_grid(frequencies)
        return [{"SJ freq (MHz)": f / 1e6,
                 "tolerance (UI pp)": 2 * tol}
                for f, tol in zip(frequencies, tolerances)]

    rows = run_once(benchmark, sweep)
    save_report("jitter_tolerance", format_table(rows))
    tolerances = [row["tolerance (UI pp)"] for row in rows]
    # Template shape: low-frequency jitter is tracked (tolerance well
    # above 1 UI), high-frequency tolerance falls to the eye margin.
    assert tolerances[0] > 1.0
    assert tolerances[0] >= tolerances[-1]
    assert tolerances[-1] > 0.1  # the eye itself still absorbs some SJ


def test_cdr_loop_bandwidth_separates_regimes(benchmark, save_report):
    """Tolerance at 1 MHz (slow, tracked) vs 1 GHz (fast, untracked)."""
    def run():
        slow, fast = tolerance_grid((1e6, 1e9))
        return 2 * slow, 2 * fast

    slow, fast = run_once(benchmark, run)
    save_report("jitter_tolerance_regimes", format_table([{
        "SJ @1 MHz tolerated (UI pp)": slow,
        "SJ @1 GHz tolerated (UI pp)": fast,
    }]))
    assert slow > 2.0 * fast