"""Jitter-tolerance of the receive path: the classic SJ template sweep.

A receiver + CDR must track low-frequency sinusoidal jitter (the loop
follows it) and absorb high-frequency jitter within its eye margin —
producing the standard jitter-tolerance "template": large tolerable SJ
amplitude at low frequency, flattening to a fraction of a UI above the
loop bandwidth.  The paper's LA feeds exactly such a CDR; this bench
sweeps SJ frequency, bisects the maximum tolerable amplitude at each,
and asserts the template shape.
"""

import numpy as np

from conftest import run_once
from repro.cdr import BangBangCdr, CdrConfig
from repro.reporting import format_table
from repro.signals import NrzEncoder, SinusoidalJitter, prbs7

BIT_RATE = 10e9
N_BITS = 700


def error_free_at(sj_amplitude_ui: float, sj_freq: float) -> bool:
    """Does the CDR recover the pattern under this SJ?"""
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=16,
                         amplitude=0.4)
    bits = prbs7(N_BITS)
    jitter = SinusoidalJitter(
        peak_seconds=sj_amplitude_ui / BIT_RATE, frequency=sj_freq
    )
    wave = encoder.encode(bits,
                          edge_offsets=jitter.offsets(N_BITS, BIT_RATE))
    config = CdrConfig(bit_rate=BIT_RATE, kp=8e-3, ki=2e-4)
    result = BangBangCdr(config).recover(wave)
    decisions = result.decisions
    errors = min(
        int(np.sum(decisions[lag:lag + 500] != bits[:500]))
        for lag in range(0, 4)
    )
    return errors == 0


def tolerance_at(sj_freq: float) -> float:
    """Largest tolerable SJ amplitude (UI) at one frequency, bisected."""
    lo, hi = 0.01, 4.0
    if not error_free_at(lo, sj_freq):
        return 0.0
    if error_free_at(hi, sj_freq):
        return hi
    for _ in range(8):
        mid = 0.5 * (lo + hi)
        if error_free_at(mid, sj_freq):
            lo = mid
        else:
            hi = mid
    return lo


def test_jitter_tolerance_template(benchmark, save_report):
    frequencies = (1e6, 10e6, 100e6, 1e9)

    def sweep():
        return [{"SJ freq (MHz)": f / 1e6,
                 "tolerance (UI pp)": 2 * tolerance_at(f)}
                for f in frequencies]

    rows = run_once(benchmark, sweep)
    save_report("jitter_tolerance", format_table(rows))
    tolerances = [row["tolerance (UI pp)"] for row in rows]
    # Template shape: low-frequency jitter is tracked (tolerance well
    # above 1 UI), high-frequency tolerance falls to the eye margin.
    assert tolerances[0] > 1.0
    assert tolerances[0] >= tolerances[-1]
    assert tolerances[-1] > 0.1  # the eye itself still absorbs some SJ


def test_cdr_loop_bandwidth_separates_regimes(benchmark, save_report):
    """Tolerance at 1 MHz (slow, tracked) vs 1 GHz (fast, untracked)."""
    def run():
        return 2 * tolerance_at(1e6), 2 * tolerance_at(1e9)

    slow, fast = run_once(benchmark, run)
    save_report("jitter_tolerance_regimes", format_table([{
        "SJ @1 MHz tolerated (UI pp)": slow,
        "SJ @1 GHz tolerated (UI pp)": fast,
    }]))
    assert slow > 2.0 * fast
