"""Shared bench infrastructure.

Every bench regenerates one of the paper's tables or figures: it prints
the rows/series to stdout AND archives them under
``benchmarks/output/`` so paper-vs-measured comparisons survive the run.
Timing is collected with pytest-benchmark (rounds kept small — these
are simulations, not microbenchmarks).
"""

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def report_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def save_report(report_dir):
    """Write a named report file and echo it to stdout."""

    def _save(name: str, text: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===")
        print(text)

    return _save


def run_once(benchmark, fn):
    """Benchmark a simulation with minimal repetition."""
    return benchmark.pedantic(fn, rounds=2, iterations=1, warmup_rounds=0)
