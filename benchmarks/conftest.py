"""Shared bench infrastructure.

Every bench regenerates one of the paper's tables or figures: it prints
the rows/series to stdout AND archives them under
``benchmarks/output/`` so paper-vs-measured comparisons survive the run.
Timing is collected with pytest-benchmark (rounds kept small — these
are simulations, not microbenchmarks).

Perf-contract benches additionally persist their headline numbers
(scenario counts, wall-clock times, speedups, row-exactness booleans)
as ``BENCH_*.json`` artifacts under ``benchmarks/results/`` — a
*committed* directory, unlike the gitignored ``output/`` — so the perf
trajectory stays reviewable across PRs instead of living only in
commit messages.
"""

import json
import pathlib
import platform

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def save_report(report_dir):
    """Write a named report file and echo it to stdout."""

    def _save(name: str, text: str) -> None:
        path = report_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===")
        print(text)

    return _save


@pytest.fixture()
def save_json():
    """Persist one bench's metrics as ``benchmarks/results/BENCH_<name>.json``.

    The payload must be JSON-serializable; an environment stamp
    (python/numpy versions, kernel backend) is added so results from
    different machines/PRs stay comparable.
    """

    def _save(name: str, payload: dict) -> None:
        import numpy
        from repro import kernels

        RESULTS_DIR.mkdir(exist_ok=True)
        stamped = {
            "environment": {
                "python": platform.python_version(),
                "numpy": numpy.__version__,
                "kernel_backend": kernels.backend_name(),
            },
            **payload,
        }
        path = RESULTS_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(stamped, indent=2, sort_keys=True) + "\n")
        print(f"\n[bench artifact] {path}")

    return _save


def run_once(benchmark, fn):
    """Benchmark a simulation with minimal repetition."""
    return benchmark.pedantic(fn, rounds=2, iterations=1, warmup_rounds=0)
