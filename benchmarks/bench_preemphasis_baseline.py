"""Analog voltage peaking vs digital FIR pre-emphasis (paper ref [4]).

The paper positions its voltage-peaking circuit as the analog
counterpart of Westergaard et al.'s digital pre-emphasis backplane
driver.  This bench makes the comparison quantitative:

* the analog circuit's equivalent 2-tap FIR reproduces its post-channel
  eye within tolerance (they are the same filter for settled levels);
* a 3-tap zero-forcing FIR (what the digital architecture can do and
  the analog one cannot) buys additional eye height — the flexibility
  cost of the paper's simpler circuit.
"""

import pytest

from conftest import run_once
from repro.analysis import EyeDiagram
from repro.baselines import FirPreEmphasis, zero_forcing_taps
from repro.channel import BackplaneChannel
from repro.core import build_output_interface
from repro.reporting import format_table
from repro.signals import bits_to_nrz, prbs7

BIT_RATE = 10e9


def run_experiment():
    channel = BackplaneChannel(0.5)
    wave = bits_to_nrz(prbs7(300), BIT_RATE, amplitude=0.3,
                       samples_per_bit=16)

    results = {}

    # No shaping.
    plain_tx = build_output_interface(peaking_enabled=False).process(wave)
    results["no pre-emphasis"] = channel.process(plain_tx)

    # The paper's analog voltage peaking.
    tx = build_output_interface(peaking_enabled=True)
    results["analog voltage peaking"] = channel.process(tx.process(wave))

    # Its 2-tap FIR equivalent applied to the same driver output.
    main, post = tx.peaking.equivalent_fir_taps(
        tx.driver.output_swing_pp / 2.0
    )
    fir2 = FirPreEmphasis(taps=(main, post), bit_rate=BIT_RATE)
    results["digital 2-tap (equivalent)"] = channel.process(
        fir2.process(plain_tx)
    )

    # A provisioned 3-tap zero-forcing FIR (the [4]-style capability).
    taps3 = zero_forcing_taps(channel, BIT_RATE, n_taps=3)
    fir3 = FirPreEmphasis(taps=taps3, bit_rate=BIT_RATE)
    results["digital 3-tap (zero-forcing)"] = channel.process(
        fir3.process(plain_tx)
    )

    measurements = {
        name: EyeDiagram.measure_waveform(out, BIT_RATE, skip_ui=16)
        for name, out in results.items()
    }
    return measurements


def test_preemphasis_comparison(benchmark, save_report):
    measurements = run_once(benchmark, run_experiment)
    rows = [{
        "scheme": name,
        "eye height (mV)": m.eye_height * 1e3,
        "eye width (UI)": m.eye_width_ui,
        "jitter pp (ps)": m.jitter_pp * 1e12,
    } for name, m in measurements.items()]
    save_report("preemphasis_baseline", format_table(rows))

    plain = measurements["no pre-emphasis"]
    analog = measurements["analog voltage peaking"]
    fir2 = measurements["digital 2-tap (equivalent)"]
    fir3 = measurements["digital 3-tap (zero-forcing)"]

    # Both schemes beat no shaping.
    assert analog.eye_height > plain.eye_height
    assert fir2.eye_height > plain.eye_height
    # The analog circuit tracks its 2-tap equivalent.
    assert analog.eye_height == pytest.approx(fir2.eye_height, rel=0.35)
    # Extra taps buy extra opening (the digital architecture's edge).
    assert fir3.eye_height > analog.eye_height


def test_equivalent_taps_mapping(benchmark, save_report):
    def run():
        tx = build_output_interface()
        amplitude = tx.driver.output_swing_pp / 2.0
        return tx.peaking.equivalent_fir_taps(amplitude), \
            tx.peaking.preemphasis_db(tx.driver.output_swing_pp)

    (main, post), boost_db = run_once(benchmark, run)
    save_report("preemphasis_tap_mapping", format_table([{
        "main tap": main, "post tap": post,
        "edge boost (dB)": boost_db,
    }]))
    assert main == pytest.approx(1.0 - post)
    assert post < 0
    assert 1.0 < boost_db < 3.0
