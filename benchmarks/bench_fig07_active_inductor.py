"""Fig 7 — active-inductor control of the CML buffer.

Paper series: (a) time-domain waveform as the PMOS active-inductor load
is tuned; (b) frequency response vs PMOS size ("the gain and the
bandwidth ... are adjusted by controlling the size of the PMOS
transistor").

Reproduced: PMOS width sweep of the default buffer — DC gain falls and
bandwidth rises as the load widens (trading 1/gm for speed), with the
time-domain step response showing the corresponding edge sharpening and
peaking.
"""

import numpy as np

from conftest import run_once
from repro.core import CmlBuffer, ActiveInductorLoad
from repro.devices import ActiveInductor, MosVaractor, nmos, pmos
from repro.reporting import format_table, render_waveform
from repro.signals import bits_to_nrz

WIDTH_FACTORS = (0.5, 0.75, 1.0, 1.5, 2.0)


def make_buffer(width_factor=1.0):
    load = ActiveInductorLoad(
        ActiveInductor(pmos(40e-6, 0.18e-6, 1e-3), gate_resistance=1200.0)
    ).scaled(width_factor)
    return CmlBuffer(
        input_pair=nmos(20e-6, 0.18e-6, 1e-3),
        load=load,
        tail_current=2e-3,
        c_load_ext=54e-15,
        source_resistance=250.0,
        feedback_loop_gain=1.2,
        neg_miller=MosVaractor(4e-6, 0.5e-6),
    )


def sweep():
    rows = []
    for factor in WIDTH_FACTORS:
        buf = make_buffer(factor)
        rows.append({
            "PMOS width (x)": factor,
            "R_dc (ohm)": buf.load.r_dc,
            "L_eff (nH)": buf.load.inductor.l_effective * 1e9,
            "DC gain": buf.dc_gain,
            "BW (GHz)": buf.bandwidth_3db() / 1e9,
            "peaking (dB)": buf.peaking_db(),
        })
    return rows


def test_fig07b_bandwidth_vs_pmos_size(benchmark, save_report):
    rows = run_once(benchmark, sweep)
    save_report("fig07b_active_inductor_sweep", format_table(rows))
    gains = [row["DC gain"] for row in rows]
    bws = [row["BW (GHz)"] for row in rows]
    # Wider PMOS: lower gain, higher bandwidth (the paper's trade).
    assert gains == sorted(gains, reverse=True)
    assert bws == sorted(bws)


def test_fig07a_time_domain_waveform(benchmark, save_report):
    stimulus = bits_to_nrz(np.tile([1, 0], 12), 10e9, amplitude=0.1,
                           samples_per_bit=32)

    def run():
        return {factor: make_buffer(factor).to_block().process(stimulus)
                for factor in (0.5, 1.0, 2.0)}

    outputs = run_once(benchmark, run)
    sections = []
    for factor, wave in outputs.items():
        segment = wave.slice_time(0.4e-9, 1.0e-9)
        sections.append(render_waveform(
            segment.time, segment.data,
            title=f"Fig 7(a) buffer output, PMOS width x{factor}",
        ))
    save_report("fig07a_waveforms", "\n\n".join(sections))
    # The wide-load (fast) buffer settles closer to its rail each bit
    # than the narrow (slow) one, relative to its own swing.
    def settled_fraction(factor):
        wave = outputs[factor]
        buf = make_buffer(factor)
        spb = 32
        # Sample just before each transition (the most-settled instant).
        samples = np.abs(wave.data[spb - 1:: spb][4:20])
        return float(np.mean(samples)) / buf.output_swing

    assert settled_fraction(2.0) > settled_fraction(0.5)


def test_fig07_inductive_peaking_vs_plain_resistor(benchmark, save_report):
    from repro.core import ResistiveLoad

    def run():
        buf = make_buffer(1.0)
        plain = buf.with_load(ResistiveLoad(buf.load.r_dc))
        return buf.bandwidth_3db(), plain.bandwidth_3db()

    peaked_bw, plain_bw = run_once(benchmark, run)
    save_report(
        "fig07_peaking_vs_resistor",
        f"active-inductor BW: {peaked_bw / 1e9:.2f} GHz\n"
        f"plain-resistor BW:  {plain_bw / 1e9:.2f} GHz\n"
        f"extension: {peaked_bw / plain_bw:.2f}x",
    )
    assert peaked_bw > 1.1 * plain_bw
