"""Section III-E claims — the beta-multiplier voltage reference.

"The BMVR can be tuned to within 10 mV of a desired value while
maintaining a temperature coefficient below 550 ppm/C and power supply
sensitivity under 26 mV/V."

Reproduced: V_ref(T) from -40 to 125 C, V_ref(VDD) from 1.6 to 2.0 V,
and the trim staircase — each against the paper's spec line.
"""

import numpy as np
import pytest

from conftest import run_once
from repro._units import celsius_to_kelvin
from repro.core import BetaMultiplierReference
from repro.reporting import format_table, render_gain_curve


def temperature_sweep():
    bmvr = BetaMultiplierReference()
    temps_c = np.linspace(-40.0, 125.0, 12)
    rows = [{
        "T (C)": float(t),
        "V_ref (mV)": bmvr.reference_voltage(celsius_to_kelvin(t)) * 1e3,
        "I_bias (uA)": bmvr.bias_current(celsius_to_kelvin(t)) * 1e6,
    } for t in temps_c]
    return bmvr, rows


def test_bandgap_temperature_coefficient(benchmark, save_report):
    bmvr, rows = run_once(benchmark, temperature_sweep)
    tc = bmvr.temperature_coefficient_ppm(-40.0, 125.0)
    save_report("bandgap_temperature",
                format_table(rows) + f"\n\nbox TC: {tc:.1f} ppm/C "
                f"(paper spec: < 550 ppm/C)")
    assert tc < 550.0


def test_bandgap_supply_sensitivity(benchmark, save_report):
    def sweep():
        bmvr = BetaMultiplierReference()
        vdds = np.linspace(1.6, 2.0, 9)
        rows = [{
            "VDD (V)": float(v),
            "V_ref (mV)": bmvr.reference_voltage(vdd=float(v)) * 1e3,
        } for v in vdds]
        return bmvr, rows

    bmvr, rows = run_once(benchmark, sweep)
    sens = bmvr.supply_sensitivity_mv_per_v(1.6, 2.0)
    save_report("bandgap_supply",
                format_table(rows) + f"\n\nsensitivity: {sens:.1f} mV/V "
                f"(paper spec: < 26 mV/V)")
    assert sens < 26.0


def test_bandgap_trim_staircase(benchmark, save_report):
    def staircase():
        bmvr = BetaMultiplierReference()
        return [(i - 8, ref.reference_voltage())
                for i, ref in enumerate(bmvr.trim_codes(8))]

    codes = run_once(benchmark, staircase)
    rows = [{"code": c, "V_ref (mV)": v * 1e3} for c, v in codes]
    save_report("bandgap_trim", format_table(rows))
    volts = [v for _, v in codes]
    steps = np.diff(volts)
    # Monotone staircase with steps small enough to trim within 10 mV.
    assert np.all(steps > 0)
    assert np.max(steps) < 20e-3

    bmvr = BetaMultiplierReference()
    for target_offset in (-0.02, -0.005, 0.004, 0.019):
        _, error = bmvr.trim_to(bmvr.reference_voltage() + target_offset)
        assert abs(error) <= 10e-3


def test_bandgap_stabilizes_tail_current_over_supply(benchmark,
                                                     save_report):
    """The paper: the BMVR "can overcome the supply voltage ...
    variation to provide a stable reference voltage for the tail
    current".

    Compared against the naive alternative — biasing the tail gates
    from a resistor divider (V_gate proportional to VDD) — the
    BMVR-referenced tail current barely moves across the 1.6-2.0 V
    supply range while the divider-biased one swings by tens of
    percent.
    """
    def run():
        bmvr = BetaMultiplierReference()
        v_nom = bmvr.reference_voltage()
        rows = []
        for vdd in (1.6, 1.8, 2.0):
            mirrored = bmvr.tail_current_for(2e-3, vdd=vdd) / 2e-3
            # Divider bias: V_gate = (v_nom/1.8) * VDD; square-law tail.
            v_gate = v_nom / bmvr.tech.vdd * vdd
            vov = v_gate - bmvr.tech.vth_n
            vov_nom = v_nom - bmvr.tech.vth_n
            divider = (vov / vov_nom) ** 2
            rows.append({
                "VDD (V)": vdd,
                "BMVR-biased I/I0": mirrored,
                "divider-biased I/I0": divider,
            })
        return rows

    rows = run_once(benchmark, run)
    save_report("bandgap_vs_divider_bias", format_table(rows))
    mirrored = [row["BMVR-biased I/I0"] for row in rows]
    divider = [row["divider-biased I/I0"] for row in rows]
    spread_bmvr = max(mirrored) - min(mirrored)
    spread_divider = max(divider) - min(divider)
    assert spread_bmvr < 0.15 * spread_divider
    assert spread_bmvr < 0.05
