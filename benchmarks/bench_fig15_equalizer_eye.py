"""Fig 15 — input-interface eye without/with the equalizer.

Paper series: 10 Gb/s PRBS7 through the backplane into the input
interface; (a) output eye without the equalizer (ISI-ridden), (b) with
the equalizer (opened).

Reproduced over a 0.5 m FR-4 channel (~13 dB at Nyquist): the equalizer
(tuned to V1 = 0.55) cuts crossing jitter roughly in half and widens the
eye by > 0.1 UI — the horizontal reopening the paper's (a)->(b) pair
shows.  (Vertically both eyes rail at the limiting swing: a limiting
receiver hides vertical ISI, which is precisely why the jitter/width
metrics are the right ones.)
"""

from conftest import run_once
from repro.analysis import EyeDiagram
from repro.channel import BackplaneChannel
from repro.core import build_input_interface
from repro.reporting import format_comparison, render_eye
from repro.signals import bits_to_nrz, prbs7

BIT_RATE = 10e9


def run_experiment():
    channel = BackplaneChannel(0.5)
    wave = bits_to_nrz(prbs7(300), BIT_RATE, amplitude=0.2,
                       samples_per_bit=16)
    received = channel.process(wave)

    with_eq = build_input_interface(equalizer_control_voltage=0.55)
    without_eq = build_input_interface().without_equalizer()

    out_with = with_eq.process(received)
    out_without = without_eq.process(received)
    eye_with = EyeDiagram(out_with, BIT_RATE, skip_ui=16)
    eye_without = EyeDiagram(out_without, BIT_RATE, skip_ui=16)
    return channel, eye_without, eye_with


def test_fig15_equalizer_opens_the_eye(benchmark, save_report):
    channel, eye_without, eye_with = run_once(benchmark, run_experiment)
    m_without = eye_without.measure()
    m_with = eye_with.measure()

    comparison = format_comparison(
        "Fig 15(a) no equalizer", "Fig 15(b) with equalizer",
        {
            "channel loss @5GHz (dB)": (
                channel.nyquist_loss_db(BIT_RATE),
                channel.nyquist_loss_db(BIT_RATE),
            ),
            "eye width (UI)": (m_without.eye_width_ui, m_with.eye_width_ui),
            "jitter pp (ps)": (m_without.jitter_pp * 1e12,
                               m_with.jitter_pp * 1e12),
            "jitter rms (ps)": (m_without.jitter_rms * 1e12,
                                m_with.jitter_rms * 1e12),
            "eye height (mV)": (m_without.eye_height * 1e3,
                                m_with.eye_height * 1e3),
        },
    )
    art = (render_eye(eye_without, title="Fig 15(a) without equalizer")
           + "\n\n" + render_eye(eye_with, title="Fig 15(b) with equalizer"))
    save_report("fig15_equalizer_comparison", comparison + "\n\n" + art)

    assert m_with.eye_width_ui > m_without.eye_width_ui + 0.1
    assert m_with.jitter_pp < 0.6 * m_without.jitter_pp
    assert m_with.is_open


def test_fig15_equalizer_tuning_curve(benchmark, save_report):
    """Extension of Fig 15: eye width versus the V1 tuning knob."""
    from repro.reporting import format_table

    def sweep():
        channel = BackplaneChannel(0.5)
        wave = bits_to_nrz(prbs7(300), BIT_RATE, amplitude=0.2,
                           samples_per_bit=16)
        received = channel.process(wave)
        rows = []
        for v1 in (0.55, 0.6, 0.7, 0.85, 1.0):
            rx = build_input_interface(equalizer_control_voltage=v1)
            m = EyeDiagram.measure_waveform(rx.process(received), BIT_RATE,
                                            skip_ui=16)
            rows.append({
                "V1 (V)": v1,
                "boost (dB)": rx.equalizer.boost_db,
                "eye width (UI)": m.eye_width_ui,
                "jitter pp (ps)": m.jitter_pp * 1e12,
            })
        return rows

    rows = run_once(benchmark, sweep)
    save_report("fig15_tuning_curve", format_table(rows))
    # For this lossy channel the strongest boost wins.
    widths = [row["eye width (UI)"] for row in rows]
    assert widths[0] == max(widths)
