"""The streaming-reducer contract, measured: a ``keep_results=False``
sweep must hold peak supervisor memory flat in scenario count while
its aggregates match the dense run.

A Monte Carlo amplitude-yield study (mismatch draws on a DC level,
measured at the first sample) runs three ways:

* **streaming, full scale** (``BENCH_STREAM_SCENARIOS``, default
  100k): reducers only, rows dropped after folding;
* **streaming, quarter scale**: same config at ``N/4`` — the
  memory-ceiling witness.  Peak traced memory of the two streaming
  runs must agree within ``FLATNESS_CEILING`` (the peak is chunk-bound,
  not scenario-bound);
* **dense, full scale**: the legacy path, retaining every row — its
  peak must exceed the streaming peak by ``DENSE_RATIO_FLOOR``×, and it
  doubles as the parity reference: count/min/max/yield/histogram agree
  exactly, mean/variance to ``PARITY_RTOL`` relative.

Gates apply at full scale only (``BENCH_STREAM_SCENARIOS`` shrinks the
sweep for CI smoke legs, where a single chunk covers the whole sweep
and the ratios degenerate).  Headline numbers land in
``benchmarks/results/BENCH_streaming_sweep.json``.
"""

import gc
import os
import time
import tracemalloc

import numpy as np

from repro.reporting import format_table
from repro.signals import Waveform
from repro.sweep import (Count, Histogram, MeanVar, MinMax, Quantiles,
                         ScenarioGrid, SweepAxis, SweepRunner, Yield)

FS = 160e9
N_SCENARIOS = int(os.environ.get("BENCH_STREAM_SCENARIOS", "100000"))
FULL_SCALE = 100000             # the gates only apply at this size
CHUNK_ROWS = 2048
N_SAMPLES = 8

NOMINAL = 0.2                   # V
SIGMA = 0.01                    # V, mismatch draw
PASS_THRESHOLD = 0.185          # V, the yield criterion

FLATNESS_CEILING = 1.5          # peak(N) / peak(N/4) for streaming
DENSE_RATIO_FLOOR = 3.0         # peak(dense) / peak(streaming) at N
PARITY_RTOL = 1e-9              # mean/variance vs dense two-pass

# One compact draw table (allocated before any traced region): the
# axis stays a cheap range of trial indices instead of N boxed floats.
DRAWS = np.random.default_rng(23).standard_normal(N_SCENARIOS)


def stimulus(params):
    level = NOMINAL + SIGMA * DRAWS[params["trial"]]
    return Waveform(np.full(N_SAMPLES, level), FS)


def measure_batch(batch, params_list):
    return [float(value) for value in batch.data[:, 0]]


def make_runner(n_scenarios, reducers=None, keep_results=True):
    grid = ScenarioGrid([SweepAxis("trial", tuple(range(n_scenarios)))])
    return SweepRunner(grid, stimulus=stimulus,
                       measure_batch=measure_batch,
                       chunk_rows=CHUNK_ROWS,
                       reducers=reducers, keep_results=keep_results)


def make_reducers():
    lo, hi = NOMINAL - 5 * SIGMA, NOMINAL + 5 * SIGMA
    return {
        "count": Count(),
        "extrema": MinMax(),
        "level": MeanVar(),
        "hist": Histogram(lo, hi, n_bins=64),
        "quantiles": Quantiles(qs=(0.05, 0.5, 0.95), lo=lo, hi=hi,
                               n_bins=512),
        "yield": Yield(lambda value, params: value > PASS_THRESHOLD),
    }


def traced_run(runner):
    """(result, wall seconds, peak traced bytes) of one sweep."""
    gc.collect()
    tracemalloc.start()
    t0 = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def test_streaming_memory_ceiling_and_aggregate_parity(save_report,
                                                       save_json):
    quarter = max(CHUNK_ROWS, N_SCENARIOS // 4)
    stream_q, t_stream_q, peak_stream_q = traced_run(
        make_runner(quarter, reducers=make_reducers(),
                    keep_results=False))
    stream, t_stream, peak_stream = traced_run(
        make_runner(N_SCENARIOS, reducers=make_reducers(),
                    keep_results=False))
    dense, t_dense, peak_dense = traced_run(make_runner(N_SCENARIOS))

    flatness = peak_stream / peak_stream_q
    dense_ratio = peak_dense / peak_stream
    aggregates = stream.aggregates
    values = np.asarray(dense.results, dtype=float)

    gate_applied = N_SCENARIOS >= FULL_SCALE
    save_report("streaming_sweep_memory", format_table([
        {"run": "streaming N/4", "scenarios": quarter,
         "wall (s)": t_stream_q, "peak (MiB)": peak_stream_q / 2**20},
        {"run": "streaming N", "scenarios": N_SCENARIOS,
         "wall (s)": t_stream, "peak (MiB)": peak_stream / 2**20},
        {"run": "dense N", "scenarios": N_SCENARIOS,
         "wall (s)": t_dense, "peak (MiB)": peak_dense / 2**20},
    ]))
    save_json("streaming_sweep", {
        "n_scenarios": N_SCENARIOS,
        "chunk_rows": CHUNK_ROWS,
        "peak_streaming_quarter_bytes": peak_stream_q,
        "peak_streaming_full_bytes": peak_stream,
        "peak_dense_full_bytes": peak_dense,
        "streaming_flatness_ratio": flatness,
        "flatness_ceiling": FLATNESS_CEILING,
        "dense_over_streaming_ratio": dense_ratio,
        "dense_ratio_floor": DENSE_RATIO_FLOOR,
        "t_streaming_full_s": t_stream,
        "t_dense_full_s": t_dense,
        "yield_fraction": aggregates["yield"].fraction,
        "level_mean": aggregates["level"].mean,
        "level_p50": aggregates["quantiles"][0.5],
        "gate_applied": gate_applied,
    })

    # Parity vs the dense run: exact for the integer-state reducers.
    assert stream.results is None and stream.params is None
    assert aggregates["count"] == values.size
    assert aggregates["extrema"].min == values.min()
    assert aggregates["extrema"].max == values.max()
    assert aggregates["yield"].n_total == values.size
    assert aggregates["yield"].n_pass == int(
        (values > PASS_THRESHOLD).sum())
    dense_hist, _ = np.histogram(
        values[(values >= aggregates["hist"].edges[0])
               & (values <= aggregates["hist"].edges[-1])],
        bins=aggregates["hist"].edges)
    np.testing.assert_array_equal(aggregates["hist"].counts, dense_hist)
    # ... and to floating-point associativity for the moments.
    assert np.isclose(aggregates["level"].mean, values.mean(),
                      rtol=PARITY_RTOL)
    assert np.isclose(aggregates["level"].variance, values.var(),
                      rtol=PARITY_RTOL)

    if gate_applied:
        # The streaming peak is chunk-bound: quadrupling the scenario
        # count must not move it appreciably, while the dense peak
        # (which retains every row's params + result) dwarfs it.
        assert flatness < FLATNESS_CEILING, (
            f"streaming peak grew {flatness:.2f}x from {quarter} to "
            f"{N_SCENARIOS} scenarios (ceiling {FLATNESS_CEILING}x): "
            "supervisor memory is not flat in scenario count"
        )
        assert dense_ratio > DENSE_RATIO_FLOOR, (
            f"dense peak is only {dense_ratio:.2f}x the streaming peak "
            f"(floor {DENSE_RATIO_FLOOR}x): keep_results=False is not "
            "buying the expected memory headroom"
        )
