"""Receiver equalization comparison: Cherry-Hooper vs CTLE vs DFE.

Where the paper's analog equalizer sits in the receive-EQ design space:
against the generic one-zero/two-pole CTLE (its linear cousin) and a
2-tap decision-feedback equalizer (the digital road the field later
took), all on the same lossy channel.  The linear schemes reopen the
eye before the limiting amplifier; the DFE instead cleans the sampled
decisions — the bench reports both views.
"""

import numpy as np

from conftest import run_once
from repro.analysis import EyeDiagram
from repro.baselines import (
    DecisionFeedbackEqualizer,
    ctle_matching_equalizer,
    dfe_taps_from_channel,
)
from repro.channel import BackplaneChannel
from repro.core import build_input_interface
from repro.reporting import format_table
from repro.signals import bits_to_nrz, prbs7

BIT_RATE = 10e9
LENGTH_M = 0.55


def run_experiment():
    channel = BackplaneChannel(LENGTH_M)
    bits = prbs7(300)
    wave = bits_to_nrz(bits, BIT_RATE, amplitude=0.2, samples_per_bit=16)
    received = channel.process(wave)

    rows = []

    # Raw channel output.
    m_raw = EyeDiagram.measure_waveform(received, BIT_RATE, skip_ui=16)
    rows.append({"scheme": "no equalization",
                 "eye width (UI)": m_raw.eye_width_ui,
                 "jitter pp (ps)": m_raw.jitter_pp * 1e12})

    # The paper's Cherry-Hooper equalizer (through the full RX).
    rx = build_input_interface(equalizer_control_voltage=0.55)
    m_ch = EyeDiagram.measure_waveform(rx.process(received), BIT_RATE,
                                       skip_ui=16)
    rows.append({"scheme": "Cherry-Hooper (paper)",
                 "eye width (UI)": m_ch.eye_width_ui,
                 "jitter pp (ps)": m_ch.jitter_pp * 1e12})

    # Generic CTLE with matched response, then the same LA.
    ctle = ctle_matching_equalizer(rx.equalizer)
    la = rx.limiting_amplifier
    ctle_out = la.process(ctle.to_block().process(received))
    m_ctle = EyeDiagram.measure_waveform(ctle_out, BIT_RATE, skip_ui=16)
    rows.append({"scheme": "generic CTLE + LA",
                 "eye width (UI)": m_ctle.eye_width_ui,
                 "jitter pp (ps)": m_ctle.jitter_pp * 1e12})

    # 2-tap DFE on the raw channel output (decision-domain metric).
    taps = dfe_taps_from_channel(channel, BIT_RATE, n_taps=2,
                                 amplitude=0.2)
    dfe = DecisionFeedbackEqualizer(taps=taps, bit_rate=BIT_RATE,
                                    decision_amplitude=1.0)
    decisions, _ = dfe.equalize(received)
    errors = min(int(np.sum(decisions[lag:lag + 250] != bits[:250]))
                 for lag in range(3))
    dfe_inner = dfe.inner_eye_height(received)
    no_dfe_inner = DecisionFeedbackEqualizer(
        taps=[0.0], bit_rate=BIT_RATE).inner_eye_height(received)

    return rows, m_raw, m_ch, m_ctle, errors, dfe_inner, no_dfe_inner


def test_receiver_eq_comparison(benchmark, save_report):
    rows, m_raw, m_ch, m_ctle, errors, dfe_inner, no_dfe_inner = \
        run_once(benchmark, run_experiment)
    report = format_table(rows) + (
        f"\n\nDFE (2-tap, decision domain): inner eye "
        f"{no_dfe_inner * 1e3:.1f} -> {dfe_inner * 1e3:.1f} mV, "
        f"{errors} bit errors over 250 bits"
    )
    save_report("receiver_eq_comparison", report)

    # Both linear schemes reopen the eye.
    assert m_ch.eye_width_ui > m_raw.eye_width_ui + 0.1
    assert m_ctle.eye_width_ui > m_raw.eye_width_ui + 0.05
    # The paper's equalizer is competitive with the ideal linear CTLE
    # (the CTLE has no limiting inside its boost path, so it can edge
    # ahead slightly; the CH design buys 50-ohm match and gain instead).
    assert m_ch.eye_width_ui >= m_ctle.eye_width_ui - 0.2
    # The DFE fixes the decision domain.
    assert dfe_inner > no_dfe_inner
    assert errors == 0


def test_all_schemes_recover_data(benchmark):
    """Every equalization family turns the closed raw eye into
    error-free decisions on this channel."""
    rows, m_raw, m_ch, m_ctle, errors, dfe_inner, _ = run_once(
        benchmark, run_experiment
    )
    assert m_raw.eye_width_ui < 0.3      # the problem is real
    assert m_ch.eye_width_ui > 0.6       # analog CH solves it
    assert m_ctle.eye_width_ui > 0.6     # linear CTLE solves it
    assert errors == 0 and dfe_inner > 0  # the DFE solves it