"""Abstract claim — 80 % area reduction versus on-chip inductors.

"These techniques can reduce 80 % of the circuit area compared to the
circuit area with on-chip inductors" and "the total core area of I/O
interface is 0.028 mm^2, which is almost equal to an on-chip spiral
inductor".

Reproduced mechanically: every inductively loaded buffer in the default
design is swapped for a spiral-inductor load of matching DC resistance
and inductance; the differential spiral pairs dominate the baseline's
layout area.
"""

import pytest

from conftest import run_once
from repro.baselines import (
    bandwidth_parity_check,
    paper_style_comparison,
    spiral_variant_of,
)
from repro.core import build_input_interface
from repro.devices import SpiralInductor
from repro.reporting import format_table


def test_area_reduction_claim(benchmark, save_report):
    comparison = run_once(benchmark, paper_style_comparison)
    save_report("area_ablation", format_table([{
        "active-inductor core (mm^2)": comparison.active_area_mm2,
        "spiral baseline (mm^2)": comparison.spiral_area_mm2,
        "spirals added": comparison.n_spirals,
        "reduction (%)": comparison.reduction_percent,
    }]))
    assert comparison.reduction_percent >= 70.0
    assert comparison.active_area_mm2 == pytest.approx(0.028, rel=0.02)


def test_core_area_equals_one_spiral(benchmark, save_report):
    """'...almost equal to an on-chip spiral inductor.'"""
    def run():
        comparison = paper_style_comparison()
        spiral = SpiralInductor(2.5e-9)
        return comparison.active_area_mm2, spiral.area / 1e-6

    core_mm2, spiral_mm2 = run_once(benchmark, run)
    save_report(
        "area_core_vs_one_spiral",
        f"core area: {core_mm2:.4f} mm^2\n"
        f"single 2.5 nH spiral: {spiral_mm2:.4f} mm^2",
    )
    assert core_mm2 == pytest.approx(spiral_mm2, rel=0.35)


def test_same_frequency_response_claim(benchmark, save_report):
    """'Active inductors ... have the same frequency response' — the
    spiral-for-active swap preserves DC gain exactly and bandwidth
    within tolerance."""
    def run():
        buffer = build_input_interface().limiting_amplifier.input_buffer
        variant = spiral_variant_of(buffer)
        return (buffer.dc_gain, variant.dc_gain,
                buffer.bandwidth_3db(), variant.bandwidth_3db(),
                bandwidth_parity_check(buffer, tolerance=0.5))

    gain_a, gain_s, bw_a, bw_s, parity = run_once(benchmark, run)
    save_report("area_response_parity", format_table([{
        "load": "active inductor", "DC gain": gain_a,
        "BW (GHz)": bw_a / 1e9,
    }, {
        "load": "spiral R+L", "DC gain": gain_s, "BW (GHz)": bw_s / 1e9,
    }]))
    assert gain_a == pytest.approx(gain_s, rel=1e-6)
    assert parity
