"""The statistical-eye perf contract, measured: a compliance-grade BER
estimate (1e-12) must come out >= ``SPEEDUP_FLOOR``x faster than
pattern simulation could produce it, on a flat memory budget.

``BENCH_STATEYE_SCENARIOS`` (default 200) pulse responses — one
backplane drive-amplitude scenario each — run through
:meth:`StatEye.analyze_batch` three ways:

* **full scale, chunked, surfaces dropped**: the flat-memory sweep
  mode; its wall clock sets the per-scenario statistical cost;
* **quarter scale, same chunking**: the memory-ceiling witness — peak
  traced memory must stay within ``FLATNESS_CEILING`` of full scale
  (the working set is chunk-bound, not scenario-bound);
* **full scale, unchunked with surfaces**: the parity reference — the
  chunked summaries must match it.

The pattern-simulation cost of the same 1e-12 estimate is measured, not
assumed: the time-domain path is timed on a short pattern, its
throughput extrapolated to the ``10 / BER`` symbols an error-counting
estimate needs.  A cross-accuracy spot check (statistical vs
time-domain BER within half a decade in the regime both can reach)
guards against winning the race with wrong numbers.  Gates apply at
full scale only; headline numbers land in
``benchmarks/results/BENCH_stateye.json``.
"""

import gc
import os
import time
import tracemalloc

import numpy as np

from repro.analysis.ber import ber_from_eye
from repro.analysis.isi import pulse_response, pulse_response_batch
from repro.channel.backplane import BackplaneChannel
from repro.reporting import format_table
from repro.signals import add_awgn, bits_to_nrz, prbs15
from repro.stateye import StatEye

BIT_RATE = 10e9
N_SCENARIOS = int(os.environ.get("BENCH_STATEYE_SCENARIOS", "200"))
FULL_SCALE = 200                # the gates only apply at this size
CHUNK_SCENARIOS = 16
CHANNEL_M = 0.3
NOISE_RMS = 0.035

TARGET_BER = 1e-12
ERRORS_FOR_ESTIMATE = 10        # error-counting needs ~10/BER symbols
PATTERN_SYMBOLS = 4000          # timed pattern length (then extrapolated)

SPEEDUP_FLOOR = 100.0
FLATNESS_CEILING = 1.5
CROSS_CHECK_DECADES = 0.5


def make_pulses(n):
    amplitudes = np.linspace(0.25, 0.65, n)
    return pulse_response_batch(BackplaneChannel(CHANNEL_M), BIT_RATE,
                                amplitudes)


def traced(fn):
    """(result, wall seconds, peak traced bytes)."""
    gc.collect()
    tracemalloc.start()
    t0 = time.perf_counter()
    result = fn()
    elapsed = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, elapsed, peak


def time_pattern_simulation():
    """Seconds per simulated symbol of the time-domain BER path."""
    channel = BackplaneChannel(CHANNEL_M)
    bits = prbs15(PATTERN_SYMBOLS, seed=2)
    t0 = time.perf_counter()
    wave = channel.process(bits_to_nrz(bits, BIT_RATE, amplitude=0.4,
                                       samples_per_bit=32))
    ber_from_eye(add_awgn(wave, NOISE_RMS, seed=7), BIT_RATE)
    return (time.perf_counter() - t0) / PATTERN_SYMBOLS


def test_stateye_speedup_memory_and_parity(save_report, save_json):
    engine = StatEye(noise_rms=NOISE_RMS)
    pulses = make_pulses(N_SCENARIOS)
    quarter = pulses[: max(CHUNK_SCENARIOS, N_SCENARIOS // 4)]

    slim_q, t_quarter, peak_quarter = traced(
        lambda: engine.analyze_batch(quarter,
                                     chunk_scenarios=CHUNK_SCENARIOS,
                                     keep_surfaces=False))
    slim, t_stat, peak_full = traced(
        lambda: engine.analyze_batch(pulses,
                                     chunk_scenarios=CHUNK_SCENARIOS,
                                     keep_surfaces=False))
    dense = engine.analyze_batch(pulses)

    # Chunked flat-memory summaries == the unchunked reference.
    np.testing.assert_allclose(slim.min_bers, dense.min_bers, atol=1e-15)
    np.testing.assert_allclose(slim.bathtubs, dense.bathtubs, atol=1e-12)
    np.testing.assert_allclose(slim.eye_heights, dense.eye_heights,
                               atol=1e-9)
    np.testing.assert_array_equal(slim.eye_widths_ui, dense.eye_widths_ui)
    assert slim.surfaces is None

    # Measured pattern-sim throughput, extrapolated to what an
    # error-counting 1e-12 estimate costs per scenario.
    t_per_symbol = time_pattern_simulation()
    symbols_needed = ERRORS_FOR_ESTIMATE / TARGET_BER
    t_pattern_projected = t_per_symbol * symbols_needed
    t_stat_per_scenario = t_stat / N_SCENARIOS
    speedup = t_pattern_projected / t_stat_per_scenario
    flatness = peak_full / peak_quarter

    # Accuracy spot check: the speed must not come from wrong numbers.
    channel = BackplaneChannel(CHANNEL_M)
    stat_ber = engine.analyze(
        pulse_response(channel, BIT_RATE, amplitude=0.4)).ber
    wave = channel.process(bits_to_nrz(prbs15(4000, seed=2), BIT_RATE,
                                       amplitude=0.4, samples_per_bit=32))
    td_ber = ber_from_eye(add_awgn(wave, NOISE_RMS, seed=7), BIT_RATE)
    decades = abs(float(np.log10(stat_ber) - np.log10(td_ber)))

    gate_applied = N_SCENARIOS >= FULL_SCALE
    save_report("stateye_engine", format_table([
        {"run": "stat quarter (chunked)", "scenarios": len(quarter),
         "wall (s)": t_quarter, "peak (MiB)": peak_quarter / 2**20},
        {"run": "stat full (chunked)", "scenarios": N_SCENARIOS,
         "wall (s)": t_stat, "peak (MiB)": peak_full / 2**20},
        {"run": "pattern sim to 1e-12 (projected)", "scenarios": 1,
         "wall (s)": t_pattern_projected, "peak (MiB)": float("nan")},
    ]))
    save_json("stateye", {
        "n_scenarios": N_SCENARIOS,
        "chunk_scenarios": CHUNK_SCENARIOS,
        "channel_m": CHANNEL_M,
        "noise_rms": NOISE_RMS,
        "target_ber": TARGET_BER,
        "t_stat_full_s": t_stat,
        "t_stat_per_scenario_s": t_stat_per_scenario,
        "t_pattern_per_symbol_s": t_per_symbol,
        "t_pattern_projected_s": t_pattern_projected,
        "speedup_vs_pattern": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "peak_quarter_bytes": peak_quarter,
        "peak_full_bytes": peak_full,
        "memory_flatness_ratio": flatness,
        "flatness_ceiling": FLATNESS_CEILING,
        "stat_ber": stat_ber,
        "time_domain_ber": td_ber,
        "cross_check_decades": decades,
        "cross_check_limit": CROSS_CHECK_DECADES,
        "gate_applied": gate_applied,
    })

    assert decades <= CROSS_CHECK_DECADES
    if gate_applied:
        assert speedup >= SPEEDUP_FLOOR, (
            f"statistical path is only {speedup:.0f}x faster than "
            f"projected pattern simulation (floor {SPEEDUP_FLOOR}x)"
        )
        assert flatness <= FLATNESS_CEILING, (
            f"peak memory grew {flatness:.2f}x from quarter to full "
            f"scale (ceiling {FLATNESS_CEILING}) — the chunked path "
            f"is not flat"
        )
