"""The batched DFE + adaptation engine vs the serial per-scenario loops.

PR 2 batched the closed-loop CDR; this bench pins the contract for the
last serial layers — receiver-side decision-feedback equalization and
knob adaptation.  A ≥500-scenario yield study (one channel-filtered
PRBS waveform per scenario, each with its own noise draw) is equalized
twice:

* **batched**: the DFE stage dispatch (``repro.link.stage(dfe)``)
  advances all N decision-feedback loops together, one bit-step at a
  time, with vectorized interpolation sampling and per-row decision
  history;
* **serial**: :meth:`~repro.baselines.DecisionFeedbackEqualizer.equalize`
  per scenario — the reference loop.

Acceptance: the batched path is >= 20x faster wall-clock at full
scale, and every row's decisions and corrected samples match the
serial run exactly.

Two further sections exercise the layers above: the sweep subsystem
driving :func:`~repro.sweep.dfe_measure` (batched vs serial runner
passes, row-equal), and the batched knob adapters
(:func:`~repro.core.adapt_equalizer` with ``batched=True`` scoring
every coarse-grid candidate in one :func:`~repro.core.eye_quality_metric_batch`
pass, identical result to the per-candidate loop).

``BENCH_DFE_SCENARIOS`` shrinks the scenario count for CI smoke runs;
the speedup floor is only enforced at full scale (row-exactness always
is).
"""

import os
import time

import numpy as np

from conftest import run_once
from repro.baselines import DecisionFeedbackEqualizer, dfe_taps_from_channel
from repro.channel import BackplaneChannel
from repro.core import adapt_equalizer, adapt_peaking
from repro.link import stage
from repro.reporting import format_table
from repro.signals import WaveformBatch, bits_to_nrz, prbs7
from repro.sweep import ScenarioGrid, SweepAxis, SweepRunner, dfe_measure

BIT_RATE = 10e9
N_SCENARIOS = int(os.environ.get("BENCH_DFE_SCENARIOS", "500"))
N_BITS = 300
SAMPLES_PER_BIT = 16
SPEEDUP_FLOOR = 20.0

_CHANNEL = BackplaneChannel(0.5)


def make_batch(n_scenarios):
    """One channel-filtered PRBS waveform per scenario, each with its
    own noise draw."""
    received = _CHANNEL.process(
        bits_to_nrz(prbs7(N_BITS), BIT_RATE, amplitude=1.0,
                    samples_per_bit=SAMPLES_PER_BIT))
    return WaveformBatch.with_noise_seeds(
        received, rms_volts=0.01, seeds=list(range(1, n_scenarios + 1)))


def make_dfe(n_taps=3):
    taps = dfe_taps_from_channel(_CHANNEL, BIT_RATE, n_taps=n_taps,
                                 amplitude=1.0)
    return DecisionFeedbackEqualizer(taps=taps, bit_rate=BIT_RATE)


def test_batched_dfe_speedup_and_row_exactness(save_report, save_json):
    batch = make_batch(N_SCENARIOS)
    dfe = make_dfe()

    link_dfe = stage(dfe)

    # Warm both paths on a slice so first-call overheads cancel.
    link_dfe.equalize(batch[:2])
    dfe.equalize(batch[0])

    t0 = time.perf_counter()
    decisions, corrected = link_dfe.equalize(batch)
    t_batched = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = [dfe.equalize(row) for row in batch.rows()]
    t_serial = time.perf_counter() - t0

    speedup = t_serial / t_batched
    heights = link_dfe.inner_eye_height(batch)
    save_report("dfe_adaptation_engine_speedup", format_table([{
        "scenarios": N_SCENARIOS,
        "bits/scenario": N_BITS,
        "taps": len(dfe.taps),
        "serial (s)": t_serial,
        "batched (s)": t_batched,
        "speedup (x)": speedup,
        "open inner eyes (%)": 100 * float(np.mean(heights > 0)),
    }]))
    row_exact = all(
        np.array_equal(decisions[i], ref_decisions)
        and np.array_equal(corrected[i], ref_corrected)
        for i, (ref_decisions, ref_corrected) in enumerate(serial)
    )
    save_json("dfe_adaptation_engine", {
        "scenarios": N_SCENARIOS,
        "bits_per_scenario": N_BITS,
        "taps": len(dfe.taps),
        "serial_s": t_serial,
        "batched_s": t_batched,
        "speedup_x": speedup,
        "row_exact": row_exact,
        "open_inner_eye_fraction": float(np.mean(heights > 0)),
        "speedup_floor_enforced": N_SCENARIOS >= 500,
    })

    for i, (ref_decisions, ref_corrected) in enumerate(serial):
        np.testing.assert_array_equal(decisions[i], ref_decisions,
                                      err_msg=f"decisions differ, row {i}")
        np.testing.assert_array_equal(corrected[i], ref_corrected,
                                      err_msg=f"corrected differ, row {i}")
    assert float(np.mean(heights > 0)) > 0.95
    # Row-exactness is always enforced; the wall-clock gate only at
    # full scale (smoke runs time tens of milliseconds, where a CI
    # scheduler hiccup would make the ratio meaningless).
    if N_SCENARIOS >= 500:
        assert speedup >= SPEEDUP_FLOOR, (
            f"batched DFE only {speedup:.1f}x faster than serial "
            f"(need >= {SPEEDUP_FLOOR}x)"
        )


def test_dfe_yield_sweep_batched_matches_serial(benchmark, save_report):
    """The sweep subsystem driving the batched DFE kernel: inner-eye
    yield grid."""
    n_seeds = max(4, N_SCENARIOS // 25)
    received = _CHANNEL.process(
        bits_to_nrz(prbs7(N_BITS), BIT_RATE, amplitude=1.0,
                    samples_per_bit=SAMPLES_PER_BIT))
    grid = ScenarioGrid([
        SweepAxis("noise_rms", (0.005, 0.02)),
        SweepAxis("seed", tuple(range(1, n_seeds + 1))),
    ])

    def stimulus(params):
        rng = np.random.default_rng(params["seed"])
        noise = rng.normal(0.0, params["noise_rms"], size=len(received))
        return received.with_data(received.data + noise)

    measure, measure_batch = dfe_measure(make_dfe())
    runner = SweepRunner(grid, stimulus=stimulus, measure=measure,
                         measure_batch=measure_batch)

    def sweep():
        batched = runner.run()
        serial = runner.run_serial()
        assert batched.results == serial.results
        return batched.values(float)

    heights = run_once(benchmark, sweep)
    save_report("dfe_yield_sweep", format_table([
        {
            "noise rms (mV)": 1e3 * rms,
            "scenarios": n_seeds,
            "open inner eyes (%)":
                100 * float(np.mean(heights[i] > 0)),
            "median height (mV)":
                1e3 * float(np.median(heights[i])),
        }
        for i, rms in enumerate(grid.axes[0].values)
    ]))
    # Low noise keeps every inner eye open; heavier noise cannot
    # widen it.
    assert np.all(heights[0] > 0)
    assert float(np.median(heights[1])) <= float(np.median(heights[0]))


def test_batched_adaptation_matches_serial(benchmark, save_report):
    """Batched knob adaptation: one metric pass per candidate grid,
    identical search trace to the per-candidate reference."""

    def adapt():
        rows = []
        for label, adapter, channel in (
                ("equalizer V1 (V)", adapt_equalizer, BackplaneChannel(0.4)),
                ("peaking current (A)", adapt_peaking, BackplaneChannel(0.5)),
        ):
            t0 = time.perf_counter()
            batched = adapter(channel, n_refine=3, batched=True)
            t_batched = time.perf_counter() - t0
            t0 = time.perf_counter()
            serial = adapter(channel, n_refine=3, batched=False)
            t_serial = time.perf_counter() - t0
            assert batched == serial, f"{label}: batched != serial"
            rows.append({
                "knob": label,
                "optimum": batched.best_setting,
                "score": batched.best_score,
                "evaluations": batched.evaluations,
                "serial (s)": t_serial,
                "batched (s)": t_batched,
            })
        return rows

    rows = run_once(benchmark, adapt)
    save_report("batched_adaptation", format_table(rows))
    assert rows[0]["optimum"] < 0.75   # lossy channel wants boost
    assert rows[1]["optimum"] > 0.4e-3  # and nonzero peaking
