"""Extension benches: RLGC physics consistency, crosstalk budget,
eye-mask compliance, CTLE response parity.

These go beyond the paper's own figures to the system questions its
introduction raises (switch fabrics route many lanes over real FR-4):
is the parametric channel consistent with telegrapher-equation physics,
how much coupling can a lane tolerate, and does the receiver present a
compliant eye to the CDR.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.analysis import EyeDiagram, EyeMask, check_mask
from repro.baselines import ctle_matching_equalizer
from repro.channel import (
    BackplaneChannel,
    CrosstalkAggressor,
    CrosstalkChannel,
    microstrip_like,
)
from repro.core import build_input_interface
from repro.reporting import format_table
from repro.signals import bits_to_nrz, prbs7

BIT_RATE = 10e9


def test_rlgc_vs_parametric_consistency(benchmark, save_report):
    """The empirical skin+dielectric model tracks first-principles RLGC."""
    def run():
        line = microstrip_like(length=0.5)
        params = line.equivalent_parameters()
        channel = BackplaneChannel(0.5, params=params)
        freqs = np.array([1e9, 2.5e9, 5e9, 7.5e9, 10e9])
        return [{
            "f (GHz)": f / 1e9,
            "RLGC loss (dB)": float(line.loss_db(np.array([f]))[0]),
            "parametric fit (dB)": float(channel.loss_db(
                np.array([f]))[0]),
        } for f in freqs]

    rows = run_once(benchmark, run)
    save_report("ext_rlgc_consistency", format_table(rows))
    for row in rows:
        assert row["parametric fit (dB)"] == pytest.approx(
            row["RLGC loss (dB)"], rel=0.3, abs=1.0
        )


def test_crosstalk_budget(benchmark, save_report):
    """Eye height vs aggressor coupling: the lane-spacing budget."""
    def run():
        victim = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=0.25,
                             samples_per_bit=16)
        aggressor = bits_to_nrz(prbs7(260, seed=5), BIT_RATE,
                                amplitude=0.25, samples_per_bit=16)
        rows = []
        for coupling_db in (40.0, 26.0, 18.0, 12.0):
            channel = CrosstalkChannel(
                channel=BackplaneChannel(0.3),
                aggressors=[CrosstalkAggressor(signal=aggressor,
                                               coupling_db=coupling_db)],
            )
            m = EyeDiagram.measure_waveform(channel.process(victim),
                                            BIT_RATE, skip_ui=16)
            rows.append({
                "coupling (dB)": coupling_db,
                "interference rms (mV)": channel.interference_rms() * 1e3,
                "eye height (mV)": m.eye_height * 1e3,
            })
        return rows

    rows = run_once(benchmark, run)
    save_report("ext_crosstalk_budget", format_table(rows))
    heights = [row["eye height (mV)"] for row in rows]
    assert heights == sorted(heights, reverse=True)  # more coupling, worse


def test_receiver_mask_compliance(benchmark, save_report):
    """The input interface's output meets a CDR-style eye mask over its
    whole dynamic range."""
    def run():
        rx = build_input_interface()
        mask = EyeMask(x1=0.3, x2=0.45, y1=0.1, y2=0.6)
        rows = []
        for vpp in (0.004, 0.1, 1.8):
            wave = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=vpp,
                               samples_per_bit=16)
            result = check_mask(rx.process(wave), BIT_RATE, mask,
                                skip_ui=16)
            rows.append({
                "input (Vpp)": vpp,
                "passes": result.passes,
                "margin (x)": result.margin,
            })
        return rows

    rows = run_once(benchmark, run)
    save_report("ext_mask_compliance", format_table(rows))
    assert all(row["passes"] for row in rows)
    assert all(row["margin (x)"] > 1.2 for row in rows)


def test_ctle_parity(benchmark, save_report):
    """The Cherry-Hooper equalizer covers the canonical CTLE response
    family (and adds the gain the plain CTLE gives up)."""
    def run():
        rx = build_input_interface(equalizer_control_voltage=0.6)
        equalizer = rx.equalizer
        ctle = ctle_matching_equalizer(equalizer)
        freqs = np.logspace(8, 10, 9)
        return [{
            "f (GHz)": float(f) / 1e9,
            "Cherry-Hooper (dB)": float(equalizer.gain_db(
                np.array([f]))[0]),
            "generic CTLE (dB)": float(
                ctle.transfer_function().magnitude_db(np.array([f]))[0]
            ),
        } for f in freqs]

    rows = run_once(benchmark, run)
    save_report("ext_ctle_parity", format_table(rows))
    # Boost-region parity within a few dB.
    mid = [row for row in rows if 2.0 <= row["f (GHz)"] <= 6.0]
    for row in mid:
        assert row["Cherry-Hooper (dB)"] == pytest.approx(
            row["generic CTLE (dB)"], abs=4.0
        )
