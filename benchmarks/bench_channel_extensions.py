"""Extension benches: RLGC physics consistency, crosstalk budget,
eye-mask compliance, CTLE response parity, channel-length sweeps.

These go beyond the paper's own figures to the system questions its
introduction raises (switch fabrics route many lanes over real FR-4):
is the parametric channel consistent with telegrapher-equation physics,
how much coupling can a lane tolerate, and does the receiver present a
compliant eye to the CDR.

The scenario scans run on the sweep subsystem: coupling and trace
length are structural axes (the channel is rebuilt per point) while the
receiver dynamic-range scan batches all amplitudes through one pipeline
as a single :class:`~repro.signals.WaveformBatch` pass.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.analysis import EyeDiagram, EyeMask, check_mask, \
    measure_eye_batch
from repro.baselines import ctle_matching_equalizer
from repro.channel import (
    BackplaneChannel,
    CrosstalkAggressor,
    CrosstalkChannel,
    microstrip_like,
)
from repro.core import build_input_interface
from repro.reporting import format_table
from repro.signals import bits_to_nrz, prbs7
from repro.sweep import ScenarioGrid, SweepAxis, SweepRunner

BIT_RATE = 10e9


def test_rlgc_vs_parametric_consistency(benchmark, save_report):
    """The empirical skin+dielectric model tracks first-principles RLGC."""
    def run():
        line = microstrip_like(length=0.5)
        params = line.equivalent_parameters()
        channel = BackplaneChannel(0.5, params=params)
        freqs = np.array([1e9, 2.5e9, 5e9, 7.5e9, 10e9])
        return [{
            "f (GHz)": f / 1e9,
            "RLGC loss (dB)": float(line.loss_db(np.array([f]))[0]),
            "parametric fit (dB)": float(channel.loss_db(
                np.array([f]))[0]),
        } for f in freqs]

    rows = run_once(benchmark, run)
    save_report("ext_rlgc_consistency", format_table(rows))
    for row in rows:
        assert row["parametric fit (dB)"] == pytest.approx(
            row["RLGC loss (dB)"], rel=0.3, abs=1.0
        )


def test_crosstalk_budget(benchmark, save_report):
    """Eye height vs aggressor coupling: the lane-spacing budget.

    Coupling is a structural axis (the crosstalk channel is rebuilt per
    point); the victim stimulus is shared.
    """
    def run():
        victim = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=0.25,
                             samples_per_bit=16)
        aggressor = bits_to_nrz(prbs7(260, seed=5), BIT_RATE,
                                amplitude=0.25, samples_per_bit=16)
        channels = {}

        def build(params):
            channel = CrosstalkChannel(
                channel=BackplaneChannel(0.3),
                aggressors=[CrosstalkAggressor(
                    signal=aggressor,
                    coupling_db=params["coupling_db"])],
            )
            channels[params["coupling_db"]] = channel
            return channel

        grid = ScenarioGrid([
            SweepAxis("coupling_db", (40.0, 26.0, 18.0, 12.0),
                      structural=True),
        ])
        result = SweepRunner(
            grid, stimulus=lambda params: victim, build=build,
            measure_batch=lambda batch, _:
                measure_eye_batch(batch, BIT_RATE, skip_ui=16),
        ).run()
        return [{
            "coupling (dB)": params["coupling_db"],
            "interference rms (mV)":
                channels[params["coupling_db"]].interference_rms() * 1e3,
            "eye height (mV)": m.eye_height * 1e3,
        } for params, m in zip(result.params, result.results)]

    rows = run_once(benchmark, run)
    save_report("ext_crosstalk_budget", format_table(rows))
    heights = [row["eye height (mV)"] for row in rows]
    assert heights == sorted(heights, reverse=True)  # more coupling, worse


def test_receiver_mask_compliance(benchmark, save_report):
    """The input interface's output meets a CDR-style eye mask over its
    whole dynamic range.

    Amplitude is a batchable axis: all three drive levels ride through
    the receiver as one WaveformBatch pass.
    """
    def run():
        rx = build_input_interface()
        mask = EyeMask(x1=0.3, x2=0.45, y1=0.1, y2=0.6)
        grid = ScenarioGrid([SweepAxis("vpp", (0.004, 0.1, 1.8))])
        result = SweepRunner(
            grid,
            stimulus=lambda params: bits_to_nrz(
                prbs7(260), BIT_RATE, amplitude=params["vpp"],
                samples_per_bit=16),
            build=lambda params: rx,
            measure=lambda wave, params: check_mask(
                wave, BIT_RATE, mask, skip_ui=16),
        ).run()
        return [{
            "input (Vpp)": params["vpp"],
            "passes": mask_result.passes,
            "margin (x)": mask_result.margin,
        } for params, mask_result in zip(result.params, result.results)]

    rows = run_once(benchmark, run)
    save_report("ext_mask_compliance", format_table(rows))
    assert all(row["passes"] for row in rows)
    assert all(row["margin (x)"] > 1.2 for row in rows)


def test_channel_length_budget(benchmark, save_report):
    """Unequalized eye height vs trace length: the reach budget the
    paper's equalizer exists to extend.

    Length is a structural axis; the runner rebuilds the channel per
    point and reports a batched eye measurement per scenario.
    """
    def run():
        stimulus = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=0.25,
                               samples_per_bit=16)
        grid = ScenarioGrid([
            SweepAxis("length_m", (0.1, 0.25, 0.4, 0.55), structural=True),
        ])
        result = SweepRunner(
            grid,
            stimulus=lambda params: stimulus,
            build=lambda params: BackplaneChannel(params["length_m"]),
            measure_batch=lambda batch, _:
                measure_eye_batch(batch, BIT_RATE, skip_ui=16),
        ).run()
        return [{
            "length (m)": params["length_m"],
            "Nyquist loss (dB)": BackplaneChannel(
                params["length_m"]).nyquist_loss_db(BIT_RATE),
            "eye height (mV)": m.eye_height * 1e3,
        } for params, m in zip(result.params, result.results)]

    rows = run_once(benchmark, run)
    save_report("ext_channel_length_budget", format_table(rows))
    heights = [row["eye height (mV)"] for row in rows]
    # Monotone closure with reach; the longest trace should have lost
    # most of the launch swing.
    assert heights == sorted(heights, reverse=True)
    assert heights[-1] < 0.5 * heights[0]


def test_ctle_parity(benchmark, save_report):
    """The Cherry-Hooper equalizer covers the canonical CTLE response
    family (and adds the gain the plain CTLE gives up)."""
    def run():
        rx = build_input_interface(equalizer_control_voltage=0.6)
        equalizer = rx.equalizer
        ctle = ctle_matching_equalizer(equalizer)
        freqs = np.logspace(8, 10, 9)
        return [{
            "f (GHz)": float(f) / 1e9,
            "Cherry-Hooper (dB)": float(equalizer.gain_db(
                np.array([f]))[0]),
            "generic CTLE (dB)": float(
                ctle.transfer_function().magnitude_db(np.array([f]))[0]
            ),
        } for f in freqs]

    rows = run_once(benchmark, run)
    save_report("ext_ctle_parity", format_table(rows))
    # Boost-region parity within a few dB.
    mid = [row for row in rows if 2.0 <= row["f (GHz)"] <= 6.0]
    for row in mid:
        assert row["Cherry-Hooper (dB)"] == pytest.approx(
            row["generic CTLE (dB)"], abs=4.0
        )
