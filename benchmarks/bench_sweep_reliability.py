"""Cost of the sweep reliability layer: checkpoint journal overhead.

The same Monte Carlo offset sweep as ``bench_sweep_engine`` (per-die
input-referred offsets through the input interface, eyes measured at
the limiting-amplifier output), run three ways at 10k scenarios:

* **plain**: ``SweepRunner.run()``, no journal;
* **journaled**: ``run(checkpoint_dir=...)`` — every (structural
  point, row-chunk) unit's results pickled to the journal as it
  finishes;
* **resumed**: the same call again — every unit replayed from the
  journal, zero simulation.

Acceptance: journaling costs < 5% over the plain run (gated at full
scale; ``BENCH_RELIABILITY_SCENARIOS`` shrinks the sweep for CI smoke
runs where timing noise swamps a 5% margin), the journaled and plain
results are identical, the resume replays bit-exact without calling
the stimulus at all, and the headline numbers land in
``benchmarks/results/BENCH_sweep_reliability.json``.
"""

import os
import time

import numpy as np

from repro.analysis import measure_eye_batch
from repro.core import build_input_interface
from repro.devices import chain_offset_sigma, sample_offsets
from repro.reporting import format_table
from repro.signals import bits_to_nrz, prbs7
from repro.sweep import ScenarioGrid, SweepAxis, SweepRunner

BIT_RATE = 10e9
N_SCENARIOS = int(os.environ.get("BENCH_RELIABILITY_SCENARIOS", "10000"))
FULL_SCALE = 10000          # the <5% gate only applies at this size
N_BITS = 48
SAMPLES_PER_BIT = 16
CHUNK_ROWS = 512
OVERHEAD_CEILING = 0.05

STIMULUS_CALLS = {"n": 0}


def make_runner(n_scenarios):
    """The Monte Carlo offset sweep, chunked (the reliability layer's
    natural operating mode: chunks are the journal/retry granule)."""
    rx = build_input_interface()
    la = rx.limiting_amplifier
    sigma = chain_offset_sigma(
        [stage.input_pair for stage in la.stage_chain()],
        [abs(stage.small_signal_tf().dc_gain())
         for stage in la.stage_chain()],
    )
    loop = abs(la.dc_gain()) * la.offset_network.sense_gain
    offsets = sample_offsets(sigma, n_scenarios, seed=7) / (1.0 + loop)
    rng = np.random.default_rng(11)
    scales = 1.0 + 0.05 * rng.standard_normal(n_scenarios)
    base = bits_to_nrz(prbs7(N_BITS), BIT_RATE, amplitude=0.01,
                       samples_per_bit=SAMPLES_PER_BIT)

    grid = ScenarioGrid([
        SweepAxis("die", tuple(zip(offsets, scales))),
    ])

    def stimulus(params):
        STIMULUS_CALLS["n"] += 1
        offset, scale = params["die"]
        return base * scale + offset

    return SweepRunner(
        grid, stimulus=stimulus,
        build=lambda params: rx,
        measure_batch=lambda batch, _:
            measure_eye_batch(batch, BIT_RATE, skip_ui=8),
        chunk_rows=CHUNK_ROWS,
    )


def test_checkpoint_overhead(save_report, save_json, tmp_path):
    runner = make_runner(N_SCENARIOS)
    make_runner(4).run()   # warm the discretization caches

    t0 = time.perf_counter()
    plain = runner.run()
    t_plain = time.perf_counter() - t0

    checkpoint_dir = tmp_path / "journal"
    t0 = time.perf_counter()
    journaled = runner.run(checkpoint_dir=checkpoint_dir)
    t_journaled = time.perf_counter() - t0

    STIMULUS_CALLS["n"] = 0
    t0 = time.perf_counter()
    resumed = runner.run(checkpoint_dir=checkpoint_dir)
    t_resumed = time.perf_counter() - t0

    overhead = t_journaled / t_plain - 1.0
    n_units = -(-N_SCENARIOS // CHUNK_ROWS)
    save_report("sweep_reliability_overhead", format_table([{
        "scenarios": N_SCENARIOS,
        "units": n_units,
        "plain (s)": t_plain,
        "journaled (s)": t_journaled,
        "overhead (%)": 100 * overhead,
        "resume replay (s)": t_resumed,
    }]))
    save_json("sweep_reliability", {
        "n_scenarios": N_SCENARIOS,
        "chunk_rows": CHUNK_ROWS,
        "n_units": n_units,
        "t_plain_s": t_plain,
        "t_journaled_s": t_journaled,
        "checkpoint_overhead_frac": overhead,
        "overhead_ceiling_frac": OVERHEAD_CEILING,
        "t_resume_replay_s": t_resumed,
        "resume_bit_exact": resumed.results == plain.results,
        "gate_applied": N_SCENARIOS >= FULL_SCALE,
    })

    # Journaling must not change a single measurement, and a resume
    # must replay every unit (no simulation) bit-exact.
    assert journaled.results == plain.results
    assert resumed.results == plain.results
    assert resumed.params == plain.params
    assert STIMULUS_CALLS["n"] == 0
    if N_SCENARIOS >= FULL_SCALE:
        assert overhead < OVERHEAD_CEILING, (
            f"checkpoint journal costs {100 * overhead:.1f}% "
            f"(ceiling {100 * OVERHEAD_CEILING:.0f}%)"
        )
        assert t_resumed < t_plain
