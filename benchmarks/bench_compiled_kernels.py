"""Compiled bit-serial kernels + the fused chunked link pass.

PRs 1-4 vectorized every layer across scenarios; the wall-clock floor
left was the Python interpreter advancing the two bit-serial engines
(bang-bang CDR, DFE) one bit-step at a time, and the memory ceiling was
every stage materializing full ``(n_scenarios, n_samples)``
intermediates.  This bench pins the contracts of the two answers:

* **kernel backends** (``repro.kernels``): the numba-compiled per-row
  loops must be *bit-identical* to the pure-NumPy batch engine on the
  existing CDR/DFE contracts — decisions, phase tracks, votes, slips,
  corrected samples — and >= 5x faster on the bit-serial stages at
  full scale.  Without numba installed the NumPy fallback is timed
  alone and the comparison is skipped (selection is silent by design).
* **fused chunked pass** (``LinkSession.run_batch(chunk_rows=...)``):
  streaming tx → rx → CDR/DFE in bounded row-chunks must be row-exact
  vs the monolithic batch for uneven chunk boundaries, and a
  100k-scenario synthetic batch must complete under a traced-memory
  bound that the monolithic pass exceeds.

``BENCH_KERNEL_SCENARIOS`` shrinks the speedup sections and
``BENCH_KERNEL_MEMORY_SCENARIOS`` the memory section for CI smoke runs
(row-exactness and the memory ordering are always enforced; the
wall-clock floor only at full scale).
"""

import os
import time
import tracemalloc

import numpy as np
import pytest

from repro import kernels
from repro.baselines import DecisionFeedbackEqualizer, dfe_taps_from_channel
from repro.cdr import BangBangCdr, CdrConfig
from repro.channel import BackplaneChannel
from repro.link import ChannelConfig, DfeConfig, LinkSession, RxConfig, \
    TxConfig, stage
from repro.reporting import format_table
from repro.signals import (
    NrzEncoder,
    RandomJitter,
    WaveformBatch,
    add_awgn,
    bits_to_nrz,
    prbs7,
)

BIT_RATE = 10e9
N_SCENARIOS = int(os.environ.get("BENCH_KERNEL_SCENARIOS", "500"))
N_MEMORY_SCENARIOS = int(
    os.environ.get("BENCH_KERNEL_MEMORY_SCENARIOS", "100000"))
N_BITS = 280
SAMPLES_PER_BIT = 8
COMPILED_SPEEDUP_FLOOR = 5.0

HAVE_NUMBA = "numba" in kernels.available_backends()


def make_cdr_batch(n_scenarios):
    """One jittered + noisy PRBS waveform per scenario."""
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=SAMPLES_PER_BIT,
                         amplitude=0.4)
    bits = prbs7(N_BITS)
    waves = []
    for seed in range(1, n_scenarios + 1):
        jitter = RandomJitter(3e-12, seed=seed)
        wave = encoder.encode(bits,
                              edge_offsets=jitter.offsets(N_BITS, BIT_RATE))
        waves.append(add_awgn(wave, rms_volts=0.02, seed=seed))
    return WaveformBatch.stack(waves)


def _time(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def test_kernel_backends_bit_exact_and_compiled_speedup(save_report,
                                                        save_json):
    """CDR + DFE bit-serial stages under every available backend."""
    batch = make_cdr_batch(N_SCENARIOS)
    cdr = BangBangCdr(CdrConfig(bit_rate=BIT_RATE, kp=8e-3, ki=2e-5))
    channel = BackplaneChannel(0.5)
    received = channel.process(
        bits_to_nrz(prbs7(N_BITS), BIT_RATE, amplitude=1.0,
                    samples_per_bit=16))
    dfe_batch = WaveformBatch.with_noise_seeds(
        received, rms_volts=0.01,
        seeds=list(range(1, N_SCENARIOS + 1)))
    dfe = DecisionFeedbackEqualizer(
        taps=dfe_taps_from_channel(channel, BIT_RATE, n_taps=3,
                                   amplitude=1.0),
        bit_rate=BIT_RATE)

    timings = {}
    results = {}
    for name in ("numpy",) + (("numba",) if HAVE_NUMBA else ()):
        with kernels.use_backend(name):
            # Warm up: numba compiles on first call, numpy pays cache
            # effects; both paths then time steady state.
            stage(cdr).recover(batch[:2])
            stage(dfe).equalize(dfe_batch[:2])
            cdr_result, t_cdr = _time(lambda: stage(cdr).recover(batch))
            dfe_result, t_dfe = _time(lambda: stage(dfe).equalize(dfe_batch))
        timings[name] = {"cdr_s": t_cdr, "dfe_s": t_dfe}
        results[name] = (cdr_result, dfe_result)

    bit_exact = None
    cdr_speedup = dfe_speedup = None
    if HAVE_NUMBA:
        ref_cdr, (ref_dec, ref_cor) = results["numpy"]
        fast_cdr, (fast_dec, fast_cor) = results["numba"]
        bit_exact = (
            np.array_equal(fast_cdr.decisions, ref_cdr.decisions)
            and np.array_equal(fast_cdr.phase_track_ui,
                               ref_cdr.phase_track_ui, equal_nan=True)
            and np.array_equal(fast_cdr.votes, ref_cdr.votes)
            and np.array_equal(fast_cdr.slips, ref_cdr.slips)
            and np.array_equal(fast_cdr.locked_at_bit, ref_cdr.locked_at_bit)
            and np.array_equal(fast_cdr.n_bits, ref_cdr.n_bits)
            and np.array_equal(fast_dec, ref_dec)
            and np.array_equal(fast_cor, ref_cor)
        )
        cdr_speedup = timings["numpy"]["cdr_s"] / timings["numba"]["cdr_s"]
        dfe_speedup = timings["numpy"]["dfe_s"] / timings["numba"]["dfe_s"]

    save_report("compiled_kernels_speedup", format_table([
        {
            "backend": name,
            "scenarios": N_SCENARIOS,
            "CDR (s)": t["cdr_s"],
            "DFE (s)": t["dfe_s"],
        }
        for name, t in timings.items()
    ]))
    save_json("compiled_kernels", {
        "scenarios": N_SCENARIOS,
        "bits_per_scenario": N_BITS,
        "backends_timed": sorted(timings),
        "timings_s": timings,
        "numba_available": HAVE_NUMBA,
        "bit_exact_across_backends": bit_exact,
        "cdr_compiled_speedup_x": cdr_speedup,
        "dfe_compiled_speedup_x": dfe_speedup,
        "speedup_floor": COMPILED_SPEEDUP_FLOOR,
        "speedup_floor_enforced": HAVE_NUMBA and N_SCENARIOS >= 500,
    })

    if HAVE_NUMBA:
        assert bit_exact, (
            "compiled kernels are not bit-identical to the NumPy batch "
            "path"
        )
        # Row-exactness is always enforced; the wall-clock gate only at
        # full scale (smoke runs time milliseconds, where scheduler
        # noise would make the ratio meaningless).
        if N_SCENARIOS >= 500:
            assert cdr_speedup >= COMPILED_SPEEDUP_FLOOR, (
                f"compiled CDR only {cdr_speedup:.1f}x over the NumPy "
                f"batch path (need >= {COMPILED_SPEEDUP_FLOOR}x)"
            )
            assert dfe_speedup >= COMPILED_SPEEDUP_FLOOR, (
                f"compiled DFE only {dfe_speedup:.1f}x over the NumPy "
                f"batch path (need >= {COMPILED_SPEEDUP_FLOOR}x)"
            )


def _fused_session():
    return LinkSession.from_configs(
        TxConfig(), ChannelConfig(0.3), RxConfig(),
        bit_rate=BIT_RATE,
        cdr=CdrConfig(bit_rate=BIT_RATE, kp=8e-3, ki=2e-5),
        dfe=DfeConfig(taps=(0.05, 0.02)),
    )


def test_fused_chunked_pass_row_exact(save_report, save_json):
    """Chunked streaming vs the monolithic pass: exact rows, same cost."""
    n = max(24, N_SCENARIOS // 5)
    batch = make_cdr_batch(n)
    session = _fused_session()

    session.run_batch(batch[:2])  # warm
    mono, t_mono = _time(lambda: session.run_batch(batch))
    # An uneven chunk size exercises the ragged final chunk.
    chunk_rows = max(1, n // 7) * 2 + 1
    chunked, t_chunked = _time(
        lambda: session.run_batch(batch, chunk_rows=chunk_rows))

    row_exact = (
        np.array_equal(chunked.output.data, mono.output.data)
        and chunked.eyes == mono.eyes
        and np.array_equal(chunked.cdr.decisions, mono.cdr.decisions)
        and np.array_equal(chunked.cdr.phase_track_ui,
                           mono.cdr.phase_track_ui, equal_nan=True)
        and np.array_equal(chunked.cdr.locked_at_bit,
                           mono.cdr.locked_at_bit)
        and np.array_equal(chunked.cdr.slips, mono.cdr.slips)
        and np.array_equal(chunked.dfe_decisions, mono.dfe_decisions)
        and np.array_equal(chunked.dfe_corrected, mono.dfe_corrected)
    )
    overhead = t_chunked / t_mono - 1.0
    save_report("fused_chunked_pass", format_table([{
        "scenarios": n,
        "chunk rows": chunk_rows,
        "monolithic (s)": t_mono,
        "chunked (s)": t_chunked,
        "chunk overhead (%)": 100 * overhead,
    }]))
    save_json("fused_chunked_pass", {
        "scenarios": n,
        "chunk_rows": chunk_rows,
        "monolithic_s": t_mono,
        "chunked_s": t_chunked,
        "chunk_overhead_fraction": overhead,
        "row_exact": row_exact,
    })
    assert row_exact, "chunked fused pass diverged from the monolithic run"


def test_chunked_pass_memory_ceiling(save_report, save_json):
    """A 100k-scenario batch fits chunked where the monolithic pass
    cannot.

    Traced allocation peaks (``tracemalloc``, which numpy reports
    into) are compared against one bound: the chunked streaming pass
    must stay under it, the monolithic pass must exceed it — the bound
    is set below the size of a *single* full ``(n_scenarios,
    n_samples)`` stage intermediate, which the monolithic pass cannot
    avoid materializing and the chunked pass never builds.
    """
    n = N_MEMORY_SCENARIOS
    n_bits = 24
    wave = bits_to_nrz(prbs7(n_bits), BIT_RATE, amplitude=0.4,
                       samples_per_bit=SAMPLES_PER_BIT)
    batch = WaveformBatch.tiled(wave, n)
    # Cheap synthetic analog chain: full-size intermediates without
    # lfilter cost, so the bench isolates memory behavior.
    session = LinkSession(
        stages=[lambda b: b * 0.9, lambda b: b.clip(-1.0, 1.0)],
        bit_rate=BIT_RATE,
        cdr=CdrConfig(bit_rate=BIT_RATE, kp=8e-3, ki=2e-5),
        dfe=DfeConfig(taps=(0.08, 0.03)),
        measure_eye=False,
    )
    chunk_rows = max(64, n // 50)
    full_stage_bytes = batch.data.nbytes
    bound_bytes = int(0.75 * full_stage_bytes)

    session.run_batch(batch[:2])  # warm caches outside the trace
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        chunked = session.run_batch(batch, chunk_rows=chunk_rows,
                                    keep_output=False)
        _, peak_chunked = tracemalloc.get_traced_memory()
        spot_rows = [0, n // 2, n - 1]
        spot_decisions = [chunked.cdr.decisions[i].copy()
                          for i in spot_rows]
        del chunked
        tracemalloc.reset_peak()
        mono = session.run_batch(batch, keep_output=False)
        _, peak_mono = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    for i, decisions in zip(spot_rows, spot_decisions):
        np.testing.assert_array_equal(
            decisions, mono.cdr.decisions[i],
            err_msg=f"chunked row {i} diverged from monolithic")

    save_report("chunked_memory_ceiling", format_table([{
        "scenarios": n,
        "chunk rows": chunk_rows,
        "stage array (MB)": full_stage_bytes / 1e6,
        "bound (MB)": bound_bytes / 1e6,
        "chunked peak (MB)": peak_chunked / 1e6,
        "monolithic peak (MB)": peak_mono / 1e6,
    }]))
    save_json("chunked_memory_ceiling", {
        "scenarios": n,
        "chunk_rows": chunk_rows,
        "stage_array_bytes": full_stage_bytes,
        "bound_bytes": bound_bytes,
        "chunked_peak_bytes": peak_chunked,
        "monolithic_peak_bytes": peak_mono,
        "chunked_under_bound": peak_chunked < bound_bytes,
        "monolithic_over_bound": peak_mono > bound_bytes,
    })
    assert peak_chunked < bound_bytes, (
        f"chunked pass peaked at {peak_chunked / 1e6:.0f} MB, over the "
        f"{bound_bytes / 1e6:.0f} MB bound"
    )
    assert peak_mono > bound_bytes, (
        f"monolithic pass peaked at only {peak_mono / 1e6:.0f} MB; the "
        "bound no longer separates the two paths"
    )
    assert peak_mono > peak_chunked * 2, (
        "chunking no longer reduces peak memory materially"
    )
