"""Fig 16 — output-interface waveform without/with voltage peaking.

Paper series: 10 Gb/s PRBS7 through the output interface; (a) output
signal without the voltage-peaking circuit, (b) with it — edges
overshoot the settled level ("voltage peaking"), pre-compensating the
backplane's high-frequency loss.

Reproduced: the transmitted waveform shows the edge overshoot (pp swing
up by the spike height), and after the backplane the peaked signal's
eye is measurably better.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.analysis import EyeDiagram
from repro.channel import BackplaneChannel
from repro.core import build_output_interface
from repro.reporting import format_comparison, render_waveform
from repro.signals import bits_to_nrz, prbs7

BIT_RATE = 10e9


def run_experiment():
    channel = BackplaneChannel(0.5)
    wave = bits_to_nrz(prbs7(300), BIT_RATE, amplitude=0.3,
                       samples_per_bit=16)
    results = {}
    for enabled in (False, True):
        tx = build_output_interface(peaking_enabled=enabled)
        driven = tx.process(wave)
        after = channel.process(driven)
        results[enabled] = (driven, after)
    return results


def test_fig16_waveform_overshoot(benchmark, save_report):
    results = run_once(benchmark, run_experiment)
    plain_tx, _ = results[False]
    peaked_tx, _ = results[True]

    art = []
    for label, wave in (("a) without peaking", plain_tx),
                        ("b) with peaking", peaked_tx)):
        segment = wave.slice_time(2e-9, 4e-9)
        art.append(render_waveform(segment.time, segment.data,
                                   title=f"Fig 16({label}"))
    save_report("fig16_tx_waveforms", "\n\n".join(art))

    # Peaking boosts the edges above the settled level: pp grows by
    # roughly the spike height while the settled swing is unchanged.
    settled_plain = np.percentile(np.abs(plain_tx.data), 50)
    settled_peaked = np.percentile(np.abs(peaked_tx.data), 50)
    assert settled_peaked == pytest.approx(settled_plain, rel=0.15)
    assert peaked_tx.peak_to_peak() > 1.08 * plain_tx.peak_to_peak()


def test_fig16_eye_after_channel(benchmark, save_report):
    results = run_once(benchmark, run_experiment)
    _, plain_rx = results[False]
    _, peaked_rx = results[True]
    m_plain = EyeDiagram.measure_waveform(plain_rx, BIT_RATE, skip_ui=16)
    m_peaked = EyeDiagram.measure_waveform(peaked_rx, BIT_RATE, skip_ui=16)

    save_report("fig16_eye_after_channel", format_comparison(
        "without peaking", "with peaking",
        {
            "eye height (mV)": (m_plain.eye_height * 1e3,
                                m_peaked.eye_height * 1e3),
            "eye width (UI)": (m_plain.eye_width_ui, m_peaked.eye_width_ui),
            "jitter pp (ps)": (m_plain.jitter_pp * 1e12,
                               m_peaked.jitter_pp * 1e12),
        },
    ))
    assert m_peaked.eye_height > m_plain.eye_height
    assert m_peaked.jitter_pp <= m_plain.jitter_pp * 1.05


def test_fig16_spike_knobs(benchmark, save_report):
    """The paper's two tuning knobs: spike height (differentiator tail
    current) and spike width (delay-buffer tail current)."""
    from repro.reporting import format_table

    def sweep():
        wave = bits_to_nrz(prbs7(200), BIT_RATE, amplitude=0.3,
                           samples_per_bit=16)
        rows = []
        for spike_current in (0.5e-3, 1.5e-3, 3e-3):
            tx = build_output_interface(spike_current=spike_current)
            out = tx.process(wave)
            rows.append({
                "I_diff (mA)": spike_current * 1e3,
                "spike height (mV)":
                    tx.peaking.differentiator.spike_height * 1e3,
                "tx pp (mV)": out.peak_to_peak() * 1e3,
                "pre-emphasis (dB)": tx.peaking.preemphasis_db(
                    tx.driver.output_swing_pp
                ),
            })
        return rows

    rows = run_once(benchmark, sweep)
    save_report("fig16_spike_height_knob", format_table(rows))
    pps = [row["tx pp (mV)"] for row in rows]
    assert pps == sorted(pps)  # more tail current -> taller edges
