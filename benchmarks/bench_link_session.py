"""The ``LinkSession`` facade vs the hand-batched path it replaced.

The api-redesign PR routes every serial/batch method pair through one
dispatching code path (``repro.link``).  This bench pins the two
contracts that redesign must honor:

* **row-exactness** — a ≥500-scenario study (one jittered PRBS pattern
  per scenario, each with its own noise draw) produces identical
  per-row outputs, eye measurements and CDR results whether it is run
  through ``LinkSession.run_batch`` or through the pre-redesign
  hand-batched sequence (batch-transparent ``rx.process``, then
  ``measure_eye_batch``, then the batched CDR kernel);
* **overhead < 5 %** — the facade adds dispatch and report assembly
  only; its wall clock must stay within 5 % of the hand-batched path.

A second section checks ``LinkSession.sweep`` against a hand-built
:class:`~repro.sweep.runner.SweepRunner` over the same grid.

``BENCH_LINK_SCENARIOS`` shrinks the scenario count for CI smoke runs;
the overhead gate is only enforced at full scale (row-exactness always
is).
"""

import os
import time

import numpy as np

from conftest import run_once
from repro import ChannelConfig, LinkSession, RxConfig
from repro.analysis import measure_eye_batch
from repro.cdr import BangBangCdr, CdrConfig
from repro.core import build_input_interface
from repro.link import CdrStage
from repro.reporting import format_table
from repro.signals import NrzEncoder, RandomJitter, WaveformBatch, \
    add_awgn, bits_to_nrz, prbs7
from repro.sweep import ScenarioGrid, SweepAxis, SweepRunner

BIT_RATE = 10e9
N_SCENARIOS = int(os.environ.get("BENCH_LINK_SCENARIOS", "500"))
N_BITS = 280
SAMPLES_PER_BIT = 8
SKIP_UI = 16
OVERHEAD_CEILING = 1.05

CDR_CONFIG = CdrConfig(bit_rate=BIT_RATE, kp=8e-3, ki=2e-5)


def make_batch(n_scenarios, amplitude=0.02):
    """One jittered + noisy PRBS waveform per scenario (rx-input scale)."""
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=SAMPLES_PER_BIT,
                         amplitude=amplitude)
    bits = prbs7(N_BITS)
    waves = []
    for seed in range(1, n_scenarios + 1):
        jitter = RandomJitter(3e-12, seed=seed)
        wave = encoder.encode(bits,
                              edge_offsets=jitter.offsets(N_BITS, BIT_RATE))
        waves.append(add_awgn(wave, rms_volts=0.002, seed=seed))
    return WaveformBatch.stack(waves)


def hand_batched(rx, batch):
    """The pre-redesign sequence: batch-transparent process + batched
    eye measurement + the batched CDR kernel, called by hand."""
    out = rx.process(batch)
    eyes = measure_eye_batch(out, BIT_RATE, skip_ui=SKIP_UI)
    cdr = CdrStage(BangBangCdr(CDR_CONFIG)).recover(out)
    return out, eyes, cdr


def test_facade_row_exact_and_overhead(save_report):
    batch = make_batch(N_SCENARIOS)
    rx = build_input_interface()
    session = LinkSession([rx], bit_rate=BIT_RATE, cdr=CDR_CONFIG,
                          skip_ui=SKIP_UI)

    # Warm both paths on a slice so first-call overheads cancel, then
    # take the best of three timings per path (the workloads are
    # identical kernels; best-of damps scheduler noise).
    session.run_batch(batch[:2])
    hand_batched(rx, batch[:2])

    t_facade = min(_timed(lambda: session.run_batch(batch))
                   for _ in range(3))
    t_hand = min(_timed(lambda: hand_batched(rx, batch))
                 for _ in range(3))
    result = session.run_batch(batch)
    out, eyes, cdr = hand_batched(rx, batch)

    overhead = t_facade / t_hand - 1.0
    save_report("link_session_overhead", format_table([{
        "scenarios": N_SCENARIOS,
        "bits/scenario": N_BITS,
        "hand-batched (s)": t_hand,
        "facade (s)": t_facade,
        "overhead (%)": 100 * overhead,
        "lock yield (%)": 100 * result.lock_yield(),
    }]))

    np.testing.assert_array_equal(result.output.data, out.data)
    assert result.eyes == eyes
    np.testing.assert_array_equal(result.cdr.decisions, cdr.decisions)
    np.testing.assert_array_equal(result.cdr.phase_track_ui,
                                  cdr.phase_track_ui)
    np.testing.assert_array_equal(result.cdr.locked_at_bit,
                                  cdr.locked_at_bit)
    np.testing.assert_array_equal(result.cdr.slips, cdr.slips)
    assert result.lock_yield() > 0.95
    # Row-exactness is always enforced; the wall-clock gate only at
    # full scale (smoke runs time tens of milliseconds, where a CI
    # scheduler hiccup would make the ratio meaningless).
    if N_SCENARIOS >= 500:
        assert overhead < OVERHEAD_CEILING - 1.0, (
            f"facade overhead {100 * overhead:.1f}% exceeds "
            f"{100 * (OVERHEAD_CEILING - 1.0):.0f}%"
        )


def _timed(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def test_facade_sweep_matches_hand_built_runner(benchmark, save_report):
    """LinkSession.sweep reproduces a hand-assembled SweepRunner."""
    n_seeds = max(4, N_SCENARIOS // 25)
    session = LinkSession.from_configs(
        tx=None, channel=ChannelConfig(0.3),
        rx=RxConfig(equalizer_control_voltage=0.6), skip_ui=SKIP_UI)
    grid = ScenarioGrid([
        SweepAxis("length_m", (0.2, 0.5), structural=True),
        SweepAxis("seed", tuple(range(1, n_seeds + 1))),
    ])

    def stimulus(params):
        wave = bits_to_nrz(prbs7(N_BITS), BIT_RATE, amplitude=0.25,
                           samples_per_bit=SAMPLES_PER_BIT)
        return add_awgn(wave, 3e-3, seed=params["seed"])

    def hand_build(params):
        from repro.channel import BackplaneChannel
        from repro.lti import Pipeline

        rx = build_input_interface(equalizer_control_voltage=0.6)
        return Pipeline([BackplaneChannel(params["length_m"]),
                         rx.to_pipeline()])

    hand_runner = SweepRunner(
        grid, stimulus=stimulus, build=hand_build,
        measure_batch=lambda batch, _:
            measure_eye_batch(batch, BIT_RATE, skip_ui=SKIP_UI))

    def compare():
        facade = session.sweep(grid, stimulus).values(
            lambda r: r.eye.eye_height)
        hand = hand_runner.run().values(lambda m: m.eye_height)
        return facade, hand

    facade, hand = run_once(benchmark, compare)
    save_report("link_session_sweep", format_table([{
        "structural points": 2,
        "seeds": n_seeds,
        "max |facade - hand| (V)": float(np.max(np.abs(facade - hand))),
        "open eyes (%)": 100 * float(np.mean(facade > 0)),
    }]))
    np.testing.assert_array_equal(facade, hand)
    assert np.all(facade > 0)
