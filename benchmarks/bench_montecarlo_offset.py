"""Monte Carlo mismatch yield — the quantitative case for Fig 8.

The paper: "the offset voltages contributed from device and layout
mismatches can become a problem after three stages of amplification that
make the output signal saturation and duty-cycle distortion."

This bench samples Pelgrom-law input offsets for the limiting
amplifier's actual device sizes and computes the yield against an
"output not saturated by offset" criterion, with and without the
cancellation loop: the loop takes the design from coin-flip yield to
effectively 100 %.
"""

import numpy as np

from conftest import run_once
from repro.core import build_input_interface
from repro.devices import chain_offset_sigma, pair_offset_sigma, \
    sample_offsets
from repro.reporting import format_table

N_SAMPLES = 2000


def run_experiment():
    la = build_input_interface().limiting_amplifier
    pairs = [stage.input_pair for stage in la.stage_chain()]
    gains = [abs(stage.small_signal_tf().dc_gain())
             for stage in la.stage_chain()]
    sigma_in = chain_offset_sigma(pairs, gains)
    offsets = sample_offsets(sigma_in, N_SAMPLES, seed=42)

    gain = abs(la.dc_gain())
    swing = la.output_swing
    # Failure criterion: offset eats more than half the output swing
    # (beyond that the smaller eye level approaches the rail and DCD
    # explodes).
    threshold = 0.5 * swing

    uncancelled_out = np.abs(offsets) * gain
    loop = gain * la.offset_network.sense_gain
    cancelled_out = uncancelled_out / (1.0 + loop)

    yield_without = float(np.mean(uncancelled_out < threshold))
    yield_with = float(np.mean(cancelled_out < threshold))
    return sigma_in, yield_without, yield_with, pairs


def test_montecarlo_offset_yield(benchmark, save_report):
    sigma_in, yield_without, yield_with, pairs = run_once(benchmark,
                                                          run_experiment)
    save_report("montecarlo_offset_yield", format_table([{
        "input-referred sigma (mV)": sigma_in * 1e3,
        "samples": N_SAMPLES,
        "yield w/o offset loop (%)": 100 * yield_without,
        "yield with offset loop (%)": 100 * yield_with,
    }]))
    # The paper's motivation, quantified: without the loop a large
    # fraction of dies saturate; with it essentially all pass.
    assert sigma_in > 0.5e-3          # mismatch is mV-scale
    assert yield_without < 0.60       # the "problem"
    assert yield_with > 0.999         # the fix


def test_front_stage_dominates_offset(benchmark, save_report):
    def run():
        la = build_input_interface().limiting_amplifier
        rows = []
        gain_product = 1.0
        for stage in la.stage_chain():
            sigma = pair_offset_sigma(stage.input_pair)
            rows.append({
                "stage": stage.name,
                "own sigma (mV)": sigma * 1e3,
                "input-referred (mV)": sigma / gain_product * 1e3,
            })
            gain_product *= abs(stage.small_signal_tf().dc_gain())
        return rows

    rows = run_once(benchmark, run)
    save_report("montecarlo_stage_contributions", format_table(rows))
    referred = [row["input-referred (mV)"] for row in rows]
    # Monotone decay: each later stage matters less at the input.
    assert all(a >= b * 0.99 for a, b in zip(referred, referred[1:]))
    assert referred[0] > 3 * referred[2]
