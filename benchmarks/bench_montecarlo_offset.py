"""Monte Carlo mismatch yield — the quantitative case for Fig 8.

The paper: "the offset voltages contributed from device and layout
mismatches can become a problem after three stages of amplification that
make the output signal saturation and duty-cycle distortion."

This bench samples Pelgrom-law input offsets for the limiting
amplifier's actual device sizes and computes the yield against an
"output not saturated by offset" criterion, with and without the
cancellation loop: the loop takes the design from coin-flip yield to
effectively 100 %.

The scan runs on the sweep subsystem: the 2000 mismatch draws are one
batchable :class:`~repro.sweep.ScenarioGrid` axis and the loop state a
structural axis, so each loop setting is a single
:class:`~repro.signals.WaveformBatch` pass through the amplifier's
small-signal dynamics (one vectorized ``lfilter`` call per pole pair
instead of 2000 per-die simulations).
"""

import numpy as np

from conftest import run_once
from repro.core import build_input_interface
from repro.devices import chain_offset_sigma, pair_offset_sigma, \
    sample_offsets
from repro.lti import LinearBlock
from repro.reporting import format_table
from repro.signals import Waveform
from repro.sweep import ScenarioGrid, SweepAxis, SweepRunner

N_SAMPLES = 2000
#: Enough samples for the steady-state-initialized filters to report the
#: settled DC level on every row.
N_DC_SAMPLES = 32
SAMPLE_RATE = 160e9


def run_experiment():
    la = build_input_interface().limiting_amplifier
    pairs = [stage.input_pair for stage in la.stage_chain()]
    gains = [abs(stage.small_signal_tf().dc_gain())
             for stage in la.stage_chain()]
    sigma_in = chain_offset_sigma(pairs, gains)
    offsets = sample_offsets(sigma_in, N_SAMPLES, seed=42)

    gain = abs(la.dc_gain())
    swing = la.output_swing
    # Failure criterion: offset eats more than half the output swing
    # (beyond that the smaller eye level approaches the rail and DCD
    # explodes).
    threshold = 0.5 * swing
    loop = gain * la.offset_network.sense_gain

    # Each die is a DC stimulus at its input-referred offset; the
    # amplifier's linear dynamics (the saturation criterion is about
    # where the *linear* output wants to go) map it to the settled
    # output level.  The offset loop divides the input by (1 + T).
    grid = ScenarioGrid([
        SweepAxis("loop_closed", (False, True), structural=True),
        SweepAxis("offset", tuple(offsets)),
    ])

    def stimulus(params):
        level = params["offset"]
        if params["loop_closed"]:
            level = level / (1.0 + loop)
        return Waveform(np.full(N_DC_SAMPLES, level), SAMPLE_RATE)

    def build(params):
        # One stage chain's small-signal dynamics per structural point;
        # steady-state initialization makes every sample the DC answer.
        return LinearBlock(la.small_signal_tf().scaled(1.0))

    runner = SweepRunner(
        grid, stimulus=stimulus, build=build,
        measure=lambda wave, params: abs(float(wave.data[-1])),
    )
    result = runner.run()
    out_levels = result.values(lambda v: v)  # shape (2, N_SAMPLES)
    uncancelled_out, cancelled_out = out_levels

    yield_without = float(np.mean(uncancelled_out < threshold))
    yield_with = float(np.mean(cancelled_out < threshold))
    return sigma_in, yield_without, yield_with, pairs, \
        uncancelled_out, gain, offsets


def test_montecarlo_offset_yield(benchmark, save_report):
    (sigma_in, yield_without, yield_with, pairs,
     uncancelled_out, gain, offsets) = run_once(benchmark, run_experiment)
    save_report("montecarlo_offset_yield", format_table([{
        "input-referred sigma (mV)": sigma_in * 1e3,
        "samples": N_SAMPLES,
        "yield w/o offset loop (%)": 100 * yield_without,
        "yield with offset loop (%)": 100 * yield_with,
    }]))
    # The batched DC sweep must agree with the analytic |offset| * gain
    # (the order-13 direct-form filter holds DC to ~1e-7 relative).
    np.testing.assert_allclose(uncancelled_out, np.abs(offsets) * gain,
                               rtol=1e-6)
    # The paper's motivation, quantified: without the loop a large
    # fraction of dies saturate; with it essentially all pass.
    assert sigma_in > 0.5e-3          # mismatch is mV-scale
    assert yield_without < 0.60       # the "problem"
    assert yield_with > 0.999         # the fix


def test_front_stage_dominates_offset(benchmark, save_report):
    def run():
        la = build_input_interface().limiting_amplifier
        rows = []
        gain_product = 1.0
        for stage in la.stage_chain():
            sigma = pair_offset_sigma(stage.input_pair)
            rows.append({
                "stage": stage.name,
                "own sigma (mV)": sigma * 1e3,
                "input-referred (mV)": sigma / gain_product * 1e3,
            })
            gain_product *= abs(stage.small_signal_tf().dc_gain())
        return rows

    rows = run_once(benchmark, run)
    save_report("montecarlo_stage_contributions", format_table(rows))
    referred = [row["input-referred (mV)"] for row in rows]
    # Monotone decay: each later stage matters less at the input.
    assert all(a >= b * 0.99 for a, b in zip(referred, referred[1:]))
    assert referred[0] > 3 * referred[2]
