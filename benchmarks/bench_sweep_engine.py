"""The batched scenario engine vs the serial loop it replaces.

A 2000-scenario Monte Carlo sweep of the paper's input interface —
per-die input-referred offsets and drive-strength variation, eye
measured at the limiting-amplifier output — run twice:

* **batched**: ``SweepRunner.run()`` stacks all stimuli into one
  ``WaveformBatch``, pushes it through the receiver in one vectorized
  pass per pipeline stage, and folds/measures all eyes at once;
* **serial**: ``SweepRunner.run_serial()``, the equivalent careful
  hand-written loop — pipeline built once, then one simulation and one
  eye measurement per scenario.

Acceptance: the batched path is >= 5x faster wall-clock and every row
matches the serial path to <= 1e-12.
"""

import time

import numpy as np

from conftest import run_once
from repro.analysis import EyeDiagram, measure_eye_batch
from repro.core import build_input_interface
from repro.devices import chain_offset_sigma, sample_offsets
from repro.reporting import format_table
from repro.signals import bits_to_nrz, prbs7
from repro.sweep import ScenarioGrid, SweepAxis, SweepRunner

BIT_RATE = 10e9
N_SCENARIOS = 2000
N_BITS = 48
SAMPLES_PER_BIT = 16
SPEEDUP_FLOOR = 5.0
ROW_MATCH_TOL = 1e-12


def make_runner(n_scenarios, measure, measure_batch):
    """The Monte Carlo sweep: per-die offset and drive-strength draws."""
    rx = build_input_interface()
    la = rx.limiting_amplifier
    sigma = chain_offset_sigma(
        [stage.input_pair for stage in la.stage_chain()],
        [abs(stage.small_signal_tf().dc_gain())
         for stage in la.stage_chain()],
    )
    loop = abs(la.dc_gain()) * la.offset_network.sense_gain
    offsets = sample_offsets(sigma, n_scenarios, seed=7) / (1.0 + loop)
    rng = np.random.default_rng(11)
    scales = 1.0 + 0.05 * rng.standard_normal(n_scenarios)
    base = bits_to_nrz(prbs7(N_BITS), BIT_RATE, amplitude=0.01,
                       samples_per_bit=SAMPLES_PER_BIT)

    grid = ScenarioGrid([
        SweepAxis("die", tuple(zip(offsets, scales))),
    ])

    def stimulus(params):
        offset, scale = params["die"]
        return base * scale + offset

    return SweepRunner(grid, stimulus=stimulus,
                       build=lambda params: rx,
                       measure=measure, measure_batch=measure_batch)


def test_sweep_engine_speedup(save_report):
    runner = make_runner(
        N_SCENARIOS,
        measure=lambda wave, params: EyeDiagram.measure_waveform(
            wave, BIT_RATE, skip_ui=8),
        measure_batch=lambda batch, _:
            measure_eye_batch(batch, BIT_RATE, skip_ui=8),
    )
    # Warm the discretization caches so both paths start from the same
    # state (a cold serial run would only look worse).
    make_runner(4, measure=None, measure_batch=None).run()

    t0 = time.perf_counter()
    batched = runner.run()
    t_batched = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = runner.run_serial()
    t_serial = time.perf_counter() - t0

    speedup = t_serial / t_batched
    heights_b = batched.values(lambda m: m.eye_height)
    heights_s = serial.values(lambda m: m.eye_height)
    yield_open = float(np.mean(heights_b > 0))

    save_report("sweep_engine_speedup", format_table([{
        "scenarios": N_SCENARIOS,
        "serial (s)": t_serial,
        "batched (s)": t_batched,
        "speedup (x)": speedup,
        "open-eye yield (%)": 100 * yield_open,
    }]))

    # Measurements derive from the waveforms; batched and serial paths
    # must agree scenario by scenario.
    np.testing.assert_array_equal(heights_b, heights_s)
    assert all(m_b == m_s for m_b, m_s in zip(batched.results,
                                              serial.results))
    assert yield_open > 0.99
    assert speedup >= SPEEDUP_FLOOR, (
        f"batched sweep only {speedup:.1f}x faster than serial "
        f"(need >= {SPEEDUP_FLOOR}x)"
    )


def test_sweep_engine_rows_match_serial_waveforms(benchmark, save_report):
    """Raw processed waveforms (no measurement) match row-for-row."""
    def run():
        runner = make_runner(200, measure=None, measure_batch=None)
        batched = runner.run()
        serial = runner.run_serial()
        return float(max(
            np.max(np.abs(row_b.data - row_s.data))
            for row_b, row_s in zip(batched.results, serial.results)
        ))

    worst = run_once(benchmark, run)
    save_report("sweep_engine_row_match", format_table([{
        "scenarios": 200,
        "worst |batched - serial| (V)": worst,
    }]))
    assert worst <= ROW_MATCH_TOL
