"""System-level bench: the Fig 1 SERDES link, end to end.

The paper's Fig 1 places the I/O interface inside a switch-fabric
SERDES: payload -> 8b/10b -> serializer -> output interface ->
backplane -> input interface -> CDR -> comma alignment -> decode.
This bench runs that whole stack and asserts the end-to-end contract:
error-free payload transport at 10 Gb/s over a realistic channel, CDR
locked, recovered jitter bounded.
"""

import numpy as np
import pytest

from conftest import run_once
from repro.channel import BackplaneChannel
from repro.core import build_input_interface, build_output_interface
from repro.reporting import format_table
from repro.serdes import run_link

PAYLOAD = bytes(range(128))


def full_path(length_m, equalizer_v1=0.6):
    tx = build_output_interface()
    rx = build_input_interface(equalizer_control_voltage=equalizer_v1)
    channel = BackplaneChannel(length_m)

    def path(wave):
        return rx.process(channel.process(tx.process(wave)))

    return path


def test_full_serdes_link(benchmark, save_report):
    report = run_once(
        benchmark,
        lambda: run_link(PAYLOAD, full_path(0.3), samples_per_bit=16),
    )
    save_report("serdes_full_link", format_table([{
        "payload bytes": len(PAYLOAD),
        "bits recovered": report.bits_recovered,
        "CDR locked": report.cdr_locked,
        "recovered jitter (mUI)": report.recovered_jitter_ui * 1e3,
        "byte errors": report.byte_errors,
        "error free": report.error_free,
    }]))
    assert report.cdr_locked
    assert report.error_free
    assert report.byte_errors == 0
    assert report.recovered_jitter_ui < 0.1


def test_serdes_link_vs_channel_length(benchmark, save_report):
    def sweep():
        rows = []
        for length in (0.1, 0.3, 0.5):
            report = run_link(bytes(range(64)), full_path(length),
                              samples_per_bit=16)
            rows.append({
                "length (m)": length,
                "locked": report.cdr_locked,
                "byte errors": report.byte_errors,
                "error free": report.error_free,
            })
        return rows

    rows = run_once(benchmark, sweep)
    save_report("serdes_length_sweep", format_table(rows))
    # The conditioned link transports payloads over every tested length.
    assert all(row["error free"] for row in rows)


def test_8b10b_guarantees_cdr_food(benchmark, save_report):
    """The framing layer's purpose: bounded run length keeps transition
    density high enough for the bang-bang loop."""
    from repro.serdes import encode_bytes

    def run():
        bits = encode_bytes(b"\x00" * 200)  # worst-case payload
        transitions = int(np.sum(np.abs(np.diff(bits))))
        longest = 1
        current = 1
        for a, b in zip(bits, bits[1:]):
            current = current + 1 if a == b else 1
            longest = max(longest, current)
        return len(bits), transitions, longest

    n_bits, transitions, longest = run_once(benchmark, run)
    density = transitions / n_bits
    save_report("serdes_transition_density", format_table([{
        "bits": n_bits,
        "transition density": density,
        "max run length": longest,
    }]))
    assert longest <= 5
    assert density == pytest.approx(0.5, abs=0.2)