#!/usr/bin/env python
"""Streaming Monte Carlo yield study (the million-scenario shape).

A manufacturing yield question — "what fraction of links meets the eye
mask across mismatch and launch-amplitude spread?" — needs tens of
thousands of Monte Carlo draws per process corner, but nobody reads
per-scenario results at that scale: the product is a yield number, a
quantile table, and a histogram.  This example runs a structural
(trace length) × Monte Carlo (per-die launch spread) grid through
``LinkSession.sweep`` with streaming reducers and
``keep_results=False``: every row is folded into constant-size
aggregates the moment it is measured and then dropped, so the study's
memory footprint is set by the chunk size, not the scenario count —
scale ``N_DRAWS`` to 1e6 and the supervisor stays flat (see
``benchmarks/bench_streaming_sweep.py`` for the measured ceiling).

Run:  python examples/yield_study.py
"""

import numpy as np

from repro import (
    Count,
    Histogram,
    LinkSession,
    MeanVar,
    MinMax,
    Quantiles,
    ScenarioGrid,
    SweepAxis,
    Yield,
    bits_to_nrz,
    prbs7,
)
from repro.link import RxConfig
from repro.reporting import (format_aggregates, format_quantile_table,
                             render_histogram)

BIT_RATE = 10e9
N_DRAWS = 400                 # Monte Carlo draws per corner; try 1e6
LENGTHS_M = (0.2, 0.6, 1.0)   # structural corners (backplane reach)
CHUNK_ROWS = 64               # the memory ceiling, in scenarios
EYE_MASK_V = 0.22             # pass/fail criterion on the received eye

NOMINAL_AMPLITUDE = 0.25
AMPLITUDE_SIGMA = 0.08        # relative launch-amplitude spread

# One compact draw table; the axis itself is just trial indices.
SCALES = 1.0 + AMPLITUDE_SIGMA * np.random.default_rng(7).standard_normal(
    N_DRAWS)


def main() -> None:
    session = LinkSession.from_configs(
        rx=RxConfig(equalizer_control_voltage=0.55), skip_ui=20)
    base = bits_to_nrz(prbs7(200), BIT_RATE, amplitude=1.0,
                       samples_per_bit=16)

    grid = ScenarioGrid([
        SweepAxis("length_m", LENGTHS_M, structural=True),
        SweepAxis("draw", tuple(range(N_DRAWS))),
    ])

    def eye_height(result, params):
        return result.eye.eye_height

    result = session.sweep(
        grid,
        stimulus=lambda p: base * (NOMINAL_AMPLITUDE * SCALES[p["draw"]]),
        chunk_rows=CHUNK_ROWS,
        reducers={
            "scenarios": Count(),
            "eye_height": MeanVar(extract=eye_height),
            "extrema": MinMax(extract=eye_height),
            "hist": Histogram(0.0, 0.6, n_bins=48, extract=eye_height),
            "quantiles": Quantiles(qs=(0.01, 0.05, 0.5, 0.95),
                                   lo=0.0, hi=0.6, n_bins=512,
                                   extract=eye_height),
            "yield": Yield(lambda r, p: r.eye.eye_height > EYE_MASK_V),
        },
        keep_results=False,       # no per-row results are ever retained
    )

    assert result.results is None        # the aggregates ARE the study
    aggregates = result.aggregates

    print(f"{grid.n_scenarios} scenarios "
          f"({len(LENGTHS_M)} corners x {N_DRAWS} draws), "
          f"eye mask {EYE_MASK_V * 1e3:.0f} mV\n")
    print(format_aggregates(aggregates))
    print()
    print(render_histogram(aggregates["hist"], width=60, height=10,
                           title="received eye height, all corners",
                           unit=" V"))
    print()
    print(format_quantile_table(aggregates["quantiles"],
                                label="eye height (V)"))
    tally = aggregates["yield"]
    print(f"\nyield: {tally.n_pass}/{tally.n_total} "
          f"({100 * tally.fraction:.2f}%) links meet the "
          f"{EYE_MASK_V * 1e3:.0f} mV mask")


if __name__ == "__main__":
    main()
