#!/usr/bin/env python
"""Compliance-grade BER contours on the backplane, NRZ vs PAM4.

Pattern simulation bottoms out around BER 1e-6 — counting even one
error at 1e-15 would take ~30 hours of real 10 Gb/s traffic per
scenario.  The statistical eye engine computes the exact sampled
amplitude distribution from the single-symbol pulse response instead,
so the 1e-15 contour of the paper's backplane link is a millisecond
calculation.  This example renders the statistical eye, the 1e-15
contour and the bathtub curve for the same channel driven NRZ and
PAM4, and prints the compliance summary both ways.

Run:  python examples/stateye_compliance.py
"""

import numpy as np

from repro import StatEye
from repro.analysis.isi import pulse_response
from repro.channel.backplane import BackplaneChannel
from repro.reporting import format_table, render_bathtub, render_stateye
from repro.signals.modulation import Nrz, Pam4

BIT_RATE = 10e9          # symbols/s — PAM4 then carries 20 Gb/s
CHANNEL_M = 0.15
AMPLITUDE = 0.6          # V peak-to-peak drive
NOISE_RMS = 4e-3         # V slicer-referred
RJ_RMS_UI = 0.01
DJ_PP_UI = 0.05
CONTOUR_BER = 1e-15
N_VOLTAGES = 1025        # fine grid: 1e-15 tails need dv << noise_rms


def main() -> None:
    channel = BackplaneChannel(CHANNEL_M)
    pulse = pulse_response(channel, BIT_RATE, amplitude=AMPLITUDE)

    rows = []
    for modulation in (Nrz(), Pam4()):
        engine = StatEye(modulation=modulation, noise_rms=NOISE_RMS,
                         rj_rms_ui=RJ_RMS_UI, dj_pp_ui=DJ_PP_UI,
                         target_ber=CONTOUR_BER, n_voltages=N_VOLTAGES)
        result = engine.analyze(pulse)

        print(render_stateye(
            result, title=f"\n{modulation.name.upper()} statistical eye "
            f"({CHANNEL_M:.1f} m backplane, worst sub-eye)"))
        print(render_bathtub(
            result.bathtub(), target_ber=CONTOUR_BER,
            title=f"{modulation.name.upper()} bathtub "
            f"(fixed optimal thresholds)"))

        lower, upper = result.contour(CONTOUR_BER)
        open_phases = np.isfinite(lower)
        rows.append({
            "modulation": modulation.name,
            "BER at optimum": f"{max(result.ber, result.ber_floor):.2e}",
            f"eye height @ {CONTOUR_BER:g} (mV)":
                1e3 * result.eye_height_at(CONTOUR_BER),
            f"eye width @ {CONTOUR_BER:g} (UI)":
                result.eye_width_ui_at(CONTOUR_BER),
            "open phases (UI)": float(open_phases.mean()),
            "bits/symbol": modulation.bits_per_symbol,
        })

    print()
    print(format_table(rows))
    print(
        "\nSame channel, same pulse response: PAM4 doubles the bits per\n"
        "symbol but each sub-eye starts with a third of the separation,\n"
        "which is the NRZ-vs-PAM4 trade the contours quantify."
    )


if __name__ == "__main__":
    main()
