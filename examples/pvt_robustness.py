#!/usr/bin/env python
"""PVT robustness: the interface across temperature and supply corners.

The paper's answer to PVT is the beta-multiplier reference: "the
band-gap voltage reference circuit can maintain the operation over a
wide temperature range.  It can overcome the supply voltage and process
variation to provide a stable reference voltage for the tail current."

The corner scan is a declarative sweep: (temperature, VDD) are
*structural* axes — the interface is rebuilt at each corner with its
tail currents re-derived from the BMVR and its devices evaluated at
temperature — while the input amplitude is a *batchable* axis, so every
drive level rides through each corner's receiver as one
``WaveformBatch`` pass.  The report combines analytic metrics (DC gain,
bandwidth) with waveform-level eye measurements per corner, showing the
design stays inside its operating envelope from -40 to 125 C and
1.6 to 2.0 V.

Run:  PYTHONPATH=src python examples/pvt_robustness.py
"""

import dataclasses

from repro import build_input_interface
from repro._units import celsius_to_kelvin
from repro.analysis import measure_eye_batch
from repro.core import BetaMultiplierReference
from repro.reporting import format_table
from repro.signals import bits_to_nrz, prbs7
from repro.sweep import ScenarioGrid, SweepAxis, SweepRunner

BIT_RATE = 10e9


def interface_at_corner(temperature_c, vdd):
    """The input interface re-biased at a PVT corner."""
    bmvr = BetaMultiplierReference()
    t_k = celsius_to_kelvin(temperature_c)
    rx = build_input_interface()
    la = rx.limiting_amplifier

    def rebias_buffer(buffer):
        tail = bmvr.tail_current_for(buffer.tail_current, t_k, vdd)
        pair = buffer.input_pair.at_temperature(t_k)
        pair = dataclasses.replace(
            pair, drain_current=tail / 2.0
        )
        return dataclasses.replace(buffer, input_pair=pair,
                                   tail_current=tail)

    def rebias_stage(stage):
        tail = bmvr.tail_current_for(stage.tail_current, t_k, vdd)
        pair = stage.input_pair.at_temperature(t_k)
        pair = dataclasses.replace(pair, drain_current=tail / 2.0)
        return dataclasses.replace(stage, input_pair=pair,
                                   tail_current=tail)

    la = dataclasses.replace(
        la,
        input_buffer=rebias_buffer(la.input_buffer),
        gain_stages=[rebias_stage(s) for s in la.gain_stages],
        output_buffer=rebias_buffer(la.output_buffer),
    )
    return dataclasses.replace(rx, limiting_amplifier=la)


def main() -> None:
    corners = [(-40, 1.6), (-40, 2.0), (27, 1.8), (125, 1.6), (125, 2.0)]
    # (T, VDD) pairs are one structural axis (the set is not a full
    # product: hot-slow and cold-fast corners bound the envelope).
    grid = ScenarioGrid([
        SweepAxis("corner", tuple(corners), structural=True),
        SweepAxis("amplitude", (0.004, 0.05)),
    ])
    interfaces = {}

    def build(params):
        rx = interface_at_corner(*params["corner"])
        interfaces[params["corner"]] = rx
        return rx

    runner = SweepRunner(
        grid,
        stimulus=lambda params: bits_to_nrz(
            prbs7(140), BIT_RATE, amplitude=params["amplitude"],
            samples_per_bit=16),
        build=build,
        measure_batch=lambda batch, _:
            measure_eye_batch(batch, BIT_RATE, skip_ui=16),
    )
    result = runner.run()
    heights = result.values(lambda m: m.eye_height)  # (n_corners, n_amps)

    rows = []
    for i, (temperature_c, vdd) in enumerate(corners):
        rx = interfaces[(temperature_c, vdd)]
        rows.append({
            "T (C)": temperature_c,
            "VDD (V)": vdd,
            "DC gain (dB)": rx.dc_gain_db(),
            "BW (GHz)": rx.bandwidth_3db() / 1e9,
            "LA swing (mV)": rx.limiting_amplifier.output_swing * 1e3,
            "eye @4mV (mV)": heights[i, 0] * 1e3,
            "eye @50mV (mV)": heights[i, 1] * 1e3,
        })
    print(format_table(rows))

    gains = [row["DC gain (dB)"] for row in rows]
    bws = [row["BW (GHz)"] for row in rows]
    print(f"\ngain spread : {max(gains) - min(gains):.1f} dB across corners")
    print(f"BW range    : {min(bws):.1f} .. {max(bws):.1f} GHz")
    nominal = [row for row in rows if row["T (C)"] == 27][0]
    if min(bws) > 0.6 * nominal["BW (GHz)"]:
        print("the BMVR-biased interface stays within its operating "
              "envelope at every corner")
    if all(row["eye @4mV (mV)"] > 0 for row in rows):
        print("the 4 mV sensitivity eye stays open at every corner")


if __name__ == "__main__":
    main()
