#!/usr/bin/env python
"""PVT robustness: the interface across temperature and supply corners.

The paper's answer to PVT is the beta-multiplier reference: "the
band-gap voltage reference circuit can maintain the operation over a
wide temperature range.  It can overcome the supply voltage and process
variation to provide a stable reference voltage for the tail current."

This example rebuilds the input interface at each (temperature, VDD)
corner with its tail currents re-derived from the BMVR and its devices
evaluated at temperature, then measures DC gain and bandwidth — showing
the design stays inside its operating envelope from -40 to 125 C and
1.6 to 2.0 V.

Run:  python examples/pvt_robustness.py
"""

import dataclasses

from repro import build_input_interface
from repro._units import celsius_to_kelvin
from repro.core import BetaMultiplierReference
from repro.reporting import format_table


def interface_at_corner(temperature_c, vdd):
    """The input interface re-biased at a PVT corner."""
    bmvr = BetaMultiplierReference()
    t_k = celsius_to_kelvin(temperature_c)
    rx = build_input_interface()
    la = rx.limiting_amplifier

    def rebias_buffer(buffer):
        tail = bmvr.tail_current_for(buffer.tail_current, t_k, vdd)
        pair = buffer.input_pair.at_temperature(t_k)
        pair = dataclasses.replace(
            pair, drain_current=tail / 2.0
        )
        return dataclasses.replace(buffer, input_pair=pair,
                                   tail_current=tail)

    def rebias_stage(stage):
        tail = bmvr.tail_current_for(stage.tail_current, t_k, vdd)
        pair = stage.input_pair.at_temperature(t_k)
        pair = dataclasses.replace(pair, drain_current=tail / 2.0)
        return dataclasses.replace(stage, input_pair=pair,
                                   tail_current=tail)

    la = dataclasses.replace(
        la,
        input_buffer=rebias_buffer(la.input_buffer),
        gain_stages=[rebias_stage(s) for s in la.gain_stages],
        output_buffer=rebias_buffer(la.output_buffer),
    )
    return dataclasses.replace(rx, limiting_amplifier=la)


def main() -> None:
    rows = []
    corners = [(-40, 1.6), (-40, 2.0), (27, 1.8), (125, 1.6), (125, 2.0)]
    for temperature_c, vdd in corners:
        rx = interface_at_corner(temperature_c, vdd)
        rows.append({
            "T (C)": temperature_c,
            "VDD (V)": vdd,
            "DC gain (dB)": rx.dc_gain_db(),
            "BW (GHz)": rx.bandwidth_3db() / 1e9,
            "LA swing (mV)": rx.limiting_amplifier.output_swing * 1e3,
        })
    print(format_table(rows))

    gains = [row["DC gain (dB)"] for row in rows]
    bws = [row["BW (GHz)"] for row in rows]
    print(f"\ngain spread : {max(gains) - min(gains):.1f} dB across corners")
    print(f"BW range    : {min(bws):.1f} .. {max(bws):.1f} GHz")
    nominal = [row for row in rows if row["T (C)"] == 27][0]
    if min(bws) > 0.6 * nominal["BW (GHz)"]:
        print("the BMVR-biased interface stays within its operating "
              "envelope at every corner")


if __name__ == "__main__":
    main()
