#!/usr/bin/env python
"""Quickstart: run the paper's 10 Gb/s CML I/O interface end to end.

Builds the calibrated design point (Table I), transmits a 2^7-1 PRBS at
10 Gb/s through the output interface, a 0.3 m FR-4 backplane and the
input interface, and prints the received eye with the headline metrics.

Run:  python examples/quickstart.py
"""

from repro import (
    BackplaneChannel,
    EyeDiagram,
    bits_to_nrz,
    build_io_interface,
    prbs7,
)
from repro.analysis import q_to_ber
from repro.reporting import render_eye

BIT_RATE = 10e9


def main() -> None:
    # 1. The full link at the paper's design point.
    link = build_io_interface(channel=BackplaneChannel(0.3))

    # 2. The paper's stimulus: 2^7-1 PRBS NRZ at 10 Gb/s.
    wave = bits_to_nrz(prbs7(400), BIT_RATE, amplitude=0.25,
                       samples_per_bit=16)

    # 3. Transmit -> channel -> receive.
    received = link.process(wave)

    # 4. Measure the eye the way a sampling scope would.
    eye = EyeDiagram(received, BIT_RATE, skip_ui=16)
    measurement = eye.measure()

    print(render_eye(eye, title="Received eye @ 10 Gb/s (PRBS7)"))
    print()
    print(f"eye height     : {measurement.eye_height * 1e3:7.1f} mV")
    print(f"eye width      : {measurement.eye_width_ui:7.3f} UI")
    print(f"crossing jitter: {measurement.jitter_pp * 1e12:7.1f} ps pp")
    print(f"Q factor       : {measurement.q_factor:7.1f}"
          f"  (BER ~ {q_to_ber(min(measurement.q_factor, 40.0)):.2e})")

    # 5. The Table I budget.
    budget = link.budget()
    print()
    print(f"power          : {budget.total_power_w() * 1e3:7.1f} mW"
          "   (paper: 70 mW)")
    print(f"core area      : {budget.total_area_mm2():7.4f} mm^2"
          " (paper: 0.028 mm^2)")
    rx = link.input_interface
    print(f"DC gain        : {rx.dc_gain_db():7.1f} dB  (paper: 40 dB)")
    print(f"bandwidth      : {rx.bandwidth_3db() / 1e9:7.2f} GHz"
          " (paper: 9.5 GHz)")


if __name__ == "__main__":
    main()
