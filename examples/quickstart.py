#!/usr/bin/env python
"""Quickstart: the paper's 10 Gb/s CML I/O interface through the
batch-first ``LinkSession`` facade.

Builds the calibrated design point (Table I) as a session, transmits a
2^7-1 PRBS at 10 Gb/s through the output interface, a 0.3 m FR-4
backplane and the input interface, prints the received eye with the
headline metrics — then runs a noise-seed x trace-length yield study
as one ``LinkSession.sweep`` call instead of a serial scenario loop.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ChannelConfig,
    EyeDiagram,
    LinkSession,
    ScenarioGrid,
    SweepAxis,
    bits_to_nrz,
    prbs7,
)
from repro.analysis import q_to_ber
from repro.reporting import render_eye
from repro.signals import add_awgn

BIT_RATE = 10e9


def main() -> None:
    # 1. The full link at the paper's design point, as one facade.
    session = LinkSession.from_configs(channel=ChannelConfig(0.3))

    # 2. The paper's stimulus: 2^7-1 PRBS NRZ at 10 Gb/s.
    wave = bits_to_nrz(prbs7(400), BIT_RATE, amplitude=0.25,
                       samples_per_bit=16)

    # 3. One call: transmit -> channel -> receive -> eye measurement.
    result = session.run(wave)
    measurement = result.eye

    print(render_eye(EyeDiagram(result.output, BIT_RATE, skip_ui=16),
                     title="Received eye @ 10 Gb/s (PRBS7)"))
    print()
    print(f"eye height     : {measurement.eye_height * 1e3:7.1f} mV")
    print(f"eye width      : {measurement.eye_width_ui:7.3f} UI")
    print(f"crossing jitter: {measurement.jitter_pp * 1e12:7.1f} ps pp")
    print(f"Q factor       : {measurement.q_factor:7.1f}"
          f"  (BER ~ {q_to_ber(min(measurement.q_factor, 40.0)):.2e})")

    # 4. The Table I budget (the built interfaces stay reachable).
    budget = session.receiver.budget().merged(session.transmitter.budget(),
                                              prefix="tx-")
    print()
    print(f"power          : {budget.total_power_w() * 1e3:7.1f} mW"
          "   (paper: 70 mW)")
    print(f"core area      : {budget.total_area_mm2():7.4f} mm^2"
          " (paper: 0.028 mm^2)")
    print(f"DC gain        : {session.receiver.dc_gain_db():7.1f} dB"
          "  (paper: 40 dB)")
    print(f"bandwidth      : {session.receiver.bandwidth_3db() / 1e9:7.2f}"
          " GHz (paper: 9.5 GHz)")

    # 5. A scenario study through the same facade: noise seeds ride as
    #    one batch per trace length; lengths rebuild the channel.
    grid = ScenarioGrid([
        SweepAxis("length_m", (0.2, 0.3, 0.4), structural=True),
        SweepAxis("seed", tuple(range(1, 13))),
    ])
    sweep = session.sweep(
        grid,
        stimulus=lambda p: add_awgn(wave, rms_volts=3e-3, seed=p["seed"]),
    )
    heights = sweep.values(lambda r: r.eye.eye_height)
    print()
    print("noise-seed yield per backplane length (12 seeds each):")
    for row, length in zip(heights, grid.axes[0].values):
        print(f"  {length:.1f} m: median eye {np.median(row) * 1e3:6.1f} mV,"
              f" open {100 * float(np.mean(row > 0)):5.1f} %")


if __name__ == "__main__":
    main()
