#!/usr/bin/env python
"""Receiver characterization: sensitivity, overload, dynamic range, BER.

Reproduces the paper's receiver headline ("40 dB input dynamic range and
4 mV input sensitivity") the way a lab would measure it: bisect the
smallest input swing that still yields a good eye (with and without a
physical noise floor), scan up to the overload point, and trace a
bathtub curve at the sensitivity limit.

Run:  python examples/sensitivity_sweep.py
"""

from repro import (
    EyeDiagram,
    bits_to_nrz,
    build_input_interface,
    measure_dynamic_range,
    prbs7,
    thermal_noise_rms,
)
from repro.analysis import bathtub_from_waveform
from repro.signals import add_awgn
from repro.reporting import format_table

BIT_RATE = 10e9


def main() -> None:
    rx = build_input_interface()
    swing = rx.output_swing

    # Physical receiver noise floor: 50-ohm termination over the 9.5 GHz
    # front-end bandwidth plus an amplifier excess factor of ~4.
    thermal = thermal_noise_rms(50.0, rx.bandwidth_3db())
    noise_rms = 4.0 * thermal
    print(f"assumed input-referred noise: {noise_rms * 1e6:.0f} uV RMS "
          f"(4x the {thermal * 1e6:.0f} uV thermal floor)")

    rows = []
    for label, noise in (("noiseless", 0.0), ("with noise", noise_rms)):
        result = measure_dynamic_range(rx.process, full_swing=swing,
                                       n_bits=200, noise_rms=noise)
        rows.append({
            "condition": label,
            "sensitivity (mVpp)": result.sensitivity_vpp * 1e3,
            "overload (Vpp)": result.overload_vpp,
            "dynamic range (dB)": result.dynamic_range_db,
        })
    print(format_table(rows))
    print("paper claims: 4 mV sensitivity, 40 dB dynamic range\n")

    # Bathtub at twice the measured sensitivity.
    amplitude = 2.0 * rows[-1]["sensitivity (mVpp)"] / 1e3
    wave = bits_to_nrz(prbs7(500), BIT_RATE, amplitude=amplitude,
                       samples_per_bit=16)
    noisy = add_awgn(wave, noise_rms, seed=11)
    out = rx.process(noisy)
    tub = bathtub_from_waveform(out, BIT_RATE, skip_ui=16)
    print(f"bathtub at {amplitude * 1e3:.1f} mVpp input:")
    print(f"  best sampling phase : {tub.best_phase_ui():.2f} UI")
    print(f"  minimum BER         : {tub.minimum_ber():.2e}")
    for target in (1e-6, 1e-9, 1e-12):
        print(f"  opening at BER {target:.0e}: "
              f"{tub.eye_opening_at(target):.2f} UI")

    measurement = EyeDiagram.measure_waveform(out, BIT_RATE, skip_ui=16)
    print(f"  eye Q factor        : {measurement.q_factor:.1f}")


if __name__ == "__main__":
    main()
