#!/usr/bin/env python
"""One-shot reproduction summary: every headline paper claim, measured.

Runs the key measurement behind each quantitative claim in the paper
and prints a consolidated paper-vs-measured table — the quick-look
version of the full benchmark suite (`pytest benchmarks/
--benchmark-only` regenerates every figure with assertions and archived
artifacts).

Run:  python examples/reproduce_paper.py   (~1 minute)
"""

from repro import (
    BackplaneChannel,
    EyeDiagram,
    bits_to_nrz,
    build_input_interface,
    build_io_interface,
    build_output_interface,
    measure_sensitivity,
    paper_style_comparison,
    prbs7,
)
from repro.core import BetaMultiplierReference
from repro.reporting import format_table

BIT_RATE = 10e9


def main() -> None:
    rows = []

    def claim(name, paper, measured, unit=""):
        rows.append({"claim": name, "paper": paper,
                     "measured": measured, "unit": unit})

    rx = build_input_interface()
    tx = build_output_interface()
    link = build_io_interface()
    budget = link.budget()

    claim("power", 70.0, round(budget.total_power_w() * 1e3, 1), "mW")
    claim("core area", 0.028, round(budget.total_area_mm2(), 4), "mm^2")
    claim("input-interface area", 0.02,
          round(rx.budget().total_area_mm2(), 4), "mm^2")
    claim("output-interface area", 0.008,
          round(tx.budget().total_area_mm2(), 4), "mm^2")
    claim("DC gain (differential)", 40.0, round(rx.dc_gain_db(), 1), "dB")
    claim("bandwidth (-3dB)", 9.5,
          round(rx.bandwidth_3db() / 1e9, 2), "GHz")
    claim("driver current", 8.0, round(tx.output_current * 1e3, 1), "mA")
    claim("LA output swing", 250.0, round(rx.output_swing * 1e3, 0), "mV")

    # Eye at both dynamic-range extremes (Fig 14).
    for vpp, label in ((0.004, "eye width @4 mVpp"),
                       (1.8, "eye width @1.8 Vpp")):
        wave = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=vpp,
                           samples_per_bit=16)
        m = EyeDiagram.measure_waveform(rx.process(wave), BIT_RATE,
                                        skip_ui=16)
        claim(label, "open", round(m.eye_width_ui, 2), "UI")

    # Sensitivity (abstract).
    sensitivity = measure_sensitivity(rx.process,
                                      full_swing=rx.output_swing,
                                      n_bits=150)
    claim("input sensitivity", 4.0, round(sensitivity * 1e3, 1), "mVpp")

    # Equalizer effect (Fig 15): jitter through a 13 dB channel.
    channel = BackplaneChannel(0.5)
    wave = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=0.2,
                       samples_per_bit=16)
    received = channel.process(wave)
    eq_on = build_input_interface(equalizer_control_voltage=0.55)
    m_on = EyeDiagram.measure_waveform(eq_on.process(received), BIT_RATE,
                                       skip_ui=16)
    m_off = EyeDiagram.measure_waveform(
        rx.without_equalizer().process(received), BIT_RATE, skip_ui=16
    )
    claim("Fig15 jitter no-eq -> eq", "improves",
          f"{m_off.jitter_pp * 1e12:.0f} -> {m_on.jitter_pp * 1e12:.0f}",
          "ps pp")

    # Peaking effect (Fig 16): post-channel eye height.
    wave3 = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=0.3,
                        samples_per_bit=16)
    with_pk = channel.process(tx.process(wave3))
    without_pk = channel.process(tx.without_peaking().process(wave3))
    h_with = EyeDiagram.measure_waveform(with_pk, BIT_RATE,
                                         skip_ui=16).eye_height
    h_without = EyeDiagram.measure_waveform(without_pk, BIT_RATE,
                                            skip_ui=16).eye_height
    claim("Fig16 eye height no-pk -> pk", "improves",
          f"{h_without * 1e3:.0f} -> {h_with * 1e3:.0f}", "mV")

    # Area ablation (abstract).
    claim("area reduction vs spirals", 80.0,
          round(paper_style_comparison().reduction_percent, 1), "%")

    # BMVR (Section III-E).
    bmvr = BetaMultiplierReference()
    claim("BMVR TC", "<550",
          round(bmvr.temperature_coefficient_ppm(-40, 125), 1), "ppm/C")
    claim("BMVR supply sensitivity", "<26",
          round(bmvr.supply_sensitivity_mv_per_v(), 1), "mV/V")

    print(format_table(rows))
    print("\nfull regeneration with assertions: "
          "pytest benchmarks/ --benchmark-only")


if __name__ == "__main__":
    main()
