#!/usr/bin/env python
"""Adaptive equalizer tuning against an unknown channel.

The paper's equalizer exposes one analog knob: the NMOS gate voltage V1
that sets the degeneration resistance (boost + zero frequency).  This
example implements what a real SerDes adaptation loop does with such a
knob: sweep it, score the received eye, and lock the best setting — for
three different channel lengths, showing that the optimum V1 tracks the
channel loss (the reason the zero is *tunable* at all).

Run:  python examples/equalizer_tuning.py
"""

import numpy as np

from repro import (
    BackplaneChannel,
    EyeDiagram,
    bits_to_nrz,
    build_input_interface,
    prbs7,
)
from repro.reporting import format_table

BIT_RATE = 10e9
V1_GRID = np.round(np.arange(0.55, 1.21, 0.05), 3)


def eye_score(rx, received):
    """Adaptation metric: eye width minus a jitter penalty."""
    m = EyeDiagram.measure_waveform(rx.process(received), BIT_RATE,
                                    skip_ui=16)
    return m.eye_width_ui, m


def adapt(length_m):
    channel = BackplaneChannel(length_m)
    wave = bits_to_nrz(prbs7(300), BIT_RATE, amplitude=0.2,
                       samples_per_bit=16)
    received = channel.process(wave)

    best = None
    for v1 in V1_GRID:
        rx = build_input_interface(equalizer_control_voltage=float(v1))
        score, measurement = eye_score(rx, received)
        if best is None or score > best[0]:
            best = (score, float(v1), measurement,
                    rx.equalizer.boost_db, rx.equalizer.zero_hz)
    return channel, best


def main() -> None:
    rows = []
    optima = []
    for length in (0.25, 0.45, 0.65):
        channel, (score, v1, m, boost_db, zero_hz) = adapt(length)
        optima.append((channel.nyquist_loss_db(BIT_RATE), boost_db))
        rows.append({
            "trace (m)": length,
            "loss@5GHz (dB)": channel.nyquist_loss_db(BIT_RATE),
            "best V1 (V)": v1,
            "boost (dB)": boost_db,
            "zero (GHz)": zero_hz / 1e9,
            "eye width (UI)": m.eye_width_ui,
            "jitter pp (ps)": m.jitter_pp * 1e12,
        })
    print(format_table(rows))

    losses = [loss for loss, _ in optima]
    boosts = [boost for _, boost in optima]
    if all(b2 >= b1 for b1, b2 in zip(boosts, boosts[1:])):
        print("\nadaptation tracks the channel: more loss -> the loop "
              "selects more boost (lower V1), as designed")
    else:
        print("\nnote: optimum boost did not increase monotonically with"
              f" loss (losses {losses}, boosts {boosts})")


if __name__ == "__main__":
    main()
