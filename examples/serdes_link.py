#!/usr/bin/env python
"""Full switch-fabric SERDES link (the paper's Fig 1, end to end).

Payload bytes -> 8b/10b encoding -> 10 Gb/s NRZ serializer -> the
paper's output interface (tapered CML driver + voltage peaking) ->
FR-4 backplane -> the paper's input interface (equalizer + limiting
amplifier) -> bang-bang CDR -> comma alignment -> 8b/10b decode ->
payload bytes — all through one ``LinkSession``.  A second section
sweeps trace length x noise seeds through ``LinkSession.sweep`` (one
batched pass per length) to show the CDR margin around the operating
point instead of looping scenarios serially.

Run:  python examples/serdes_link.py
"""

import numpy as np

from repro import (
    CdrConfig,
    ChannelConfig,
    LinkSession,
    RxConfig,
    ScenarioGrid,
    SweepAxis,
    bits_to_nrz,
    prbs7,
)
from repro.reporting import format_table
from repro.signals import add_awgn

BIT_RATE = 10e9


def main() -> None:
    message = (b"The quick brown fox jumps over the lazy backplane. "
               b"SOCC 2005, 10 Gb/s, 0.18um CMOS. " * 2)
    session = LinkSession.from_configs(
        channel=ChannelConfig(0.4),
        rx=RxConfig(equalizer_control_voltage=0.6),
        cdr=CdrConfig(bit_rate=BIT_RATE),
    )

    print(f"payload: {len(message)} bytes "
          f"({len(message) * 10} line bits after 8b/10b)")
    print(f"channel: {session.channel.length_m} m FR-4, "
          f"{session.channel.nyquist_loss_db(BIT_RATE):.1f} dB"
          " @ 5 GHz\n")

    # Framed transport through the facade: serialize, tx -> channel ->
    # rx, batched CDR recovery, comma alignment, decode.
    report = session.run_framed(message, samples_per_bit=16)

    print(format_table([{
        "CDR locked": report.cdr_locked,
        "recovered jitter (mUI)": report.recovered_jitter_ui * 1e3,
        "bits recovered": report.bits_recovered,
        "byte errors": report.byte_errors,
        "error free": report.error_free,
    }]))
    print()
    received = report.payload_received[: len(message)]
    print("received:", received[:72].decode(errors="replace"), "...")
    if report.error_free:
        print("\npayload transported error-free through the complete "
              "behavioral stack")
    else:
        print("\nlink errors detected — inspect the eye at this length")

    # CDR margin around the operating point: lengths rebuild the
    # channel, noise seeds batch through each rebuilt chain in one pass.
    wave = bits_to_nrz(prbs7(300), BIT_RATE, amplitude=0.25,
                       samples_per_bit=16)
    grid = ScenarioGrid([
        SweepAxis("length_m", (0.2, 0.4, 0.8), structural=True),
        SweepAxis("seed", tuple(range(1, 9))),
    ])
    sweep = session.sweep(
        grid,
        stimulus=lambda p: add_awgn(wave, rms_volts=4e-3, seed=p["seed"]),
    )
    locks = sweep.values(lambda r: float(r.cdr_locked))
    widths = sweep.values(lambda r: r.eye.eye_width_ui)
    print("\nmargin sweep (8 noise seeds per length):")
    print(format_table([
        {
            "length (m)": length,
            "CDR lock (%)": 100 * float(np.mean(locks[i])),
            "median eye width (UI)": float(np.median(widths[i])),
        }
        for i, length in enumerate(grid.axes[0].values)
    ]))


if __name__ == "__main__":
    main()
