#!/usr/bin/env python
"""Full switch-fabric SERDES link (the paper's Fig 1, end to end).

Payload bytes -> 8b/10b encoding -> 10 Gb/s NRZ serializer -> the
paper's output interface (tapered CML driver + voltage peaking) ->
FR-4 backplane -> the paper's input interface (equalizer + limiting
amplifier) -> bang-bang CDR -> comma alignment -> 8b/10b decode ->
payload bytes.

Run:  python examples/serdes_link.py
"""

from repro import (
    BackplaneChannel,
    build_input_interface,
    build_output_interface,
    run_link,
)
from repro.reporting import format_table


def main() -> None:
    message = (b"The quick brown fox jumps over the lazy backplane. "
               b"SOCC 2005, 10 Gb/s, 0.18um CMOS. " * 2)
    tx = build_output_interface()
    rx = build_input_interface(equalizer_control_voltage=0.6)
    channel = BackplaneChannel(0.4)

    print(f"payload: {len(message)} bytes "
          f"({len(message) * 10} line bits after 8b/10b)")
    print(f"channel: 0.4 m FR-4, "
          f"{channel.nyquist_loss_db(10e9):.1f} dB @ 5 GHz\n")

    def analog_path(wave):
        return rx.process(channel.process(tx.process(wave)))

    report = run_link(message, analog_path, samples_per_bit=16)

    print(format_table([{
        "CDR locked": report.cdr_locked,
        "recovered jitter (mUI)": report.recovered_jitter_ui * 1e3,
        "bits recovered": report.bits_recovered,
        "byte errors": report.byte_errors,
        "error free": report.error_free,
    }]))
    print()
    received = report.payload_received[: len(message)]
    print("received:", received[:72].decode(errors="replace"), "...")
    if report.error_free:
        print("\npayload transported error-free through the complete "
              "behavioral stack")
    else:
        print("\nlink errors detected — inspect the eye at this length")


if __name__ == "__main__":
    main()
