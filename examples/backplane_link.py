#!/usr/bin/env python
"""Switch-fabric backplane reach study (the paper's Fig 1 scenario).

How long a backplane trace can the interface drive at 10 Gb/s?  Sweeps
trace length, measures the received eye for four link configurations —
with/without the transmit voltage peaking and the receive equalizer —
and reports the maximum reach of each.  This is the system-level "why"
of the paper: the signal-conditioning circuits buy backplane
centimetres.

Run:  python examples/backplane_link.py
"""

from repro import (
    BackplaneChannel,
    EyeDiagram,
    bits_to_nrz,
    build_input_interface,
    build_output_interface,
    prbs7,
)
from repro.analysis.sensitivity import eye_is_good
from repro.reporting import format_table

BIT_RATE = 10e9
LENGTHS_M = (0.2, 0.4, 0.6, 0.8, 1.0, 1.2)


def run_link(length_m, peaking, equalizer):
    tx = build_output_interface(peaking_enabled=peaking)
    rx = build_input_interface(equalizer_control_voltage=0.55)
    if not equalizer:
        rx = rx.without_equalizer()
    channel = BackplaneChannel(length_m)
    wave = bits_to_nrz(prbs7(300), BIT_RATE, amplitude=0.25,
                       samples_per_bit=16)
    received = rx.process(channel.process(tx.process(wave)))
    measurement = EyeDiagram.measure_waveform(received, BIT_RATE,
                                              skip_ui=20)
    return measurement, rx.output_swing


def main() -> None:
    configs = {
        "raw (no peaking, no eq)": (False, False),
        "peaking only": (True, False),
        "equalizer only": (False, True),
        "peaking + equalizer": (True, True),
    }
    rows = []
    reach = {}
    for length in LENGTHS_M:
        loss = BackplaneChannel(length).nyquist_loss_db(BIT_RATE)
        row = {"length (m)": length, "loss@5GHz (dB)": round(loss, 1)}
        for name, (peaking, equalizer) in configs.items():
            measurement, swing = run_link(length, peaking, equalizer)
            good = eye_is_good(measurement, swing, opening_fraction=0.5,
                               min_width_ui=0.70)
            row[name] = (f"{measurement.eye_width_ui:.2f} UI"
                         + (" *" if good else "  "))
            if good:
                reach[name] = max(reach.get(name, 0.0), length)
        rows.append(row)

    print(format_table(rows))
    print("\n'*' = eye passes the mask "
          "(>= 50 % opening, >= 0.70 UI width)\n")
    print("maximum reach:")
    for name in configs:
        metres = reach.get(name, 0.0)
        print(f"  {name:28s} {metres:.1f} m")

    full = reach.get("peaking + equalizer", 0.0)
    raw = reach.get("raw (no peaking, no eq)", 0.0)
    if full > raw:
        print(f"\nthe paper's signal conditioning buys "
              f"{100 * (full - raw) / max(raw, 1e-9):.0f}% more backplane "
              "reach at 10 Gb/s")


if __name__ == "__main__":
    main()
