#!/usr/bin/env python
"""Switch-fabric backplane reach study (the paper's Fig 1 scenario).

How long a backplane trace can the interface drive at 10 Gb/s?  The
whole study — trace length x transmit peaking x receive equalizer —
is ONE declarative grid executed by ``LinkSession.sweep``: every axis
is structural (each point rebuilds the chain from the session's
configs), and the facade measures every received eye through the same
batched path the rest of the library uses.  This is the system-level
"why" of the paper: the signal-conditioning circuits buy backplane
centimetres.

Run:  python examples/backplane_link.py
"""

from repro import (
    BackplaneChannel,
    LinkSession,
    RxConfig,
    ScenarioGrid,
    SweepAxis,
    bits_to_nrz,
    prbs7,
)
from repro.analysis.sensitivity import eye_is_good
from repro.reporting import format_table

BIT_RATE = 10e9
LENGTHS_M = (0.2, 0.4, 0.6, 0.8, 1.0, 1.2)


def main() -> None:
    session = LinkSession.from_configs(
        rx=RxConfig(equalizer_control_voltage=0.55), skip_ui=20)
    swing = session.receiver.output_swing

    grid = ScenarioGrid([
        SweepAxis("length_m", LENGTHS_M, structural=True),
        SweepAxis("peaking_enabled", (False, True), structural=True),
        SweepAxis("equalizer_enabled", (False, True), structural=True),
    ])
    wave = bits_to_nrz(prbs7(300), BIT_RATE, amplitude=0.25,
                       samples_per_bit=16)
    sweep = session.sweep(grid, stimulus=lambda p: wave)
    measurements = sweep.values(lambda r: r.eye.eye_width_ui)  # shape check
    assert measurements.shape == grid.shape

    configs = {
        "raw (no peaking, no eq)": (False, False),
        "peaking only": (True, False),
        "equalizer only": (False, True),
        "peaking + equalizer": (True, True),
    }
    rows = []
    reach = {}
    for li, length in enumerate(LENGTHS_M):
        loss = BackplaneChannel(length).nyquist_loss_db(BIT_RATE)
        row = {"length (m)": length, "loss@5GHz (dB)": round(loss, 1)}
        for name, (peaking, equalizer) in configs.items():
            index = grid.flat_index({"length_m": length,
                                     "peaking_enabled": peaking,
                                     "equalizer_enabled": equalizer})
            measurement = sweep.results[index].eye
            good = eye_is_good(measurement, swing, opening_fraction=0.5,
                               min_width_ui=0.70)
            row[name] = (f"{measurement.eye_width_ui:.2f} UI"
                         + (" *" if good else "  "))
            if good:
                reach[name] = max(reach.get(name, 0.0), length)
        rows.append(row)

    print(format_table(rows))
    print("\n'*' = eye passes the mask "
          "(>= 50 % opening, >= 0.70 UI width)\n")
    print("maximum reach:")
    for name in configs:
        metres = reach.get(name, 0.0)
        print(f"  {name:28s} {metres:.1f} m")

    full = reach.get("peaking + equalizer", 0.0)
    raw = reach.get("raw (no peaking, no eq)", 0.0)
    if full > raw:
        print(f"\nthe paper's signal conditioning buys "
              f"{100 * (full - raw) / max(raw, 1e-9):.0f}% more backplane "
              "reach at 10 Gb/s")


if __name__ == "__main__":
    main()
