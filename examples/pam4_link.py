#!/usr/bin/env python
"""PAM4 through the paper's link: the modulation layer end to end.

The paper's transceiver is an NRZ design, but the analog chain is
modulation-agnostic — so this example drives the same tx → backplane →
rx facade with a PAM4 stimulus at half the symbol rate (same bit rate),
measures all three sub-eyes, recovers Gray-coded bits with a
PAM4-sliced DFE, and closes with an NRZ-vs-PAM4 comparison as ONE
mixed-modulation sweep.

Run:  python examples/pam4_link.py
"""

import numpy as np

from repro import (
    ChannelConfig,
    DfeConfig,
    LinkSession,
    Nrz,
    Pam4,
    ScenarioGrid,
    SweepAxis,
    SymbolEncoder,
    TxConfig,
    modulation_axis,
)
from repro.analysis import ber_from_q_factors

PAM4_SYMBOL_RATE = 5e9    # 2 bits/symbol -> 10 Gb/s payload


def main() -> None:
    pam4 = Pam4()

    # 1. The paper's chain, declared PAM4: the modulation field rides
    #    through every slicer and eye measurement.
    session = LinkSession.from_configs(
        tx=TxConfig(modulation=pam4), channel=ChannelConfig(0.1),
        bit_rate=PAM4_SYMBOL_RATE,
        dfe=DfeConfig(taps=(0.05,), decision_amplitude=0.2))

    # 2. A Gray-coded PAM4 stimulus: 1200 payload bits -> 600 symbols.
    rng = np.random.default_rng(42)
    bits = rng.integers(0, 2, 1200)
    encoder = SymbolEncoder(symbol_rate=PAM4_SYMBOL_RATE, modulation=pam4,
                            amplitude=0.4, samples_per_symbol=16)
    wave = encoder.encode_bits(bits)

    # 3. One call: transmit -> channel -> receive -> three sub-eyes.
    result = session.run(wave)
    eye = result.eye
    print(f"line code       : {result.modulation.name}"
          f" ({eye.n_levels} levels, {eye.n_eyes} sub-eyes)")
    for i in range(eye.n_eyes):
        tag = " (worst)" if i == eye.worst_eye else ""
        print(f"  sub-eye {i}     : {eye.eye_heights[i] * 1e3:6.1f} mV, "
              f"{eye.eye_widths_ui[i]:.3f} UI, "
              f"Q {eye.q_factors[i]:6.1f}{tag}")
    print(f"worst-eye height: {eye.eye_height * 1e3:6.1f} mV")
    # erfc underflows past Q ~ 8 (BER ~ 6e-16), so cap for display.
    capped_qs = tuple(min(q, 8.0) for q in eye.q_factors)
    print(f"estimated BER   : < {ber_from_q_factors(capped_qs, pam4):.1e}"
          " (Gray-coded, Q capped at 8)")

    # 4. Decisions are level indices, Gray-decoded back to payload
    #    bits.  Back-to-back (empty chain) the PAM4-sliced DFE recovers
    #    the stimulus exactly — the same decision path that just ran
    #    behind the backplane above.
    b2b = LinkSession([], bit_rate=PAM4_SYMBOL_RATE, modulation=pam4,
                      dfe=DfeConfig(taps=(1e-12,), decision_amplitude=0.2))
    decisions = b2b.run(wave).dfe_decisions
    sent_symbols = pam4.bits_to_symbols(bits)
    n = min(len(decisions), len(sent_symbols))
    symbol_errors = int(np.sum(decisions[:n] != sent_symbols[:n]))
    recovered = pam4.symbols_to_bits(decisions[:n])
    bit_errors = int(np.sum(recovered != bits[:2 * n]))
    print(f"DFE decisions   : {n} symbols back-to-back,"
          f" {symbol_errors} symbol errors, {bit_errors} bit errors")

    # 5. NRZ vs PAM4 over the same channel at the same 5 GBd baud, one
    #    sweep: the modulation axis is structural, so each point is
    #    sliced and measured with its own alphabet.  Same symbol rate,
    #    so PAM4 carries twice the payload.
    grid = ScenarioGrid([
        modulation_axis([Nrz(), pam4]),
        SweepAxis("seed", tuple(range(4))),
    ])

    def stimulus(params):
        mod = params["modulation"]
        r = np.random.default_rng(params["seed"])
        payload = r.integers(0, 2, 600 * mod.bits_per_symbol)
        enc = SymbolEncoder(symbol_rate=PAM4_SYMBOL_RATE, modulation=mod,
                            amplitude=0.4, samples_per_symbol=16)
        return enc.encode_bits(payload)

    sweep = session.sweep(grid, stimulus)
    print()
    print(f"NRZ vs PAM4 at {PAM4_SYMBOL_RATE / 1e9:.0f} GBd"
          " (worst sub-eye, 4 seeds):")
    heights = sweep.values(lambda r: r.eye.eye_height)
    for row, mod in zip(heights, grid.axes[0].values):
        payload = PAM4_SYMBOL_RATE * mod.bits_per_symbol / 1e9
        print(f"  {mod.name:5s}: {payload:4.0f} Gb/s payload,"
              f" median {np.median(row) * 1e3:6.1f} mV,"
              f" min {row.min() * 1e3:6.1f} mV")


if __name__ == "__main__":
    main()
