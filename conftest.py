"""Root pytest config: keep the suite runnable without pytest-timeout.

pyproject sets a suite-wide ``timeout`` so a hung sweep worker can
never wedge CI; that ini option belongs to the optional pytest-timeout
plugin.  When the plugin is absent, pytest would refuse to start on
the unknown option — so register it here as an inert key instead (the
ceiling simply isn't enforced locally).  With the plugin installed
this hook must not re-register it, or the duplicate would error.
"""


def pytest_addoption(parser):
    try:
        import pytest_timeout  # noqa: F401
    except ImportError:
        parser.addini("timeout", "per-test timeout in seconds (inert "
                                 "fallback: pytest-timeout not installed)")
        parser.addini("timeout_method", "ignored without pytest-timeout")
        parser.addini("timeout_func_only", "ignored without pytest-timeout")
