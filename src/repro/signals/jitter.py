"""Timing jitter models for the transmit stimulus.

Jitter enters the link model as per-edge timing offsets handed to
:class:`repro.signals.nrz.NrzEncoder`.  Two canonical components are
implemented:

* **Random jitter (RJ)** — unbounded Gaussian, quoted by its RMS value.
* **Sinusoidal jitter (SJ)** — bounded periodic jitter, quoted by its
  peak amplitude and modulation frequency, the standard proxy for
  deterministic/periodic jitter in tolerance testing.

Both can be combined with :class:`JitterBudget`, which mirrors the way a
lab characterizes a pattern generator.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

__all__ = ["RandomJitter", "SinusoidalJitter", "JitterBudget",
           "dual_dirac_total_jitter"]


@dataclasses.dataclass
class RandomJitter:
    """Gaussian random jitter.

    Parameters
    ----------
    rms_seconds:
        Standard deviation of the edge displacement.
    seed:
        RNG seed for reproducibility.
    """

    rms_seconds: float
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rms_seconds < 0:
            raise ValueError(
                f"rms_seconds must be >= 0, got {self.rms_seconds}"
            )

    def offsets(self, n_bits: int, bit_rate: float) -> np.ndarray:
        """Per-bit edge offsets in seconds for ``n_bits`` bits."""
        rng = np.random.default_rng(self.seed)
        del bit_rate  # RJ is rate-independent; kept for interface symmetry
        return rng.normal(0.0, self.rms_seconds, size=n_bits)

    def offsets_batch(self, n_bits: int, bit_rate: float,
                      seeds) -> np.ndarray:
        """One independent offset realization per seed, shape
        ``(len(seeds), n_bits)``.

        Row ``i`` equals ``RandomJitter(rms, seed=seeds[i]).offsets(...)``
        exactly, for batch-vs-serial reproducibility.
        """
        del bit_rate
        rows = np.empty((len(seeds), n_bits))
        for i, seed in enumerate(seeds):
            rng = np.random.default_rng(seed)
            rows[i] = rng.normal(0.0, self.rms_seconds, size=n_bits)
        return rows


@dataclasses.dataclass
class SinusoidalJitter:
    """Sinusoidal (bounded periodic) jitter.

    Parameters
    ----------
    peak_seconds:
        Peak edge displacement (half the peak-to-peak).
    frequency:
        Jitter modulation frequency in Hz.
    phase:
        Initial phase in radians.
    """

    peak_seconds: float
    frequency: float
    phase: float = 0.0

    def __post_init__(self) -> None:
        if self.peak_seconds < 0:
            raise ValueError(
                f"peak_seconds must be >= 0, got {self.peak_seconds}"
            )
        if self.frequency <= 0:
            raise ValueError(f"frequency must be positive, got {self.frequency}")

    def offsets(self, n_bits: int, bit_rate: float) -> np.ndarray:
        """Per-bit edge offsets in seconds for ``n_bits`` bits."""
        edge_times = np.arange(n_bits) / bit_rate
        return self.peak_seconds * np.sin(
            2.0 * np.pi * self.frequency * edge_times + self.phase
        )


@dataclasses.dataclass
class JitterBudget:
    """Combined RJ + SJ jitter source.

    Either component may be ``None``.  ``offsets`` sums the individual
    contributions, which is how independent jitter mechanisms physically
    combine at an edge.
    """

    random: Optional[RandomJitter] = None
    sinusoidal: Optional[SinusoidalJitter] = None

    def offsets(self, n_bits: int, bit_rate: float) -> np.ndarray:
        total = np.zeros(n_bits)
        if self.random is not None:
            total = total + self.random.offsets(n_bits, bit_rate)
        if self.sinusoidal is not None:
            total = total + self.sinusoidal.offsets(n_bits, bit_rate)
        return total

    def is_empty(self) -> bool:
        """True when no jitter component is configured."""
        return self.random is None and self.sinusoidal is None


def dual_dirac_total_jitter(rj_rms: float, dj_pp: float,
                            ber: float = 1e-12) -> float:
    """Total jitter at a BER via the dual-Dirac model: TJ = DJ + 2 Q sigma.

    This is the standard formula used to extrapolate scope measurements
    down to low bit-error ratios.  ``Q`` is the two-sided Gaussian
    quantile for the target BER (Q ~ 7.03 at 1e-12).
    """
    if rj_rms < 0 or dj_pp < 0:
        raise ValueError("jitter components must be non-negative")
    if not 0 < ber < 0.5:
        raise ValueError(f"ber must be in (0, 0.5), got {ber}")
    from scipy.special import erfcinv

    q = np.sqrt(2.0) * erfcinv(2.0 * ber)
    return dj_pp + 2.0 * q * rj_rms
