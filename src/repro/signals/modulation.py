"""Modulation layer: symbol alphabets, level maps, Gray coding, slicing.

Everything below the encoder historically assumed two-level NRZ — one
eye, one decision threshold at zero, bit == symbol.  This module makes
the line code an explicit, swappable object: a :class:`Modulation`
carries the normalized level alphabet, the Gray code that maps bit
groups onto levels, and the decision thresholds (adjacent-level
midpoints) that slicers, eye analysis and BER conversion share.
:class:`Nrz` and :class:`Pam4` are the two shipped instances; the rest
of the library takes any power-of-two alphabet.

Conventions
-----------
* Levels are *normalized*: the outer levels are ``-0.5`` and ``+0.5``,
  so a peak-to-peak swing ``A`` maps level ``l`` to ``l * A`` — exactly
  the scaling :class:`~repro.signals.nrz.NrzEncoder` always used
  (``(bit - 0.5) * amplitude``).
* Symbols are level *indices* (``0 .. L-1``, lowest level first), not
  Gray code words.  Gray coding only enters when converting to/from
  bits, so adjacent-level slicer errors corrupt a single bit.
* Thresholds are the ``L-1`` midpoints between adjacent levels; a value
  ``v`` slices to the number of thresholds strictly below it
  (``searchsorted(thresholds, v, side="left")``), which for NRZ is the
  historical ``1 if v > 0 else 0`` sign slicer, bit for bit.

:class:`SymbolEncoder` is the modulation-aware generalization of
:class:`~repro.signals.nrz.NrzEncoder`: symbol-rate/UI-centric naming,
same waveform construction (piecewise-constant ideal edges or
superposed tanh transitions), with ``bit_rate`` kept as the
data-rate alias ``symbol_rate * bits_per_symbol``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from .batch import WaveformBatch
from .waveform import Waveform

__all__ = ["Modulation", "Nrz", "Pam4", "SymbolEncoder", "bits_to_pam4"]


@dataclasses.dataclass(frozen=True)
class Modulation:
    """A pulse-amplitude line code: level alphabet + Gray bit mapping.

    Parameters
    ----------
    name:
        Short lower-case identifier (``"nrz"``, ``"pam4"``).
    levels:
        Strictly increasing normalized level values, one per symbol,
        spanning ``-0.5 .. +0.5`` for a unit peak-to-peak swing.  The
        count must be a power of two so symbols carry a whole number
        of bits.
    """

    name: str
    levels: Tuple[float, ...]

    def __post_init__(self) -> None:
        levels = tuple(float(v) for v in self.levels)
        object.__setattr__(self, "levels", levels)
        if len(levels) < 2:
            raise ValueError(
                f"modulation needs at least 2 levels, got {len(levels)}"
            )
        if len(levels) & (len(levels) - 1):
            raise ValueError(
                f"number of levels must be a power of two, got {len(levels)}"
            )
        if any(b <= a for a, b in zip(levels, levels[1:])):
            raise ValueError(
                f"levels must be strictly increasing, got {levels}"
            )

    # -- alphabet geometry ---------------------------------------------------
    @property
    def n_levels(self) -> int:
        """Size of the symbol alphabet (``L``)."""
        return len(self.levels)

    @property
    def n_eyes(self) -> int:
        """Number of vertical sub-eyes (``L - 1``)."""
        return len(self.levels) - 1

    @property
    def bits_per_symbol(self) -> int:
        """``log2(L)`` — bits carried by one symbol."""
        return self.n_levels.bit_length() - 1

    @property
    def thresholds(self) -> Tuple[float, ...]:
        """Normalized decision thresholds: adjacent-level midpoints."""
        return tuple((a + b) / 2.0
                     for a, b in zip(self.levels, self.levels[1:]))

    @property
    def center_threshold_index(self) -> int:
        """Index of the middle eye's threshold (the CDR edge slicer)."""
        return (self.n_levels - 1) // 2

    def level_values(self, swing: float = 1.0) -> np.ndarray:
        """Level voltages for a peak-to-peak swing of ``swing``."""
        return np.asarray(self.levels, dtype=float) * swing

    def threshold_values(self, swing: float = 1.0) -> np.ndarray:
        """Decision-threshold voltages for a peak-to-peak ``swing``."""
        return np.asarray(self.thresholds, dtype=float) * swing

    # -- Gray coding ---------------------------------------------------------
    @property
    def gray_codes(self) -> Tuple[int, ...]:
        """Gray code word of each level index (binary-reflected)."""
        return tuple(i ^ (i >> 1) for i in range(self.n_levels))

    def bits_to_symbols(self, bits: np.ndarray) -> np.ndarray:
        """Pack bits (MSB first per symbol) into Gray-coded level indices.

        Adjacent levels differ in exactly one bit, so a slicer error to
        a neighboring level corrupts one bit — the property the
        SER-to-BER conversion in :mod:`repro.analysis.ber` relies on.
        """
        bits = np.asarray(bits)
        if bits.size == 0:
            raise ValueError("cannot encode an empty bit sequence")
        if not np.all((bits == 0) | (bits == 1)):
            raise ValueError("bits must contain only 0 and 1")
        per = self.bits_per_symbol
        if bits.size % per:
            raise ValueError(
                f"bit count {bits.size} is not a multiple of "
                f"bits_per_symbol={per} for {self.name}"
            )
        weights = 1 << np.arange(per - 1, -1, -1)
        words = np.asarray(bits, dtype=np.int64).reshape(-1, per) @ weights
        gray_to_index = np.empty(self.n_levels, dtype=np.int64)
        gray_to_index[np.asarray(self.gray_codes)] = np.arange(self.n_levels)
        return gray_to_index[words]

    def symbols_to_bits(self, symbols: np.ndarray) -> np.ndarray:
        """Unpack level indices back into bits (inverse of
        :meth:`bits_to_symbols`)."""
        symbols = np.asarray(symbols, dtype=np.int64)
        if np.any((symbols < 0) | (symbols >= self.n_levels)):
            raise ValueError(
                f"symbols must be in 0..{self.n_levels - 1} for {self.name}"
            )
        per = self.bits_per_symbol
        words = np.asarray(self.gray_codes, dtype=np.int64)[symbols]
        shifts = np.arange(per - 1, -1, -1)
        return ((words[:, None] >> shifts) & 1).reshape(-1).astype(np.int64)

    # -- slicing -------------------------------------------------------------
    def slice_symbols(self, values: np.ndarray,
                      swing: float = 1.0) -> np.ndarray:
        """Nearest-level decision: values -> level indices.

        A value maps to the count of thresholds strictly below it,
        which for NRZ reproduces the historical sign slicer
        (``1 if v > 0 else 0``) exactly.
        """
        thresholds = self.threshold_values(swing)
        return np.searchsorted(thresholds, np.asarray(values, dtype=float),
                               side="left")


@dataclasses.dataclass(frozen=True)
class Nrz(Modulation):
    """Two-level NRZ: the paper's line code and the library default."""

    name: str = "nrz"
    levels: Tuple[float, ...] = (-0.5, 0.5)


@dataclasses.dataclass(frozen=True)
class Pam4(Modulation):
    """Four-level PAM with equidistant levels and Gray bit mapping."""

    name: str = "pam4"
    levels: Tuple[float, ...] = (-0.5, -1.0 / 6.0, 1.0 / 6.0, 0.5)


@dataclasses.dataclass
class SymbolEncoder:
    """Encode symbols of any :class:`Modulation` into an analog waveform.

    The modulation-aware core that :class:`~repro.signals.nrz.NrzEncoder`
    now wraps.  Naming is symbol-rate/UI-centric — one unit interval per
    *symbol* — with :attr:`bit_rate` kept as the data-rate alias.

    Parameters
    ----------
    symbol_rate:
        Symbols (UIs) per second.
    modulation:
        Level alphabet; defaults to :class:`Nrz`.
    samples_per_symbol:
        Oversampling factor of the generated waveform.
    amplitude:
        Peak-to-peak differential swing: normalized level ``l`` maps to
        ``l * amplitude``, so the outer levels sit at ``+-amplitude/2``.
    rise_time:
        20-80 % rise time in seconds.  ``None`` picks a default of 15 %
        of the symbol period.  Zero gives ideal square edges.
    """

    symbol_rate: float
    modulation: Modulation = Nrz()
    samples_per_symbol: int = 32
    amplitude: float = 1.0
    rise_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.symbol_rate <= 0:
            raise ValueError(
                f"symbol_rate must be positive, got {self.symbol_rate}"
            )
        if self.samples_per_symbol < 2:
            raise ValueError(
                f"samples_per_symbol must be >= 2, "
                f"got {self.samples_per_symbol}"
            )
        if self.amplitude <= 0:
            raise ValueError(
                f"amplitude must be positive, got {self.amplitude}"
            )
        if self.rise_time is None:
            self.rise_time = 0.15 / self.symbol_rate
        if self.rise_time < 0:
            raise ValueError(f"rise_time must be >= 0, got {self.rise_time}")

    @property
    def sample_rate(self) -> float:
        """Sample rate of generated waveforms."""
        return self.symbol_rate * self.samples_per_symbol

    @property
    def unit_interval(self) -> float:
        """One symbol period in seconds."""
        return 1.0 / self.symbol_rate

    @property
    def bit_rate(self) -> float:
        """Data rate: ``symbol_rate * bits_per_symbol`` (back-compat
        alias — equals ``symbol_rate`` for NRZ)."""
        return self.symbol_rate * self.modulation.bits_per_symbol

    def encode(self, symbols: np.ndarray,
               edge_offsets: Optional[np.ndarray] = None) -> Waveform:
        """Encode level indices into an analog waveform.

        Parameters
        ----------
        symbols:
            Level indices in ``0 .. L-1``.
        edge_offsets:
            Optional per-symbol timing offset in seconds applied to the
            edge *leading into* each symbol (index 0 is unused since
            there is no edge before the first symbol).  This is how
            jitter is injected.
        """
        symbols = np.asarray(symbols)
        if symbols.size == 0:
            raise ValueError("cannot encode an empty symbol sequence")
        if np.any((symbols < 0) | (symbols >= self.modulation.n_levels)):
            raise ValueError(
                f"symbols must be in 0..{self.modulation.n_levels - 1} "
                f"for {self.modulation.name}"
            )
        if edge_offsets is not None and len(edge_offsets) != len(symbols):
            raise ValueError(
                f"edge_offsets length {len(edge_offsets)} != symbols "
                f"{len(symbols)}"
            )

        levels = (np.asarray(self.modulation.levels, dtype=float)[
            np.asarray(symbols, dtype=np.intp)] * self.amplitude)
        n_samples = len(symbols) * self.samples_per_symbol
        t = np.arange(n_samples) / self.sample_rate
        ui = self.unit_interval

        # Edge times: nominal symbol boundaries, perturbed by jitter.
        edge_times = np.arange(1, len(symbols)) * ui
        if edge_offsets is not None:
            edge_times = edge_times + np.asarray(edge_offsets, dtype=float)[1:]

        if self.rise_time <= 0:
            # Ideal square edges: piecewise-constant lookup by edge index.
            idx = np.searchsorted(edge_times, t, side="right")
            data = levels[np.clip(idx, 0, len(symbols) - 1)]
            return Waveform(data, self.sample_rate)

        # Smooth edges: superpose tanh transitions at each level change.
        # tanh(2.1972 * x) goes 20%..80% over x in [-0.25, 0.25], so the
        # 20-80% rise time maps to tau = rise_time / 0.5493 when using
        # tanh(t / tau) — derived from atanh(0.6) = 0.6931 over half the
        # swing: 20-80% spans 2*atanh(0.6)*tau = 1.3863 tau.
        tau = self.rise_time / (2.0 * np.arctanh(0.6))
        data = np.full(n_samples, levels[0])
        for k, t_edge in enumerate(edge_times):
            delta = levels[k + 1] - levels[k]
            if delta == 0:
                continue
            data = data + (delta / 2.0) * (1.0 + np.tanh((t - t_edge) / tau))
        return Waveform(data, self.sample_rate)

    def encode_bits(self, bits: np.ndarray,
                    edge_offsets: Optional[np.ndarray] = None) -> Waveform:
        """Gray-map bits onto symbols and encode (offsets are
        per *symbol*, matching :meth:`encode`)."""
        return self.encode(self.modulation.bits_to_symbols(bits),
                           edge_offsets)

    def encode_batch(self, symbols: np.ndarray,
                     edge_offsets_rows: np.ndarray) -> WaveformBatch:
        """One scenario per row of ``edge_offsets_rows``.

        Encodes the same symbol pattern once per jitter realization and
        stacks the results; row ``i`` equals
        ``encode(symbols, edge_offsets_rows[i])`` exactly.
        """
        edge_offsets_rows = np.asarray(edge_offsets_rows, dtype=float)
        if edge_offsets_rows.ndim != 2:
            raise ValueError(
                f"edge_offsets_rows must be 2-D, got shape "
                f"{edge_offsets_rows.shape}"
            )
        return WaveformBatch.stack([self.encode(symbols, offsets)
                                    for offsets in edge_offsets_rows])


def bits_to_pam4(bits: np.ndarray, symbol_rate: float,
                 amplitude: float = 1.0, samples_per_symbol: int = 32,
                 rise_time: Optional[float] = None) -> Waveform:
    """Convenience wrapper: Gray-coded PAM4 waveform from a bit stream."""
    encoder = SymbolEncoder(symbol_rate=symbol_rate, modulation=Pam4(),
                            samples_per_symbol=samples_per_symbol,
                            amplitude=amplitude, rise_time=rise_time)
    return encoder.encode_bits(np.asarray(bits))
