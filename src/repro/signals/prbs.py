"""Pseudo-random binary sequence (PRBS) generation.

The paper's eye-diagram experiments (Figs 14-16) all use a 2^7 - 1 PRBS
pattern at 10 Gb/s.  This module implements the standard ITU-T linear
feedback shift register (LFSR) patterns via their characteristic
polynomials, plus a couple of deterministic utility patterns used by
tests and benches.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "PrbsGenerator",
    "prbs_sequence",
    "prbs7",
    "prbs9",
    "prbs15",
    "prbs23",
    "prbs31",
    "alternating_pattern",
    "run_length_histogram",
]

# Characteristic polynomial taps (x^a + x^b + 1) for the standard PRBS
# orders: a is the register length, and feedback XORs bits a and b.
_STANDARD_TAPS: Dict[int, Tuple[int, int]] = {
    7: (7, 6),
    9: (9, 5),
    11: (11, 9),
    15: (15, 14),
    20: (20, 3),
    23: (23, 18),
    31: (31, 28),
}


@dataclasses.dataclass
class PrbsGenerator:
    """Maximal-length LFSR PRBS generator.

    Parameters
    ----------
    order:
        Register length; the sequence repeats every ``2**order - 1`` bits.
        Must be one of the standard ITU-T orders (7, 9, 11, 15, 20, 23, 31).
    seed:
        Initial register contents; any nonzero value modulo ``2**order``.
    """

    order: int
    seed: int = 1

    def __post_init__(self) -> None:
        if self.order not in _STANDARD_TAPS:
            raise ValueError(
                f"unsupported PRBS order {self.order}; "
                f"supported: {sorted(_STANDARD_TAPS)}"
            )
        mask = (1 << self.order) - 1
        state = self.seed & mask
        if state == 0:
            raise ValueError("seed must be nonzero modulo 2**order")
        self._state = state
        self._mask = mask
        self._tap_a, self._tap_b = _STANDARD_TAPS[self.order]

    @property
    def period(self) -> int:
        """Length of the repeating sequence, ``2**order - 1``."""
        return (1 << self.order) - 1

    def next_bit(self) -> int:
        """Advance the LFSR one step and return the output bit (0/1)."""
        bit_a = (self._state >> (self._tap_a - 1)) & 1
        bit_b = (self._state >> (self._tap_b - 1)) & 1
        feedback = bit_a ^ bit_b
        self._state = ((self._state << 1) | feedback) & self._mask
        return bit_a

    def bits(self, count: int) -> np.ndarray:
        """Return the next ``count`` bits as a 0/1 integer array."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        out = np.empty(count, dtype=np.int8)
        for i in range(count):
            out[i] = self.next_bit()
        return out

    def full_period(self) -> np.ndarray:
        """Return one complete period of the sequence."""
        return self.bits(self.period)


def prbs_sequence(order: int, n_bits: int, seed: int = 1) -> np.ndarray:
    """Return ``n_bits`` of the standard PRBS of the given order."""
    return PrbsGenerator(order=order, seed=seed).bits(n_bits)


def prbs7(n_bits: int, seed: int = 1) -> np.ndarray:
    """2^7 - 1 PRBS — the pattern used throughout the paper's figures."""
    return prbs_sequence(7, n_bits, seed)


def prbs9(n_bits: int, seed: int = 1) -> np.ndarray:
    """2^9 - 1 PRBS."""
    return prbs_sequence(9, n_bits, seed)


def prbs15(n_bits: int, seed: int = 1) -> np.ndarray:
    """2^15 - 1 PRBS."""
    return prbs_sequence(15, n_bits, seed)


def prbs23(n_bits: int, seed: int = 1) -> np.ndarray:
    """2^23 - 1 PRBS."""
    return prbs_sequence(23, n_bits, seed)


def prbs31(n_bits: int, seed: int = 1) -> np.ndarray:
    """2^31 - 1 PRBS."""
    return prbs_sequence(31, n_bits, seed)


def alternating_pattern(n_bits: int) -> np.ndarray:
    """A 1010... clock-like pattern (the fastest toggling stimulus).

    Used by the active-inductor bench: a 101010 pattern at 10 Gb/s is a
    5 GHz square wave, the stress case for buffer bandwidth.
    """
    if n_bits < 0:
        raise ValueError(f"n_bits must be >= 0, got {n_bits}")
    return (np.arange(n_bits) % 2).astype(np.int8)


def run_length_histogram(bits: np.ndarray) -> Dict[int, int]:
    """Histogram of run lengths in a bit sequence.

    A maximal-length PRBS of order *n* contains exactly one run of
    length *n* (of ones) and one of length *n - 1* (of zeros) per period;
    tests use this as a structural check of the generator.
    """
    bits = np.asarray(bits)
    if bits.size == 0:
        return {}
    change = np.flatnonzero(np.diff(bits) != 0)
    edges = np.concatenate(([0], change + 1, [bits.size]))
    lengths = np.diff(edges)
    histogram: Dict[int, int] = {}
    for length in lengths:
        histogram[int(length)] = histogram.get(int(length), 0) + 1
    return histogram
