"""Additive noise sources.

The limiting-amplifier sensitivity experiment needs a receiver noise
floor: a 4 mV sensitivity claim is only meaningful against noise.  The
models here generate additive white Gaussian noise either directly from
an RMS value or from a physical spectral density integrated over a
bandwidth (input-referred amplifier noise, 50-ohm termination thermal
noise).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from .._units import BOLTZMANN, ROOM_TEMPERATURE
from .batch import WaveformBatch
from .waveform import Waveform

__all__ = ["WhiteNoise", "thermal_noise_rms", "add_awgn", "add_awgn_batch",
           "snr_db"]


@dataclasses.dataclass
class WhiteNoise:
    """Band-limited white Gaussian noise source.

    Parameters
    ----------
    rms_volts:
        RMS value of the generated noise (over the full simulation
        bandwidth).
    seed:
        RNG seed for reproducibility.
    """

    rms_volts: float
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rms_volts < 0:
            raise ValueError(f"rms_volts must be >= 0, got {self.rms_volts}")

    @classmethod
    def from_density(cls, density_v_per_rt_hz: float, bandwidth_hz: float,
                     seed: Optional[int] = None) -> "WhiteNoise":
        """Build from a voltage spectral density and a noise bandwidth.

        ``v_rms = density * sqrt(bandwidth)`` — e.g. the input-referred
        noise of a broadband amplifier quoted in nV/sqrt(Hz).
        """
        if density_v_per_rt_hz < 0:
            raise ValueError(
                f"density must be >= 0, got {density_v_per_rt_hz}"
            )
        if bandwidth_hz <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
        return cls(rms_volts=density_v_per_rt_hz * math.sqrt(bandwidth_hz),
                   seed=seed)

    def apply(self, wave: Waveform) -> Waveform:
        """Return ``wave`` plus one realization of the noise."""
        if self.rms_volts == 0:
            return wave
        rng = np.random.default_rng(self.seed)
        noise = rng.normal(0.0, self.rms_volts, size=len(wave))
        return wave.with_data(wave.data + noise)


def thermal_noise_rms(resistance_ohm: float, bandwidth_hz: float,
                      temperature_k: float = ROOM_TEMPERATURE) -> float:
    """RMS thermal (Johnson) noise voltage of a resistor: sqrt(4kTRB).

    A 50-ohm termination over 10 GHz contributes ~90 uV RMS — the
    physical floor under the paper's 4 mV sensitivity figure.
    """
    if resistance_ohm < 0:
        raise ValueError(f"resistance must be >= 0, got {resistance_ohm}")
    if bandwidth_hz < 0:
        raise ValueError(f"bandwidth must be >= 0, got {bandwidth_hz}")
    if temperature_k <= 0:
        raise ValueError(f"temperature must be positive, got {temperature_k}")
    return math.sqrt(4.0 * BOLTZMANN * temperature_k
                     * resistance_ohm * bandwidth_hz)


def add_awgn(wave: Waveform, rms_volts: float,
             seed: Optional[int] = None) -> Waveform:
    """Convenience: add white Gaussian noise of the given RMS to a wave."""
    return WhiteNoise(rms_volts=rms_volts, seed=seed).apply(wave)


def add_awgn_batch(wave: Waveform, rms_volts: float,
                   seeds) -> WaveformBatch:
    """One noisy scenario per seed, stacked into a batch.

    Row ``i`` equals ``add_awgn(wave, rms_volts, seed=seeds[i])`` exactly,
    so batched noise sweeps reproduce their serial counterparts.
    """
    return WaveformBatch.with_noise_seeds(wave, rms_volts, seeds)


def snr_db(signal: Waveform, noise_rms: float) -> float:
    """Signal-to-noise ratio in dB of a waveform against a noise RMS."""
    if noise_rms <= 0:
        raise ValueError(f"noise_rms must be positive, got {noise_rms}")
    rms = signal.rms()
    if rms == 0:
        raise ValueError("signal has zero RMS; SNR undefined")
    return 20.0 * math.log10(rms / noise_rms)
