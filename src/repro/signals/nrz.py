"""NRZ line coding: bits -> analog waveform.

Converts a bit sequence into a differential-mode NRZ voltage waveform at
a given bit rate, with a finite 20-80 % rise time (a transmitter never
produces ideal square edges) and optional per-edge timing perturbation
used by the jitter module.

Since the modulation refactor this is a thin shim over
:class:`~repro.signals.modulation.SymbolEncoder` with the :class:`Nrz`
alphabet — for NRZ, bit == symbol and ``bit_rate`` == ``symbol_rate``,
and the generated waveforms are bit-exact with the pre-refactor encoder.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from .batch import WaveformBatch
from .modulation import Nrz, SymbolEncoder
from .waveform import Waveform

__all__ = ["NrzEncoder", "bits_to_nrz", "ideal_square_wave"]


@dataclasses.dataclass
class NrzEncoder:
    """Encode bits into a differential NRZ waveform.

    Parameters
    ----------
    bit_rate:
        Bits per second (10e9 throughout the paper).
    samples_per_bit:
        Oversampling factor of the generated waveform.  32 resolves
        10 Gb/s edges comfortably (3.125 ps/sample).
    amplitude:
        Peak differential amplitude: a ``1`` maps to ``+amplitude/2`` and
        a ``0`` to ``-amplitude/2`` so that ``amplitude`` is the
        peak-to-peak differential swing, matching how the paper quotes
        "input signal swing: 4 mV".
    rise_time:
        20-80 % rise time in seconds.  ``None`` picks a default of 15 %
        of the bit period.  Zero gives ideal square edges.
    """

    bit_rate: float
    samples_per_bit: int = 32
    amplitude: float = 1.0
    rise_time: Optional[float] = None

    def __post_init__(self) -> None:
        if self.bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {self.bit_rate}")
        if self.samples_per_bit < 2:
            raise ValueError(
                f"samples_per_bit must be >= 2, got {self.samples_per_bit}"
            )
        if self.amplitude <= 0:
            raise ValueError(
                f"amplitude must be positive, got {self.amplitude}"
            )
        if self.rise_time is None:
            self.rise_time = 0.15 / self.bit_rate
        if self.rise_time < 0:
            raise ValueError(f"rise_time must be >= 0, got {self.rise_time}")

    @property
    def modulation(self) -> Nrz:
        """The two-level alphabet this encoder is fixed to."""
        return Nrz()

    @property
    def sample_rate(self) -> float:
        """Sample rate of generated waveforms."""
        return self.bit_rate * self.samples_per_bit

    @property
    def unit_interval(self) -> float:
        """One bit period in seconds."""
        return 1.0 / self.bit_rate

    def _symbol_encoder(self) -> SymbolEncoder:
        return SymbolEncoder(symbol_rate=self.bit_rate,
                             modulation=Nrz(),
                             samples_per_symbol=self.samples_per_bit,
                             amplitude=self.amplitude,
                             rise_time=self.rise_time)

    def encode(self, bits: np.ndarray,
               edge_offsets: Optional[np.ndarray] = None) -> Waveform:
        """Encode ``bits`` into an analog waveform.

        Parameters
        ----------
        bits:
            0/1 sequence.
        edge_offsets:
            Optional per-bit timing offset in seconds applied to the edge
            *leading into* each bit (index 0 is unused since there is no
            edge before the first bit).  This is how jitter is injected.
        """
        bits = np.asarray(bits)
        if bits.size == 0:
            raise ValueError("cannot encode an empty bit sequence")
        if not np.all((bits == 0) | (bits == 1)):
            raise ValueError("bits must contain only 0 and 1")
        if edge_offsets is not None and len(edge_offsets) != len(bits):
            raise ValueError(
                f"edge_offsets length {len(edge_offsets)} != bits {len(bits)}"
            )
        return self._symbol_encoder().encode(bits.astype(np.intp),
                                             edge_offsets)

    def encode_batch(self, bits: np.ndarray,
                     edge_offsets_rows: np.ndarray) -> WaveformBatch:
        """One scenario per row of ``edge_offsets_rows``.

        Encodes the same bit pattern once per jitter realization (e.g.
        per-row :class:`~repro.signals.jitter.RandomJitter` seeds) and
        stacks the results; row ``i`` equals
        ``encode(bits, edge_offsets_rows[i])`` exactly.
        """
        edge_offsets_rows = np.asarray(edge_offsets_rows, dtype=float)
        if edge_offsets_rows.ndim != 2:
            raise ValueError(
                f"edge_offsets_rows must be 2-D, got shape "
                f"{edge_offsets_rows.shape}"
            )
        return WaveformBatch.stack([self.encode(bits, offsets)
                                    for offsets in edge_offsets_rows])


def bits_to_nrz(bits: np.ndarray, bit_rate: float,
                amplitude: float = 1.0, samples_per_bit: int = 32,
                rise_time: Optional[float] = None) -> Waveform:
    """Convenience wrapper around :class:`NrzEncoder`."""
    encoder = NrzEncoder(bit_rate=bit_rate, samples_per_bit=samples_per_bit,
                         amplitude=amplitude, rise_time=rise_time)
    return encoder.encode(np.asarray(bits))


def ideal_square_wave(frequency: float, n_cycles: int,
                      amplitude: float = 1.0,
                      samples_per_cycle: int = 64) -> Waveform:
    """A +-amplitude/2 square wave, for step/settling experiments."""
    if frequency <= 0:
        raise ValueError(f"frequency must be positive, got {frequency}")
    if n_cycles < 1:
        raise ValueError(f"n_cycles must be >= 1, got {n_cycles}")
    bits = np.tile([1, 0], n_cycles)
    return bits_to_nrz(bits, bit_rate=2 * frequency, amplitude=amplitude,
                       samples_per_bit=samples_per_cycle // 2, rise_time=0.0)
