"""Stimulus substrate: waveforms, PRBS patterns, NRZ coding, jitter, noise.

This package replaces the paper's pattern-generator instrumentation: it
produces the 2^7-1 PRBS NRZ stimulus at 10 Gb/s (with realistic rise
time, jitter and noise) that every eye-diagram experiment consumes.
"""

from .waveform import Waveform, DifferentialWaveform, sample_uniform
from .batch import WaveformBatch
from .prbs import (
    PrbsGenerator,
    prbs_sequence,
    prbs7,
    prbs9,
    prbs15,
    prbs23,
    prbs31,
    alternating_pattern,
    run_length_histogram,
)
from .nrz import NrzEncoder, bits_to_nrz, ideal_square_wave
from .jitter import (
    RandomJitter,
    SinusoidalJitter,
    JitterBudget,
    dual_dirac_total_jitter,
)
from .noise import (
    WhiteNoise,
    thermal_noise_rms,
    add_awgn,
    add_awgn_batch,
    snr_db,
)

__all__ = [
    "Waveform",
    "DifferentialWaveform",
    "sample_uniform",
    "WaveformBatch",
    "PrbsGenerator",
    "prbs_sequence",
    "prbs7",
    "prbs9",
    "prbs15",
    "prbs23",
    "prbs31",
    "alternating_pattern",
    "run_length_histogram",
    "NrzEncoder",
    "bits_to_nrz",
    "ideal_square_wave",
    "RandomJitter",
    "SinusoidalJitter",
    "JitterBudget",
    "dual_dirac_total_jitter",
    "WhiteNoise",
    "thermal_noise_rms",
    "add_awgn",
    "add_awgn_batch",
    "snr_db",
]
