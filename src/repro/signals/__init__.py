"""Stimulus substrate: waveforms, PRBS patterns, line coding, jitter,
noise.

This package replaces the paper's pattern-generator instrumentation: it
produces the 2^7-1 PRBS NRZ stimulus at 10 Gb/s (with realistic rise
time, jitter and noise) that every eye-diagram experiment consumes.
The :mod:`~repro.signals.modulation` layer generalizes the line code:
:class:`Modulation` declares the level alphabet (NRZ, PAM4), and
:class:`SymbolEncoder` renders any alphabet with the same analog edge
model the NRZ encoder always used.
"""

from .waveform import Waveform, DifferentialWaveform, sample_uniform
from .batch import WaveformBatch
from .prbs import (
    PrbsGenerator,
    prbs_sequence,
    prbs7,
    prbs9,
    prbs15,
    prbs23,
    prbs31,
    alternating_pattern,
    run_length_histogram,
)
from .modulation import (
    Modulation,
    Nrz,
    Pam4,
    SymbolEncoder,
    bits_to_pam4,
)
from .nrz import NrzEncoder, bits_to_nrz, ideal_square_wave
from .jitter import (
    RandomJitter,
    SinusoidalJitter,
    JitterBudget,
    dual_dirac_total_jitter,
)
from .noise import (
    WhiteNoise,
    thermal_noise_rms,
    add_awgn,
    add_awgn_batch,
    snr_db,
)

__all__ = [
    "Waveform",
    "DifferentialWaveform",
    "sample_uniform",
    "WaveformBatch",
    "PrbsGenerator",
    "prbs_sequence",
    "prbs7",
    "prbs9",
    "prbs15",
    "prbs23",
    "prbs31",
    "alternating_pattern",
    "run_length_histogram",
    "Modulation",
    "Nrz",
    "Pam4",
    "SymbolEncoder",
    "bits_to_pam4",
    "NrzEncoder",
    "bits_to_nrz",
    "ideal_square_wave",
    "RandomJitter",
    "SinusoidalJitter",
    "JitterBudget",
    "dual_dirac_total_jitter",
    "WhiteNoise",
    "thermal_noise_rms",
    "add_awgn",
    "add_awgn_batch",
    "snr_db",
]
