"""Batched waveforms: many scenarios on one shared timebase.

Multi-scenario studies (Monte Carlo mismatch draws, jitter-tolerance
grids, amplitude sweeps) historically looped over independent
:class:`~repro.signals.waveform.Waveform` simulations; the Python
orchestration dominated the wall clock.  :class:`WaveformBatch` holds
``n_scenarios`` waveforms as one ``(n_scenarios, n_samples)`` array with
a shared sample rate, mirroring the :class:`Waveform` API closely enough
that every pipeline block processes a batch transparently — the inner
loops then run as vectorized kernels (``scipy.signal.lfilter`` over the
last axis) instead of per-scenario Python calls.

Row ``i`` of a batch pushed through a pipeline is numerically identical
to pushing ``batch[i]`` through the same pipeline on its own: the
direct-form filter recursion, the delay interpolation and every static
nonlinearity perform the same arithmetic per row.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, List, Sequence

import numpy as np

from .waveform import Waveform, sample_uniform

__all__ = ["WaveformBatch"]


@dataclasses.dataclass(frozen=True)
class WaveformBatch:
    """A stack of uniformly sampled signals sharing one timebase.

    Parameters
    ----------
    data:
        Sample values, shape ``(n_scenarios, n_samples)``.
    sample_rate:
        Samples per second, shared by every row.  Must be positive.
    t0:
        Time of the first sample in seconds.  Defaults to zero.
    """

    data: np.ndarray
    sample_rate: float
    t0: float = 0.0

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ValueError(f"sample_rate must be positive, got {self.sample_rate}")
        array = np.asarray(self.data, dtype=float)
        if array.ndim != 2:
            raise ValueError(
                f"batch data must be 2-D (n_scenarios, n_samples), "
                f"got shape {array.shape}"
            )
        object.__setattr__(self, "data", array)

    # -- constructors ------------------------------------------------------
    @classmethod
    def stack(cls, waves: Sequence[Waveform]) -> "WaveformBatch":
        """Stack per-scenario waveforms into one batch.

        All waveforms must share length, sample rate and start time.
        """
        if not waves:
            raise ValueError("cannot stack an empty waveform sequence")
        first = waves[0]
        for wave in waves[1:]:
            first._check_compatible(wave)
            if not np.isclose(wave.t0, first.t0):
                raise ValueError(
                    f"waveform start times differ: {first.t0} vs {wave.t0}"
                )
        return cls(np.stack([wave.data for wave in waves]),
                   first.sample_rate, t0=first.t0)

    @classmethod
    def tiled(cls, wave: Waveform, n_scenarios: int) -> "WaveformBatch":
        """``n_scenarios`` identical copies of one waveform."""
        if n_scenarios < 1:
            raise ValueError(f"n_scenarios must be >= 1, got {n_scenarios}")
        return cls(np.tile(wave.data, (n_scenarios, 1)),
                   wave.sample_rate, t0=wave.t0)

    @classmethod
    def with_noise_seeds(cls, wave: Waveform, rms_volts: float,
                         seeds: Sequence[int]) -> "WaveformBatch":
        """One row per seed: ``wave`` plus an independent AWGN draw.

        Row ``i`` equals ``add_awgn(wave, rms_volts, seed=seeds[i])``
        exactly, so batched noise studies match their serial equivalents
        bit for bit.
        """
        if rms_volts < 0:
            raise ValueError(f"rms_volts must be >= 0, got {rms_volts}")
        if len(seeds) == 0:
            raise ValueError("need at least one seed")
        rows = np.empty((len(seeds), len(wave.data)))
        for i, seed in enumerate(seeds):
            rng = np.random.default_rng(seed)
            rows[i] = wave.data + rng.normal(0.0, rms_volts,
                                             size=len(wave.data))
        return cls(rows, wave.sample_rate, t0=wave.t0)

    # -- basic properties --------------------------------------------------
    @property
    def n_scenarios(self) -> int:
        """Number of rows (scenarios) in the batch."""
        return self.data.shape[0]

    @property
    def n_samples(self) -> int:
        """Samples per scenario."""
        return self.data.shape[1]

    def __len__(self) -> int:
        return self.n_scenarios

    def __iter__(self) -> Iterator[Waveform]:
        return iter(self.rows())

    def __getitem__(self, index) -> "Waveform | WaveformBatch":
        if isinstance(index, slice):
            return WaveformBatch(self.data[index], self.sample_rate,
                                 t0=self.t0)
        return Waveform(self.data[index], self.sample_rate, t0=self.t0)

    def rows(self) -> List[Waveform]:
        """The batch unstacked into per-scenario waveforms."""
        return [Waveform(row, self.sample_rate, t0=self.t0)
                for row in self.data]

    @property
    def dt(self) -> float:
        """Sample period in seconds."""
        return 1.0 / self.sample_rate

    @property
    def duration(self) -> float:
        """Total spanned time in seconds (n_samples * dt)."""
        return self.n_samples * self.dt

    @property
    def time(self) -> np.ndarray:
        """Vector of sample times in seconds (shared by every row)."""
        return self.t0 + np.arange(self.n_samples) * self.dt

    # -- statistics (per-row arrays) ---------------------------------------
    def peak_to_peak(self) -> np.ndarray:
        """Per-row peak-to-peak values."""
        if self.n_samples == 0:
            return np.zeros(self.n_scenarios)
        return np.ptp(self.data, axis=-1)

    def rms(self) -> np.ndarray:
        """Per-row RMS values."""
        if self.n_samples == 0:
            return np.zeros(self.n_scenarios)
        return np.sqrt(np.mean(self.data**2, axis=-1))

    def mean(self) -> np.ndarray:
        """Per-row mean (DC) values."""
        if self.n_samples == 0:
            return np.zeros(self.n_scenarios)
        return np.mean(self.data, axis=-1)

    def sample_at(self, times) -> np.ndarray:
        """Per-row linearly interpolated samples at per-row instants.

        ``times`` may be a scalar (same instant for every row), a
        ``(n_scenarios,)`` vector (one instant per row — the closed-loop
        CDR's per-bit case, where every scenario tracks its own phase)
        or ``(n_scenarios, m)``.  Row ``i`` of the result equals
        ``self[i].sample_at(times[i])`` exactly: both paths share one
        interpolation kernel.
        """
        return sample_uniform(self.data, self.t0, self.sample_rate, times)

    # -- arithmetic --------------------------------------------------------
    def _coerce(self, other) -> np.ndarray:
        """Other operand as an array broadcastable against ``data``.

        Accepts another batch (shape-checked), a single waveform
        (broadcast across rows), a per-row vector of length
        ``n_scenarios`` (one value per scenario) or a plain scalar.
        """
        if isinstance(other, WaveformBatch):
            if other.data.shape != self.data.shape:
                raise ValueError(
                    f"batch shapes differ: {self.data.shape} vs "
                    f"{other.data.shape}"
                )
            if not np.isclose(other.sample_rate, self.sample_rate):
                raise ValueError(
                    "batch sample rates differ: "
                    f"{self.sample_rate} vs {other.sample_rate}"
                )
            return other.data
        if isinstance(other, Waveform):
            if len(other) != self.n_samples:
                raise ValueError(
                    f"waveform length {len(other)} != batch samples "
                    f"{self.n_samples}"
                )
            if not np.isclose(other.sample_rate, self.sample_rate):
                raise ValueError(
                    "sample rates differ: "
                    f"{self.sample_rate} vs {other.sample_rate}"
                )
            return other.data[np.newaxis, :]
        array = np.asarray(other, dtype=float)
        if array.ndim == 1:
            if len(array) != self.n_scenarios:
                raise ValueError(
                    f"per-row vector length {len(array)} != "
                    f"{self.n_scenarios} scenarios"
                )
            return array[:, np.newaxis]
        if array.ndim == 0:
            return array
        raise ValueError(f"cannot broadcast shape {array.shape} onto batch")

    def __add__(self, other) -> "WaveformBatch":
        return self.with_data(self.data + self._coerce(other))

    __radd__ = __add__

    def __sub__(self, other) -> "WaveformBatch":
        return self.with_data(self.data - self._coerce(other))

    def __mul__(self, scale) -> "WaveformBatch":
        return self.with_data(self.data * self._coerce(scale))

    __rmul__ = __mul__

    def __neg__(self) -> "WaveformBatch":
        return self.with_data(-self.data)

    # -- transformations ---------------------------------------------------
    def with_data(self, data: np.ndarray) -> "WaveformBatch":
        """Return a batch with the same timebase and new sample values."""
        return WaveformBatch(data=np.asarray(data, dtype=float),
                             sample_rate=self.sample_rate, t0=self.t0)

    def map(self, func: Callable[[np.ndarray], np.ndarray]
            ) -> "WaveformBatch":
        """Apply an elementwise function to all samples of all rows."""
        return self.with_data(func(self.data))

    def clip(self, low: float, high: float) -> "WaveformBatch":
        """Hard-clip every row between ``low`` and ``high``."""
        if low > high:
            raise ValueError(f"clip bounds reversed: {low} > {high}")
        return self.with_data(np.clip(self.data, low, high))

    def slice_time(self, t_start: float, t_stop: float) -> "WaveformBatch":
        """Return the sub-batch between two absolute times."""
        if t_stop < t_start:
            raise ValueError(f"t_stop {t_stop} precedes t_start {t_start}")
        i0 = max(0, int(round((t_start - self.t0) * self.sample_rate)))
        i1 = min(self.n_samples,
                 int(round((t_stop - self.t0) * self.sample_rate)))
        return WaveformBatch(self.data[:, i0:i1], self.sample_rate,
                             t0=self.t0 + i0 * self.dt)

    def skip(self, n_samples: int) -> "WaveformBatch":
        """Drop the first ``n_samples`` samples of every row."""
        if n_samples < 0:
            raise ValueError(f"n_samples must be >= 0, got {n_samples}")
        n = min(n_samples, self.n_samples)
        return WaveformBatch(self.data[:, n:], self.sample_rate,
                             t0=self.t0 + n * self.dt)

    def delayed(self, delay_s: float) -> "WaveformBatch":
        """Every row delayed by ``delay_s`` seconds.

        Same semantics (integer shift + fractional linear interpolation,
        edge-hold fill) as :meth:`Waveform.delayed`, applied along the
        sample axis of every row at once.
        """
        if self.n_samples == 0:
            return self
        shift = delay_s * self.sample_rate
        n = int(np.floor(shift))
        frac = shift - n
        n_samples = self.n_samples
        if n >= n_samples or -n >= n_samples:
            fill = self.data[:, :1] if n > 0 else self.data[:, -1:]
            return self.with_data(np.broadcast_to(
                fill, self.data.shape).copy())
        padded = np.empty_like(self.data)
        if n >= 0:
            padded[:, :n] = self.data[:, :1]
            padded[:, n:] = self.data[:, : n_samples - n]
        else:
            padded[:, :n] = self.data[:, -n:]
            padded[:, n:] = self.data[:, -1:]
        if frac > 0:
            shifted_one_more = np.empty_like(padded)
            shifted_one_more[:, 0] = padded[:, 0]
            shifted_one_more[:, 1:] = padded[:, :-1]
            padded = (1.0 - frac) * padded + frac * shifted_one_more
        return self.with_data(padded)
