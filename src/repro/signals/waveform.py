"""Uniformly sampled analog waveforms.

Everything the simulator passes between circuit blocks is a
:class:`Waveform`: a uniformly sampled real-valued signal with an explicit
sample rate.  CML circuits are fully differential; by convention a
waveform carries the *differential-mode* voltage ``v_p - v_n``, and
:class:`DifferentialWaveform` is available when the two legs (and their
common mode) must be tracked separately, e.g. for DC-offset studies.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator

import numpy as np

__all__ = ["Waveform", "DifferentialWaveform", "sample_uniform"]


def sample_uniform(data: np.ndarray, t0: float, sample_rate: float,
                   times) -> np.ndarray:
    """Linear interpolation on a uniform grid, vectorized over rows.

    ``data`` is either one signal ``(n_samples,)`` or a row stack
    ``(n_rows, n_samples)``; ``times`` is broadcast per row: a scalar or
    ``(m,)`` against 1-D data, a scalar, ``(n_rows,)`` or
    ``(n_rows, m)`` against 2-D data.  Instants outside the grid clamp
    to the end samples (as :func:`numpy.interp` does).

    Every consumer of per-instant sampling — the serial CDR loop and the
    batched one — goes through this single kernel, so a batch row and
    its serial run perform bit-identical arithmetic.
    """
    data = np.asarray(data, dtype=float)
    n = data.shape[-1]
    if n < 2:
        raise ValueError(f"need at least 2 samples to interpolate, got {n}")
    x = (np.asarray(times, dtype=float) - t0) * sample_rate
    x = np.clip(x, 0.0, float(n - 1))
    i0 = np.minimum(x.astype(np.int64), n - 2)
    frac = x - i0
    if data.ndim == 1:
        d0 = data[i0]
        d1 = data[i0 + 1]
    elif data.ndim == 2:
        n_rows = data.shape[0]
        if i0.ndim >= 1 and i0.shape[0] != n_rows:
            raise ValueError(
                f"per-row instants must be scalar, ({n_rows},) or "
                f"({n_rows}, m) for {n_rows} rows, got shape {i0.shape}"
            )
        rows = np.arange(n_rows)
        if i0.ndim == 2:
            rows = rows[:, np.newaxis]
        elif i0.ndim == 0:
            i0 = np.broadcast_to(i0, (n_rows,))
            frac = np.broadcast_to(frac, (n_rows,))
        d0 = data[rows, i0]
        d1 = data[rows, i0 + 1]
    else:
        raise ValueError(f"data must be 1-D or 2-D, got shape {data.shape}")
    return d0 + frac * (d1 - d0)


@dataclasses.dataclass(frozen=True)
class Waveform:
    """A uniformly sampled signal.

    Parameters
    ----------
    data:
        Sample values in volts (or amps for current waveforms).
    sample_rate:
        Samples per second.  Must be positive.
    t0:
        Time of the first sample in seconds.  Defaults to zero.
    """

    data: np.ndarray
    sample_rate: float
    t0: float = 0.0

    def __post_init__(self) -> None:
        if self.sample_rate <= 0:
            raise ValueError(f"sample_rate must be positive, got {self.sample_rate}")
        array = np.asarray(self.data, dtype=float)
        if array.ndim != 1:
            raise ValueError(f"waveform data must be 1-D, got shape {array.shape}")
        object.__setattr__(self, "data", array)

    # -- basic properties ------------------------------------------------
    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[float]:
        return iter(self.data)

    @property
    def dt(self) -> float:
        """Sample period in seconds."""
        return 1.0 / self.sample_rate

    @property
    def duration(self) -> float:
        """Total spanned time in seconds (n_samples * dt)."""
        return len(self.data) * self.dt

    @property
    def time(self) -> np.ndarray:
        """Vector of sample times in seconds."""
        return self.t0 + np.arange(len(self.data)) * self.dt

    # -- statistics --------------------------------------------------------
    def peak_to_peak(self) -> float:
        """Peak-to-peak value of the waveform."""
        if len(self.data) == 0:
            return 0.0
        return float(np.ptp(self.data))

    def rms(self) -> float:
        """Root-mean-square value."""
        if len(self.data) == 0:
            return 0.0
        return float(np.sqrt(np.mean(self.data**2)))

    def mean(self) -> float:
        """Mean (DC) value."""
        if len(self.data) == 0:
            return 0.0
        return float(np.mean(self.data))

    def sample_at(self, times) -> np.ndarray:
        """Linearly interpolated samples at arbitrary instants.

        Same kernel as :meth:`WaveformBatch.sample_at
        <repro.signals.batch.WaveformBatch.sample_at>`, so serial and
        batched consumers (e.g. the CDR sampler) agree bit for bit.
        """
        return sample_uniform(self.data, self.t0, self.sample_rate, times)

    # -- arithmetic --------------------------------------------------------
    def _check_compatible(self, other: "Waveform") -> None:
        if len(other) != len(self):
            raise ValueError(
                f"waveform lengths differ: {len(self)} vs {len(other)}"
            )
        if not np.isclose(other.sample_rate, self.sample_rate):
            raise ValueError(
                "waveform sample rates differ: "
                f"{self.sample_rate} vs {other.sample_rate}"
            )

    def __add__(self, other: "Waveform | float") -> "Waveform":
        if isinstance(other, Waveform):
            self._check_compatible(other)
            return self.with_data(self.data + other.data)
        return self.with_data(self.data + float(other))

    __radd__ = __add__

    def __sub__(self, other: "Waveform | float") -> "Waveform":
        if isinstance(other, Waveform):
            self._check_compatible(other)
            return self.with_data(self.data - other.data)
        return self.with_data(self.data - float(other))

    def __mul__(self, scale: float) -> "Waveform":
        return self.with_data(self.data * float(scale))

    __rmul__ = __mul__

    def __neg__(self) -> "Waveform":
        return self.with_data(-self.data)

    # -- transformations ---------------------------------------------------
    def with_data(self, data: np.ndarray) -> "Waveform":
        """Return a waveform with the same timebase and new sample values."""
        return Waveform(data=np.asarray(data, dtype=float),
                        sample_rate=self.sample_rate, t0=self.t0)

    def map(self, func: Callable[[np.ndarray], np.ndarray]) -> "Waveform":
        """Apply an elementwise function to the samples."""
        return self.with_data(func(self.data))

    def clip(self, low: float, high: float) -> "Waveform":
        """Hard-clip the waveform between ``low`` and ``high``."""
        if low > high:
            raise ValueError(f"clip bounds reversed: {low} > {high}")
        return self.with_data(np.clip(self.data, low, high))

    def slice_time(self, t_start: float, t_stop: float) -> "Waveform":
        """Return the sub-waveform between two absolute times."""
        if t_stop < t_start:
            raise ValueError(f"t_stop {t_stop} precedes t_start {t_start}")
        i0 = max(0, int(round((t_start - self.t0) * self.sample_rate)))
        i1 = min(len(self.data), int(round((t_stop - self.t0) * self.sample_rate)))
        return Waveform(self.data[i0:i1], self.sample_rate,
                        t0=self.t0 + i0 * self.dt)

    def skip(self, n_samples: int) -> "Waveform":
        """Drop the first ``n_samples`` samples (e.g. filter warm-up)."""
        if n_samples < 0:
            raise ValueError(f"n_samples must be >= 0, got {n_samples}")
        n = min(n_samples, len(self.data))
        return Waveform(self.data[n:], self.sample_rate, t0=self.t0 + n * self.dt)

    def delayed(self, delay_s: float) -> "Waveform":
        """Return the waveform delayed by ``delay_s`` seconds.

        Integer-sample parts are handled by shifting; the fractional part
        uses linear interpolation.  The output has the same length and
        timebase as the input; samples that would come from before the
        start of the signal hold the first value (consistent with a link
        that was idle before time zero).
        """
        if len(self.data) == 0:
            return self
        shift = delay_s * self.sample_rate
        n = int(np.floor(shift))
        frac = shift - n
        padded = np.empty(len(self.data))
        if n >= len(self.data) or -n >= len(self.data):
            fill = self.data[0] if n > 0 else self.data[-1]
            return self.with_data(np.full(len(self.data), fill))
        if n >= 0:
            padded[:n] = self.data[0]
            padded[n:] = self.data[: len(self.data) - n]
        else:
            padded[:n] = self.data[-n:]
            padded[n:] = self.data[-1]
        if frac > 0:
            shifted_one_more = np.empty_like(padded)
            shifted_one_more[0] = padded[0]
            shifted_one_more[1:] = padded[:-1]
            padded = (1.0 - frac) * padded + frac * shifted_one_more
        return self.with_data(padded)

    def resampled(self, sample_rate: float) -> "Waveform":
        """Linearly resample the waveform onto a new uniform grid."""
        if sample_rate <= 0:
            raise ValueError(f"sample_rate must be positive, got {sample_rate}")
        if np.isclose(sample_rate, self.sample_rate):
            return self
        new_n = max(1, int(round(self.duration * sample_rate)))
        new_t = self.t0 + np.arange(new_n) / sample_rate
        new_data = np.interp(new_t, self.time, self.data)
        return Waveform(new_data, sample_rate, t0=self.t0)


@dataclasses.dataclass(frozen=True)
class DifferentialWaveform:
    """A differential signal tracked as explicit positive and negative legs.

    CML circuits are differential end to end.  Most of the library only
    needs the differential mode and uses :class:`Waveform`; this class is
    for studies where the common mode or a leg-to-leg DC offset matters
    (e.g. the limiting amplifier's offset-cancellation loop).
    """

    positive: Waveform
    negative: Waveform

    def __post_init__(self) -> None:
        self.positive._check_compatible(self.negative)

    @classmethod
    def from_differential(cls, diff: Waveform,
                          common_mode: float = 0.0) -> "DifferentialWaveform":
        """Split a differential-mode waveform into two legs around a CM level."""
        half = diff * 0.5
        return cls(positive=half + common_mode, negative=(-half) + common_mode)

    @property
    def sample_rate(self) -> float:
        return self.positive.sample_rate

    def differential(self) -> Waveform:
        """The differential-mode component ``v_p - v_n``."""
        return self.positive - self.negative

    def common_mode(self) -> Waveform:
        """The common-mode component ``(v_p + v_n) / 2``."""
        return (self.positive + self.negative) * 0.5

    def with_offset(self, offset_v: float) -> "DifferentialWaveform":
        """Add a static leg-to-leg imbalance (models device mismatch)."""
        half = offset_v / 2.0
        return DifferentialWaveform(self.positive + half, self.negative - half)

    def map_each(self, func: Callable[[np.ndarray], np.ndarray]
                 ) -> "DifferentialWaveform":
        """Apply the same elementwise function to both legs."""
        return DifferentialWaveform(self.positive.map(func),
                                    self.negative.map(func))
