"""Adaptation loops for the interface's analog knobs.

The paper's circuits expose three continuous knobs — the equalizer's
NMOS gate voltage V1, the peaking differentiator's tail current, and
the delay buffer's tail current — and says they are "tunable" without
saying how they get tuned.  In a deployed SerDes an adaptation loop
does it: measure an eye-quality metric, move the knob, keep what helps.

This module provides that loop as a library API: a generic scalar-knob
optimizer (coarse grid + golden-section refinement, derivative-free —
eye metrics are noisy and non-smooth) and ready-made adapters for the
equalizer and the peaking circuit.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, List, Tuple

from ..analysis.eye import EyeDiagram
from ..channel.backplane import BackplaneChannel
from ..signals.nrz import NrzEncoder
from ..signals.prbs import prbs7
from ..signals.waveform import Waveform

__all__ = ["ScalarKnobSearch", "AdaptationResult", "adapt_equalizer",
           "adapt_peaking", "eye_quality_metric"]

_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0


@dataclasses.dataclass(frozen=True)
class AdaptationResult:
    """Outcome of a knob adaptation."""

    best_setting: float
    best_score: float
    evaluations: int
    history: Tuple[Tuple[float, float], ...]
    """(setting, score) pairs in evaluation order."""


@dataclasses.dataclass
class ScalarKnobSearch:
    """Derivative-free maximizer for one bounded analog knob.

    Coarse grid to bracket the peak, then golden-section refinement
    inside the bracketing interval.  Deterministic and robust to the
    plateau/noise structure of eye metrics.
    """

    lo: float
    hi: float
    n_grid: int = 7
    n_refine: int = 10

    def __post_init__(self) -> None:
        if not self.lo < self.hi:
            raise ValueError(f"need lo < hi, got {self.lo}, {self.hi}")
        if self.n_grid < 3:
            raise ValueError(f"n_grid must be >= 3, got {self.n_grid}")
        if self.n_refine < 0:
            raise ValueError(f"n_refine must be >= 0, got {self.n_refine}")

    def maximize(self, objective: Callable[[float], float]
                 ) -> AdaptationResult:
        history: List[Tuple[float, float]] = []

        def evaluate(x: float) -> float:
            score = objective(x)
            history.append((x, score))
            return score

        step = (self.hi - self.lo) / (self.n_grid - 1)
        grid = [self.lo + i * step for i in range(self.n_grid)]
        scores = [evaluate(x) for x in grid]
        best_index = max(range(len(grid)), key=lambda i: scores[i])

        # Bracket around the best grid point.
        left = grid[max(0, best_index - 1)]
        right = grid[min(len(grid) - 1, best_index + 1)]

        # Golden-section refinement (maximization).
        a, b = left, right
        c = b - _GOLDEN * (b - a)
        d = a + _GOLDEN * (b - a)
        fc = evaluate(c)
        fd = evaluate(d)
        for _ in range(self.n_refine):
            if fc >= fd:
                b, d, fd = d, c, fc
                c = b - _GOLDEN * (b - a)
                fc = evaluate(c)
            else:
                a, c, fc = c, d, fd
                d = a + _GOLDEN * (b - a)
                fd = evaluate(d)

        best_setting, best_score = max(history, key=lambda item: item[1])
        return AdaptationResult(best_setting=best_setting,
                                best_score=best_score,
                                evaluations=len(history),
                                history=tuple(history))


def eye_quality_metric(wave: Waveform, bit_rate: float,
                       skip_ui: int = 16) -> float:
    """The adaptation objective: eye width minus a jitter penalty.

    Width (UI) dominates; RMS jitter (UI) is subtracted so that among
    equal-width settings the cleaner crossing wins.  Returns a large
    negative value for waveforms whose eye cannot be measured.
    """
    try:
        eye = EyeDiagram(wave, bit_rate, skip_ui=skip_ui)
    except ValueError:
        return -10.0
    measurement = eye.measure()
    if not measurement.is_open:
        return -1.0
    return measurement.eye_width_ui - 2.0 * eye.jitter_rms_ui()


def _training_wave(bit_rate: float, amplitude: float,
                   samples_per_bit: int, n_bits: int) -> Waveform:
    encoder = NrzEncoder(bit_rate=bit_rate, samples_per_bit=samples_per_bit,
                         amplitude=amplitude)
    return encoder.encode(prbs7(n_bits))


def adapt_equalizer(channel: BackplaneChannel, bit_rate: float = 10e9,
                    amplitude: float = 0.2, samples_per_bit: int = 16,
                    n_bits: int = 260,
                    n_refine: int = 6) -> AdaptationResult:
    """Adapt the equalizer's V1 against a channel.

    Builds the paper's input interface at each candidate V1 and scores
    the received eye; returns the optimum and the search history.
    """
    from .interface import build_input_interface

    received = channel.process(
        _training_wave(bit_rate, amplitude, samples_per_bit, n_bits)
    )
    probe = build_input_interface()
    v1_lo, v1_hi = probe.equalizer.degeneration.control_range()
    # Stay inside the triode device's useful band.
    v1_hi = min(v1_hi, 1.2)

    def objective(v1: float) -> float:
        rx = build_input_interface(equalizer_control_voltage=v1)
        return eye_quality_metric(rx.process(received), bit_rate)

    search = ScalarKnobSearch(lo=v1_lo, hi=v1_hi, n_grid=6,
                              n_refine=n_refine)
    return search.maximize(objective)


def adapt_peaking(channel: BackplaneChannel, bit_rate: float = 10e9,
                  amplitude: float = 0.3, samples_per_bit: int = 16,
                  n_bits: int = 260,
                  n_refine: int = 6) -> AdaptationResult:
    """Adapt the peaking spike height (differentiator tail current)."""
    from .interface import build_output_interface

    wave = _training_wave(bit_rate, amplitude, samples_per_bit, n_bits)

    def objective(spike_current: float) -> float:
        tx = build_output_interface(spike_current=spike_current)
        received = channel.process(tx.process(wave))
        metric = eye_quality_metric(received, bit_rate)
        # Post-channel vertical opening matters for peaking; fold it in.
        try:
            measurement = EyeDiagram.measure_waveform(received, bit_rate,
                                                      skip_ui=16)
            metric += 2.0 * max(0.0, measurement.eye_height)
        except ValueError:
            pass
        return metric

    search = ScalarKnobSearch(lo=0.2e-3, hi=4e-3, n_grid=5,
                              n_refine=n_refine)
    return search.maximize(objective)
