"""Adaptation loops for the interface's analog knobs.

The paper's circuits expose three continuous knobs — the equalizer's
NMOS gate voltage V1, the peaking differentiator's tail current, and
the delay buffer's tail current — and says they are "tunable" without
saying how they get tuned.  In a deployed SerDes an adaptation loop
does it: measure an eye-quality metric, move the knob, keep what helps.

This module provides that loop as a library API: a generic scalar-knob
optimizer (coarse grid + golden-section refinement, derivative-free —
eye metrics are noisy and non-smooth) and ready-made adapters for the
equalizer and the peaking circuit.

Batched evaluation contract
---------------------------
Every candidate-evaluation layer has a serial and a batched form that
are row-exact against each other:

* :func:`eye_quality_metric_batch` scores a
  :class:`~repro.signals.batch.WaveformBatch` in one vectorized pass —
  entry ``i`` equals ``eye_quality_metric(batch[i], ...)`` exactly
  (shared fold, vectorized phase search and crossing extraction);
* :meth:`ScalarKnobSearch.maximize_batch` drives a batched objective
  ``objective_batch(np.ndarray) -> np.ndarray``: the coarse grid is
  evaluated through ONE call (all candidates at once), golden-section
  refinement through length-1 calls.  Given
  ``objective_batch(xs)[i] == objective(xs[i])`` it returns the
  identical :class:`AdaptationResult` as :meth:`~ScalarKnobSearch.maximize`
  — same candidate sequence, same history, same optimum;
* :func:`adapt_equalizer` / :func:`adapt_peaking` build every grid
  candidate's pipeline, stack the processed training waves into one
  batch and score them in a single batched metric pass
  (``batched=False`` falls back to the per-candidate reference loop).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, List, Sequence, Tuple

import numpy as np

from ..analysis.eye import EyeDiagram, EyeDiagramBatch
from ..channel.backplane import BackplaneChannel
from ..signals.batch import WaveformBatch
from ..signals.nrz import NrzEncoder
from ..signals.prbs import prbs7
from ..signals.waveform import Waveform

__all__ = ["ScalarKnobSearch", "AdaptationResult", "adapt_equalizer",
           "adapt_peaking", "eye_quality_metric",
           "eye_quality_metric_batch"]

_GOLDEN = (math.sqrt(5.0) - 1.0) / 2.0


@dataclasses.dataclass(frozen=True)
class AdaptationResult:
    """Outcome of a knob adaptation."""

    best_setting: float
    best_score: float
    evaluations: int
    history: Tuple[Tuple[float, float], ...]
    """(setting, score) pairs in evaluation order."""


@dataclasses.dataclass
class ScalarKnobSearch:
    """Derivative-free maximizer for one bounded analog knob.

    Coarse grid to bracket the peak, then golden-section refinement
    inside the bracketing interval.  Deterministic and robust to the
    plateau/noise structure of eye metrics.

    :meth:`maximize` evaluates a scalar objective candidate by
    candidate; :meth:`maximize_batch` takes a vectorized objective and
    evaluates the whole coarse grid in one call — both walk the same
    candidate sequence and return identical results for consistent
    objectives.
    """

    lo: float
    hi: float
    n_grid: int = 7
    n_refine: int = 10

    def __post_init__(self) -> None:
        if not self.lo < self.hi:
            raise ValueError(f"need lo < hi, got {self.lo}, {self.hi}")
        if self.n_grid < 3:
            raise ValueError(f"n_grid must be >= 3, got {self.n_grid}")
        if self.n_refine < 0:
            raise ValueError(f"n_refine must be >= 0, got {self.n_refine}")

    def maximize(self, objective: Callable[[float], float]
                 ) -> AdaptationResult:
        """Maximize a scalar objective (one candidate per call)."""
        return self._search(
            lambda xs: [float(objective(x)) for x in xs])

    def maximize_batch(self, objective_batch:
                       Callable[[np.ndarray], np.ndarray]
                       ) -> AdaptationResult:
        """Maximize a batched objective.

        ``objective_batch`` receives a 1-D array of candidate settings
        and must return one score per candidate; the coarse grid phase
        passes all ``n_grid`` candidates in a single call (the batched
        fast path), golden-section refinement passes length-1 arrays.
        """
        def evaluate_many(xs: List[float]) -> List[float]:
            scores = np.asarray(
                objective_batch(np.asarray(xs, dtype=float)), dtype=float)
            if scores.shape != (len(xs),):
                raise ValueError(
                    f"objective_batch returned shape {scores.shape} for "
                    f"{len(xs)} candidates"
                )
            return [float(score) for score in scores]

        return self._search(evaluate_many)

    def _search(self, evaluate_many:
                Callable[[List[float]], List[float]]) -> AdaptationResult:
        """The shared search: grid bracket, then golden-section."""
        history: List[Tuple[float, float]] = []

        def evaluate(xs: List[float]) -> List[float]:
            scores = evaluate_many(xs)
            history.extend(zip(xs, scores))
            return scores

        step = (self.hi - self.lo) / (self.n_grid - 1)
        grid = [self.lo + i * step for i in range(self.n_grid)]
        scores = evaluate(grid)
        best_index = max(range(len(grid)), key=lambda i: scores[i])

        # Bracket around the best grid point.
        left = grid[max(0, best_index - 1)]
        right = grid[min(len(grid) - 1, best_index + 1)]

        # Golden-section refinement (maximization).
        a, b = left, right
        c = b - _GOLDEN * (b - a)
        d = a + _GOLDEN * (b - a)
        fc = evaluate([c])[0]
        fd = evaluate([d])[0]
        for _ in range(self.n_refine):
            if fc >= fd:
                b, d, fd = d, c, fc
                c = b - _GOLDEN * (b - a)
                fc = evaluate([c])[0]
            else:
                a, c, fc = c, d, fd
                d = a + _GOLDEN * (b - a)
                fd = evaluate([d])[0]

        best_setting, best_score = max(history, key=lambda item: item[1])
        return AdaptationResult(best_setting=best_setting,
                                best_score=best_score,
                                evaluations=len(history),
                                history=tuple(history))


def eye_quality_metric(wave: Waveform, bit_rate: float,
                       skip_ui: int = 16) -> float:
    """The adaptation objective: eye width minus a jitter penalty.

    Width (UI) dominates; RMS jitter (UI) is subtracted so that among
    equal-width settings the cleaner crossing wins.  Returns a large
    negative value for waveforms whose eye cannot be measured.
    """
    try:
        eye = EyeDiagram(wave, bit_rate, skip_ui=skip_ui)
    except ValueError:
        return -10.0
    measurement = eye.measure()
    if not measurement.is_open:
        return -1.0
    return measurement.eye_width_ui - 2.0 * eye.jitter_rms_ui()


def eye_quality_metric_batch(batch: WaveformBatch, bit_rate: float,
                             skip_ui: int = 16) -> np.ndarray:
    """Per-row :func:`eye_quality_metric`, one vectorized pass.

    Folds the whole batch once; the vertical phase search and the
    crossing extraction run vectorized across all scenarios.  Entry
    ``i`` equals ``eye_quality_metric(batch[i], bit_rate, skip_ui)``
    exactly.
    """
    try:
        eye = EyeDiagramBatch(batch, bit_rate, skip_ui=skip_ui)
    except ValueError:
        # The batch cannot be folded as one (non-integer samples/UI —
        # which the serial path resamples through — or too short): fall
        # back to the per-row metric, which keeps the row-exactness
        # contract and still returns -10 where a row is unmeasurable.
        return np.array([eye_quality_metric(row, bit_rate, skip_ui)
                         for row in batch.rows()])
    heights = eye.eye_heights().max(axis=1)
    width = eye.eye_width_ui()
    metric = width - 2.0 * eye.jitter_rms_ui()
    is_open = (heights > 0) & (width > 0)
    return np.where(is_open, metric, -1.0)


def _training_wave(bit_rate: float, amplitude: float,
                   samples_per_bit: int, n_bits: int) -> Waveform:
    encoder = NrzEncoder(bit_rate=bit_rate, samples_per_bit=samples_per_bit,
                         amplitude=amplitude)
    return encoder.encode(prbs7(n_bits))


def adapt_equalizer(channel: BackplaneChannel, bit_rate: float = 10e9,
                    amplitude: float = 0.2, samples_per_bit: int = 16,
                    n_bits: int = 260,
                    n_refine: int = 6,
                    batched: bool = True) -> AdaptationResult:
    """Adapt the equalizer's V1 against a channel.

    Builds the paper's input interface at each candidate V1 and scores
    the received eye; returns the optimum and the search history.  With
    ``batched=True`` (the default) every coarse-grid candidate's
    received wave is scored in one :func:`eye_quality_metric_batch`
    pass; ``batched=False`` is the per-candidate reference loop, and
    the two return identical results.
    """
    from .interface import build_input_interface

    received = channel.process(
        _training_wave(bit_rate, amplitude, samples_per_bit, n_bits)
    )
    probe = build_input_interface()
    v1_lo, v1_hi = probe.equalizer.degeneration.control_range()
    # Stay inside the triode device's useful band.
    v1_hi = min(v1_hi, 1.2)

    def process(v1: float) -> Waveform:
        rx = build_input_interface(equalizer_control_voltage=v1)
        return rx.process(received)

    def objective(v1: float) -> float:
        return eye_quality_metric(process(v1), bit_rate)

    def objective_batch(v1s: np.ndarray) -> np.ndarray:
        outs = WaveformBatch.stack([process(float(v1)) for v1 in v1s])
        return eye_quality_metric_batch(outs, bit_rate)

    search = ScalarKnobSearch(lo=v1_lo, hi=v1_hi, n_grid=6,
                              n_refine=n_refine)
    if batched:
        return search.maximize_batch(objective_batch)
    return search.maximize(objective)


def adapt_peaking(channel: BackplaneChannel, bit_rate: float = 10e9,
                  amplitude: float = 0.3, samples_per_bit: int = 16,
                  n_bits: int = 260,
                  n_refine: int = 6,
                  batched: bool = True) -> AdaptationResult:
    """Adapt the peaking spike height (differentiator tail current).

    Same batched-evaluation contract as :func:`adapt_equalizer`: the
    coarse grid's candidate waveforms are scored in one batched pass
    (eye metric plus the post-channel vertical-opening bonus), and
    ``batched=False`` reproduces it candidate by candidate.
    """
    from .interface import build_output_interface

    wave = _training_wave(bit_rate, amplitude, samples_per_bit, n_bits)

    def process(spike_current: float) -> Waveform:
        tx = build_output_interface(spike_current=spike_current)
        return channel.process(tx.process(wave))

    def objective(spike_current: float) -> float:
        received = process(spike_current)
        metric = eye_quality_metric(received, bit_rate)
        # Post-channel vertical opening matters for peaking; fold it in.
        try:
            measurement = EyeDiagram.measure_waveform(received, bit_rate,
                                                      skip_ui=16)
            metric += 2.0 * max(0.0, measurement.eye_height)
        except ValueError:
            pass
        return metric

    def objective_batch(currents: np.ndarray) -> np.ndarray:
        outs = WaveformBatch.stack(
            [process(float(current)) for current in currents])
        metric = eye_quality_metric_batch(outs, bit_rate)
        try:
            eye = EyeDiagramBatch(outs, bit_rate, skip_ui=16)
            metric = metric + 2.0 * np.maximum(
                0.0, eye.eye_heights().max(axis=1))
        except ValueError:
            pass
        return metric

    search = ScalarKnobSearch(lo=0.2e-3, hi=4e-3, n_grid=5,
                              n_refine=n_refine)
    if batched:
        return search.maximize_batch(objective_batch)
    return search.maximize(objective)
