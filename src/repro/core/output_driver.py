"""The CML output interface driver chain (paper Fig 3).

"This output interface consists of a level-shift circuit, a
voltage-peaking circuit and three-stage CML buffers to be used as a
backplane driver...  The tapered CML output buffer increases driving
capability stage by stage.  The last stage of CML output buffer can
provide approximately 8 mA driving current in order to drive 50 ohm
load and let a output swing range up to 250 mV."

The taper exists because no single stage can drive both the small
on-chip node it is fed from and the 50-ohm line: each stage is a
width-scaled copy of the previous one (constant current density, so
constant swing), multiplying drive current while presenting each stage
with a load only ``taper_ratio`` times its own input capacitance.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List

from ..channel.terminations import cml_output_swing
from ..devices.mosfet import Mosfet
from ..lti.blocks import Block, Pipeline
from ..lti.transfer_function import RationalTF
from ..signals.waveform import Waveform
from .cml_buffer import CmlBuffer
from .loads import ActiveInductorLoad, LoadElement, ResistiveLoad

__all__ = ["LevelShifter", "TaperedDriver"]


@dataclasses.dataclass
class LevelShifter(Block):
    """Source-follower level shifter at the driver input.

    Shifts the common mode down by roughly a Vgs so the first driver
    stage's input pair stays in saturation; differentially it is a
    slightly-sub-unity-gain buffer with one pole at ``gm/C`` of the
    follower.  (Common-mode shift does not appear in differential-mode
    waveforms but the block's gain/pole do.)
    """

    follower: Mosfet
    c_load: float = 30e-15
    name: str = "level-shifter"

    @property
    def gain(self) -> float:
        """Follower gain gm/(gm + gmb-ish) — modeled as 0.9 of unity."""
        return 0.9

    @property
    def pole_hz(self) -> float:
        """Follower output pole gm/(2 pi C)."""
        return self.follower.gm / (2.0 * math.pi
                                   * (self.c_load + self.follower.cgs / 3.0))

    def transfer_function(self) -> RationalTF:
        wp = 2.0 * math.pi * self.pole_hz
        import numpy as np

        return RationalTF(np.array([self.gain]), np.array([1.0 / wp, 1.0]))

    def process(self, wave: Waveform) -> Waveform:
        from ..lti.discretize import simulate_tf

        out = simulate_tf(self.transfer_function(), wave.data,
                          wave.sample_rate)
        return wave.with_data(out)

    @property
    def supply_current(self) -> float:
        """Static current of both follower legs."""
        return 2.0 * self.follower.drain_current


@dataclasses.dataclass
class TaperedDriver:
    """Three width-scaled CML stages driving the 50-ohm line.

    Parameters
    ----------
    first_stage:
        The smallest (innermost) stage; subsequent stages are generated
        by :meth:`CmlBuffer.scaled`-style width multiplication.
    taper_ratio:
        Width/current multiplication per stage (2.0 gives the paper's
        2 mA -> 4 mA -> 8 mA progression).
    n_stages:
        Number of stages (the paper uses three).
    line_impedance:
        The transmission-line impedance the last stage drives.
    double_terminated:
        Whether the far end is also terminated (effective load Z0/2).
    """

    first_stage: CmlBuffer
    taper_ratio: float = 2.0
    n_stages: int = 3
    line_impedance: float = 50.0
    double_terminated: bool = True
    name: str = "tapered-driver"

    def __post_init__(self) -> None:
        if self.taper_ratio <= 0:
            raise ValueError(
                f"taper_ratio must be positive, got {self.taper_ratio}"
            )
        if self.n_stages < 1:
            raise ValueError(f"n_stages must be >= 1, got {self.n_stages}")
        if self.line_impedance <= 0:
            raise ValueError(
                f"line_impedance must be positive, got {self.line_impedance}"
            )

    # -- stage construction -------------------------------------------------
    def stages(self) -> List[CmlBuffer]:
        """The driver stages, smallest first, last one loaded by the line.

        Each inner stage's load element scales *down* in resistance as
        the device scales up (constant swing); the final stage's load is
        the terminated line itself.
        """
        stages = []
        for index in range(self.n_stages):
            factor = self.taper_ratio**index
            pair = self.first_stage.input_pair.scaled(factor)
            tail = self.first_stage.tail_current * factor
            is_last = index == self.n_stages - 1
            if is_last:
                load: LoadElement = ResistiveLoad(self.effective_load_ohm)
                c_ext = 200e-15  # pad + ESD capacitance
            else:
                load = self._scaled_load(factor)
                next_pair = self.first_stage.input_pair.scaled(
                    self.taper_ratio**(index + 1)
                )
                c_ext = next_pair.cgs + next_pair.cgd
            stages.append(dataclasses.replace(
                self.first_stage,
                input_pair=pair,
                tail_current=tail,
                load=load,
                c_load_ext=c_ext,
                source_resistance=(self.first_stage.source_resistance
                                   if index == 0 else
                                   self._scaled_load(factor
                                                     / self.taper_ratio).r_dc),
                name=f"driver-stage-{index + 1}",
            ))
        return stages

    def _scaled_load(self, factor: float) -> LoadElement:
        base = self.first_stage.load
        if isinstance(base, ActiveInductorLoad):
            return base.scaled(factor)
        return ResistiveLoad(base.r_dc / factor)

    @property
    def effective_load_ohm(self) -> float:
        """Load seen by the last stage (Z0/2 when doubly terminated)."""
        if self.double_terminated:
            return self.line_impedance / 2.0
        return self.line_impedance

    # -- headline numbers -----------------------------------------------------
    @property
    def output_current(self) -> float:
        """Tail current of the final stage (the paper's ~8 mA)."""
        return (self.first_stage.tail_current
                * self.taper_ratio**(self.n_stages - 1))

    @property
    def output_swing_pp(self) -> float:
        """Single-ended peak-to-peak swing into the line."""
        return cml_output_swing(self.output_current, self.line_impedance,
                                self.double_terminated)

    @property
    def differential_swing_pp(self) -> float:
        """Differential peak-to-peak output swing (2x single-ended)."""
        return 2.0 * self.output_swing_pp

    def small_signal_tf(self) -> RationalTF:
        """Cascade response of the driver chain."""
        tf = RationalTF.constant(1.0)
        for stage in self.stages():
            tf = tf.cascade(stage.small_signal_tf())
        return tf

    def bandwidth_3db(self) -> float:
        """-3 dB bandwidth of the chain."""
        return self.small_signal_tf().bandwidth_3db()

    # -- simulation --------------------------------------------------------
    def to_pipeline(self) -> Pipeline:
        """The behavioral stage chain (limiting included per stage)."""
        return Pipeline([stage.to_block() for stage in self.stages()],
                        name=self.name)

    def process(self, wave: Waveform) -> Waveform:
        """Drive a waveform through the taper onto the line."""
        return self.to_pipeline().process(wave)

    @property
    def supply_current(self) -> float:
        """Static current of all stages."""
        return sum(stage.supply_current for stage in self.stages())
