"""Voltage-peaking (pre-emphasis) circuit (paper Figs 10, 11).

"The pre-emphasis circuit that is integrated by the CML output interface
is to form a voltage-peaking circuit...  It features a CML tunable delay
buffer and a differentiator circuit.  The CML delay buffer ... controls
the delay by changing the tail current ... to alter voltage-peaking
spike width...  The logical function is similar to that of a digital
XOR gate.  The current of the current source in the differentiator
circuit controls the voltage-peaking spike height."

Mechanism: the differentiator compares the signal with a delayed copy of
itself.  For differential logic levels the XOR-like product

    spike(t) = (x(t) - x(t - tau)) / 2            (for x in {-1, +1})

is nonzero exactly for ``tau`` after each transition, signed in the
direction of the *new* bit, so summing ``height * spike`` onto the
signal boosts every edge — a two-tap FIR pre-emphasis realized in
analog, equivalent to the digital pre-emphasis of Westergaard et al.
(the paper's ref [4]) but without a digital tap engine.

Knobs (both exposed, both cited by the paper):

* **spike width** = the delay-buffer delay, tuned through its tail
  current ("tunable delay to alter the voltage-peaking tuning range up
  to 20 %");
* **spike height** = the differentiator tail current.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Tuple

import numpy as np

from ..devices.mosfet import Mosfet
from ..lti.blocks import Block
from ..signals.waveform import Waveform

__all__ = ["CmlDelayBuffer", "Differentiator", "VoltagePeakingCircuit"]


@dataclasses.dataclass
class CmlDelayBuffer(Block):
    """A CML buffer used as a tunable delay element.

    A current-starved CML stage delays by roughly the slewing time of
    its output node: ``t_d ~ C * V_swing / I_tail``.  Tuning the tail
    current around nominal tunes the delay inversely — the paper quotes
    a tuning range "up to 20 %", which the default current range
    (+-20 %) reproduces.
    """

    nominal_delay: float
    tail_current_nominal: float = 2e-3
    tail_current: float = 2e-3
    name: str = "cml-delay-buffer"

    def __post_init__(self) -> None:
        if self.nominal_delay <= 0:
            raise ValueError(
                f"nominal_delay must be positive, got {self.nominal_delay}"
            )
        if self.tail_current_nominal <= 0 or self.tail_current <= 0:
            raise ValueError("tail currents must be positive")

    @property
    def delay(self) -> float:
        """Actual delay: nominal scaled by I_nom / I (slewing model)."""
        return self.nominal_delay * self.tail_current_nominal \
            / self.tail_current

    def tuning_fraction(self) -> float:
        """Deviation of the delay from nominal, as a fraction."""
        return self.delay / self.nominal_delay - 1.0

    def tuned(self, current_factor: float) -> "CmlDelayBuffer":
        """Same buffer with the tail current scaled (the width knob)."""
        if current_factor <= 0:
            raise ValueError(
                f"current_factor must be positive, got {current_factor}"
            )
        return dataclasses.replace(
            self, tail_current=self.tail_current_nominal * current_factor
        )

    def process(self, wave: Waveform) -> Waveform:
        return wave.delayed(self.delay)

    @property
    def supply_current(self) -> float:
        return self.tail_current


@dataclasses.dataclass
class Differentiator(Block):
    """The XOR-like analog differentiator (paper Fig 11).

    Output: ``height * (S(x(t)) - S(x(t - tau))) / 2`` where ``S`` is the
    saturating (tanh) characteristic of the input pairs normalized to
    +-1.  For settled logic levels this equals ``height * sign(new bit)``
    during the ``tau`` window after a transition and zero elsewhere —
    the signed XOR spike train.

    ``height`` is the spike amplitude ``I_tail * R_load`` of the
    differentiator's output stage: the paper's spike-height control is
    the differentiator tail current.
    """

    delay: CmlDelayBuffer
    tail_current: float = 2e-3
    load_resistance: float = 25.0
    logic_amplitude: float = 0.1
    name: str = "differentiator"

    def __post_init__(self) -> None:
        if self.tail_current <= 0:
            raise ValueError(
                f"tail_current must be positive, got {self.tail_current}"
            )
        if self.load_resistance <= 0:
            raise ValueError(
                f"load_resistance must be positive, got {self.load_resistance}"
            )
        if self.logic_amplitude <= 0:
            raise ValueError(
                f"logic_amplitude must be positive, got {self.logic_amplitude}"
            )

    @property
    def spike_height(self) -> float:
        """Peak spike amplitude I_tail * R_load."""
        return self.tail_current * self.load_resistance

    @property
    def spike_width(self) -> float:
        """Spike duration = the delay-buffer delay."""
        return self.delay.delay

    def process(self, wave: Waveform) -> Waveform:
        delayed = self.delay.process(wave)

        def saturate(v: np.ndarray) -> np.ndarray:
            # Sharp current steering: settled levels (+-logic_amplitude/2)
            # land at tanh(4) ~ 0.9993 of full steering.
            return np.tanh(v / (self.logic_amplitude / 8.0))

        spikes = 0.5 * (saturate(wave.data) - saturate(delayed.data))
        return wave.with_data(self.spike_height * spikes)

    def with_tail_current(self, tail_current: float) -> "Differentiator":
        """Spike-height knob: change the differentiator tail current."""
        return dataclasses.replace(self, tail_current=tail_current)

    @property
    def supply_current(self) -> float:
        return self.tail_current + self.delay.supply_current


@dataclasses.dataclass
class VoltagePeakingCircuit(Block):
    """Main path + differentiator spikes summed at the driver node.

    Sits "between CML output stage 1 and stage 2" (Fig 10): the input is
    the first driver stage's output, and the output — main signal plus
    edge spikes — feeds the remaining driver stages.  ``enabled=False``
    produces the Fig 16(a) ablation (driver without peaking).
    """

    differentiator: Differentiator
    enabled: bool = True
    name: str = "voltage-peaking"

    def process(self, wave: Waveform) -> Waveform:
        if not self.enabled:
            return wave
        spikes = self.differentiator.process(wave)
        return wave + spikes

    def disabled(self) -> "VoltagePeakingCircuit":
        """The Fig 16(a) variant."""
        return dataclasses.replace(self, enabled=False)

    # -- equivalence with FIR pre-emphasis -----------------------------------
    def equivalent_fir_taps(self, signal_amplitude: float
                            ) -> Tuple[float, float]:
        """The 2-tap FIR (main, post) this circuit approximates.

        For settled levels of amplitude ``a`` the peaked signal is
        ``x + h*(x - x_delayed)/(2a)``-shaped, i.e. taps
        ``(1 + k, -k)`` with ``k = spike_height / (2 * signal_amplitude)``
        — the standard transmit pre-emphasis form, enabling comparison
        with digital-pre-emphasis baselines (the paper's ref [4]).
        """
        if signal_amplitude <= 0:
            raise ValueError(
                f"signal_amplitude must be positive, got {signal_amplitude}"
            )
        k = self.differentiator.spike_height / (2.0 * signal_amplitude)
        return (1.0 + k, -k)

    def preemphasis_db(self, signal_amplitude: float) -> float:
        """Pre-emphasis ratio in dB: boosted edge vs settled level.

        The edge of a peaked waveform reaches ``a + h`` against a
        settled level of ``a``.
        """
        if signal_amplitude <= 0:
            raise ValueError(
                f"signal_amplitude must be positive, got {signal_amplitude}"
            )
        boosted = signal_amplitude + self.differentiator.spike_height
        return 20.0 * math.log10(boosted / signal_amplitude)

    @property
    def supply_current(self) -> float:
        if not self.enabled:
            return 0.0
        return self.differentiator.supply_current
