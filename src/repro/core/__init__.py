"""The paper's contribution: the 10 Gb/s wide-band CML I/O interface.

Block-level models of every circuit in Sections II-III — CML buffers
with active-inductor loads, the Cherry-Hooper equalizer, the limiting
amplifier with DC-offset cancellation, the tapered output driver, the
voltage-peaking (pre-emphasis) circuit and the beta-multiplier bias
reference — plus the assemblies and power/area bookkeeping of Table I.
"""

from .loads import (
    LoadElement,
    ResistiveLoad,
    ActiveInductorLoad,
    SpiralInductorLoad,
    ParallelLoad,
    node_impedance,
    stage_tf,
)
from .cml_buffer import CmlBuffer, apply_active_feedback
from .equalizer import TriodeDegeneration, CherryHooperEqualizer
from .gain_stage import GainStage
from .offset_cancellation import (
    OffsetCancellationNetwork,
    duty_cycle_distortion,
)
from .limiting_amplifier import LimitingAmplifier
from .output_driver import LevelShifter, TaperedDriver
from .voltage_peaking import (
    CmlDelayBuffer,
    Differentiator,
    VoltagePeakingCircuit,
)
from .bandgap import BetaMultiplierReference
from .power_area import BudgetEntry, PowerAreaBudget, MM2
from .interface import (
    InputInterface,
    OutputInterface,
    CmlIoInterface,
    build_input_interface,
    build_output_interface,
    build_io_interface,
)
from .adaptation import (
    ScalarKnobSearch,
    AdaptationResult,
    adapt_equalizer,
    adapt_peaking,
    eye_quality_metric,
    eye_quality_metric_batch,
)

__all__ = [
    "LoadElement",
    "ResistiveLoad",
    "ActiveInductorLoad",
    "SpiralInductorLoad",
    "ParallelLoad",
    "node_impedance",
    "stage_tf",
    "CmlBuffer",
    "apply_active_feedback",
    "TriodeDegeneration",
    "CherryHooperEqualizer",
    "GainStage",
    "OffsetCancellationNetwork",
    "duty_cycle_distortion",
    "LimitingAmplifier",
    "LevelShifter",
    "TaperedDriver",
    "CmlDelayBuffer",
    "Differentiator",
    "VoltagePeakingCircuit",
    "BetaMultiplierReference",
    "BudgetEntry",
    "PowerAreaBudget",
    "MM2",
    "InputInterface",
    "OutputInterface",
    "CmlIoInterface",
    "build_input_interface",
    "build_output_interface",
    "build_io_interface",
    "ScalarKnobSearch",
    "AdaptationResult",
    "adapt_equalizer",
    "adapt_peaking",
    "eye_quality_metric",
    "eye_quality_metric_batch",
]
