"""Load elements for CML stages and the node-impedance algebra.

A CML stage is a differential transconductance pushing current into a
load network; its small-signal response is ``gm * Z_node(s)`` where
``Z_node`` is the load element in parallel with the node capacitance.
This module provides the load elements the paper uses — plain pull-up
resistors (gain stages, Fig 9), PMOS active inductors (buffers, Fig 6),
spiral inductors (the area baseline) — and the parallel-combination
algebra that turns them into transfer functions.
"""

from __future__ import annotations

import dataclasses
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..devices.active_inductor import ActiveInductor
from ..devices.passives import SpiralInductor
from ..lti.transfer_function import RationalTF

__all__ = [
    "LoadElement",
    "ResistiveLoad",
    "ActiveInductorLoad",
    "SpiralInductorLoad",
    "ParallelLoad",
    "node_impedance",
    "stage_tf",
]


@runtime_checkable
class LoadElement(Protocol):
    """Anything that can hang off a CML output node."""

    def impedance_tf(self) -> RationalTF:
        """Z(s) of the element alone (no node capacitance)."""
        ...

    @property
    def r_dc(self) -> float:
        """DC resistance (sets the stage's DC gain)."""
        ...

    @property
    def area(self) -> float:
        """Layout area in m^2 (for the power/area bookkeeping)."""
        ...


@dataclasses.dataclass(frozen=True)
class ResistiveLoad:
    """A poly pull-up resistor — the gain-stage load of Fig 9."""

    resistance: float
    #: Poly resistors are small; a few hundred ohms is ~30 um^2.
    area_per_ohm: float = 0.1e-12

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(f"resistance must be positive, got {self.resistance}")

    def impedance_tf(self) -> RationalTF:
        return RationalTF.constant(self.resistance)

    @property
    def r_dc(self) -> float:
        return self.resistance

    @property
    def area(self) -> float:
        return self.resistance * self.area_per_ohm


@dataclasses.dataclass(frozen=True)
class ActiveInductorLoad:
    """The paper's PMOS active-inductor load (Fig 6).

    Wraps :class:`~repro.devices.active_inductor.ActiveInductor` and adds
    the layout-area model: the whole element is one PMOS plus a gate
    resistor — a few tens of um^2, the source of the 80 % area saving
    versus spirals.
    """

    inductor: ActiveInductor
    #: Area of the PMOS + gate resistor, dominated by the device width.
    area_per_width: float = 2.5e-6  # m^2 per metre of width  (2.5 um height)

    def impedance_tf(self) -> RationalTF:
        return self.inductor.impedance_tf()

    @property
    def r_dc(self) -> float:
        return self.inductor.r_dc

    @property
    def area(self) -> float:
        return self.inductor.device.width * self.area_per_width

    def scaled(self, width_factor: float) -> "ActiveInductorLoad":
        """Scale the PMOS width — the Fig 7 bandwidth-control knob."""
        return dataclasses.replace(self,
                                   inductor=self.inductor.scaled(width_factor))


@dataclasses.dataclass(frozen=True)
class SpiralInductorLoad:
    """Series R + spiral L load — the on-chip-inductor baseline.

    The classic shunt-peaked load the paper's techniques replace:
    same response family, ~50x the area per element.
    """

    resistance: float
    spiral: SpiralInductor

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(f"resistance must be positive, got {self.resistance}")

    def impedance_tf(self) -> RationalTF:
        # R + sL (spiral loss folded into R; SRF ignored in-band).
        return RationalTF(np.array([self.spiral.inductance, self.resistance]),
                          np.array([1.0]))

    @property
    def r_dc(self) -> float:
        return self.resistance

    @property
    def area(self) -> float:
        return self.spiral.area


@dataclasses.dataclass(frozen=True)
class ParallelLoad:
    """Several load elements in parallel on one node."""

    elements: Sequence[LoadElement]

    def __post_init__(self) -> None:
        if not self.elements:
            raise ValueError("ParallelLoad needs at least one element")

    def impedance_tf(self) -> RationalTF:
        # 1/Z = sum(1/Z_i): accumulate admittances as rationals.
        y_num = np.array([0.0])
        y_den = np.array([1.0])
        for element in self.elements:
            z = element.impedance_tf()
            # y_i = z.den / z.num
            y_num = np.polyadd(np.polymul(y_num, z.num),
                               np.polymul(z.den, y_den))
            y_den = np.polymul(y_den, z.num)
        return RationalTF(y_den, y_num)

    @property
    def r_dc(self) -> float:
        conductance = sum(1.0 / e.r_dc for e in self.elements)
        return 1.0 / conductance

    @property
    def area(self) -> float:
        return sum(e.area for e in self.elements)


def node_impedance(load: LoadElement, node_capacitance: float) -> RationalTF:
    """Z_node(s) = Z_load(s) || 1/(s C).

    With ``Z = n/d``:  Z_node = n / (d + s C n) — this is where inductive
    peaking appears: an active-inductor numerator zero against the node
    capacitance produces the complex-pole peaked response of Fig 7(b).
    """
    if node_capacitance < 0:
        raise ValueError(
            f"node capacitance must be >= 0, got {node_capacitance}"
        )
    z = load.impedance_tf()
    if node_capacitance == 0:
        return z
    den = np.polyadd(np.polymul(z.den, np.array([1.0])),
                     np.polymul(np.array([node_capacitance, 0.0]), z.num))
    return RationalTF(z.num, den)


def stage_tf(gm: float, load: LoadElement,
             node_capacitance: float) -> RationalTF:
    """Small-signal stage response ``gm * Z_node(s)``."""
    if gm <= 0:
        raise ValueError(f"gm must be positive, got {gm}")
    return node_impedance(load, node_capacitance).scaled(gm)
