"""The basic wide-band CML buffer (paper Fig 6).

The cell that every interface in the paper is built from: an NMOS
differential pair (M1/M2) with

* a **PMOS active-inductor load** — inductive peaking without spiral
  inductors (the 80 % area saving);
* **active feedback** — a second differential pair M5/M6 through current
  buffers M3/M4 closing a loop that converts the two real node poles
  into a complex pair (bandwidth extension at constant gain-bandwidth);
* **negative Miller capacitance** — accumulation-mode varactors M7/M8
  cross-coupled from each output to the opposite input, cancelling the
  Miller-multiplied Cgd at the input node.

The behavioral decomposition is Wiener-Hammerstein:

    input pole  ->  tanh current steering  ->  load network dynamics

with every pole/zero computed from the device models, so sweeping the
PMOS width or the feedback strength moves the response exactly the way
the paper's Figs 7(a)/(b) show.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from ..devices.mosfet import Mosfet
from ..devices.varactor import MosVaractor, neutralized_input_capacitance
from ..lti.blocks import TanhLimiter, WienerHammersteinBlock
from ..lti.transfer_function import RationalTF, first_order_lowpass
from .loads import LoadElement, node_impedance

__all__ = ["CmlBuffer", "apply_active_feedback"]


def apply_active_feedback(open_loop: RationalTF, loop_gain: float,
                          restore_gain: bool = True) -> RationalTF:
    """Close an active-feedback loop of DC loop gain ``loop_gain``.

    The feedback transconductance pair returns a scaled copy of the
    output to the input node; normalizing so the DC loop transmission is
    ``T = loop_gain`` gives

        H_cl(s) = H(s) / (1 + T * H(s)/H(0))

    which relocates the open-loop real poles onto a complex pair — the
    Cherry-Hooper bandwidth-extension mechanism.  By itself this costs
    DC gain (divided by ``1 + T``); the paper's designs spend that
    surplus on larger load resistance, so ``restore_gain=True`` (the
    default) rescales the closed loop back to the open-loop DC gain,
    modeling the re-sized load.  The net effect — and the reason the
    technique exists — is more bandwidth at *equal* DC gain, which the
    ablation bench verifies.
    """
    if loop_gain < 0:
        raise ValueError(f"loop_gain must be >= 0, got {loop_gain}")
    if loop_gain == 0:
        return open_loop
    a0 = open_loop.dc_gain()
    if a0 == 0:
        raise ValueError("open-loop DC gain is zero; feedback undefined")
    closed = open_loop.feedback(RationalTF.constant(loop_gain / a0))
    if restore_gain:
        closed = closed.scaled(1.0 + loop_gain)
    return closed


@dataclasses.dataclass
class CmlBuffer:
    """A differential CML buffer stage.

    Parameters
    ----------
    input_pair:
        The NMOS differential-pair device (per side), biased at half the
        tail current.
    load:
        The output load element (active inductor for the paper's buffer;
        resistive or spiral for ablations).
    tail_current:
        Total tail current of the pair in amps.
    c_load_ext:
        External capacitance on the output node (next stage's input) in
        farads.
    source_resistance:
        Driving-point resistance at the input in ohms (50 for the pad
        interface, the previous stage's load resistance internally).
    feedback_loop_gain:
        DC loop gain T of the active-feedback pair (0 disables).
    neg_miller:
        The cross-coupled varactor pair (``None`` disables the negative
        Miller capacitance).
    """

    input_pair: Mosfet
    load: LoadElement
    tail_current: float
    c_load_ext: float = 0.0
    source_resistance: float = 50.0
    feedback_loop_gain: float = 0.0
    neg_miller: Optional[MosVaractor] = None
    name: str = "cml-buffer"

    def __post_init__(self) -> None:
        if self.tail_current <= 0:
            raise ValueError(
                f"tail_current must be positive, got {self.tail_current}"
            )
        if self.c_load_ext < 0:
            raise ValueError(f"c_load_ext must be >= 0, got {self.c_load_ext}")
        if self.source_resistance <= 0:
            raise ValueError(
                f"source_resistance must be positive, got {self.source_resistance}"
            )
        if self.feedback_loop_gain < 0:
            raise ValueError(
                f"feedback_loop_gain must be >= 0, got {self.feedback_loop_gain}"
            )

    # -- operating point ----------------------------------------------------
    @property
    def dc_gain(self) -> float:
        """Small-signal DC gain gm * R_load."""
        return self.input_pair.gm * self.load.r_dc

    @property
    def output_swing(self) -> float:
        """Differential output amplitude I_tail * R_load (half of pp).

        A fully switched CML pair steers all of I_tail through one load:
        each output moves by I*R, so the differential signal swings
        +-I*R — a 2 mA / 125 ohm stage gives +-250 mV differential
        (500 mV pp differential, 250 mV pp per leg).
        """
        return self.tail_current * self.load.r_dc

    @property
    def node_capacitance(self) -> float:
        """Total output-node capacitance: self drain + external load."""
        # Drain capacitance of the pair: Cgd (Miller side handled at the
        # *input*; at the output Cgd appears roughly 1:1) plus junction,
        # approximated as another Cgd-worth.
        c_self = 2.0 * self.input_pair.cgd
        return c_self + self.c_load_ext

    @property
    def input_capacitance(self) -> float:
        """Input-node capacitance including (possibly neutralized) Miller.

        Without neutralization the gate sees ``Cgs + Cgd (1 + |A|)``;
        the cross-coupled varactors subtract ``C_var (|A| - 1)``.
        """
        c_neutralize = (0.0 if self.neg_miller is None
                        else self.neg_miller.capacitance_at_zero_bias())
        miller = neutralized_input_capacitance(
            self.input_pair.cgd, c_neutralize, self.dc_gain
        )
        return self.input_pair.cgs + miller

    @property
    def input_pole_hz(self) -> float:
        """Input pole 1/(2 pi R_source C_in)."""
        return 1.0 / (2.0 * math.pi * self.source_resistance
                      * self.input_capacitance)

    # -- transfer functions ---------------------------------------------------
    def output_network_tf(self) -> RationalTF:
        """gm into the loaded output node: gm * (Z_load || C_node)."""
        z_node = node_impedance(self.load, self.node_capacitance)
        return z_node.scaled(self.input_pair.gm)

    def small_signal_tf(self) -> RationalTF:
        """Full stage response: input pole, output network, feedback."""
        tf = first_order_lowpass(self.input_pole_hz).cascade(
            self.output_network_tf()
        )
        return apply_active_feedback(tf, self.feedback_loop_gain)

    def bandwidth_3db(self) -> float:
        """-3 dB bandwidth of the stage in Hz."""
        return self.small_signal_tf().bandwidth_3db()

    def peaking_db(self) -> float:
        """Frequency-response peaking above DC in dB."""
        return self.small_signal_tf().peaking_db()

    # -- simulation -----------------------------------------------------------
    def to_block(self) -> WienerHammersteinBlock:
        """Behavioral simulation block (limiting included).

        The linearized response of the block equals
        :meth:`small_signal_tf`; large inputs limit at
        :attr:`output_swing` through the tanh characteristic.
        """
        full = self.small_signal_tf()
        a0 = full.dc_gain()
        shape = full.scaled(1.0 / a0)  # unity-DC dynamic part
        limiter = TanhLimiter(gain=a0, limit=self.output_swing)
        return WienerHammersteinBlock(nonlinearity=limiter, pre=None,
                                      post=shape, name=self.name)

    # -- design variants ----------------------------------------------------
    def with_load(self, load: LoadElement) -> "CmlBuffer":
        """Same stage with a different load element (ablations)."""
        return dataclasses.replace(self, load=load)

    def without_feedback(self) -> "CmlBuffer":
        """Active feedback disabled (ablation)."""
        return dataclasses.replace(self, feedback_loop_gain=0.0)

    def without_neg_miller(self) -> "CmlBuffer":
        """Negative Miller capacitance disabled (ablation)."""
        return dataclasses.replace(self, neg_miller=None)

    @property
    def supply_current(self) -> float:
        """Static current draw: tail current (+ feedback pair share).

        The active-feedback pair M5/M6 is a small fraction of the main
        pair (it only needs gm_f = T/R_load), budgeted at 10 %.
        """
        feedback_share = 0.10 if self.feedback_loop_gain > 0 else 0.0
        return self.tail_current * (1.0 + feedback_share)
