"""Power and area bookkeeping (paper Table I and Fig 13).

The paper's power number is static-current bookkeeping — every CML cell
burns its tail current continuously, so total power is
``VDD * sum(tail currents)`` = 70 mW at 1.8 V (~39 mA).  Area is layout
bookkeeping: input interface 0.02 mm^2, output interface 0.008 mm^2,
core total 0.028 mm^2 "almost equal to an on-chip spiral inductor".

This module is the ledger those numbers are assembled on: blocks
register (name, current, area) entries and the budget reports totals,
per-block breakdowns, and the comparison against a spiral-inductor
variant for the 80 % area-reduction claim.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List

__all__ = ["BudgetEntry", "PowerAreaBudget", "MM2"]

#: One square millimetre in square metres (areas in Table I are mm^2).
MM2 = 1e-6


@dataclasses.dataclass(frozen=True)
class BudgetEntry:
    """One block's contribution to the power/area budget."""

    name: str
    current_a: float
    area_m2: float

    def __post_init__(self) -> None:
        if self.current_a < 0:
            raise ValueError(f"current must be >= 0, got {self.current_a}")
        if self.area_m2 < 0:
            raise ValueError(f"area must be >= 0, got {self.area_m2}")

    def power_w(self, vdd: float) -> float:
        """Static power of this block at a given supply."""
        if vdd <= 0:
            raise ValueError(f"vdd must be positive, got {vdd}")
        return self.current_a * vdd


class PowerAreaBudget:
    """A ledger of block contributions.

    Usage::

        budget = PowerAreaBudget(vdd=1.8)
        budget.add("equalizer", current_a=4.5e-3, area_m2=0.004 * MM2)
        ...
        budget.total_power_w()   # ~0.070
    """

    def __init__(self, vdd: float = 1.8):
        if vdd <= 0:
            raise ValueError(f"vdd must be positive, got {vdd}")
        self.vdd = vdd
        self._entries: List[BudgetEntry] = []

    def add(self, name: str, current_a: float, area_m2: float) -> None:
        """Register one block's static current and layout area."""
        if any(entry.name == name for entry in self._entries):
            raise ValueError(f"duplicate budget entry: {name!r}")
        self._entries.append(BudgetEntry(name, current_a, area_m2))

    def extend(self, entries: Iterable[BudgetEntry]) -> None:
        """Register several entries at once."""
        for entry in entries:
            self.add(entry.name, entry.current_a, entry.area_m2)

    @property
    def entries(self) -> List[BudgetEntry]:
        """The registered entries (copy)."""
        return list(self._entries)

    def total_current_a(self) -> float:
        """Sum of all static currents."""
        return sum(entry.current_a for entry in self._entries)

    def total_power_w(self) -> float:
        """Total static power VDD * sum(I)."""
        return self.total_current_a() * self.vdd

    def total_area_m2(self) -> float:
        """Total layout area."""
        return sum(entry.area_m2 for entry in self._entries)

    def total_area_mm2(self) -> float:
        """Total layout area in mm^2 (Table I units)."""
        return self.total_area_m2() / MM2

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-block power (mW) and area (mm^2) — the Fig 13 view."""
        return {
            entry.name: {
                "current_ma": entry.current_a * 1e3,
                "power_mw": entry.power_w(self.vdd) * 1e3,
                "area_mm2": entry.area_m2 / MM2,
            }
            for entry in self._entries
        }

    def merged(self, other: "PowerAreaBudget",
               prefix: str = "") -> "PowerAreaBudget":
        """Combine two budgets (e.g. input + output interface)."""
        if other.vdd != self.vdd:
            raise ValueError(
                f"cannot merge budgets at different VDD: "
                f"{self.vdd} vs {other.vdd}"
            )
        combined = PowerAreaBudget(vdd=self.vdd)
        combined.extend(self._entries)
        for entry in other.entries:
            combined.add(prefix + entry.name, entry.current_a, entry.area_m2)
        return combined

    def area_reduction_vs(self, baseline: "PowerAreaBudget") -> float:
        """Fractional area saving against a baseline budget.

        The paper's claim "these techniques can reduce 80 % of the
        circuit area compared to the circuit area with on-chip
        inductors" is this quantity against the spiral-inductor variant.
        """
        base = baseline.total_area_m2()
        if base <= 0:
            raise ValueError("baseline budget has zero area")
        return 1.0 - self.total_area_m2() / base
