"""The limiting amplifier (paper Fig 2 / Fig 8).

"The limiting amplifier is fully differential ... composed of a CML
input buffer, four gain stage amplifiers and one output buffer.  The
four gain stage amplifiers are self-biased with a feedback network for
DC offset canceling."

The composite delivers the paper's headline receiver numbers: ~40 dB
differential DC gain, ~250 mV output swing for clock-data recovery, and
4 mV input sensitivity.  Each stage limits individually (a cascade of
tanh cells), which is what makes a limiting amplifier different from a
linear one: once any stage saturates, downstream stages square the
signal up rather than distorting it further.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Sequence

from ..lti.blocks import Pipeline
from ..lti.transfer_function import RationalTF
from ..signals.waveform import Waveform
from .cml_buffer import CmlBuffer
from .gain_stage import GainStage
from .offset_cancellation import OffsetCancellationNetwork

__all__ = ["LimitingAmplifier"]


@dataclasses.dataclass
class LimitingAmplifier:
    """Input buffer + four gain stages + output buffer + offset loop.

    Parameters
    ----------
    input_buffer, output_buffer:
        The CML buffers bracketing the gain chain.
    gain_stages:
        The cascade of gain cells (the paper uses four).
    offset_network:
        The passive offset-cancellation feedback network.
    input_offset_voltage:
        The input-referred mismatch offset the loop must fight (zero by
        default; tests/benches set a few mV to model process mismatch).
    """

    input_buffer: CmlBuffer
    gain_stages: Sequence[GainStage]
    output_buffer: CmlBuffer
    offset_network: OffsetCancellationNetwork = dataclasses.field(
        default_factory=OffsetCancellationNetwork
    )
    input_offset_voltage: float = 0.0
    name: str = "limiting-amplifier"

    def __post_init__(self) -> None:
        if not self.gain_stages:
            raise ValueError("limiting amplifier needs at least one gain stage")

    # -- small-signal metrics -----------------------------------------------
    def stage_chain(self) -> List:
        """All stages in order: input buffer, gain cells, output buffer."""
        return ([self.input_buffer] + list(self.gain_stages)
                + [self.output_buffer])

    def small_signal_tf(self) -> RationalTF:
        """Cascade transfer function (offset loop excluded — its corner
        is ~kHz, invisible at data rates)."""
        tf = RationalTF.constant(1.0)
        for stage in self.stage_chain():
            tf = tf.cascade(stage.small_signal_tf())
        return tf

    def dc_gain(self) -> float:
        """Small-signal DC gain (linear)."""
        return self.small_signal_tf().dc_gain()

    def dc_gain_db(self) -> float:
        """Small-signal DC gain in dB — the paper's 40 dB figure."""
        return 20.0 * math.log10(abs(self.dc_gain()))

    def bandwidth_3db(self) -> float:
        """-3 dB bandwidth of the full chain — the paper's 9.5 GHz."""
        return self.small_signal_tf().bandwidth_3db()

    def gain_bandwidth_product(self) -> float:
        """A0 * BW in Hz (the LA figure of merit)."""
        return abs(self.dc_gain()) * self.bandwidth_3db()

    @property
    def output_swing(self) -> float:
        """Limiting output amplitude (differential) of the final buffer.

        The paper: "the limiting amplifier output swing is around 250 mV
        for clock data recovery circuit".
        """
        return self.output_buffer.output_swing

    # -- offset behaviour ------------------------------------------------------
    def residual_output_offset(self) -> float:
        """Output DC offset with the cancellation loop closed."""
        return self.offset_network.residual_output_offset(
            self.input_offset_voltage, abs(self.dc_gain())
        )

    def uncancelled_output_offset(self) -> float:
        """What the output offset would be without the loop (saturation!).

        With 40 dB of gain even 5 mV of mismatch wants to be 0.5 V at
        the output — more than the entire swing, which is the failure
        the paper describes ("output signal saturation and duty-cycle
        distortion").
        """
        return self.input_offset_voltage * abs(self.dc_gain())

    def highpass_corner_hz(self) -> float:
        """Low-frequency cut-in created by the offset loop."""
        return self.offset_network.highpass_corner_hz(abs(self.dc_gain()))

    # -- simulation --------------------------------------------------------
    def to_pipeline(self) -> Pipeline:
        """The behavioral stage chain as a pipeline of limiting blocks."""
        return Pipeline([stage.to_block() for stage in self.stage_chain()],
                        name=self.name)

    def process(self, wave: Waveform, include_offset: bool = True) -> Waveform:
        """Amplify a waveform through the limiting chain.

        The offset loop is handled analytically (its time constant is
        ~1e6 x the simulation window): the residual input-referred
        offset is added before the chain, and the loop's DC correction
        is applied as the steady-state operating point.
        """
        if include_offset and self.input_offset_voltage != 0.0:
            a0 = abs(self.dc_gain())
            loop = a0 * self.offset_network.sense_gain
            # Residual input-referred offset after loop settling.
            residual_in = self.input_offset_voltage / (1.0 + loop)
            wave = wave + residual_in
        return self.to_pipeline().process(wave)

    # -- variants -----------------------------------------------------------
    def with_offset(self, input_offset_voltage: float) -> "LimitingAmplifier":
        """Same amplifier with a given input-referred mismatch offset."""
        return dataclasses.replace(
            self, input_offset_voltage=input_offset_voltage
        )

    def without_feedback(self) -> "LimitingAmplifier":
        """Ablation: active feedback off in every internal stage."""
        return dataclasses.replace(
            self,
            input_buffer=self.input_buffer.without_feedback(),
            gain_stages=[s.without_feedback() for s in self.gain_stages],
            output_buffer=self.output_buffer.without_feedback(),
        )

    def without_neg_miller(self) -> "LimitingAmplifier":
        """Ablation: negative Miller capacitance off everywhere."""
        return dataclasses.replace(
            self,
            input_buffer=self.input_buffer.without_neg_miller(),
            gain_stages=[s.without_neg_miller() for s in self.gain_stages],
            output_buffer=self.output_buffer.without_neg_miller(),
        )

    @property
    def supply_current(self) -> float:
        """Static current of the whole chain."""
        return sum(stage.supply_current for stage in self.stage_chain())
