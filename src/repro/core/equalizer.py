"""Cherry-Hooper input equalizer with tunable zero (paper Fig 4, Fig 5).

The equalizer is a two-stage Cherry-Hooper amplifier:

* **Stage 1** — a transconductance stage whose differential pair is
  *degenerated* by an NMOS triode resistor and capacitor.  Degeneration
  creates the tunable high-pass zero: the small-signal transconductance

      Gm1(s) = gm (1 + s Rd Cd) / (1 + gm Rd/2 + s Rd Cd)

  is flat at gm/(1+gm Rd/2) at DC and rises to gm above the zero — a
  boost of (1 + gm Rd/2) that compensates the channel's high-frequency
  loss.  The gate voltage V1 of the triode NMOS sets Rd and therefore
  both the boost and the zero frequency, which is exactly the knob the
  paper sweeps in Fig 5 ("the equalizer gain from DC to 6 GHz can be
  adjusted by the NMOS gate voltage").

* **Stage 2** — a trans-impedance stage closed by an *active feedback*
  loop through high-bandwidth current buffers M1/M2.  Without the
  buffers (classic resistive Cherry-Hooper feedback) the feedback
  network loads the stages, costing gain and linearity; with them the
  loop is unloaded — the gain and linearity improvement of Fig 5(b)
  over 5(a).

Matching the paper's Section III-A transfer function, the composite is a
second-order response with a tunable zero:

    Vout/Vin ~ (1 + s/wz) * A0 / ((1 + s/wp1)(1 + s/wp2))   (+ feedback)

The input is matched to 50 ohm through the TIA-style input whose
impedance is ~1/gm of the matching device.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..devices.mosfet import Mosfet
from ..devices.technology import Technology, TSMC180
from ..lti.blocks import TanhLimiter, WienerHammersteinBlock
from ..lti.transfer_function import RationalTF
from .cml_buffer import apply_active_feedback
from .loads import ResistiveLoad, node_impedance

__all__ = ["TriodeDegeneration", "CherryHooperEqualizer"]


@dataclasses.dataclass(frozen=True)
class TriodeDegeneration:
    """The NMOS-triode degeneration network (the V1 knob).

    An NMOS biased in deep triode presents a channel resistance

        Rd(V1) = 1 / (un Cox (W/L) (V1 - Vth))

    "a degeneration resistor and a degeneration capacitance are
    implemented with NMOS transistor to achieve a small size and a wide
    range of control" — Rd spans roughly 100-600 ohm over V1 in
    0.55-1.2 V with the default geometry.
    """

    width: float = 10e-6
    length: float = 0.18e-6
    capacitance: float = 200e-15
    tech: Technology = TSMC180

    def __post_init__(self) -> None:
        if self.width <= 0 or self.length <= 0:
            raise ValueError("degeneration device dimensions must be positive")
        if self.capacitance <= 0:
            raise ValueError(
                f"degeneration capacitance must be positive, got {self.capacitance}"
            )

    def resistance(self, control_voltage: float) -> float:
        """Triode channel resistance at gate voltage ``control_voltage``."""
        overdrive = control_voltage - self.tech.vth_n
        if overdrive <= 0.02:
            raise ValueError(
                f"control voltage {control_voltage} V leaves the triode "
                f"device below ~20 mV of overdrive (Vth = {self.tech.vth_n} V)"
            )
        k = self.tech.u_n_cox * self.width / self.length
        return 1.0 / (k * overdrive)

    def control_range(self) -> tuple[float, float]:
        """Usable V1 range (just above threshold to the 1.8 V rail)."""
        return (self.tech.vth_n + 0.1, self.tech.vdd)


@dataclasses.dataclass
class CherryHooperEqualizer:
    """The paper's input equalizer.

    Parameters
    ----------
    input_pair:
        Stage-1 differential-pair device (per side).
    degeneration:
        The triode RC network creating the tunable zero.
    control_voltage:
        The V1 gate voltage (the tuning knob of Fig 5).
    r_stage1, r_stage2:
        Load resistances of the two stages.
    c_stage1, c_stage2:
        Node capacitances of the two stages.
    gm_stage2:
        Stage-2 transconductance in siemens.
    feedback_loop_gain:
        DC loop gain of the active-feedback path.
    with_current_buffers:
        True models the active feedback through current buffers M1/M2
        (Fig 5(b)); False models classic loaded resistive feedback
        (Fig 5(a)): the loop still shapes the response but the DC gain
        is not recovered and the limiting headroom is reduced.
    tail_current:
        Stage tail current (power bookkeeping and limiting level).
    """

    input_pair: Mosfet
    degeneration: TriodeDegeneration = dataclasses.field(
        default_factory=TriodeDegeneration
    )
    control_voltage: float = 0.7
    r_stage1: float = 300.0
    r_stage2: float = 250.0
    c_stage1: float = 60e-15
    c_stage2: float = 80e-15
    gm_stage2: float = 8e-3
    feedback_loop_gain: float = 1.0
    with_current_buffers: bool = True
    tail_current: float = 1.5e-3
    match_gm: float = 20e-3
    name: str = "equalizer"

    def __post_init__(self) -> None:
        for field in ("r_stage1", "r_stage2", "c_stage1", "c_stage2",
                      "gm_stage2", "tail_current", "match_gm"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")
        if self.feedback_loop_gain < 0:
            raise ValueError("feedback_loop_gain must be >= 0")
        # Validate the control voltage eagerly (fail at build, not in use).
        self.degeneration.resistance(self.control_voltage)

    # -- tuning-dependent small-signal quantities -----------------------------
    @property
    def degeneration_resistance(self) -> float:
        """Rd at the current control voltage."""
        return self.degeneration.resistance(self.control_voltage)

    @property
    def boost_ratio(self) -> float:
        """High-frequency/DC transconductance ratio 1 + gm Rd / 2."""
        return 1.0 + self.input_pair.gm * self.degeneration_resistance / 2.0

    @property
    def boost_db(self) -> float:
        """The equalization boost in dB."""
        return 20.0 * math.log10(self.boost_ratio)

    @property
    def zero_hz(self) -> float:
        """The tunable zero 1/(2 pi Rd Cd)."""
        rd = self.degeneration_resistance
        return 1.0 / (2.0 * math.pi * rd * self.degeneration.capacitance)

    def gm1_tf(self) -> RationalTF:
        """Degenerated stage-1 transconductance Gm1(s) (in siemens)."""
        gm = self.input_pair.gm
        rd = self.degeneration_resistance
        cd = self.degeneration.capacitance
        num = np.array([gm * rd * cd, gm])
        den = np.array([rd * cd, 1.0 + gm * rd / 2.0])
        return RationalTF(num, den)

    def input_impedance(self) -> float:
        """Input resistance of the matching front end, ~1/gm_match.

        The Cherry-Hooper TIA input presents a low, broadband, resistive
        impedance — the paper's "50 ohm input impedance matching".
        """
        return 1.0 / self.match_gm

    def input_return_loss_db(self, z0: float = 50.0) -> float:
        """Return loss of the input match against ``z0``."""
        zin = self.input_impedance()
        gamma = abs((zin - z0) / (zin + z0))
        if gamma == 0:
            return math.inf
        return -20.0 * math.log10(gamma)

    # -- composite response ----------------------------------------------------
    def small_signal_tf(self) -> RationalTF:
        """Full equalizer transfer function (V/V)."""
        z1 = node_impedance(ResistiveLoad(self.r_stage1), self.c_stage1)
        z2 = node_impedance(ResistiveLoad(self.r_stage2), self.c_stage2)
        open_loop = (self.gm1_tf().cascade(z1)
                     .scaled(self.gm_stage2).cascade(z2))
        return apply_active_feedback(open_loop, self.feedback_loop_gain,
                                     restore_gain=self.with_current_buffers)

    def dc_gain(self) -> float:
        """DC voltage gain."""
        return self.small_signal_tf().dc_gain()

    def dc_gain_db(self) -> float:
        """DC voltage gain in dB."""
        return 20.0 * math.log10(abs(self.dc_gain()))

    def gain_db(self, freq_hz: np.ndarray) -> np.ndarray:
        """Gain magnitude in dB over frequency — the Fig 5 y-axis."""
        return self.small_signal_tf().magnitude_db(freq_hz)

    # -- large-signal / linearity ----------------------------------------------
    @property
    def output_limit(self) -> float:
        """Limiting amplitude of the output stage.

        With current buffers the feedback linearizes the transfer and
        the usable headroom is the full I*R swing; without them the
        loaded feedback network clips earlier (modeled as the same
        swing shrunk by the loop-gain factor) — this is the "gain and
        the linearity are also enhanced" comparison of Fig 5(b).
        """
        swing = self.tail_current * self.r_stage2
        if self.with_current_buffers:
            return swing
        return swing / (1.0 + self.feedback_loop_gain)

    def gain_compression_db(self, input_amplitude: float) -> float:
        """Large-signal gain drop (dB) at a given input amplitude.

        Computed from the tanh characteristic: the describing-function
        gain ``limit*tanh(A0 x / limit)/x`` versus the small-signal A0.
        """
        if input_amplitude <= 0:
            raise ValueError(
                f"input_amplitude must be positive, got {input_amplitude}"
            )
        a0 = abs(self.dc_gain())
        limit = self.output_limit
        effective = limit * math.tanh(a0 * input_amplitude / limit)
        return -20.0 * math.log10(effective / (a0 * input_amplitude))

    def input_p1db(self) -> float:
        """Input amplitude at 1 dB gain compression (bisection search)."""
        lo, hi = 1e-6, 10.0
        for _ in range(80):
            mid = math.sqrt(lo * hi)
            if self.gain_compression_db(mid) > 1.0:
                hi = mid
            else:
                lo = mid
        return math.sqrt(lo * hi)

    def output_p1db(self) -> float:
        """Output amplitude at the 1 dB compression point.

        The linearity metric Fig 5(b) improves: the current buffers let
        the equalizer deliver a larger undistorted output (the loaded
        resistive-feedback variant clips at roughly half the level).
        """
        x = self.input_p1db()
        a0 = abs(self.dc_gain())
        limit = self.output_limit
        return limit * math.tanh(a0 * x / limit)

    # -- simulation ---------------------------------------------------------
    def to_block(self) -> WienerHammersteinBlock:
        """Behavioral block: dynamics + limiting at the output stage."""
        tf = self.small_signal_tf()
        a0 = tf.dc_gain()
        shape = tf.scaled(1.0 / a0)
        limiter = TanhLimiter(gain=a0, limit=self.output_limit)
        return WienerHammersteinBlock(nonlinearity=limiter, pre=None,
                                      post=shape, name=self.name)

    # -- variants ------------------------------------------------------------
    def tuned(self, control_voltage: float) -> "CherryHooperEqualizer":
        """The same equalizer at a different V1 (the Fig 5 sweep)."""
        return dataclasses.replace(self, control_voltage=control_voltage)

    def without_current_buffers(self) -> "CherryHooperEqualizer":
        """The Fig 5(a) variant: resistive (loaded) feedback."""
        return dataclasses.replace(self, with_current_buffers=False)

    @property
    def supply_current(self) -> float:
        """Static current: two stages plus the feedback buffers."""
        buffers = 0.3e-3 if self.with_current_buffers else 0.0
        return 2.0 * self.tail_current + buffers
