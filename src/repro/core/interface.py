"""Full I/O interface assembly (paper Figs 2 and 3, Table I).

This module wires the blocks of Sections II-III into the two interfaces
the paper reports on, with default device sizes calibrated so the
headline numbers land where Table I puts them:

* input interface (equalizer + limiting amplifier): ~40 dB differential
  DC gain, ~9.5 GHz bandwidth, 250 mV output swing;
* output interface (level shift + voltage peaking + tapered driver):
  ~8 mA final-stage drive into 50 ohm;
* total power ~70 mW at 1.8 V, input area 0.02 mm^2, output 0.008 mm^2.

``build_input_interface()`` / ``build_output_interface()`` construct the
paper's design; the classes accept any block mix for ablations.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from ..channel.backplane import BackplaneChannel
from ..devices.active_inductor import ActiveInductor
from ..devices.mosfet import nmos, pmos
from ..devices.varactor import MosVaractor
from ..lti.blocks import Pipeline
from ..lti.transfer_function import RationalTF
from ..signals.waveform import Waveform
from .bandgap import BetaMultiplierReference
from .cml_buffer import CmlBuffer
from .equalizer import CherryHooperEqualizer
from .gain_stage import GainStage
from .limiting_amplifier import LimitingAmplifier
from .loads import ActiveInductorLoad, ResistiveLoad
from .output_driver import LevelShifter, TaperedDriver
from .power_area import MM2, PowerAreaBudget
from .voltage_peaking import (
    CmlDelayBuffer,
    Differentiator,
    VoltagePeakingCircuit,
)

__all__ = [
    "InputInterface",
    "OutputInterface",
    "CmlIoInterface",
    "build_input_interface",
    "build_output_interface",
    "build_io_interface",
]

#: Per-block layout areas in m^2, from the paper's floorplan (Fig 13):
#: input interface 0.02 mm^2, output interface 0.008 mm^2.
_AREA = {
    "equalizer": 0.004 * MM2,
    "la-input-buffer": 0.002 * MM2,
    "gain-stage": 0.0025 * MM2,
    "la-output-buffer": 0.002 * MM2,
    "input-bias": 0.002 * MM2,
    "level-shifter": 0.0005 * MM2,
    "voltage-peaking": 0.0015 * MM2,
    "driver": 0.005 * MM2,
    "output-bias": 0.001 * MM2,
}


@dataclasses.dataclass
class InputInterface:
    """Equalizer + limiting amplifier (paper Fig 2)."""

    equalizer: CherryHooperEqualizer
    limiting_amplifier: LimitingAmplifier
    bandgap: BetaMultiplierReference = dataclasses.field(
        default_factory=BetaMultiplierReference
    )
    equalizer_enabled: bool = True
    name: str = "input-interface"

    # -- signal path ---------------------------------------------------------
    def to_pipeline(self) -> Pipeline:
        """The behavioral receive path."""
        stages = []
        if self.equalizer_enabled:
            stages.append(self.equalizer.to_block())
        stages.extend(self.limiting_amplifier.to_pipeline().stages())
        return Pipeline(stages, name=self.name)

    def process(self, wave: Waveform) -> Waveform:
        """Receive a waveform: equalize (if enabled) then limit-amplify."""
        if self.equalizer_enabled:
            wave = self.equalizer.to_block().process(wave)
        return self.limiting_amplifier.process(wave)

    # -- metrics ------------------------------------------------------------
    def small_signal_tf(self) -> RationalTF:
        """End-to-end small-signal response."""
        tf = self.limiting_amplifier.small_signal_tf()
        if self.equalizer_enabled:
            tf = self.equalizer.small_signal_tf().cascade(tf)
        return tf

    def dc_gain_db(self) -> float:
        """Differential DC gain in dB (Table I: 40 dB)."""
        return 20.0 * math.log10(abs(self.small_signal_tf().dc_gain()))

    def bandwidth_3db(self) -> float:
        """-3 dB bandwidth in Hz (Table I: 9.5 GHz)."""
        return self.small_signal_tf().bandwidth_3db()

    @property
    def output_swing(self) -> float:
        """Limiting output amplitude for the CDR (paper: ~250 mV)."""
        return self.limiting_amplifier.output_swing

    # -- variants ------------------------------------------------------------
    def without_equalizer(self) -> "InputInterface":
        """The Fig 15(a) ablation: bypass the equalizer."""
        return dataclasses.replace(self, equalizer_enabled=False)

    # -- budget ---------------------------------------------------------------
    def budget(self, vdd: float = 1.8) -> PowerAreaBudget:
        """Power/area ledger of the input interface."""
        budget = PowerAreaBudget(vdd=vdd)
        if self.equalizer_enabled:
            budget.add("equalizer", self.equalizer.supply_current,
                       _AREA["equalizer"])
        la = self.limiting_amplifier
        budget.add("la-input-buffer", la.input_buffer.supply_current,
                   _AREA["la-input-buffer"])
        for index, stage in enumerate(la.gain_stages):
            budget.add(f"gain-stage-{index + 1}", stage.supply_current,
                       _AREA["gain-stage"])
        budget.add("la-output-buffer", la.output_buffer.supply_current,
                   _AREA["la-output-buffer"])
        budget.add("input-bias", self.bandgap.supply_current,
                   _AREA["input-bias"])
        return budget


@dataclasses.dataclass
class OutputInterface:
    """Level shifter + voltage peaking + tapered driver (paper Fig 3).

    The peaking circuit sits between the first driver stage and the
    rest of the taper, per Fig 10 ("Vin from CML output stage 1 / Vout
    to CML output stage 2").
    """

    level_shifter: LevelShifter
    driver: TaperedDriver
    peaking: VoltagePeakingCircuit
    bandgap: BetaMultiplierReference = dataclasses.field(
        default_factory=BetaMultiplierReference
    )
    name: str = "output-interface"

    def to_pipeline(self) -> Pipeline:
        """Level shift -> tapered driver -> peaking summed at the line.

        The peaking circuit taps the driver signal (Fig 10: "Vin from
        CML output stage 1") and its differentiator output sums in the
        *current domain* at the 50-ohm line node.  Voltage-domain
        injection between limiting stages would be erased by the
        downstream tanh characteristic; summing the differentiator's
        drive current at the output node — where the spike rides on top
        of the settled level — is what the measured Fig 16(b) waveform
        shows (edges overshooting the settled swing).
        """
        stages = [self.level_shifter]
        stages.extend(self.driver.to_pipeline().stages())
        stages.append(self.peaking)
        return Pipeline(stages, name=self.name)

    def process(self, wave: Waveform) -> Waveform:
        """Transmit a waveform onto the line."""
        return self.to_pipeline().process(wave)

    # -- metrics -------------------------------------------------------------
    @property
    def output_current(self) -> float:
        """Final-stage drive current (paper: ~8 mA)."""
        return self.driver.output_current

    @property
    def output_swing_pp(self) -> float:
        """Single-ended output swing into the line."""
        return self.driver.output_swing_pp

    def small_signal_tf(self) -> RationalTF:
        """Linearized transmit response (peaking branch excluded)."""
        return self.level_shifter.transfer_function().cascade(
            self.driver.small_signal_tf()
        )

    def bandwidth_3db(self) -> float:
        """-3 dB bandwidth of the transmit path."""
        return self.small_signal_tf().bandwidth_3db()

    # -- variants --------------------------------------------------------------
    def without_peaking(self) -> "OutputInterface":
        """The Fig 16(a) ablation: voltage peaking disabled."""
        return dataclasses.replace(self, peaking=self.peaking.disabled())

    # -- budget ----------------------------------------------------------------
    def budget(self, vdd: float = 1.8) -> PowerAreaBudget:
        """Power/area ledger of the output interface."""
        budget = PowerAreaBudget(vdd=vdd)
        budget.add("level-shifter", self.level_shifter.supply_current,
                   _AREA["level-shifter"])
        budget.add("voltage-peaking", self.peaking.supply_current,
                   _AREA["voltage-peaking"])
        budget.add("driver", self.driver.supply_current, _AREA["driver"])
        budget.add("output-bias", self.bandgap.supply_current,
                   _AREA["output-bias"])
        return budget


@dataclasses.dataclass
class CmlIoInterface:
    """The full link: output interface -> backplane -> input interface.

    This is the configuration of the paper's Fig 14 eye diagrams (with a
    zero-length channel) and the Fig 15/16 channel experiments.
    """

    output_interface: OutputInterface
    input_interface: InputInterface
    channel: Optional[BackplaneChannel] = None
    name: str = "cml-io-interface"

    def process(self, wave: Waveform) -> Waveform:
        """Run a waveform through the complete link."""
        wave = self.output_interface.process(wave)
        if self.channel is not None:
            wave = self.channel.process(wave)
        return self.input_interface.process(wave)

    def receive_only(self, wave: Waveform) -> Waveform:
        """Receive path alone (the Fig 14 configuration: pattern
        generator straight into the input interface)."""
        return self.input_interface.process(wave)

    def budget(self, vdd: float = 1.8) -> PowerAreaBudget:
        """Combined power/area ledger (Table I's 70 mW / 0.028 mm^2)."""
        return self.input_interface.budget(vdd).merged(
            self.output_interface.budget(vdd), prefix="tx-"
        )


# ---------------------------------------------------------------------------
# Default builders: the paper's design point.
# ---------------------------------------------------------------------------

def _default_varactor() -> MosVaractor:
    """The M7/M8 neutralization varactors."""
    return MosVaractor(width=4e-6, length=0.5e-6)


def build_input_interface(
    feedback_loop_gain: float = 1.2,
    gain_stage_resistance: float = 260.0,
    equalizer_control_voltage: float = 0.7,
    input_offset_voltage: float = 0.0,
) -> InputInterface:
    """The paper's input interface at its calibrated design point.

    Defaults give ~41 dB DC gain, ~9.6 GHz bandwidth and a 250 mV
    limiting output swing (paper: 40 dB, 9.5 GHz, 250 mV).
    """
    varactor = _default_varactor()
    equalizer = CherryHooperEqualizer(
        input_pair=nmos(20e-6, 0.18e-6, 1e-3),
        control_voltage=equalizer_control_voltage,
    )
    input_buffer = CmlBuffer(
        input_pair=nmos(20e-6, 0.18e-6, 1e-3),
        load=ActiveInductorLoad(
            ActiveInductor(pmos(40e-6, 0.18e-6, 1e-3), gate_resistance=1200.0)
        ),
        tail_current=2e-3,
        c_load_ext=54e-15,
        source_resistance=250.0,
        feedback_loop_gain=feedback_loop_gain,
        neg_miller=varactor,
        name="la-input-buffer",
    )
    gain_stages = [
        GainStage(
            input_pair=nmos(40e-6, 0.18e-6, 1.25e-3),
            load_resistance=gain_stage_resistance,
            tail_current=2.5e-3,
            c_load_ext=54e-15,
            source_resistance=gain_stage_resistance,
            feedback_loop_gain=feedback_loop_gain,
            neg_miller=varactor,
            name=f"gain-stage-{index + 1}",
        )
        for index in range(4)
    ]
    output_buffer = CmlBuffer(
        input_pair=nmos(40e-6, 0.18e-6, 2e-3),
        load=ResistiveLoad(62.5),
        tail_current=4e-3,
        c_load_ext=100e-15,
        source_resistance=gain_stage_resistance,
        feedback_loop_gain=feedback_loop_gain,
        neg_miller=varactor,
        name="la-output-buffer",
    )
    amplifier = LimitingAmplifier(
        input_buffer=input_buffer,
        gain_stages=gain_stages,
        output_buffer=output_buffer,
        input_offset_voltage=input_offset_voltage,
    )
    return InputInterface(equalizer=equalizer, limiting_amplifier=amplifier)


def build_output_interface(
    peaking_enabled: bool = True,
    spike_width_ui: float = 0.35,
    spike_current: float = 1.5e-3,
    bit_rate: float = 10e9,
    feedback_loop_gain: float = 1.0,
) -> OutputInterface:
    """The paper's output interface at its calibrated design point.

    The 2 mA first stage tapers 2x per stage to the paper's ~8 mA final
    driver; the peaking spike width defaults to 0.35 UI at 10 Gb/s with
    the +-20 % tail-current tuning of Fig 10 available via
    ``CmlDelayBuffer.tuned``.
    """
    varactor = _default_varactor()
    level_shifter = LevelShifter(follower=nmos(20e-6, 0.18e-6, 0.5e-3))
    first_stage = CmlBuffer(
        input_pair=nmos(20e-6, 0.18e-6, 1e-3),
        load=ActiveInductorLoad(
            ActiveInductor(pmos(60e-6, 0.18e-6, 1e-3), gate_resistance=700.0)
        ),
        tail_current=2e-3,
        c_load_ext=80e-15,
        source_resistance=100.0,
        feedback_loop_gain=feedback_loop_gain,
        neg_miller=varactor,
        name="driver-stage-1",
    )
    driver = TaperedDriver(first_stage=first_stage, taper_ratio=2.0,
                           n_stages=3, line_impedance=50.0,
                           double_terminated=True)
    # The differentiator drives the same terminated line node as the
    # final stage: spike height = I_diff * (Z0/2), referenced to the
    # driver's settled output amplitude.
    line_swing = driver.output_swing_pp
    delay = CmlDelayBuffer(nominal_delay=spike_width_ui / bit_rate,
                           tail_current_nominal=1.5e-3, tail_current=1.5e-3)
    differentiator = Differentiator(delay=delay, tail_current=spike_current,
                                    load_resistance=driver.effective_load_ohm,
                                    logic_amplitude=line_swing)
    peaking = VoltagePeakingCircuit(differentiator=differentiator,
                                    enabled=peaking_enabled)
    return OutputInterface(level_shifter=level_shifter, driver=driver,
                           peaking=peaking)


def build_io_interface(
    channel: Optional[BackplaneChannel] = None,
    peaking_enabled: bool = True,
    equalizer_enabled: bool = True,
) -> CmlIoInterface:
    """The complete link at the paper's design point."""
    input_interface = build_input_interface()
    if not equalizer_enabled:
        input_interface = input_interface.without_equalizer()
    output_interface = build_output_interface(peaking_enabled=peaking_enabled)
    return CmlIoInterface(output_interface=output_interface,
                          input_interface=input_interface,
                          channel=channel)
