"""Beta-multiplier voltage reference, BMVR (paper Fig 12).

"The beta multiplier voltage reference [3] is presented in this
high-speed I/O interface.  Simulated results indicate that the BMVR can
be tuned to within 10 mV of a desired value while maintaining a
temperature coefficient below 550 ppm/C and power supply sensitivity
under 26 mV/V.  BMVR circuit supplies the constant bias voltage for the
current source of all the circuit in this I/O interface."

The beta multiplier (Liu & Baker, the paper's ref [3]) forces two
mirrored branches to carry equal current while one diode device is K
times wider, which pins the current at

    I = 2 (1 - 1/sqrt(K))^2 / (beta R^2),      beta = un Cox W/L

and the reference voltage at

    V_ref = Vth + Vov1 = Vth + 2 (1 - 1/sqrt(K)) / (beta R)

Temperature behaviour: Vth falls (~-1 mV/K) while mobility degradation
raises Vov (~ +T^1.5); choosing the resistor's temperature coefficient
balances the two — the compensation mechanism this model reproduces,
hitting the paper's <550 ppm/C with the default parameters.  Supply
dependence enters through channel-length modulation of the mirrors.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Tuple

import numpy as np

from .._units import celsius_to_kelvin
from ..devices.technology import Technology, TSMC180

__all__ = ["BetaMultiplierReference"]


@dataclasses.dataclass
class BetaMultiplierReference:
    """The BMVR bias generator.

    Parameters
    ----------
    width, length:
        Geometry of the narrow diode device M1.
    mirror_ratio:
        The K factor (M2 is K x wider).
    resistance:
        The source-degeneration resistor at the nominal temperature.
    resistance_tc:
        Fractional temperature coefficient of the resistor (1/K); the
        default is chosen to compensate the Vth and mobility drifts.
    supply_sensitivity:
        dV_ref/dVDD from mirror channel-length modulation, in V/V.
        Default meets the paper's < 26 mV/V.
    trim_step_fraction:
        Resistance step of one trim LSB (the paper trims within 10 mV).
    tech:
        Process constants.
    """

    width: float = 20e-6
    length: float = 2e-6
    mirror_ratio: float = 4.0
    resistance: float = 1111.0
    resistance_tc: float = 1.5e-3
    supply_sensitivity: float = 0.020
    trim_step_fraction: float = 0.01
    tech: Technology = TSMC180

    def __post_init__(self) -> None:
        if self.width <= 0 or self.length <= 0:
            raise ValueError("device dimensions must be positive")
        if self.mirror_ratio <= 1.0:
            raise ValueError(
                f"mirror_ratio must exceed 1, got {self.mirror_ratio}"
            )
        if self.resistance <= 0:
            raise ValueError(f"resistance must be positive, got {self.resistance}")
        if self.supply_sensitivity < 0:
            raise ValueError("supply_sensitivity must be >= 0")
        if not 0 < self.trim_step_fraction < 0.2:
            raise ValueError(
                f"trim_step_fraction must be in (0, 0.2), got "
                f"{self.trim_step_fraction}"
            )

    # -- core equations ------------------------------------------------------
    def _beta(self, temperature_k: float) -> float:
        """Device beta un(T) Cox W/L."""
        return (self.tech.u_cox(True, temperature_k)
                * self.width / self.length)

    def _resistance_at(self, temperature_k: float) -> float:
        """Resistor value with its linear temperature coefficient."""
        dt = temperature_k - self.tech.t_nom
        return self.resistance * (1.0 + self.resistance_tc * dt)

    def bias_current(self, temperature_k: float | None = None) -> float:
        """The branch current I = 2 (1 - 1/sqrt(K))^2 / (beta R^2)."""
        t = self.tech.t_nom if temperature_k is None else temperature_k
        shape = (1.0 - 1.0 / math.sqrt(self.mirror_ratio)) ** 2
        return 2.0 * shape / (self._beta(t) * self._resistance_at(t) ** 2)

    def reference_voltage(self, temperature_k: float | None = None,
                          vdd: float | None = None) -> float:
        """V_ref = Vth(T) + Vov(T) + sensitivity * (VDD - nominal)."""
        t = self.tech.t_nom if temperature_k is None else temperature_k
        vth = self.tech.vth(True, t)
        vov = (2.0 * (1.0 - 1.0 / math.sqrt(self.mirror_ratio))
               / (self._beta(t) * self._resistance_at(t)))
        v_ref = vth + vov
        if vdd is not None:
            v_ref += self.supply_sensitivity * (vdd - self.tech.vdd)
        return v_ref

    # -- paper-quoted metrics ---------------------------------------------
    def temperature_coefficient_ppm(self, t_min_c: float = -40.0,
                                    t_max_c: float = 125.0) -> float:
        """Box-method TC in ppm/C over a temperature range.

        TC = (Vmax - Vmin) / (V_nom * (Tmax - Tmin)) * 1e6 — the metric
        the paper quotes as "below 550 ppm/C".
        """
        if t_max_c <= t_min_c:
            raise ValueError("t_max_c must exceed t_min_c")
        temps = np.linspace(celsius_to_kelvin(t_min_c),
                            celsius_to_kelvin(t_max_c), 81)
        volts = np.array([self.reference_voltage(t) for t in temps])
        v_nom = self.reference_voltage()
        return float((volts.max() - volts.min())
                     / (v_nom * (t_max_c - t_min_c)) * 1e6)

    def supply_sensitivity_mv_per_v(self, vdd_min: float = 1.6,
                                    vdd_max: float = 2.0) -> float:
        """Measured dV_ref/dVDD in mV/V (paper: under 26 mV/V)."""
        if vdd_max <= vdd_min:
            raise ValueError("vdd_max must exceed vdd_min")
        v_lo = self.reference_voltage(vdd=vdd_min)
        v_hi = self.reference_voltage(vdd=vdd_max)
        return abs(v_hi - v_lo) / (vdd_max - vdd_min) * 1e3

    # -- trimming -----------------------------------------------------------
    def trimmed(self, resistance_factor: float) -> "BetaMultiplierReference":
        """A trimmed copy with the resistor scaled."""
        if resistance_factor <= 0:
            raise ValueError(
                f"resistance_factor must be positive, got {resistance_factor}"
            )
        return dataclasses.replace(
            self, resistance=self.resistance * resistance_factor
        )

    def trim_codes(self, n_steps: int = 8) -> List["BetaMultiplierReference"]:
        """The available trim settings around nominal (+-n_steps LSBs).

        Ordered by increasing reference voltage (decreasing resistance:
        a smaller R raises the overdrive term).
        """
        if n_steps < 1:
            raise ValueError(f"n_steps must be >= 1, got {n_steps}")
        return [self.trimmed(1.0 + self.trim_step_fraction * code)
                for code in range(n_steps, -n_steps - 1, -1)]

    def trim_to(self, target_v: float,
                n_steps: int = 8) -> Tuple["BetaMultiplierReference", float]:
        """Pick the trim code closest to ``target_v``.

        Returns the trimmed reference and its residual error in volts;
        the paper claims the residual stays within 10 mV, which holds
        whenever the target is inside the trim range.
        """
        if target_v <= 0:
            raise ValueError(f"target must be positive, got {target_v}")
        candidates = self.trim_codes(n_steps)
        best = min(candidates,
                   key=lambda ref: abs(ref.reference_voltage() - target_v))
        error = best.reference_voltage() - target_v
        return best, error

    # -- downstream biasing -----------------------------------------------
    def tail_current_for(self, nominal_current: float,
                         temperature_k: float | None = None,
                         vdd: float | None = None) -> float:
        """Tail current a CML stage receives when biased from this BMVR.

        Tail sources *mirror* the BMVR branch current, so a stage's tail
        scales with ``I_bias(T)/I_bias(T_nom)`` plus a small mirror
        channel-length-modulation term in VDD.  The branch current is
        the beta-multiplier's mildly PTAT "constant-gm" current: the gm
        it imposes on a mirrored device is ``2 (1 - 1/sqrt(K)) / R``,
        i.e. set by the resistor alone — which is exactly what CML wants
        (constant gm => constant stage gain) and is the sense in which
        the paper's bias "can overcome the supply voltage and process
        variation".
        """
        if nominal_current <= 0:
            raise ValueError(
                f"nominal_current must be positive, got {nominal_current}"
            )
        ratio = self.bias_current(temperature_k) / self.bias_current()
        if vdd is not None:
            # Mirror output conductance: ~2 %/V of headroom change.
            ratio *= 1.0 + 0.02 * (vdd - self.tech.vdd)
        return nominal_current * ratio

    def mirrored_gm(self, width_ratio: float = 1.0) -> float:
        """gm imposed on a mirrored square-law device: 2(1-1/sqrt(K))/R.

        Temperature enters only through the resistor — the constant-gm
        property that stabilizes CML gain over PVT.
        """
        if width_ratio <= 0:
            raise ValueError(f"width_ratio must be positive, got {width_ratio}")
        return (2.0 * (1.0 - 1.0 / math.sqrt(self.mirror_ratio))
                / self.resistance * math.sqrt(width_ratio))

    @property
    def supply_current(self) -> float:
        """Two branches of bias current plus the start-up leg."""
        return 2.5 * self.bias_current()
