"""CML gain stage with pull-up resistors (paper Fig 9).

The limiting amplifier's gain cells differ from the basic buffer of
Fig 6 in one respect the paper calls out: they use **pull-up resistors**
"in order to get larger voltage gain" (a poly resistor has no 1/gm
ceiling), while keeping the same wide-band tricks — active feedback
through current buffers M3/M4 + differential pair M5/M6, and negative
Miller capacitance.  Optionally a small active inductor can be placed in
parallel for extra peaking (the composite load the paper's schematic
shows).

Implementation-wise this is a :class:`~repro.core.cml_buffer.CmlBuffer`
with a resistive (or composite) load and gain-stage defaults; it exists
as its own class because the limiting amplifier composes four of them
and the design benches sweep their parameters independently of the I/O
buffers.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..devices.mosfet import Mosfet
from ..devices.varactor import MosVaractor
from .cml_buffer import CmlBuffer
from .loads import ActiveInductorLoad, LoadElement, ParallelLoad, ResistiveLoad

__all__ = ["GainStage"]


@dataclasses.dataclass
class GainStage:
    """One CML gain cell of the limiting amplifier.

    Parameters
    ----------
    input_pair:
        The NMOS differential-pair device (per side).
    load_resistance:
        The pull-up resistor value.
    tail_current:
        Total tail current.
    c_load_ext:
        Capacitance presented by the next stage.
    source_resistance:
        Output resistance of the previous stage driving this one.
    feedback_loop_gain:
        Active-feedback DC loop gain (0 disables).
    neg_miller:
        Cross-coupled varactor pair (``None`` disables).
    peaking_inductor:
        Optional parallel active-inductor element for extra peaking.
    """

    input_pair: Mosfet
    load_resistance: float
    tail_current: float
    c_load_ext: float = 0.0
    source_resistance: float = 300.0
    feedback_loop_gain: float = 1.0
    neg_miller: Optional[MosVaractor] = None
    peaking_inductor: Optional[ActiveInductorLoad] = None
    name: str = "gain-stage"

    def __post_init__(self) -> None:
        if self.load_resistance <= 0:
            raise ValueError(
                f"load_resistance must be positive, got {self.load_resistance}"
            )

    def load(self) -> LoadElement:
        """The composite load element."""
        resistor = ResistiveLoad(self.load_resistance)
        if self.peaking_inductor is None:
            return resistor
        return ParallelLoad((resistor, self.peaking_inductor))

    def as_buffer(self) -> CmlBuffer:
        """The underlying CML stage model."""
        return CmlBuffer(
            input_pair=self.input_pair,
            load=self.load(),
            tail_current=self.tail_current,
            c_load_ext=self.c_load_ext,
            source_resistance=self.source_resistance,
            feedback_loop_gain=self.feedback_loop_gain,
            neg_miller=self.neg_miller,
            name=self.name,
        )

    # -- delegated metrics ---------------------------------------------------
    @property
    def dc_gain(self) -> float:
        """Small-signal DC gain of the cell."""
        return self.as_buffer().dc_gain

    @property
    def output_swing(self) -> float:
        """Limiting amplitude I_tail * R_load."""
        return self.as_buffer().output_swing

    def small_signal_tf(self):
        """Small-signal transfer function of the cell."""
        return self.as_buffer().small_signal_tf()

    def bandwidth_3db(self) -> float:
        """-3 dB bandwidth of the cell in Hz."""
        return self.as_buffer().bandwidth_3db()

    def to_block(self):
        """Behavioral simulation block with limiting."""
        return self.as_buffer().to_block()

    @property
    def supply_current(self) -> float:
        """Static supply current of the cell."""
        return self.as_buffer().supply_current

    # -- variants -------------------------------------------------------------
    def without_feedback(self) -> "GainStage":
        """Ablation: active feedback off."""
        return dataclasses.replace(self, feedback_loop_gain=0.0)

    def without_neg_miller(self) -> "GainStage":
        """Ablation: negative Miller capacitance off."""
        return dataclasses.replace(self, neg_miller=None)

    def scaled_gain(self, resistance_factor: float) -> "GainStage":
        """Same cell with the pull-up resistors scaled (gain knob)."""
        if resistance_factor <= 0:
            raise ValueError(
                f"resistance_factor must be positive, got {resistance_factor}"
            )
        return dataclasses.replace(
            self, load_resistance=self.load_resistance * resistance_factor
        )
