"""DC-offset cancellation network (paper Fig 8).

"Due to the process variation, the DC offset of the differential
amplifier may become large enough to smear the differential output
signal... The DC offset cancellation circuit is necessary because the
offset voltages contributed from device and layout mismatches can become
a problem after three stages of amplification that make the output
signal saturation and duty-cycle distortion."

The paper's network is *passive*: two series resistive branches with
**off-chip** grounding capacitors (the only external components in the
design) sense the output average and feed it back to the input pair in
opposition.  Behaviorally:

* the sense filter is a first-order low-pass with corner
  ``f_lp = 1/(2 pi R C)`` — with off-chip uF-scale capacitors this is in
  the tens-of-Hz range;
* closing the loop around a DC gain ``A0`` suppresses output offset by
  ``(1 + A0)`` and turns the amplifier's overall response into a
  band-pass with a low-frequency cut-in at ``~A0 * f_lp`` — the price of
  offset cancellation is baseline wander for data with long runs, which
  is why the corner must sit far below the PRBS line rate.

The loop time constant (seconds) is astronomically longer than a
10 Gb/s eye simulation window (nanoseconds), so the simulator treats the
loop *analytically*: the residual offset is computed in closed form and
applied as a static correction, while the high-pass corner is exposed
for the baseline-wander analysis helpers.
"""

from __future__ import annotations

import dataclasses
import math

from ..lti.transfer_function import RationalTF, first_order_lowpass

__all__ = ["OffsetCancellationNetwork", "duty_cycle_distortion"]


@dataclasses.dataclass(frozen=True)
class OffsetCancellationNetwork:
    """The passive low-pass feedback network of Fig 8.

    Parameters
    ----------
    branch_resistance:
        Total series resistance of each sensing branch in ohms.
    capacitance:
        The off-chip grounding capacitance in farads.
    sense_gain:
        DC gain of the feedback path (1.0 for the passive divider-less
        return used in the paper).
    """

    branch_resistance: float = 20e3
    capacitance: float = 1e-6
    sense_gain: float = 1.0

    def __post_init__(self) -> None:
        if self.branch_resistance <= 0:
            raise ValueError(
                f"branch_resistance must be positive, got {self.branch_resistance}"
            )
        if self.capacitance <= 0:
            raise ValueError(
                f"capacitance must be positive, got {self.capacitance}"
            )
        if not 0 < self.sense_gain <= 1.0:
            raise ValueError(
                f"sense_gain must be in (0, 1], got {self.sense_gain}"
            )

    @property
    def lowpass_corner_hz(self) -> float:
        """Sense-filter corner 1/(2 pi R C)."""
        return 1.0 / (2.0 * math.pi * self.branch_resistance
                      * self.capacitance)

    def sense_tf(self) -> RationalTF:
        """The feedback path transfer function (low-pass)."""
        return first_order_lowpass(self.lowpass_corner_hz,
                                   gain=self.sense_gain)

    # -- closed-loop consequences ------------------------------------------
    def highpass_corner_hz(self, amplifier_dc_gain: float) -> float:
        """Low-frequency cut-in of the offset-cancelled amplifier.

        Loop transmission is ``A0 * sense`` below the sense corner, so
        the closed-loop response falls below unity loop gain at
        ``~(1 + A0*sense_gain) * f_lp``.
        """
        if amplifier_dc_gain <= 0:
            raise ValueError(
                f"amplifier gain must be positive, got {amplifier_dc_gain}"
            )
        loop = amplifier_dc_gain * self.sense_gain
        return (1.0 + loop) * self.lowpass_corner_hz

    def residual_output_offset(self, input_offset: float,
                               amplifier_dc_gain: float) -> float:
        """Output DC offset with the loop closed.

        Open loop the output offset would be ``A0 * Vos``; the loop
        divides it by ``(1 + A0 * sense_gain)`` — for large A0 the
        residual approaches ``Vos / sense_gain``, i.e. roughly the
        *input*-sized offset instead of the amplified one.
        """
        if amplifier_dc_gain <= 0:
            raise ValueError(
                f"amplifier gain must be positive, got {amplifier_dc_gain}"
            )
        loop = amplifier_dc_gain * self.sense_gain
        return amplifier_dc_gain * input_offset / (1.0 + loop)

    def closed_loop_tf(self, amplifier_tf: RationalTF) -> RationalTF:
        """Full band-pass response: amplifier inside the offset loop.

        Only useful for frequency-domain inspection — the corner is far
        too slow to co-simulate with a 10 Gb/s pattern.
        """
        return amplifier_tf.feedback(self.sense_tf())

    def baseline_wander_fraction(self, run_length_bits: int,
                                 bit_rate: float,
                                 amplifier_dc_gain: float) -> float:
        """Fractional droop over a run of identical bits.

        A high-pass corner ``f_hp`` droops a flat top by approximately
        ``1 - exp(-2 pi f_hp t)`` over a run of duration ``t``.  For the
        default network and a PRBS7 worst run (7 bits at 10 Gb/s) this is
        a few parts in 1e5 — negligible, as the paper's design intends.
        """
        if run_length_bits <= 0:
            raise ValueError(
                f"run_length_bits must be positive, got {run_length_bits}"
            )
        if bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {bit_rate}")
        f_hp = self.highpass_corner_hz(amplifier_dc_gain)
        duration = run_length_bits / bit_rate
        return 1.0 - math.exp(-2.0 * math.pi * f_hp * duration)


def duty_cycle_distortion(residual_offset: float, signal_amplitude: float,
                          rise_time: float, bit_rate: float) -> float:
    """Duty-cycle distortion (fraction of UI) caused by a DC offset.

    An offset shifts the crossing point of a finite-slope edge in time:
    with an edge slewing the full swing in ~``rise_time``, a vertical
    shift of ``offset`` moves the crossing by
    ``dt = offset / slope = offset * rise_time / (2*amplitude)``, and the
    distortion is the two-edge effect ``2*dt`` expressed in UI.  This is
    the "duty-cycle distortion" failure the offset loop exists to
    prevent.
    """
    if signal_amplitude <= 0:
        raise ValueError(
            f"signal_amplitude must be positive, got {signal_amplitude}"
        )
    if rise_time < 0 or bit_rate <= 0:
        raise ValueError("rise_time must be >= 0 and bit_rate positive")
    slope = 2.0 * signal_amplitude / max(rise_time, 1e-15)
    dt = abs(residual_offset) / slope
    return 2.0 * dt * bit_rate
