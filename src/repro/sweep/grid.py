"""Declarative scenario grids for multi-scenario studies.

A study — Monte Carlo offset yield, jitter tolerance, a channel-length
sweep, PVT robustness — is a cartesian product of axes.  Axes come in
two kinds with very different costs:

* **batchable** axes vary only the stimulus (jitter seed, noise seed,
  amplitude, mismatch draw): every point shares one pipeline, so all of
  them can ride through the signal path together as one
  :class:`~repro.signals.batch.WaveformBatch` pass;
* **structural** axes change the circuit or channel itself (equalizer
  setting, trace length, PVT corner) or the measurement geometry (the
  line code — see :func:`modulation_axis`): each point needs its
  pipeline rebuilt.

:class:`ScenarioGrid` declares the axes; the
:class:`~repro.sweep.runner.SweepRunner` partitions them and executes
one batched pass per structural point.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Dict, Iterator, List, Sequence, Tuple

__all__ = ["SweepAxis", "ScenarioGrid", "modulation_axis"]


@dataclasses.dataclass(frozen=True)
class SweepAxis:
    """One swept parameter.

    Parameters
    ----------
    name:
        Parameter name; becomes a key of every scenario's parameter dict.
    values:
        The values the axis takes, in sweep order.
    structural:
        True when changing this parameter requires rebuilding the
        pipeline (circuit/channel change); False when it only varies the
        stimulus and can be batched.
    """

    name: str
    values: Tuple
    structural: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("axis name must be non-empty")
        values = tuple(self.values)
        if not values:
            raise ValueError(f"axis {self.name!r} has no values")
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return len(self.values)

    def describe(self) -> Dict:
        """This axis's checkpoint fingerprint: name, structural flag,
        size, and a content hash of the values (stable across
        processes — memory addresses in reprs are stripped)."""
        from .checkpoint import _clean_repr, _sha
        return {
            "name": self.name,
            "structural": bool(self.structural),
            "n": len(self),
            "values": _sha(_clean_repr(self.values))[:16],
        }


def modulation_axis(modulations: Sequence) -> SweepAxis:
    """A structural ``"modulation"`` axis over line codes.

    ``modulation_axis([Nrz(), Pam4()])`` puts NRZ and PAM4 points in
    one grid: the axis name matches :class:`repro.link.TxConfig`'s
    ``modulation`` field, so :meth:`repro.link.LinkSession.sweep`
    rebuilds the chain per line code and slices/measures each point
    with the matching alphabet.  Always structural — a line code
    changes the measurement geometry, never just the stimulus.
    """
    return SweepAxis("modulation", tuple(modulations), structural=True)


class ScenarioGrid:
    """The cartesian product of sweep axes.

    Scenario ordering is row-major over the axes in declaration order
    (the last axis varies fastest) — the order :meth:`points` yields and
    the order of :class:`~repro.sweep.runner.SweepResult` entries.
    """

    def __init__(self, axes: Sequence[SweepAxis]):
        if not axes:
            raise ValueError("grid needs at least one axis")
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate axis names in {names}")
        self.axes: List[SweepAxis] = list(axes)

    def describe(self) -> List[Dict]:
        """Per-axis checkpoint fingerprint (see
        :meth:`SweepAxis.describe`): the grid half of the key the
        sweep journal is filed under — the runner half adds the
        callables, chunking, failure policy, and (since fingerprint
        version 3) the streaming-reducer configuration, so dense and
        streaming journals never mix."""
        return [axis.describe() for axis in self.axes]

    # -- geometry ----------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        """Points per axis, in declaration order."""
        return tuple(len(axis) for axis in self.axes)

    @property
    def n_scenarios(self) -> int:
        """Total number of scenario points."""
        total = 1
        for axis in self.axes:
            total *= len(axis)
        return total

    @property
    def names(self) -> List[str]:
        """Axis names in declaration order."""
        return [axis.name for axis in self.axes]

    def structural_axes(self) -> List[SweepAxis]:
        """The axes that force a pipeline rebuild."""
        return [axis for axis in self.axes if axis.structural]

    def batch_axes(self) -> List[SweepAxis]:
        """The axes that batch through one pipeline."""
        return [axis for axis in self.axes if not axis.structural]

    # -- iteration ---------------------------------------------------------
    def points(self) -> Iterator[Dict]:
        """Every scenario's parameter dict, in canonical order."""
        for combo in itertools.product(*(axis.values for axis in self.axes)):
            yield dict(zip(self.names, combo))

    @staticmethod
    def _subspace_points(axes: Sequence[SweepAxis]) -> Iterator[Dict]:
        if not axes:
            yield {}
            return
        names = [axis.name for axis in axes]
        for combo in itertools.product(*(axis.values for axis in axes)):
            yield dict(zip(names, combo))

    def structural_points(self) -> Iterator[Dict]:
        """Parameter dicts over the structural axes only (one empty dict
        when every axis is batchable)."""
        return self._subspace_points(self.structural_axes())

    def batch_points(self) -> Iterator[Dict]:
        """Parameter dicts over the batchable axes only (one empty dict
        when every axis is structural)."""
        return self._subspace_points(self.batch_axes())

    def batch_points_slice(self, start: int, stop: int) -> List[Dict]:
        """``list(batch_points())[start:stop]`` computed directly from
        the axis values by mixed-radix unravelling — ``O(stop - start)``
        dicts, never the whole enumeration.  The sweep runner
        materializes each execution unit's rows through this, so
        supervisor memory holds one chunk's parameter dicts at a time
        instead of every scenario's for the whole sweep."""
        axes = self.batch_axes()
        total = self.n_batch_scenarios()
        start = max(0, min(int(start), total))
        stop = max(start, min(int(stop), total))
        if not axes:
            return [{}][start:stop]
        sizes = [len(axis) for axis in axes]
        rows: List[Dict] = []
        for flat in range(start, stop):
            indices: List[int] = []
            remainder = flat
            for size in reversed(sizes):
                indices.append(remainder % size)
                remainder //= size
            indices.reverse()
            rows.append({axis.name: axis.values[i]
                         for axis, i in zip(axes, indices)})
        return rows

    def n_batch_scenarios(self) -> int:
        """Scenarios per batched pass (product of batchable axis sizes)."""
        total = 1
        for axis in self.batch_axes():
            total *= len(axis)
        return total

    # -- indexing ----------------------------------------------------------
    def flat_index(self, params: Dict) -> int:
        """Canonical-order index of a full parameter assignment."""
        index = 0
        for axis in self.axes:
            try:
                value_index = axis.values.index(params[axis.name])
            except KeyError:
                raise KeyError(f"missing axis {axis.name!r} in params")
            except ValueError:
                raise ValueError(
                    f"{params[axis.name]!r} is not a value of axis "
                    f"{axis.name!r}"
                )
            index = index * len(axis) + value_index
        return index
