"""Deterministic fault injection for the sweep reliability layer.

The retry / quarantine / checkpoint machinery in
:mod:`repro.sweep.runner` is only trustworthy if it is exercised, so
this module can make chosen execution units misbehave on demand —
crash their worker process, hang, raise, emit NaNs, or abort the whole
sweep — deterministically enough to test end to end in CI.

Like the kernel backends' ``REPRO_KERNELS``, activation is env-gated:
``REPRO_SWEEP_FAULTS`` names a JSON plan file (usually written by
:func:`inject_faults`) and injection is a no-op when the variable is
unset, so production sweeps never pay more than one ``os.environ``
lookup per unit.  The plan travels to pool workers through the
inherited environment, and per-rule attempt counters are kept as
``O_EXCL`` marker files next to the plan, so "fail the first N
attempts, then succeed" stays exact across worker death and pool
respawns.

An execution unit is one (structural point, row-chunk) of a sweep,
identified by ``(si, start, stop)``: structural-point index plus the
half-open range of batch-point indices it covers.  A rule targets
units by structural index, exact chunk start, and/or absolute row
indices — row targeting keeps matching the sub-units the runner's
quarantine bisection produces, which is how a fault is narrowed down
to its offending row.

.. warning::
   ``mode="crash"`` calls ``os._exit`` in whatever process executes
   the unit.  Under a process pool that kills a worker (the point);
   in-process it kills the interpreter.  Keep crash rules to
   pool-backed runs.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import pathlib
import time
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "ENV_VAR",
    "FaultInjected",
    "FaultRule",
    "SweepAbort",
    "inject_faults",
    "read_plan",
    "write_plan",
]

ENV_VAR = "REPRO_SWEEP_FAULTS"

_MODES = ("crash", "hang", "raise", "nan", "abort")


class FaultInjected(RuntimeError):
    """The exception raised by ``mode="raise"`` rules (a stand-in for
    any transient per-unit failure)."""


class SweepAbort(RuntimeError):
    """A fatal, never-retried failure (``mode="abort"``): the
    supervisor re-raises it immediately, modelling the whole sweep
    process dying mid-run with the checkpoint journal left behind."""


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One injected misbehaviour.

    Parameters
    ----------
    mode:
        ``"crash"`` (``os._exit`` the executing process), ``"hang"``
        (sleep ``seconds`` before proceeding normally), ``"raise"``
        (raise :class:`FaultInjected`), ``"nan"`` (overwrite measured
        values with ``nan``), or ``"abort"`` (raise
        :class:`SweepAbort`, which is never retried).
    si / start:
        Restrict the rule to units of one structural-point index /
        one exact chunk start; ``None`` matches any.
    rows:
        Absolute batch-point indices; the rule matches any unit whose
        ``[start, stop)`` range contains one of them (and, for
        ``"nan"``, only those rows are poisoned).  ``None`` matches
        any unit (and poisons every row).
    times:
        Fire on the first ``times`` attempts of each matching unit,
        then stand down — the knob that makes "transient" faults.
        ``None`` fires on every attempt ("persistent").
    seconds:
        Sleep length for ``"hang"``.
    """

    mode: str
    si: Optional[int] = None
    start: Optional[int] = None
    rows: Optional[Tuple[int, ...]] = None
    times: Optional[int] = 1
    seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; choose from {_MODES}"
            )
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1 or None, got {self.times}")
        if self.rows is not None:
            object.__setattr__(self, "rows", tuple(int(r)
                                                   for r in self.rows))

    def matches(self, si: int, start: int, stop: int) -> bool:
        """Does this rule target unit ``(si, start, stop)``?"""
        if self.si is not None and self.si != si:
            return False
        if self.start is not None and self.start != start:
            return False
        if self.rows is not None \
                and not any(start <= row < stop for row in self.rows):
            return False
        return True


# ---------------------------------------------------------------------------
# Plan files + attempt counters.
# ---------------------------------------------------------------------------

def write_plan(path, rules: Sequence[FaultRule]) -> pathlib.Path:
    """Serialize ``rules`` to a JSON plan file."""
    path = pathlib.Path(path)
    payload = {"rules": [dataclasses.asdict(rule) for rule in rules]}
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def read_plan(path) -> List[FaultRule]:
    """Load a plan file back into :class:`FaultRule` objects."""
    payload = json.loads(pathlib.Path(path).read_text())
    rules = []
    for raw in payload["rules"]:
        rows = raw.get("rows")
        rules.append(FaultRule(
            mode=raw["mode"], si=raw.get("si"), start=raw.get("start"),
            rows=tuple(rows) if rows is not None else None,
            times=raw.get("times"), seconds=raw.get("seconds", 60.0),
        ))
    return rules


@contextlib.contextmanager
def inject_faults(rules: Sequence[FaultRule], directory):
    """Activate a fault plan for the duration of a ``with`` block.

    Writes the plan under ``directory`` (created if needed; attempt
    counters live alongside it) and points :data:`ENV_VAR` at it, so
    in-process execution and every pool worker spawned inside the
    block see the same plan.  The previous environment is restored on
    exit.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    plan_path = write_plan(directory / "faults.json", rules)
    previous = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = str(plan_path)
    try:
        yield plan_path
    finally:
        if previous is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous


def _claim(plan_path: pathlib.Path, rule_index: int, rule: FaultRule,
           unit_key: Tuple[int, int, int]) -> bool:
    """Count one attempt of ``rule`` against a unit; True when the rule
    fires this attempt.

    The counter is a series of ``O_CREAT | O_EXCL`` marker files, so
    the count is atomic across processes and survives worker death —
    exactly what "crash on the first attempt only" needs.
    """
    hits = plan_path.parent / f"{plan_path.stem}-hits"
    hits.mkdir(exist_ok=True)
    si, start, stop = unit_key
    attempt = 0
    while True:
        marker = hits / f"rule{rule_index}-u{si}-{start}-{stop}-a{attempt}"
        try:
            os.close(os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            attempt += 1
            continue
        break
    return rule.times is None or attempt < rule.times


def _active_plan():
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return None
    path = pathlib.Path(raw)
    try:
        return path, read_plan(path)
    except FileNotFoundError:
        return None


# ---------------------------------------------------------------------------
# Runner hooks (called per unit; no-ops when the env var is unset).
# ---------------------------------------------------------------------------

def on_unit_start(unit_key: Tuple[int, int, int]) -> None:
    """Crash / hang / raise / abort hooks, fired before a unit runs."""
    active = _active_plan()
    if active is None:
        return
    plan_path, rules = active
    for index, rule in enumerate(rules):
        if rule.mode == "nan" or not rule.matches(*unit_key):
            continue
        if not _claim(plan_path, index, rule, unit_key):
            continue
        if rule.mode == "crash":
            # Hard worker death: no exception, no cleanup — the
            # supervisor must see BrokenProcessPool.
            os._exit(86)
        elif rule.mode == "hang":
            time.sleep(rule.seconds)
        elif rule.mode == "abort":
            raise SweepAbort(f"injected abort at unit {unit_key}")
        elif rule.mode == "raise":
            raise FaultInjected(f"injected failure at unit {unit_key}")


def on_unit_values(unit_key: Tuple[int, int, int], values: list) -> list:
    """NaN-poisoning hook, applied to a unit's measured values."""
    active = _active_plan()
    if active is None:
        return values
    plan_path, rules = active
    si, start, stop = unit_key
    out = list(values)
    for index, rule in enumerate(rules):
        if rule.mode != "nan" or not rule.matches(si, start, stop):
            continue
        if not _claim(plan_path, index, rule, unit_key):
            continue
        if rule.rows is None:
            targets = range(len(out))
        else:
            targets = [row - start for row in rule.rows
                       if start <= row < stop]
        for relative in targets:
            out[relative] = float("nan")
    return out
