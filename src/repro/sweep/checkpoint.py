"""Chunk-level checkpoint journal for resumable sweeps.

A long sweep is a sequence of independent execution units — one
(structural point, row-chunk) each — so fault tolerance reduces to
journaling every finished unit's results on disk and skipping the
journaled ones on the next run.  The journal lives under

    <checkpoint_dir>/<key>/units/<si>-<start>-<stop>.pkl

where ``key`` is a canonical hash of everything that determines a
unit's results: the grid's axes (names, structural flags, value
content), the runner's stimulus / build / measure callables, the chunk
size (it defines the unit boundaries), and the failure policy
(NaN guard, ``on_error``, ``max_attempts``, ``timeout`` — quarantine
decisions are journaled, so they are only reusable under the policy
that made them).  Two
runners with the same fingerprint share a journal; anything else lands
in its own subdirectory, so a stale ``checkpoint_dir`` can never leak
wrong results into a different sweep.  Results are pickled, and a
pickle round-trip of floats and ndarrays is exact — a resumed sweep is
bit-identical to an uninterrupted one.

Callable fingerprints are best-effort: module-qualified name plus (when
available) a bytecode hash, default arguments, and cleaned ``repr``s of
closure cells — enough to catch the common "edited the measure
function" footgun.  Opaque callables fall back to their cleaned
``repr`` (memory addresses stripped so the fingerprint is stable
across processes); when in doubt, point the sweep at a fresh
``checkpoint_dir``.

Unit files are written atomically (temp file + ``os.replace``), so a
sweep killed mid-write leaves at worst one corrupt temp file; corrupt
or truncated unit files are treated as missing and re-run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import pickle
import re
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["CheckpointJournal", "describe_callable", "describe_grid"]

_ADDRESS = re.compile(r"0x[0-9a-fA-F]+")


def _clean_repr(obj) -> str:
    """A ``repr`` with memory addresses stripped (stable across runs)."""
    try:
        text = repr(obj)
    except Exception:
        text = f"<unreprable {type(obj).__qualname__}>"
    return _ADDRESS.sub("0x", text)


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _cell_repr(cell) -> str:
    try:
        return _clean_repr(cell.cell_contents)
    except ValueError:  # yet-unbound cell, e.g. a recursive inner fn
        return "<empty cell>"


def describe_callable(fn) -> str:
    """A stable, content-sensitive fingerprint of a callable."""
    if fn is None:
        return "None"
    import functools
    if isinstance(fn, functools.partial):
        keywords = sorted((fn.keywords or {}).items())
        return (f"partial({describe_callable(fn.func)}, "
                f"args={_clean_repr(fn.args)}, kw={_clean_repr(keywords)})")
    parts = [
        f"{getattr(fn, '__module__', '?')}."
        f"{getattr(fn, '__qualname__', type(fn).__qualname__)}"
    ]
    code = getattr(fn, "__code__", None)
    if code is not None:
        parts.append("code:" + _sha(code.co_code.hex()
                                    + _clean_repr(code.co_consts))[:16])
    defaults = getattr(fn, "__defaults__", None)
    if defaults:
        parts.append("defaults:" + _clean_repr(defaults))
    closure = getattr(fn, "__closure__", None)
    if closure:
        cells = [_cell_repr(cell) for cell in closure]
        parts.append("closure:" + _sha("|".join(cells))[:16])
    self_obj = getattr(fn, "__self__", None)  # bound methods
    if self_obj is not None:
        parts.append("self:" + _clean_repr(self_obj))
    if code is None and self_obj is None:
        # Callable object: its state is whatever repr exposes.
        parts.append("obj:" + _clean_repr(fn))
    return "|".join(parts)


def describe_grid(grid) -> List[Dict[str, Any]]:
    """Per-axis fingerprint: name, structural flag, size, value hash.

    Grids describe themselves (:meth:`repro.sweep.grid.ScenarioGrid.
    describe`); grid-shaped ducks without a ``describe`` get the same
    treatment axis by axis."""
    if hasattr(grid, "describe"):
        return grid.describe()
    return [
        {
            "name": axis.name,
            "structural": bool(axis.structural),
            "n": len(axis),
            "values": _sha(_clean_repr(axis.values))[:16],
        }
        for axis in grid.axes
    ]


class CheckpointJournal:
    """On-disk journal of finished sweep units, keyed by sweep
    fingerprint (see the module docstring for the layout)."""

    def __init__(self, path: pathlib.Path):
        self.path = pathlib.Path(path)
        self._units = self.path / "units"

    @classmethod
    def open(cls, checkpoint_dir, fingerprint: Dict[str, Any]
             ) -> "CheckpointJournal":
        """Open (creating if needed) the journal for one sweep config."""
        canonical = json.dumps(fingerprint, sort_keys=True)
        key = _sha(canonical)[:20]
        path = pathlib.Path(checkpoint_dir) / key
        journal = cls(path)
        journal._units.mkdir(parents=True, exist_ok=True)
        manifest = path / "manifest.json"
        if not manifest.exists():
            # The fingerprint itself, for humans debugging a stale dir.
            tmp = manifest.with_suffix(f".tmp-{os.getpid()}")
            tmp.write_text(json.dumps({"key": key,
                                       "fingerprint": fingerprint},
                                      indent=2, sort_keys=True) + "\n")
            os.replace(tmp, manifest)
        return journal

    # -- unit records --------------------------------------------------------
    def load(self, unit_key: str) -> Optional[Dict[str, Any]]:
        """The journaled record for one unit: ``{"values": [...],
        "failures": [...], "partials": {...}}``, or ``None`` when
        absent/corrupt.  ``values`` is ``None`` (not a list) for units
        journaled by a ``keep_results=False`` streaming run — the
        fingerprint guarantees such records are only ever read back by
        an identically streaming runner."""
        file = self._units / f"{unit_key}.pkl"
        try:
            with open(file, "rb") as handle:
                record = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated/corrupt (e.g. disk full mid-write of a temp
            # file that still got renamed somehow): re-run the unit.
            file.unlink(missing_ok=True)
            return None
        if not isinstance(record, dict) or "values" not in record:
            file.unlink(missing_ok=True)
            return None
        record.setdefault("failures", [])
        record.setdefault("partials", None)
        return record

    def store(self, unit_key: str, values: Optional[Sequence],
              failures: Sequence,
              partials: Optional[Dict[str, Any]] = None) -> None:
        """Atomically journal one finished unit.

        ``partials`` are the unit's streaming-reducer states (reducer
        name → mergeable partial); ``values`` is ``None`` under
        ``keep_results=False``, so the journal of a million-scenario
        streaming sweep stays as flat in memory and disk as the sweep
        itself."""
        file = self._units / f"{unit_key}.pkl"
        tmp = file.with_name(file.name + f".tmp-{os.getpid()}")
        with open(tmp, "wb") as handle:
            pickle.dump({"values": (None if values is None
                                    else list(values)),
                         "failures": list(failures),
                         "partials": partials}, handle)
        os.replace(tmp, file)

    def unit_keys(self) -> List[str]:
        """Keys of every journaled unit (sorted, for tests/benches)."""
        return sorted(p.stem for p in self._units.glob("*.pkl"))

    def __len__(self) -> int:
        return len(list(self._units.glob("*.pkl")))
