"""Sweep subsystem: declarative scenario grids + the batched runner.

The scaling layer of the library: studies over equalizer settings,
channel lengths, PVT corners, mismatch draws, jitter and noise seeds are
declared as a :class:`ScenarioGrid` of axes and executed by a
:class:`SweepRunner`, which batches every stimulus-only axis through the
signal path as one :class:`~repro.signals.batch.WaveformBatch` pass and
rebuilds pipelines only along structural axes.

    from repro.sweep import ScenarioGrid, SweepAxis, SweepRunner
    from repro.analysis import measure_eye_batch

    grid = ScenarioGrid([
        SweepAxis("length_m", (0.1, 0.3, 0.5), structural=True),
        SweepAxis("seed", tuple(range(100))),
    ])
    runner = SweepRunner(
        grid,
        stimulus=make_noisy_wave,            # params dict -> Waveform
        build=make_link,                     # structural params -> Block
        measure_batch=lambda batch, _:
            measure_eye_batch(batch, bit_rate=10e9),
    )
    result = runner.run()
    heights = result.values(lambda m: m.eye_height)   # shape (3, 100)

Long sweeps are fault-tolerant: ``runner.run(checkpoint_dir=...)``
journals every finished (structural point, row-chunk) unit for
bit-exact resume (:mod:`repro.sweep.checkpoint`), pool execution
retries crashed/hung/raising units with backoff, and
``on_error="quarantine"`` narrows persistent failures to the offending
rows, recorded as :class:`SweepFailure` entries on
``SweepResult.failures`` while healthy rows complete.  The
deterministic fault-injection harness (:mod:`repro.sweep.faults`,
env-gated via ``REPRO_SWEEP_FAULTS``) exercises all of it in CI.

Million-scenario studies stream instead of retaining: pass
``reducers={...}`` (:mod:`repro.sweep.reducers` — count/extrema,
Welford/Chan mean-variance, fixed-bin histograms, online quantiles,
pass/fail yield) and ``keep_results=False``, and every finished unit
folds into constant-size mergeable partials instead of a dense result
list; ``SweepResult.aggregates`` carries the finalized values and the
checkpoint journal stores partials per unit, so an interrupted
streaming sweep resumes to identical aggregates.
"""

from .checkpoint import CheckpointJournal
from .faults import FaultInjected, FaultRule, SweepAbort, inject_faults
from .grid import ScenarioGrid, SweepAxis, modulation_axis
from .reducers import (Count, Histogram, HistogramResult, MeanVar,
                       MeanVarResult, MinMax, MinMaxResult, Quantiles,
                       QuantilesResult, Reducer, Yield, YieldResult)
from .runner import SweepFailure, SweepResult, SweepRunner, \
    closed_loop_cdr_measure, dfe_measure

__all__ = ["ScenarioGrid", "SweepAxis", "modulation_axis",
           "SweepRunner", "SweepResult",
           "SweepFailure", "CheckpointJournal", "FaultRule", "FaultInjected",
           "SweepAbort", "inject_faults",
           "closed_loop_cdr_measure", "dfe_measure",
           "Reducer", "Count", "MinMax", "MeanVar", "Histogram",
           "Quantiles", "Yield",
           "MinMaxResult", "MeanVarResult", "HistogramResult",
           "QuantilesResult", "YieldResult"]
