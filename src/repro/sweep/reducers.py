"""Streaming reducers: constant-memory aggregation over sweep results.

A million-point Monte Carlo yield study does not need a million
measurement objects — it needs a count, a histogram, a quantile, a
pass rate.  This module lifts the "retain every row densely"
assumption out of the sweep engine the same way
:mod:`repro.signals.modulation` lifted the two-level NRZ assumption
out of the slicers: aggregation becomes an explicit layer that every
stratum (runner, checkpoint journal, :class:`~repro.link.LinkSession`
facade, reporting) threads through instead of hardcoding.

The contract is the classic parallel-aggregation triple plus a
finalizer:

* ``init() -> state`` — an empty partial;
* ``update(state, values, params) -> state`` — fold one execution
  unit's per-row values (``None`` rows — quarantined scenarios — are
  skipped) into a partial;
* ``merge(a, b) -> state`` — combine two partials;
* ``finalize(state)`` — the user-facing aggregate.

Partials are **order-independent and deterministically mergeable**:
the runner merges them in canonical unit order regardless of the
(nondeterministic) pool completion order, so a resumed, retried,
re-chunked or pool-shuffled sweep finalizes to the same aggregate as
an uninterrupted in-process one — exactly for the integer-state
reducers (:class:`Count`, :class:`MinMax`'s min/max, :class:`Yield`,
:class:`Histogram`, :class:`Quantiles`), and to floating-point
associativity (≤1e-9 relative) for :class:`MeanVar`, whose partials
combine via Chan's parallel variance merge.

States are plain picklable tuples/ndarrays: the checkpoint journal
stores one partial per finished unit, so a checkpoint-resumed
streaming sweep finalizes identically to an uninterrupted one without
ever re-reading per-row data.

Built-ins extract one float per scenario via their ``extract``
callable (default: the measured value itself is the number)::

    from repro.sweep import MeanVar, Histogram, Quantiles, Yield

    result = runner_with(
        reducers={
            "height": MeanVar(extract=lambda m, p: m.eye_height),
            "height_hist": Histogram(0.0, 0.4, n_bins=64,
                                     extract=lambda m, p: m.eye_height),
            "yield": Yield(lambda m, p: m.eye_height > 0.05),
        },
        keep_results=False,
    ).run()
    result.aggregates["height"].mean
    result.aggregates["yield"].fraction
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, \
    Tuple, runtime_checkable

import numpy as np

__all__ = [
    "Reducer",
    "Count",
    "MinMax",
    "MeanVar",
    "Histogram",
    "Quantiles",
    "Yield",
    "MinMaxResult",
    "MeanVarResult",
    "HistogramResult",
    "QuantilesResult",
    "YieldResult",
    "describe_reducers",
]


@runtime_checkable
class Reducer(Protocol):
    """The streaming-aggregation contract (see the module docstring).

    ``describe()`` is the reducer's checkpoint fingerprint: everything
    that determines its finalized value (class, bin edges, quantile
    list, extract callable) must appear in it, so a journal written
    under one reducer configuration is never consumed under another.
    """

    def init(self) -> Any: ...

    def update(self, state: Any, values: Sequence[Any],
               params: Sequence[Dict]) -> Any: ...

    def merge(self, a: Any, b: Any) -> Any: ...

    def finalize(self, state: Any) -> Any: ...

    def describe(self) -> str: ...


# ---------------------------------------------------------------------------
# Finalized aggregate types.
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class MinMaxResult:
    """Running extrema; ``min``/``max`` are ``nan`` for an empty sweep."""

    n: int
    min: float
    max: float


@dataclasses.dataclass(frozen=True)
class MeanVarResult:
    """Welford/Chan moments; ``variance`` is the population variance
    (``ddof=0``, matching ``np.var``), ``nan`` when ``n == 0``."""

    n: int
    mean: float
    variance: float

    @property
    def std(self) -> float:
        return math.sqrt(self.variance) if self.n else float("nan")


@dataclasses.dataclass(frozen=True)
class HistogramResult:
    """A fixed-bin streaming histogram.

    ``counts[i]`` covers ``[edges[i], edges[i + 1])`` (the last bin is
    closed on the right, like ``np.histogram``); values outside
    ``[edges[0], edges[-1]]`` land in ``underflow``/``overflow``
    instead of being silently dropped.
    """

    edges: np.ndarray
    counts: np.ndarray
    underflow: int
    overflow: int

    @property
    def n(self) -> int:
        """Total values seen, including out-of-range ones."""
        return int(self.counts.sum()) + self.underflow + self.overflow

    def quantile(self, q: float) -> float:
        """The ``q``-quantile estimated from the cumulative histogram,
        linearly interpolated within the containing bin (resolution is
        one bin width; out-of-range mass clamps to the edge values)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self.n
        if total == 0:
            return float("nan")
        target = q * total
        if target <= self.underflow:
            return float(self.edges[0])
        running = float(self.underflow)
        for i, count in enumerate(self.counts):
            if running + count >= target and count > 0:
                frac = (target - running) / count
                lo, hi = self.edges[i], self.edges[i + 1]
                return float(lo + frac * (hi - lo))
            running += count
        return float(self.edges[-1])


@dataclasses.dataclass(frozen=True)
class QuantilesResult:
    """Histogram-estimated quantiles: ``values[i]`` estimates the
    ``qs[i]``-quantile (resolution: one bin of the backing sketch)."""

    qs: Tuple[float, ...]
    values: Tuple[float, ...]
    n: int

    def __getitem__(self, q: float) -> float:
        try:
            return self.values[self.qs.index(q)]
        except ValueError:
            raise KeyError(
                f"quantile {q!r} was not requested; available: {self.qs}"
            )


@dataclasses.dataclass(frozen=True)
class YieldResult:
    """Pass/fail tally; ``fraction`` is ``nan`` for an empty sweep."""

    n_pass: int
    n_total: int

    @property
    def fraction(self) -> float:
        return self.n_pass / self.n_total if self.n_total else float("nan")


# ---------------------------------------------------------------------------
# Shared extraction plumbing.
# ---------------------------------------------------------------------------

def _describe_extract(fn) -> str:
    from .checkpoint import describe_callable
    return describe_callable(fn)


@dataclasses.dataclass(frozen=True)
class _ScalarReducer:
    """Base for the built-ins: one float per scenario via ``extract``.

    ``extract(result, params) -> float`` maps a measured value to the
    number being aggregated; ``None`` (the default) takes the value
    itself.  ``None`` *rows* — quarantined scenarios — are skipped, so
    a partially failed sweep still aggregates its healthy rows (the
    quarantine records live on ``SweepResult.failures``).
    """

    extract: Optional[Callable[[Any, Dict], float]] = \
        dataclasses.field(default=None, kw_only=True)

    def _floats(self, values: Sequence[Any],
                params: Sequence[Dict]) -> np.ndarray:
        kept: List[float] = []
        for value, p in zip(values, params):
            if value is None:
                continue
            if self.extract is not None:
                try:
                    value = self.extract(value, p)
                except Exception as error:
                    raise type(error)(
                        f"{type(self).__name__}.extract failed for "
                        f"scenario {p!r}: {error}"
                    ) from error
            kept.append(float(value))
        return np.asarray(kept, dtype=float)

    def describe(self) -> str:
        config = [
            f"{field.name}={_describe_extract(getattr(self, field.name))}"
            if field.name == "extract"
            else f"{field.name}={getattr(self, field.name)!r}"
            for field in dataclasses.fields(self)
        ]
        return f"{type(self).__name__}({', '.join(config)})"


@dataclasses.dataclass(frozen=True)
class Count(_ScalarReducer):
    """How many scenarios produced a (non-quarantined) value."""

    def init(self) -> int:
        return 0

    def update(self, state: int, values: Sequence[Any],
               params: Sequence[Dict]) -> int:
        return state + sum(1 for value in values if value is not None)

    def merge(self, a: int, b: int) -> int:
        return a + b

    def finalize(self, state: int) -> int:
        return int(state)


@dataclasses.dataclass(frozen=True)
class MinMax(_ScalarReducer):
    """Exact running extrema (min/max are exactly associative)."""

    def init(self) -> Tuple[int, float, float]:
        return (0, math.inf, -math.inf)

    def update(self, state, values, params):
        floats = self._floats(values, params)
        if floats.size == 0:
            return state
        n, lo, hi = state
        return (n + floats.size, min(lo, float(floats.min())),
                max(hi, float(floats.max())))

    def merge(self, a, b):
        return (a[0] + b[0], min(a[1], b[1]), max(a[2], b[2]))

    def finalize(self, state) -> MinMaxResult:
        n, lo, hi = state
        if n == 0:
            return MinMaxResult(0, float("nan"), float("nan"))
        return MinMaxResult(n, lo, hi)


@dataclasses.dataclass(frozen=True)
class MeanVar(_ScalarReducer):
    """Streaming mean/variance: Welford-style accumulation within a
    unit (vectorized over the chunk), Chan's parallel algorithm to
    merge partials.  State is ``(n, mean, M2)``; merging is
    order-sensitive only at floating-point level (≤1e-9 relative vs a
    dense two-pass ``np.mean``/``np.var`` in practice)."""

    def init(self) -> Tuple[int, float, float]:
        return (0, 0.0, 0.0)

    def update(self, state, values, params):
        floats = self._floats(values, params)
        if floats.size == 0:
            return state
        n_b = int(floats.size)
        mean_b = float(floats.mean())
        m2_b = float(((floats - mean_b) ** 2).sum())
        return self.merge(state, (n_b, mean_b, m2_b))

    def merge(self, a, b):
        n_a, mean_a, m2_a = a
        n_b, mean_b, m2_b = b
        if n_a == 0:
            return b
        if n_b == 0:
            return a
        n = n_a + n_b
        delta = mean_b - mean_a
        mean = mean_a + delta * (n_b / n)
        m2 = m2_a + m2_b + delta * delta * (n_a * n_b / n)
        return (n, mean, m2)

    def finalize(self, state) -> MeanVarResult:
        n, mean, m2 = state
        if n == 0:
            return MeanVarResult(0, float("nan"), float("nan"))
        return MeanVarResult(int(n), float(mean), float(m2 / n))


@dataclasses.dataclass(frozen=True)
class Histogram(_ScalarReducer):
    """Fixed-bin streaming histogram over ``[lo, hi]``.

    Bin counts are integers, so partials merge exactly regardless of
    chunking or completion order.  Out-of-range values are tallied in
    the underflow/overflow counters, never dropped.
    """

    lo: float = 0.0
    hi: float = 1.0
    n_bins: int = 64

    def __post_init__(self) -> None:
        if not self.hi > self.lo:
            raise ValueError(
                f"histogram range must satisfy hi > lo, got "
                f"[{self.lo}, {self.hi}]"
            )
        if self.n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {self.n_bins}")

    @property
    def edges(self) -> np.ndarray:
        return np.linspace(self.lo, self.hi, self.n_bins + 1)

    def init(self):
        return (np.zeros(self.n_bins, dtype=np.int64), 0, 0)

    def update(self, state, values, params):
        floats = self._floats(values, params)
        if floats.size == 0:
            return state
        counts, under, over = state
        below = int(np.count_nonzero(floats < self.lo))
        above = int(np.count_nonzero(floats > self.hi))
        inside = floats[(floats >= self.lo) & (floats <= self.hi)]
        new_counts, _ = np.histogram(inside, bins=self.edges)
        return (counts + new_counts, under + below, over + above)

    def merge(self, a, b):
        return (a[0] + b[0], a[1] + b[1], a[2] + b[2])

    def finalize(self, state) -> HistogramResult:
        counts, under, over = state
        return HistogramResult(edges=self.edges,
                               counts=np.asarray(counts, dtype=np.int64),
                               underflow=int(under), overflow=int(over))


@dataclasses.dataclass(frozen=True)
class Quantiles(_ScalarReducer):
    """Online quantiles from a constant-memory cumulative sketch.

    A P²-style estimator with a crucial difference: instead of the
    classic five adaptive markers (whose state is order-*dependent*),
    the sketch is a fixed-bin cumulative histogram over ``[lo, hi]``
    with linear interpolation inside the containing bin — the same
    constant memory, but partials are integer bin counts, so the
    estimate is invariant to chunking, completion order and resume.
    Resolution is one bin width (``(hi - lo) / n_bins``); mass outside
    the range clamps to the edges.
    """

    qs: Tuple[float, ...] = (0.05, 0.25, 0.5, 0.75, 0.95)
    lo: float = 0.0
    hi: float = 1.0
    n_bins: int = 256

    def __post_init__(self) -> None:
        object.__setattr__(self, "qs", tuple(float(q) for q in self.qs))
        if not self.qs:
            raise ValueError("qs must name at least one quantile")
        if any(not 0.0 <= q <= 1.0 for q in self.qs):
            raise ValueError(f"quantiles must be in [0, 1], got {self.qs}")
        _ = self._sketch  # constructing it validates the range/bins

    @property
    def _sketch(self) -> Histogram:
        return Histogram(extract=self.extract, lo=self.lo, hi=self.hi,
                         n_bins=self.n_bins)

    def init(self):
        return self._sketch.init()

    def update(self, state, values, params):
        return self._sketch.update(state, values, params)

    def merge(self, a, b):
        return self._sketch.merge(a, b)

    def finalize(self, state) -> QuantilesResult:
        histogram = self._sketch.finalize(state)
        return QuantilesResult(
            qs=self.qs,
            values=tuple(histogram.quantile(q) for q in self.qs),
            n=histogram.n,
        )


@dataclasses.dataclass(frozen=True)
class Yield(_ScalarReducer):
    """Pass/fail yield counter: ``predicate(result, params) -> bool``
    per scenario (exact: the state is two integers).

    With ``extract`` set, the predicate sees the extracted float; by
    default it sees the raw measured value.
    """

    predicate: Optional[Callable[[Any, Dict], bool]] = None

    def __init__(self, predicate=None, *, extract=None):
        # Positional predicate: Yield(lambda m, p: m.eye_height > 0.05).
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "extract", extract)
        if predicate is None:
            raise ValueError(
                "Yield needs a predicate(result, params) -> bool"
            )

    def init(self) -> Tuple[int, int]:
        return (0, 0)

    def update(self, state, values, params):
        n_pass, n_total = state
        for value, p in zip(values, params):
            if value is None:
                continue
            if self.extract is not None:
                value = self.extract(value, p)
            n_total += 1
            if self.predicate(value, p):
                n_pass += 1
        return (n_pass, n_total)

    def merge(self, a, b):
        return (a[0] + b[0], a[1] + b[1])

    def finalize(self, state) -> YieldResult:
        return YieldResult(n_pass=int(state[0]), n_total=int(state[1]))

    def describe(self) -> str:
        return (f"Yield(predicate={_describe_extract(self.predicate)}, "
                f"extract={_describe_extract(self.extract)})")


def describe_reducers(reducers: Optional[Dict[str, Reducer]]
                      ) -> Optional[Dict[str, str]]:
    """Checkpoint fingerprint of a reducer configuration (sorted by
    name; ``None`` for a dense sweep), so a journal written under one
    reducer setup is never consumed under another."""
    if reducers is None:
        return None
    return {name: reducers[name].describe() for name in sorted(reducers)}
