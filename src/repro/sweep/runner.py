"""Batched sweep execution over a :class:`ScenarioGrid`.

The runner partitions a grid's axes into structural (pipeline rebuild
per point) and batchable (same pipeline, many stimuli) and executes

    for each structural point:
        build the pipeline once
        stack every batchable stimulus into one WaveformBatch
        push the batch through the pipeline in one vectorized pass
        measure every row (batched measurement when available)

against which the equivalent serial loop (:meth:`SweepRunner.run_serial`)
is the reference: identical per-scenario numerics, one Python-level
simulation per point.  Structural points are independent, so they can
optionally fan out over a process pool.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..signals.batch import WaveformBatch
from ..signals.waveform import Waveform
from .grid import ScenarioGrid

__all__ = ["SweepRunner", "SweepResult", "closed_loop_cdr_measure",
           "dfe_measure"]


def closed_loop_cdr_measure(config, n_bits: Optional[int] = None,
                            reduce: Optional[Callable[[Any, Dict], Any]]
                            = None):
    """Build a ``(measure, measure_batch)`` pair running the bang-bang
    CDR closed-loop over every scenario.

    The batched half advances all of a structural point's scenarios
    through the CDR's batched kernel (the one ``repro.link`` drives) in
    one pass — the serial half (used by :meth:`SweepRunner.run_serial`)
    recovers each row on its own, and the two are row-exact by
    construction.

    ``reduce(result, params)`` maps each per-scenario
    :class:`~repro.cdr.CdrResult` to the value recorded in the
    :class:`SweepResult` (default: the result itself).  Pass both
    returned callables to the runner::

        measure, measure_batch = closed_loop_cdr_measure(
            CdrConfig(bit_rate=10e9),
            reduce=lambda r, p: r.is_locked)
        runner = SweepRunner(grid, stimulus=make_wave,
                             measure=measure, measure_batch=measure_batch)
    """
    from ..cdr import BangBangCdr

    cdr = BangBangCdr(config)

    def measure(wave: Waveform, params: Dict) -> Any:
        result = cdr.recover(wave, n_bits=n_bits)
        return reduce(result, params) if reduce is not None else result

    def measure_batch(batch: WaveformBatch,
                      params_list: List[Dict]) -> List[Any]:
        rows = cdr._recover_batch(batch, n_bits=n_bits).rows()
        if reduce is not None:
            return [reduce(row, params)
                    for row, params in zip(rows, params_list)]
        return rows

    return measure, measure_batch


def dfe_measure(dfe, skip_bits: int = 16,
                reduce: Optional[Callable[[Any, Dict], Any]] = None):
    """Build a ``(measure, measure_batch)`` pair running a
    :class:`~repro.baselines.dfe.DecisionFeedbackEqualizer` over every
    scenario.

    The batched half advances all of a structural point's scenarios
    through the DFE's batched kernel (the one ``repro.link`` drives) in
    one pass; the serial half (used by :meth:`SweepRunner.run_serial`)
    equalizes each row on its own, and the two are row-exact by
    construction.

    ``reduce((decisions, corrected), params)`` maps each scenario's DFE
    output to the value recorded in the :class:`SweepResult`; the
    default records the inner-eye height (worst-case vertical opening
    of the corrected samples after ``skip_bits``).  Pass both returned
    callables to the runner::

        measure, measure_batch = dfe_measure(dfe)
        runner = SweepRunner(grid, stimulus=make_wave,
                             measure=measure, measure_batch=measure_batch)
    """
    from ..baselines.dfe import inner_eye_height_from_corrected

    def measure(wave: Waveform, params: Dict) -> Any:
        decisions, corrected = dfe.equalize(wave)
        if reduce is not None:
            return reduce((decisions, corrected), params)
        return float(inner_eye_height_from_corrected(corrected, skip_bits))

    def measure_batch(batch: WaveformBatch,
                      params_list: List[Dict]) -> List[Any]:
        decisions, corrected = dfe._equalize_batch(batch)
        if reduce is not None:
            return [reduce((decisions[i], corrected[i]), params)
                    for i, params in enumerate(params_list)]
        heights = inner_eye_height_from_corrected(corrected, skip_bits)
        return [float(height) for height in heights]

    return measure, measure_batch


@dataclasses.dataclass
class SweepResult:
    """The outcome of a sweep, aligned with the grid's canonical order.

    ``params[i]`` is scenario ``i``'s full parameter dict and
    ``results[i]`` the measurement (or the processed
    :class:`~repro.signals.waveform.Waveform` when the runner has no
    measure function).
    """

    grid: ScenarioGrid
    params: List[Dict]
    results: List[Any]

    def __len__(self) -> int:
        return len(self.results)

    def values(self, extract: Callable[[Any], float]) -> np.ndarray:
        """Extract one float per scenario, shaped like the grid.

        ``extract`` maps a result to a number (e.g.
        ``lambda m: m.eye_height``); the returned array has
        ``grid.shape``.
        """
        flat = np.array([extract(result) for result in self.results],
                        dtype=float)
        return flat.reshape(self.grid.shape)

    def along(self, axis_name: str) -> Sequence:
        """The swept values of one axis (convenience for report tables)."""
        for axis in self.grid.axes:
            if axis.name == axis_name:
                return axis.values
        raise KeyError(f"no axis named {axis_name!r}")


def _apply(processor, wave):
    """Run a pipeline-ish object: a Block, anything with .process, a
    plain callable, or None (identity)."""
    if processor is None:
        return wave
    process = getattr(processor, "process", None)
    if process is not None:
        return process(wave)
    return processor(wave)


@dataclasses.dataclass
class SweepRunner:
    """Execute a scenario grid with one batched pass per structural point.

    Parameters
    ----------
    grid:
        The declared axes.
    stimulus:
        ``stimulus(params) -> Waveform`` builds one scenario's input from
        its full parameter dict.
    build:
        Optional ``build(structural_params) -> processor`` constructing
        the pipeline for one structural point; the processor may be a
        :class:`~repro.lti.blocks.Block`, any object with ``process``,
        or a plain callable.  ``None`` means the stimuli are measured
        directly (measurement-only sweeps).
    measure:
        Optional ``measure(wave, params) -> result`` applied to each
        processed scenario.  ``None`` returns the processed waveforms
        themselves.
    measure_batch:
        Optional fast path ``measure_batch(batch, params_list) ->
        sequence`` measuring a whole :class:`WaveformBatch` at once
        (e.g. :func:`~repro.analysis.eye.measure_eye_batch`); used by
        :meth:`run` instead of per-row ``measure`` when provided.
    processes:
        When > 1 and the grid has several structural points, fan the
        structural axis out over a process pool (the callables must be
        picklable, i.e. module-level).  Batchable axes always run
        vectorized inside each worker.
    chunk_rows:
        When set, each structural point's batchable scenarios run in
        bounded chunks of at most this many rows: stimuli are built,
        processed and measured chunk by chunk, so peak memory is
        ``O(chunk_rows * n_samples)`` per stage instead of one
        monolithic ``(n_batch_points, n_samples)`` pass — the knob
        that lets 100k+-point Monte Carlo axes run where the
        monolithic batch OOMs.  Every kernel in the library is
        row-independent, so results are row-exact vs the unchunked
        run (a custom ``measure_batch`` must preserve that row
        independence).
    """

    grid: ScenarioGrid
    stimulus: Callable[[Dict], Waveform]
    build: Optional[Callable[[Dict], Any]] = None
    measure: Optional[Callable[[Waveform, Dict], Any]] = None
    measure_batch: Optional[Callable[[WaveformBatch, List[Dict]], Sequence]] \
        = None
    processes: Optional[int] = None
    chunk_rows: Optional[int] = None

    def __post_init__(self) -> None:
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise ValueError(
                f"chunk_rows must be >= 1, got {self.chunk_rows}"
            )

    # -- batched engine ----------------------------------------------------
    def _measure_chunk(self, processor, full_params: List[Dict]
                       ) -> List[Any]:
        """Build + process + measure one bounded group of scenarios."""
        waves = [self.stimulus(p) for p in full_params]
        batch = WaveformBatch.stack(waves)
        out = _apply(processor, batch)
        if not isinstance(out, WaveformBatch):
            raise TypeError(
                f"processor returned {type(out).__name__}; pipelines must "
                "be batch-transparent"
            )
        if self.measure_batch is not None:
            values = list(self.measure_batch(out, full_params))
            if len(values) != len(full_params):
                raise ValueError(
                    f"measure_batch returned {len(values)} results for "
                    f"{len(full_params)} scenarios"
                )
            return values
        if self.measure is not None:
            return [self.measure(row, p)
                    for row, p in zip(out.rows(), full_params)]
        return out.rows()

    def _run_structural_point(self, structural_params: Dict
                              ) -> List[Any]:
        """One pipeline build + one (possibly chunked) batched pass."""
        batch_points = list(self.grid.batch_points())
        full_params = [{**structural_params, **bp} for bp in batch_points]
        processor = (self.build(structural_params)
                     if self.build is not None else None)
        step = self.chunk_rows
        if step is None or step >= len(full_params):
            return self._measure_chunk(processor, full_params)
        values: List[Any] = []
        for start in range(0, len(full_params), step):
            values.extend(self._measure_chunk(
                processor, full_params[start:start + step]))
        return values

    def run(self) -> SweepResult:
        """Execute the sweep with the batched engine."""
        structural_points = list(self.grid.structural_points())
        per_point: List[List[Any]]
        if self.processes and self.processes > 1 \
                and len(structural_points) > 1:
            per_point = self._run_pool(structural_points)
        else:
            per_point = [self._run_structural_point(sp)
                         for sp in structural_points]
        return self._gather(structural_points, per_point)

    def _run_pool(self, structural_points: List[Dict]) -> List[List[Any]]:
        """Fan structural points out over a process pool.

        Falls back to in-process execution when the runner's callables
        cannot cross a process boundary (lambdas/closures).
        """
        import concurrent.futures
        import pickle

        try:
            pickle.dumps(self)
        except Exception:
            return [self._run_structural_point(sp)
                    for sp in structural_points]
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=self.processes) as pool:
            return list(pool.map(self._run_structural_point,
                                 structural_points))

    # -- serial reference --------------------------------------------------
    def run_serial(self) -> SweepResult:
        """The equivalent per-waveform loop (reference implementation).

        Builds each structural point's pipeline once (as any careful
        hand-written loop would) but simulates and measures every
        scenario individually.  Row ``i`` of :meth:`run` matches this
        path to machine precision.
        """
        structural_points = list(self.grid.structural_points())
        batch_points = list(self.grid.batch_points())
        per_point: List[List[Any]] = []
        for sp in structural_points:
            processor = self.build(sp) if self.build is not None else None
            values: List[Any] = []
            for bp in batch_points:
                params = {**sp, **bp}
                out = _apply(processor, self.stimulus(params))
                if self.measure is not None:
                    values.append(self.measure(out, params))
                elif self.measure_batch is not None:
                    single = WaveformBatch(out.data[np.newaxis, :],
                                           out.sample_rate, t0=out.t0)
                    values.append(self.measure_batch(single, [params])[0])
                else:
                    values.append(out)
            per_point.append(values)
        return self._gather(structural_points, per_point)

    # -- assembly ----------------------------------------------------------
    def _gather(self, structural_points: List[Dict],
                per_point: List[List[Any]]) -> SweepResult:
        """Scatter per-structural-point results into canonical order.

        Indices are computed positionally (the structural/batch point
        enumerations are row-major over their axes), so axes with
        repeated values still map every scenario to its own slot.
        """
        grid = self.grid
        structural_sizes = [len(axis) for axis in grid.structural_axes()]
        batch_sizes = [len(axis) for axis in grid.batch_axes()]
        structural_names = {axis.name for axis in grid.structural_axes()}

        def unravel(flat: int, sizes: List[int]) -> Dict[int, int]:
            indices: List[int] = []
            for size in reversed(sizes):
                indices.append(flat % size)
                flat //= size
            return list(reversed(indices))

        n = grid.n_scenarios
        params: List[Optional[Dict]] = [None] * n
        results: List[Any] = [None] * n
        batch_points = list(grid.batch_points())
        for si, (sp, values) in enumerate(zip(structural_points, per_point)):
            s_indices = iter(unravel(si, structural_sizes))
            s_by_name = {axis.name: next(s_indices)
                         for axis in grid.structural_axes()}
            for bi, (bp, value) in enumerate(zip(batch_points, values)):
                b_indices = iter(unravel(bi, batch_sizes))
                b_by_name = {axis.name: next(b_indices)
                             for axis in grid.batch_axes()}
                index = 0
                for axis in grid.axes:
                    axis_index = (s_by_name[axis.name]
                                  if axis.name in structural_names
                                  else b_by_name[axis.name])
                    index = index * len(axis) + axis_index
                params[index] = {**sp, **bp}
                results[index] = value
        return SweepResult(grid=self.grid, params=params, results=results)
