"""Batched sweep execution over a :class:`ScenarioGrid`.

The runner partitions a grid's axes into structural (pipeline rebuild
per point) and batchable (same pipeline, many stimuli) and executes

    for each structural point:
        build the pipeline once
        stack every batchable stimulus into one WaveformBatch
        push the batch through the pipeline in one vectorized pass
        measure every row (batched measurement when available)

against which the equivalent serial loop (:meth:`SweepRunner.run_serial`)
is the reference: identical per-scenario numerics, one Python-level
simulation per point.

Execution is organised in **units** — one (structural point, row-chunk)
each, ``chunk_rows`` rows per chunk — which are the granularity of
everything reliability-related:

* **checkpoint/resume** — ``run(checkpoint_dir=...)`` journals every
  finished unit (:mod:`repro.sweep.checkpoint`) and skips journaled
  units on the next run, so an interrupted million-point sweep restarts
  where it died and the merged result is bit-exact vs an uninterrupted
  run;
* **supervised pooling** — with ``processes > 1`` units are submitted
  individually to a process pool with a configurable per-unit
  ``timeout``, bounded retries with exponential backoff, and
  ``BrokenProcessPool`` recovery (respawn, requeue, re-attribute by
  isolating the suspects); if the pool keeps breaking without an
  attributable culprit the runner falls back to in-process execution
  with a ``RuntimeWarning`` — loudly, never silently;
* **quarantine** — with ``on_error="quarantine"``, a unit that keeps
  failing (exception, timeout, worker crash, or non-finite output
  under the opt-in ``nan_guard``) is bisected down to the offending
  rows, which are recorded as :class:`SweepFailure` entries on
  :attr:`SweepResult.failures` while every healthy row still
  completes.

The deterministic fault-injection harness in :mod:`repro.sweep.faults`
(env-gated via ``REPRO_SWEEP_FAULTS``) exercises all of the above in
CI.
"""

from __future__ import annotations

import collections
import dataclasses
import pickle
import time
import traceback as _traceback
import warnings
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..signals.batch import WaveformBatch
from ..signals.waveform import Waveform
from . import faults as _faults
from .checkpoint import CheckpointJournal, describe_callable, describe_grid
from .grid import ScenarioGrid
from .reducers import Reducer, describe_reducers

__all__ = ["SweepRunner", "SweepResult", "SweepFailure",
           "closed_loop_cdr_measure", "dfe_measure"]


def closed_loop_cdr_measure(config, n_bits: Optional[int] = None,
                            reduce: Optional[Callable[[Any, Dict], Any]]
                            = None):
    """Build a ``(measure, measure_batch)`` pair running the bang-bang
    CDR closed-loop over every scenario.

    The batched half advances all of a structural point's scenarios
    through the CDR's batched kernel (the one ``repro.link`` drives) in
    one pass — the serial half (used by :meth:`SweepRunner.run_serial`)
    recovers each row on its own, and the two are row-exact by
    construction.

    ``reduce(result, params)`` maps each per-scenario
    :class:`~repro.cdr.CdrResult` to the value recorded in the
    :class:`SweepResult` (default: the result itself).  Pass both
    returned callables to the runner::

        measure, measure_batch = closed_loop_cdr_measure(
            CdrConfig(bit_rate=10e9),
            reduce=lambda r, p: r.is_locked)
        runner = SweepRunner(grid, stimulus=make_wave,
                             measure=measure, measure_batch=measure_batch)
    """
    from ..cdr import BangBangCdr

    cdr = BangBangCdr(config)

    def measure(wave: Waveform, params: Dict) -> Any:
        result = cdr.recover(wave, n_bits=n_bits)
        return reduce(result, params) if reduce is not None else result

    def measure_batch(batch: WaveformBatch,
                      params_list: List[Dict]) -> List[Any]:
        rows = cdr._recover_batch(batch, n_bits=n_bits).rows()
        if reduce is not None:
            return [reduce(row, params)
                    for row, params in zip(rows, params_list)]
        return rows

    return measure, measure_batch


def dfe_measure(dfe, skip_bits: int = 16,
                reduce: Optional[Callable[[Any, Dict], Any]] = None):
    """Build a ``(measure, measure_batch)`` pair running a
    :class:`~repro.baselines.dfe.DecisionFeedbackEqualizer` over every
    scenario.

    The batched half advances all of a structural point's scenarios
    through the DFE's batched kernel (the one ``repro.link`` drives) in
    one pass; the serial half (used by :meth:`SweepRunner.run_serial`)
    equalizes each row on its own, and the two are row-exact by
    construction.

    ``reduce((decisions, corrected), params)`` maps each scenario's DFE
    output to the value recorded in the :class:`SweepResult`; the
    default records the inner-eye height (worst-case vertical opening
    of the corrected samples after ``skip_bits``).  Pass both returned
    callables to the runner::

        measure, measure_batch = dfe_measure(dfe)
        runner = SweepRunner(grid, stimulus=make_wave,
                             measure=measure, measure_batch=measure_batch)
    """
    from ..baselines.dfe import inner_eye_height_from_corrected

    def measure(wave: Waveform, params: Dict) -> Any:
        decisions, corrected = dfe.equalize(wave)
        if reduce is not None:
            return reduce((decisions, corrected), params)
        return float(inner_eye_height_from_corrected(corrected, skip_bits))

    def measure_batch(batch: WaveformBatch,
                      params_list: List[Dict]) -> List[Any]:
        decisions, corrected = dfe._equalize_batch(batch)
        if reduce is not None:
            return [reduce((decisions[i], corrected[i]), params)
                    for i, params in enumerate(params_list)]
        heights = inner_eye_height_from_corrected(corrected, skip_bits)
        return [float(height) for height in heights]

    return measure, measure_batch


@dataclasses.dataclass(frozen=True)
class SweepFailure:
    """One quarantined scenario: the row that kept failing after the
    retry budget (and, for multi-row units, the bisection) ran out.

    ``kind`` is ``"exception"``, ``"timeout"``, ``"crash"`` or
    ``"non-finite"``; ``error`` / ``traceback`` carry what could be
    captured (worker crashes leave no traceback), and ``attempts`` is
    how many times the final single-row unit was tried.
    """

    params: Dict
    kind: str
    error: str
    traceback: str = ""
    attempts: int = 1


@dataclasses.dataclass
class SweepResult:
    """The outcome of a sweep, aligned with the grid's canonical order.

    ``params[i]`` is scenario ``i``'s full parameter dict and
    ``results[i]`` the measurement (or the processed
    :class:`~repro.signals.waveform.Waveform` when the runner has no
    measure function).  Scenarios quarantined by the reliability layer
    have ``results[i] is None`` and a matching :class:`SweepFailure`
    entry in :attr:`failures` (empty for fully healthy sweeps).

    A runner configured with streaming ``reducers`` additionally
    finalizes them into :attr:`aggregates` (reducer name → finalized
    value); with ``keep_results=False`` the dense ``params`` /
    ``results`` lists are not retained at all (both ``None``) and the
    aggregates are the entire product of the sweep — the shape that
    keeps a million-scenario study's memory flat.
    """

    grid: ScenarioGrid
    params: Optional[List[Dict]]
    results: Optional[List[Any]]
    failures: List[SweepFailure] = dataclasses.field(default_factory=list)
    aggregates: Optional[Dict[str, Any]] = None

    def __len__(self) -> int:
        if self.results is None:
            return self.grid.n_scenarios
        return len(self.results)

    def values(self, extract: Callable[[Any], float], *,
               strict: bool = False) -> np.ndarray:
        """Extract one float per scenario, shaped like the grid.

        ``extract`` maps a result to a number (e.g.
        ``lambda m: m.eye_height``); the returned array has
        ``grid.shape``.  Quarantined scenarios (``results[i] is
        None``) become ``nan`` so a partially failed sweep still
        reduces cleanly; pass ``strict=True`` to raise instead, with
        the failed scenarios' parameters listed.  An ``extract`` that
        raises is re-raised as a :class:`RuntimeError` naming the
        offending scenario's parameters (chained to the original), so
        a million-row reduction never dies anonymously.
        """
        if self.results is None:
            raise ValueError(
                "this sweep ran with keep_results=False: per-row results "
                "were never retained — read the streaming aggregates from "
                ".aggregates instead"
            )
        if strict and self.failures:
            shown = [f"{failure.params!r} [{failure.kind}: {failure.error}]"
                     for failure in self.failures[:8]]
            more = len(self.failures) - len(shown)
            raise ValueError(
                f"{len(self.failures)} scenario(s) failed: "
                + "; ".join(shown)
                + (f"; ... and {more} more" if more > 0 else "")
            )
        flat = np.empty(len(self.results), dtype=float)
        for i, result in enumerate(self.results):
            if result is None:
                flat[i] = np.nan
                continue
            try:
                flat[i] = extract(result)
            except Exception as error:
                params = self.params[i] if self.params is not None else "?"
                raise RuntimeError(
                    f"extract failed for scenario {i} with params "
                    f"{params!r}: {error!r}"
                ) from error
        return flat.reshape(self.grid.shape)

    def along(self, axis_name: str) -> Sequence:
        """The swept values of one axis (convenience for report tables)."""
        for axis in self.grid.axes:
            if axis.name == axis_name:
                return axis.values
        raise KeyError(
            f"no axis named {axis_name!r}; available axes: "
            f"{[axis.name for axis in self.grid.axes]}"
        )


def _apply(processor, wave):
    """Run a pipeline-ish object: a Block, anything with .process, a
    plain callable, or None (identity)."""
    if processor is None:
        return wave
    process = getattr(processor, "process", None)
    if process is not None:
        return process(wave)
    return processor(wave)


# ---------------------------------------------------------------------------
# Execution units: the granularity of checkpointing, retries, quarantine.
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class _Unit:
    """One (structural point, row-chunk) of work.

    ``[start, stop)`` are batch-point indices within the structural
    point; :attr:`full_params` materializes the complete parameter dict
    of each row *on demand* from the grid (``O(n_rows)`` dicts per
    access, discarded with the unit's chunk), so the planned unit list
    costs ``O(n_units)`` — not ``O(n_scenarios)`` parameter dicts held
    for the whole sweep, which is what lets a ``keep_results=False``
    run stay memory-flat in scenario count.  ``attempts`` counts failed
    tries; ``suspect`` marks units that crashed or timed out and must
    therefore run isolated (sole in-flight unit) so the next failure is
    attributable.
    """

    si: int
    structural_params: Dict
    start: int
    stop: int
    grid: ScenarioGrid
    attempts: int = 0
    suspect: bool = False

    @property
    def full_params(self) -> List[Dict]:
        return [{**self.structural_params, **bp}
                for bp in self.grid.batch_points_slice(self.start,
                                                       self.stop)]

    @property
    def n_rows(self) -> int:
        return self.stop - self.start

    @property
    def key(self):
        return (self.si, self.start, self.stop)

    @property
    def journal_key(self) -> str:
        return f"{self.si}-{self.start}-{self.stop}"

    def split(self) -> "List[_Unit]":
        """Bisect into two fresh-budget halves (quarantine narrowing)."""
        mid = self.start + self.n_rows // 2
        return [
            _Unit(self.si, self.structural_params, self.start, mid,
                  self.grid, suspect=self.suspect),
            _Unit(self.si, self.structural_params, mid, self.stop,
                  self.grid, suspect=self.suspect),
        ]


@dataclasses.dataclass
class _UnitOutcome:
    """A resolved unit: per-row values (None where quarantined; the
    whole list is None under ``keep_results=False``), the quarantine
    records, and — when reducers are configured — the unit's streaming
    partials (reducer name → mergeable state)."""

    unit: _Unit
    values: Optional[List[Any]]
    failures: List[SweepFailure]
    partials: Optional[Dict[str, Any]] = None


def _execute_unit(runner: "SweepRunner", unit: _Unit) -> List[Any]:
    """Worker-side execution of one unit (also the in-process kernel).

    Module-level so the process pool can pickle it by reference; the
    fault hooks are no-ops unless ``REPRO_SWEEP_FAULTS`` is set.
    """
    _faults.on_unit_start(unit.key)
    processor = (runner.build(unit.structural_params)
                 if runner.build is not None else None)
    values = runner._measure_chunk(processor, unit.full_params)
    return _faults.on_unit_values(unit.key, values)


def _has_nonfinite(value) -> bool:
    """Best-effort non-finite detection over the value shapes sweeps
    produce: numbers, ndarrays, waveforms (``.data``), and
    tuples/lists of those.  Opaque objects are assumed finite."""
    if value is None:
        return False
    if isinstance(value, (int, float, complex, np.number)):
        return not bool(np.all(np.isfinite(value)))
    if isinstance(value, np.ndarray):
        if not np.issubdtype(value.dtype, np.number):
            return False
        return not bool(np.all(np.isfinite(value)))
    data = getattr(value, "data", None)
    if isinstance(data, np.ndarray) and np.issubdtype(data.dtype, np.number):
        return not bool(np.all(np.isfinite(data)))
    if isinstance(value, (tuple, list)):
        return any(_has_nonfinite(item) for item in value)
    return False


def _picklable(obj) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except (pickle.PicklingError, TypeError, AttributeError):
        return False


@dataclasses.dataclass
class SweepRunner:
    """Execute a scenario grid with one batched pass per structural point.

    Parameters
    ----------
    grid:
        The declared axes.
    stimulus:
        ``stimulus(params) -> Waveform`` builds one scenario's input from
        its full parameter dict.
    build:
        Optional ``build(structural_params) -> processor`` constructing
        the pipeline for one structural point; the processor may be a
        :class:`~repro.lti.blocks.Block`, any object with ``process``,
        or a plain callable.  ``None`` means the stimuli are measured
        directly (measurement-only sweeps).
    measure:
        Optional ``measure(wave, params) -> result`` applied to each
        processed scenario.  ``None`` returns the processed waveforms
        themselves.
    measure_batch:
        Optional fast path ``measure_batch(batch, params_list) ->
        sequence`` measuring a whole :class:`WaveformBatch` at once
        (e.g. :func:`~repro.analysis.eye.measure_eye_batch`); used by
        :meth:`run` instead of per-row ``measure`` when provided.
    processes:
        When > 1 and the sweep has several execution units, fan the
        units out over a supervised process pool (the callables must
        be picklable, i.e. module-level; a non-picklable runner warns
        and runs in-process).  With ``chunk_rows`` set this
        parallelizes batchable chunks too, not just structural points.
    chunk_rows:
        When set, each structural point's batchable scenarios run in
        bounded chunks of at most this many rows: stimuli are built,
        processed and measured chunk by chunk, so peak memory is
        ``O(chunk_rows * n_samples)`` per stage instead of one
        monolithic ``(n_batch_points, n_samples)`` pass — the knob
        that lets 100k+-point Monte Carlo axes run where the
        monolithic batch OOMs.  Every kernel in the library is
        row-independent, so results are row-exact vs the unchunked
        run (a custom ``measure_batch`` must preserve that row
        independence).  Chunks are also the unit of checkpointing,
        retries and quarantine.  Under a pool, ``build`` runs once per
        chunk (workers cannot share a processor).
    timeout:
        Per-unit wall-clock budget in seconds (pool mode only; a hung
        unit cannot be interrupted in-process).  On expiry the pool is
        torn down — hung workers are killed, never joined — in-flight
        innocents are requeued without penalty, and the timed-out unit
        is retried.
    max_attempts:
        Tries per unit before it is given up (then bisected /
        quarantined under ``on_error="quarantine"``, or raised under
        ``"raise"``).
    retry_backoff_s:
        Base of the exponential backoff between retries of one unit
        (``retry_backoff_s * 2**(attempt-1)`` seconds).
    nan_guard:
        Opt-in guard: after a unit is measured, rows whose values
        contain non-finite floats count as failures (and are
        eventually quarantined row-exactly), instead of silently
        poisoning downstream aggregation.
    on_error:
        ``"raise"`` (default): scenario-level exceptions propagate
        immediately, and infrastructure failures (worker crash,
        timeout) raise after the retry budget.  ``"quarantine"``:
        every kind of persistent failure is narrowed to the offending
        rows and recorded on :attr:`SweepResult.failures` while the
        healthy rows complete.
    reducers:
        Optional mapping of name → :class:`~repro.sweep.reducers.Reducer`
        aggregated online over every measured scenario: each finished
        unit's values fold into a constant-size partial, partials merge
        in canonical unit order (so pool completion order, retries and
        checkpoint resume cannot change the result), and the finalized
        values land on :attr:`SweepResult.aggregates`.  Requires a
        ``measure`` / ``measure_batch`` — reducing over raw processed
        waveforms is rejected.
    keep_results:
        ``True`` (default): retain the dense per-scenario ``params`` /
        ``results`` lists exactly as before — the bit-exact legacy
        path.  ``False`` (requires ``reducers``): drop every row after
        it has been folded into the reducer partials, so supervisor
        memory stays flat in scenario count — the shape a
        million-point Monte Carlo study needs.
    """

    grid: ScenarioGrid
    stimulus: Callable[[Dict], Waveform]
    build: Optional[Callable[[Dict], Any]] = None
    measure: Optional[Callable[[Waveform, Dict], Any]] = None
    measure_batch: Optional[Callable[[WaveformBatch, List[Dict]], Sequence]] \
        = None
    processes: Optional[int] = None
    chunk_rows: Optional[int] = None
    timeout: Optional[float] = None
    max_attempts: int = 3
    retry_backoff_s: float = 0.25
    nan_guard: bool = False
    on_error: str = "raise"
    reducers: Optional[Dict[str, Reducer]] = None
    keep_results: bool = True

    def __post_init__(self) -> None:
        if self.chunk_rows is not None and self.chunk_rows < 1:
            raise ValueError(
                f"chunk_rows must be >= 1, got {self.chunk_rows}"
            )
        if self.processes is not None and self.processes < 0:
            raise ValueError(
                f"processes must be >= 0, got {self.processes} "
                "(None/0/1 run in-process; > 1 fans out over a pool)"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}"
            )
        if self.on_error not in ("raise", "quarantine"):
            raise ValueError(
                f"on_error must be 'raise' or 'quarantine', "
                f"got {self.on_error!r}"
            )
        if self.reducers is not None:
            if not self.reducers:
                raise ValueError(
                    "reducers must name at least one reducer (pass "
                    "reducers=None for a dense sweep)"
                )
            if self.measure is None and self.measure_batch is None:
                raise ValueError(
                    "reducers need a measure/measure_batch: without one "
                    "the sweep's per-row results are raw processed "
                    "Waveforms, and streaming reducers aggregate "
                    "numbers, not waveforms — pass measure= (e.g. an eye "
                    "metric) or drop reducers="
                )
            for name, reducer in self.reducers.items():
                missing = [method for method in
                           ("init", "update", "merge", "finalize")
                           if not callable(getattr(reducer, method, None))]
                if missing:
                    raise TypeError(
                        f"reducer {name!r} ({type(reducer).__name__}) does "
                        f"not satisfy the Reducer protocol: missing "
                        f"{missing} — see repro.sweep.reducers"
                    )
        if not self.keep_results and self.reducers is None:
            raise ValueError(
                "keep_results=False without reducers would discard every "
                "result and aggregate nothing — pass reducers= (see "
                "repro.sweep.reducers) or keep keep_results=True"
            )

    # -- batched engine ----------------------------------------------------
    def _measure_chunk(self, processor, full_params: List[Dict]
                       ) -> List[Any]:
        """Build + process + measure one bounded group of scenarios."""
        waves = [self.stimulus(p) for p in full_params]
        batch = WaveformBatch.stack(waves)
        out = _apply(processor, batch)
        if not isinstance(out, WaveformBatch):
            raise TypeError(
                f"processor returned {type(out).__name__}; pipelines must "
                "be batch-transparent"
            )
        if self.measure_batch is not None:
            values = list(self.measure_batch(out, full_params))
            if len(values) != len(full_params):
                raise ValueError(
                    f"measure_batch returned {len(values)} results for "
                    f"{len(full_params)} scenarios"
                )
            return values
        if self.measure is not None:
            return [self.measure(row, p)
                    for row, p in zip(out.rows(), full_params)]
        return out.rows()

    def run(self, *, checkpoint_dir=None) -> SweepResult:
        """Execute the sweep with the batched engine.

        ``checkpoint_dir`` enables the resume journal: every finished
        unit is recorded there and already-journaled units are skipped,
        so re-invoking an interrupted sweep with the same arguments
        completes only the missing work and the merged result is
        bit-exact vs an uninterrupted run (the journal is keyed by a
        canonical hash of the grid + runner config, so a mismatched
        runner never reuses stale entries).
        """
        structural_points = list(self.grid.structural_points())
        n_batch = self.grid.n_batch_scenarios()
        units = self._plan_units(structural_points, n_batch)
        journal = (CheckpointJournal.open(checkpoint_dir,
                                          self._fingerprint())
                   if checkpoint_dir is not None else None)
        outcomes: List[_UnitOutcome] = []
        todo: List[_Unit] = []
        if journal is not None:
            present = {tuple(int(part) for part in key.split("-"))
                       for key in journal.unit_keys()}
            for unit in units:
                covered = self._load_covering(unit, journal, present)
                if covered is None:
                    todo.append(unit)
                else:
                    outcomes.extend(covered)
        else:
            todo = units
        if todo:
            if self._use_pool(todo):
                outcomes.extend(_PoolSupervisor(self, journal).run(todo))
            else:
                outcomes.extend(self._run_units_inprocess(todo, journal))
        return self._assemble(structural_points, n_batch, outcomes)

    # -- unit planning / merging -------------------------------------------
    def _plan_units(self, structural_points: List[Dict],
                    n_batch: int) -> List[_Unit]:
        step = self.chunk_rows or n_batch
        units: List[_Unit] = []
        for si, sp in enumerate(structural_points):
            for start in range(0, n_batch, step):
                stop = min(start + step, n_batch)
                units.append(_Unit(si, sp, start, stop, self.grid))
        return units

    def _fingerprint(self) -> Dict[str, Any]:
        """What the checkpoint journal keys on: everything that
        determines a unit's identity and results — including the
        failure policy (``on_error`` / ``max_attempts`` / ``timeout``),
        so e.g. quarantine decisions journaled by an
        ``on_error="quarantine"`` run are never replayed as silent
        ``None`` rows under ``on_error="raise"``, and (version 3) the
        streaming-aggregation config (``reducers`` / ``keep_results``),
        so a journal written by a dense run is never consumed by a
        streaming run or vice versa."""
        return {
            "version": 3,
            "grid": describe_grid(self.grid),
            "stimulus": describe_callable(self.stimulus),
            "build": describe_callable(self.build),
            "measure": describe_callable(self.measure),
            "measure_batch": describe_callable(self.measure_batch),
            "chunk_rows": self.chunk_rows,
            "nan_guard": self.nan_guard,
            "on_error": self.on_error,
            "max_attempts": self.max_attempts,
            "timeout": self.timeout,
            "reducers": describe_reducers(self.reducers),
            "keep_results": self.keep_results,
        }

    def _load_covering(self, unit: _Unit, journal: CheckpointJournal,
                       present) -> Optional[List[_UnitOutcome]]:
        """Journaled outcomes covering ``unit``, or None to re-run it.

        Quarantine bisection journals *sub*-units (``0-4-5``/``0-5-6``
        instead of ``0-4-6``), so a resume must recurse down the
        deterministic split tree before declaring a unit missing —
        otherwise replaying a sweep with quarantined rows would re-run
        (and potentially un-quarantine) them.  ``present`` is a
        snapshot of the journal's ``(si, start, stop)`` keys, so a
        fresh journal costs set lookups, not a file probe per node of
        the split tree.
        """
        if (unit.si, unit.start, unit.stop) in present:
            record = journal.load(unit.journal_key)
            if record is not None:
                return [_UnitOutcome(unit, record["values"],
                                     record["failures"],
                                     record.get("partials"))]
        if unit.n_rows <= 1:
            return None
        if not any(si == unit.si and unit.start <= start
                   and stop <= unit.stop
                   and (start, stop) != (unit.start, unit.stop)
                   for si, start, stop in present):
            return None
        parts = [self._load_covering(half, journal, present)
                 for half in unit.split()]
        if any(part is None for part in parts):
            return None
        return [outcome for part in parts for outcome in part]

    def _assemble(self, structural_points: List[Dict], n_batch: int,
                  outcomes: List[_UnitOutcome]) -> SweepResult:
        failures: List[SweepFailure] = []
        for outcome in outcomes:
            failures.extend(outcome.failures)
        # Execution order is nondeterministic under a pool; canonical
        # grid order keeps resumed-vs-uninterrupted comparisons exact.
        failures.sort(key=lambda f: self.grid.flat_index(f.params))
        aggregates = (self._finalize_aggregates(
                          outcome.partials for outcome in sorted(
                              outcomes, key=lambda o: o.unit.key))
                      if self.reducers is not None else None)
        if not self.keep_results:
            return SweepResult(grid=self.grid, params=None, results=None,
                               failures=failures, aggregates=aggregates)
        per_point: List[List[Any]] = [[None] * n_batch
                                      for _ in structural_points]
        for outcome in outcomes:
            row = per_point[outcome.unit.si]
            for j, value in enumerate(outcome.values):
                row[outcome.unit.start + j] = value
        return self._gather(structural_points, per_point, failures,
                            aggregates)

    # -- streaming reduction -----------------------------------------------
    def _reduce_unit(self, values: List[Any],
                     full_params: List[Dict]) -> Dict[str, Any]:
        """Fold one finished unit's values into per-reducer partials
        (``None`` rows — quarantined scenarios — are the reducers'
        business to skip)."""
        return {name: reducer.update(reducer.init(), values, full_params)
                for name, reducer in self.reducers.items()}

    def _finalize_aggregates(self, partials_in_order) -> Dict[str, Any]:
        """Merge per-unit partials in canonical unit order and
        finalize.  The fixed merge order is what makes the aggregates
        independent of pool completion order and resume history."""
        states = {name: reducer.init()
                  for name, reducer in self.reducers.items()}
        for partials in partials_in_order:
            for name, reducer in self.reducers.items():
                states[name] = reducer.merge(states[name], partials[name])
        return {name: reducer.finalize(states[name])
                for name, reducer in self.reducers.items()}

    # -- pool / in-process selection ---------------------------------------
    def _use_pool(self, units: List[_Unit]) -> bool:
        if not self.processes or self.processes <= 1 or len(units) <= 1:
            return False
        try:
            pickle.dumps(self)
            return True
        except (pickle.PicklingError, TypeError, AttributeError) as error:
            bad = [name for name in ("stimulus", "build", "measure",
                                     "measure_batch")
                   if not _picklable(getattr(self, name))]
            named = ", ".join(bad) if bad else "the runner"
            warnings.warn(
                f"SweepRunner(processes={self.processes}) cannot fan out "
                f"to a process pool: {named} "
                f"{'are' if len(bad) > 1 else 'is'} not picklable "
                f"({error}); executing in-process instead.  Use "
                "module-level callables to enable the pool.",
                RuntimeWarning, stacklevel=3)
            return False

    # -- failure bookkeeping (shared by pool and in-process paths) ---------
    def _sleep_backoff(self, unit: _Unit) -> None:
        if unit.attempts and self.retry_backoff_s:
            time.sleep(self.retry_backoff_s * 2 ** (unit.attempts - 1))

    def _finish_unit(self, unit: _Unit, values: List[Any],
                     failures: List[SweepFailure],
                     sink: List[_UnitOutcome],
                     journal: Optional[CheckpointJournal]) -> None:
        partials = (self._reduce_unit(values, unit.full_params)
                    if self.reducers is not None else None)
        # keep_results=False is the whole point of streaming: the rows
        # are dropped here, right after folding into the partials, so
        # neither the outcome sink nor the journal ever holds them.
        kept = list(values) if self.keep_results else None
        outcome = _UnitOutcome(unit, kept, failures, partials)
        if journal is not None:
            journal.store(unit.journal_key, outcome.values,
                          outcome.failures, outcome.partials)
        sink.append(outcome)

    def _after_failed_attempt(self, unit: _Unit, kind: str, error: str,
                              tb: str, sink: List[_UnitOutcome],
                              journal: Optional[CheckpointJournal]
                              ) -> List[_Unit]:
        """One failed try: retry, bisect, or quarantine/raise.

        Returns the follow-up units to (re)queue; resolved single-row
        quarantines are appended to ``sink`` directly.
        """
        unit.attempts += 1
        if unit.attempts < self.max_attempts:
            return [unit]
        if self.on_error == "raise":
            raise RuntimeError(
                f"sweep unit (structural point {unit.si}, rows "
                f"[{unit.start}:{unit.stop})) failed after "
                f"{unit.attempts} attempt(s) [{kind}]: {error} — pass "
                "on_error='quarantine' to record persistent failures on "
                "SweepResult.failures instead"
            )
        if unit.n_rows > 1:
            return unit.split()
        failure = SweepFailure(params=dict(unit.full_params[0]), kind=kind,
                               error=error, traceback=tb,
                               attempts=unit.attempts)
        self._finish_unit(unit, [None], [failure], sink, journal)
        return []

    def _handle_values(self, unit: _Unit, values: List[Any],
                       sink: List[_UnitOutcome],
                       journal: Optional[CheckpointJournal]
                       ) -> List[_Unit]:
        """Resolve a successfully executed unit (NaN guard included)."""
        bad = ([j for j, value in enumerate(values) if _has_nonfinite(value)]
               if self.nan_guard else [])
        if not bad:
            self._finish_unit(unit, values, [], sink, journal)
            return []
        if self.on_error == "raise":
            raise ValueError(
                "nan_guard: non-finite output at scenario rows "
                f"{[unit.start + j for j in bad]} of structural point "
                f"{unit.si} — pass on_error='quarantine' to record them "
                "on SweepResult.failures instead"
            )
        unit.attempts += 1
        if unit.attempts < self.max_attempts:
            return [unit]
        kept = list(values)
        failures = []
        for j in bad:
            failures.append(SweepFailure(
                params=dict(unit.full_params[j]), kind="non-finite",
                error=f"non-finite measurement {values[j]!r}",
                attempts=unit.attempts))
            kept[j] = None
        self._finish_unit(unit, kept, failures, sink, journal)
        return []

    # -- in-process execution ----------------------------------------------
    def _run_units_inprocess(self, units: List[_Unit],
                             journal: Optional[CheckpointJournal]
                             ) -> List[_UnitOutcome]:
        outcomes: List[_UnitOutcome] = []
        processors: Dict[int, Any] = {}
        queue = collections.deque(units)
        while queue:
            unit = queue.popleft()
            self._sleep_backoff(unit)
            try:
                _faults.on_unit_start(unit.key)
                if unit.si not in processors:
                    # One build per structural point, as any careful
                    # hand-written loop would do.
                    processors[unit.si] = (
                        self.build(unit.structural_params)
                        if self.build is not None else None)
                values = _faults.on_unit_values(
                    unit.key,
                    self._measure_chunk(processors[unit.si],
                                        unit.full_params))
            except _faults.SweepAbort:
                raise
            except Exception as error:
                if self.on_error == "raise":
                    raise
                queue.extend(self._after_failed_attempt(
                    unit, "exception", repr(error),
                    _traceback.format_exc(), outcomes, journal))
                continue
            queue.extend(self._handle_values(unit, values, outcomes,
                                             journal))
        return outcomes

    # -- serial reference --------------------------------------------------
    def run_serial(self) -> SweepResult:
        """The equivalent per-waveform loop (reference implementation).

        Builds each structural point's pipeline once (as any careful
        hand-written loop would) but simulates and measures every
        scenario individually.  Row ``i`` of :meth:`run` matches this
        path to machine precision.  No reliability machinery: faults,
        retries and checkpoints are :meth:`run`'s business.
        """
        structural_points = list(self.grid.structural_points())
        batch_points = list(self.grid.batch_points())
        per_point: List[List[Any]] = []
        point_partials: List[Dict[str, Any]] = []
        for sp in structural_points:
            processor = self.build(sp) if self.build is not None else None
            values: List[Any] = []
            point_params: List[Dict] = []
            for bp in batch_points:
                params = {**sp, **bp}
                out = _apply(processor, self.stimulus(params))
                if self.measure is not None:
                    values.append(self.measure(out, params))
                elif self.measure_batch is not None:
                    single = WaveformBatch(out.data[np.newaxis, :],
                                           out.sample_rate, t0=out.t0)
                    values.append(self.measure_batch(single, [params])[0])
                else:
                    values.append(out)
                point_params.append(params)
            if self.reducers is not None:
                # One partial per structural point (the serial path has
                # no chunks); canonical-order merge in _finalize.
                point_partials.append(self._reduce_unit(values,
                                                        point_params))
            if self.keep_results:
                per_point.append(values)
        aggregates = (self._finalize_aggregates(point_partials)
                      if self.reducers is not None else None)
        if not self.keep_results:
            return SweepResult(grid=self.grid, params=None, results=None,
                               failures=[], aggregates=aggregates)
        return self._gather(structural_points, per_point, [], aggregates)

    # -- assembly ----------------------------------------------------------
    def _gather(self, structural_points: List[Dict],
                per_point: List[List[Any]],
                failures: List[SweepFailure],
                aggregates: Optional[Dict[str, Any]] = None) -> SweepResult:
        """Scatter per-structural-point results into canonical order.

        Indices are computed positionally (the structural/batch point
        enumerations are row-major over their axes), so axes with
        repeated values still map every scenario to its own slot.
        """
        grid = self.grid
        structural_sizes = [len(axis) for axis in grid.structural_axes()]
        batch_sizes = [len(axis) for axis in grid.batch_axes()]
        structural_names = {axis.name for axis in grid.structural_axes()}

        def unravel(flat: int, sizes: List[int]) -> Dict[int, int]:
            indices: List[int] = []
            for size in reversed(sizes):
                indices.append(flat % size)
                flat //= size
            return list(reversed(indices))

        n = grid.n_scenarios
        params: List[Optional[Dict]] = [None] * n
        results: List[Any] = [None] * n
        batch_points = list(grid.batch_points())
        for si, (sp, values) in enumerate(zip(structural_points, per_point)):
            s_indices = iter(unravel(si, structural_sizes))
            s_by_name = {axis.name: next(s_indices)
                         for axis in grid.structural_axes()}
            for bi, (bp, value) in enumerate(zip(batch_points, values)):
                b_indices = iter(unravel(bi, batch_sizes))
                b_by_name = {axis.name: next(b_indices)
                             for axis in grid.batch_axes()}
                index = 0
                for axis in grid.axes:
                    axis_index = (s_by_name[axis.name]
                                  if axis.name in structural_names
                                  else b_by_name[axis.name])
                    index = index * len(axis) + axis_index
                params[index] = {**sp, **bp}
                results[index] = value
        return SweepResult(grid=self.grid, params=params, results=results,
                           failures=failures, aggregates=aggregates)


# ---------------------------------------------------------------------------
# The supervised pool.
# ---------------------------------------------------------------------------

class _PoolSupervisor:
    """Per-unit supervised execution over a ProcessPoolExecutor.

    Replaces the old bare ``pool.map`` (where one dead or hung worker
    re-raised and discarded every completed structural point) with:

    * a sliding in-flight window of ``processes`` units, each with its
      own deadline when ``timeout`` is set;
    * ``BrokenProcessPool`` recovery — the pool is respawned and every
      in-flight unit requeued.  A wave-mode crash is unattributable
      (all pending futures break at once), so the requeued units are
      marked *suspect* and re-run one at a time; in isolation the next
      crash or timeout is attributable and charged to its unit's retry
      budget, which is what keeps innocent units from being punished
      for a neighbour's crash;
    * hung-worker teardown — a timed-out pool is discarded with its
      worker processes killed (never joined), so a hang can wedge
      neither the sweep nor interpreter shutdown;
    * an in-process fallthrough, with a ``RuntimeWarning``, when the
      pool breaks more than ``MAX_UNATTRIBUTED_BREAKS`` times without
      an attributable culprit (e.g. workers OOM-killed by the OS).
    """

    #: Unattributed pool breaks tolerated before giving up on pooling.
    MAX_UNATTRIBUTED_BREAKS = 3

    def __init__(self, runner: SweepRunner,
                 journal: Optional[CheckpointJournal]):
        self.runner = runner
        self.journal = journal
        self.outcomes: List[_UnitOutcome] = []
        self.pending: collections.deque = collections.deque()
        self.suspects: collections.deque = collections.deque()
        self.pool = None
        self.breaks = 0

    def run(self, units: List[_Unit]) -> List[_UnitOutcome]:
        for unit in units:
            (self.suspects if unit.suspect else self.pending).append(unit)
        try:
            while self.pending or self.suspects:
                if self.breaks > self.MAX_UNATTRIBUTED_BREAKS:
                    self._fall_through_in_process()
                    break
                if self.suspects:
                    self._pass(self.suspects, window=1)
                else:
                    self._pass(self.pending,
                               window=max(int(self.runner.processes), 1))
        except BaseException:
            # An exception is propagating (on_error="raise", abort,
            # KeyboardInterrupt): in-flight workers may be mid-unit or
            # hung, so kill them — a wait=True shutdown here would join
            # a hung worker and wedge the raise forever.
            self._discard_pool(kill=True)
            raise
        self._discard_pool(kill=False)
        return self.outcomes

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self):
        if self.pool is None:
            import concurrent.futures
            self.pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.runner.processes)
        return self.pool

    def _discard_pool(self, kill: bool) -> None:
        pool, self.pool = self.pool, None
        if pool is None:
            return
        if kill:
            # A hung worker cannot be cancelled through the executor
            # API and would be joined at interpreter exit — kill the
            # worker processes outright.  (_processes is private but
            # stable since 3.7; pebble/loky exist for this reason.)
            for process in list(getattr(pool, "_processes", {}).values()):
                process.kill()
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True)

    def _requeue(self, units: Sequence[_Unit]) -> None:
        for unit in units:
            (self.suspects if unit.suspect else self.pending).append(unit)

    # -- one scheduling pass -----------------------------------------------
    def _pass(self, queue: collections.deque, window: int) -> None:
        """Drain ``queue`` through the pool with ``window`` units in
        flight, returning early on a pool break or timeout (the outer
        loop respawns and continues)."""
        import concurrent.futures
        from concurrent.futures.process import BrokenProcessPool

        isolated = window == 1
        wave: Dict[Any, _Unit] = {}
        deadlines: Dict[Any, Optional[float]] = {}

        while queue or wave:
            while queue and len(wave) < window:
                unit = queue.popleft()
                self.runner._sleep_backoff(unit)
                try:
                    future = self._ensure_pool().submit(
                        _execute_unit, self.runner, unit)
                except BrokenProcessPool:
                    # The pool died between passes; requeue and respawn.
                    queue.appendleft(unit)
                    self._broken(wave, attributed=isolated)
                    return
                wave[future] = unit
                deadlines[future] = (
                    None if self.runner.timeout is None
                    else time.monotonic() + self.runner.timeout)

            bounded = [d for d in deadlines.values() if d is not None]
            wait_for = (max(0.0, min(bounded) - time.monotonic())
                        if bounded else None)
            done, _ = concurrent.futures.wait(
                list(wave), timeout=wait_for,
                return_when=concurrent.futures.FIRST_COMPLETED)
            # Broken futures last: when a crash takes the pool down,
            # results that did complete first are still harvested.
            for future in sorted(
                    done, key=lambda f: isinstance(f.exception(),
                                                   BrokenProcessPool)):
                unit = wave.pop(future)
                deadlines.pop(future)
                try:
                    values = future.result()
                except _faults.SweepAbort:
                    raise
                except BrokenProcessPool as error:
                    if isolated:
                        # Sole in-flight unit: the crash is its doing.
                        follow = self.runner._after_failed_attempt(
                            unit, "crash",
                            f"worker process died ({error})", "",
                            self.outcomes, self.journal)
                        for sub in follow:
                            sub.suspect = True
                        self._requeue(follow)
                        self._broken(wave, attributed=True)
                    else:
                        self.suspects.append(unit)
                        self._broken(wave, attributed=False)
                    return
                except Exception as error:
                    if self.runner.on_error == "raise":
                        raise
                    # format_exception chains into the _RemoteTraceback
                    # cause concurrent.futures attaches, so the quarantine
                    # record carries the worker-side traceback.
                    self._requeue(self.runner._after_failed_attempt(
                        unit, "exception", repr(error),
                        "".join(_traceback.format_exception(error)),
                        self.outcomes, self.journal))
                    continue
                unit.suspect = False  # proved healthy
                self._requeue(self.runner._handle_values(
                    unit, values, self.outcomes, self.journal))
            # Deadlines are checked every iteration — not only when the
            # pool went quiet — so a hung worker is charged on schedule
            # even while a steady stream of other units completes.
            now = time.monotonic()
            expired = [future for future, deadline in deadlines.items()
                       if deadline is not None and deadline <= now]
            if expired:
                self._timed_out(expired, wave)
                return

    # -- failure transitions -----------------------------------------------
    def _broken(self, wave: Dict[Any, _Unit], attributed: bool) -> None:
        """The pool died under ``wave``; requeue survivors as suspects."""
        for unit in wave.values():
            unit.suspect = True
            self.suspects.append(unit)
        wave.clear()
        if not attributed:
            self.breaks += 1
        self._discard_pool(kill=True)

    def _timed_out(self, expired: List[Any],
                   wave: Dict[Any, _Unit]) -> None:
        """Deadlines expired: charge the hung units, spare the rest.

        The pool is torn down (workers killed) *before* the expired
        units are charged: under ``on_error="raise"`` the charge
        raises once the retry budget is spent, and a still-live hung
        worker would then be joined during cleanup, wedging the sweep
        instead of raising.
        """
        self._discard_pool(kill=True)
        for future in expired:
            unit = wave.pop(future)
            follow = self.runner._after_failed_attempt(
                unit, "timeout",
                f"unit exceeded timeout={self.runner.timeout}s", "",
                self.outcomes, self.journal)
            for sub in follow:
                sub.suspect = True
            self._requeue(follow)
        # In-flight innocents are requeued without an attempt charge.
        self._requeue(wave.values())
        wave.clear()

    def _fall_through_in_process(self) -> None:
        remaining = list(self.suspects) + list(self.pending)
        self.suspects.clear()
        self.pending.clear()
        self._discard_pool(kill=True)
        warnings.warn(
            f"sweep process pool broke {self.breaks} times without an "
            f"attributable unit; executing the remaining {len(remaining)} "
            "unit(s) in-process (per-unit timeouts cannot be enforced "
            "in-process)",
            RuntimeWarning, stacklevel=2)
        self.outcomes.extend(
            self.runner._run_units_inprocess(remaining, self.journal))
