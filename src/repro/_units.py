"""Unit helpers and physical constants used across the library.

The library works in SI units everywhere (volts, amps, seconds, hertz,
farads, henries, ohms, metres).  These helpers exist so that parameter
values in circuit modules read like the paper: ``10 * GIGA`` bits per
second, ``4 * MILLI`` volts, ``0.18 * MICRO`` metres.
"""

from __future__ import annotations

import math

# SI prefixes -----------------------------------------------------------
TERA = 1e12
GIGA = 1e9
MEGA = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15
ATTO = 1e-18

# Physical constants ----------------------------------------------------
BOLTZMANN = 1.380649e-23
"""Boltzmann constant k_B in J/K."""

ELEMENTARY_CHARGE = 1.602176634e-19
"""Elementary charge q in coulombs."""

ZERO_CELSIUS = 273.15
"""0 degrees Celsius in kelvin."""

ROOM_TEMPERATURE = ZERO_CELSIUS + 27.0
"""The customary SPICE default simulation temperature (27 C) in kelvin."""


def thermal_voltage(temperature_k: float = ROOM_TEMPERATURE) -> float:
    """Return the thermal voltage kT/q in volts at ``temperature_k``.

    At room temperature this is the familiar ~25.9 mV.
    """
    if temperature_k <= 0:
        raise ValueError(f"temperature must be positive kelvin, got {temperature_k}")
    return BOLTZMANN * temperature_k / ELEMENTARY_CHARGE


def celsius_to_kelvin(celsius: float) -> float:
    """Convert a temperature from Celsius to kelvin."""
    return celsius + ZERO_CELSIUS


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert a temperature from kelvin to Celsius."""
    return kelvin - ZERO_CELSIUS


def db(ratio: float) -> float:
    """Express an amplitude ratio in decibels (20 log10)."""
    if ratio <= 0:
        raise ValueError(f"amplitude ratio must be positive, got {ratio}")
    return 20.0 * math.log10(ratio)


def db_power(ratio: float) -> float:
    """Express a power ratio in decibels (10 log10)."""
    if ratio <= 0:
        raise ValueError(f"power ratio must be positive, got {ratio}")
    return 10.0 * math.log10(ratio)


def from_db(decibels: float) -> float:
    """Convert an amplitude value in dB back into a linear ratio."""
    return 10.0 ** (decibels / 20.0)


def dbm_to_vpp(dbm: float, impedance_ohm: float = 50.0) -> float:
    """Convert a sine power in dBm into its peak-to-peak voltage.

    Useful when comparing against lab instrumentation conventions: a 0 dBm
    sine into 50 ohm is ~632 mVpp.
    """
    power_w = 1e-3 * 10.0 ** (dbm / 10.0)
    v_rms = math.sqrt(power_w * impedance_ohm)
    return 2.0 * math.sqrt(2.0) * v_rms


def vpp_to_dbm(vpp: float, impedance_ohm: float = 50.0) -> float:
    """Convert a sine peak-to-peak voltage into power in dBm."""
    if vpp <= 0:
        raise ValueError(f"peak-to-peak voltage must be positive, got {vpp}")
    v_rms = vpp / (2.0 * math.sqrt(2.0))
    power_w = v_rms**2 / impedance_ohm
    return 10.0 * math.log10(power_w / 1e-3)
