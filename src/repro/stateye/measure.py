"""Sweep integration: statistical eyes as a ``SweepRunner`` measure.

A stat-eye sweep sends one *difference* stimulus per scenario — the
lone-one pattern minus the all-zero baseline — through the chain, so
the processed waveform IS the pulse response for a linear chain (the
baseline subtraction commutes with every linear stage, start-up
transients included).  For chains with limiting stages use
:meth:`LinkSession.statistical_eye`, which measures stimulus-minus-
baseline through the full chain at its operating point instead.

The measure pair follows the repo's ``(measure, measure_batch)``
convention: the serial half analyzes one pulse at a time, the batched
half runs the engine's vectorized pass.  Pin the engine's
``v_half_span`` to make the two row-exact (otherwise each call sizes
its own voltage grid) and to keep grids comparable across structural
points (e.g. channel lengths) when reducers aggregate the outputs.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..analysis.isi import PulseResponse
from ..signals.batch import WaveformBatch
from ..signals.nrz import bits_to_nrz
from ..signals.waveform import Waveform
from .engine import StatEye

__all__ = ["stat_eye_stimulus", "stat_eye_measure"]


def stat_eye_stimulus(bit_rate: float, *, samples_per_bit: int = 32,
                      n_lead_bits: int = 8, n_lag_bits: int = 24,
                      amplitude: float = 1.0
                      ) -> Callable[[Dict], Waveform]:
    """Stimulus factory: the baseline-free lone-one pulse pattern.

    The returned closure builds ``...0001000... - ...0000000...`` at
    symbol rate ``bit_rate``; a batchable ``amplitude`` axis overrides
    the default per scenario.  Lead/lag bits bound the cursor span the
    downstream engine can observe — keep them >= the engine's
    ``n_precursors``/``n_postcursors``.
    """
    if n_lead_bits < 2 or n_lag_bits < 2:
        raise ValueError("need at least 2 lead and lag bits")

    bits = np.array([0] * n_lead_bits + [1] + [0] * n_lag_bits)
    zeros = np.zeros(len(bits), dtype=int)

    def stimulus(params: Dict) -> Waveform:
        swing = float(params.get("amplitude", amplitude))
        lone = bits_to_nrz(bits, bit_rate, amplitude=swing,
                           samples_per_bit=samples_per_bit)
        base = bits_to_nrz(zeros, bit_rate, amplitude=swing,
                           samples_per_bit=samples_per_bit)
        return Waveform(lone.data - base.data, lone.sample_rate)

    return stimulus


def stat_eye_measure(engine: StatEye, bit_rate: float, *,
                     chunk_scenarios: Optional[int] = None,
                     reduce: Optional[Callable[[Any, Dict], Any]] = None):
    """Build a ``(measure, measure_batch)`` pair running the
    statistical eye engine over every scenario.

    Each processed waveform is interpreted as a pulse response
    (:meth:`PulseResponse.from_waveform` — pair with
    :func:`stat_eye_stimulus`); the batched half feeds all of a
    structural point's scenarios through
    :meth:`StatEye.analyze_batch` in one vectorized pass.

    ``reduce(result, params)`` maps each per-scenario
    :class:`~repro.stateye.StatEyeResult` to the value recorded in the
    :class:`~repro.sweep.runner.SweepResult` (default: the result
    itself) — reduce to scalars (e.g. ``lambda r, p: r.ber``) when
    streaming through reducers.  Pass both returned callables to the
    runner::

        measure, measure_batch = stat_eye_measure(
            StatEye(noise_rms=5e-3, v_half_span=0.5), bit_rate=10e9,
            reduce=lambda r, p: r.ber)
        runner = SweepRunner(grid, stimulus=stat_eye_stimulus(10e9),
                             measure=measure, measure_batch=measure_batch)
    """

    def measure(wave: Waveform, params: Dict) -> Any:
        result = engine.analyze(PulseResponse.from_waveform(wave, bit_rate))
        return reduce(result, params) if reduce is not None else result

    def measure_batch(batch: WaveformBatch,
                      params_list: List[Dict]) -> List[Any]:
        pulses = [PulseResponse.from_waveform(batch[i], bit_rate)
                  for i in range(batch.n_scenarios)]
        rows = engine.analyze_batch(
            pulses, chunk_scenarios=chunk_scenarios).rows()
        if reduce is not None:
            return [reduce(row, params)
                    for row, params in zip(rows, params_list)]
        return rows

    return measure, measure_batch
