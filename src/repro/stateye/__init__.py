"""Statistical eye/BER engine (StatEye-style peak-distortion analysis).

The time-domain path (``repro.link``) estimates BER by simulating
patterns — exact waveform physics, but tails below ~1e-6 are
unreachable by construction.  This package computes the *exact* sampled
amplitude distribution from the single-symbol pulse response instead:
per-cursor ISI level-set PDFs convolved on a fixed voltage grid,
Gaussian noise and dual-Dirac + Gaussian jitter folded in, yielding
full per-sub-eye BER(t, v) surfaces, statistical eye contours, bathtub
curves and BERs down to the 1e-15 compliance tails — in milliseconds
per scenario, vectorized over batches.

Entry points:

* :class:`StatEye` — the engine (``analyze`` / ``analyze_batch``);
* :meth:`repro.link.LinkSession.statistical_eye` — the facade mode;
* :func:`stat_eye_measure` / :func:`stat_eye_stimulus` — the sweep
  measure pair for ``SweepRunner``/reducer aggregation;
* :class:`StatEyeResult` / :class:`StatEyeBatchResult` — typed results.
"""

from .engine import StatEye
from .measure import stat_eye_measure, stat_eye_stimulus
from .result import StatEyeBatchResult, StatEyeResult

__all__ = [
    "StatEye",
    "StatEyeResult",
    "StatEyeBatchResult",
    "stat_eye_measure",
    "stat_eye_stimulus",
]
