"""The statistical eye/BER engine: exact ISI-PDF convolution.

Pattern simulation estimates BER by counting errors, so observing a
compliance-grade tail (1e-12..1e-15) needs ~10/BER transmitted bits —
physically unreachable.  The statistical (StatEye/peak-distortion) view
computes the same distribution in closed form from the *single-symbol
pulse response*:

* For a linear chain, the received waveform is the superposition
  ``v(t) = sum_k l_{s_k} * p(t - k*UI)`` of one pulse response ``p``
  per transmitted symbol, with ``l`` the normalized modulation levels
  (the repo's encoders satisfy this identity exactly away from the
  stream edges, including the tanh-edge encoder — the edge transitions
  telescope).
* Sampling at phase ``t`` therefore sees the main cursor ``l_0 * c_0(t)``
  plus the ISI sum over neighbouring cursors ``c_k(t) = p(t + k*UI)``.
  With i.i.d. equiprobable symbols each cursor contributes an
  independent ``L``-point amplitude distribution, and the exact ISI
  voltage PDF is the discrete convolution of those per-cursor level
  sets on a fixed voltage grid.
* Gaussian noise multiplies in as its characteristic function; RJ/DJ
  jitter folds in along the (periodic) phase axis as a circular
  convolution with the dual-Dirac + Gaussian timing kernel.

Each cursor's ``L``-spike distribution is deposited on the voltage grid
with sum-preserving linear splitting and the convolutions are evaluated
in the ``rfft`` domain (circular convolution == exact discrete
convolution while the support fits the grid — the grid is sized, or
validated against ``v_half_span``, so it always does).  Everything is
vectorized over ``(scenario, phase)`` rows, giving a full
``(n_scenarios, n_eyes, n_phases, n_voltages)`` BER surface stack in
milliseconds per scenario; ``chunk_scenarios`` bounds the working-set
memory and ``keep_surfaces=False`` keeps only the per-scenario
summaries (the flat-memory sweep mode).

Two resolution effects bound the deepest trustworthy BER.  The float64
FFT/cumsum pipeline carries ~1e-15 of absolute noise in CDF terms, and
the linear-split spike deposits smear each ISI spike by up to one grid
step ``dv`` — harmless while ``dv`` is small against the noise sigma,
but a coarse grid (``dv >~ 0.5 * noise_rms``) biases the extreme tails
visibly.  The default ``n_voltages=513`` keeps compliance-grade
(1e-12..1e-15) surfaces honest for the repo's typical swing/noise
ratios; raise it (or shrink ``v_half_span``) when probing 1e-15
contours with very small noise on a wide grid.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.isi import PulseResponse
from ..signals.modulation import Modulation, Nrz
from .result import StatEyeBatchResult, StatEyeResult

__all__ = ["StatEye"]


@dataclasses.dataclass(frozen=True)
class StatEye:
    """Statistical eye/BER engine configuration + analysis entry points.

    Parameters
    ----------
    modulation:
        Line code whose level alphabet drives the cursor level sets and
        sub-eye count (NRZ default; PAM4 gives all three sub-eyes).
    n_phases:
        Sampling phases across one UI (the time axis of the surfaces).
    n_voltages:
        Voltage-grid resolution (the threshold axis of the surfaces).
    n_precursors / n_postcursors:
        ISI cursor span around the main cursor; the cursor window is
        ``n_precursors + 1 + n_postcursors`` UI wide.
    noise_rms:
        Slicer-referred Gaussian noise sigma in volts.
    rj_rms_ui / dj_pp_ui:
        Random (Gaussian sigma) and deterministic (dual-Dirac
        peak-to-peak) jitter in UI, folded along the phase axis.
    v_half_span:
        Optional fixed half-extent of the voltage grid in volts.  By
        default the grid is sized per call to contain the ISI support
        plus 10-sigma noise tails; pin it to make independent calls
        (e.g. a sweep's serial and batched paths, or NRZ-vs-PAM4
        comparisons) share bit-identical grids.
    target_ber:
        Default BER for contours/eye-opening summaries.
    ber_floor:
        Reported BERs are floored here in log-domain views so closed
        tails never read as exactly zero.
    """

    modulation: Modulation = Nrz()
    n_phases: int = 64
    n_voltages: int = 513
    n_precursors: int = 4
    n_postcursors: int = 16
    noise_rms: float = 0.0
    rj_rms_ui: float = 0.0
    dj_pp_ui: float = 0.0
    v_half_span: Optional[float] = None
    target_ber: float = 1e-12
    ber_floor: float = 1e-18

    def __post_init__(self) -> None:
        if self.n_phases < 4:
            raise ValueError(
                f"phase resolution must be positive: need n_phases >= 4 "
                f"to resolve an eye, got {self.n_phases}"
            )
        if self.n_voltages < 16:
            raise ValueError(
                f"voltage resolution must be positive: need n_voltages "
                f">= 16 to resolve the levels, got {self.n_voltages}"
            )
        if self.n_precursors < 0 or self.n_postcursors < 0:
            raise ValueError(
                f"cursor span must be >= 1 UI: n_precursors and "
                f"n_postcursors must be >= 0, got n_precursors="
                f"{self.n_precursors}, n_postcursors={self.n_postcursors}"
            )
        for name in ("noise_rms", "rj_rms_ui", "dj_pp_ui"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if self.dj_pp_ui >= 1.0:
            raise ValueError(
                f"dj_pp_ui must be < 1 UI (a full-UI deterministic "
                f"offset closes the eye by construction), got "
                f"{self.dj_pp_ui}"
            )
        if self.v_half_span is not None and self.v_half_span <= 0:
            raise ValueError(
                f"v_half_span must be positive, got {self.v_half_span}"
            )
        if not 0.0 < self.target_ber < 0.5:
            raise ValueError(
                f"target_ber must be in (0, 0.5), got {self.target_ber}"
            )
        if not 0.0 < self.ber_floor < 0.5:
            raise ValueError(
                f"ber_floor must be in (0, 0.5), got {self.ber_floor}"
            )

    # -- public API --------------------------------------------------------
    def analyze(self, pulse: PulseResponse) -> StatEyeResult:
        """Full statistical eye of one pulse response."""
        if not isinstance(pulse, PulseResponse):
            raise TypeError(
                f"analyze() takes a PulseResponse, got "
                f"{type(pulse).__name__}; use analyze_batch() for batches"
            )
        return self.analyze_batch([pulse]).row(0)

    def analyze_batch(self, pulses: Sequence[PulseResponse], *,
                      chunk_scenarios: Optional[int] = None,
                      keep_surfaces: bool = True) -> StatEyeBatchResult:
        """Statistical eyes of N pulse responses in one vectorized pass.

        The voltage grid is sized once across all scenarios (pin
        ``v_half_span`` for grids independent of the batch contents).
        ``chunk_scenarios`` bounds the working set: the big
        ``(chunk, n_eyes, n_phases, n_voltages)`` intermediates exist
        for one chunk at a time, and with ``keep_surfaces=False`` only
        the ``O(n_scenarios * n_phases)`` summary arrays survive — the
        flat-memory path for very large batches.
        """
        pulses = list(pulses)
        if not pulses:
            raise ValueError("need at least one pulse response")
        if chunk_scenarios is not None and chunk_scenarios < 1:
            raise ValueError(
                f"chunk_scenarios must be >= 1, got {chunk_scenarios}"
            )
        cursors, phases = self._cursor_tensor(pulses)
        dv, origin = self._grid_step(cursors)
        voltages = (np.arange(self.n_voltages) - origin) * dv

        n = len(pulses)
        n_eyes = self.modulation.n_eyes
        min_bers = np.empty(n)
        best_phases = np.empty(n)
        best_thresholds = np.empty((n, n_eyes))
        heights = np.empty(n)
        widths = np.empty(n)
        bathtubs = np.empty((n, self.n_phases))
        kept: List[np.ndarray] = []
        step = n if chunk_scenarios is None else chunk_scenarios
        for start in range(0, n, step):
            surfaces = self._surfaces(cursors[start:start + step], dv, origin)
            if keep_surfaces:
                kept.append(surfaces)
            for i in range(surfaces.shape[0]):
                row = StatEyeResult(
                    modulation=self.modulation, phases_ui=phases,
                    voltages=voltages, surfaces=surfaces[i],
                    noise_rms=self.noise_rms, rj_rms_ui=self.rj_rms_ui,
                    dj_pp_ui=self.dj_pp_ui, target_ber=self.target_ber,
                    ber_floor=self.ber_floor)
                j = start + i
                min_bers[j] = row.ber
                best_phases[j] = row.best_phase_ui
                best_thresholds[j] = row.best_thresholds
                heights[j] = row.eye_height_at()
                widths[j] = row.eye_width_ui_at()
                bathtubs[j] = row.bathtub().ber
        return StatEyeBatchResult(
            modulation=self.modulation, phases_ui=phases,
            voltages=voltages, min_bers=min_bers,
            best_phases_ui=best_phases, best_thresholds=best_thresholds,
            eye_heights=heights, eye_widths_ui=widths, bathtubs=bathtubs,
            surfaces=np.concatenate(kept, axis=0) if keep_surfaces else None,
            noise_rms=self.noise_rms, rj_rms_ui=self.rj_rms_ui,
            dj_pp_ui=self.dj_pp_ui, target_ber=self.target_ber,
            ber_floor=self.ber_floor,
        )

    def isi_distribution(self, pulse: PulseResponse
                         ) -> Tuple[np.ndarray, np.ndarray]:
        """Diagnostic: the pure ISI voltage PDF per phase.

        Returns ``(voltages, pdf)`` with ``pdf`` of shape
        ``(n_phases, n_voltages)`` — the exact discrete distribution of
        the ISI sum (all cursors except the main one), before noise,
        jitter and the main-cursor conditional shift.  Each row sums to
        1 up to FFT round-off.
        """
        cursors, _ = self._cursor_tensor([pulse])
        dv, origin = self._grid_step(cursors)
        voltages = (np.arange(self.n_voltages) - origin) * dv
        spectrum = self._isi_spectrum(cursors, dv)
        pdf = np.roll(np.fft.irfft(spectrum, n=self.n_voltages, axis=-1),
                      origin, axis=-1)[0]
        return voltages, pdf

    # -- cursor extraction -------------------------------------------------
    def _cursor_tensor(self, pulses: Sequence[PulseResponse]
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Interpolate every pulse at (phase, cursor-offset) instants.

        Returns ``(cursors, phases_ui)`` with ``cursors`` of shape
        ``(n_scenarios, n_phases, n_cursors)``; column ``n_precursors``
        is the main cursor and phase 0.5 lands exactly on the pulse
        peak (the eye centre).
        """
        n_phases = self.n_phases
        offsets = np.arange(-self.n_precursors, self.n_postcursors + 1)
        phases = np.arange(n_phases) / float(n_phases)
        cursors = np.empty((len(pulses), n_phases, offsets.size))
        for i, pulse in enumerate(pulses):
            if not isinstance(pulse, PulseResponse):
                raise TypeError(
                    f"expected PulseResponse rows, got "
                    f"{type(pulse).__name__}"
                )
            data = np.asarray(pulse.wave.data, dtype=float)
            if data.size < 2:
                raise ValueError("pulse response waveform is too short")
            spb = pulse.wave.sample_rate / pulse.bit_rate
            peak = int(np.argmax(np.abs(data)))
            positions = peak + (phases[:, None] - 0.5
                                + offsets[None, :]) * spb
            cursors[i] = np.interp(
                positions.ravel(), np.arange(data.size), data,
                left=0.0, right=0.0).reshape(n_phases, offsets.size)
        return cursors, phases

    # -- voltage grid ------------------------------------------------------
    def _grid_step(self, cursors: np.ndarray) -> Tuple[float, int]:
        """Voltage-grid step and zero-origin index for a cursor tensor.

        The grid must contain the full superposition support plus the
        10-sigma noise tails, or the circular convolution would wrap
        tail mass back into the eye.
        """
        levels = np.asarray(self.modulation.levels, dtype=float)
        level_max = float(np.max(np.abs(levels)))
        reach = level_max * float(np.abs(cursors).sum(axis=-1).max())
        need = reach + 10.0 * self.noise_rms
        origin = self.n_voltages // 2
        side_bins = min(origin, self.n_voltages - 1 - origin)
        if self.v_half_span is not None:
            if self.v_half_span < need:
                raise ValueError(
                    f"v_half_span={self.v_half_span:g} V is too small: "
                    f"the ISI support plus 10-sigma noise tails reach "
                    f"{need:g} V and would wrap around the voltage grid"
                )
            half = self.v_half_span
        else:
            if need <= 0.0:
                raise ValueError(
                    "pulse response is identically zero and noise_rms "
                    "is 0: the statistical eye is undefined"
                )
            half = 1.05 * need
        return half / side_bins, origin

    # -- the convolution core ----------------------------------------------
    def _isi_spectrum(self, cursors: np.ndarray, dv: float) -> np.ndarray:
        """rfft of the exact ISI PDF per (scenario, phase) row.

        Each non-main cursor contributes an ``L``-spike kernel (one
        spike per modulation level, weight ``1/L``, deposited with
        sum-preserving linear splitting, value 0 at bin 0 with negative
        values wrapped); the product of their spectra is the spectrum
        of the exact discrete convolution.  Zero cursors are identity
        factors and are skipped, which also makes the product trivially
        invariant to cursor order and chunking.
        """
        n_scen, n_phases, n_cursors = cursors.shape
        m = self.n_voltages
        levels = np.asarray(self.modulation.levels, dtype=float)
        weight = 1.0 / levels.size
        rows = np.arange(n_scen * n_phases)
        spectrum = np.ones((rows.size, m // 2 + 1), dtype=complex)
        for k in range(n_cursors):
            if k == self.n_precursors:
                continue
            amplitude = cursors[:, :, k].ravel()
            if not np.any(amplitude):
                continue
            kernel = np.zeros((rows.size, m))
            for level in levels:
                position = level * amplitude / dv
                low = np.floor(position).astype(np.int64)
                frac = position - low
                kernel[rows, low % m] += weight * (1.0 - frac)
                kernel[rows, (low + 1) % m] += weight * frac
            spectrum *= np.fft.rfft(kernel, axis=-1)
        return spectrum.reshape(n_scen, n_phases, m // 2 + 1)

    def _jitter_kernel(self) -> Optional[np.ndarray]:
        """Dual-Dirac + Gaussian timing kernel on the wrapped phase
        grid (``None`` when jitter-free)."""
        if self.rj_rms_ui <= 0.0 and self.dj_pp_ui <= 0.0:
            return None
        n = self.n_phases
        kernel = np.zeros(n)
        for offset_ui in (-0.5 * self.dj_pp_ui, 0.5 * self.dj_pp_ui):
            position = offset_ui * n
            low = int(np.floor(position))
            frac = position - low
            kernel[low % n] += 0.5 * (1.0 - frac)
            kernel[(low + 1) % n] += 0.5 * frac
        if self.rj_rms_ui > 0.0:
            offsets = ((np.arange(n) + n // 2) % n) - n // 2
            gauss = np.exp(-0.5 * (offsets / (self.rj_rms_ui * n)) ** 2)
            gauss /= gauss.sum()
            kernel = np.fft.irfft(np.fft.rfft(kernel) * np.fft.rfft(gauss),
                                  n=n)
            np.maximum(kernel, 0.0, out=kernel)
        return kernel / kernel.sum()

    def _surfaces(self, cursors: np.ndarray, dv: float,
                  origin: int) -> np.ndarray:
        """BER(t, v) surfaces for one cursor-tensor chunk:
        ``(n_scenarios, n_eyes, n_phases, n_voltages)``."""
        m = self.n_voltages
        levels = np.asarray(self.modulation.levels, dtype=float)
        n_scen, n_phases, _ = cursors.shape
        spectrum = self._isi_spectrum(cursors, dv)
        omega = 2.0 * np.pi * np.fft.rfftfreq(m, d=dv)
        if self.noise_rms > 0.0:
            spectrum = spectrum * np.exp(-0.5 * (self.noise_rms * omega) ** 2)
        main = cursors[:, :, self.n_precursors]
        surfaces = np.zeros((n_scen, levels.size - 1, n_phases, m))
        for li, level in enumerate(levels):
            # Conditioning on the transmitted level shifts the ISI+noise
            # distribution by level * main_cursor — a phase factor.
            shifted = spectrum * np.exp(-1j * omega * (level
                                                      * main)[..., None])
            pdf = np.roll(np.fft.irfft(shifted, n=m, axis=-1), origin,
                          axis=-1)
            # The irfft leaves ~1e-17 of zero-mean noise per bin; it is
            # deliberately NOT rectified here — clipping would bias
            # every tail bin positive and the bias would accumulate
            # into a ~1e-15 BER floor.  Left signed, the noise cancels
            # in the tail sums (and the final surface clip restores
            # [0, 0.5]).
            # Both tails are accumulated over the tail bins only (the
            # upper tail as a reverse cumsum, never as 1 - CDF): the
            # round-off then scales with the tail mass itself instead
            # of the distribution bulk, keeping 1e-15..1e-18 BERs real.
            if li > 0:
                # This level bounds eye li-1 from above: its lower tail
                # P(X <= v) is the probability of slicing below it.
                surfaces[:, li - 1] += 0.5 * np.cumsum(pdf, axis=-1)
            if li < levels.size - 1:
                # ...and bounds eye li from below: its upper tail
                # P(X > v), exclusive of the threshold bin.
                upper = np.cumsum(pdf[..., ::-1], axis=-1)[..., ::-1]
                surfaces[:, li] += 0.5 * (upper - pdf)
        np.clip(surfaces, 0.0, 0.5, out=surfaces)
        kernel = self._jitter_kernel()
        if kernel is not None:
            # The symbol stream is stationary, so the sampled-voltage
            # distribution is periodic in phase: jitter folds in as a
            # circular convolution along the phase axis.
            shaped = np.fft.rfft(surfaces, axis=2) \
                * np.fft.rfft(kernel)[None, None, :, None]
            surfaces = np.fft.irfft(shaped, n=n_phases, axis=2)
            np.clip(surfaces, 0.0, 0.5, out=surfaces)
        return surfaces
