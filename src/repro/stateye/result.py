"""Typed results of the statistical eye engine.

A :class:`StatEyeResult` carries the full per-sub-eye BER(t, v) surfaces
of one scenario on the engine's phase × voltage grid, plus the derived
compliance views: bathtub curves, eye contours at a target BER, optimum
sampling point and the combined BER.  :class:`StatEyeBatchResult` is the
vectorized form — per-scenario summary arrays always, the stacked
surfaces optionally (``keep_surfaces=False`` drops them for flat-memory
mega-sweeps).

Conventions
-----------
* ``surfaces[e, p, m]`` is the *conditional adjacent-pair* error
  probability of sub-eye ``e``: given the transmitted symbol is one of
  the two levels bounding the sub-eye (each with probability 1/2), the
  probability that a slicer at phase ``phases_ui[p]`` / threshold
  ``voltages[m]`` decides wrongly —
  ``0.5 * (P(upper <= v) + P(lower > v))``.  Its Gaussian limit is
  ``0.5 * erfc(Q / sqrt(2))``, the per-eye term of
  :func:`repro.analysis.ber.ber_from_q_factors`, so the combined BER
  here follows that function's convention exactly:
  ``BER = (2/L) * sum_e surface_e / bits_per_symbol``.
* ``eye=None`` selects the *worst* sub-eye for contour/height/width
  accessors (matching :class:`~repro.analysis.eye.EyeMeasurement`'s
  worst-sub-eye scalars) and the *combined* curve for :meth:`bathtub`
  and :meth:`StatEyeResult.min_ber`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from ..analysis.ber import BathtubCurve
from ..signals.modulation import Modulation

__all__ = ["StatEyeResult", "StatEyeBatchResult"]


def _flat_center_argmin(values: np.ndarray) -> int:
    """Centre index of the (possibly flat) minimum region.

    Probability floors produce plateaus; the centre is the robust pick
    (as a CDR would make), matching
    :meth:`~repro.analysis.ber.BathtubCurve.best_phase_ui`.  Values
    within 1e-15 absolute are tied — the engine's FFT path carries
    ~1e-16 of round-off, so finer distinctions are numerical noise and
    tie-breaking on them would make the pick depend on batch shape.
    """
    minimum = float(np.min(values))
    flat = np.flatnonzero(values <= minimum * (1.0 + 1e-12) + 1e-15)
    return int(flat[len(flat) // 2])


def _combine_per_eye(per_eye: np.ndarray,
                     modulation: Modulation) -> np.ndarray:
    """Per-sub-eye conditional error probabilities (leading axis ``e``)
    -> combined BER, the :func:`ber_from_q_factors` convention."""
    ser = (2.0 / modulation.n_levels) * per_eye.sum(axis=0)
    return ser / modulation.bits_per_symbol


def _open_run(mask: np.ndarray, start: int) -> Optional[Tuple[int, int]]:
    """The contiguous True run of ``mask`` containing ``start``."""
    if not mask[start]:
        return None
    lo = start
    while lo > 0 and mask[lo - 1]:
        lo -= 1
    hi = start
    while hi < mask.size - 1 and mask[hi + 1]:
        hi += 1
    return lo, hi


@dataclasses.dataclass(frozen=True, eq=False)
class StatEyeResult:
    """One scenario's statistical eye: per-sub-eye BER(t, v) surfaces.

    Parameters
    ----------
    modulation:
        The line code the surfaces were built for (``n_eyes`` sub-eyes).
    phases_ui:
        Sampling phases across one UI, ``(n_phases,)``; the pulse peak
        sits at phase 0.5 (eye centre).
    voltages:
        Decision-threshold grid in volts, ``(n_voltages,)`` ascending.
    surfaces:
        ``(n_eyes, n_phases, n_voltages)`` conditional adjacent-pair
        error probabilities (see module docstring).
    """

    modulation: Modulation
    phases_ui: np.ndarray
    voltages: np.ndarray
    surfaces: np.ndarray
    noise_rms: float = 0.0
    rj_rms_ui: float = 0.0
    dj_pp_ui: float = 0.0
    target_ber: float = 1e-12
    ber_floor: float = 1e-18

    def __post_init__(self) -> None:
        expected = (self.modulation.n_eyes, len(self.phases_ui),
                    len(self.voltages))
        if np.shape(self.surfaces) != expected:
            raise ValueError(
                f"surfaces must have shape (n_eyes, n_phases, n_voltages) "
                f"= {expected}, got {np.shape(self.surfaces)}"
            )

    # -- geometry ----------------------------------------------------------
    @property
    def n_eyes(self) -> int:
        """Number of vertical sub-eyes (1 for NRZ, 3 for PAM4)."""
        return self.modulation.n_eyes

    @property
    def n_phases(self) -> int:
        """Phase-grid resolution across one UI."""
        return len(self.phases_ui)

    @property
    def n_voltages(self) -> int:
        """Voltage-grid resolution."""
        return len(self.voltages)

    def _eye_index(self, eye: Optional[int]) -> int:
        if eye is None:
            return self.worst_eye_index()
        if not 0 <= eye < self.n_eyes:
            raise ValueError(
                f"eye must be in 0..{self.n_eyes - 1} for "
                f"{self.modulation.name}, got {eye}"
            )
        return int(eye)

    def worst_eye_index(self) -> int:
        """Sub-eye with the highest best-case BER (the compliance
        limiter)."""
        return int(np.argmax(self.surfaces.min(axis=(1, 2))))

    # -- optimum sampling point --------------------------------------------
    def combined_phase_ber(self) -> np.ndarray:
        """Combined BER per phase with per-eye *per-phase-optimal*
        thresholds, ``(n_phases,)``."""
        return _combine_per_eye(self.surfaces.min(axis=-1), self.modulation)

    @property
    def best_phase_ui(self) -> float:
        """Sampling phase minimizing the combined BER."""
        return float(self.phases_ui[_flat_center_argmin(
            self.combined_phase_ber())])

    def best_threshold_indices(self) -> np.ndarray:
        """Per-sub-eye optimal threshold grid indices at the best
        phase, ``(n_eyes,)``."""
        p = _flat_center_argmin(self.combined_phase_ber())
        return np.array([_flat_center_argmin(self.surfaces[e, p])
                         for e in range(self.n_eyes)])

    @property
    def best_thresholds(self) -> np.ndarray:
        """Per-sub-eye optimal threshold voltages at the best phase."""
        return self.voltages[self.best_threshold_indices()]

    @property
    def ber(self) -> float:
        """Combined BER at the optimum sampling phase/thresholds."""
        return float(np.min(self.combined_phase_ber()))

    def min_ber(self, eye: Optional[int] = None) -> float:
        """Best achievable BER: combined (``eye=None``) or one
        sub-eye's conditional error probability."""
        if eye is None:
            return self.ber
        return float(np.min(self.surfaces[self._eye_index(eye)]))

    # -- derived compliance views ------------------------------------------
    def ber_surface(self, eye: Optional[int] = None) -> np.ndarray:
        """One sub-eye's BER(t, v) surface (default: worst sub-eye)."""
        return self.surfaces[self._eye_index(eye)]

    def bathtub(self, eye: Optional[int] = None) -> BathtubCurve:
        """BER versus sampling phase at the *fixed* optimal thresholds.

        ``eye=None`` combines all sub-eyes into the link BER (exactly
        the single sub-eye curve for NRZ); an integer selects one
        sub-eye's conditional curve.  The BER is floored at
        :attr:`ber_floor` so log-domain consumers never see zero.
        """
        vi = self.best_threshold_indices()
        fixed = np.stack([self.surfaces[e, :, vi[e]]
                          for e in range(self.n_eyes)])
        if eye is None:
            ber = _combine_per_eye(fixed, self.modulation)
        else:
            ber = fixed[self._eye_index(eye)]
        return BathtubCurve(phases_ui=np.array(self.phases_ui),
                            ber=np.clip(ber, self.ber_floor, 0.5))

    def contour(self, target_ber: Optional[float] = None,
                eye: Optional[int] = None
                ) -> Tuple[np.ndarray, np.ndarray]:
        """Statistical eye contour at ``target_ber``.

        Returns per-phase ``(lower, upper)`` voltage bounds of the
        region where the sub-eye's BER stays at or below the target —
        the contiguous open region around the optimal threshold.  NaN
        where the eye is closed at that phase.  When the fixed optimal
        threshold bin itself misses the target (its value can hover at
        the engine's float noise floor for targets near 1e-15), the
        run is anchored at that phase's own best threshold instead.
        """
        target = self.target_ber if target_ber is None else target_ber
        if not 0.0 < target < 0.5:
            raise ValueError(
                f"target_ber must be in (0, 0.5), got {target}"
            )
        e = self._eye_index(eye)
        vi = int(self.best_threshold_indices()[e])
        surf = self.surfaces[e]
        lower = np.full(self.n_phases, np.nan)
        upper = np.full(self.n_phases, np.nan)
        for p in range(self.n_phases):
            mask = surf[p] <= target
            run = _open_run(mask, vi)
            if run is None:
                anchor = _flat_center_argmin(surf[p])
                run = _open_run(mask, anchor)
            if run is not None:
                lower[p] = self.voltages[run[0]]
                upper[p] = self.voltages[run[1]]
        return lower, upper

    def eye_height_at(self, target_ber: Optional[float] = None,
                      eye: Optional[int] = None) -> float:
        """Vertical eye opening (V) at ``target_ber``, measured at the
        best phase.  Zero when closed."""
        lower, upper = self.contour(target_ber, eye)
        p = _flat_center_argmin(self.combined_phase_ber())
        if not np.isfinite(lower[p]):
            return 0.0
        return float(upper[p] - lower[p])

    def eye_width_ui_at(self, target_ber: Optional[float] = None,
                        eye: Optional[int] = None) -> float:
        """Horizontal eye opening (UI) at ``target_ber`` with the fixed
        optimal threshold.  Zero when closed."""
        target = self.target_ber if target_ber is None else target_ber
        curve = self.bathtub(eye=self._eye_index(eye))
        return curve.eye_opening_at(target)


@dataclasses.dataclass(frozen=True, eq=False)
class StatEyeBatchResult:
    """N scenarios' statistical eyes from one vectorized pass.

    Per-scenario summaries are always present; the stacked surfaces are
    ``None`` when the engine ran with ``keep_surfaces=False`` (the
    flat-memory mode).  Row ``i`` (:meth:`row`) equals
    :meth:`StatEye.analyze` of the same pulse *when the voltage grid is
    pinned* (``v_half_span=...``); without pinning the batch shares one
    grid sized to all scenarios.
    """

    modulation: Modulation
    phases_ui: np.ndarray
    voltages: np.ndarray
    min_bers: np.ndarray
    best_phases_ui: np.ndarray
    best_thresholds: np.ndarray
    eye_heights: np.ndarray
    eye_widths_ui: np.ndarray
    bathtubs: np.ndarray
    surfaces: Optional[np.ndarray] = None
    noise_rms: float = 0.0
    rj_rms_ui: float = 0.0
    dj_pp_ui: float = 0.0
    target_ber: float = 1e-12
    ber_floor: float = 1e-18

    @property
    def n_scenarios(self) -> int:
        """Number of scenarios in the batch."""
        return len(self.min_bers)

    def __len__(self) -> int:
        return self.n_scenarios

    def row(self, index: int) -> StatEyeResult:
        """Scenario ``index`` unpacked into the single-scenario form
        (requires the surfaces: run with ``keep_surfaces=True``)."""
        if index < 0:
            index += self.n_scenarios
        if not 0 <= index < self.n_scenarios:
            raise IndexError(f"scenario {index} out of range")
        if self.surfaces is None:
            raise ValueError(
                "surfaces were dropped (keep_surfaces=False); re-run "
                "with keep_surfaces=True to unpack per-scenario results"
            )
        return StatEyeResult(
            modulation=self.modulation, phases_ui=self.phases_ui,
            voltages=self.voltages, surfaces=self.surfaces[index],
            noise_rms=self.noise_rms, rj_rms_ui=self.rj_rms_ui,
            dj_pp_ui=self.dj_pp_ui, target_ber=self.target_ber,
            ber_floor=self.ber_floor,
        )

    def rows(self) -> List[StatEyeResult]:
        """Every scenario unpacked (see :meth:`row`)."""
        return [self.row(i) for i in range(self.n_scenarios)]

    def __iter__(self):
        return iter(self.rows())

    @classmethod
    def concatenate(cls, parts: "List[StatEyeBatchResult]"
                    ) -> "StatEyeBatchResult":
        """Stack scenario-chunks back into one batch result.

        All parts must share the engine configuration and therefore the
        phase/voltage grids (the engine guarantees this by sizing the
        grid once across every chunk)."""
        if not parts:
            raise ValueError("cannot concatenate zero StatEyeBatchResults")
        if len(parts) == 1:
            return parts[0]
        first = parts[0]
        for part in parts[1:]:
            if (part.modulation != first.modulation
                    or not np.array_equal(part.phases_ui, first.phases_ui)
                    or not np.array_equal(part.voltages, first.voltages)
                    or (part.surfaces is None) != (first.surfaces is None)):
                raise ValueError(
                    "chunks disagree on modulation/grid/surfaces; they "
                    "must come from one engine configuration"
                )
        surfaces = (None if first.surfaces is None else
                    np.concatenate([part.surfaces for part in parts], axis=0))
        return cls(
            modulation=first.modulation, phases_ui=first.phases_ui,
            voltages=first.voltages,
            min_bers=np.concatenate([p.min_bers for p in parts]),
            best_phases_ui=np.concatenate(
                [p.best_phases_ui for p in parts]),
            best_thresholds=np.concatenate(
                [p.best_thresholds for p in parts], axis=0),
            eye_heights=np.concatenate([p.eye_heights for p in parts]),
            eye_widths_ui=np.concatenate(
                [p.eye_widths_ui for p in parts]),
            bathtubs=np.concatenate([p.bathtubs for p in parts], axis=0),
            surfaces=surfaces, noise_rms=first.noise_rms,
            rj_rms_ui=first.rj_rms_ui, dj_pp_ui=first.dj_pp_ui,
            target_ber=first.target_ber, ber_floor=first.ber_floor,
        )

    def bathtub(self, index: int) -> BathtubCurve:
        """Scenario ``index``'s combined fixed-threshold bathtub curve
        (available even when the surfaces were dropped)."""
        if index < 0:
            index += self.n_scenarios
        if not 0 <= index < self.n_scenarios:
            raise IndexError(f"scenario {index} out of range")
        return BathtubCurve(
            phases_ui=np.array(self.phases_ui),
            ber=np.clip(self.bathtubs[index], self.ber_floor, 0.5))
