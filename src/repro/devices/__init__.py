"""Device substrate: the library's stand-in for the 0.18 um PDK.

First-order MOS, active-inductor, varactor and passive models whose gm
and capacitance values place every behavioral pole/zero at realistic
GHz-scale frequencies.
"""

from .technology import Technology, TSMC180
from .mosfet import Mosfet, nmos, pmos
from .active_inductor import ActiveInductor
from .varactor import MosVaractor, neutralized_input_capacitance
from .passives import (
    Resistor,
    Capacitor,
    SpiralInductor,
    rc_lowpass_tf,
    rl_shunt_peaking_tf,
)
from .mismatch import (
    MismatchModel,
    pair_offset_sigma,
    chain_offset_sigma,
    sample_offsets,
)
from .corners import ProcessCorner, corner_technology, all_corners

__all__ = [
    "Technology",
    "TSMC180",
    "Mosfet",
    "nmos",
    "pmos",
    "ActiveInductor",
    "MosVaractor",
    "neutralized_input_capacitance",
    "Resistor",
    "Capacitor",
    "SpiralInductor",
    "rc_lowpass_tf",
    "rl_shunt_peaking_tf",
    "MismatchModel",
    "pair_offset_sigma",
    "chain_offset_sigma",
    "sample_offsets",
    "ProcessCorner",
    "corner_technology",
    "all_corners",
]
