"""Passive components: resistors, capacitors and the spiral-inductor
baseline.

The spiral inductor model exists to ground the paper's headline area
claim: "these techniques can reduce 80 % of the circuit area compared to
the circuit area with on-chip inductors" and "the total core area ...
0.028 mm^2 ... is almost equal to an on-chip spiral inductor".  The area
model below makes a few-nH spiral come out at roughly that size, so the
area ablation bench reproduces the claim mechanically rather than by
assertion.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..lti.transfer_function import RationalTF
from .._units import MICRO

__all__ = ["Resistor", "Capacitor", "SpiralInductor", "rc_lowpass_tf",
           "rl_shunt_peaking_tf"]


@dataclasses.dataclass(frozen=True)
class Resistor:
    """An on-chip (poly) resistor with a process tolerance band."""

    resistance: float
    tolerance: float = 0.15
    """Fractional +-3-sigma process spread (poly sheet-rho ~ +-15 %)."""

    def __post_init__(self) -> None:
        if self.resistance <= 0:
            raise ValueError(f"resistance must be positive, got {self.resistance}")
        if not 0 <= self.tolerance < 1:
            raise ValueError(f"tolerance must be in [0, 1), got {self.tolerance}")

    def corner(self, sigma: float) -> float:
        """Resistance at a process corner, sigma in [-3, 3]."""
        if not -3.0 <= sigma <= 3.0:
            raise ValueError(f"sigma must be within +-3, got {sigma}")
        return self.resistance * (1.0 + self.tolerance * sigma / 3.0)


@dataclasses.dataclass(frozen=True)
class Capacitor:
    """A capacitor (MIM on-chip, or the off-chip offset-loop capacitors)."""

    capacitance: float
    is_off_chip: bool = False

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ValueError(
                f"capacitance must be positive, got {self.capacitance}"
            )

    def impedance(self, freq_hz: np.ndarray) -> np.ndarray:
        """Complex impedance 1/(j w C)."""
        w = 2.0 * np.pi * np.asarray(freq_hz, dtype=float)
        return 1.0 / (1j * w * self.capacitance)


@dataclasses.dataclass(frozen=True)
class SpiralInductor:
    """An on-chip spiral inductor with a first-order area/parasitic model.

    Area model: a square spiral of inductance L needs an outer dimension
    that empirically scales like ``d = d_ref * sqrt(L / L_ref)`` with a
    2 nH spiral at ~150 um outer dimension in a 0.18 um back-end —
    i.e. ~0.0225 mm^2 for 2 nH, matching the paper's remark that its
    whole 0.028 mm^2 core is "almost equal to an on-chip spiral
    inductor".
    """

    inductance: float
    q_factor: float = 8.0
    self_resonance_hz: float = 25e9
    _d_ref: float = 150.0 * MICRO
    _l_ref: float = 2e-9

    def __post_init__(self) -> None:
        if self.inductance <= 0:
            raise ValueError(f"inductance must be positive, got {self.inductance}")
        if self.q_factor <= 0:
            raise ValueError(f"q_factor must be positive, got {self.q_factor}")
        if self.self_resonance_hz <= 0:
            raise ValueError("self_resonance_hz must be positive")

    @property
    def outer_dimension(self) -> float:
        """Outer side length of the square spiral in metres."""
        return self._d_ref * math.sqrt(self.inductance / self._l_ref)

    @property
    def area(self) -> float:
        """Layout area in m^2 (the quantity the 80 % claim is about)."""
        return self.outer_dimension**2

    @property
    def series_resistance(self) -> float:
        """Series loss resistance from Q at the self-resonance/4 point."""
        f_q = self.self_resonance_hz / 4.0
        return 2.0 * math.pi * f_q * self.inductance / self.q_factor

    def impedance(self, freq_hz: np.ndarray) -> np.ndarray:
        """Complex impedance including loss and the parallel SRF cap."""
        freq_hz = np.asarray(freq_hz, dtype=float)
        w = 2.0 * np.pi * freq_hz
        z_series = self.series_resistance + 1j * w * self.inductance
        c_par = 1.0 / ((2.0 * np.pi * self.self_resonance_hz) ** 2
                       * self.inductance)
        y = 1.0 / z_series + 1j * w * c_par
        return 1.0 / y


def rc_lowpass_tf(resistance: float, capacitance: float,
                  gain: float = 1.0) -> RationalTF:
    """``gain / (1 + s R C)`` — the ubiquitous load-pole model."""
    if resistance <= 0 or capacitance <= 0:
        raise ValueError("R and C must be positive")
    return RationalTF(np.array([gain]),
                      np.array([resistance * capacitance, 1.0]))


def rl_shunt_peaking_tf(resistance: float, inductance: float,
                        capacitance: float, gm: float = 1.0) -> RationalTF:
    """Classic shunt-peaked stage: gm into (R + sL) || 1/(sC).

        H(s) = gm (R + s L) / (1 + s R C + s^2 L C)

    This is the spiral-inductor reference response the active-inductor
    load is compared against in the area-ablation bench.
    """
    if min(resistance, inductance, capacitance) <= 0:
        raise ValueError("R, L and C must all be positive")
    num = np.array([gm * inductance, gm * resistance])
    den = np.array([inductance * capacitance, resistance * capacitance, 1.0])
    return RationalTF(num, den)
