"""First-order MOSFET small-signal model.

Given a device geometry (W, L), a bias current and the process constants
from :class:`~repro.devices.technology.Technology`, this model produces
the small-signal quantities every behavioral circuit block needs:

* ``gm`` — transconductance, with a velocity-saturation correction that
  matters at 0.18 um;
* ``gds``/``ro`` — output conductance from channel-length modulation;
* ``cgs``/``cgd`` — gate capacitances (2/3 WL Cox channel + overlap);
* ``ft`` — unity-current-gain frequency, the sanity metric (a 0.18 um
  NMOS peaks around 45-55 GHz, which this model reproduces).

The model solves the saturation-region I-V with velocity saturation

    Id = 0.5 * uCox * (W/L) * Vov^2 / (1 + Vov / (Esat*L))

for ``Vov`` given ``Id``, so blocks can be specified the way designers
think: "this differential pair burns 2 mA per side".
"""

from __future__ import annotations

import dataclasses
import math

from .technology import Technology, TSMC180

__all__ = ["Mosfet", "nmos", "pmos"]


@dataclasses.dataclass(frozen=True)
class Mosfet:
    """A biased MOS transistor in saturation.

    Parameters
    ----------
    width, length:
        Drawn dimensions in metres.
    drain_current:
        Bias drain current in amps (always positive; PMOS handled by
        ``is_nmos=False`` with magnitudes).
    is_nmos:
        Device polarity (selects mobility and threshold).
    tech:
        Process description; defaults to the 0.18 um node.
    temperature_k:
        Junction temperature; ``None`` uses the process nominal.
    """

    width: float
    length: float
    drain_current: float
    is_nmos: bool = True
    tech: Technology = TSMC180
    temperature_k: float | None = None

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"width must be positive, got {self.width}")
        if self.length < self.tech.l_min * (1 - 1e-9):
            raise ValueError(
                f"length {self.length:.3g} below process minimum "
                f"{self.tech.l_min:.3g}"
            )
        if self.drain_current <= 0:
            raise ValueError(
                f"drain_current must be positive, got {self.drain_current}"
            )

    # -- DC operating point -------------------------------------------------
    @property
    def beta(self) -> float:
        """Device transconductance factor uCox * W / L in A/V^2."""
        return (self.tech.u_cox(self.is_nmos, self.temperature_k)
                * self.width / self.length)

    @property
    def v_overdrive(self) -> float:
        """Gate overdrive Vgs - Vth solving the velocity-saturated I-V.

        Solves ``Id = 0.5*beta*Vov^2 / (1 + Vov/Vsat)`` which rearranges
        to the quadratic ``0.5*beta*Vov^2 - (Id/Vsat)*Vov - Id = 0``.
        """
        v_sat = self.tech.v_sat_overdrive(self.length)
        a = 0.5 * self.beta
        b = -self.drain_current / v_sat
        c = -self.drain_current
        disc = b * b - 4.0 * a * c
        return (-b + math.sqrt(disc)) / (2.0 * a)

    @property
    def vgs(self) -> float:
        """Gate-source voltage magnitude at the operating point."""
        return self.v_overdrive + self.tech.vth(self.is_nmos,
                                                self.temperature_k)

    # -- small-signal parameters ---------------------------------------------
    @property
    def gm(self) -> float:
        """Transconductance dId/dVgs with velocity saturation.

        Differentiating the velocity-saturated I-V gives
        ``gm = beta*Vov*(1 + Vov/(2 Vsat)) / (1 + Vov/Vsat)^2`` which
        reduces to the square-law ``beta*Vov`` for long channels and to
        ``W*Cox*vsat`` in the full-saturation limit.
        """
        v_sat = self.tech.v_sat_overdrive(self.length)
        vov = self.v_overdrive
        x = vov / v_sat
        return self.beta * vov * (1.0 + x / 2.0) / (1.0 + x) ** 2

    @property
    def gds(self) -> float:
        """Output conductance lambda * Id."""
        return self.tech.channel_lambda(self.length) * self.drain_current

    @property
    def ro(self) -> float:
        """Output resistance 1 / gds."""
        return 1.0 / self.gds

    @property
    def cgs(self) -> float:
        """Gate-source capacitance: 2/3 W L Cox channel + overlap."""
        channel = (2.0 / 3.0) * self.width * self.length \
            * self.tech.cox_per_area
        overlap = self.width * self.tech.c_overlap_per_width
        return channel + overlap

    @property
    def cgd(self) -> float:
        """Gate-drain capacitance: overlap only, in saturation."""
        return self.width * self.tech.c_overlap_per_width

    @property
    def cgg(self) -> float:
        """Total gate capacitance cgs + cgd."""
        return self.cgs + self.cgd

    @property
    def c_ox_total(self) -> float:
        """Full gate-oxide capacitance W*L*Cox (the varactor ceiling)."""
        return self.width * self.length * self.tech.cox_per_area

    @property
    def ft(self) -> float:
        """Unity current-gain frequency gm / (2 pi (cgs + cgd)) in Hz."""
        return self.gm / (2.0 * math.pi * self.cgg)

    # -- derived helpers --------------------------------------------------
    def scaled(self, width_factor: float) -> "Mosfet":
        """The same device with width (and current density) scaled.

        Current scales with width so the overdrive — and therefore the
        per-unit-width small-signal behaviour — is preserved.  This is
        how the tapered output driver stages are generated.
        """
        if width_factor <= 0:
            raise ValueError(f"width_factor must be positive, got {width_factor}")
        return dataclasses.replace(
            self,
            width=self.width * width_factor,
            drain_current=self.drain_current * width_factor,
        )

    def at_temperature(self, temperature_k: float) -> "Mosfet":
        """The same device evaluated at a different junction temperature."""
        return dataclasses.replace(self, temperature_k=temperature_k)


def nmos(width: float, length: float, drain_current: float,
         tech: Technology = TSMC180,
         temperature_k: float | None = None) -> Mosfet:
    """Convenience constructor for an NMOS device."""
    return Mosfet(width=width, length=length, drain_current=drain_current,
                  is_nmos=True, tech=tech, temperature_k=temperature_k)


def pmos(width: float, length: float, drain_current: float,
         tech: Technology = TSMC180,
         temperature_k: float | None = None) -> Mosfet:
    """Convenience constructor for a PMOS device (magnitudes convention)."""
    return Mosfet(width=width, length=length, drain_current=drain_current,
                  is_nmos=False, tech=tech, temperature_k=temperature_k)
