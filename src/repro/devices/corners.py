"""Process corners: SS/TT/FF variants of the technology.

The paper's robustness claims ("overcome the supply voltage and process
variation") get exercised by rebuilding the interface on corner
technologies: slow (low mobility, high Vth), typical, fast.  Corner
magnitudes are the customary digital-era +-10 % mobility and -+50 mV
threshold shifts.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict

from .technology import Technology, TSMC180

__all__ = ["ProcessCorner", "corner_technology", "all_corners"]


class ProcessCorner(enum.Enum):
    """The classic three-corner set (NMOS/PMOS skewed together)."""

    SLOW = "ss"
    TYPICAL = "tt"
    FAST = "ff"


#: (mobility factor, threshold shift in volts) per corner.
_CORNER_SHIFTS: Dict[ProcessCorner, tuple] = {
    ProcessCorner.SLOW: (0.90, +0.05),
    ProcessCorner.TYPICAL: (1.00, 0.0),
    ProcessCorner.FAST: (1.10, -0.05),
}


def corner_technology(corner: ProcessCorner,
                      base: Technology = TSMC180) -> Technology:
    """The technology description skewed to a process corner."""
    mobility, vth_shift = _CORNER_SHIFTS[corner]
    return dataclasses.replace(
        base,
        name=f"{base.name}-{corner.value}",
        u_n_cox=base.u_n_cox * mobility,
        u_p_cox=base.u_p_cox * mobility,
        vth_n=base.vth_n + vth_shift,
        vth_p=base.vth_p + vth_shift,
    )


def all_corners(base: Technology = TSMC180) -> Dict[ProcessCorner,
                                                    Technology]:
    """All three corner technologies keyed by corner."""
    return {corner: corner_technology(corner, base)
            for corner in ProcessCorner}
