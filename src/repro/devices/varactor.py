"""Accumulation-mode MOS varactors (negative Miller capacitance devices).

The paper's CML buffer uses transistors M7/M8 cross-coupled from each
output to the opposite input as *negative Miller capacitors*: "with a
gate-source voltage near zero, these devices are realized as
accumulation-mode MOS varactors to obtain a larger fraction of the gate
oxide capacitance and better tracking."

A cross-coupled capacitor C_n from the inverting output back to the
input contributes a Miller-transformed input capacitance

    C_in_extra = C_n (1 - A_v)   with A_v negative-signed as +|A|
               = -C_n (|A| - 1)

i.e. it *subtracts* from the ordinary Miller-multiplied Cgd of the input
pair, which is the input-pole relief the paper exploits.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .technology import Technology, TSMC180

__all__ = ["MosVaractor", "neutralized_input_capacitance"]


@dataclasses.dataclass(frozen=True)
class MosVaractor:
    """An accumulation-mode MOS varactor.

    The C-V characteristic is modeled as a smooth transition between the
    depleted minimum (``c_min_fraction`` of the oxide capacitance) and
    the accumulated maximum (``c_max_fraction``), centred at
    ``v_flatband`` with a transition width ``v_transition``:

        C(V) = Cmin + (Cmax - Cmin) * 0.5*(1 + tanh((V - Vfb)/Vt))

    Near ``Vgs = 0`` with a small negative flatband, the device sits high
    on this curve — the "larger fraction of the gate oxide capacitance"
    the paper quotes.
    """

    width: float
    length: float
    tech: Technology = TSMC180
    c_max_fraction: float = 0.9
    c_min_fraction: float = 0.3
    v_flatband: float = -0.2
    v_transition: float = 0.25

    def __post_init__(self) -> None:
        if self.width <= 0 or self.length <= 0:
            raise ValueError("varactor dimensions must be positive")
        if not 0 < self.c_min_fraction < self.c_max_fraction <= 1.0:
            raise ValueError(
                "need 0 < c_min_fraction < c_max_fraction <= 1, got "
                f"{self.c_min_fraction}, {self.c_max_fraction}"
            )
        if self.v_transition <= 0:
            raise ValueError(
                f"v_transition must be positive, got {self.v_transition}"
            )

    @property
    def c_oxide(self) -> float:
        """Full oxide capacitance W*L*Cox — the physical ceiling."""
        return self.width * self.length * self.tech.cox_per_area

    def capacitance(self, vgs: float | np.ndarray) -> float | np.ndarray:
        """C(Vgs) from the smooth accumulation model."""
        c_min = self.c_min_fraction * self.c_oxide
        c_max = self.c_max_fraction * self.c_oxide
        x = (np.asarray(vgs, dtype=float) - self.v_flatband) / self.v_transition
        c = c_min + (c_max - c_min) * 0.5 * (1.0 + np.tanh(x))
        if np.isscalar(vgs):
            return float(c)
        return c

    def capacitance_at_zero_bias(self) -> float:
        """C at Vgs = 0 — the operating point in the CML buffer."""
        return float(self.capacitance(0.0))

    def tuning_ratio(self) -> float:
        """Cmax/Cmin of the modeled characteristic."""
        return self.c_max_fraction / self.c_min_fraction


def neutralized_input_capacitance(c_gd: float, c_neutralize: float,
                                  voltage_gain: float) -> float:
    """Effective input capacitance of a stage with cross-coupled varactors.

    ``c_gd`` Miller-multiplies by ``(1 + |A|)``; a cross-coupled
    ``c_neutralize`` to the *opposite* (inverted) output contributes
    ``c_neutralize * (1 - |A|)`` — negative for |A| > 1.  Perfect
    neutralization happens at ``c_neutralize = c_gd``; the return value
    is floored at zero because a net-negative node capacitance is not
    physical (it would mean the model is outside its validity range).
    """
    if c_gd < 0 or c_neutralize < 0:
        raise ValueError("capacitances must be non-negative")
    a = abs(voltage_gain)
    miller = c_gd * (1.0 + a)
    relief = c_neutralize * (a - 1.0)
    return max(0.0, miller - relief)
