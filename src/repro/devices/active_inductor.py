"""PMOS active-inductor load (the paper's key area-saving technique).

The paper's CML buffers replace spiral inductors with a PMOS whose gate
is driven through a series resistance Rg (Fig 6: "an active inductor
formed by PMOS transistors that act as active resistors").  Looking into
the source of such a device, the impedance is

    Z(s) = (1 + s Rg Cgs) / (gm + s Cgs)

* at DC: ``1/gm`` (a resistor — sets the stage gain),
* at high frequency: ``Rg``,
* in between (when ``Rg > 1/gm``): rising with frequency — inductive,
  with an equivalent series inductance

    L_eff = Cgs (Rg - 1/gm) / gm.

Shunt peaking with this L_eff against the node capacitance is what
broadens the CML buffer bandwidth; the PMOS width (through gm and Cgs)
is the tuning knob the paper sweeps in Fig 7.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..lti.transfer_function import RationalTF
from .mosfet import Mosfet

__all__ = ["ActiveInductor"]


@dataclasses.dataclass(frozen=True)
class ActiveInductor:
    """A PMOS active-inductor load element.

    Parameters
    ----------
    device:
        The biased PMOS transistor acting as the load.
    gate_resistance:
        The series gate resistance Rg in ohms.  Must exceed ``1/gm`` for
        the element to be inductive; the constructor does not force this
        (a sub-critical Rg is simply a resistive load, and the Fig 7
        sweep intentionally crosses the boundary).
    """

    device: Mosfet
    gate_resistance: float

    def __post_init__(self) -> None:
        if self.gate_resistance <= 0:
            raise ValueError(
                f"gate_resistance must be positive, got {self.gate_resistance}"
            )

    # -- element values ----------------------------------------------------
    @property
    def r_dc(self) -> float:
        """Low-frequency resistance 1/gm (sets CML stage DC gain)."""
        return 1.0 / self.device.gm

    @property
    def r_hf(self) -> float:
        """High-frequency asymptotic resistance (= Rg)."""
        return self.gate_resistance

    @property
    def is_inductive(self) -> bool:
        """True when Rg > 1/gm so the impedance rises with frequency."""
        return self.gate_resistance > self.r_dc

    @property
    def l_effective(self) -> float:
        """Equivalent series inductance Cgs (Rg - 1/gm)/gm (henries).

        Zero or negative means the element is not inductive.
        """
        return (self.device.cgs
                * (self.gate_resistance - self.r_dc) / self.device.gm)

    @property
    def zero_hz(self) -> float:
        """The impedance zero 1/(2 pi Rg Cgs) — onset of inductive rise."""
        return 1.0 / (2.0 * math.pi * self.gate_resistance * self.device.cgs)

    @property
    def pole_hz(self) -> float:
        """The impedance pole gm/(2 pi Cgs) — end of the inductive band."""
        return self.device.gm / (2.0 * math.pi * self.device.cgs)

    # -- impedance -----------------------------------------------------------
    def impedance_tf(self) -> RationalTF:
        """Z(s) = (1 + s Rg Cgs) / (gm + s Cgs) as a rational function."""
        cgs = self.device.cgs
        num = np.array([self.gate_resistance * cgs, 1.0])
        den = np.array([cgs, self.device.gm])
        return RationalTF(num, den)

    def impedance(self, freq_hz: np.ndarray) -> np.ndarray:
        """Complex impedance at the given frequencies."""
        return self.impedance_tf().response(np.asarray(freq_hz, dtype=float))

    def quality_factor(self, freq_hz: float) -> float:
        """Q = Im(Z)/Re(Z) at a frequency (zero when not inductive there)."""
        z = complex(self.impedance(np.array([freq_hz]))[0])
        if z.real <= 0:
            raise ValueError("non-physical impedance with Re(Z) <= 0")
        return max(0.0, z.imag / z.real)

    def with_gate_resistance(self, gate_resistance: float) -> "ActiveInductor":
        """Same device, different Rg (the peaking-control knob)."""
        return dataclasses.replace(self, gate_resistance=gate_resistance)

    def scaled(self, width_factor: float) -> "ActiveInductor":
        """Scale the PMOS width (the Fig 7 sweep variable).

        Width scaling at constant current density scales gm and Cgs
        together: ``1/gm`` (hence DC gain of the stage) drops while the
        inductive band shifts, trading gain for bandwidth exactly as the
        paper's Fig 7(b) shows.
        """
        return dataclasses.replace(self, device=self.device.scaled(width_factor))
