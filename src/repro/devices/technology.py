"""0.18 um CMOS process constants.

The paper's circuits are designed in a 1.8 V 0.18 um CMOS technology
(TSMC).  We do not have the PDK; this module encodes the textbook-level
process parameters for that node (as published in design literature for
generic 0.18 um processes) with first-order temperature scaling.  Every
pole/zero the behavioral circuit models place is derived from the gm and
capacitance values these constants produce, which is what puts them at
the right GHz-scale frequencies.
"""

from __future__ import annotations

import dataclasses

from .._units import MICRO, NANO, ROOM_TEMPERATURE

__all__ = ["Technology", "TSMC180"]


@dataclasses.dataclass(frozen=True)
class Technology:
    """A CMOS process node description.

    All values are at the nominal temperature ``t_nom`` (kelvin); the
    accessor methods apply first-order temperature scaling:

    * mobility: ``mu(T) = mu0 * (T / T0)**mobility_exponent``
    * threshold: ``vth(T) = vth0 + tc_vth * (T - T0)``
    """

    name: str
    l_min: float
    """Minimum drawn channel length in metres."""
    vdd: float
    """Nominal supply voltage in volts."""
    u_n_cox: float
    """NMOS process transconductance mu_n*Cox in A/V^2."""
    u_p_cox: float
    """PMOS process transconductance mu_p*Cox in A/V^2."""
    vth_n: float
    """NMOS threshold voltage in volts (positive)."""
    vth_p: float
    """PMOS threshold magnitude in volts (positive by convention)."""
    cox_per_area: float
    """Gate-oxide capacitance per unit area in F/m^2."""
    c_overlap_per_width: float
    """Gate-drain/source overlap capacitance per unit width in F/m."""
    e_sat: float
    """Velocity-saturation critical field in V/m."""
    lambda_per_length: float
    """Channel-length modulation: lambda = lambda_per_length / L (1/V)."""
    t_nom: float = ROOM_TEMPERATURE
    mobility_exponent: float = -1.5
    tc_vth: float = -1.0e-3
    """Threshold temperature coefficient in V/K (~ -1 mV/K)."""

    def __post_init__(self) -> None:
        for field in ("l_min", "vdd", "u_n_cox", "u_p_cox", "vth_n", "vth_p",
                      "cox_per_area", "c_overlap_per_width", "e_sat",
                      "lambda_per_length", "t_nom"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")

    # -- temperature-scaled parameters -------------------------------------
    def mobility_factor(self, temperature_k: float) -> float:
        """Relative mobility mu(T)/mu(t_nom)."""
        if temperature_k <= 0:
            raise ValueError(f"temperature must be positive, got {temperature_k}")
        return (temperature_k / self.t_nom) ** self.mobility_exponent

    def u_cox(self, is_nmos: bool, temperature_k: float | None = None) -> float:
        """mu*Cox for the requested device type at temperature."""
        base = self.u_n_cox if is_nmos else self.u_p_cox
        if temperature_k is None:
            return base
        return base * self.mobility_factor(temperature_k)

    def vth(self, is_nmos: bool, temperature_k: float | None = None) -> float:
        """Threshold magnitude at temperature (always positive)."""
        base = self.vth_n if is_nmos else self.vth_p
        if temperature_k is None:
            return base
        return base + self.tc_vth * (temperature_k - self.t_nom)

    def v_sat_overdrive(self, length: float) -> float:
        """Overdrive at which velocity saturation takes over: E_sat * L.

        For L = 0.18 um this is ~0.7-0.9 V: short-channel devices in this
        library operate partially velocity-saturated, softening gm below
        the square-law prediction.
        """
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        return self.e_sat * length

    def channel_lambda(self, length: float) -> float:
        """Channel-length modulation parameter lambda (1/V) for length L."""
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        return self.lambda_per_length / length


#: Generic 0.18 um, 1.8 V process (textbook values for the TSMC node the
#: paper used).  u_n_cox ~ 300 uA/V^2, u_p_cox ~ 70 uA/V^2, tox ~ 4.1 nm
#: => Cox ~ 8.4 fF/um^2, |Vth| ~ 0.45 V.
TSMC180 = Technology(
    name="generic-0.18um-1.8V",
    l_min=0.18 * MICRO,
    vdd=1.8,
    u_n_cox=300e-6,
    u_p_cox=70e-6,
    vth_n=0.45,
    vth_p=0.45,
    cox_per_area=8.4e-3,            # F/m^2  (= 8.4 fF/um^2)
    c_overlap_per_width=0.35 * NANO,  # 0.35 fF/um = 3.5e-10 F/m
    e_sat=4.0e6,                    # V/m -> E_sat*L ~ 0.72 V at 0.18 um
    lambda_per_length=0.02 * MICRO,  # lambda ~ 0.11 /V at L = 0.18 um
)
