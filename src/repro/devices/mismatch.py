"""Device mismatch (Pelgrom) model and Monte Carlo sampling.

The offset-cancellation loop of Fig 8 exists because "offset voltages
contributed from device and layout mismatches can become a problem
after three stages of amplification".  To quantify that, this module
implements the Pelgrom area law: the standard deviation of the
threshold mismatch between two nominally identical transistors is

    sigma(dVth) = A_vt / sqrt(W * L)

with A_vt ~ 5 mV*um for a 0.18 um process, plus a current-factor
(beta) mismatch term.  The Monte Carlo helpers sample input-referred
offsets for differential pairs and full amplifier chains — feeding the
yield bench that justifies the offset loop.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

import numpy as np

from .mosfet import Mosfet

__all__ = ["MismatchModel", "pair_offset_sigma", "chain_offset_sigma",
           "sample_offsets"]


@dataclasses.dataclass(frozen=True)
class MismatchModel:
    """Pelgrom coefficients for a 0.18 um-class process."""

    a_vt: float = 5e-3 * 1e-6
    """Threshold matching coefficient in V*m (5 mV*um)."""
    a_beta: float = 0.01 * 1e-6
    """Current-factor matching coefficient (fractional) in m (1 %*um)."""

    def __post_init__(self) -> None:
        if self.a_vt <= 0 or self.a_beta <= 0:
            raise ValueError("matching coefficients must be positive")

    def vth_sigma(self, device: Mosfet) -> float:
        """sigma of the Vth difference of a matched pair (volts)."""
        return self.a_vt / math.sqrt(device.width * device.length)

    def beta_sigma(self, device: Mosfet) -> float:
        """sigma of the fractional beta difference of a matched pair."""
        return self.a_beta / math.sqrt(device.width * device.length)


def pair_offset_sigma(device: Mosfet,
                      model: MismatchModel | None = None) -> float:
    """Input-referred offset sigma of one differential pair.

    Vth mismatch refers directly to the input; beta mismatch refers as
    ``(Vov/2) * (dBeta/beta)``.  Quadrature sum of the two.
    """
    model = model or MismatchModel()
    vth_term = model.vth_sigma(device)
    beta_term = 0.5 * device.v_overdrive * model.beta_sigma(device)
    return math.hypot(vth_term, beta_term)


def chain_offset_sigma(pairs: Sequence[Mosfet],
                       stage_gains: Sequence[float],
                       model: MismatchModel | None = None) -> float:
    """Input-referred offset sigma of a cascade of differential stages.

    Stage k's own offset refers to the chain input divided by the gain
    of all *preceding* stages, so the front stage dominates:

        sigma_in^2 = sum_k sigma_k^2 / (prod_{j<k} A_j)^2
    """
    if len(pairs) != len(stage_gains):
        raise ValueError(
            f"{len(pairs)} pairs but {len(stage_gains)} gains"
        )
    if not pairs:
        raise ValueError("need at least one stage")
    model = model or MismatchModel()
    total = 0.0
    gain_product = 1.0
    for device, gain in zip(pairs, stage_gains):
        sigma = pair_offset_sigma(device, model)
        total += (sigma / gain_product) ** 2
        gain_product *= abs(gain)
    return math.sqrt(total)


def sample_offsets(sigma: float, n_samples: int,
                   seed: Optional[int] = None) -> np.ndarray:
    """Monte Carlo draw of input-referred offsets (volts)."""
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    if n_samples < 1:
        raise ValueError(f"n_samples must be >= 1, got {n_samples}")
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, sigma, size=n_samples)
