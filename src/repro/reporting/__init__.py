"""Reporting helpers: ASCII figure rendering and table formatting used
by the benchmark harness to regenerate the paper's tables and figures.

The streaming renderers (:func:`render_histogram`,
:func:`format_quantile_table`, :func:`format_aggregates`) consume the
constant-size aggregates a ``keep_results=False`` sweep finalizes
(:mod:`repro.sweep.reducers`) — a million-scenario distribution
renders from a few hundred integers, never per-row data.
"""

from .ascii_plots import (render_bathtub, render_eye, render_gain_curve,
                          render_histogram, render_stateye, render_waveform)
from .tables import (format_aggregates, format_comparison,
                     format_quantile_table, format_table)

__all__ = [
    "render_eye",
    "render_gain_curve",
    "render_waveform",
    "render_histogram",
    "render_stateye",
    "render_bathtub",
    "format_table",
    "format_comparison",
    "format_quantile_table",
    "format_aggregates",
]
