"""Reporting helpers: ASCII figure rendering and table formatting used
by the benchmark harness to regenerate the paper's tables and figures.
"""

from .ascii_plots import render_eye, render_gain_curve, render_waveform
from .tables import format_table, format_comparison

__all__ = [
    "render_eye",
    "render_gain_curve",
    "render_waveform",
    "format_table",
    "format_comparison",
]
