"""ASCII rendering of eyes and frequency responses.

The benches regenerate the paper's *figures*; in a terminal-only
environment the closest faithful rendering is character art: eye
diagrams as 2-D density maps (the scope persistence view) and gain
curves as log-frequency line plots.  These renderers are deterministic
and dependency-free so bench output can be diffed.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.eye import EyeDiagram

__all__ = ["render_eye", "render_gain_curve", "render_waveform",
           "render_histogram", "render_stateye", "render_bathtub"]

_SHADES = " .:-=+*#%@"


def render_eye(eye: EyeDiagram, width: int = 64, height: int = 20,
               title: Optional[str] = None) -> str:
    """Render an eye diagram as an ASCII density plot.

    Each folded two-UI trace is rasterized onto a ``width x height``
    grid; cell darkness encodes hit density, like scope persistence.
    """
    if width < 16 or height < 8:
        raise ValueError("rendering grid too small (min 16x8)")
    traces = eye.two_ui_traces()
    v_max = float(np.max(traces))
    v_min = float(np.min(traces))
    span = v_max - v_min
    if span <= 0:
        span = 1.0
    grid = np.zeros((height, width))
    n_cols = traces.shape[1]
    x_positions = np.linspace(0, width - 1, n_cols).astype(int)
    for trace in traces:
        rows = ((v_max - trace) / span * (height - 1)).astype(int)
        rows = np.clip(rows, 0, height - 1)
        grid[rows, x_positions] += 1.0
    peak = grid.max()
    if peak > 0:
        grid = grid / peak
    lines = []
    if title:
        lines.append(title)
    for row in grid:
        chars = [_SHADES[int(v * (len(_SHADES) - 1))] for v in row]
        lines.append("".join(chars))
    lines.append(f"{'0':<{width // 2}}{'1 UI':>{width // 2}}")
    lines.append(f"v: {v_min * 1e3:+.1f} .. {v_max * 1e3:+.1f} mV, "
                 f"{traces.shape[0]} traces")
    return "\n".join(lines)


def render_histogram(histogram, width: int = 64, height: int = 12,
                     title: Optional[str] = None,
                     unit: str = "") -> str:
    """Render a streaming histogram as an ASCII column plot.

    ``histogram`` is anything histogram-shaped — typically the
    :class:`~repro.sweep.reducers.HistogramResult` a streaming sweep
    finalizes: ``edges`` (``n_bins + 1`` ascending values), integer
    ``counts`` per bin, and ``underflow``/``overflow`` tallies.  The
    whole point of the streaming layer is that this renders a
    million-scenario distribution from ``n_bins`` integers — no
    per-row data is ever touched.
    """
    if width < 16 or height < 4:
        raise ValueError("rendering grid too small (min 16x4)")
    edges = np.asarray(histogram.edges, dtype=float)
    counts = np.asarray(histogram.counts, dtype=float)
    if edges.ndim != 1 or counts.ndim != 1 \
            or edges.size != counts.size + 1:
        raise ValueError(
            f"need n_bins + 1 edges for n_bins counts, got "
            f"{edges.size} edges / {counts.size} counts"
        )
    # Re-bin onto the rendering width (sum-preserving: each source bin
    # lands in exactly one column).
    columns = np.zeros(width)
    targets = np.linspace(0, width - 1, counts.size).astype(int) \
        if counts.size > 1 else np.zeros(1, dtype=int)
    np.add.at(columns, targets, counts)
    peak = columns.max()
    lines = []
    if title:
        lines.append(title)
    for level in range(height, 0, -1):
        threshold = (level - 0.5) / height
        row = "".join("#" if peak > 0 and column / peak >= threshold
                      else " " for column in columns)
        label = f"{peak * level / height:8.3g}" if peak > 0 else " " * 8
        lines.append(f"{label} |{row}")
    lines.append(" " * 9 + "+" + "-" * width)
    lo, hi = f"{edges[0]:.4g}{unit}", f"{edges[-1]:.4g}{unit}"
    lines.append(" " * 10 + lo + hi.rjust(width - len(lo)))
    total = int(counts.sum())
    out_of_range = (int(getattr(histogram, "underflow", 0)),
                    int(getattr(histogram, "overflow", 0)))
    lines.append(f"{total} in range, {out_of_range[0]} below, "
                 f"{out_of_range[1]} above")
    return "\n".join(lines)


def render_stateye(result, width: int = 64, height: int = 20,
                   eye: Optional[int] = None,
                   title: Optional[str] = None) -> str:
    """Render a statistical eye (BER(t, v) surface) as ASCII.

    ``result`` is a :class:`~repro.stateye.StatEyeResult`; cell darkness
    encodes log10(BER) from the result's ``ber_floor`` (blank, fully
    open) up to 0.5 (darkest, closed) — the character-art analogue of
    the classic StatEye colour map.  ``eye`` selects a sub-eye (default:
    the worst one).  Cells are worst-case (max-BER) pooled so a thin
    closed streak never disappears in the downsampling.
    """
    if width < 16 or height < 8:
        raise ValueError("rendering grid too small (min 16x8)")
    surface = np.asarray(result.ber_surface(eye), dtype=float)
    floor = float(result.ber_floor)
    log_ber = np.log10(np.clip(surface, floor, 0.5))
    lo, hi = np.log10(floor), np.log10(0.5)
    # Worst-case pooling onto the rendering grid: voltage axis tops out
    # the plot (ascending grid -> first rendered row is the max voltage).
    cols = np.linspace(0, width, result.n_phases + 1)[:-1].astype(int)
    rows = height - 1 - np.linspace(
        0, height, result.n_voltages + 1)[:-1].astype(int)
    rows = np.clip(rows, 0, height - 1)
    grid = np.full((height, width), lo)
    for p in range(result.n_phases):
        np.maximum.at(grid[:, cols[p]], rows, log_ber[p])
    lines = []
    if title:
        lines.append(title)
    for row in grid:
        norm = (row - lo) / max(hi - lo, 1e-12)
        lines.append("".join(
            _SHADES[int(v * (len(_SHADES) - 1))] for v in norm))
    lines.append(f"{'0':<{width // 2}}{'1 UI':>{width // 2}}")
    v = result.voltages
    lines.append(
        f"v: {v[0] * 1e3:+.1f} .. {v[-1] * 1e3:+.1f} mV, "
        f"BER {result.ber:.2e} @ phase {result.best_phase_ui:.3f} UI"
    )
    return "\n".join(lines)


def render_bathtub(curve, width: int = 64, height: int = 16,
                   title: Optional[str] = None,
                   target_ber: Optional[float] = None) -> str:
    """Render a bathtub curve (log-BER vs sampling phase) as ASCII.

    ``curve`` is a :class:`~repro.analysis.ber.BathtubCurve` — from the
    time-domain fit or a statistical eye's :meth:`bathtub`.  The y axis
    is log10(BER) with decade labels; an optional ``target_ber`` draws
    a horizontal marker line at the compliance level.
    """
    if width < 16 or height < 8:
        raise ValueError("rendering grid too small (min 16x8)")
    phases = np.asarray(curve.phases_ui, dtype=float)
    log_ber = np.log10(np.clip(np.asarray(curve.ber, dtype=float),
                               1e-300, 0.5))
    lo = float(np.floor(log_ber.min()))
    hi = float(np.ceil(max(log_ber.max(), lo + 1.0)))
    span = max(hi - lo, 1e-12)
    x = ((phases - phases.min()) / max(np.ptp(phases), 1e-12)
         * (width - 1)).astype(int)
    y = ((hi - log_ber) / span * (height - 1)).astype(int)
    grid = [[" "] * width for _ in range(height)]
    if target_ber is not None:
        if not 0.0 < target_ber < 0.5:
            raise ValueError(
                f"target_ber must be in (0, 0.5), got {target_ber}"
            )
        ty = int((hi - np.log10(target_ber)) / span * (height - 1))
        if 0 <= ty < height:
            grid[ty] = ["-"] * width
    for xi, yi in zip(x, np.clip(y, 0, height - 1)):
        grid[yi][xi] = "*"
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        label = hi - i * span / (height - 1)
        lines.append(f"1e{label:+04.0f} |" + "".join(row))
    lines.append(" " * 7 + f"{'0':<{width // 2}}{'1 UI':>{width // 2}}")
    return "\n".join(lines)


def render_gain_curve(freqs_hz: Sequence[float], gains_db: Sequence[float],
                      width: int = 64, height: int = 16,
                      title: Optional[str] = None) -> str:
    """Render gain-vs-frequency as an ASCII line plot (log-x)."""
    freqs = np.asarray(freqs_hz, dtype=float)
    gains = np.asarray(gains_db, dtype=float)
    if freqs.shape != gains.shape or freqs.size < 2:
        raise ValueError("need matching frequency/gain arrays (>= 2 points)")
    if np.any(freqs <= 0):
        raise ValueError("frequencies must be positive for a log axis")
    log_f = np.log10(freqs)
    x = ((log_f - log_f.min()) / max(np.ptp(log_f), 1e-12)
         * (width - 1)).astype(int)
    g_min, g_max = float(gains.min()), float(gains.max())
    span = max(g_max - g_min, 1e-9)
    y = ((g_max - gains) / span * (height - 1)).astype(int)
    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, y):
        grid[yi][xi] = "*"
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        label = g_max - i * span / (height - 1)
        lines.append(f"{label:7.1f} |" + "".join(row))
    lines.append(" " * 9 + f"{freqs.min():.2e} Hz ... {freqs.max():.2e} Hz")
    return "\n".join(lines)


def render_waveform(time_s: Sequence[float], volts: Sequence[float],
                    width: int = 72, height: int = 14,
                    title: Optional[str] = None) -> str:
    """Render a time-domain waveform segment as ASCII."""
    t = np.asarray(time_s, dtype=float)
    v = np.asarray(volts, dtype=float)
    if t.shape != v.shape or t.size < 2:
        raise ValueError("need matching time/voltage arrays (>= 2 points)")
    x = ((t - t.min()) / max(np.ptp(t), 1e-30) * (width - 1)).astype(int)
    v_min, v_max = float(v.min()), float(v.max())
    span = max(v_max - v_min, 1e-12)
    y = ((v_max - v) / span * (height - 1)).astype(int)
    grid = [[" "] * width for _ in range(height)]
    for xi, yi in zip(x, y):
        grid[yi][xi] = "*"
    lines = []
    if title:
        lines.append(title)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append(f"t: {t.min() * 1e9:.2f}..{t.max() * 1e9:.2f} ns, "
                 f"v: {v_min * 1e3:+.1f}..{v_max * 1e3:+.1f} mV")
    return "\n".join(lines)
