"""Plain-text table formatting for bench output.

Benches print the same rows the paper's Table I reports; this module
renders row-dictionaries into aligned monospace tables without any
third-party dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_comparison"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Sequence[str] | None = None) -> str:
    """Render row dictionaries as an aligned text table.

    ``columns`` fixes the column order; by default the keys of the first
    row are used.
    """
    if not rows:
        raise ValueError("no rows to format")
    if columns is None:
        columns = list(rows[0].keys())
    headers = list(columns)
    body: List[List[str]] = [
        [_cell(row.get(col, "")) for col in headers] for row in rows
    ]
    widths = [max(len(headers[i]), *(len(line[i]) for line in body))
              for i in range(len(headers))]
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for line in body:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(line, widths)))
    return "\n".join(lines)


def format_comparison(label_a: str, label_b: str,
                      metrics: Dict[str, tuple]) -> str:
    """Render an A-vs-B comparison: metric -> (value_a, value_b).

    Used by ablation benches ("without equalizer" vs "with equalizer").
    """
    rows = [
        {"metric": name, label_a: pair[0], label_b: pair[1]}
        for name, pair in metrics.items()
    ]
    return format_table(rows, columns=["metric", label_a, label_b])
