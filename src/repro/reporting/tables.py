"""Plain-text table formatting for bench output.

Benches print the same rows the paper's Table I reports; this module
renders row-dictionaries into aligned monospace tables without any
third-party dependency.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["format_table", "format_comparison", "format_quantile_table",
           "format_aggregates"]


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Sequence[str] | None = None) -> str:
    """Render row dictionaries as an aligned text table.

    ``columns`` fixes the column order; by default the keys of the first
    row are used.
    """
    if not rows:
        raise ValueError("no rows to format")
    if columns is None:
        columns = list(rows[0].keys())
    headers = list(columns)
    body: List[List[str]] = [
        [_cell(row.get(col, "")) for col in headers] for row in rows
    ]
    widths = [max(len(headers[i]), *(len(line[i]) for line in body))
              for i in range(len(headers))]
    sep = "-+-".join("-" * w for w in widths)
    lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for line in body:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(line, widths)))
    return "\n".join(lines)


def format_quantile_table(quantiles, label: str = "value") -> str:
    """Render a streaming quantile estimate as a two-column table.

    ``quantiles`` is anything quantile-shaped — typically the
    :class:`~repro.sweep.reducers.QuantilesResult` a streaming sweep
    finalizes (``qs``, ``values``, ``n``): constant-size state, so a
    million-scenario distribution renders without per-row data.
    """
    rows = [{"quantile": f"p{100 * q:g}", label: value}
            for q, value in zip(quantiles.qs, quantiles.values)]
    return (format_table(rows, columns=["quantile", label])
            + f"\n(n = {quantiles.n})")


def _summarize_aggregate(value: object) -> object:
    """One-cell summary of a finalized aggregate (rich results get a
    compact human rendering; scalars pass through)."""
    mean = getattr(value, "mean", None)
    if mean is not None and hasattr(value, "variance"):
        return f"{mean:.6g} ± {value.std:.3g} (n={value.n})"
    if hasattr(value, "n_pass") and hasattr(value, "n_total"):
        return f"{value.n_pass}/{value.n_total} ({100 * value.fraction:.3g}%)"
    if hasattr(value, "min") and hasattr(value, "max") \
            and hasattr(value, "n"):
        return f"[{value.min:.6g}, {value.max:.6g}] (n={value.n})"
    if hasattr(value, "qs") and hasattr(value, "values"):
        return ", ".join(f"p{100 * q:g}={v:.6g}"
                         for q, v in zip(value.qs, value.values))
    if hasattr(value, "counts") and hasattr(value, "edges"):
        return (f"{len(value.counts)} bins over "
                f"[{value.edges[0]:.6g}, {value.edges[-1]:.6g}], "
                f"n={value.n}")
    return value


def format_aggregates(aggregates: Dict[str, object]) -> str:
    """Render a streaming sweep's ``SweepResult.aggregates`` mapping as
    an aligned table — the whole-study summary a ``keep_results=False``
    sweep produces instead of a dense result list."""
    if not aggregates:
        raise ValueError("no aggregates to format")
    rows = [{"aggregate": name, "value": _summarize_aggregate(value)}
            for name, value in aggregates.items()]
    return format_table(rows, columns=["aggregate", "value"])


def format_comparison(label_a: str, label_b: str,
                      metrics: Dict[str, tuple]) -> str:
    """Render an A-vs-B comparison: metric -> (value_a, value_b).

    Used by ablation benches ("without equalizer" vs "with equalizer").
    """
    rows = [
        {"metric": name, label_a: pair[0], label_b: pair[1]}
        for name, pair in metrics.items()
    ]
    return format_table(rows, columns=["metric", label_a, label_b])
