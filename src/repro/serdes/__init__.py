"""SERDES framing: the switch-fabric context of the paper's Fig 1.

8b/10b line coding (run-length/DC-balance guarantees for the CDR and
the AC-coupled CML path), serializer/deserializer with K28.5 comma
alignment, and a full framed-link runner.
"""

from .encoding import (
    Encoder8b10b,
    Decoder8b10b,
    K28_5,
    encode_bytes,
    decode_bits,
    CodingError,
)
from .serializer import (
    Serializer,
    Deserializer,
    align_to_comma,
    LinkReport,
    LinkBatchReport,
    run_link,
    run_link_batch,
)

__all__ = [
    "Encoder8b10b",
    "Decoder8b10b",
    "K28_5",
    "encode_bytes",
    "decode_bits",
    "CodingError",
    "Serializer",
    "Deserializer",
    "align_to_comma",
    "LinkReport",
    "LinkBatchReport",
    "run_link",
    "run_link_batch",
]
