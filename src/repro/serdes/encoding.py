"""8b/10b line coding (Widmer-Franaszek), the framing layer of the
switch-fabric SERDES the paper's interface lives in (Fig 1).

A 10 Gb/s backplane link of this era carries 8b/10b-coded data: the
code bounds run length (max 5) and running disparity (+-1 at word
boundaries), guaranteeing the transition density the CDR's bang-bang
phase detector needs and keeping the spectrum away from the offset
loop's high-pass corner.

Implementation: the standard 5b/6b + 3b/4b sub-block tables with
running-disparity selection, D.x.y and K.x.y code points, and the
K28.5 comma for word alignment.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["Encoder8b10b", "Decoder8b10b", "K28_5", "encode_bytes",
           "decode_bits", "CodingError"]


class CodingError(ValueError):
    """Raised on invalid code points or disparity violations."""


def _bits(value: int, width: int) -> Tuple[int, ...]:
    """LSB-first bit tuple of ``value``."""
    return tuple((value >> i) & 1 for i in range(width))


def _disparity(bits: Tuple[int, ...]) -> int:
    """Ones minus zeros."""
    ones = sum(bits)
    return ones - (len(bits) - ones)


# 5b/6b table: EDCBA -> abcdei for RD- (negative running disparity).
# Values from the published standard, written LSB(a) first.
_5B6B_RD_NEG: Dict[int, Tuple[int, ...]] = {
    0: (1, 0, 0, 1, 1, 1), 1: (0, 1, 1, 1, 0, 1), 2: (1, 0, 1, 1, 0, 1),
    3: (1, 1, 0, 0, 0, 1), 4: (1, 1, 0, 1, 0, 1), 5: (1, 0, 1, 0, 0, 1),
    6: (0, 1, 1, 0, 0, 1), 7: (1, 1, 1, 0, 0, 0), 8: (1, 1, 1, 0, 0, 1),
    9: (1, 0, 0, 1, 0, 1), 10: (0, 1, 0, 1, 0, 1), 11: (1, 1, 0, 1, 0, 0),
    12: (0, 0, 1, 1, 0, 1), 13: (1, 0, 1, 1, 0, 0), 14: (0, 1, 1, 1, 0, 0),
    15: (0, 1, 0, 1, 1, 1), 16: (0, 1, 1, 0, 1, 1), 17: (1, 0, 0, 0, 1, 1),
    18: (0, 1, 0, 0, 1, 1), 19: (1, 1, 0, 0, 1, 0), 20: (0, 0, 1, 0, 1, 1),
    21: (1, 0, 1, 0, 1, 0), 22: (0, 1, 1, 0, 1, 0), 23: (1, 1, 1, 0, 1, 0),
    24: (1, 1, 0, 0, 1, 1), 25: (1, 0, 0, 1, 1, 0), 26: (0, 1, 0, 1, 1, 0),
    27: (1, 1, 0, 1, 1, 0), 28: (0, 0, 1, 1, 1, 0), 29: (1, 0, 1, 1, 1, 0),
    30: (0, 1, 1, 1, 1, 0), 31: (1, 0, 1, 0, 1, 1),
}

# 3b/4b table: HGF -> fghj for RD-.
_3B4B_RD_NEG: Dict[int, Tuple[int, ...]] = {
    0: (1, 0, 1, 1), 1: (1, 0, 0, 1), 2: (0, 1, 0, 1), 3: (1, 1, 0, 0),
    4: (1, 1, 0, 1), 5: (1, 0, 1, 0), 6: (0, 1, 1, 0), 7: (1, 1, 1, 0),
}
# D.x.A7 alternate (used to avoid run-length violations).
_3B4B_A7_RD_NEG: Tuple[int, ...] = (0, 1, 1, 1)

# K28 special 6b block for RD-: 001111 written abcdei LSB-first.
_K28_6B_RD_NEG: Tuple[int, ...] = (0, 0, 1, 1, 1, 1)
# K.x.5 4b block (fghj) for RD-.
_K_3B4B_RD_NEG: Dict[int, Tuple[int, ...]] = {
    5: (1, 0, 1, 0),
}

#: K28.5 — the comma control character used for word alignment.
K28_5 = ("K", 28, 5)


def _invert(bits: Tuple[int, ...]) -> Tuple[int, ...]:
    return tuple(1 - b for b in bits)


#: Balanced sub-blocks that nevertheless alternate with RD in the
#: standard (their single-form transmission would create 6-bit runs at
#: sub-block boundaries): D.7's 6b block and the x.3 4b block.
_ALTERNATING_BALANCED = {
    (1, 1, 1, 0, 0, 0),  # D.7 six: 111000 (RD-) / 000111 (RD+)
    (1, 1, 0, 0),        # y=3 four: 1100 (RD-) / 0011 (RD+)
}


def _select_block(table_neg: Tuple[int, ...], rd: int
                  ) -> Tuple[Tuple[int, ...], int]:
    """Disparity-correct sub-block selection."""
    disparity = _disparity(table_neg)
    if disparity == 0:
        if table_neg in _ALTERNATING_BALANCED and rd > 0:
            return _invert(table_neg), rd
        return table_neg, rd
    # Unbalanced blocks are stored for RD-; they carry +2 disparity.
    if rd < 0:
        return table_neg, rd + disparity
    return _invert(table_neg), rd - disparity


@dataclasses.dataclass
class Encoder8b10b:
    """Stateful 8b/10b encoder with running disparity."""

    running_disparity: int = -1

    def encode_symbol(self, value: int, control: bool = False
                      ) -> np.ndarray:
        """Encode one byte (or K-code) into 10 bits (transmission order).

        Data symbols are D.x.y with x = value[4:0], y = value[7:5];
        control symbols currently support K28.5 (the comma), the only
        control code the link layer here uses.
        """
        if not 0 <= value <= 255:
            raise CodingError(f"byte out of range: {value}")
        x = value & 0x1F
        y = (value >> 5) & 0x7
        rd = self.running_disparity

        if control:
            if (x, y) != (28, 5):
                raise CodingError(
                    f"unsupported control code K.{x}.{y} (only K28.5)"
                )
            six, rd = _select_block(_K28_6B_RD_NEG, rd)
            four_neg = _K_3B4B_RD_NEG[5]
            # K28.5's 4b block always alternates with RD.
            if self.running_disparity < 0:
                four = four_neg
                rd_after = rd + _disparity(four_neg)
            else:
                four = _invert(four_neg)
                rd_after = rd - _disparity(four_neg)
            self.running_disparity = 1 if rd_after > 0 else -1
            return np.array(six + four, dtype=np.int8)

        six, rd_mid = _select_block(_5B6B_RD_NEG[x], rd)
        # A7 substitution: avoid run-length violation for D.x.7 when the
        # 6b block ends in two equal bits matching the P7 pattern.
        use_a7 = y == 7 and (
            (rd_mid < 0 and x in (17, 18, 20)) or
            (rd_mid > 0 and x in (11, 13, 14))
        )
        four_neg = _3B4B_A7_RD_NEG if use_a7 else _3B4B_RD_NEG[y]
        four, rd_after = _select_block(four_neg, rd_mid)
        self.running_disparity = 1 if rd_after > 0 else -1
        if rd_after == 0:
            self.running_disparity = 1 if rd > 0 else -1
        return np.array(six + four, dtype=np.int8)

    def encode(self, payload: bytes, prepend_commas: int = 2
               ) -> np.ndarray:
        """Encode a byte payload, preceded by K28.5 comma symbols."""
        words: List[np.ndarray] = []
        for _ in range(prepend_commas):
            words.append(self.encode_symbol(0xBC, control=True))
        for byte in payload:
            words.append(self.encode_symbol(byte))
        return np.concatenate(words) if words else np.array([],
                                                            dtype=np.int8)


class Decoder8b10b:
    """Table-inverting 8b/10b decoder (disparity-agnostic lookup)."""

    def __init__(self) -> None:
        self._lut: Dict[Tuple[int, ...], Tuple[int, bool]] = {}

        def variants(block: Tuple[int, ...]) -> Tuple[Tuple[int, ...], ...]:
            # Balanced sub-blocks have a single transmitted form —
            # except the alternating pair (D.7 six, x.3 four);
            # unbalanced ones appear inverted under positive disparity.
            if (_disparity(block) == 0
                    and block not in _ALTERNATING_BALANCED):
                return (block,)
            return (block, _invert(block))

        for x, six_neg in _5B6B_RD_NEG.items():
            for y, four_neg in _3B4B_RD_NEG.items():
                value = (y << 5) | x
                for six in variants(six_neg):
                    for four in variants(four_neg):
                        self._lut.setdefault(six + four, (value, False))
            # D.x.7 alternate (A7) forms map back to y = 7.
            value = (7 << 5) | x
            for six in variants(six_neg):
                for four in variants(_3B4B_A7_RD_NEG):
                    self._lut.setdefault(six + four, (value, False))
        # K28.5 entries override: the comma is unambiguous by design.
        # Its 4b block is balanced yet still alternates with RD (that
        # alternation is what creates the singular comma pattern), so
        # both forms must be accepted.
        for six in variants(_K28_6B_RD_NEG):
            for four in (_K_3B4B_RD_NEG[5], _invert(_K_3B4B_RD_NEG[5])):
                self._lut[six + four] = (0xBC, True)

    def decode_symbol(self, bits: np.ndarray) -> Tuple[int, bool]:
        """Decode 10 bits into (byte, is_control).

        Raises :class:`CodingError` for invalid code groups — the
        error-detection property 8b/10b provides for free.
        """
        key = tuple(int(b) for b in bits)
        if len(key) != 10:
            raise CodingError(f"need 10 bits, got {len(key)}")
        try:
            return self._lut[key]
        except KeyError:
            raise CodingError(f"invalid 10b code group: {key}") from None

    def decode(self, bits: np.ndarray, strip_commas: bool = True
               ) -> bytes:
        """Decode a 10b-aligned bit stream back into payload bytes."""
        bits = np.asarray(bits)
        if len(bits) % 10 != 0:
            raise CodingError(
                f"bit stream length {len(bits)} not a multiple of 10"
            )
        out = bytearray()
        for start in range(0, len(bits), 10):
            value, is_control = self.decode_symbol(bits[start:start + 10])
            if is_control and strip_commas:
                continue
            out.append(value)
        return bytes(out)


def encode_bytes(payload: bytes, prepend_commas: int = 2) -> np.ndarray:
    """One-shot encode with a fresh encoder."""
    return Encoder8b10b().encode(payload, prepend_commas=prepend_commas)


def decode_bits(bits: np.ndarray, strip_commas: bool = True) -> bytes:
    """One-shot decode with a fresh decoder."""
    return Decoder8b10b().decode(bits, strip_commas=strip_commas)
