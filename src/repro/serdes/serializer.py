"""Serializer / deserializer: bytes <-> 10 Gb/s analog waveform.

The top of the paper's Fig 1 stack: payload bytes are 8b/10b coded,
serialized to NRZ at the line rate, driven through the I/O interface and
channel, recovered by the CDR, comma-aligned and decoded back to bytes.
This module provides the framing ends; the analog middle is any
waveform-to-waveform callable (an interface pipeline, a channel, or a
composition).
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Callable, List, Optional

import numpy as np

from ..signals.batch import WaveformBatch
from ..signals.nrz import NrzEncoder
from ..signals.waveform import Waveform
from .encoding import Decoder8b10b, Encoder8b10b, CodingError

__all__ = ["Serializer", "Deserializer", "align_to_comma", "LinkReport",
           "LinkBatchReport", "run_link", "run_link_batch"]

#: The two transmitted forms of K28.5 (RD- and RD+), transmission order.
_COMMA_NEG = (0, 0, 1, 1, 1, 1, 1, 0, 1, 0)
_COMMA_POS = (1, 1, 0, 0, 0, 0, 0, 1, 0, 1)


@dataclasses.dataclass
class Serializer:
    """Bytes -> 8b/10b -> NRZ waveform at the line rate."""

    bit_rate: float = 10e9
    samples_per_bit: int = 16
    amplitude: float = 0.25
    prepend_commas: int = 4

    def serialize(self, payload: bytes) -> Waveform:
        """Encode and modulate a payload."""
        if not payload:
            raise ValueError("payload must not be empty")
        bits = Encoder8b10b().encode(payload,
                                     prepend_commas=self.prepend_commas)
        encoder = NrzEncoder(bit_rate=self.bit_rate,
                             samples_per_bit=self.samples_per_bit,
                             amplitude=self.amplitude)
        return encoder.encode(bits)

    @property
    def line_rate_overhead(self) -> float:
        """The 8b/10b rate penalty: 1.25 line bits per payload bit."""
        return 10.0 / 8.0


def align_to_comma(bits: np.ndarray, last: bool = False) -> Optional[int]:
    """Find the bit offset of a K28.5 comma in a recovered stream.

    Returns the first match by default, or with ``last=True`` the final
    one — robust alignment uses the *last* preamble comma, since
    symbols recovered while the CDR was still converging may be
    corrupt.  Returns ``None`` when no comma is present.  (The comma
    pattern is singular: it cannot appear across valid data-symbol
    boundaries, so any match is a genuine preamble symbol.)
    """
    bits = np.asarray(bits, dtype=np.int8)
    if len(bits) < 10:
        return None
    windows = np.lib.stride_tricks.sliding_window_view(bits, 10)
    match = np.zeros(len(windows), dtype=bool)
    for pattern in (_COMMA_NEG, _COMMA_POS):
        match |= np.all(windows == np.asarray(pattern, dtype=np.int8),
                        axis=1)
    hits = np.nonzero(match)[0]
    if len(hits) == 0:
        return None
    return int(hits[-1] if last else hits[0])


@dataclasses.dataclass
class Deserializer:
    """Recovered bits -> comma alignment -> 8b/10b decode -> bytes.

    ``use_last_comma`` selects the alignment strategy: the default
    aligns to the last comma of the *initial* preamble burst (first
    comma found, then a bounded walk through the burst — robust against
    false commas a bit-error stream can fabricate later on);
    ``use_last_comma=True`` aligns to the final comma anywhere in the
    stream (:func:`align_to_comma` with ``last=True``), the right mode
    when the preamble is known to be the only comma source.
    """

    use_last_comma: bool = False

    def deserialize(self, bits: np.ndarray) -> bytes:
        """Align past the preamble commas and decode what follows.

        Skipping to the end of the comma preamble drops any symbols
        mangled while the CDR was converging.  Decoding stops at the
        first invalid group (end-of-stream latency cut) rather than
        discarding the whole frame; trailing bits that do not fill a
        10b group are dropped, as a real elastic buffer would at frame
        boundaries.
        """
        bits = np.asarray(bits)
        offset = align_to_comma(bits, last=self.use_last_comma)
        if offset is None:
            raise CodingError("no K28.5 comma found; cannot align")
        if not self.use_last_comma:
            # Walk to the end of the contiguous comma burst: later
            # symbols recovered mid-lock may be corrupt, and a bit-error
            # stream can contain *false* commas, so only the initial
            # burst is trusted.
            patterns = (np.asarray(_COMMA_NEG, dtype=np.int8),
                        np.asarray(_COMMA_POS, dtype=np.int8))

            def is_comma(start: int) -> bool:
                if start + 10 > len(bits):
                    return False
                group = bits[start:start + 10]
                return any(np.array_equal(group, p) for p in patterns)

            # Tolerate up to two mangled groups inside the burst
            # (symbols recovered mid-lock): jump to the next comma at
            # 10-bit spacing within a 3-group lookahead.
            advanced = True
            while advanced:
                advanced = False
                for jump in (10, 20, 30):
                    if is_comma(offset + jump):
                        offset += jump
                        advanced = True
                        break
        aligned = bits[offset:]
        decoder = Decoder8b10b()
        out = bytearray()
        for start in range(0, (len(aligned) // 10) * 10, 10):
            try:
                value, is_control = decoder.decode_symbol(
                    aligned[start:start + 10]
                )
            except CodingError:
                break
            if not is_control:
                out.append(value)
        return bytes(out)


@dataclasses.dataclass(frozen=True)
class LinkReport:
    """Outcome of a full framed-link run.

    ``cdr_slips`` is the recovering loop's net cycle-slip count; a
    nonzero value explains a corrupt payload even when the loop reports
    itself locked (the decision stream shifted mid-frame).
    """

    payload_sent: bytes
    payload_received: bytes
    bits_recovered: int
    cdr_locked: bool
    recovered_jitter_ui: float
    cdr_slips: int = 0

    @property
    def error_free(self) -> bool:
        """True when the received payload starts with the sent payload
        (trailing bytes may be cut by CDR latency)."""
        if not self.payload_received:
            return False
        n = min(len(self.payload_sent), len(self.payload_received))
        return self.payload_received[:n] == self.payload_sent[:n] and \
            n >= len(self.payload_sent) - 2

    @property
    def byte_errors(self) -> int:
        """Mismatched bytes over the compared span."""
        n = min(len(self.payload_sent), len(self.payload_received))
        return sum(a != b for a, b in zip(self.payload_sent[:n],
                                          self.payload_received[:n]))


def _report_from_cdr(payload: bytes, result,
                     deserializer: Deserializer,
                     training_bytes: int) -> LinkReport:
    """Deserialize one CDR result (serial or a batch row) into a report."""
    try:
        decoded = deserializer.deserialize(result.decisions)
        decoded = decoded[training_bytes:]  # strip the settle pad
    except CodingError:
        decoded = b""
    jitter = (result.recovered_jitter_ui() if result.is_locked else
              float("nan"))
    return LinkReport(
        payload_sent=payload,
        payload_received=decoded,
        bits_recovered=len(result.decisions),
        cdr_locked=result.is_locked,
        recovered_jitter_ui=jitter,
        cdr_slips=result.slips,
    )


def _serialize_payload(payload, bit_rate, samples_per_bit,
                              amplitude, training_commas, training_bytes):
    serializer = Serializer(bit_rate=bit_rate,
                            samples_per_bit=samples_per_bit,
                            amplitude=amplitude,
                            prepend_commas=training_commas)
    pad = bytes([0x55]) * training_bytes
    return serializer.serialize(pad + payload)


def run_link(payload: bytes,
             analog_path: Callable[[Waveform], Waveform],
             bit_rate: float = 10e9,
             samples_per_bit: int = 16,
             amplitude: float = 0.25,
             cdr_kp: float = 4e-3,
             training_commas: int = 40,
             training_bytes: int = 8,
             use_last_comma: bool = False) -> LinkReport:
    """Run bytes through serializer -> analog path -> CDR -> deserializer.

    ``analog_path`` is any waveform transform: an output interface, a
    channel, an input interface, or their composition.

    ``training_commas`` sets the K28.5 preamble length; it must outlast
    the CDR's lock time (a bang-bang loop with kp = 4 mUI pulls in from
    a worst-case half-UI offset in ~0.5/kp ~ 125 bits, plus settling —
    the 40-comma/400-bit default covers it, mirroring the training
    sequences real link protocols send).  ``training_bytes`` adds
    throwaway data bytes after the comma burst: the loop's lock point
    shifts slightly between the transition-dense comma pattern and
    ISI-shaped data, and the pad absorbs the re-settle.
    """
    from ..cdr import BangBangCdr, CdrConfig

    wave = _serialize_payload(payload, bit_rate, samples_per_bit,
                                     amplitude, training_commas,
                                     training_bytes)
    received = analog_path(wave)

    cdr = BangBangCdr(CdrConfig(bit_rate=bit_rate, kp=cdr_kp))
    result = cdr.recover(received)
    return _report_from_cdr(payload, result,
                            Deserializer(use_last_comma=use_last_comma),
                            training_bytes)


@dataclasses.dataclass(frozen=True)
class LinkBatchReport:
    """Outcome of N framed-link scenarios recovered as one batch."""

    reports: List[LinkReport]

    @property
    def n_scenarios(self) -> int:
        """Number of link scenarios in the batch."""
        return len(self.reports)

    def __len__(self) -> int:
        return self.n_scenarios

    def __getitem__(self, index: int) -> LinkReport:
        return self.reports[index]

    def __iter__(self):
        return iter(self.reports)

    def lock_yield(self) -> float:
        """Fraction of scenarios whose CDR locked."""
        return float(np.mean([r.cdr_locked for r in self.reports]))

    def frame_error_rate(self) -> float:
        """Fraction of scenarios whose payload did not survive."""
        return float(np.mean([not r.error_free for r in self.reports]))

    def slips(self) -> np.ndarray:
        """Per-scenario net CDR cycle-slip counts."""
        return np.array([r.cdr_slips for r in self.reports],
                        dtype=np.int64)

    def recovered_jitter_ui(self) -> np.ndarray:
        """Per-scenario post-lock jitter (NaN where unlocked)."""
        return np.array([r.recovered_jitter_ui for r in self.reports])


def run_link_batch(payload: bytes,
                   analog_path: Callable[[Waveform],
                                         "WaveformBatch | Waveform"],
                   bit_rate: float = 10e9,
                   samples_per_bit: int = 16,
                   amplitude: float = 0.25,
                   cdr_kp: float = 4e-3,
                   training_commas: int = 40,
                   training_bytes: int = 8,
                   use_last_comma: bool = False) -> LinkBatchReport:
    """Deprecated shim over :func:`repro.link.run_framed_link`.

    The facade is the one dispatching framed-link runner (serialize
    once, batched CDR recovery, per-row decode); this wrapper only
    preserves the historical contract that a path returning a plain
    :class:`~repro.signals.waveform.Waveform` still yields a 1-row
    :class:`LinkBatchReport`.
    """
    warnings.warn(
        "run_link_batch is deprecated; use repro.link.run_framed_link "
        "(or LinkSession.run_framed)",
        DeprecationWarning, stacklevel=2,
    )
    from ..link.session import run_framed_link

    report = run_framed_link(
        payload, analog_path, bit_rate=bit_rate,
        samples_per_bit=samples_per_bit, amplitude=amplitude,
        cdr_kp=cdr_kp, training_commas=training_commas,
        training_bytes=training_bytes, use_last_comma=use_last_comma,
    )
    if isinstance(report, LinkReport):
        report = LinkBatchReport(reports=[report])
    return report
