"""repro — behavioral reproduction of the SOCC 2005 10 Gb/s wide-band
CML I/O interface (Chiu, Wu, Hsu, Kao, Jen, Hsu).

The library models every circuit of the paper — Cherry-Hooper input
equalizer, active-inductor CML buffers with active feedback and negative
Miller capacitance, the four-stage limiting amplifier with DC-offset
cancellation, the tapered output driver with the XOR-differentiator
voltage-peaking (pre-emphasis) circuit, and the beta-multiplier bias
reference — on top of self-contained substrates for signal generation
(PRBS/NRZ/jitter/noise), LTI circuit simulation (s-domain transfer
functions + bilinear discretization), 0.18 um device models, and a lossy
backplane channel.

Quick start (the batch-first ``repro.link`` facade)::

    from repro import ChannelConfig, LinkSession, prbs7, bits_to_nrz

    session = LinkSession.from_configs(channel=ChannelConfig(0.3))
    wave = bits_to_nrz(prbs7(300), bit_rate=10e9, amplitude=0.25)
    eye = session.run(wave).eye
    print(eye.eye_height, eye.q_factor)
"""

from .signals import (
    Waveform,
    DifferentialWaveform,
    WaveformBatch,
    sample_uniform,
    PrbsGenerator,
    prbs7,
    prbs15,
    prbs31,
    bits_to_nrz,
    bits_to_pam4,
    NrzEncoder,
    Modulation,
    Nrz,
    Pam4,
    SymbolEncoder,
    RandomJitter,
    SinusoidalJitter,
    JitterBudget,
    WhiteNoise,
    thermal_noise_rms,
)
from .lti import (
    RationalTF,
    Pipeline,
    LinearBlock,
    TanhLimiter,
    first_order_lowpass,
    second_order_lowpass,
    pole_zero_tf,
)
from .devices import (
    Technology,
    TSMC180,
    Mosfet,
    nmos,
    pmos,
    ActiveInductor,
    MosVaractor,
    SpiralInductor,
)
from .channel import BackplaneChannel, ChannelParameters, FR4_DEFAULT
from .core import (
    CmlBuffer,
    CherryHooperEqualizer,
    GainStage,
    LimitingAmplifier,
    TaperedDriver,
    VoltagePeakingCircuit,
    BetaMultiplierReference,
    InputInterface,
    OutputInterface,
    CmlIoInterface,
    PowerAreaBudget,
    build_input_interface,
    build_output_interface,
    build_io_interface,
)
from .analysis import (
    EyeDiagram,
    EyeDiagramBatch,
    EyeMeasurement,
    measure_eye_batch,
    measure_tf,
    measure_sensitivity,
    measure_dynamic_range,
    q_to_ber,
    bathtub_from_waveform,
    pulse_response,
)
from .baselines import (
    table1_rows,
    measured_this_work,
    paper_style_comparison,
    FirPreEmphasis,
    zero_forcing_taps,
)
from .cdr import BangBangCdr, CdrConfig, CdrResult
from .serdes import Serializer, Deserializer, run_link, LinkReport
from .stateye import (StatEye, StatEyeBatchResult, StatEyeResult,
                      stat_eye_measure, stat_eye_stimulus)
from .sweep import (Count, Histogram, MeanVar, MinMax, Quantiles,
                    ScenarioGrid, SweepAxis, SweepFailure, SweepResult,
                    SweepRunner, Yield, modulation_axis)
from .link import (
    Stage,
    stage,
    LinkSession,
    TxConfig,
    ChannelConfig,
    RxConfig,
    DfeConfig,
    LinkResult,
    LinkBatchResult,
    run_framed_link,
)

__version__ = "1.0.0"

__all__ = [
    "Waveform",
    "DifferentialWaveform",
    "WaveformBatch",
    "sample_uniform",
    "PrbsGenerator",
    "prbs7",
    "prbs15",
    "prbs31",
    "bits_to_nrz",
    "bits_to_pam4",
    "NrzEncoder",
    "Modulation",
    "Nrz",
    "Pam4",
    "SymbolEncoder",
    "RandomJitter",
    "SinusoidalJitter",
    "JitterBudget",
    "WhiteNoise",
    "thermal_noise_rms",
    "RationalTF",
    "Pipeline",
    "LinearBlock",
    "TanhLimiter",
    "first_order_lowpass",
    "second_order_lowpass",
    "pole_zero_tf",
    "Technology",
    "TSMC180",
    "Mosfet",
    "nmos",
    "pmos",
    "ActiveInductor",
    "MosVaractor",
    "SpiralInductor",
    "BackplaneChannel",
    "ChannelParameters",
    "FR4_DEFAULT",
    "CmlBuffer",
    "CherryHooperEqualizer",
    "GainStage",
    "LimitingAmplifier",
    "TaperedDriver",
    "VoltagePeakingCircuit",
    "BetaMultiplierReference",
    "InputInterface",
    "OutputInterface",
    "CmlIoInterface",
    "PowerAreaBudget",
    "build_input_interface",
    "build_output_interface",
    "build_io_interface",
    "EyeDiagram",
    "EyeDiagramBatch",
    "EyeMeasurement",
    "measure_eye_batch",
    "measure_tf",
    "measure_sensitivity",
    "measure_dynamic_range",
    "q_to_ber",
    "bathtub_from_waveform",
    "pulse_response",
    "StatEye",
    "StatEyeResult",
    "StatEyeBatchResult",
    "stat_eye_measure",
    "stat_eye_stimulus",
    "table1_rows",
    "measured_this_work",
    "paper_style_comparison",
    "FirPreEmphasis",
    "zero_forcing_taps",
    "BangBangCdr",
    "CdrConfig",
    "CdrResult",
    "Serializer",
    "Deserializer",
    "run_link",
    "LinkReport",
    "ScenarioGrid",
    "SweepAxis",
    "modulation_axis",
    "SweepFailure",
    "SweepRunner",
    "Count",
    "MinMax",
    "MeanVar",
    "Histogram",
    "Quantiles",
    "Yield",
    "SweepResult",
    "Stage",
    "stage",
    "LinkSession",
    "TxConfig",
    "ChannelConfig",
    "RxConfig",
    "DfeConfig",
    "LinkResult",
    "LinkBatchResult",
    "run_framed_link",
    "__version__",
]
