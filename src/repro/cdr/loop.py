"""Bang-bang CDR loop: phase detector + proportional/integral filter +
phase interpolator.

A digital bang-bang CDR of the type a 2005-era 10 Gb/s SerDes used: the
Alexander votes drive a proportional (phase bump) + integral (frequency
accumulator) filter whose output steers the sampling phase through an
idealized phase interpolator.  The model runs directly on the analog
waveform out of the limiting amplifier, sampling it by interpolation at
the recovered instants — so the whole receive chain (equalizer → LA →
CDR) can be simulated closed-loop.

Two execution paths share one set of kernels:

* :meth:`BangBangCdr.recover` — the serial reference, one scalar loop
  state per waveform;
* the batched kernel — N loops advanced together through the
  bit-serial backend selected by :mod:`repro.kernels` (numba-compiled
  per-row loops when available, the vectorized one-bit-step-at-a-time
  NumPy engine otherwise; both bit-exact), with per-row
  phase/integral/slip state; reached through ``repro.link``
  (``stage(cdr).recover`` or :class:`~repro.link.LinkSession`), with
  the deprecated ``recover_batch`` shim delegating to the same code.

Row ``i`` of a batch run is bit-identical to the serial run of
``batch[i]``: both paths sample through
:func:`~repro.signals.waveform.sample_uniform` and apply the loop update
in the same expression order.

Cycle slips are first-class: when the steered phase wraps across
±1.0 UI the sampling instant stays continuous (the wrap is absorbed
into a whole-bit offset) and the slip is counted, instead of silently
re-sampling or skipping a bit with an unchanged bit index.
"""

from __future__ import annotations

import dataclasses
import warnings

import numpy as np

from .. import kernels
from ..signals.batch import WaveformBatch
from ..signals.modulation import Modulation, Nrz
from ..signals.waveform import Waveform, sample_uniform
from .phase_detector import vote_step

__all__ = ["CdrConfig", "CdrResult", "CdrBatchResult", "BangBangCdr"]


@dataclasses.dataclass(frozen=True)
class CdrConfig:
    """Loop parameters.

    ``kp``/``ki`` are in UI per vote: a typical bang-bang loop uses a
    proportional step of a few mUI and an integral gain 2-3 orders
    below it.

    ``modulation`` selects the slicer alphabet: data decisions are
    nearest-level indices, and the Alexander edge votes slice at the
    *middle* eye's threshold — the only eye whose transitions carry
    timing for a bang-bang loop.  ``amplitude`` is the peak-to-peak
    swing the slicer assumes at its input (scales the multi-level
    thresholds; irrelevant for NRZ, whose only threshold is 0 V at any
    swing — symmetric alphabets keep a 0 V middle threshold, so edge
    votes never depend on it either).
    """

    bit_rate: float
    kp: float = 4e-3
    ki: float = 1e-5
    initial_phase_ui: float = 0.25
    initial_frequency_ppm: float = 0.0
    modulation: Modulation = Nrz()
    amplitude: float = 1.0

    def __post_init__(self) -> None:
        if self.bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {self.bit_rate}")
        if self.kp <= 0 or self.ki < 0:
            raise ValueError("need kp > 0 and ki >= 0")
        if self.amplitude <= 0:
            raise ValueError(
                f"amplitude must be positive, got {self.amplitude}"
            )

    def decision_thresholds(self) -> np.ndarray:
        """Slicer thresholds at the assumed input swing (``[0.0]``
        exactly for NRZ)."""
        return self.modulation.threshold_values(self.amplitude)


@dataclasses.dataclass(frozen=True)
class CdrResult:
    """Outcome of a CDR run.

    ``slips`` is the net cycle-slip count: +1 every time the recovered
    phase wrapped forward across +1.0 UI (one transmitted bit never
    sampled), -1 for a backward wrap.  Decision indices stay consistent
    across a slip — decision ``k`` always samples one UI after decision
    ``k-1`` — so a nonzero count means the decision-to-transmitted-bit
    alignment shifted mid-stream, exactly as in a slipping hardware CDR.
    """

    decisions: np.ndarray
    phase_track_ui: np.ndarray
    votes: np.ndarray
    locked_at_bit: int
    slips: int = 0

    @property
    def is_locked(self) -> bool:
        """True when the loop reached steady state inside the run."""
        return self.locked_at_bit >= 0

    def steady_state_phase_ui(self) -> float:
        """Mean recovered phase after lock (UI)."""
        if not self.is_locked:
            raise ValueError("loop never locked")
        return float(np.mean(self.phase_track_ui[self.locked_at_bit:]))

    def recovered_jitter_ui(self) -> float:
        """RMS wander of the recovered phase after lock (UI).

        For a locked bang-bang loop this is the limit-cycle (hunting)
        jitter, on the order of the proportional step.
        """
        if not self.is_locked:
            raise ValueError("loop never locked")
        return float(np.std(self.phase_track_ui[self.locked_at_bit:]))


@dataclasses.dataclass(frozen=True)
class CdrBatchResult:
    """Outcome of N parallel CDR runs on one :class:`WaveformBatch`.

    Arrays are rectangular ``(n_scenarios, total_bits)``; rows that ran
    out of waveform early are valid only up to ``n_bits[row]`` (their
    tails hold 0 decisions/votes and NaN phases).  :meth:`row` unpacks
    one scenario into the serial :class:`CdrResult` form, truncated to
    its valid span.
    """

    decisions: np.ndarray
    phase_track_ui: np.ndarray
    votes: np.ndarray
    locked_at_bit: np.ndarray
    slips: np.ndarray
    n_bits: np.ndarray

    @property
    def n_scenarios(self) -> int:
        """Number of parallel loops."""
        return self.decisions.shape[0]

    def __len__(self) -> int:
        return self.n_scenarios

    @property
    def is_locked(self) -> np.ndarray:
        """Per-row lock flags."""
        return self.locked_at_bit >= 0

    def lock_yield(self) -> float:
        """Fraction of scenarios whose loop locked."""
        return float(np.mean(self.is_locked))

    def row(self, index: int) -> CdrResult:
        """Scenario ``index`` as a serial-form :class:`CdrResult`."""
        n = int(self.n_bits[index])
        return CdrResult(
            decisions=self.decisions[index, :n],
            phase_track_ui=self.phase_track_ui[index, :n],
            votes=self.votes[index, :n],
            locked_at_bit=int(self.locked_at_bit[index]),
            slips=int(self.slips[index]),
        )

    def rows(self) -> list:
        """Every scenario unpacked (see :meth:`row`)."""
        return [self.row(i) for i in range(self.n_scenarios)]

    @classmethod
    def concatenate(cls, parts: "list[CdrBatchResult]") -> "CdrBatchResult":
        """Stack row-chunks back into one batch result.

        All parts must come from the same loop over same-duration
        waveforms (equal ``total_bits``), which is exactly what the
        chunked :meth:`~repro.link.LinkSession.run_batch` fast path
        produces; per-row values are untouched, so concatenation
        preserves row-exactness.
        """
        if not parts:
            raise ValueError("cannot concatenate zero CdrBatchResults")
        if len(parts) == 1:
            return parts[0]
        widths = {part.decisions.shape[1] for part in parts}
        if len(widths) != 1:
            raise ValueError(
                f"chunks disagree on total_bits: {sorted(widths)}"
            )
        return cls(
            decisions=np.concatenate([p.decisions for p in parts], axis=0),
            phase_track_ui=np.concatenate(
                [p.phase_track_ui for p in parts], axis=0),
            votes=np.concatenate([p.votes for p in parts], axis=0),
            locked_at_bit=np.concatenate([p.locked_at_bit for p in parts]),
            slips=np.concatenate([p.slips for p in parts]),
            n_bits=np.concatenate([p.n_bits for p in parts]),
        )

    def recovered_jitter_ui(self) -> np.ndarray:
        """Per-row post-lock RMS phase wander (NaN where unlocked)."""
        out = np.full(self.n_scenarios, np.nan)
        for i in range(self.n_scenarios):
            lock = int(self.locked_at_bit[i])
            if lock >= 0:
                track = self.phase_track_ui[i, lock:int(self.n_bits[i])]
                out[i] = float(np.std(track))
        return out


class BangBangCdr:
    """First-order-plus-integrator bang-bang CDR."""

    def __init__(self, config: CdrConfig):
        self.config = config

    def _usable_bits(self, duration: float, n_bits: int | None) -> int:
        total_bits = int(duration / (1.0 / self.config.bit_rate)) - 2
        if n_bits is not None:
            total_bits = min(total_bits, n_bits)
        if total_bits < 16:
            raise ValueError(
                f"waveform too short for CDR: {total_bits} usable bits"
            )
        return total_bits

    def recover(self, wave: Waveform, n_bits: int | None = None
                ) -> CdrResult:
        """Run the loop over a waveform and return decisions + tracking.

        The sampler interpolates the waveform at the recovered instants;
        data and edge samples alternate half a UI apart, Alexander votes
        update the loop once per bit.
        """
        config = self.config
        ui = 1.0 / config.bit_rate
        total_bits = self._usable_bits(wave.duration, n_bits)
        thresholds = config.decision_thresholds()
        center = float(thresholds[(len(thresholds) - 1) // 2])

        data = wave.data
        t0 = wave.t0
        sample_rate = wave.sample_rate
        t_last = wave.time[-1]
        phase = config.initial_phase_ui
        integral = config.initial_frequency_ppm * 1e-6
        bit_offset = 0
        slips = 0

        decisions = np.zeros(total_bits, dtype=np.int8)
        phases = np.empty(total_bits)
        votes = np.zeros(total_bits, dtype=np.int8)
        previous_data_sample = None
        previous_edge_sample = None

        for k in range(total_bits):
            t_data = (k + 0.5 + bit_offset + phase) * ui
            t_edge = (k + 1.0 + bit_offset + phase) * ui
            if t_edge >= t_last:
                total_bits = k
                decisions = decisions[:k]
                phases = phases[:k]
                votes = votes[:k]
                break
            sample_data = float(sample_uniform(data, t0, sample_rate,
                                               t_data))
            sample_edge = float(sample_uniform(data, t0, sample_rate,
                                               t_edge))
            # Nearest-level slice: count of thresholds strictly below
            # the sample.  For NRZ ([0.0]) this is the historical
            # ``1 if sample > 0 else 0`` sign slicer, bit for bit.
            symbol = 0
            for threshold in thresholds:
                if sample_data > threshold:
                    symbol += 1
            decisions[k] = symbol
            phases[k] = phase

            if previous_data_sample is not None:
                # Alexander vote at the middle-eye threshold (the 0 V
                # guard keeps the NRZ fast path untouched; subtracting
                # an exact 0.0 could not change the votes anyway).
                if center != 0.0:
                    vote = int(vote_step(
                        np.array([previous_data_sample - center]),
                        np.array([previous_edge_sample - center]),
                        np.array([sample_data - center]),
                    )[0])
                else:
                    vote = int(vote_step(
                        np.array([previous_data_sample]),
                        np.array([previous_edge_sample]),
                        np.array([sample_data]),
                    )[0])
                votes[k] = vote
                integral = integral + config.ki * vote
                phase = phase + (config.kp * vote + integral)
                # A wrap across +-1 UI is a cycle slip: fold the whole
                # bit into the index offset so the sampling instant (and
                # therefore the decision sequence) stays continuous, and
                # count it.
                if phase > 1.0:
                    phase -= 1.0
                    bit_offset += 1
                    slips += 1
                elif phase < -1.0:
                    phase += 1.0
                    bit_offset -= 1
                    slips -= 1
            previous_data_sample = sample_data
            previous_edge_sample = sample_edge

        locked_at = self._detect_lock(phases)
        return CdrResult(decisions=decisions, phase_track_ui=phases,
                         votes=votes, locked_at_bit=locked_at,
                         slips=slips)

    def recover_batch(self, batch: WaveformBatch,
                      n_bits: int | None = None,
                      initial_phase_ui: np.ndarray | None = None,
                      initial_frequency_ppm: np.ndarray | None = None
                      ) -> CdrBatchResult:
        """Deprecated alias for the single batched dispatch path.

        Use ``repro.link.stage(cdr).recover(batch)`` or a
        :class:`~repro.link.LinkSession` with a CDR config; both drive
        the same kernel this method always ran.
        """
        warnings.warn(
            "BangBangCdr.recover_batch is deprecated; drive the loop "
            "through repro.link (stage(cdr).recover(...) or "
            "LinkSession.run_batch)",
            DeprecationWarning, stacklevel=2,
        )
        return self._recover_batch(
            batch, n_bits=n_bits, initial_phase_ui=initial_phase_ui,
            initial_frequency_ppm=initial_frequency_ppm,
        )

    def _recover_batch(self, batch: WaveformBatch,
                       n_bits: int | None = None,
                       initial_phase_ui: np.ndarray | None = None,
                       initial_frequency_ppm: np.ndarray | None = None
                       ) -> CdrBatchResult:
        """Run N independent loops over a batch, one bit-step at a time.

        All rows share the config; ``initial_phase_ui`` /
        ``initial_frequency_ppm`` optionally override the starting state
        per row (for lock-time or pull-in yield studies).  Row ``i``
        matches ``recover(batch[i])`` (with the matching config) exactly
        — same sampling kernel, same update order, same wrap handling —
        on every :mod:`repro.kernels` backend.
        """
        config = self.config
        ui = 1.0 / config.bit_rate
        total_bits = self._usable_bits(batch.duration, n_bits)
        n_rows = batch.n_scenarios

        def _state(override, default):
            if override is None:
                return np.full(n_rows, default, dtype=float)
            state = np.asarray(override, dtype=float)
            if state.shape != (n_rows,):
                raise ValueError(
                    f"per-row override must have shape ({n_rows},), "
                    f"got {state.shape}"
                )
            return state.copy()

        phase = _state(initial_phase_ui, config.initial_phase_ui)
        integral = _state(initial_frequency_ppm,
                          config.initial_frequency_ppm) * 1e-6

        backend = kernels.get_backend()
        decisions, phases, votes, slips, row_bits = \
            backend.cdr_recover_batch(
                batch.data, batch.t0, batch.sample_rate,
                float(batch.time[-1]), ui, config.kp, config.ki,
                phase, integral, total_bits,
                config.decision_thresholds(),
            )

        locked_at = self._detect_lock_batch(phases, row_bits)
        return CdrBatchResult(decisions=decisions, phase_track_ui=phases,
                              votes=votes, locked_at_bit=locked_at,
                              slips=slips, n_bits=row_bits)

    @staticmethod
    def _detect_lock(phases: np.ndarray, window: int = 64,
                     tolerance_ui: float = 0.05) -> int:
        """First bit index after which the phase stays within a band.

        A window is a candidate when its peak-to-peak wander is inside
        ``tolerance_ui`` AND the whole remaining track stays within
        twice that band (the loop must not wander off later).  Both
        scans run as vectorized sliding-window / suffix reductions.
        """
        n = len(phases)
        if n < 2 * window:
            return -1
        windows = np.lib.stride_tricks.sliding_window_view(phases, window)
        window_ptp = np.ptp(windows, axis=-1)[: n - window]
        suffix_max = np.maximum.accumulate(phases[::-1])[::-1]
        suffix_min = np.minimum.accumulate(phases[::-1])[::-1]
        suffix_ptp = (suffix_max - suffix_min)[: n - window]
        hits = np.nonzero((window_ptp < tolerance_ui)
                          & (suffix_ptp < 2 * tolerance_ui))[0]
        return int(hits[0]) if len(hits) else -1

    @staticmethod
    def _detect_lock_batch(phases: np.ndarray, row_bits: np.ndarray,
                           window: int = 64,
                           tolerance_ui: float = 0.05) -> np.ndarray:
        """:meth:`_detect_lock` for every row of a batch in one pass.

        ``phases`` is the rectangular ``(n_rows, total_bits)`` track
        with NaN tails past ``row_bits[row]``; the NaNs make the 2-D
        sliding-window and suffix reductions self-masking (any window
        or suffix touching a tail compares False), so no per-row Python
        loop is needed.  Row ``i`` equals
        ``_detect_lock(phases[i, :row_bits[i]])`` exactly.
        """
        n_rows, total_bits = phases.shape
        row_bits = np.asarray(row_bits, dtype=np.int64)
        locked = np.full(n_rows, -1, dtype=np.int64)
        if total_bits < 2 * window:
            return locked
        windows = np.lib.stride_tricks.sliding_window_view(
            phases, window, axis=-1)
        window_ptp = np.ptp(windows, axis=-1)
        # Suffix peak-to-peak via NaN-ignoring right-to-left cumulative
        # extrema: positions past a row's valid span stay NaN and fail
        # every comparison, mirroring the serial truncation.
        suffix_max = np.fmax.accumulate(phases[:, ::-1], axis=-1)[:, ::-1]
        suffix_min = np.fmin.accumulate(phases[:, ::-1], axis=-1)[:, ::-1]
        n_windows = window_ptp.shape[1]
        suffix_ptp = (suffix_max - suffix_min)[:, :n_windows]
        columns = np.arange(n_windows)[np.newaxis, :]
        valid = (columns < (row_bits - window)[:, np.newaxis]) \
            & (row_bits >= 2 * window)[:, np.newaxis]
        hits = (window_ptp < tolerance_ui) \
            & (suffix_ptp < 2 * tolerance_ui) & valid
        any_hit = hits.any(axis=1)
        locked[any_hit] = np.argmax(hits[any_hit], axis=1)
        return locked
