"""Bang-bang CDR loop: phase detector + proportional/integral filter +
phase interpolator.

A digital bang-bang CDR of the type a 2005-era 10 Gb/s SerDes used: the
Alexander votes drive a proportional (phase bump) + integral (frequency
accumulator) filter whose output steers the sampling phase through an
idealized phase interpolator.  The model runs directly on the analog
waveform out of the limiting amplifier, sampling it by interpolation at
the recovered instants — so the whole receive chain (equalizer → LA →
CDR) can be simulated closed-loop.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from ..signals.waveform import Waveform
from .phase_detector import alexander_votes

__all__ = ["CdrConfig", "CdrResult", "BangBangCdr"]


@dataclasses.dataclass(frozen=True)
class CdrConfig:
    """Loop parameters.

    ``kp``/``ki`` are in UI per vote: a typical bang-bang loop uses a
    proportional step of a few mUI and an integral gain 2-3 orders
    below it.
    """

    bit_rate: float
    kp: float = 4e-3
    ki: float = 1e-5
    initial_phase_ui: float = 0.25
    initial_frequency_ppm: float = 0.0

    def __post_init__(self) -> None:
        if self.bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {self.bit_rate}")
        if self.kp <= 0 or self.ki < 0:
            raise ValueError("need kp > 0 and ki >= 0")


@dataclasses.dataclass(frozen=True)
class CdrResult:
    """Outcome of a CDR run."""

    decisions: np.ndarray
    phase_track_ui: np.ndarray
    votes: np.ndarray
    locked_at_bit: int

    @property
    def is_locked(self) -> bool:
        """True when the loop reached steady state inside the run."""
        return self.locked_at_bit >= 0

    def steady_state_phase_ui(self) -> float:
        """Mean recovered phase after lock (UI)."""
        if not self.is_locked:
            raise ValueError("loop never locked")
        return float(np.mean(self.phase_track_ui[self.locked_at_bit:]))

    def recovered_jitter_ui(self) -> float:
        """RMS wander of the recovered phase after lock (UI).

        For a locked bang-bang loop this is the limit-cycle (hunting)
        jitter, on the order of the proportional step.
        """
        if not self.is_locked:
            raise ValueError("loop never locked")
        return float(np.std(self.phase_track_ui[self.locked_at_bit:]))


class BangBangCdr:
    """First-order-plus-integrator bang-bang CDR."""

    def __init__(self, config: CdrConfig):
        self.config = config

    def recover(self, wave: Waveform, n_bits: int | None = None
                ) -> CdrResult:
        """Run the loop over a waveform and return decisions + tracking.

        The sampler interpolates the waveform at the recovered instants;
        data and edge samples alternate half a UI apart, Alexander votes
        update the loop once per bit.
        """
        config = self.config
        ui = 1.0 / config.bit_rate
        total_bits = int(wave.duration / ui) - 2
        if n_bits is not None:
            total_bits = min(total_bits, n_bits)
        if total_bits < 16:
            raise ValueError(
                f"waveform too short for CDR: {total_bits} usable bits"
            )

        time = wave.time
        data = wave.data
        phase = config.initial_phase_ui
        freq = config.initial_frequency_ppm * 1e-6
        integral = freq

        decisions: List[int] = []
        phases = np.empty(total_bits)
        votes = np.zeros(total_bits, dtype=np.int8)
        previous_data_sample = None
        t_bit = 0.5 * ui  # centre of bit 0 at zero phase offset

        for k in range(total_bits):
            t_data = (k + 0.5 + phase) * ui
            t_edge = (k + 1.0 + phase) * ui
            if t_edge >= time[-1]:
                total_bits = k
                phases = phases[:k]
                votes = votes[:k]
                break
            sample_data = float(np.interp(t_data, time, data))
            sample_edge = float(np.interp(t_edge, time, data))
            decisions.append(1 if sample_data > 0 else 0)
            phases[k] = phase

            if previous_data_sample is not None:
                vote = alexander_votes(
                    np.array([previous_data_sample, sample_data]),
                    np.array([previous_edge_sample]),
                )[0]
                votes[k] = vote
                integral += config.ki * vote
                phase += config.kp * vote + integral
                # An EARLY vote means we sample too late relative to the
                # edge... sign convention folded into kp above; wrap
                # the phase into a sane band to avoid drift artifacts.
                if phase > 1.0:
                    phase -= 1.0
                elif phase < -1.0:
                    phase += 1.0
            previous_data_sample = sample_data
            previous_edge_sample = sample_edge

        del t_bit
        locked_at = self._detect_lock(phases)
        return CdrResult(decisions=np.array(decisions, dtype=np.int8),
                         phase_track_ui=phases, votes=votes,
                         locked_at_bit=locked_at)

    @staticmethod
    def _detect_lock(phases: np.ndarray, window: int = 64,
                     tolerance_ui: float = 0.05) -> int:
        """First bit index after which the phase stays within a band."""
        if len(phases) < 2 * window:
            return -1
        for start in range(0, len(phases) - window):
            segment = phases[start: start + window]
            if np.ptp(segment) < tolerance_ui:
                remaining = phases[start:]
                if np.ptp(remaining) < 2 * tolerance_ui:
                    return start
        return -1
