"""Clock-data recovery: the downstream consumer the paper's limiting
amplifier feeds ("to amplify the input signal to a sufficient voltage
for the reliable operation of Clock Data Recovery").

Bang-bang (Alexander) phase detection and a proportional+integral
digital loop running directly on simulated analog waveforms — serially
(:meth:`~repro.cdr.BangBangCdr.recover`) or as N closed loops advanced
together over a :class:`~repro.signals.batch.WaveformBatch`
(:meth:`~repro.cdr.BangBangCdr.recover_batch`).
"""

from .phase_detector import (
    PdVote,
    alexander_votes,
    alexander_votes_batch,
    vote_step,
)
from .loop import CdrConfig, CdrResult, CdrBatchResult, BangBangCdr

__all__ = [
    "PdVote",
    "alexander_votes",
    "alexander_votes_batch",
    "vote_step",
    "CdrConfig",
    "CdrResult",
    "CdrBatchResult",
    "BangBangCdr",
]
