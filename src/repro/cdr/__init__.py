"""Clock-data recovery: the downstream consumer the paper's limiting
amplifier feeds ("to amplify the input signal to a sufficient voltage
for the reliable operation of Clock Data Recovery").

Bang-bang (Alexander) phase detection and a proportional+integral
digital loop running directly on simulated analog waveforms.
"""

from .phase_detector import PdVote, alexander_votes
from .loop import CdrConfig, CdrResult, BangBangCdr

__all__ = [
    "PdVote",
    "alexander_votes",
    "CdrConfig",
    "CdrResult",
    "BangBangCdr",
]
