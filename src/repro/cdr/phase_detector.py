"""Bang-bang (Alexander) phase detection.

The paper's limiting amplifier exists to feed a clock-data-recovery
circuit ("Limiting Amplifiers are responsible to amplify the input
signal to a sufficient voltage for the reliable operation of Clock Data
Recovery").  The CDR package closes that loop: this module implements
the standard Alexander early/late detector that a 10 Gb/s CML receiver
of this era would pair with.

An Alexander PD samples the waveform three times per decision — at the
previous data centre (A), the crossing between bits (T) and the current
data centre (B) — and votes:

* ``A == T != B``  → clock is EARLY (the crossing sample agrees with the
  *previous* bit: the edge came after the crossing sample);
* ``A != T == B``  → clock is LATE;
* no transition or contradictory votes → no information (hold).

All three entry points share one sign/compare core, so a batched row
votes exactly as its serial run does.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["PdVote", "alexander_votes", "alexander_votes_batch",
           "vote_step"]


class PdVote(enum.IntEnum):
    """Tri-state phase-detector output."""

    LATE = -1
    HOLD = 0
    EARLY = 1


def _sign(values: np.ndarray) -> np.ndarray:
    """Decision-slicer sign: zero samples count as high."""
    signs = np.sign(np.asarray(values, dtype=float))
    signs[signs == 0] = 1
    return signs


def vote_step(previous_data: np.ndarray, samples_edge: np.ndarray,
              samples_data: np.ndarray) -> np.ndarray:
    """One Alexander vote per row from aligned A/T/B sample vectors.

    The closed-loop primitive: ``previous_data`` (A), ``samples_edge``
    (T) and ``samples_data`` (B) hold one sample per parallel loop, and
    the result is one {-1, 0, +1} vote per loop.
    """
    a = _sign(previous_data)
    b = _sign(samples_data)
    t = _sign(samples_edge)
    transition = a != b
    votes = np.zeros(np.shape(t), dtype=np.int8)
    votes[transition & (t == a)] = PdVote.EARLY
    votes[transition & (t == b)] = PdVote.LATE
    return votes


def alexander_votes(samples_data: np.ndarray,
                    samples_edge: np.ndarray) -> np.ndarray:
    """Vectorized Alexander votes from data and edge sample trains.

    Parameters
    ----------
    samples_data:
        Sliced analog samples at the data instants (length N).
    samples_edge:
        Sliced analog samples at the crossing instants *between*
        consecutive data samples (length N-1): ``samples_edge[k]`` lies
        between ``samples_data[k]`` and ``samples_data[k+1]``.

    Returns
    -------
    Array of length N-1 with values in {-1, 0, +1} (LATE/HOLD/EARLY).
    """
    samples_data = np.asarray(samples_data, dtype=float)
    samples_edge = np.asarray(samples_edge, dtype=float)
    if len(samples_edge) != len(samples_data) - 1:
        raise ValueError(
            f"edge samples must number data samples - 1: "
            f"{len(samples_edge)} vs {len(samples_data)}"
        )
    return vote_step(samples_data[:-1], samples_edge, samples_data[1:])


def alexander_votes_batch(samples_data: np.ndarray,
                          samples_edge: np.ndarray) -> np.ndarray:
    """Alexander votes for a whole batch of sample trains at once.

    ``samples_data`` has shape ``(n_rows, n)`` and ``samples_edge``
    ``(n_rows, n - 1)``; the result is ``(n_rows, n - 1)`` votes.  Row
    ``i`` equals ``alexander_votes(samples_data[i], samples_edge[i])``.
    """
    samples_data = np.asarray(samples_data, dtype=float)
    samples_edge = np.asarray(samples_edge, dtype=float)
    if samples_data.ndim != 2 or samples_edge.ndim != 2:
        raise ValueError(
            f"batched votes need 2-D sample stacks, got shapes "
            f"{samples_data.shape} and {samples_edge.shape}"
        )
    if samples_edge.shape != (samples_data.shape[0],
                              samples_data.shape[1] - 1):
        raise ValueError(
            f"edge samples must number data samples - 1 per row: "
            f"{samples_edge.shape} vs {samples_data.shape}"
        )
    return vote_step(samples_data[:, :-1], samples_edge,
                     samples_data[:, 1:])
