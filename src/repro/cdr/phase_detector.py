"""Bang-bang (Alexander) phase detection.

The paper's limiting amplifier exists to feed a clock-data-recovery
circuit ("Limiting Amplifiers are responsible to amplify the input
signal to a sufficient voltage for the reliable operation of Clock Data
Recovery").  The CDR package closes that loop: this module implements
the standard Alexander early/late detector that a 10 Gb/s CML receiver
of this era would pair with.

An Alexander PD samples the waveform three times per decision — at the
previous data centre (A), the crossing between bits (T) and the current
data centre (B) — and votes:

* ``A == T != B``  → clock is EARLY (the crossing sample agrees with the
  *previous* bit: the edge came after the crossing sample);
* ``A != T == B``  → clock is LATE;
* no transition or contradictory votes → no information (hold).
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["PdVote", "alexander_votes"]


class PdVote(enum.IntEnum):
    """Tri-state phase-detector output."""

    LATE = -1
    HOLD = 0
    EARLY = 1


def alexander_votes(samples_data: np.ndarray,
                    samples_edge: np.ndarray) -> np.ndarray:
    """Vectorized Alexander votes from data and edge sample trains.

    Parameters
    ----------
    samples_data:
        Sliced analog samples at the data instants (length N).
    samples_edge:
        Sliced analog samples at the crossing instants *between*
        consecutive data samples (length N-1): ``samples_edge[k]`` lies
        between ``samples_data[k]`` and ``samples_data[k+1]``.

    Returns
    -------
    Array of length N-1 with values in {-1, 0, +1} (LATE/HOLD/EARLY).
    """
    samples_data = np.asarray(samples_data, dtype=float)
    samples_edge = np.asarray(samples_edge, dtype=float)
    if len(samples_edge) != len(samples_data) - 1:
        raise ValueError(
            f"edge samples must number data samples - 1: "
            f"{len(samples_edge)} vs {len(samples_data)}"
        )
    a = np.sign(samples_data[:-1])
    b = np.sign(samples_data[1:])
    t = np.sign(samples_edge)
    a[a == 0] = 1
    b[b == 0] = 1
    t[t == 0] = 1

    transition = a != b
    early = transition & (t == a)
    late = transition & (t == b)
    votes = np.zeros(len(t), dtype=np.int8)
    votes[early] = PdVote.EARLY
    votes[late] = PdVote.LATE
    return votes
