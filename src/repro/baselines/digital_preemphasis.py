"""Digital FIR pre-emphasis baseline (the paper's reference [4]).

Westergaard, Dickson & Voinigescu's backplane driver applies *digital*
pre-emphasis: the transmit waveform is shaped by an N-tap
baud-spaced FIR.  The paper's voltage-peaking circuit is the *analog*
alternative (delay buffer + XOR differentiator) — equivalent, for
settled levels, to a 2-tap FIR ``(1+k, -k)``.

This module implements the digital baseline so the equivalence (and the
trade: tap flexibility vs. circuit simplicity) can be benchmarked, plus
the standard zero-forcing tap solver from a measured pulse response.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

from ..analysis.isi import pulse_response
from ..lti.blocks import Block
from ..signals.waveform import Waveform

__all__ = ["FirPreEmphasis", "zero_forcing_taps",
           "taps_equivalent_to_peaking"]


@dataclasses.dataclass
class FirPreEmphasis(Block):
    """Baud-spaced transmit FIR (digital pre-emphasis).

    Parameters
    ----------
    taps:
        FIR coefficients, main cursor first-positive convention: e.g.
        ``(1.2, -0.2)`` is a 2-tap de-emphasis of 20 %.
    bit_rate:
        The baud rate that sets the tap spacing.
    normalize:
        When True the taps are scaled so their absolute sum is 1 —
        the peak-power-constrained convention of real transmitters
        (a driver cannot exceed its tail current; emphasis must come
        out of the settled swing).
    """

    taps: Sequence[float]
    bit_rate: float
    normalize: bool = False
    name: str = "fir-preemphasis"

    def __post_init__(self) -> None:
        taps = np.asarray(self.taps, dtype=float)
        if taps.size == 0:
            raise ValueError("need at least one tap")
        if self.bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {self.bit_rate}")
        if taps[0] == 0:
            raise ValueError("main tap must be nonzero")
        if self.normalize:
            taps = taps / np.sum(np.abs(taps))
        self.taps = taps

    def process(self, wave: Waveform) -> Waveform:
        """Apply the FIR with baud-spaced (UI) tap delays."""
        ui = 1.0 / self.bit_rate
        out = np.zeros_like(wave.data)
        for index, tap in enumerate(self.taps):
            if tap == 0.0:
                continue
            out = out + tap * wave.delayed(index * ui).data
        return wave.with_data(out)

    def boost_db(self) -> float:
        """High-frequency boost: |H(Nyquist)| / |H(DC)| in dB."""
        taps = np.asarray(self.taps)
        h_dc = abs(np.sum(taps))
        h_nyq = abs(np.sum(taps * (-1.0) ** np.arange(len(taps))))
        if h_dc == 0:
            raise ValueError("taps sum to zero: DC response is null")
        return 20.0 * math.log10(h_nyq / h_dc)


def zero_forcing_taps(channel: Block, bit_rate: float, n_taps: int = 3,
                      samples_per_bit: int = 16) -> np.ndarray:
    """Solve transmit taps that zero-force the channel's post-cursors.

    Measures the channel pulse response, builds the baud-spaced
    convolution matrix over the main + (n_taps - 1) post-cursors, and
    solves for the tap vector that makes the equalized pulse
    ``(1, 0, 0, ...)`` at those positions (least squares when the
    system is overdetermined).  This is how a digital pre-emphasis
    transmitter of the [4] style is provisioned.
    """
    if n_taps < 2:
        raise ValueError(f"need at least 2 taps, got {n_taps}")
    pulse = pulse_response(channel, bit_rate,
                           samples_per_bit=samples_per_bit)
    cursors = pulse.cursors
    main = pulse.cursor_index
    # Channel taps h[0..m] from the main cursor onward.
    h = cursors[main: main + 2 * n_taps]
    if len(h) < n_taps:
        raise ValueError("pulse response too short for the tap count")
    # Convolution matrix: rows are output positions, columns taps.
    rows = len(h)
    matrix = np.zeros((rows, n_taps))
    for col in range(n_taps):
        matrix[col:, col] = h[: rows - col]
    target = np.zeros(rows)
    target[0] = h[0]  # preserve the main-cursor amplitude
    taps, *_ = np.linalg.lstsq(matrix, target, rcond=None)
    return taps


def taps_equivalent_to_peaking(spike_height: float,
                               signal_amplitude: float) -> np.ndarray:
    """The 2-tap FIR equivalent of the analog voltage-peaking circuit.

    Same mapping as ``VoltagePeakingCircuit.equivalent_fir_taps``:
    ``k = spike_height / (2 * amplitude)`` gives taps ``(1 + k, -k)``.
    """
    if signal_amplitude <= 0:
        raise ValueError(
            f"signal_amplitude must be positive, got {signal_amplitude}"
        )
    k = spike_height / (2.0 * signal_amplitude)
    return np.array([1.0 + k, -k])
