"""Published comparison points for Table I.

Table I compares "this work" against two contemporaneous 10 Gb/s
limiting amplifiers in the same 0.18 um node:

* **[7] Tao & Berroth**, "10 Gb/s Limiting Amplifier for Optical Links",
  ESSCIRC 2003 — 2.4 V supply, 120 mW, 6.5 GHz, 30 dB, 0.39 mm^2.
* **[5] Galal & Razavi**, "10 Gb/s Limiting Amplifier and
  Laser/Modulator Driver in 0.18 um CMOS", ISSCC 2003 — 1.8 V, 100 mW,
  9.4 GHz, 50 dB, 0.75 mm^2.

These are *records*, not reimplementations — the comparison is a table
of published numbers, exactly as in the paper.  The "this work" column
is generated live from the models so the bench catches any calibration
drift.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

__all__ = ["PublishedResult", "TAO_BERROTH_2003", "GALAL_RAZAVI_2003",
           "PAPER_THIS_WORK", "measured_this_work", "table1_rows"]


@dataclasses.dataclass(frozen=True)
class PublishedResult:
    """One column of Table I."""

    label: str
    process: str
    supply_v: float
    power_mw: float
    data_rate_gbps: float
    bandwidth_ghz: float
    dc_gain_db: float
    area_mm2: float

    def figure_of_merit(self) -> float:
        """Gain-bandwidth per milliwatt (higher is better).

        A compact way to rank the columns: linear gain x bandwidth (GHz)
        / power (mW).
        """
        linear_gain = 10.0 ** (self.dc_gain_db / 20.0)
        return linear_gain * self.bandwidth_ghz / self.power_mw


TAO_BERROTH_2003 = PublishedResult(
    label="[7] Tao-Berroth ESSCIRC'03",
    process="0.18um CMOS",
    supply_v=2.4,
    power_mw=120.0,
    data_rate_gbps=10.0,
    bandwidth_ghz=6.5,
    dc_gain_db=30.0,
    area_mm2=0.39,
)

GALAL_RAZAVI_2003 = PublishedResult(
    label="[5] Galal-Razavi ISSCC'03",
    process="0.18um CMOS",
    supply_v=1.8,
    power_mw=100.0,
    data_rate_gbps=10.0,
    bandwidth_ghz=9.4,
    dc_gain_db=50.0,
    area_mm2=0.75,
)

#: The paper's own Table I column, for paper-vs-measured comparison.
PAPER_THIS_WORK = PublishedResult(
    label="This work (paper)",
    process="0.18um CMOS",
    supply_v=1.8,
    power_mw=70.0,
    data_rate_gbps=10.0,
    bandwidth_ghz=9.5,
    dc_gain_db=40.0,
    area_mm2=0.028,
)


def measured_this_work() -> PublishedResult:
    """The "this work" column regenerated from the behavioral models."""
    from ..core.interface import build_io_interface, build_input_interface

    rx = build_input_interface()
    link = build_io_interface()
    budget = link.budget()
    return PublishedResult(
        label="This work (measured)",
        process="0.18um CMOS (behavioral)",
        supply_v=budget.vdd,
        power_mw=budget.total_power_w() * 1e3,
        data_rate_gbps=10.0,
        bandwidth_ghz=rx.bandwidth_3db() / 1e9,
        dc_gain_db=rx.dc_gain_db(),
        area_mm2=budget.total_area_mm2(),
    )


def table1_rows() -> List[Dict[str, object]]:
    """Table I as row dictionaries (measured column first)."""
    columns = [measured_this_work(), PAPER_THIS_WORK,
               TAO_BERROTH_2003, GALAL_RAZAVI_2003]
    rows = []
    for metric, attr, unit in [
        ("Process", "process", ""),
        ("Supply voltage", "supply_v", "V"),
        ("Power consumption", "power_mw", "mW"),
        ("Operating data rate", "data_rate_gbps", "Gb/s"),
        ("Bandwidth (-3dB)", "bandwidth_ghz", "GHz"),
        ("DC gain (differential)", "dc_gain_db", "dB"),
        ("Chip area (core)", "area_mm2", "mm^2"),
    ]:
        row: Dict[str, object] = {"metric": metric, "unit": unit}
        for column in columns:
            value = getattr(column, attr)
            row[column.label] = value
        rows.append(row)
    return rows
