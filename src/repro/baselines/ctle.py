"""Generic CTLE baseline: the conventional receive equalizer the
Cherry-Hooper design competes with.

A continuous-time linear equalizer in its textbook form is a single
degenerated stage with transfer

    H(s) = g * (1 + s/wz) / ((1 + s/wp1)(1 + s/wp2))

i.e. exactly one zero and two poles.  The paper's Cherry-Hooper
equalizer achieves the same family of responses but adds the active
feedback that keeps gain AND 50-ohm input match simultaneously (a plain
CTLE must trade one for the other).  This baseline exists so the
benches can show the response-shape equivalence and quantify the
gain/match difference.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..lti.blocks import LinearBlock
from ..lti.transfer_function import RationalTF, pole_zero_tf

__all__ = ["GenericCtle", "ctle_matching_equalizer"]


@dataclasses.dataclass(frozen=True)
class GenericCtle:
    """One-zero/two-pole CTLE.

    Parameters
    ----------
    dc_gain:
        Linear gain at DC (< peak gain; the boost is wz->wp1).
    zero_hz, pole1_hz, pole2_hz:
        The zero and pole frequencies; boost = pole1/zero when
        pole2 >> pole1.
    """

    dc_gain: float
    zero_hz: float
    pole1_hz: float
    pole2_hz: float

    def __post_init__(self) -> None:
        if self.dc_gain <= 0:
            raise ValueError(f"dc_gain must be positive, got {self.dc_gain}")
        if not 0 < self.zero_hz < self.pole1_hz <= self.pole2_hz:
            raise ValueError(
                "need 0 < zero < pole1 <= pole2, got "
                f"{self.zero_hz}, {self.pole1_hz}, {self.pole2_hz}"
            )

    def transfer_function(self) -> RationalTF:
        return pole_zero_tf([self.pole1_hz, self.pole2_hz],
                            [self.zero_hz], gain=self.dc_gain)

    def boost_db(self) -> float:
        """Peak boost above DC in dB."""
        tf = self.transfer_function()
        freqs = np.logspace(7, 10.7, 800)
        mags = np.abs(tf.response(freqs))
        return 20.0 * math.log10(float(np.max(mags)) / self.dc_gain)

    def to_block(self) -> LinearBlock:
        """Simulation block (a CTLE is linear by definition)."""
        return LinearBlock(self.transfer_function(), name="ctle")


def ctle_matching_equalizer(equalizer) -> GenericCtle:
    """The CTLE whose response matches a Cherry-Hooper equalizer's.

    Reads the equalizer's tunable zero and boost and places the CTLE's
    singularities to reproduce them — the response-equivalence bridge
    for the baseline bench.
    """
    zero = equalizer.zero_hz
    boost = equalizer.boost_ratio
    pole1 = zero * boost
    # Second pole: the equalizer's output-stage bandwidth.
    pole2 = max(pole1 * 1.5, 9e9)
    dc_gain = abs(equalizer.dc_gain())
    return GenericCtle(dc_gain=dc_gain, zero_hz=zero,
                       pole1_hz=pole1, pole2_hz=pole2)
