"""Baselines: the designs and published results the paper compares
against — the spiral-inductor variant (area claim) and the Table I
record columns.
"""

from .spiral_inductor import (
    equivalent_spiral_load,
    spiral_variant_of,
    SpiralAreaComparison,
    compare_area,
    paper_style_comparison,
    bandwidth_parity_check,
)
from .published import (
    PublishedResult,
    TAO_BERROTH_2003,
    GALAL_RAZAVI_2003,
    PAPER_THIS_WORK,
    measured_this_work,
    table1_rows,
)
from .digital_preemphasis import (
    FirPreEmphasis,
    zero_forcing_taps,
    taps_equivalent_to_peaking,
)
from .ctle import GenericCtle, ctle_matching_equalizer
from .dfe import (
    DecisionFeedbackEqualizer,
    dfe_taps_from_channel,
    inner_eye_height_from_corrected,
)

__all__ = [
    "equivalent_spiral_load",
    "spiral_variant_of",
    "SpiralAreaComparison",
    "compare_area",
    "paper_style_comparison",
    "bandwidth_parity_check",
    "PublishedResult",
    "TAO_BERROTH_2003",
    "GALAL_RAZAVI_2003",
    "PAPER_THIS_WORK",
    "measured_this_work",
    "table1_rows",
    "FirPreEmphasis",
    "zero_forcing_taps",
    "taps_equivalent_to_peaking",
    "GenericCtle",
    "ctle_matching_equalizer",
    "DecisionFeedbackEqualizer",
    "dfe_taps_from_channel",
    "inner_eye_height_from_corrected",
]
