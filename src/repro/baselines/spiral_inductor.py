"""Spiral-inductor baseline: the design the paper's techniques replace.

The abstract claims the wide-band techniques "can reduce 80 % of the
circuit area compared to the circuit area with on-chip inductors".  This
module builds that comparison mechanically: the same interface with
every active-inductor load swapped for a conventional shunt-peaked
R + spiral-L load tuned to a comparable response ("active inductors
require much lower chip area and consume less power but have the same
frequency response").
"""

from __future__ import annotations

import dataclasses
import math
from typing import List

from ..core.cml_buffer import CmlBuffer
from ..core.loads import ActiveInductorLoad, SpiralInductorLoad
from ..core.power_area import MM2, PowerAreaBudget
from ..devices.passives import SpiralInductor

__all__ = ["equivalent_spiral_load", "spiral_variant_of",
           "SpiralAreaComparison", "compare_area",
           "paper_style_comparison", "bandwidth_parity_check"]


def equivalent_spiral_load(load: ActiveInductorLoad) -> SpiralInductorLoad:
    """The R + spiral-L load matching an active-inductor load.

    Matches the DC resistance exactly and the effective inductance of
    the active element, clamped to the practical spiral range at
    10 Gb/s: below 0.5 nH a spiral is not worth its pads, and above
    ~2 nH the self-resonance (shrinking as 1/sqrt(L) with the larger
    winding capacitance) encroaches on the signal band — an active
    inductor can synthesize more L than any spiral a designer would
    actually lay out, which is part of its appeal.
    """
    inductance = min(max(load.inductor.l_effective, 0.5e-9), 2e-9)
    return SpiralInductorLoad(
        resistance=load.r_dc,
        spiral=SpiralInductor(inductance=inductance),
    )


def spiral_variant_of(buffer: CmlBuffer) -> CmlBuffer:
    """A CML buffer with its active-inductor load replaced by a spiral.

    Buffers with non-inductive loads are returned unchanged.
    """
    if not isinstance(buffer.load, ActiveInductorLoad):
        return buffer
    return buffer.with_load(equivalent_spiral_load(buffer.load))


@dataclasses.dataclass(frozen=True)
class SpiralAreaComparison:
    """Outcome of the area ablation."""

    active_area_mm2: float
    spiral_area_mm2: float
    n_spirals: int

    @property
    def reduction_fraction(self) -> float:
        """Fractional area saved by the active-inductor design."""
        if self.spiral_area_mm2 <= 0:
            raise ValueError("spiral baseline has zero area")
        return 1.0 - self.active_area_mm2 / self.spiral_area_mm2

    @property
    def reduction_percent(self) -> float:
        """The paper's headline number (~80 %)."""
        return 100.0 * self.reduction_fraction


def compare_area(core_budget: PowerAreaBudget,
                 inductive_buffers: List[CmlBuffer]) -> SpiralAreaComparison:
    """Area of the real design versus its spiral-inductor equivalent.

    The spiral design keeps the same active circuitry (same budget) but
    adds one spiral pair (differential: two inductors) per inductively
    loaded buffer, each spiral sized by :func:`equivalent_spiral_load`.
    The active-inductor areas it replaces are small enough that keeping
    them in the ledger only makes the comparison conservative.
    """
    active_area = core_budget.total_area_m2()
    spiral_extra = 0.0
    n_spirals = 0
    for buffer in inductive_buffers:
        if not isinstance(buffer.load, ActiveInductorLoad):
            continue
        spiral = equivalent_spiral_load(buffer.load).spiral
        spiral_extra += 2.0 * spiral.area  # differential pair of loads
        n_spirals += 2
    if n_spirals == 0:
        raise ValueError("no inductively loaded buffers supplied")
    return SpiralAreaComparison(
        active_area_mm2=active_area / MM2,
        spiral_area_mm2=(active_area + spiral_extra) / MM2,
        n_spirals=n_spirals,
    )


def paper_style_comparison() -> SpiralAreaComparison:
    """The comparison at the paper's design point.

    Collects every inductively loaded buffer in the default interface
    (LA input buffer + the three driver stages, differential) and
    compares against the 0.028 mm^2 core.
    """
    from ..core.interface import build_input_interface, build_output_interface

    rx = build_input_interface()
    tx = build_output_interface()
    buffers: List[CmlBuffer] = [rx.limiting_amplifier.input_buffer]
    buffers.extend(tx.driver.stages())
    budget = rx.budget().merged(tx.budget(), prefix="tx-")
    return compare_area(budget, buffers)


def bandwidth_parity_check(buffer: CmlBuffer,
                           tolerance: float = 0.35) -> bool:
    """Verify "the same frequency response" claim for one buffer.

    True when the spiral variant's -3 dB bandwidth is within
    ``tolerance`` (fractional) of the active-inductor design's.
    """
    if not isinstance(buffer.load, ActiveInductorLoad):
        raise ValueError("buffer does not use an active-inductor load")
    active_bw = buffer.bandwidth_3db()
    spiral_bw = spiral_variant_of(buffer).bandwidth_3db()
    if math.isinf(active_bw) or math.isinf(spiral_bw):
        return math.isinf(active_bw) == math.isinf(spiral_bw)
    return abs(spiral_bw - active_bw) <= tolerance * active_bw
