"""Decision-feedback equalizer baseline (receiver-side digital EQ).

The receiver-side counterpart of the digital pre-emphasis baseline: a
DFE cancels *post-cursor* ISI by subtracting, from the analog input,
tap-weighted copies of the bits already decided.  Unlike a linear
equalizer it amplifies no noise or crosstalk — but it cannot touch
pre-cursor ISI and it needs a decision clock (a CDR) to exist.

The paper's receive equalization is purely analog (the Cherry-Hooper
high-pass); this baseline quantifies what a small DFE would add on the
same channels — the road the field took in the years after the paper.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence, Tuple

import numpy as np

from ..analysis.isi import pulse_response
from ..lti.blocks import Block
from ..signals.waveform import Waveform

__all__ = ["DecisionFeedbackEqualizer", "dfe_taps_from_channel"]


@dataclasses.dataclass
class DecisionFeedbackEqualizer:
    """A baud-rate N-tap DFE with ideal decision timing.

    Parameters
    ----------
    taps:
        Post-cursor tap weights in volts (the amount subtracted per
        decided one-bit; sign convention: positive taps cancel positive
        post-cursor ISI).
    bit_rate:
        The baud rate.
    decision_amplitude:
        The +-amplitude the slicer assumes for decided bits.
    sample_phase_ui:
        Sampling phase within the UI (0.5 = centre).
    """

    taps: Sequence[float]
    bit_rate: float
    decision_amplitude: float = 1.0
    sample_phase_ui: float = 0.5

    def __post_init__(self) -> None:
        taps = np.asarray(self.taps, dtype=float)
        if taps.size == 0:
            raise ValueError("DFE needs at least one tap")
        if self.bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {self.bit_rate}")
        if self.decision_amplitude <= 0:
            raise ValueError("decision_amplitude must be positive")
        if not 0.0 < self.sample_phase_ui < 1.0:
            raise ValueError(
                f"sample_phase_ui must be in (0,1), got {self.sample_phase_ui}"
            )
        self.taps = taps

    def equalize(self, wave: Waveform) -> Tuple[np.ndarray, np.ndarray]:
        """Run the DFE over a waveform.

        Returns ``(decisions, corrected_samples)``: the sliced bits and
        the ISI-corrected analog samples at the decision instants (the
        quantity whose histogram is the DFE's "inner eye").
        """
        ui_samples = wave.sample_rate / self.bit_rate
        n_bits = int((len(wave) - 1) / ui_samples)
        if n_bits < len(self.taps) + 4:
            raise ValueError("waveform too short for the tap count")
        decisions = np.zeros(n_bits, dtype=np.int8)
        corrected = np.zeros(n_bits)
        history = np.zeros(len(self.taps))  # previous decided values (+-A)
        for k in range(n_bits):
            index = (k + self.sample_phase_ui) * ui_samples
            i0 = int(index)
            frac = index - i0
            raw = (1 - frac) * wave.data[i0] + frac * wave.data[
                min(i0 + 1, len(wave) - 1)]
            value = raw - float(np.dot(self.taps, history))
            corrected[k] = value
            bit = 1 if value > 0 else 0
            decisions[k] = bit
            level = self.decision_amplitude if bit else \
                -self.decision_amplitude
            history = np.roll(history, 1)
            history[0] = level
        return decisions, corrected

    def inner_eye_height(self, wave: Waveform,
                         skip_bits: int = 16) -> float:
        """Worst-case vertical opening of the corrected samples."""
        _, corrected = self.equalize(wave)
        usable = corrected[skip_bits:]
        ones = usable[usable > 0]
        zeros = usable[usable <= 0]
        if ones.size == 0 or zeros.size == 0:
            return -float("inf")
        return float(ones.min() - zeros.max())


def dfe_taps_from_channel(channel: Block, bit_rate: float, n_taps: int = 2,
                          amplitude: float = 1.0,
                          decision_amplitude: float = 1.0,
                          samples_per_bit: int = 16) -> np.ndarray:
    """Provision DFE taps from the channel's measured post-cursors.

    For NRZ decomposed as ``y[n] = sum_k s_k h[n-k]/2`` (``s_k`` in
    {-1, +1}, ``h`` the single-bit pulse cursors at drive swing
    ``amplitude`` pp), the zero-forcing tap j must subtract
    ``s_{n-j} h[j]/2``; with decided values stored as
    ``+-decision_amplitude`` the tap weight is
    ``h[j] / (2 * decision_amplitude)``.
    """
    if n_taps < 1:
        raise ValueError(f"n_taps must be >= 1, got {n_taps}")
    if decision_amplitude <= 0:
        raise ValueError(
            f"decision_amplitude must be positive, got {decision_amplitude}"
        )
    pulse = pulse_response(channel, bit_rate,
                           samples_per_bit=samples_per_bit,
                           amplitude=amplitude)
    post = pulse.postcursors()[:n_taps]
    if len(post) < n_taps:
        raise ValueError("pulse response too short for the tap count")
    return np.asarray(post) / (2.0 * decision_amplitude)
