"""Decision-feedback equalizer baseline (receiver-side digital EQ).

The receiver-side counterpart of the digital pre-emphasis baseline: a
DFE cancels *post-cursor* ISI by subtracting, from the analog input,
tap-weighted copies of the bits already decided.  Unlike a linear
equalizer it amplifies no noise or crosstalk — but it cannot touch
pre-cursor ISI and it needs a decision clock (a CDR) to exist.

The paper's receive equalization is purely analog (the Cherry-Hooper
high-pass); this baseline quantifies what a small DFE would add on the
same channels — the road the field took in the years after the paper.

Two execution paths share one set of kernels, mirroring the CDR layer:

* :meth:`DecisionFeedbackEqualizer.equalize` — the serial reference,
  one scalar decision history per waveform;
* the batched kernel — N scenarios advanced together through the
  bit-serial backend selected by :mod:`repro.kernels` (numba-compiled
  per-row loops when available, the vectorized one-bit-step-at-a-time
  NumPy engine otherwise; both bit-exact), with per-row decision
  history; reached through ``repro.link`` (``stage(dfe).equalize`` or
  :class:`~repro.link.LinkSession`), with the deprecated
  ``equalize_batch`` shim delegating to the same code.

Both sample through :func:`~repro.signals.waveform.sample_uniform` and
apply the feedback subtraction in the same expression order, so row
``i`` of a batch run is bit-identical to the serial run of
``batch[i]``.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Optional, Sequence, Tuple

import numpy as np

from .. import kernels
from ..analysis.isi import pulse_response
from ..lti.blocks import Block
from ..signals.batch import WaveformBatch
from ..signals.modulation import Modulation, Nrz
from ..signals.waveform import Waveform, sample_uniform

__all__ = ["DecisionFeedbackEqualizer", "dfe_taps_from_channel",
           "inner_eye_height_from_corrected"]


def inner_eye_height_from_corrected(corrected: np.ndarray,
                                    skip_bits: int = 16,
                                    thresholds=None):
    """Worst-case vertical opening of DFE-corrected samples.

    Per sub-eye ``min(upper cluster) - max(lower cluster)`` after
    dropping the first ``skip_bits`` decisions (feedback-history fill),
    reporting the worst sub-eye.  ``thresholds`` is the DFE's sorted
    decision-threshold vector; the default ``[0.0]`` is the historical
    binary inner eye.  1-D input returns a float; 2-D
    ``(n_scenarios, n_bits)`` input returns a per-row array.  Rows
    missing a level cluster report ``-inf`` (no eye to measure).
    """
    corrected = np.asarray(corrected, dtype=float)
    thresholds = (np.zeros(1) if thresholds is None
                  else np.asarray(thresholds, dtype=float))
    usable = corrected[..., skip_bits:]
    if usable.shape[-1] == 0:
        # Everything skipped: no samples to measure, hence no eye.
        height = np.full(usable.shape[:-1], -np.inf)
        return float(height) if corrected.ndim == 1 else height
    counts = np.zeros(usable.shape, dtype=np.int8)
    for threshold in thresholds:
        counts += usable > threshold
    worst = None
    for e in range(len(thresholds)):
        upper_mask = counts == e + 1
        lower_mask = counts == e
        upper_min = np.min(np.where(upper_mask, usable, np.inf), axis=-1)
        lower_max = np.max(np.where(lower_mask, usable, -np.inf), axis=-1)
        valid = upper_mask.any(axis=-1) & lower_mask.any(axis=-1)
        height = np.where(valid, upper_min - lower_max, -np.inf)
        worst = height if worst is None else np.minimum(worst, height)
    return float(worst) if corrected.ndim == 1 else worst


@dataclasses.dataclass
class DecisionFeedbackEqualizer:
    """A baud-rate N-tap DFE with ideal decision timing.

    Parameters
    ----------
    taps:
        Post-cursor tap weights in volts (the amount subtracted per
        decided one-bit; sign convention: positive taps cancel positive
        post-cursor ISI).
    bit_rate:
        The baud (symbol) rate.
    decision_amplitude:
        Half the peak-to-peak swing the slicer assumes for decided
        symbols: the outer decided levels are ``+-decision_amplitude``
        (for NRZ, the classic decided-bit amplitude).
    sample_phase_ui:
        Sampling phase within the UI (0.5 = centre).
    modulation:
        Level alphabet to slice against; defaults to two-level NRZ
        (bit-exact with the historical sign slicer).  Decided symbols
        feed back their level value scaled to the
        ``2 * decision_amplitude`` swing, and decisions are level
        indices (0/1 for NRZ).
    """

    taps: Sequence[float]
    bit_rate: float
    decision_amplitude: float = 1.0
    sample_phase_ui: float = 0.5
    modulation: Modulation = Nrz()

    def __post_init__(self) -> None:
        taps = np.asarray(self.taps, dtype=float)
        if taps.size == 0:
            raise ValueError("DFE needs at least one tap")
        if self.bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {self.bit_rate}")
        if self.decision_amplitude <= 0:
            raise ValueError("decision_amplitude must be positive")
        if not 0.0 < self.sample_phase_ui < 1.0:
            raise ValueError(
                f"sample_phase_ui must be in (0,1), got {self.sample_phase_ui}"
            )
        self.taps = taps
        # Slicer geometry at the decided swing.  The normalized outer
        # levels are +-0.5, so a 2*decision_amplitude swing puts them at
        # exactly +-decision_amplitude — for NRZ these are bitwise the
        # historical +-A feedback values, and the single threshold is
        # exactly 0.0.
        swing = 2.0 * self.decision_amplitude
        self.decision_thresholds = self.modulation.threshold_values(swing)
        self.decision_levels = self.modulation.level_values(swing)

    def _n_bits(self, n_samples: int, ui_samples: float) -> int:
        """Decidable bits: every UI whose sampling instant
        ``(k + sample_phase_ui) * ui_samples`` lies on the sample grid.

        ``int((n_samples - 1) / ui_samples)`` — the old formula —
        silently dropped the final UI when the waveform ends exactly on
        a bit boundary: its mid-UI sampling instant is on the grid even
        though the boundary itself is one sample past it.
        """
        n_bits = int(np.floor((n_samples - 1) / ui_samples
                              - self.sample_phase_ui)) + 1
        if n_bits < len(self.taps) + 4:
            raise ValueError("waveform too short for the tap count")
        return n_bits

    def equalize(self, wave: Waveform) -> Tuple[np.ndarray, np.ndarray]:
        """Run the DFE over a waveform.

        Returns ``(decisions, corrected_samples)``: the sliced symbols
        (level indices; 0/1 bits for NRZ) and the ISI-corrected analog
        samples at the decision instants (the quantity whose histogram
        is the DFE's "inner eye").
        """
        ui_samples = wave.sample_rate / self.bit_rate
        n_bits = self._n_bits(len(wave), ui_samples)
        thresholds = self.decision_thresholds
        levels = self.decision_levels
        decisions = np.zeros(n_bits, dtype=np.int8)
        corrected = np.zeros(n_bits)
        history = np.zeros(len(self.taps))  # previous decided values
        data = wave.data
        for k in range(n_bits):
            index = (k + self.sample_phase_ui) * ui_samples
            # The shared interpolation kernel clamps at the grid edge,
            # guarding the last-sample instant against float round-up.
            raw = float(sample_uniform(data, 0.0, 1.0, index))
            # Tap-index-order accumulation: the exact summation order
            # every repro.kernels backend uses, so serial == batched
            # bit for bit at any tap count.
            feedback = 0.0
            for weight, past in zip(self.taps, history):
                feedback += weight * past
            value = raw - feedback
            corrected[k] = value
            # Nearest-level slice: count of thresholds strictly below
            # the value.  For NRZ ([0.0]) this is the historical
            # ``1 if value > 0 else 0`` sign slicer, bit for bit.
            symbol = 0
            for threshold in thresholds:
                if value > threshold:
                    symbol += 1
            decisions[k] = symbol
            history = np.roll(history, 1)
            history[0] = levels[symbol]
        return decisions, corrected

    def equalize_batch(self, batch: WaveformBatch
                       ) -> Tuple[np.ndarray, np.ndarray]:
        """Deprecated alias for the single batched dispatch path.

        Use ``repro.link.stage(dfe).equalize(batch)`` or a
        :class:`~repro.link.LinkSession` with a DFE config; both drive
        the same kernel this method always ran.
        """
        warnings.warn(
            "DecisionFeedbackEqualizer.equalize_batch is deprecated; "
            "drive the DFE through repro.link (stage(dfe).equalize(...) "
            "or LinkSession.run_batch)",
            DeprecationWarning, stacklevel=2,
        )
        return self._equalize_batch(batch)

    def _equalize_batch(self, batch: WaveformBatch
                        ) -> Tuple[np.ndarray, np.ndarray]:
        """Run N independent DFEs over a batch through the kernel layer.

        The bit-serial recurrence (per-row decision history, shared
        interpolation sampling, feedback subtraction) executes on the
        backend selected by :mod:`repro.kernels`; returns
        ``(decisions, corrected)`` of shape ``(n_scenarios, n_bits)``.
        Row ``i`` matches ``equalize(batch[i])`` exactly on every
        backend — same sampling kernel, same subtraction and update
        order.
        """
        ui_samples = batch.sample_rate / self.bit_rate
        n_bits = self._n_bits(batch.n_samples, ui_samples)
        backend = kernels.get_backend()
        return backend.dfe_equalize_batch(
            batch.data, np.asarray(self.taps, dtype=float), ui_samples,
            self.sample_phase_ui, self.decision_amplitude, n_bits,
            self.decision_thresholds, self.decision_levels,
        )

    def inner_eye_height(self, wave: Waveform,
                         skip_bits: int = 16) -> float:
        """Worst-case vertical opening of the corrected samples
        (worst sub-eye for multi-level modulations)."""
        _, corrected = self.equalize(wave)
        return float(inner_eye_height_from_corrected(
            corrected, skip_bits, thresholds=self.decision_thresholds))

    def inner_eye_height_batch(self, batch: WaveformBatch,
                               skip_bits: int = 16) -> np.ndarray:
        """Deprecated: use ``repro.link.stage(dfe).inner_eye_height``."""
        warnings.warn(
            "DecisionFeedbackEqualizer.inner_eye_height_batch is "
            "deprecated; use repro.link (stage(dfe).inner_eye_height)",
            DeprecationWarning, stacklevel=2,
        )
        _, corrected = self._equalize_batch(batch)
        return inner_eye_height_from_corrected(
            corrected, skip_bits, thresholds=self.decision_thresholds)


def dfe_taps_from_channel(channel: Block, bit_rate: float, n_taps: int = 2,
                          amplitude: float = 1.0,
                          decision_amplitude: float = 1.0,
                          samples_per_bit: int = 16) -> np.ndarray:
    """Provision DFE taps from the channel's measured post-cursors.

    For NRZ decomposed as ``y[n] = sum_k s_k h[n-k]/2`` (``s_k`` in
    {-1, +1}, ``h`` the single-bit pulse cursors at drive swing
    ``amplitude`` pp), the zero-forcing tap j must subtract
    ``s_{n-j} h[j]/2``; with decided values stored as
    ``+-decision_amplitude`` the tap weight is
    ``h[j] / (2 * decision_amplitude)``.
    """
    if n_taps < 1:
        raise ValueError(f"n_taps must be >= 1, got {n_taps}")
    if decision_amplitude <= 0:
        raise ValueError(
            f"decision_amplitude must be positive, got {decision_amplitude}"
        )
    pulse = pulse_response(channel, bit_rate,
                           samples_per_bit=samples_per_bit,
                           amplitude=amplitude)
    post = pulse.postcursors()[:n_taps]
    if len(post) < n_taps:
        raise ValueError("pulse response too short for the tap count")
    return np.asarray(post) / (2.0 * decision_amplitude)
