"""AC (frequency-response) measurement.

Two measurement styles, mirroring lab practice:

* **analytic** — read DC gain / -3 dB bandwidth / peaking directly off a
  block's :class:`~repro.lti.transfer_function.RationalTF` (the network-
  analyzer-on-a-netlist view);
* **stimulus-based** — drive a (possibly nonlinear) block with small
  sine waves and measure the output fundamental with a single-bin DFT
  (Goertzel), the way one characterizes real hardware.  For limiting
  stages this is the honest measurement: the analytic TF is only the
  small-signal linearization.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

from ..lti.blocks import Block
from ..lti.transfer_function import RationalTF
from ..signals.waveform import Waveform

__all__ = ["AcMeasurement", "measure_tf", "goertzel_amplitude",
           "measure_gain_at", "measure_frequency_response",
           "measure_bandwidth_stimulus"]


@dataclasses.dataclass(frozen=True)
class AcMeasurement:
    """The Table I AC numbers for one circuit."""

    dc_gain_db: float
    bandwidth_3db_hz: float
    peaking_db: float

    @property
    def gain_bandwidth_hz(self) -> float:
        """Gain-bandwidth product A0 * f3dB."""
        return 10.0 ** (self.dc_gain_db / 20.0) * self.bandwidth_3db_hz


def measure_tf(tf: RationalTF, f_max: float = 100e9) -> AcMeasurement:
    """Analytic AC measurement of a transfer function."""
    dc = abs(tf.dc_gain())
    if dc == 0:
        raise ValueError("DC gain is zero; AC measurement undefined")
    return AcMeasurement(
        dc_gain_db=20.0 * math.log10(dc),
        bandwidth_3db_hz=tf.bandwidth_3db(f_max=f_max),
        peaking_db=tf.peaking_db(f_max=f_max),
    )


def goertzel_amplitude(data: np.ndarray, sample_rate: float,
                       freq_hz: float) -> float:
    """Amplitude of one frequency component via a single-bin DFT.

    Classic Goertzel recurrence — O(n) per bin, no full FFT needed, and
    exact for bin-centred tones.  Returns the amplitude (not power) of
    the component, i.e. a unit-amplitude sine measures 1.0.
    """
    data = np.asarray(data, dtype=float)
    n = len(data)
    if n < 8:
        raise ValueError(f"need at least 8 samples, got {n}")
    if not 0 < freq_hz < sample_rate / 2:
        raise ValueError(
            f"frequency {freq_hz} outside (0, Nyquist={sample_rate / 2})"
        )
    k = freq_hz / sample_rate
    w = 2.0 * math.pi * k
    coeff = 2.0 * math.cos(w)
    s_prev = 0.0
    s_prev2 = 0.0
    # Vectorized Goertzel via complex exponential correlation (identical
    # result, numpy speed): X = sum(x * exp(-jwn)).
    phase = np.exp(-1j * w * np.arange(n))
    x = np.dot(data, phase)
    del s_prev, s_prev2, coeff
    return 2.0 * abs(x) / n


def measure_gain_at(block: Block, freq_hz: float, sample_rate: float,
                    amplitude: float = 1e-3, n_cycles: int = 40) -> float:
    """Measured small-signal gain of a block at one frequency.

    Drives ``n_cycles`` of a sine at ``amplitude``, discards the first
    half (settling), and compares output/input fundamentals.
    """
    if amplitude <= 0:
        raise ValueError(f"amplitude must be positive, got {amplitude}")
    if n_cycles < 8:
        raise ValueError(f"n_cycles must be >= 8, got {n_cycles}")
    n_samples = int(round(n_cycles * sample_rate / freq_hz))
    t = np.arange(n_samples) / sample_rate
    stimulus = Waveform(amplitude * np.sin(2 * np.pi * freq_hz * t),
                        sample_rate)
    response = block.process(stimulus)
    half = n_samples // 2
    out_amp = goertzel_amplitude(response.data[half:], sample_rate, freq_hz)
    in_amp = goertzel_amplitude(stimulus.data[half:], sample_rate, freq_hz)
    return out_amp / in_amp


def measure_frequency_response(block: Block, freqs_hz: Sequence[float],
                               sample_rate: float,
                               amplitude: float = 1e-3) -> np.ndarray:
    """Measured gain (linear) of a block at several frequencies."""
    return np.array([
        measure_gain_at(block, f, sample_rate, amplitude=amplitude)
        for f in freqs_hz
    ])


def measure_bandwidth_stimulus(block: Block, sample_rate: float,
                               f_lo: float = 1e8, f_hi: float = 40e9,
                               amplitude: float = 1e-3,
                               n_points: int = 25) -> float:
    """-3 dB bandwidth of a block measured by sine sweep.

    The stimulus-based counterpart of ``RationalTF.bandwidth_3db`` that
    works on nonlinear blocks.  ``f_hi`` is clamped below Nyquist.
    """
    f_hi = min(f_hi, 0.45 * sample_rate)
    if f_lo >= f_hi:
        raise ValueError(f"need f_lo < f_hi, got {f_lo} >= {f_hi}")
    freqs = np.logspace(math.log10(f_lo), math.log10(f_hi), n_points)
    gains = measure_frequency_response(block, freqs, sample_rate,
                                       amplitude=amplitude)
    reference = gains[0]
    if reference <= 0:
        raise ValueError("block shows no gain at the lowest frequency")
    target = reference / math.sqrt(2.0)
    below = np.flatnonzero(gains < target)
    if below.size == 0:
        return float("inf")
    hi_idx = int(below[0])
    if hi_idx == 0:
        return float(freqs[0])
    # Log-linear interpolation between the bracketing sweep points.
    f0, f1 = freqs[hi_idx - 1], freqs[hi_idx]
    g0, g1 = gains[hi_idx - 1], gains[hi_idx]
    frac = (g0 - target) / (g0 - g1)
    return float(f0 * (f1 / f0) ** frac)
