"""Inter-symbol-interference analysis via pulse responses.

The channel experiments (Figs 15/16) are all about ISI: a lossy trace
smears each bit into its neighbours.  The single-bit *pulse response*
makes this quantitative without simulating long patterns:

* the **cursor** is the pulse sample at the decision instant;
* **pre/post-cursors** are the samples one UI apart — the interference
  a bit inflicts on its neighbours;
* **peak-distortion analysis** bounds the worst-case eye opening as
  ``cursor - sum(|other cursors|)`` — the classical conservative eye
  estimate, negative when ISI alone can close the eye.
"""

from __future__ import annotations

import dataclasses
from typing import List

import numpy as np

from ..lti.blocks import Block
from ..signals.batch import WaveformBatch
from ..signals.nrz import bits_to_nrz
from ..signals.waveform import Waveform

__all__ = ["PulseResponse", "pulse_response", "pulse_response_batch",
           "worst_case_eye_opening"]


@dataclasses.dataclass(frozen=True)
class PulseResponse:
    """A single-bit response sampled at UI spacing.

    ``cursors[cursor_index]`` is the main tap; entries before/after are
    pre-/post-cursor ISI taps.
    """

    wave: Waveform
    bit_rate: float
    cursors: np.ndarray
    cursor_index: int

    @property
    def main_cursor(self) -> float:
        """The decision-instant amplitude."""
        return float(self.cursors[self.cursor_index])

    def precursors(self) -> np.ndarray:
        """ISI taps before the main cursor."""
        return self.cursors[: self.cursor_index]

    def postcursors(self) -> np.ndarray:
        """ISI taps after the main cursor."""
        return self.cursors[self.cursor_index + 1:]

    def isi_sum(self) -> float:
        """Total absolute ISI from all non-main taps."""
        others = np.concatenate([self.precursors(), self.postcursors()])
        return float(np.sum(np.abs(others)))

    def worst_case_opening(self) -> float:
        """Peak-distortion eye bound: main - sum|others| (can be < 0)."""
        return self.main_cursor - self.isi_sum()

    def isi_ratio_db(self) -> float:
        """Main cursor over total ISI in dB (higher = cleaner)."""
        isi = self.isi_sum()
        if isi == 0:
            return float("inf")
        return 20.0 * float(np.log10(self.main_cursor / isi))


def pulse_response(system: Block, bit_rate: float,
                   samples_per_bit: int = 32, n_lead_bits: int = 8,
                   n_lag_bits: int = 24,
                   amplitude: float = 1.0) -> PulseResponse:
    """Measure a system's single-bit pulse response.

    Sends ``...0001000...`` (a lone one), removes the system's response
    to the all-zero baseline, and samples at the instant maximizing the
    main cursor.
    """
    if n_lead_bits < 2 or n_lag_bits < 2:
        raise ValueError("need at least 2 lead and lag bits")
    bits: List[int] = [0] * n_lead_bits + [1] + [0] * n_lag_bits
    stimulus = bits_to_nrz(np.array(bits), bit_rate, amplitude=amplitude,
                           samples_per_bit=samples_per_bit)
    baseline = bits_to_nrz(np.zeros(len(bits), dtype=int), bit_rate,
                           amplitude=amplitude,
                           samples_per_bit=samples_per_bit)
    response = system.process(stimulus).data - system.process(baseline).data

    spb = samples_per_bit
    peak = int(np.argmax(np.abs(response)))
    # Sample the response at UI spacing through the peak.
    offset = peak % spb
    sampled = response[offset::spb]
    cursor_index = peak // spb
    wave = Waveform(response, stimulus.sample_rate)
    return PulseResponse(wave=wave, bit_rate=bit_rate,
                         cursors=np.asarray(sampled),
                         cursor_index=cursor_index)


def pulse_response_batch(system: Block, bit_rate: float,
                         amplitudes, samples_per_bit: int = 32,
                         n_lead_bits: int = 8,
                         n_lag_bits: int = 24) -> List[PulseResponse]:
    """Pulse responses at several stimulus amplitudes in one batched pass.

    Builds the lone-one stimulus and the all-zero baseline for every
    amplitude, pushes both batches through ``system`` once each (blocks
    are batch-transparent), and extracts one :class:`PulseResponse` per
    amplitude — the nonlinear-compression view of ISI across a drive
    range without re-running the pipeline per point.
    """
    amplitudes = list(amplitudes)
    if not amplitudes:
        raise ValueError("need at least one amplitude")
    if n_lead_bits < 2 or n_lag_bits < 2:
        raise ValueError("need at least 2 lead and lag bits")
    bits = np.array([0] * n_lead_bits + [1] + [0] * n_lag_bits)
    zeros = np.zeros(len(bits), dtype=int)
    stimuli = WaveformBatch.stack([
        bits_to_nrz(bits, bit_rate, amplitude=a,
                    samples_per_bit=samples_per_bit)
        for a in amplitudes
    ])
    baselines = WaveformBatch.stack([
        bits_to_nrz(zeros, bit_rate, amplitude=a,
                    samples_per_bit=samples_per_bit)
        for a in amplitudes
    ])
    responses = system.process(stimuli).data - system.process(baselines).data

    spb = samples_per_bit
    out: List[PulseResponse] = []
    for row in responses:
        peak = int(np.argmax(np.abs(row)))
        offset = peak % spb
        sampled = row[offset::spb]
        out.append(PulseResponse(
            wave=Waveform(row, stimuli.sample_rate), bit_rate=bit_rate,
            cursors=np.asarray(sampled), cursor_index=peak // spb,
        ))
    return out


def worst_case_eye_opening(system: Block, bit_rate: float,
                           samples_per_bit: int = 32,
                           amplitude: float = 1.0) -> float:
    """One-call peak-distortion eye bound for a system."""
    return pulse_response(system, bit_rate, samples_per_bit=samples_per_bit,
                          amplitude=amplitude).worst_case_opening()
