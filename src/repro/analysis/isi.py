"""Inter-symbol-interference analysis via pulse responses.

The channel experiments (Figs 15/16) are all about ISI: a lossy trace
smears each bit into its neighbours.  The single-bit *pulse response*
makes this quantitative without simulating long patterns:

* the **cursor** is the pulse sample at the decision instant;
* **pre/post-cursors** are the samples one UI apart — the interference
  a bit inflicts on its neighbours;
* **peak-distortion analysis** bounds the worst-case eye opening as
  ``cursor - sum(|other cursors|)`` — the classical conservative eye
  estimate, negative when ISI alone can close the eye.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

from ..lti.blocks import Block
from ..signals.batch import WaveformBatch
from ..signals.modulation import Modulation
from ..signals.nrz import bits_to_nrz
from ..signals.waveform import Waveform

__all__ = ["PulseResponse", "pulse_response", "pulse_response_batch",
           "worst_case_eye_opening"]


@dataclasses.dataclass(frozen=True)
class PulseResponse:
    """A single-bit response sampled at UI spacing.

    ``cursors[cursor_index]`` is the main tap; entries before/after are
    pre-/post-cursor ISI taps.
    """

    wave: Waveform
    bit_rate: float
    cursors: np.ndarray
    cursor_index: int

    @classmethod
    def from_waveform(cls, wave: Waveform,
                      bit_rate: float) -> "PulseResponse":
        """Interpret an already-measured (baseline-free) response.

        ``wave`` must be the system's response to a lone unit pulse
        with the baseline removed — e.g. the processed difference
        stimulus of :func:`repro.stateye.stat_eye_stimulus`.  Cursors
        are sampled at UI spacing through the peak, exactly as
        :func:`pulse_response` does.
        """
        data = np.asarray(wave.data, dtype=float)
        if data.size < 2:
            raise ValueError("pulse waveform needs at least 2 samples")
        ratio = wave.sample_rate / bit_rate
        spb = int(round(ratio))
        if spb < 2 or abs(ratio - spb) > 1e-9 * spb:
            raise ValueError(
                f"sample rate must be an integer multiple (>= 2) of the "
                f"bit rate, got {ratio:g} samples per UI"
            )
        peak = int(np.argmax(np.abs(data)))
        offset = peak % spb
        return cls(wave=wave, bit_rate=bit_rate,
                   cursors=np.asarray(data[offset::spb]),
                   cursor_index=peak // spb)

    @property
    def main_cursor(self) -> float:
        """The decision-instant amplitude."""
        return float(self.cursors[self.cursor_index])

    def precursors(self) -> np.ndarray:
        """ISI taps before the main cursor."""
        return self.cursors[: self.cursor_index]

    def postcursors(self) -> np.ndarray:
        """ISI taps after the main cursor."""
        return self.cursors[self.cursor_index + 1:]

    def isi_sum(self, modulation: Optional[Modulation] = None) -> float:
        """Worst-case peak-to-peak ISI excursion of the sampled voltage.

        With normalized levels spanning ``span = max - min`` (1.0 for
        the shipped alphabets), each non-main tap ``c`` contributes at
        most ``span * |c|`` peak to peak, so the total is
        ``span * sum|others|`` — for two-level NRZ exactly the
        historical ``sum|others|``.
        """
        others = np.concatenate([self.precursors(), self.postcursors()])
        total = float(np.sum(np.abs(others)))
        if modulation is None:
            return total
        levels = np.asarray(modulation.levels, dtype=float)
        return float(levels.max() - levels.min()) * total

    def worst_case_opening(self,
                           modulation: Optional[Modulation] = None) -> float:
        """Peak-distortion eye bound (can be < 0 when ISI closes it).

        For each sub-eye the separation of its two adjacent levels is
        eroded by the full peak-to-peak ISI excursion:
        ``sep_e * main - isi_sum(modulation)``; the bound is the
        narrowest sub-eye's.  A PAM4 inner eye starts with one third of
        the NRZ separation but suffers the *same* ISI excursion, which
        the historical two-level formula (``modulation=None``, exactly
        ``main - sum|others|``) misses.
        """
        if modulation is None:
            return self.main_cursor - self.isi_sum()
        levels = np.asarray(modulation.levels, dtype=float)
        min_sep = float(np.min(np.diff(levels)))
        return min_sep * self.main_cursor - self.isi_sum(modulation)

    def isi_ratio_db(self) -> float:
        """Main cursor over total ISI in dB (higher = cleaner)."""
        isi = self.isi_sum()
        if isi == 0:
            return float("inf")
        return 20.0 * float(np.log10(self.main_cursor / isi))


def pulse_response(system: Block, bit_rate: float,
                   samples_per_bit: int = 32, n_lead_bits: int = 8,
                   n_lag_bits: int = 24,
                   amplitude: float = 1.0) -> PulseResponse:
    """Measure a system's single-bit pulse response.

    Sends ``...0001000...`` (a lone one), removes the system's response
    to the all-zero baseline, and samples at the instant maximizing the
    main cursor.
    """
    if n_lead_bits < 2 or n_lag_bits < 2:
        raise ValueError("need at least 2 lead and lag bits")
    bits: List[int] = [0] * n_lead_bits + [1] + [0] * n_lag_bits
    stimulus = bits_to_nrz(np.array(bits), bit_rate, amplitude=amplitude,
                           samples_per_bit=samples_per_bit)
    baseline = bits_to_nrz(np.zeros(len(bits), dtype=int), bit_rate,
                           amplitude=amplitude,
                           samples_per_bit=samples_per_bit)
    response = system.process(stimulus).data - system.process(baseline).data
    return PulseResponse.from_waveform(
        Waveform(response, stimulus.sample_rate), bit_rate)


def pulse_response_batch(system: Block, bit_rate: float,
                         amplitudes, samples_per_bit: int = 32,
                         n_lead_bits: int = 8,
                         n_lag_bits: int = 24) -> List[PulseResponse]:
    """Pulse responses at several stimulus amplitudes in one batched pass.

    Builds the lone-one stimulus and the all-zero baseline for every
    amplitude, pushes both batches through ``system`` once each (blocks
    are batch-transparent), and extracts one :class:`PulseResponse` per
    amplitude — the nonlinear-compression view of ISI across a drive
    range without re-running the pipeline per point.
    """
    amplitudes = list(amplitudes)
    if not amplitudes:
        raise ValueError("need at least one amplitude")
    if n_lead_bits < 2 or n_lag_bits < 2:
        raise ValueError("need at least 2 lead and lag bits")
    bits = np.array([0] * n_lead_bits + [1] + [0] * n_lag_bits)
    zeros = np.zeros(len(bits), dtype=int)
    stimuli = WaveformBatch.stack([
        bits_to_nrz(bits, bit_rate, amplitude=a,
                    samples_per_bit=samples_per_bit)
        for a in amplitudes
    ])
    baselines = WaveformBatch.stack([
        bits_to_nrz(zeros, bit_rate, amplitude=a,
                    samples_per_bit=samples_per_bit)
        for a in amplitudes
    ])
    responses = system.process(stimuli).data - system.process(baselines).data
    return [
        PulseResponse.from_waveform(Waveform(row, stimuli.sample_rate),
                                    bit_rate)
        for row in responses
    ]


def worst_case_eye_opening(system: Block, bit_rate: float,
                           samples_per_bit: int = 32,
                           amplitude: float = 1.0,
                           modulation: Optional[Modulation] = None) -> float:
    """One-call peak-distortion eye bound for a system (worst sub-eye
    of ``modulation`` when given, two-level NRZ otherwise)."""
    return pulse_response(system, bit_rate, samples_per_bit=samples_per_bit,
                          amplitude=amplitude).worst_case_opening(modulation)
