"""Jitter decomposition: separating random from deterministic jitter.

The scope-industry standard dual-Dirac model treats a measured crossing
histogram as two Dirac impulses (the deterministic jitter, DJ,
peak-to-peak separation) convolved with a Gaussian (the random jitter,
RJ, sigma).  Fitting the histogram tails recovers (RJ, DJ) and lets the
total jitter be extrapolated to any BER — turning the finite eye
measurements of Figs 14-16 into link-budget numbers.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List

import numpy as np
from scipy.special import erfcinv

from ..signals.batch import WaveformBatch
from ..signals.waveform import Waveform
from .eye import EyeDiagram, EyeDiagramBatch

__all__ = ["JitterDecomposition", "decompose_jitter",
           "decompose_jitter_batch", "decompose_crossings"]


@dataclasses.dataclass(frozen=True)
class JitterDecomposition:
    """Dual-Dirac jitter parameters (all in seconds)."""

    rj_rms: float
    dj_pp: float
    n_crossings: int

    def total_jitter(self, ber: float = 1e-12) -> float:
        """TJ(BER) = DJ + 2 Q(BER) RJ."""
        if not 0 < ber < 0.5:
            raise ValueError(f"ber must be in (0, 0.5), got {ber}")
        q = math.sqrt(2.0) * float(erfcinv(2.0 * ber))
        return self.dj_pp + 2.0 * q * self.rj_rms

    def eye_closure_ui(self, bit_rate: float, ber: float = 1e-12) -> float:
        """Horizontal eye closure at a BER, in UI."""
        if bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {bit_rate}")
        return self.total_jitter(ber) * bit_rate


def decompose_crossings(crossings_s: np.ndarray,
                        tail_fraction: float = 0.2) -> JitterDecomposition:
    """Fit the dual-Dirac model to raw crossing times (seconds).

    The estimator is the tail-fit method: the outer ``tail_fraction``
    quantiles of the distribution are assumed Gaussian; their spread
    estimates RJ, and the residual separation of the distribution's
    percentile width beyond the Gaussian part estimates DJ.
    """
    crossings_s = np.asarray(crossings_s, dtype=float)
    if crossings_s.size < 32:
        raise ValueError(
            f"need >= 32 crossings to decompose, got {crossings_s.size}"
        )
    if not 0.05 <= tail_fraction <= 0.45:
        raise ValueError(
            f"tail_fraction must be in [0.05, 0.45], got {tail_fraction}"
        )
    sorted_times = np.sort(crossings_s)
    n = sorted_times.size
    k = max(4, int(n * tail_fraction))
    left_tail = sorted_times[:k]
    right_tail = sorted_times[-k:]
    # Gaussian sigma from each tail's internal spread; RJ is their mean.
    sigma_left = float(np.std(left_tail))
    sigma_right = float(np.std(right_tail))
    rj = 0.5 * (sigma_left + sigma_right)

    # DJ: the separation of the two tail means beyond what a single
    # Gaussian would put there.  For a pure Gaussian the tail means sit
    # at +-E[|tail|]; subtracting that expectation removes the RJ part.
    mean_gap = float(np.mean(right_tail) - np.mean(left_tail))
    # Expected mean gap of the same tails for a pure Gaussian of the
    # fitted sigma (from the truncated-normal mean).
    alpha = _gaussian_quantile(1.0 - tail_fraction)
    phi = math.exp(-alpha * alpha / 2.0) / math.sqrt(2.0 * math.pi)
    truncated_mean = phi / tail_fraction  # E[X | X > alpha], standard
    expected_gap = 2.0 * truncated_mean * rj
    dj = max(0.0, mean_gap - expected_gap)
    return JitterDecomposition(rj_rms=rj, dj_pp=dj, n_crossings=n)


def _gaussian_quantile(p: float) -> float:
    """Standard normal quantile via erfcinv."""
    return -math.sqrt(2.0) * float(erfcinv(2.0 * p))


def decompose_jitter(wave: Waveform, bit_rate: float,
                     skip_ui: int = 8) -> JitterDecomposition:
    """Decompose the crossing jitter of a waveform's folded eye."""
    eye = EyeDiagram(wave, bit_rate, skip_ui=skip_ui)
    crossings_ui = eye.crossing_times_ui()
    return decompose_crossings(crossings_ui / bit_rate)


def decompose_jitter_batch(batch: WaveformBatch, bit_rate: float,
                           skip_ui: int = 8) -> List[JitterDecomposition]:
    """Per-scenario dual-Dirac decomposition, one batched eye fold.

    The crossing extraction runs vectorized across the whole batch
    (:meth:`~repro.analysis.eye.EyeDiagramBatch.crossing_times_ui`);
    entry ``i`` equals ``decompose_jitter(batch[i], ...)`` exactly.
    """
    try:
        eye = EyeDiagramBatch(batch, bit_rate, skip_ui=skip_ui)
    except ValueError:
        # Non-integer samples/UI: the batch cannot be folded as one,
        # but the serial path resamples — fall back per row to keep the
        # row-exactness contract.
        return [decompose_jitter(row, bit_rate, skip_ui=skip_ui)
                for row in batch.rows()]
    return [decompose_crossings(crossings_ui / bit_rate)
            for crossings_ui in eye.crossing_times_ui()]
