"""Measurement substrate: the oscilloscope/BERT/VNA the paper's
evaluation was read with.

Eye diagrams, BER/bathtub estimation, AC response measurement (analytic
and stimulus-based), receiver sensitivity/dynamic-range sweeps and
pulse-response ISI analysis.
"""

from .eye import (
    EyeMeasurement,
    EyeDiagram,
    EyeDiagramBatch,
    measure_eye_batch,
)
from .ber import (
    q_to_ber,
    ber_to_q,
    ser_to_ber,
    ber_from_q_factors,
    ber_from_measurement,
    ber_from_eye,
    ber_from_eye_batch,
    BathtubCurve,
    bathtub_from_waveform,
)
from .ac import (
    AcMeasurement,
    measure_tf,
    goertzel_amplitude,
    measure_gain_at,
    measure_frequency_response,
    measure_bandwidth_stimulus,
)
from .sensitivity import (
    SensitivityResult,
    eye_is_good,
    measure_sensitivity,
    measure_overload,
    measure_dynamic_range,
)
from .isi import (
    PulseResponse,
    pulse_response,
    pulse_response_batch,
    worst_case_eye_opening,
)
from .jitter_decomposition import (
    JitterDecomposition,
    decompose_jitter,
    decompose_jitter_batch,
    decompose_crossings,
)
from .mask import EyeMask, MaskResult, check_mask
from .spectrum import power_spectral_density, band_power, spectral_centroid
from .bert import BertResult, check_prbs

__all__ = [
    "EyeMeasurement",
    "EyeDiagram",
    "EyeDiagramBatch",
    "measure_eye_batch",
    "q_to_ber",
    "ber_to_q",
    "ser_to_ber",
    "ber_from_q_factors",
    "ber_from_measurement",
    "ber_from_eye",
    "ber_from_eye_batch",
    "BathtubCurve",
    "bathtub_from_waveform",
    "AcMeasurement",
    "measure_tf",
    "goertzel_amplitude",
    "measure_gain_at",
    "measure_frequency_response",
    "measure_bandwidth_stimulus",
    "SensitivityResult",
    "eye_is_good",
    "measure_sensitivity",
    "measure_overload",
    "measure_dynamic_range",
    "PulseResponse",
    "pulse_response",
    "pulse_response_batch",
    "worst_case_eye_opening",
    "JitterDecomposition",
    "decompose_jitter",
    "decompose_jitter_batch",
    "decompose_crossings",
    "EyeMask",
    "MaskResult",
    "check_mask",
    "power_spectral_density",
    "band_power",
    "spectral_centroid",
    "BertResult",
    "check_prbs",
]
