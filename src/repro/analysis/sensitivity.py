"""Input sensitivity and dynamic-range measurement.

The paper's receiver claims: "the input interface can operate at 10 Gb/s
with 40 dB input dynamic range and 4 mV input sensitivity."

Measurement definitions (the ones a lab would use):

* **sensitivity** — the smallest input peak-to-peak swing for which the
  receiver's output eye is still "good": open, with at least
  ``opening_fraction`` of the full limiting swing.
* **overload** — the largest input swing that still yields a good eye
  (a limiting receiver can be overdriven until slew/duty-cycle effects
  close the eye; the paper demonstrates 1.8 V pp operation).
* **dynamic range** — 20 log10(overload / sensitivity).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Optional

import numpy as np

from ..signals.nrz import NrzEncoder
from ..signals.prbs import prbs7
from ..signals.waveform import Waveform
from .eye import EyeDiagram, EyeMeasurement

__all__ = ["SensitivityResult", "eye_is_good", "measure_sensitivity",
           "measure_overload", "measure_dynamic_range"]

Receiver = Callable[[Waveform], Waveform]


@dataclasses.dataclass(frozen=True)
class SensitivityResult:
    """Outcome of a dynamic-range characterization."""

    sensitivity_vpp: float
    overload_vpp: float

    @property
    def dynamic_range_db(self) -> float:
        """20 log10(overload / sensitivity) — the paper's 40 dB figure."""
        if self.sensitivity_vpp <= 0:
            raise ValueError("sensitivity must be positive")
        return 20.0 * math.log10(self.overload_vpp / self.sensitivity_vpp)


def _stimulus(amplitude_vpp: float, bit_rate: float, n_bits: int,
              samples_per_bit: int, seed: int) -> Waveform:
    encoder = NrzEncoder(bit_rate=bit_rate, samples_per_bit=samples_per_bit,
                         amplitude=amplitude_vpp)
    return encoder.encode(prbs7(n_bits, seed=seed))


def eye_is_good(measurement: EyeMeasurement, full_swing: float,
                opening_fraction: float = 0.6,
                min_width_ui: float = 0.5) -> bool:
    """The pass/fail criterion for a receiver output eye.

    Open, at least ``opening_fraction`` of the limiting swing tall, and
    at least ``min_width_ui`` wide.
    """
    if full_swing <= 0:
        raise ValueError(f"full_swing must be positive, got {full_swing}")
    return (measurement.is_open
            and measurement.eye_height >= opening_fraction * full_swing
            and measurement.eye_width_ui >= min_width_ui)


def _eye_at(receiver: Receiver, amplitude_vpp: float, bit_rate: float,
            n_bits: int, samples_per_bit: int, seed: int) -> EyeMeasurement:
    stimulus = _stimulus(amplitude_vpp, bit_rate, n_bits, samples_per_bit,
                         seed)
    output = receiver(stimulus)
    return EyeDiagram.measure_waveform(output, bit_rate)


def measure_sensitivity(receiver: Receiver, full_swing: float,
                        bit_rate: float = 10e9, n_bits: int = 260,
                        samples_per_bit: int = 16,
                        opening_fraction: float = 0.6,
                        v_min: float = 1e-4, v_max: float = 0.1,
                        n_iterations: int = 14, seed: int = 1,
                        noise_rms: float = 0.0) -> float:
    """Smallest input pp swing giving a good output eye (bisection).

    ``noise_rms`` adds input-referred receiver noise to the stimulus,
    making the sensitivity physical rather than purely gain-limited.
    """
    from ..signals.noise import add_awgn

    def good(amplitude: float) -> bool:
        stimulus = _stimulus(amplitude, bit_rate, n_bits, samples_per_bit,
                             seed)
        if noise_rms > 0:
            stimulus = add_awgn(stimulus, noise_rms, seed=seed + 7)
        output = receiver(stimulus)
        measurement = EyeDiagram.measure_waveform(output, bit_rate)
        return eye_is_good(measurement, full_swing, opening_fraction)

    if good(v_min):
        return v_min
    if not good(v_max):
        raise ValueError(
            f"receiver never produces a good eye up to {v_max} Vpp"
        )
    lo, hi = v_min, v_max
    for _ in range(n_iterations):
        mid = math.sqrt(lo * hi)
        if good(mid):
            hi = mid
        else:
            lo = mid
    return hi


def measure_overload(receiver: Receiver, full_swing: float,
                     bit_rate: float = 10e9, n_bits: int = 260,
                     samples_per_bit: int = 16,
                     opening_fraction: float = 0.6,
                     v_max: float = 2.0, seed: int = 1) -> float:
    """Largest input pp swing still giving a good eye.

    Scans upward from 100 mV in 1 dB steps to ``v_max``; the paper
    demonstrates clean operation at 1.8 V pp input (Fig 14(b)).
    """
    amplitudes = 0.1 * 10.0 ** (np.arange(0, 1 + 20 *
                                          math.log10(v_max / 0.1)) / 20.0)
    best: Optional[float] = None
    for amplitude in amplitudes:
        measurement = _eye_at(receiver, float(amplitude), bit_rate, n_bits,
                              samples_per_bit, seed)
        if eye_is_good(measurement, full_swing, opening_fraction):
            best = float(amplitude)
    if best is None:
        raise ValueError("receiver produces no good eye at any amplitude")
    return min(best, v_max)


def measure_dynamic_range(receiver: Receiver, full_swing: float,
                          bit_rate: float = 10e9,
                          noise_rms: float = 0.0,
                          **kwargs) -> SensitivityResult:
    """Full characterization: sensitivity + overload + dynamic range."""
    sensitivity = measure_sensitivity(receiver, full_swing,
                                      bit_rate=bit_rate,
                                      noise_rms=noise_rms, **kwargs)
    overload = measure_overload(receiver, full_swing, bit_rate=bit_rate)
    return SensitivityResult(sensitivity_vpp=sensitivity,
                             overload_vpp=overload)
