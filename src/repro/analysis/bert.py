"""Bit-error-rate tester (BERT) with self-synchronizing PRBS checking.

The lab instrument behind every BER number: a pattern checker that
locks onto a received PRBS stream without a reference copy.  A
maximal-length sequence obeys the linear recurrence of its generator
polynomial — for the x^a + x^b + 1 family used here,

    out[n] = out[n - a] XOR out[n - b]

so each received bit is predicted from the received history itself.
This is the classic *self-synchronizing* checker: no alignment search,
instant lock, with the well-known error-multiplication property (an
isolated channel error mismatches at its own position and again when it
feeds the two taps — 3 counted errors per true error), which
:attr:`BertResult.estimated_true_errors` compensates.

The multiplication factor is only 3 in the middle of the stream: an
error in the last ``order`` bits has not yet fed both taps when the
stream ends, and an error in the first ``order`` bits is never itself
predicted — both produce fewer than 3 mismatches, so dividing the raw
count by 3 under-estimates edge errors.  :func:`check_prbs` therefore
clusters mismatches into error events (all mismatches of one isolated
error span at most ``order`` positions) and estimates
``ceil(cluster_size / 3)`` true errors per cluster, which is exact for
any isolated error — first bit, last bit or anywhere between.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from ..signals.prbs import _STANDARD_TAPS

__all__ = ["BertResult", "check_prbs"]

#: Error-multiplication factor of a two-tap self-sync checker.
_MULTIPLICATION = 3


@dataclasses.dataclass(frozen=True)
class BertResult:
    """Outcome of a BERT run."""

    bits_checked: int
    raw_mismatches: int
    error_events: Optional[int] = None
    """Mismatch clusters counted by :func:`check_prbs` (edge-exact
    error estimate); ``None`` for results built from raw counts only."""

    @property
    def estimated_true_errors(self) -> float:
        """Channel errors after removing self-sync multiplication.

        Uses the clustered :attr:`error_events` count when available —
        exact for isolated errors anywhere in the stream, including the
        first/last ``order`` bits where fewer than 3 mismatches appear —
        and falls back to ``raw_mismatches / 3`` otherwise.
        """
        if self.error_events is not None:
            return float(self.error_events)
        return self.raw_mismatches / _MULTIPLICATION

    @property
    def ber(self) -> float:
        """Estimated channel bit-error ratio."""
        if self.bits_checked == 0:
            return 0.0
        return self.estimated_true_errors / self.bits_checked

    @property
    def error_free(self) -> bool:
        """True when not a single mismatch was observed."""
        return self.raw_mismatches == 0

    def ber_upper_bound(self, confidence: float = 0.95) -> float:
        """Upper confidence bound on the true BER.

        For zero observed errors the standard rule of thumb
        ``-ln(1 - confidence) / n`` applies (e.g. BER < 3/n at 95 %);
        with errors, a Gaussian-approximation bound is used.
        """
        if not 0.0 < confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        if self.bits_checked == 0:
            return 1.0
        if self.raw_mismatches == 0:
            return -float(np.log(1.0 - confidence)) / self.bits_checked
        p = min(1.0, max(self.ber, 1.0 / self.bits_checked))
        sigma = float(np.sqrt(p * (1.0 - p) / self.bits_checked))
        from scipy.special import erfinv

        z = float(np.sqrt(2.0) * erfinv(2.0 * confidence - 1.0))
        return min(1.0, p + z * sigma)


def check_prbs(received_bits: np.ndarray, order: int = 7) -> BertResult:
    """Self-synchronizing PRBS error check.

    Predicts every bit past the first ``order`` from the received
    history via the generator recurrence and counts mismatches.  Works
    from any starting phase of the sequence — the recurrence holds at
    every offset.
    """
    if order not in _STANDARD_TAPS:
        raise ValueError(
            f"unsupported PRBS order {order}; "
            f"supported: {sorted(_STANDARD_TAPS)}"
        )
    bits = np.asarray(received_bits).astype(np.int8)
    if bits.size < 2 * order:
        raise ValueError(
            f"need at least {2 * order} bits to check, got {bits.size}"
        )
    if not np.all((bits == 0) | (bits == 1)):
        raise ValueError("received bits must be 0/1")
    tap_a, tap_b = _STANDARD_TAPS[order]
    predicted = bits[order - tap_a: bits.size - tap_a] \
        ^ bits[order - tap_b: bits.size - tap_b]
    actual = bits[order:]
    positions = np.flatnonzero(predicted != actual)
    return BertResult(bits_checked=int(actual.size),
                      raw_mismatches=int(positions.size),
                      error_events=_count_error_events(positions, order))


def _count_error_events(mismatch_positions: np.ndarray, order: int) -> int:
    """Cluster mismatch positions into error events.

    An isolated channel error at stream position ``p`` mismatches at
    ``p`` and at ``p + tap_b``/``p + tap_a`` (where it feeds the taps);
    whichever of those fall inside the checked span lie within ``order``
    (= ``tap_a``) positions of each other.  Splitting the sorted
    mismatch positions wherever the gap exceeds ``order`` therefore
    groups each isolated error's 1-3 mismatches — 1 or 2 at the stream
    head/tail, 3 mid-stream — into one cluster, and a cluster of ``m``
    mismatches holds at least ``ceil(m / 3)`` true errors (dense bursts
    merge clusters; the estimate degrades gracefully to ``m / 3``).
    """
    if mismatch_positions.size == 0:
        return 0
    splits = np.flatnonzero(np.diff(mismatch_positions) > order)
    sizes = np.diff(np.concatenate(
        ([0], splits + 1, [mismatch_positions.size])))
    return int(sum(math.ceil(int(size) / _MULTIPLICATION)
                   for size in sizes))
