"""Bit-error-rate tester (BERT) with self-synchronizing PRBS checking.

The lab instrument behind every BER number: a pattern checker that
locks onto a received PRBS stream without a reference copy.  A
maximal-length sequence obeys the linear recurrence of its generator
polynomial — for the x^a + x^b + 1 family used here,

    out[n] = out[n - a] XOR out[n - b]

so each received bit is predicted from the received history itself.
This is the classic *self-synchronizing* checker: no alignment search,
instant lock, with the well-known error-multiplication property (an
isolated channel error mismatches at its own position and again when it
feeds the two taps — 3 counted errors per true error), which
:attr:`BertResult.estimated_true_errors` compensates.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..signals.prbs import _STANDARD_TAPS

__all__ = ["BertResult", "check_prbs"]

#: Error-multiplication factor of a two-tap self-sync checker.
_MULTIPLICATION = 3


@dataclasses.dataclass(frozen=True)
class BertResult:
    """Outcome of a BERT run."""

    bits_checked: int
    raw_mismatches: int

    @property
    def estimated_true_errors(self) -> float:
        """Channel errors after removing self-sync multiplication."""
        return self.raw_mismatches / _MULTIPLICATION

    @property
    def ber(self) -> float:
        """Estimated channel bit-error ratio."""
        if self.bits_checked == 0:
            return 0.0
        return self.estimated_true_errors / self.bits_checked

    @property
    def error_free(self) -> bool:
        """True when not a single mismatch was observed."""
        return self.raw_mismatches == 0

    def ber_upper_bound(self, confidence: float = 0.95) -> float:
        """Upper confidence bound on the true BER.

        For zero observed errors the standard rule of thumb
        ``-ln(1 - confidence) / n`` applies (e.g. BER < 3/n at 95 %);
        with errors, a Gaussian-approximation bound is used.
        """
        if not 0.0 < confidence < 1.0:
            raise ValueError(
                f"confidence must be in (0, 1), got {confidence}"
            )
        if self.bits_checked == 0:
            return 1.0
        if self.raw_mismatches == 0:
            return -float(np.log(1.0 - confidence)) / self.bits_checked
        p = min(1.0, max(self.ber, 1.0 / self.bits_checked))
        sigma = float(np.sqrt(p * (1.0 - p) / self.bits_checked))
        from scipy.special import erfinv

        z = float(np.sqrt(2.0) * erfinv(2.0 * confidence - 1.0))
        return min(1.0, p + z * sigma)


def check_prbs(received_bits: np.ndarray, order: int = 7) -> BertResult:
    """Self-synchronizing PRBS error check.

    Predicts every bit past the first ``order`` from the received
    history via the generator recurrence and counts mismatches.  Works
    from any starting phase of the sequence — the recurrence holds at
    every offset.
    """
    if order not in _STANDARD_TAPS:
        raise ValueError(
            f"unsupported PRBS order {order}; "
            f"supported: {sorted(_STANDARD_TAPS)}"
        )
    bits = np.asarray(received_bits).astype(np.int8)
    if bits.size < 2 * order:
        raise ValueError(
            f"need at least {2 * order} bits to check, got {bits.size}"
        )
    if not np.all((bits == 0) | (bits == 1)):
        raise ValueError("received bits must be 0/1")
    tap_a, tap_b = _STANDARD_TAPS[order]
    predicted = bits[order - tap_a: bits.size - tap_a] \
        ^ bits[order - tap_b: bits.size - tap_b]
    actual = bits[order:]
    mismatches = int(np.sum(predicted != actual))
    return BertResult(bits_checked=int(actual.size),
                      raw_mismatches=mismatches)
