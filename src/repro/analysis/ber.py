"""Bit-error-ratio estimation and bathtub curves.

An eye diagram with Gaussian level/jitter statistics maps onto a BER
through the Q-factor formalism (Personick): sampling a one/zero of means
``mu1/mu0`` and sigmas ``s1/s0`` against threshold mid-way gives

    BER = 0.5 * erfc(Q / sqrt(2)),   Q = (mu1 - mu0) / (s1 + s0)

Multi-level signaling generalizes the same formalism per sub-eye: each
of the ``L - 1`` decision thresholds is adjacent to two of the ``L``
equiprobable levels, so the symbol-error ratio is

    SER = (2 / L) * sum_e 0.5 * erfc(Q_e / sqrt(2))

over the per-sub-eye Q-factors, and under Gray coding a symbol error
corrupts (almost always) exactly one of ``log2(L)`` bits:

    BER = SER / log2(L)

For NRZ (L = 2, one eye, one bit per symbol) this reduces exactly to
the binary formula.

The horizontal equivalent — BER versus sampling-phase offset, with the
two crossing distributions encroaching from either side — is the
*bathtub curve* used to specify timing margin at a target BER.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Sequence

import numpy as np
from scipy.special import erfc, erfcinv

from .eye import EyeDiagram, EyeMeasurement, measure_eye_batch
from ..signals.batch import WaveformBatch
from ..signals.modulation import Modulation, Nrz
from ..signals.waveform import Waveform

__all__ = ["q_to_ber", "ber_to_q", "ser_to_ber", "ber_from_q_factors",
           "ber_from_measurement", "ber_from_eye", "ber_from_eye_batch",
           "BathtubCurve", "bathtub_from_waveform"]


def q_to_ber(q: float) -> float:
    """BER of a Gaussian decision problem with quality factor ``q``."""
    if q < 0:
        raise ValueError(f"Q must be >= 0, got {q}")
    return float(0.5 * erfc(q / math.sqrt(2.0)))


def ber_to_q(ber: float) -> float:
    """Inverse of :func:`q_to_ber`."""
    if not 0 < ber < 0.5:
        raise ValueError(f"BER must be in (0, 0.5), got {ber}")
    return float(math.sqrt(2.0) * erfcinv(2.0 * ber))


def ser_to_ber(ser: float, modulation: Optional[Modulation] = None) -> float:
    """Symbol-error ratio -> bit-error ratio under Gray coding.

    Adjacent-level slicer errors dominate, and Gray coding makes each
    of them a single-bit error among ``bits_per_symbol`` bits.
    """
    modulation = Nrz() if modulation is None else modulation
    if ser < 0:
        raise ValueError(f"SER must be >= 0, got {ser}")
    return float(ser) / modulation.bits_per_symbol


def ber_from_q_factors(q_factors: Sequence[float],
                       modulation: Optional[Modulation] = None) -> float:
    """Combined BER from per-sub-eye Q-factors.

    Each of the ``L - 1`` thresholds is crossed by the Gaussian tails of
    the two adjacent levels, each level carrying probability ``1/L``, so
    ``SER = (2/L) * sum_e 0.5*erfc(Q_e/sqrt(2))``; Gray coding then
    divides by ``bits_per_symbol``.  Reduces exactly to
    :func:`q_to_ber` of the single Q for NRZ.  Non-finite Q-factors
    (noise-free eyes) contribute zero errors.
    """
    modulation = Nrz() if modulation is None else modulation
    if len(q_factors) != modulation.n_eyes:
        raise ValueError(
            f"expected {modulation.n_eyes} Q-factors for "
            f"{modulation.name}, got {len(q_factors)}"
        )
    total = 0.0
    for q in q_factors:
        if not math.isfinite(q):
            continue
        if q < 0:
            raise ValueError(f"Q must be >= 0, got {q}")
        total += float(0.5 * erfc(q / math.sqrt(2.0)))
    ser = (2.0 / modulation.n_levels) * total
    return ser / modulation.bits_per_symbol


def ber_from_measurement(measurement: EyeMeasurement,
                         modulation: Optional[Modulation] = None) -> float:
    """BER of an :class:`EyeMeasurement` (per-sub-eye when present)."""
    q_factors = (measurement.q_factors
                 if measurement.q_factors is not None
                 else (measurement.q_factor,))
    return ber_from_q_factors(q_factors, modulation)


def ber_from_eye(wave: Waveform, bit_rate: float, skip_ui: int = 8,
                 modulation: Optional[Modulation] = None) -> float:
    """Estimated BER of a waveform via its eye Q-factor(s)."""
    measurement = EyeDiagram.measure_waveform(wave, bit_rate, skip_ui=skip_ui,
                                              modulation=modulation)
    if not math.isfinite(measurement.q_factor):
        return 0.0
    return ber_from_measurement(measurement, modulation)


def ber_from_eye_batch(batch: WaveformBatch, bit_rate: float,
                       skip_ui: int = 8,
                       modulation: Optional[Modulation] = None) -> np.ndarray:
    """Per-scenario BER estimates of a batch via eye Q-factors.

    The eyes are folded and measured in one batched pass; the Q-to-BER
    map is evaluated vectorized.  Row ``i`` equals
    ``ber_from_eye(batch[i], ...)``.
    """
    modulation = Nrz() if modulation is None else modulation
    measurements = measure_eye_batch(batch, bit_rate, skip_ui=skip_ui,
                                     modulation=modulation)
    qs = np.array([m.q_factors if m.q_factors is not None
                   else (m.q_factor,) * modulation.n_eyes
                   for m in measurements])
    # Eye Q-factors are >= 0 and erfc(inf) == 0.0 exactly, matching the
    # serial path's "infinite Q means zero BER" convention.
    per_eye = 0.5 * erfc(qs / math.sqrt(2.0))
    if modulation.n_levels == 2:
        # Binary fast path: (2/L) == 1 and one bit per symbol — keep the
        # historical expression (and its exact float results).
        return per_eye[:, 0]
    ser = (2.0 / modulation.n_levels) * per_eye.sum(axis=1)
    return ser / modulation.bits_per_symbol


@dataclasses.dataclass(frozen=True)
class BathtubCurve:
    """BER versus sampling phase across one UI.

    Built from the left/right crossing-jitter statistics: each crossing
    is modeled as a Gaussian in time, and the BER at a sampling phase is
    the probability mass of either crossing distribution reaching it.
    """

    phases_ui: np.ndarray
    ber: np.ndarray

    def __post_init__(self) -> None:
        if len(self.phases_ui) != len(self.ber):
            raise ValueError("phase and BER arrays must have equal length")

    def eye_opening_at(self, target_ber: float) -> float:
        """Horizontal opening (UI) where BER stays below ``target_ber``.

        Zero when no phase meets the target.
        """
        if not 0 < target_ber < 0.5:
            raise ValueError(
                f"target_ber must be in (0, 0.5), got {target_ber}"
            )
        good = self.ber < target_ber
        if not np.any(good):
            return 0.0
        return float(np.sum(good) / len(self.ber))

    def minimum_ber(self) -> float:
        """Best achievable BER over all sampling phases."""
        return float(np.min(self.ber))

    def best_phase_ui(self) -> float:
        """Sampling phase with the lowest BER.

        The clipped BER floor can produce a flat minimum region; the
        centre of that region is the robust choice (as a CDR would
        pick).
        """
        minimum = np.min(self.ber)
        flat = np.flatnonzero(self.ber <= minimum * (1.0 + 1e-12))
        return float(self.phases_ui[flat[len(flat) // 2]])


def bathtub_from_waveform(wave: Waveform, bit_rate: float,
                          skip_ui: int = 8,
                          n_phases: int = 101) -> BathtubCurve:
    """Construct a bathtub curve from a simulated waveform.

    Dual-Dirac/Gaussian tail fit: the folded crossing cluster is split
    at its median into a left and a right sub-population (the two Dirac
    positions of the dual-Dirac jitter model), a Gaussian tail is
    fitted to each side, and the BER at every sampling phase is the sum
    of the two encroaching tail probabilities (with the 0.5 transition
    density factor, matching jitter-analyzer convention).

    A side with fewer than 2 finite crossings carries no spread
    estimate of its own; it falls back to the pooled cluster statistics
    instead of silently extrapolating a NaN/inf tail — near-closed eyes
    always yield a finite curve.
    """
    if n_phases < 11:
        raise ValueError(f"n_phases must be >= 11, got {n_phases}")
    eye = EyeDiagram(wave, bit_rate, skip_ui=skip_ui)
    crossings = eye.crossing_times_ui()
    crossings = crossings[np.isfinite(crossings)]
    if crossings.size < 4:
        raise ValueError("too few crossings for a bathtub curve")

    center = float(np.median(crossings))
    pooled_sigma = max(float(np.std(crossings)), 1e-6)

    def fit_side(side: np.ndarray) -> "tuple[float, float]":
        if side.size < 2:
            return center, pooled_sigma
        return float(np.mean(side)), max(float(np.std(side)), 1e-6)

    mu_left, sigma_left = fit_side(crossings[crossings <= center])
    mu_right, sigma_right = fit_side(crossings[crossings > center])

    phases = np.linspace(0.0, 1.0, n_phases)

    def tail(x: np.ndarray, sigma: float) -> np.ndarray:
        return 0.5 * erfc(x / (sigma * math.sqrt(2.0)))

    def wrapped(x: np.ndarray) -> np.ndarray:
        # Signed circular distance in [-0.5, 0.5): crossings repeat at
        # mu + k for every integer k, and a phase on the wrong side of
        # a Dirac must see a *negative* distance (erfc -> 1, BER
        # saturating), not the repetition one UI away.
        return np.mod(x + 0.5, 1.0) - 0.5

    # The right Dirac's right-going tail threatens the phases after it,
    # the left Dirac's left-going tail the phases before it, so a
    # cluster sitting at either side of the 0/1 UI seam produces the
    # same curve and phases inside the cluster saturate near BER 0.5.
    ber = np.clip(
        0.5 * tail(wrapped(phases - mu_right), sigma_right)
        + 0.5 * tail(wrapped(mu_left - phases), sigma_left),
        1e-30, 0.5)
    return BathtubCurve(phases_ui=phases, ber=ber)
