"""Eye-diagram construction and measurement.

The sampling-oscilloscope substitute: fold a waveform at the unit
interval, locate the optimum sampling phase, and extract the metrics the
paper's Figs 14-16 are read by eye — vertical opening (eye height),
horizontal opening (eye width), crossing jitter and the Q-factor that
connects the eye to a bit-error ratio.

Multi-level signals (:class:`~repro.signals.modulation.Modulation`) fold
into ``L - 1`` stacked sub-eyes; every vertical metric is then computed
per sub-eye and the scalar fields of :class:`EyeMeasurement` report the
*worst* sub-eye (the one that limits the link), with the per-eye values
kept alongside.  For the default two-level NRZ the decision threshold is
exactly 0 V (differential signaling) and everything reduces to the
classic single-eye measurement, bit for bit.  For ``L > 2`` thresholds
are estimated from the folded traces themselves (min/max swing fit plus
one Lloyd refinement of the level clusters), since the received swing is
generally unknown after a lossy channel.

All horizontal quantities can be read in seconds or unit intervals (UI).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..signals.batch import WaveformBatch
from ..signals.modulation import Modulation, Nrz
from ..signals.waveform import Waveform

__all__ = ["EyeMeasurement", "EyeDiagram", "EyeDiagramBatch",
           "measure_eye_batch"]


def _center_crossings_ui(crossings: np.ndarray) -> np.ndarray:
    """Center a modulo-1 crossing cluster on its circular mean.

    Crossing positions live on the UI circle: a cluster straddling the
    0/1 boundary (e.g. crossings at 0.02 and 0.98 UI) wraps, and any
    linear statistic of the raw values — in particular the median, whose
    value lands mid-range for a balanced straddling cluster — fails to
    detect it, reporting ~1 UI of peak-to-peak jitter for a clean eye.
    The circular mean has no such failure mode: it always points at the
    cluster, so shifting the wrap seam half a UI away from it unwraps
    every cluster correctly.
    """
    angles = 2.0 * np.pi * crossings
    center = np.arctan2(np.mean(np.sin(angles)),
                        np.mean(np.cos(angles))) / (2.0 * np.pi)
    center = np.mod(center, 1.0)
    return np.mod(crossings - center + 0.5, 1.0) - 0.5 + center


def _estimate_thresholds(traces: np.ndarray,
                         modulation: Modulation) -> np.ndarray:
    """Estimate per-sub-eye decision thresholds from folded traces.

    Nominal thresholds from the observed min/max swing, then one Lloyd
    refinement: slice, take the mean of each level cluster, re-midpoint.
    Only used for ``L > 2`` — the NRZ threshold is exactly 0 V and is
    never estimated (that keeps the binary path bit-exact).
    """
    flat = traces.reshape(-1)
    lo = float(flat.min())
    hi = float(flat.max())
    swing = hi - lo
    if swing <= 0:
        return np.zeros(modulation.n_eyes)
    center = 0.5 * (lo + hi)
    nominal_levels = center + modulation.level_values(swing)
    thresholds = center + modulation.threshold_values(swing)
    counts = np.searchsorted(thresholds, flat, side="left")
    means = np.array([
        float(flat[counts == i].mean()) if np.any(counts == i)
        else float(nominal_levels[i])
        for i in range(modulation.n_levels)
    ])
    return (means[:-1] + means[1:]) / 2.0


@dataclasses.dataclass(frozen=True)
class EyeMeasurement:
    """The numbers a scope's eye-mask panel reports.

    All voltages in volts, times in seconds unless suffixed ``_ui``.
    For multi-level signals the scalar fields report the *worst* of the
    ``L - 1`` sub-eyes (index :attr:`worst_eye`) and the per-eye values
    are kept in the ``*_by_eye``-style tuples; ``level_one`` /
    ``level_zero`` are the outermost level means and :attr:`levels`
    holds all of them.  For NRZ (the default) there is a single eye and
    the scalars are the classic measurement.
    """

    eye_height: float
    eye_width_ui: float
    eye_amplitude: float
    level_one: float
    level_zero: float
    jitter_rms: float
    jitter_pp: float
    q_factor: float
    sampling_phase_ui: float
    n_ui: int
    n_levels: int = 2
    worst_eye: int = 0
    eye_heights: Optional[Tuple[float, ...]] = None
    eye_widths_ui: Optional[Tuple[float, ...]] = None
    eye_jitter_rms_ui: Optional[Tuple[float, ...]] = None
    eye_jitter_pp_ui: Optional[Tuple[float, ...]] = None
    q_factors: Optional[Tuple[float, ...]] = None
    levels: Optional[Tuple[float, ...]] = None

    @property
    def n_eyes(self) -> int:
        """Number of vertical sub-eyes (1 for NRZ, 3 for PAM4)."""
        return self.n_levels - 1

    @property
    def eye_opening_fraction(self) -> float:
        """Vertical opening relative to the eye amplitude (0..1)."""
        if self.eye_amplitude <= 0:
            return 0.0
        return max(0.0, self.eye_height) / self.eye_amplitude

    @property
    def is_open(self) -> bool:
        """True when both height and width are positive (every sub-eye:
        the scalars are the worst one)."""
        return self.eye_height > 0 and self.eye_width_ui > 0


class EyeDiagram:
    """A waveform folded at the unit interval.

    Parameters
    ----------
    wave:
        The waveform to fold.  Its sample rate must be an integer
        multiple of ``bit_rate`` (the encoder guarantees this); other
        rates are resampled automatically.
    bit_rate:
        The symbol (UI) rate defining the unit interval.
    skip_ui:
        Unit intervals dropped from the start (filter settling).  The
        default drops 8 UI.
    modulation:
        Level alphabet of the signal; ``None`` means two-level NRZ.
    """

    def __init__(self, wave: Waveform, bit_rate: float, skip_ui: int = 8,
                 modulation: Optional[Modulation] = None):
        if bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {bit_rate}")
        if skip_ui < 0:
            raise ValueError(f"skip_ui must be >= 0, got {skip_ui}")
        samples_per_ui = wave.sample_rate / bit_rate
        if abs(samples_per_ui - round(samples_per_ui)) > 1e-6:
            target = bit_rate * max(8, int(math.ceil(samples_per_ui)))
            wave = wave.resampled(target)
            samples_per_ui = wave.sample_rate / bit_rate
        self.samples_per_ui = int(round(samples_per_ui))
        if self.samples_per_ui < 4:
            raise ValueError(
                "need at least 4 samples per UI for eye analysis, got "
                f"{self.samples_per_ui}"
            )
        self.bit_rate = bit_rate
        self.unit_interval = 1.0 / bit_rate
        self.modulation = Nrz() if modulation is None else modulation

        data = wave.data[skip_ui * self.samples_per_ui:]
        n_ui = len(data) // self.samples_per_ui
        if n_ui < 8:
            raise ValueError(
                f"waveform too short for an eye: {n_ui} UI after skipping"
            )
        self.traces = data[: n_ui * self.samples_per_ui].reshape(
            n_ui, self.samples_per_ui
        )
        self.n_ui = n_ui
        self._thresholds: Optional[np.ndarray] = None

    # -- folded views ---------------------------------------------------------
    def two_ui_traces(self) -> np.ndarray:
        """Traces spanning two UI (the customary scope display window)."""
        flat = self.traces.reshape(-1)
        n_pairs = self.n_ui - 1
        window = 2 * self.samples_per_ui
        return np.stack([flat[i * self.samples_per_ui:
                              i * self.samples_per_ui + window]
                         for i in range(n_pairs)])

    def phase_axis_ui(self) -> np.ndarray:
        """Phase positions (0..1) of the samples within a UI."""
        return (np.arange(self.samples_per_ui) + 0.5) / self.samples_per_ui

    # -- vertical measurements --------------------------------------------
    def decision_thresholds(self) -> np.ndarray:
        """Per-sub-eye decision thresholds, in volts.

        Exactly ``[0.0]`` for two-level signaling (differential NRZ
        slices at zero by construction); estimated from the traces for
        ``L > 2`` (see :func:`_estimate_thresholds`).
        """
        if self._thresholds is None:
            if self.modulation.n_levels == 2:
                self._thresholds = np.zeros(1)
            else:
                self._thresholds = _estimate_thresholds(self.traces,
                                                        self.modulation)
        return self._thresholds

    def _level_clusters(self, phase_index: int) -> List[np.ndarray]:
        """Samples at a phase, split into per-level clusters (lowest
        level first).  For NRZ this is the classic zero/one split."""
        column = self.traces[:, phase_index]
        counts = np.searchsorted(self.decision_thresholds(), column,
                                 side="left")
        return [column[counts == i]
                for i in range(self.modulation.n_levels)]

    def eye_heights_at(self, phase_index: int) -> np.ndarray:
        """Per-sub-eye vertical opening at a sampling phase.

        Sub-eye ``e`` opens between level clusters ``e`` and ``e + 1``:
        ``min(upper cluster) - max(lower cluster)`` — negative when that
        sub-eye is closed, ``-inf`` when a cluster is empty.
        """
        clusters = self._level_clusters(phase_index)
        heights = np.empty(self.modulation.n_eyes)
        for e in range(self.modulation.n_eyes):
            upper, lower = clusters[e + 1], clusters[e]
            if upper.size == 0 or lower.size == 0:
                heights[e] = -float("inf")
            else:
                heights[e] = float(upper.min() - lower.max())
        return heights

    def eye_height_at(self, phase_index: int) -> float:
        """Worst-sub-eye vertical opening at a sampling phase."""
        return float(np.min(self.eye_heights_at(phase_index)))

    def best_phase_index(self) -> int:
        """The sampling phase maximizing the (worst-sub-eye) opening."""
        heights = [self.eye_height_at(i) for i in range(self.samples_per_ui)]
        return int(np.argmax(heights))

    # -- horizontal measurements ----------------------------------------------
    def _eye_index(self, eye: Optional[int]) -> int:
        if eye is None:
            return self.modulation.center_threshold_index
        if not 0 <= eye < self.modulation.n_eyes:
            raise ValueError(
                f"eye must be in 0..{self.modulation.n_eyes - 1}, got {eye}"
            )
        return int(eye)

    def crossing_times_ui(self, eye: Optional[int] = None) -> np.ndarray:
        """Threshold-crossing positions of all edges, in UI modulo 1.

        Linear interpolation between the bracketing samples; the
        distribution's spread is the crossing jitter.  ``eye`` selects
        the sub-eye threshold; the default is the middle eye (the zero
        crossing for NRZ — the edge the bang-bang CDR locks to).
        """
        threshold = float(self.decision_thresholds()[self._eye_index(eye)])
        flat = self.traces.reshape(-1)
        if threshold != 0.0:
            flat = flat - threshold
        sign = np.sign(flat)
        sign[sign == 0] = 1
        idx = np.flatnonzero(np.diff(sign) != 0)
        if idx.size == 0:
            return np.array([])
        v0 = flat[idx]
        v1 = flat[idx + 1]
        frac = v0 / (v0 - v1)
        times = (idx + frac) / self.samples_per_ui
        crossings = np.mod(times, 1.0)
        # Center the cluster: crossings near 0/1 wrap; shift the wrap
        # seam half a UI away from the circular mean before measuring
        # spread (a straddling cluster defeats linear centering).
        return _center_crossings_ui(crossings)

    def jitter_rms_ui(self, eye: Optional[int] = None) -> float:
        """RMS crossing jitter in UI (middle sub-eye by default)."""
        times = self.crossing_times_ui(eye)
        if times.size < 2:
            return 0.0
        return float(np.std(times))

    def jitter_pp_ui(self, eye: Optional[int] = None) -> float:
        """Peak-to-peak crossing jitter in UI (middle eye by default)."""
        times = self.crossing_times_ui(eye)
        if times.size < 2:
            return 0.0
        return float(np.ptp(times))

    def eye_width_ui(self, eye: Optional[int] = None) -> float:
        """Horizontal opening: 1 UI minus the peak-to-peak jitter."""
        return max(0.0, 1.0 - self.jitter_pp_ui(eye))

    # -- composite measurement ------------------------------------------------
    def measure(self) -> EyeMeasurement:
        """Full scope-style measurement at the optimum sampling phase."""
        return self.measure_at(self.best_phase_index())

    def measure_at(self, phase: int) -> EyeMeasurement:
        """Scope-style measurement at a given sampling-phase index."""
        clusters = self._level_clusters(phase)
        n_levels = self.modulation.n_levels
        n_eyes = self.modulation.n_eyes
        if any(cluster.size == 0 for cluster in clusters):
            # Degenerate signal (some level never observed at this
            # phase): report a closed eye.
            level = float(self.traces.mean())
            return EyeMeasurement(
                eye_height=-float("inf"), eye_width_ui=0.0,
                eye_amplitude=0.0, level_one=level, level_zero=level,
                jitter_rms=0.0, jitter_pp=0.0, q_factor=0.0,
                sampling_phase_ui=phase / self.samples_per_ui,
                n_ui=self.n_ui, n_levels=n_levels,
            )
        means = [float(cluster.mean()) for cluster in clusters]
        sigmas = [float(cluster.std()) for cluster in clusters]
        level_one = means[-1]
        level_zero = means[0]
        amplitude = level_one - level_zero
        q_factors = []
        for e in range(n_eyes):
            separation = means[e + 1] - means[e]
            denominator = sigmas[e + 1] + sigmas[e]
            q_factors.append(separation / denominator
                             if denominator > 0 else float("inf"))
        heights = self.eye_heights_at(phase)
        # One pass over each crossing distribution for all horizontal
        # metrics (it is the costly part of a measurement).
        jitter_rms_by_eye = []
        jitter_pp_by_eye = []
        for e in range(n_eyes):
            times = self.crossing_times_ui(eye=e)
            jitter_rms_by_eye.append(float(np.std(times))
                                     if times.size >= 2 else 0.0)
            jitter_pp_by_eye.append(float(np.ptp(times))
                                    if times.size >= 2 else 0.0)
        widths = [max(0.0, 1.0 - pp) for pp in jitter_pp_by_eye]
        worst_eye = int(np.argmin(heights))
        worst_jitter_rms = max(jitter_rms_by_eye)
        worst_jitter_pp = max(jitter_pp_by_eye)
        return EyeMeasurement(
            eye_height=float(np.min(heights)),
            eye_width_ui=min(widths),
            eye_amplitude=amplitude,
            level_one=level_one,
            level_zero=level_zero,
            jitter_rms=worst_jitter_rms * self.unit_interval,
            jitter_pp=worst_jitter_pp * self.unit_interval,
            q_factor=min(q_factors),
            sampling_phase_ui=(phase + 0.5) / self.samples_per_ui,
            n_ui=self.n_ui,
            n_levels=n_levels,
            worst_eye=worst_eye,
            eye_heights=tuple(float(h) for h in heights),
            eye_widths_ui=tuple(widths),
            eye_jitter_rms_ui=tuple(jitter_rms_by_eye),
            eye_jitter_pp_ui=tuple(jitter_pp_by_eye),
            q_factors=tuple(q_factors),
            levels=tuple(means),
        )

    # -- convenience ----------------------------------------------------------
    @classmethod
    def measure_waveform(cls, wave: Waveform, bit_rate: float,
                         skip_ui: int = 8,
                         max_ui: Optional[int] = None,
                         modulation: Optional[Modulation] = None
                         ) -> EyeMeasurement:
        """One-call fold-and-measure."""
        eye = cls(wave, bit_rate, skip_ui=skip_ui, modulation=modulation)
        del max_ui  # reserved for future windowed measurement
        return eye.measure()

    @classmethod
    def _from_folded(cls, traces: np.ndarray, bit_rate: float,
                     modulation: Optional[Modulation] = None
                     ) -> "EyeDiagram":
        """Internal: wrap already-folded ``(n_ui, samples_per_ui)`` traces."""
        eye = cls.__new__(cls)
        eye.bit_rate = bit_rate
        eye.unit_interval = 1.0 / bit_rate
        eye.samples_per_ui = traces.shape[1]
        eye.traces = traces
        eye.n_ui = traces.shape[0]
        eye.modulation = Nrz() if modulation is None else modulation
        eye._thresholds = None
        return eye


class EyeDiagramBatch:
    """Every row of a :class:`WaveformBatch` folded at the unit interval.

    The fold and the per-phase vertical-opening search — the dominant
    cost of scope-style measurement — run vectorized across all
    scenarios at once; each row's :class:`EyeMeasurement` is then
    assembled through the same code path as the serial
    :class:`EyeDiagram`, so batched results match per-waveform
    measurements exactly.  Multi-level batches estimate decision
    thresholds per row from that row's own traces, matching what the
    serial path computes for the same waveform.

    The batch sample rate must be an integer multiple of ``bit_rate``
    (the encoder guarantees this; batches are never resampled).
    """

    def __init__(self, batch: WaveformBatch, bit_rate: float,
                 skip_ui: int = 8,
                 modulation: Optional[Modulation] = None):
        if bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {bit_rate}")
        if skip_ui < 0:
            raise ValueError(f"skip_ui must be >= 0, got {skip_ui}")
        samples_per_ui = batch.sample_rate / bit_rate
        if abs(samples_per_ui - round(samples_per_ui)) > 1e-6:
            raise ValueError(
                "batch sample rate must be an integer multiple of the bit "
                f"rate, got {samples_per_ui} samples/UI"
            )
        self.samples_per_ui = int(round(samples_per_ui))
        if self.samples_per_ui < 4:
            raise ValueError(
                "need at least 4 samples per UI for eye analysis, got "
                f"{self.samples_per_ui}"
            )
        self.bit_rate = bit_rate
        self.unit_interval = 1.0 / bit_rate
        self.modulation = Nrz() if modulation is None else modulation

        data = batch.data[:, skip_ui * self.samples_per_ui:]
        n_ui = data.shape[1] // self.samples_per_ui
        if n_ui < 8:
            raise ValueError(
                f"batch too short for an eye: {n_ui} UI after skipping"
            )
        self.traces = data[:, : n_ui * self.samples_per_ui].reshape(
            batch.n_scenarios, n_ui, self.samples_per_ui
        )
        self.n_ui = n_ui
        self.n_scenarios = batch.n_scenarios
        self._thresholds: Optional[np.ndarray] = None
        self._crossings: Dict[int, List[np.ndarray]] = {}
        self._jitter: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}

    def decision_thresholds(self) -> np.ndarray:
        """Per-row decision thresholds, shape ``(n_scenarios, L - 1)``.

        Exactly zero for two-level signaling; estimated per row from
        that row's folded traces for ``L > 2`` (identical to what the
        serial :class:`EyeDiagram` computes for the same waveform)."""
        if self._thresholds is None:
            if self.modulation.n_levels == 2:
                self._thresholds = np.zeros((self.n_scenarios, 1))
            else:
                self._thresholds = np.stack([
                    _estimate_thresholds(self.traces[i], self.modulation)
                    for i in range(self.n_scenarios)
                ])
        return self._thresholds

    def eye_heights(self) -> np.ndarray:
        """Worst-sub-eye vertical opening per (scenario, phase), shape
        ``(n_scenarios, samples_per_ui)`` — one vectorized pass."""
        if self.modulation.n_levels == 2:
            # Binary fast path: threshold exactly 0, single sub-eye.
            ones_mask = self.traces > 0
            ones_min = np.min(np.where(ones_mask, self.traces, np.inf),
                              axis=1)
            zeros_max = np.max(np.where(ones_mask, -np.inf, self.traces),
                               axis=1)
            valid = ones_mask.any(axis=1) & (~ones_mask).any(axis=1)
            return np.where(valid, ones_min - zeros_max, -np.inf)
        thresholds = self.decision_thresholds()
        counts = np.zeros(self.traces.shape, dtype=np.int8)
        for e in range(self.modulation.n_eyes):
            counts += self.traces > thresholds[:, e, None, None]
        worst: Optional[np.ndarray] = None
        for e in range(self.modulation.n_eyes):
            upper_mask = counts == e + 1
            lower_mask = counts == e
            upper_min = np.min(np.where(upper_mask, self.traces, np.inf),
                               axis=1)
            lower_max = np.max(np.where(lower_mask, self.traces, -np.inf),
                               axis=1)
            valid = upper_mask.any(axis=1) & lower_mask.any(axis=1)
            height = np.where(valid, upper_min - lower_max, -np.inf)
            worst = height if worst is None else np.minimum(worst, height)
        return worst

    def best_phase_indices(self) -> np.ndarray:
        """Per-scenario sampling phase maximizing the vertical opening."""
        return np.argmax(self.eye_heights(), axis=1)

    # -- horizontal measurements (vectorized extraction) -------------------
    def _eye_index(self, eye: Optional[int]) -> int:
        if eye is None:
            return self.modulation.center_threshold_index
        if not 0 <= eye < self.modulation.n_eyes:
            raise ValueError(
                f"eye must be in 0..{self.modulation.n_eyes - 1}, got {eye}"
            )
        return int(eye)

    def crossing_times_ui(self, eye: Optional[int] = None
                          ) -> List[np.ndarray]:
        """Per-scenario threshold-crossing positions in UI modulo 1.

        The extraction — sign changes, bracketing-sample interpolation —
        runs as one vectorized pass over the whole batch, cached across
        the horizontal-metric accessors; only the cheap per-row circular
        centering loops in Python.  Row ``i`` equals
        ``EyeDiagram.crossing_times_ui(eye)`` of that scenario exactly.
        ``eye`` selects the sub-eye threshold (middle eye by default).
        """
        e = self._eye_index(eye)
        if e in self._crossings:
            return self._crossings[e]
        flat = self.traces.reshape(self.n_scenarios, -1)
        thresholds = self.decision_thresholds()[:, e]
        if np.any(thresholds != 0.0):
            flat = flat - thresholds[:, None]
        sign = np.sign(flat)
        sign[sign == 0] = 1
        rows, cols = np.nonzero(np.diff(sign, axis=1) != 0)
        v0 = flat[rows, cols]
        v1 = flat[rows, cols + 1]
        frac = v0 / (v0 - v1)
        times = (cols + frac) / self.samples_per_ui
        crossings = np.mod(times, 1.0)
        counts = np.bincount(rows, minlength=self.n_scenarios)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        out: List[np.ndarray] = []
        for i in range(self.n_scenarios):
            chunk = crossings[offsets[i]:offsets[i + 1]]
            out.append(_center_crossings_ui(chunk) if chunk.size
                       else np.array([]))
        self._crossings[e] = out
        return out

    def _horizontal_metrics(self, eye: Optional[int] = None
                            ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row (RMS, peak-to-peak) crossing jitter from one cached
        extraction pass."""
        e = self._eye_index(eye)
        if e in self._jitter:
            return self._jitter[e]
        rms = np.zeros(self.n_scenarios)
        pp = np.zeros(self.n_scenarios)
        for i, times in enumerate(self.crossing_times_ui(e)):
            if times.size >= 2:
                rms[i] = float(np.std(times))
                pp[i] = float(np.ptp(times))
        self._jitter[e] = (rms, pp)
        return rms, pp

    def jitter_rms_ui(self, eye: Optional[int] = None) -> np.ndarray:
        """Per-row RMS crossing jitter in UI (middle eye by default)."""
        return self._horizontal_metrics(eye)[0]

    def jitter_pp_ui(self, eye: Optional[int] = None) -> np.ndarray:
        """Per-row peak-to-peak crossing jitter in UI."""
        return self._horizontal_metrics(eye)[1]

    def eye_width_ui(self, eye: Optional[int] = None) -> np.ndarray:
        """Per-row horizontal opening: 1 UI minus the p-p jitter."""
        return np.maximum(0.0, 1.0 - self._horizontal_metrics(eye)[1])

    def measure_all(self) -> List[EyeMeasurement]:
        """One :class:`EyeMeasurement` per scenario."""
        phases = self.best_phase_indices()
        return [
            EyeDiagram._from_folded(self.traces[row], self.bit_rate,
                                    self.modulation)
            .measure_at(int(phases[row]))
            for row in range(self.n_scenarios)
        ]


def measure_eye_batch(batch: WaveformBatch, bit_rate: float,
                      skip_ui: int = 8,
                      modulation: Optional[Modulation] = None
                      ) -> List[EyeMeasurement]:
    """One-call batched fold-and-measure: one measurement per scenario.

    Equivalent to ``[EyeDiagram.measure_waveform(row, bit_rate, skip_ui,
    modulation=modulation) for row in batch.rows()]`` but with the
    folding and phase search vectorized across the whole batch.
    """
    return EyeDiagramBatch(batch, bit_rate, skip_ui=skip_ui,
                           modulation=modulation).measure_all()
