"""Eye-diagram construction and measurement.

The sampling-oscilloscope substitute: fold a waveform at the unit
interval, locate the optimum sampling phase, and extract the metrics the
paper's Figs 14-16 are read by eye — vertical opening (eye height),
horizontal opening (eye width), crossing jitter and the Q-factor that
connects the eye to a bit-error ratio.

Conventions: waveforms are differential-mode, so the decision threshold
is 0 V; all horizontal quantities can be read in seconds or unit
intervals (UI).
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional

import numpy as np

from ..signals.batch import WaveformBatch
from ..signals.waveform import Waveform

__all__ = ["EyeMeasurement", "EyeDiagram", "EyeDiagramBatch",
           "measure_eye_batch"]


def _center_crossings_ui(crossings: np.ndarray) -> np.ndarray:
    """Center a modulo-1 crossing cluster on its circular mean.

    Crossing positions live on the UI circle: a cluster straddling the
    0/1 boundary (e.g. crossings at 0.02 and 0.98 UI) wraps, and any
    linear statistic of the raw values — in particular the median, whose
    value lands mid-range for a balanced straddling cluster — fails to
    detect it, reporting ~1 UI of peak-to-peak jitter for a clean eye.
    The circular mean has no such failure mode: it always points at the
    cluster, so shifting the wrap seam half a UI away from it unwraps
    every cluster correctly.
    """
    angles = 2.0 * np.pi * crossings
    center = np.arctan2(np.mean(np.sin(angles)),
                        np.mean(np.cos(angles))) / (2.0 * np.pi)
    center = np.mod(center, 1.0)
    return np.mod(crossings - center + 0.5, 1.0) - 0.5 + center


@dataclasses.dataclass(frozen=True)
class EyeMeasurement:
    """The numbers a scope's eye-mask panel reports.

    All voltages in volts, times in seconds unless suffixed ``_ui``.
    """

    eye_height: float
    eye_width_ui: float
    eye_amplitude: float
    level_one: float
    level_zero: float
    jitter_rms: float
    jitter_pp: float
    q_factor: float
    sampling_phase_ui: float
    n_ui: int

    @property
    def eye_opening_fraction(self) -> float:
        """Vertical opening relative to the eye amplitude (0..1)."""
        if self.eye_amplitude <= 0:
            return 0.0
        return max(0.0, self.eye_height) / self.eye_amplitude

    @property
    def is_open(self) -> bool:
        """True when both height and width are positive."""
        return self.eye_height > 0 and self.eye_width_ui > 0


class EyeDiagram:
    """A waveform folded at the unit interval.

    Parameters
    ----------
    wave:
        The waveform to fold.  Its sample rate must be an integer
        multiple of ``bit_rate`` (the NRZ encoder guarantees this); other
        rates are resampled automatically.
    bit_rate:
        The line rate defining the unit interval.
    skip_ui:
        Unit intervals dropped from the start (filter settling).  The
        default drops 8 UI.
    """

    def __init__(self, wave: Waveform, bit_rate: float, skip_ui: int = 8):
        if bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {bit_rate}")
        if skip_ui < 0:
            raise ValueError(f"skip_ui must be >= 0, got {skip_ui}")
        samples_per_ui = wave.sample_rate / bit_rate
        if abs(samples_per_ui - round(samples_per_ui)) > 1e-6:
            target = bit_rate * max(8, int(math.ceil(samples_per_ui)))
            wave = wave.resampled(target)
            samples_per_ui = wave.sample_rate / bit_rate
        self.samples_per_ui = int(round(samples_per_ui))
        if self.samples_per_ui < 4:
            raise ValueError(
                "need at least 4 samples per UI for eye analysis, got "
                f"{self.samples_per_ui}"
            )
        self.bit_rate = bit_rate
        self.unit_interval = 1.0 / bit_rate

        data = wave.data[skip_ui * self.samples_per_ui:]
        n_ui = len(data) // self.samples_per_ui
        if n_ui < 8:
            raise ValueError(
                f"waveform too short for an eye: {n_ui} UI after skipping"
            )
        self.traces = data[: n_ui * self.samples_per_ui].reshape(
            n_ui, self.samples_per_ui
        )
        self.n_ui = n_ui

    # -- folded views ---------------------------------------------------------
    def two_ui_traces(self) -> np.ndarray:
        """Traces spanning two UI (the customary scope display window)."""
        flat = self.traces.reshape(-1)
        n_pairs = self.n_ui - 1
        window = 2 * self.samples_per_ui
        return np.stack([flat[i * self.samples_per_ui:
                              i * self.samples_per_ui + window]
                         for i in range(n_pairs)])

    def phase_axis_ui(self) -> np.ndarray:
        """Phase positions (0..1) of the samples within a UI."""
        return (np.arange(self.samples_per_ui) + 0.5) / self.samples_per_ui

    # -- vertical measurements --------------------------------------------
    def _split_levels(self, phase_index: int
                      ) -> tuple[np.ndarray, np.ndarray]:
        """Samples at a phase, split into logical one/zero clusters."""
        column = self.traces[:, phase_index]
        ones = column[column > 0]
        zeros = column[column <= 0]
        return ones, zeros

    def eye_height_at(self, phase_index: int) -> float:
        """Worst-case vertical opening at a sampling phase.

        ``min(one samples) - max(zero samples)`` — negative when the eye
        is closed at that phase.
        """
        ones, zeros = self._split_levels(phase_index)
        if ones.size == 0 or zeros.size == 0:
            return -float("inf")
        return float(ones.min() - zeros.max())

    def best_phase_index(self) -> int:
        """The sampling phase maximizing the vertical opening."""
        heights = [self.eye_height_at(i) for i in range(self.samples_per_ui)]
        return int(np.argmax(heights))

    # -- horizontal measurements ----------------------------------------------
    def crossing_times_ui(self) -> np.ndarray:
        """Zero-crossing positions of all edges, in UI modulo 1.

        Linear interpolation between the bracketing samples; the
        distribution's spread is the crossing jitter.
        """
        flat = self.traces.reshape(-1)
        sign = np.sign(flat)
        sign[sign == 0] = 1
        idx = np.flatnonzero(np.diff(sign) != 0)
        if idx.size == 0:
            return np.array([])
        v0 = flat[idx]
        v1 = flat[idx + 1]
        frac = v0 / (v0 - v1)
        times = (idx + frac) / self.samples_per_ui
        crossings = np.mod(times, 1.0)
        # Center the cluster: crossings near 0/1 wrap; shift the wrap
        # seam half a UI away from the circular mean before measuring
        # spread (a straddling cluster defeats linear centering).
        return _center_crossings_ui(crossings)

    def jitter_rms_ui(self) -> float:
        """RMS crossing jitter in UI."""
        times = self.crossing_times_ui()
        if times.size < 2:
            return 0.0
        return float(np.std(times))

    def jitter_pp_ui(self) -> float:
        """Peak-to-peak crossing jitter in UI."""
        times = self.crossing_times_ui()
        if times.size < 2:
            return 0.0
        return float(np.ptp(times))

    def eye_width_ui(self) -> float:
        """Horizontal opening: 1 UI minus the peak-to-peak jitter."""
        return max(0.0, 1.0 - self.jitter_pp_ui())

    # -- composite measurement ------------------------------------------------
    def measure(self) -> EyeMeasurement:
        """Full scope-style measurement at the optimum sampling phase."""
        return self.measure_at(self.best_phase_index())

    def measure_at(self, phase: int) -> EyeMeasurement:
        """Scope-style measurement at a given sampling-phase index."""
        ones, zeros = self._split_levels(phase)
        if ones.size == 0 or zeros.size == 0:
            # Degenerate (all-same-polarity) signal: report a closed eye.
            level = float(self.traces.mean())
            return EyeMeasurement(
                eye_height=-float("inf"), eye_width_ui=0.0,
                eye_amplitude=0.0, level_one=level, level_zero=level,
                jitter_rms=0.0, jitter_pp=0.0, q_factor=0.0,
                sampling_phase_ui=phase / self.samples_per_ui,
                n_ui=self.n_ui,
            )
        level_one = float(ones.mean())
        level_zero = float(zeros.mean())
        sigma_one = float(ones.std())
        sigma_zero = float(zeros.std())
        amplitude = level_one - level_zero
        denominator = sigma_one + sigma_zero
        q = amplitude / denominator if denominator > 0 else float("inf")
        # One pass over the crossing distribution for all horizontal
        # metrics (it is the costly part of a measurement).
        times = self.crossing_times_ui()
        jitter_rms_ui = float(np.std(times)) if times.size >= 2 else 0.0
        jitter_pp_ui = float(np.ptp(times)) if times.size >= 2 else 0.0
        return EyeMeasurement(
            eye_height=self.eye_height_at(phase),
            eye_width_ui=max(0.0, 1.0 - jitter_pp_ui),
            eye_amplitude=amplitude,
            level_one=level_one,
            level_zero=level_zero,
            jitter_rms=jitter_rms_ui * self.unit_interval,
            jitter_pp=jitter_pp_ui * self.unit_interval,
            q_factor=q,
            sampling_phase_ui=(phase + 0.5) / self.samples_per_ui,
            n_ui=self.n_ui,
        )

    # -- convenience ----------------------------------------------------------
    @classmethod
    def measure_waveform(cls, wave: Waveform, bit_rate: float,
                         skip_ui: int = 8,
                         max_ui: Optional[int] = None) -> EyeMeasurement:
        """One-call fold-and-measure."""
        eye = cls(wave, bit_rate, skip_ui=skip_ui)
        del max_ui  # reserved for future windowed measurement
        return eye.measure()

    @classmethod
    def _from_folded(cls, traces: np.ndarray, bit_rate: float
                     ) -> "EyeDiagram":
        """Internal: wrap already-folded ``(n_ui, samples_per_ui)`` traces."""
        eye = cls.__new__(cls)
        eye.bit_rate = bit_rate
        eye.unit_interval = 1.0 / bit_rate
        eye.samples_per_ui = traces.shape[1]
        eye.traces = traces
        eye.n_ui = traces.shape[0]
        return eye


class EyeDiagramBatch:
    """Every row of a :class:`WaveformBatch` folded at the unit interval.

    The fold and the per-phase vertical-opening search — the dominant
    cost of scope-style measurement — run vectorized across all
    scenarios at once; each row's :class:`EyeMeasurement` is then
    assembled through the same code path as the serial
    :class:`EyeDiagram`, so batched results match per-waveform
    measurements exactly.

    The batch sample rate must be an integer multiple of ``bit_rate``
    (the NRZ encoder guarantees this; batches are never resampled).
    """

    def __init__(self, batch: WaveformBatch, bit_rate: float,
                 skip_ui: int = 8):
        if bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {bit_rate}")
        if skip_ui < 0:
            raise ValueError(f"skip_ui must be >= 0, got {skip_ui}")
        samples_per_ui = batch.sample_rate / bit_rate
        if abs(samples_per_ui - round(samples_per_ui)) > 1e-6:
            raise ValueError(
                "batch sample rate must be an integer multiple of the bit "
                f"rate, got {samples_per_ui} samples/UI"
            )
        self.samples_per_ui = int(round(samples_per_ui))
        if self.samples_per_ui < 4:
            raise ValueError(
                "need at least 4 samples per UI for eye analysis, got "
                f"{self.samples_per_ui}"
            )
        self.bit_rate = bit_rate
        self.unit_interval = 1.0 / bit_rate

        data = batch.data[:, skip_ui * self.samples_per_ui:]
        n_ui = data.shape[1] // self.samples_per_ui
        if n_ui < 8:
            raise ValueError(
                f"batch too short for an eye: {n_ui} UI after skipping"
            )
        self.traces = data[:, : n_ui * self.samples_per_ui].reshape(
            batch.n_scenarios, n_ui, self.samples_per_ui
        )
        self.n_ui = n_ui
        self.n_scenarios = batch.n_scenarios
        self._crossings: "List[np.ndarray] | None" = None
        self._jitter: "tuple[np.ndarray, np.ndarray] | None" = None

    def eye_heights(self) -> np.ndarray:
        """Vertical opening per (scenario, phase), shape
        ``(n_scenarios, samples_per_ui)`` — one vectorized pass."""
        ones_mask = self.traces > 0
        ones_min = np.min(np.where(ones_mask, self.traces, np.inf), axis=1)
        zeros_max = np.max(np.where(ones_mask, -np.inf, self.traces), axis=1)
        valid = ones_mask.any(axis=1) & (~ones_mask).any(axis=1)
        return np.where(valid, ones_min - zeros_max, -np.inf)

    def best_phase_indices(self) -> np.ndarray:
        """Per-scenario sampling phase maximizing the vertical opening."""
        return np.argmax(self.eye_heights(), axis=1)

    # -- horizontal measurements (vectorized extraction) -------------------
    def crossing_times_ui(self) -> List[np.ndarray]:
        """Per-scenario zero-crossing positions in UI modulo 1.

        The extraction — sign changes, bracketing-sample interpolation —
        runs as one vectorized pass over the whole batch, cached across
        the horizontal-metric accessors; only the cheap per-row circular
        centering loops in Python.  Row ``i`` equals
        ``EyeDiagram.crossing_times_ui()`` of that scenario exactly.
        """
        if self._crossings is not None:
            return self._crossings
        flat = self.traces.reshape(self.n_scenarios, -1)
        sign = np.sign(flat)
        sign[sign == 0] = 1
        rows, cols = np.nonzero(np.diff(sign, axis=1) != 0)
        v0 = flat[rows, cols]
        v1 = flat[rows, cols + 1]
        frac = v0 / (v0 - v1)
        times = (cols + frac) / self.samples_per_ui
        crossings = np.mod(times, 1.0)
        counts = np.bincount(rows, minlength=self.n_scenarios)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        out: List[np.ndarray] = []
        for i in range(self.n_scenarios):
            chunk = crossings[offsets[i]:offsets[i + 1]]
            out.append(_center_crossings_ui(chunk) if chunk.size
                       else np.array([]))
        self._crossings = out
        return out

    def _horizontal_metrics(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-row (RMS, peak-to-peak) crossing jitter from one cached
        extraction pass."""
        if self._jitter is not None:
            return self._jitter
        rms = np.zeros(self.n_scenarios)
        pp = np.zeros(self.n_scenarios)
        for i, times in enumerate(self.crossing_times_ui()):
            if times.size >= 2:
                rms[i] = float(np.std(times))
                pp[i] = float(np.ptp(times))
        self._jitter = (rms, pp)
        return rms, pp

    def jitter_rms_ui(self) -> np.ndarray:
        """Per-row RMS crossing jitter in UI."""
        return self._horizontal_metrics()[0]

    def jitter_pp_ui(self) -> np.ndarray:
        """Per-row peak-to-peak crossing jitter in UI."""
        return self._horizontal_metrics()[1]

    def eye_width_ui(self) -> np.ndarray:
        """Per-row horizontal opening: 1 UI minus the p-p jitter."""
        return np.maximum(0.0, 1.0 - self._horizontal_metrics()[1])

    def measure_all(self) -> List[EyeMeasurement]:
        """One :class:`EyeMeasurement` per scenario."""
        phases = self.best_phase_indices()
        return [
            EyeDiagram._from_folded(self.traces[row], self.bit_rate)
            .measure_at(int(phases[row]))
            for row in range(self.n_scenarios)
        ]


def measure_eye_batch(batch: WaveformBatch, bit_rate: float,
                      skip_ui: int = 8) -> List[EyeMeasurement]:
    """One-call batched fold-and-measure: one measurement per scenario.

    Equivalent to ``[EyeDiagram.measure_waveform(row, bit_rate, skip_ui)
    for row in batch.rows()]`` but with the folding and phase search
    vectorized across the whole batch.
    """
    return EyeDiagramBatch(batch, bit_rate, skip_ui=skip_ui).measure_all()
