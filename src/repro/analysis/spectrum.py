"""Power-spectral-density estimation.

NRZ data has the classic sinc^2 spectrum with nulls at multiples of the
bit rate; channel loss, pre-emphasis and coding all reshape it.  The
estimator here is a self-contained Welch periodogram (Hann windows,
averaged segments) so spectra can be measured from any simulated node —
e.g. verifying that voltage peaking boosts the Nyquist region, or that
8b/10b removes low-frequency content relative to a long-run payload.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..signals.waveform import Waveform

__all__ = ["power_spectral_density", "band_power", "spectral_centroid"]


def power_spectral_density(wave: Waveform, segment_length: int = 1024,
                           overlap: float = 0.5
                           ) -> Tuple[np.ndarray, np.ndarray]:
    """Welch PSD estimate of a waveform.

    Returns ``(freq_hz, psd)`` with the PSD in V^2/Hz (one-sided).
    Implemented directly (Hann window, windowed-segment averaging,
    correct window power normalization) rather than delegating, since
    the PSD is a substrate this library should own.
    """
    data = wave.data
    if segment_length < 16:
        raise ValueError(
            f"segment_length must be >= 16, got {segment_length}"
        )
    if not 0.0 <= overlap < 1.0:
        raise ValueError(f"overlap must be in [0, 1), got {overlap}")
    if len(data) < segment_length:
        raise ValueError(
            f"waveform ({len(data)} samples) shorter than one segment"
        )
    step = max(1, int(segment_length * (1.0 - overlap)))
    window = 0.5 * (1.0 - np.cos(2.0 * np.pi * np.arange(segment_length)
                                 / segment_length))
    window_power = np.sum(window**2)

    acc = None
    count = 0
    for start in range(0, len(data) - segment_length + 1, step):
        segment = data[start:start + segment_length]
        segment = segment - np.mean(segment)
        spectrum = np.fft.rfft(segment * window)
        periodogram = np.abs(spectrum) ** 2
        acc = periodogram if acc is None else acc + periodogram
        count += 1
    psd = acc / count / (window_power * wave.sample_rate)
    # One-sided scaling (all bins except DC and Nyquist carry x2).
    psd[1:-1] *= 2.0
    freq = np.fft.rfftfreq(segment_length, d=wave.dt)
    return freq, psd


def band_power(wave: Waveform, f_lo: float, f_hi: float,
               segment_length: int = 1024) -> float:
    """Integrated power (V^2) in a frequency band."""
    if not 0 <= f_lo < f_hi:
        raise ValueError(f"need 0 <= f_lo < f_hi, got {f_lo}, {f_hi}")
    freq, psd = power_spectral_density(wave, segment_length=segment_length)
    mask = (freq >= f_lo) & (freq <= f_hi)
    if not np.any(mask):
        raise ValueError("band contains no PSD bins; widen it or use a "
                         "longer segment")
    return float(np.trapezoid(psd[mask], freq[mask]))


def spectral_centroid(wave: Waveform, segment_length: int = 1024) -> float:
    """Power-weighted mean frequency (Hz) — a one-number spectrum shape
    metric used by the pre-emphasis benches."""
    freq, psd = power_spectral_density(wave, segment_length=segment_length)
    total = np.sum(psd)
    if total <= 0:
        raise ValueError("waveform has no AC power")
    return float(np.sum(freq * psd) / total)
