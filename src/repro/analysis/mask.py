"""Eye-mask compliance testing.

Standards qualify transmitters/receivers with an *eye mask*: a hexagonal
keep-out region in the centre of the eye plus top/bottom amplitude
limits.  A waveform complies when no folded trace enters the keep-out.
This module implements the standard hexagon parameterization (the
XAUI/OIF style: x1/x2 in UI, y1/y2 in volts) and a mask-margin search —
how much the mask can grow before a trace touches it.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..signals.waveform import Waveform
from .eye import EyeDiagram

__all__ = ["EyeMask", "MaskResult", "check_mask"]


@dataclasses.dataclass(frozen=True)
class EyeMask:
    """A hexagonal eye mask, symmetric about mid-UI and 0 V.

    The hexagon's vertices (one UI wide, differential-signal
    convention)::

        (x1, 0), (x2, y1), (1-x2, y1), (1-x1, 0),
        (1-x2, -y1), (x2, -y1)

    plus absolute amplitude ceilings at +-y2.
    """

    x1: float
    x2: float
    y1: float
    y2: float

    def __post_init__(self) -> None:
        if not 0 < self.x1 < self.x2 <= 0.5:
            raise ValueError(
                f"need 0 < x1 < x2 <= 0.5, got x1={self.x1}, x2={self.x2}"
            )
        if not 0 < self.y1 < self.y2:
            raise ValueError(
                f"need 0 < y1 < y2, got y1={self.y1}, y2={self.y2}"
            )

    def scaled(self, factor: float) -> "EyeMask":
        """Grow/shrink the inner hexagon vertically by ``factor``.

        Used by the margin search; the time coordinates and the outer
        limits stay fixed (amplitude margin is the customary metric).
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive, got {factor}")
        return dataclasses.replace(self, y1=self.y1 * factor)

    def inner_boundary(self, phase_ui: np.ndarray) -> np.ndarray:
        """|v| of the hexagon edge at each phase (0 outside x1..1-x1)."""
        phase_ui = np.asarray(phase_ui, dtype=float)
        bound = np.zeros_like(phase_ui)
        rising = (phase_ui >= self.x1) & (phase_ui < self.x2)
        flat = (phase_ui >= self.x2) & (phase_ui <= 1.0 - self.x2)
        falling = (phase_ui > 1.0 - self.x2) & (phase_ui <= 1.0 - self.x1)
        slope = self.y1 / (self.x2 - self.x1)
        bound[rising] = (phase_ui[rising] - self.x1) * slope
        bound[flat] = self.y1
        bound[falling] = (1.0 - self.x1 - phase_ui[falling]) * slope
        return bound


@dataclasses.dataclass(frozen=True)
class MaskResult:
    """Outcome of a mask test."""

    passes: bool
    hexagon_violations: int
    amplitude_violations: int
    margin: float
    """Largest vertical growth factor of the hexagon that still passes
    (1.0 means zero margin; >1 means margin in hand)."""


def check_mask(wave: Waveform, bit_rate: float, mask: EyeMask,
               skip_ui: int = 8) -> MaskResult:
    """Test a waveform against an eye mask.

    The eye is folded at one UI with the sampling phase centred (the
    mask's 0.5 UI aligned to the eye centre, as a scope's mask align
    does), then every sample is checked against the hexagon and the
    amplitude limits.
    """
    eye = EyeDiagram(wave, bit_rate, skip_ui=skip_ui)
    traces = eye.traces
    # Centre the eye: place the measured best sampling phase at 0.5 UI.
    best = eye.best_phase_index()
    shift = (traces.shape[1] // 2) - best
    folded = np.roll(traces, shift, axis=1)
    phases = eye.phase_axis_ui()

    bound = mask.inner_boundary(phases)
    inside_hexagon = np.abs(folded) < bound[None, :]
    hexagon_violations = int(np.sum(inside_hexagon))
    amplitude_violations = int(np.sum(np.abs(folded) > mask.y2))

    # Margin: bisect the hexagon growth factor.  The boundary is linear
    # in y1, so scaling the precomputed bound is exact (and avoids
    # constructing masks with y1 beyond the y2 ceiling mid-search).
    def passes_at(factor: float) -> bool:
        return not np.any(np.abs(folded) < factor * bound[None, :])

    if hexagon_violations:
        margin = 0.0
        lo, hi = 1e-3, 1.0
        if passes_at(lo):
            for _ in range(30):
                mid = 0.5 * (lo + hi)
                if passes_at(mid):
                    lo = mid
                else:
                    hi = mid
            margin = lo
    else:
        lo, hi = 1.0, 50.0
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            if passes_at(mid):
                lo = mid
            else:
                hi = mid
        margin = lo

    return MaskResult(
        passes=hexagon_violations == 0 and amplitude_violations == 0,
        hexagon_violations=hexagon_violations,
        amplitude_violations=amplitude_violations,
        margin=margin,
    )
