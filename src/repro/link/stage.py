"""The batch-first ``Stage`` protocol and the ``stage()`` adapter.

Every simulation block in this library transforms signals, but the
pre-redesign API exposed that through hand-paired serial/batch methods
(``process`` riding on batch-transparency, ``recover``/``recover_batch``,
``equalize``/``equalize_batch``).  A :class:`Stage` collapses each pair
into one dispatching code path:

* the protocol is a single ``__call__`` whose canonical form is
  :class:`~repro.signals.batch.WaveformBatch` in →
  :class:`~repro.signals.batch.WaveformBatch` out;
* a single :class:`~repro.signals.waveform.Waveform` is accepted too —
  it is lifted to a one-row batch, pushed through the *same* batched
  kernel, and the single row is handed back.

``stage()`` wraps every existing block family onto the protocol: LTI
blocks and :class:`~repro.lti.blocks.Pipeline`, channels, the core
interfaces, the baseline CTLE/DFE/pre-emphasis, the bang-bang CDR, and
plain batch-transparent callables.  Row ``i`` of a batch driven through
a stage is numerically identical to driving ``batch[i]`` on its own:
there is only one kernel, so there is nothing to diverge.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple, Union

import numpy as np

from ..baselines.dfe import (
    DecisionFeedbackEqualizer,
    inner_eye_height_from_corrected,
)
from ..cdr.loop import BangBangCdr, CdrBatchResult, CdrResult
from ..signals.batch import WaveformBatch
from ..signals.waveform import Waveform

__all__ = ["Stage", "BlockStage", "CdrStage", "DfeStage", "stage"]

Signal = Union[Waveform, WaveformBatch]


def _lift(signal: Signal) -> Tuple[WaveformBatch, bool]:
    """Normalize a signal onto the batch form.

    Returns ``(batch, was_single)``: a :class:`Waveform` becomes a
    one-row batch with ``was_single=True``; a batch passes through.
    """
    if isinstance(signal, WaveformBatch):
        return signal, False
    if isinstance(signal, Waveform):
        return WaveformBatch(signal.data[np.newaxis, :], signal.sample_rate,
                             t0=signal.t0), True
    raise TypeError(
        f"expected Waveform or WaveformBatch, got {type(signal).__name__}"
    )


def _lower(batch: WaveformBatch, was_single: bool) -> Signal:
    """Undo :func:`_lift`: hand a single row back as a waveform.

    A stage may legitimately fan one row out to many (noise fan-out);
    in that case the batch stays a batch.
    """
    if was_single and isinstance(batch, WaveformBatch) \
            and batch.n_scenarios == 1:
        return batch[0]
    return batch


class Stage(abc.ABC):
    """One batch-first signal transform.

    The protocol is a single ``__call__(WaveformBatch) -> WaveformBatch``
    (implemented by :meth:`process_batch`); ``__call__`` additionally
    accepts a bare :class:`Waveform` and lifts/lowers it around the one
    batched kernel, so serial and batched execution share one code path.
    """

    #: Human-readable label used by session introspection and reports.
    name: str = "stage"

    @abc.abstractmethod
    def process_batch(self, batch: WaveformBatch) -> WaveformBatch:
        """The one kernel: transform all scenarios of a batch at once."""

    def __call__(self, signal: Signal) -> Signal:
        batch, was_single = _lift(signal)
        return _lower(self.process_batch(batch), was_single)


class BlockStage(Stage):
    """A batch-transparent processor (block, pipeline, channel,
    interface, or plain callable) on the :class:`Stage` protocol."""

    def __init__(self, processor, name: Optional[str] = None):
        process = getattr(processor, "process", None)
        if process is None:
            if not callable(processor):
                raise TypeError(
                    f"{type(processor).__name__} has no .process and is "
                    "not callable"
                )
            process = processor
        self.processor = processor
        self._process = process
        self.name = name or getattr(processor, "name", None) \
            or type(processor).__name__
        if not isinstance(self.name, str):
            self.name = type(processor).__name__

    def process_batch(self, batch: WaveformBatch) -> WaveformBatch:
        out = self._process(batch)
        if isinstance(out, Waveform):
            out = _lift(out)[0]
        if not isinstance(out, WaveformBatch):
            raise TypeError(
                f"stage {self.name!r} returned {type(out).__name__}; "
                "processors must be batch-transparent"
            )
        return out


class CdrStage(Stage):
    """The bang-bang CDR as a stage.

    :meth:`process_batch` exposes the recovered decision streams as a
    bit-rate waveform batch (0/1 levels) so a CDR can sit inside a stage
    chain; :meth:`recover` is the full-result form, returning the
    :class:`~repro.cdr.CdrResult` family through the same single
    batched kernel (a waveform is recovered as a one-row batch and row
    0 is returned — row-exact against the serial reference loop).
    """

    name = "cdr"

    def __init__(self, cdr: BangBangCdr, n_bits: Optional[int] = None):
        self.cdr = cdr
        self.n_bits = n_bits

    def recover(self, signal: Signal, n_bits: Optional[int] = None,
                initial_phase_ui: Optional[np.ndarray] = None,
                initial_frequency_ppm: Optional[np.ndarray] = None
                ) -> "CdrResult | CdrBatchResult":
        """Run the loop(s): ``Waveform -> CdrResult``,
        ``WaveformBatch -> CdrBatchResult``, one kernel for both."""
        batch, was_single = _lift(signal)
        result = self.cdr._recover_batch(
            batch,
            n_bits=self.n_bits if n_bits is None else n_bits,
            initial_phase_ui=initial_phase_ui,
            initial_frequency_ppm=initial_frequency_ppm,
        )
        return result.row(0) if was_single else result

    def process_batch(self, batch: WaveformBatch) -> WaveformBatch:
        result = self.cdr._recover_batch(batch, n_bits=self.n_bits)
        return WaveformBatch(result.decisions.astype(float),
                             self.cdr.config.bit_rate, t0=batch.t0)


class DfeStage(Stage):
    """A decision-feedback equalizer as a stage.

    :meth:`process_batch` exposes the ISI-corrected decision-instant
    samples as a baud-rate waveform batch (the signal whose histogram
    is the DFE's inner eye); :meth:`equalize` is the full
    ``(decisions, corrected)`` form.  Both run the one batched kernel;
    a waveform in yields the 1-D row-0 arrays out.
    """

    name = "dfe"

    def __init__(self, dfe: DecisionFeedbackEqualizer):
        self.dfe = dfe

    def equalize(self, signal: Signal) -> Tuple[np.ndarray, np.ndarray]:
        """``(decisions, corrected)``: 1-D for a waveform, 2-D
        ``(n_scenarios, n_bits)`` for a batch — one kernel for both."""
        batch, was_single = _lift(signal)
        decisions, corrected = self.dfe._equalize_batch(batch)
        if was_single:
            return decisions[0], corrected[0]
        return decisions, corrected

    def inner_eye_height(self, signal: Signal, skip_bits: int = 16):
        """Worst-case vertical opening of the corrected samples (worst
        sub-eye for multi-level modulations): a float for a waveform, a
        per-row array for a batch."""
        _, corrected = self.equalize(signal)
        return inner_eye_height_from_corrected(
            corrected, skip_bits, thresholds=self.dfe.decision_thresholds)

    def process_batch(self, batch: WaveformBatch) -> WaveformBatch:
        _, corrected = self.dfe._equalize_batch(batch)
        t0 = batch.t0 + self.dfe.sample_phase_ui / self.dfe.bit_rate
        return WaveformBatch(corrected, self.dfe.bit_rate, t0=t0)


def stage(obj, name: Optional[str] = None) -> Stage:
    """Adapt any existing block onto the :class:`Stage` protocol.

    Dispatch rules, in order:

    * a :class:`Stage` passes through unchanged;
    * a :class:`~repro.baselines.dfe.DecisionFeedbackEqualizer` becomes
      a :class:`DfeStage`;
    * a :class:`~repro.cdr.BangBangCdr` becomes a :class:`CdrStage`;
    * anything with ``to_block()`` but no ``process`` (the Cherry-Hooper
      equalizer, the baseline CTLE) is wrapped via its block form;
    * anything with ``process`` or plain callables (LTI blocks,
      pipelines, channels, interfaces, pre-emphasis, lambdas) becomes a
      :class:`BlockStage` — these must be batch-transparent, which every
      block in this library is.
    """
    if isinstance(obj, Stage):
        return obj
    if isinstance(obj, DecisionFeedbackEqualizer):
        return DfeStage(obj)
    if isinstance(obj, BangBangCdr):
        return CdrStage(obj)
    if hasattr(obj, "to_block") and not hasattr(obj, "process"):
        return BlockStage(obj.to_block(),
                          name=name or getattr(obj, "name", None))
    return BlockStage(obj, name=name)
