"""Batch-first public API: one dispatching facade over the whole link.

After the batched-engine PRs, every layer of the library had grown a
hand-written serial/batch method pair (``process``/batch transparency,
``recover``/``recover_batch``, ``equalize``/``equalize_batch``,
``run_link``/``run_link_batch``, ``measure``/``measure_batch``).  This
package collapses those pairs into one batch-first surface:

* :class:`~repro.link.stage.Stage` — the protocol: one
  ``__call__(WaveformBatch) -> WaveformBatch`` kernel, with single
  waveforms lifted through the same code path;
* :func:`~repro.link.stage.stage` — the adapter wrapping every existing
  block family (LTI blocks/pipelines, channels, core interfaces,
  baseline CTLE/DFE/pre-emphasis, the bang-bang CDR, plain callables)
  onto that protocol;
* :class:`~repro.link.session.LinkSession` — the facade composing
  tx → channel → rx → CDR/DFE from config dataclasses, with ``run``,
  ``run_batch``, ``sweep`` and ``run_framed`` all returning the typed
  :class:`~repro.link.session.LinkResult` /
  :class:`~repro.link.session.LinkBatchResult` report family;
* :func:`~repro.link.session.run_framed_link` — the framed-link runner
  replacing the ``run_link``/``run_link_batch`` pair.

The old ``*_batch`` twins survive as thin deprecated shims that
delegate here; batch results remain row-exact against them because the
shims and the facade share the same kernels.
"""

from .stage import BlockStage, CdrStage, DfeStage, Stage, stage
from .session import (
    ChannelConfig,
    DfeConfig,
    LinkBatchResult,
    LinkResult,
    LinkSession,
    RxConfig,
    TxConfig,
    run_framed_link,
)

__all__ = [
    "Stage",
    "BlockStage",
    "CdrStage",
    "DfeStage",
    "stage",
    "TxConfig",
    "ChannelConfig",
    "RxConfig",
    "DfeConfig",
    "LinkResult",
    "LinkBatchResult",
    "LinkSession",
    "run_framed_link",
]
