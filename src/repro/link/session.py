"""``LinkSession``: the batch-first facade over the whole link.

The paper's transceiver is one fixed chain — tx → backplane → rx →
CDR/DFE → eye/BER — and this module is its single public entry point.
A session is built either from config dataclasses
(:class:`TxConfig`/:class:`ChannelConfig`/:class:`RxConfig` plus
optional :class:`~repro.cdr.CdrConfig`/:class:`DfeConfig`) or from any
sequence of stage-able objects, and every execution path dispatches
through the same batched kernels:

* :meth:`LinkSession.run` — one waveform in, one :class:`LinkResult`;
* :meth:`LinkSession.run_batch` — N scenarios in one pass, a
  :class:`LinkBatchResult` whose row ``i`` equals ``run(batch[i])``;
  ``chunk_rows=...`` streams the chain in bounded row-chunks (peak
  memory ``O(chunk_rows * n_samples)`` per stage, row-exact vs the
  monolithic pass) so 100k+-scenario batches fit in memory;
* :meth:`LinkSession.sweep` — a declarative
  :class:`~repro.sweep.grid.ScenarioGrid` executed by the
  :class:`~repro.sweep.runner.SweepRunner`, structural axes rebuilding
  the session's configs by field name;
* :meth:`LinkSession.run_framed` / :func:`run_framed_link` — the
  8b/10b framed link (serialize once, batched CDR recovery, per-row
  decode), replacing the old ``run_link``/``run_link_batch`` pair.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.eye import EyeMeasurement, measure_eye_batch
from ..analysis.isi import pulse_response
from ..baselines.dfe import (
    DecisionFeedbackEqualizer,
    inner_eye_height_from_corrected,
)
from ..cdr.loop import BangBangCdr, CdrBatchResult, CdrConfig, CdrResult
from ..channel.backplane import BackplaneChannel
from ..core.interface import build_input_interface, build_output_interface
from ..serdes.serializer import (
    Deserializer,
    LinkBatchReport,
    LinkReport,
    _report_from_cdr,
    _serialize_payload,
)
from ..signals.batch import WaveformBatch
from ..signals.modulation import Modulation, Nrz
from ..signals.waveform import Waveform
from ..sweep.grid import ScenarioGrid
from ..sweep.runner import SweepResult, SweepRunner
from .stage import CdrStage, DfeStage, Stage, _lift, _lower, stage

__all__ = [
    "TxConfig",
    "ChannelConfig",
    "RxConfig",
    "DfeConfig",
    "LinkResult",
    "LinkBatchResult",
    "LinkSession",
    "run_framed_link",
]


# ---------------------------------------------------------------------------
# Config dataclasses: the builder inputs of a session.
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True)
class TxConfig:
    """Transmit side: the paper's output interface.

    ``modulation`` declares the line code of the stimulus this session
    carries (NRZ by default).  The analog chain is modulation-agnostic;
    the field rides through the session into every slicer and eye
    measurement — and, being a config field, it is a valid *structural*
    sweep-axis name, so NRZ-vs-PAM4 runs as one sweep.
    """

    peaking_enabled: bool = True
    spike_width_ui: float = 0.35
    spike_current: float = 1.5e-3
    modulation: Modulation = Nrz()

    def build(self, bit_rate: float):
        return build_output_interface(
            peaking_enabled=self.peaking_enabled,
            spike_width_ui=self.spike_width_ui,
            spike_current=self.spike_current,
            bit_rate=bit_rate,
        )


@dataclasses.dataclass(frozen=True)
class ChannelConfig:
    """The backplane between the interfaces; zero length means none."""

    length_m: float = 0.0

    def build(self) -> Optional[BackplaneChannel]:
        if self.length_m <= 0.0:
            return None
        return BackplaneChannel(self.length_m)


@dataclasses.dataclass(frozen=True)
class RxConfig:
    """Receive side: the paper's input interface."""

    equalizer_enabled: bool = True
    equalizer_control_voltage: float = 0.7

    def build(self):
        rx = build_input_interface(
            equalizer_control_voltage=self.equalizer_control_voltage
        )
        if not self.equalizer_enabled:
            rx = rx.without_equalizer()
        return rx


@dataclasses.dataclass(frozen=True)
class DfeConfig:
    """A baud-rate DFE measured after the receive path.

    ``modulation=None`` inherits the session's line code at build time
    (set it explicitly to pin a different slicer alphabet)."""

    taps: Tuple[float, ...]
    decision_amplitude: float = 1.0
    sample_phase_ui: float = 0.5
    skip_bits: int = 16
    modulation: Optional[Modulation] = None

    def build(self, bit_rate: float,
              modulation: Optional[Modulation] = None
              ) -> DecisionFeedbackEqualizer:
        effective = self.modulation if self.modulation is not None \
            else (modulation if modulation is not None else Nrz())
        return DecisionFeedbackEqualizer(
            taps=self.taps,
            bit_rate=bit_rate,
            decision_amplitude=self.decision_amplitude,
            sample_phase_ui=self.sample_phase_ui,
            modulation=effective,
        )


def _run_stages(stages: Sequence[Stage],
                batch: WaveformBatch) -> WaveformBatch:
    """The one stage-chain loop every session path dispatches through."""
    for link_stage in stages:
        batch = link_stage.process_batch(batch)
    return batch


# ---------------------------------------------------------------------------
# The typed report family.
# ---------------------------------------------------------------------------

@dataclasses.dataclass(frozen=True, eq=False)
class LinkResult:
    """One scenario's outcome: the received waveform plus every
    measurement the session was configured for."""

    output: Waveform
    eye: Optional[EyeMeasurement] = None
    cdr: Optional[CdrResult] = None
    dfe_decisions: Optional[np.ndarray] = None
    dfe_corrected: Optional[np.ndarray] = None
    dfe_inner_eye_height: Optional[float] = None
    modulation: Modulation = Nrz()

    @property
    def cdr_locked(self) -> bool:
        """True when a CDR ran and locked."""
        return self.cdr is not None and self.cdr.is_locked


@dataclasses.dataclass(frozen=True, eq=False)
class LinkBatchResult:
    """N scenarios' outcomes from one batched pass.

    Row ``i`` (:meth:`row`) equals :meth:`LinkSession.run` of the same
    scenario — both are assembled by the same kernels.
    """

    output: WaveformBatch
    eyes: Optional[List[EyeMeasurement]] = None
    cdr: Optional[CdrBatchResult] = None
    dfe_decisions: Optional[np.ndarray] = None
    dfe_corrected: Optional[np.ndarray] = None
    dfe_inner_eye_heights: Optional[np.ndarray] = None
    modulation: Modulation = Nrz()

    @property
    def n_scenarios(self) -> int:
        """Number of scenarios in the batch."""
        return self.output.n_scenarios

    def __len__(self) -> int:
        return self.n_scenarios

    def row(self, index: int) -> LinkResult:
        """Scenario ``index`` unpacked into the single-scenario form."""
        if index < 0:
            index += self.n_scenarios
        if not 0 <= index < self.n_scenarios:
            raise IndexError(f"scenario {index} out of range")
        return LinkResult(
            output=self.output[index],
            eye=self.eyes[index] if self.eyes is not None else None,
            cdr=self.cdr.row(index) if self.cdr is not None else None,
            dfe_decisions=(None if self.dfe_decisions is None
                           else self.dfe_decisions[index]),
            dfe_corrected=(None if self.dfe_corrected is None
                           else self.dfe_corrected[index]),
            dfe_inner_eye_height=(
                None if self.dfe_inner_eye_heights is None
                else float(self.dfe_inner_eye_heights[index])),
            modulation=self.modulation,
        )

    def rows(self) -> List[LinkResult]:
        """Every scenario unpacked (see :meth:`row`)."""
        return [self.row(i) for i in range(self.n_scenarios)]

    def __iter__(self):
        return iter(self.rows())

    @classmethod
    def concatenate(cls, parts: "List[LinkBatchResult]"
                    ) -> "LinkBatchResult":
        """Stack row-chunks back into one batch result.

        The chunked :meth:`LinkSession.run_batch` fast path measures
        bounded row-chunks independently and reassembles them here;
        per-row values are untouched, so the concatenation is row-exact
        against the monolithic pass.  All parts must carry the same
        measurement set (same session configuration).
        """
        if not parts:
            raise ValueError("cannot concatenate zero LinkBatchResults")
        if len(parts) == 1:
            return parts[0]
        first = parts[0]
        for part in parts[1:]:
            if ((part.eyes is None) != (first.eyes is None)
                    or (part.cdr is None) != (first.cdr is None)
                    or (part.dfe_decisions is None)
                    != (first.dfe_decisions is None)):
                raise ValueError(
                    "chunks carry different measurement sets; they must "
                    "come from one session configuration"
                )
        output = WaveformBatch(
            np.concatenate([part.output.data for part in parts], axis=0),
            first.output.sample_rate, t0=first.output.t0)
        eyes = (None if first.eyes is None
                else [eye for part in parts for eye in part.eyes])
        cdr = (None if first.cdr is None
               else CdrBatchResult.concatenate([part.cdr for part in parts]))

        def cat(field: str):
            arrays = [getattr(part, field) for part in parts]
            if arrays[0] is None:
                return None
            return np.concatenate(arrays, axis=0)

        return cls(output=output, eyes=eyes, cdr=cdr,
                   dfe_decisions=cat("dfe_decisions"),
                   dfe_corrected=cat("dfe_corrected"),
                   dfe_inner_eye_heights=cat("dfe_inner_eye_heights"),
                   modulation=first.modulation)

    def eye_heights(self) -> np.ndarray:
        """Per-scenario vertical eye openings."""
        if self.eyes is None:
            raise ValueError("session ran with measure_eye=False")
        return np.array([eye.eye_height for eye in self.eyes])

    def lock_yield(self) -> float:
        """Fraction of scenarios whose CDR locked."""
        if self.cdr is None:
            raise ValueError("session ran without a CDR")
        return self.cdr.lock_yield()


# ---------------------------------------------------------------------------
# The facade.
# ---------------------------------------------------------------------------

class LinkSession:
    """Composable batch-first link runner.

    Parameters
    ----------
    stages:
        The analog chain, in order; each entry is adapted through
        :func:`~repro.link.stage` (blocks, pipelines, channels,
        interfaces, callables, or ready-made stages).
    bit_rate:
        Line rate shared by measurement, CDR and DFE.
    cdr:
        ``None`` (no recovery), a :class:`~repro.cdr.CdrConfig`, or
        ``True`` for the default config at ``bit_rate``.
    dfe:
        ``None``, a :class:`DfeConfig`, or a ready
        :class:`~repro.baselines.dfe.DecisionFeedbackEqualizer`.
    measure_eye / skip_ui:
        Whether (and how) each run folds a scope-style eye.
    modulation:
        Line code every measurement layer slices against (``None`` =
        NRZ).  ``bit_rate`` stays the *symbol* (baud) rate.
    """

    def __init__(self, stages: Sequence = (), *, bit_rate: float = 10e9,
                 cdr: "CdrConfig | bool | None" = None,
                 dfe: "DfeConfig | DecisionFeedbackEqualizer | None" = None,
                 measure_eye: bool = True, skip_ui: int = 16,
                 dfe_skip_bits: Optional[int] = None,
                 modulation: Optional[Modulation] = None):
        if bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {bit_rate}")
        self.bit_rate = bit_rate
        self.modulation: Modulation = (Nrz() if modulation is None
                                       else modulation)
        self.stages: Tuple[Stage, ...] = tuple(stage(s) for s in stages)
        if cdr is True:
            cdr = CdrConfig(bit_rate=bit_rate, modulation=self.modulation)
        self.cdr_config: Optional[CdrConfig] = cdr or None
        self._cdr_stage = (CdrStage(BangBangCdr(self.cdr_config))
                           if self.cdr_config is not None else None)
        if isinstance(dfe, DfeConfig):
            # An explicit dfe_skip_bits argument wins over the config's.
            if dfe_skip_bits is None:
                dfe_skip_bits = dfe.skip_bits
            dfe = dfe.build(bit_rate, modulation=self.modulation)
        self.dfe: Optional[DecisionFeedbackEqualizer] = dfe
        self._dfe_stage = DfeStage(dfe) if dfe is not None else None
        self.measure_eye = measure_eye
        self.skip_ui = skip_ui
        self.dfe_skip_bits = 16 if dfe_skip_bits is None else dfe_skip_bits
        #: Built components, populated by :meth:`from_configs` so
        #: metric accessors (budget, DC gain, output swing) stay reachable.
        self.transmitter = None
        self.channel = None
        self.receiver = None
        self._configs: Optional[Tuple] = None

    # -- construction ------------------------------------------------------
    @classmethod
    def from_configs(cls, tx: Optional[TxConfig] = TxConfig(),
                     channel: Optional[ChannelConfig] = ChannelConfig(),
                     rx: Optional[RxConfig] = RxConfig(), *,
                     bit_rate: float = 10e9,
                     cdr: "CdrConfig | bool | None" = None,
                     dfe: "DfeConfig | DecisionFeedbackEqualizer | None"
                     = None,
                     measure_eye: bool = True, skip_ui: int = 16,
                     dfe_skip_bits: Optional[int] = None,
                     modulation: Optional[Modulation] = None
                     ) -> "LinkSession":
        """Build the paper's tx → channel → rx chain from configs.

        Any of ``tx``/``channel``/``rx`` may be ``None`` to omit that
        leg (``ChannelConfig(0.0)`` also omits the channel).  The
        configs are retained, so :meth:`sweep` can rebuild the chain
        along structural axes by config field name.  The line code
        defaults to ``tx.modulation``; an explicit ``modulation``
        argument wins.
        """
        if modulation is None and tx is not None:
            modulation = tx.modulation
        stages, built = cls._build_chain(tx, channel, rx, bit_rate)
        session = cls(stages, bit_rate=bit_rate, cdr=cdr, dfe=dfe,
                      measure_eye=measure_eye, skip_ui=skip_ui,
                      dfe_skip_bits=dfe_skip_bits, modulation=modulation)
        session.transmitter, session.channel, session.receiver = built
        session._configs = (tx, channel, rx)
        return session

    @staticmethod
    def _build_chain(tx: Optional[TxConfig], channel: Optional[ChannelConfig],
                     rx: Optional[RxConfig], bit_rate: float):
        transmitter = tx.build(bit_rate) if tx is not None else None
        chan = channel.build() if channel is not None else None
        receiver = rx.build() if rx is not None else None
        stages = [block for block in (transmitter, chan, receiver)
                  if block is not None]
        return stages, (transmitter, chan, receiver)

    # -- execution ---------------------------------------------------------
    def process(self, signal):
        """Push a signal through the analog stages (no measurement).

        One dispatch path: ``Waveform`` in → ``Waveform`` out,
        ``WaveformBatch`` in → ``WaveformBatch`` out.
        """
        batch, was_single = _lift(signal)
        return _lower(_run_stages(self.stages, batch), was_single)

    def statistical_eye(self, engine: "Optional[Any]" = None, *,
                        amplitude: float = 1.0, samples_per_bit: int = 32,
                        n_lead_bits: Optional[int] = None,
                        n_lag_bits: Optional[int] = None,
                        **engine_fields):
        """Statistical eye/BER analysis of this link (the StatEye mode).

        Measures the chain's single-symbol pulse response (lone-one
        stimulus minus the all-zero baseline through the full chain at
        its operating point, via
        :func:`~repro.analysis.isi.pulse_response`) and runs the
        convolution-based engine on it: exact ISI PDFs, Gaussian noise
        and RJ/DJ jitter folded into per-sub-eye BER(t, v) surfaces —
        contours, bathtubs and BER down to the 1e-15 compliance tails
        that pattern simulation cannot reach.

        ``engine`` is a ready :class:`~repro.stateye.StatEye`; keyword
        ``engine_fields`` (e.g. ``noise_rms=5e-3``, ``rj_rms_ui=0.01``)
        build one around the session's modulation, or override fields
        of a given engine.  ``amplitude`` must match the peak-to-peak
        stimulus swing of the time-domain runs being modeled.  Returns
        a :class:`~repro.stateye.StatEyeResult`.
        """
        from ..stateye import StatEye

        if engine is None:
            engine = StatEye(modulation=self.modulation, **engine_fields)
        elif engine_fields:
            engine = dataclasses.replace(engine, **engine_fields)
        if n_lead_bits is None:
            n_lead_bits = max(4, engine.n_precursors + 4)
        if n_lag_bits is None:
            n_lag_bits = max(8, engine.n_postcursors + 4)
        pulse = pulse_response(self, self.bit_rate,
                               samples_per_bit=samples_per_bit,
                               n_lead_bits=n_lead_bits,
                               n_lag_bits=n_lag_bits, amplitude=amplitude)
        return engine.analyze(pulse)

    def _analyze(self, out: WaveformBatch,
                 modulation: Optional[Modulation] = None) -> LinkBatchResult:
        """Measure an already-processed batch into the report form.

        ``modulation`` overrides the session's line code for this batch
        (a structural ``modulation`` sweep axis lands here): the eye
        folds per-sub-eye statistics and the CDR/DFE stages are rebuilt
        with the matching slicer alphabet.
        """
        mod = self.modulation if modulation is None else modulation
        eyes = (measure_eye_batch(out, self.bit_rate, skip_ui=self.skip_ui,
                                  modulation=mod)
                if self.measure_eye else None)
        cdr_stage = self._cdr_stage
        if cdr_stage is not None and mod != self.cdr_config.modulation:
            cdr_stage = CdrStage(BangBangCdr(
                dataclasses.replace(self.cdr_config, modulation=mod)))
        cdr_result = (cdr_stage.recover(out)
                      if cdr_stage is not None else None)
        dfe = self.dfe
        dfe_stage = self._dfe_stage
        if dfe_stage is not None and mod != dfe.modulation:
            dfe = dataclasses.replace(dfe, modulation=mod)
            dfe_stage = DfeStage(dfe)
        dfe_decisions = dfe_corrected = dfe_heights = None
        if dfe_stage is not None:
            dfe_decisions, dfe_corrected = dfe_stage.equalize(out)
            dfe_heights = inner_eye_height_from_corrected(
                dfe_corrected, self.dfe_skip_bits,
                thresholds=dfe.decision_thresholds)
        return LinkBatchResult(output=out, eyes=eyes, cdr=cdr_result,
                               dfe_decisions=dfe_decisions,
                               dfe_corrected=dfe_corrected,
                               dfe_inner_eye_heights=dfe_heights,
                               modulation=mod)

    def _run(self, batch: WaveformBatch,
             modulation: Optional[Modulation] = None) -> LinkBatchResult:
        return self._analyze(_run_stages(self.stages, batch), modulation)

    def run(self, wave: Waveform) -> LinkResult:
        """One scenario end to end (dispatches through the batch path)."""
        if not isinstance(wave, Waveform):
            raise TypeError(
                f"run() takes a Waveform, got {type(wave).__name__}; "
                "use run_batch() for batches"
            )
        result = self._run(_lift(wave)[0])
        if result.n_scenarios != 1:
            raise ValueError(
                f"a stage fanned the waveform out to "
                f"{result.n_scenarios} scenarios; use run_batch() to "
                "keep every row"
            )
        return result.row(0)

    def run_batch(self, batch, *, chunk_rows: Optional[int] = None,
                  keep_output: bool = True) -> LinkBatchResult:
        """N scenarios in one batched pass.

        Accepts a :class:`WaveformBatch`, a single waveform (one-row
        batch), or a sequence of compatible waveforms (stacked).

        ``chunk_rows`` enables the fused chunked fast path: the batch
        streams tx → channel → rx → CDR/DFE in bounded row-chunks, so
        every stage's intermediate arrays peak at
        ``O(chunk_rows * n_samples)`` instead of
        ``O(n_scenarios * n_samples)`` — the difference between a
        100k-scenario Monte Carlo fitting in memory and OOMing.  Chunks
        are measured independently and reassembled row-exactly
        (:meth:`LinkBatchResult.concatenate`): every kernel in the
        chain is row-independent, so ``run_batch(batch, chunk_rows=c)``
        equals ``run_batch(batch)`` for any ``c``.

        ``keep_output=False`` additionally drops the processed
        waveforms from the result (the returned ``output`` batch has
        zero samples per row), keeping only the configured measurements
        — for large sweeps the received waveforms dominate the result's
        footprint and are rarely wanted.  See
        ``benchmarks/bench_compiled_kernels.py`` for the measured
        crossover: chunking costs a few percent below ~1k scenarios
        and is the only way to complete ≥100k.
        """
        if isinstance(batch, Waveform):
            batch = _lift(batch)[0]
        elif not isinstance(batch, WaveformBatch):
            batch = WaveformBatch.stack(list(batch))
        if chunk_rows is not None and chunk_rows < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
        if chunk_rows is None or chunk_rows >= batch.n_scenarios:
            return self._finish(self._run(batch), keep_output)
        parts = [
            self._finish(self._run(batch[start:start + chunk_rows]),
                         keep_output)
            for start in range(0, batch.n_scenarios, chunk_rows)
        ]
        return LinkBatchResult.concatenate(parts)

    @staticmethod
    def _finish(result: LinkBatchResult, keep_output: bool
                ) -> LinkBatchResult:
        """Optionally drop the waveforms, keeping the measurements."""
        if keep_output:
            return result
        empty = WaveformBatch(
            np.empty((result.output.n_scenarios, 0)),
            result.output.sample_rate, t0=result.output.t0)
        return dataclasses.replace(result, output=empty)

    # -- sweeps ------------------------------------------------------------
    def sweep(self, grid: ScenarioGrid,
              stimulus: Callable[[Dict], Waveform], *,
              measure: Optional[Callable[[WaveformBatch, List[Dict]],
                                         Sequence]] = None,
              processes: Optional[int] = None,
              chunk_rows: Optional[int] = None,
              serial: bool = False,
              checkpoint_dir=None,
              timeout: Optional[float] = None,
              max_attempts: int = 3,
              retry_backoff_s: float = 0.25,
              nan_guard: bool = False,
              on_error: str = "raise",
              reducers: Optional[Dict[str, Any]] = None,
              keep_results: bool = True) -> SweepResult:
        """Execute a scenario grid through the facade.

        Batchable axes ride through the stage chain as one
        :class:`WaveformBatch` per structural point; structural axes
        whose names match config fields (``length_m``,
        ``peaking_enabled``, ``equalizer_enabled``, ...) rebuild the
        chain via :meth:`from_configs`'s retained configs.  The default
        measurement is the session's own :meth:`_analyze`, so each
        scenario's result is a :class:`LinkResult`; pass ``measure`` to
        record something else (it receives the processed batch and the
        scenario parameter dicts).  ``chunk_rows`` bounds memory the
        same way it does for :meth:`run_batch`: each structural point's
        batchable scenarios stream through the chain in row-chunks of
        at most that size, row-exact vs the monolithic pass.
        ``serial=True`` runs the per-waveform reference loop instead of
        the batched engine.

        The remaining knobs are :class:`SweepRunner`'s reliability
        layer, passed through verbatim: ``checkpoint_dir`` journals
        finished units for bit-exact resume, ``timeout`` /
        ``max_attempts`` / ``retry_backoff_s`` bound and retry pool
        units, ``nan_guard`` flags non-finite measurements, and
        ``on_error="quarantine"`` records persistent failures on
        ``SweepResult.failures`` instead of raising.  (Note the default
        measurement is a local closure and therefore unpicklable — pass
        an importable ``measure`` to combine ``processes > 1`` with the
        pool.)

        ``reducers`` streams aggregation through the facade: a mapping
        of name → :class:`~repro.sweep.reducers.Reducer` folded online
        over every measured scenario (with the default measurement,
        each reducer's ``extract`` sees a :class:`LinkResult` — e.g.
        ``MeanVar(extract=lambda r, p: r.eye.eye_height)``), finalized
        onto ``SweepResult.aggregates``.  Add ``keep_results=False``
        to drop the dense per-row results entirely — the
        million-scenario yield-study mode, where supervisor memory
        stays flat in scenario count (see ``examples/yield_study.py``).
        """
        for axis in grid.axes:
            if axis.name == "modulation" and not axis.structural:
                raise ValueError(
                    "a 'modulation' axis must be structural=True: it "
                    "changes the slicer alphabet and eye analysis, not "
                    "just the stimulus"
                )
        if measure is None:
            session_modulation = self.modulation

            def measure(out: WaveformBatch, params: List[Dict]):
                mod = (params[0].get("modulation", session_modulation)
                       if params else session_modulation)
                return self._analyze(out, modulation=mod).rows()
        runner = SweepRunner(grid, stimulus=stimulus,
                             build=self._builder_for(grid),
                             measure_batch=measure, processes=processes,
                             chunk_rows=chunk_rows, timeout=timeout,
                             max_attempts=max_attempts,
                             retry_backoff_s=retry_backoff_s,
                             nan_guard=nan_guard, on_error=on_error,
                             reducers=reducers, keep_results=keep_results)
        if serial:
            return runner.run_serial()
        return runner.run(checkpoint_dir=checkpoint_dir)

    def _builder_for(self, grid: ScenarioGrid):
        structural = [axis.name for axis in grid.structural_axes()]
        if not structural and not self.stages:
            return None
        if not structural:
            return lambda _params: self.process
        if self._configs is None:
            raise ValueError(
                f"structural axes {structural} need a session built by "
                "LinkSession.from_configs (configs are required to "
                "rebuild the chain)"
            )
        return self._rebuild_processor

    def _rebuild_processor(self, structural_params: Dict):
        """A processor for one structural point: the configs with the
        matching fields replaced, rebuilt into a fresh stage chain."""
        tx, channel, rx = self._configs
        used = set()

        def override(config):
            if config is None:
                return None
            names = {field.name for field in dataclasses.fields(config)}
            hits = {key: value for key, value in structural_params.items()
                    if key in names}
            used.update(hits)
            return dataclasses.replace(config, **hits) if hits else config

        blocks, _ = self._build_chain(override(tx), override(channel),
                                      override(rx), self.bit_rate)
        unknown = set(structural_params) - used
        if unknown:
            raise KeyError(
                f"structural parameters {sorted(unknown)} match no field "
                "of the session's tx/channel/rx configs"
            )
        stages = tuple(stage(block) for block in blocks)

        def processor(signal):
            batch, was_single = _lift(signal)
            return _lower(_run_stages(stages, batch), was_single)

        return processor

    # -- framed link -------------------------------------------------------
    def run_framed(self, payload: bytes, *,
                   fanout: Optional[Callable[[Waveform], Any]] = None,
                   samples_per_bit: int = 16, amplitude: float = 0.25,
                   training_commas: int = 40, training_bytes: int = 8,
                   use_last_comma: bool = False
                   ) -> "LinkReport | LinkBatchReport":
        """8b/10b framed transport through the session's stages.

        The payload is serialized once; ``fanout`` (e.g.
        ``lambda w: WaveformBatch.with_noise_seeds(w, rms, seeds)``)
        optionally expands it to N scenarios before the analog chain.
        Returns a :class:`~repro.serdes.LinkReport` without fan-out, a
        :class:`~repro.serdes.LinkBatchReport` with it.
        """
        def path(wave: Waveform):
            signal = fanout(wave) if fanout is not None else wave
            return self.process(signal)

        return run_framed_link(
            payload, path, bit_rate=self.bit_rate,
            samples_per_bit=samples_per_bit, amplitude=amplitude,
            cdr=self.cdr_config, training_commas=training_commas,
            training_bytes=training_bytes, use_last_comma=use_last_comma,
        )


def run_framed_link(payload: bytes,
                    path: Optional[Callable[[Waveform], Any]] = None, *,
                    bit_rate: float = 10e9, samples_per_bit: int = 16,
                    amplitude: float = 0.25, cdr_kp: float = 4e-3,
                    cdr: Optional[CdrConfig] = None,
                    training_commas: int = 40, training_bytes: int = 8,
                    use_last_comma: bool = False
                    ) -> "LinkReport | LinkBatchReport":
    """The one dispatching framed-link runner.

    Serializes the payload once (commas + settle pad), applies ``path``
    (any waveform transform; it may fan one waveform out to a
    :class:`WaveformBatch` of scenarios), recovers every scenario with
    one batched CDR pass, and comma-aligns/decodes each row.  A path
    returning a single :class:`Waveform` yields a
    :class:`~repro.serdes.LinkReport`; a batch yields a
    :class:`~repro.serdes.LinkBatchReport` whose row ``i`` equals the
    single-scenario run of that row.  Replaces the old paired
    ``run_link``/``run_link_batch`` entry points.
    """
    wave = _serialize_payload(payload, bit_rate, samples_per_bit, amplitude,
                              training_commas, training_bytes)
    received = path(wave) if path is not None else wave
    was_single = isinstance(received, Waveform)
    if was_single:
        received = _lift(received)[0]
    if not isinstance(received, WaveformBatch):
        raise TypeError(
            f"path must return a Waveform or WaveformBatch, got "
            f"{type(received).__name__}"
        )
    config = cdr if cdr is not None else CdrConfig(bit_rate=bit_rate,
                                                   kp=cdr_kp)
    result = BangBangCdr(config)._recover_batch(received)
    deserializer = Deserializer(use_last_comma=use_last_comma)
    reports = [
        _report_from_cdr(payload, result.row(i), deserializer,
                         training_bytes)
        for i in range(result.n_scenarios)
    ]
    batch_report = LinkBatchReport(reports=reports)
    return batch_report[0] if was_single else batch_report
