"""AC coupling and baseline wander.

Backplane links of the paper's class are AC-coupled: series capacitors
between the driver and the receiver block the DC level, forming a
high-pass with the 50-ohm termination:

    f_hp = 1 / (2 pi (R_term) C_couple)

DC-unbalanced data then droops ("baseline wander") across long runs —
the system-level reason 8b/10b coding (bounded disparity) exists, and a
constraint the receive path's offset-cancellation corner must respect.
This block models the coupling network so those interactions can be
simulated rather than asserted.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..signals.waveform import Waveform
from .blocks import Block
from .discretize import simulate_tf
from .transfer_function import RationalTF

__all__ = ["AcCoupling", "worst_case_wander_fraction"]


@dataclasses.dataclass
class AcCoupling(Block):
    """A series coupling capacitor into a resistive termination.

    Parameters
    ----------
    capacitance:
        The coupling capacitor (typically 10-100 nF on a backplane).
    termination:
        The resistance the capacitor drives (50 ohm single-ended;
        100 ohm differential uses the differential value).
    """

    capacitance: float = 100e-9
    termination: float = 50.0
    name: str = "ac-coupling"

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ValueError(
                f"capacitance must be positive, got {self.capacitance}"
            )
        if self.termination <= 0:
            raise ValueError(
                f"termination must be positive, got {self.termination}"
            )

    @property
    def highpass_corner_hz(self) -> float:
        """The coupling high-pass corner 1/(2 pi R C)."""
        return 1.0 / (2.0 * math.pi * self.termination * self.capacitance)

    def transfer_function(self) -> RationalTF:
        """H(s) = sRC / (1 + sRC)."""
        rc = self.termination * self.capacitance
        return RationalTF(np.array([rc, 0.0]), np.array([rc, 1.0]))

    def process(self, wave: Waveform) -> Waveform:
        """Apply the coupling high-pass.

        For corners far below the simulation window the droop per run is
        applied analytically per sample via the exact first-order
        recursion (the bilinear filter would need astronomically long
        warm-up); the recursion *is* the exact solution, so this is not
        an approximation.
        """
        corner = self.highpass_corner_hz
        # Exact recursive high-pass: y[n] = a(y[n-1] + x[n] - x[n-1]).
        a = math.exp(-2.0 * math.pi * corner / wave.sample_rate)
        if a > 1.0 - 1e-12:
            # Corner so low the window sees no droop: passthrough minus
            # the initial DC (the capacitor charges to the idle level).
            return wave.with_data(wave.data - wave.data[0])
        tf = self.transfer_function()
        out = simulate_tf(tf, wave.data, wave.sample_rate)
        return wave.with_data(out)

    def droop_over(self, run_seconds: float) -> float:
        """Fractional amplitude droop across a constant run."""
        if run_seconds < 0:
            raise ValueError(f"run must be >= 0, got {run_seconds}")
        return 1.0 - math.exp(-2.0 * math.pi * self.highpass_corner_hz
                              * run_seconds)


def worst_case_wander_fraction(coupling: AcCoupling, bit_rate: float,
                               max_run_bits: int) -> float:
    """Baseline wander for a coding scheme's worst run.

    8b/10b bounds runs at 5 bits; an uncoded PRBS31 can run 31 bits; a
    pathological payload can run arbitrarily long.  This helper turns a
    coding choice into a wander budget number.
    """
    if bit_rate <= 0:
        raise ValueError(f"bit_rate must be positive, got {bit_rate}")
    if max_run_bits < 1:
        raise ValueError(f"max_run_bits must be >= 1, got {max_run_bits}")
    return coupling.droop_over(max_run_bits / bit_rate)
