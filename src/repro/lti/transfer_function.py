"""Rational transfer functions in the Laplace domain.

This is the library's replacement for SPICE AC analysis: every linear
circuit block (equalizer, CML buffer, channel approximations, offset
loop) reduces to a :class:`RationalTF` — a ratio of polynomials in *s* —
and the algebra here (cascade, parallel, feedback) composes blocks the
way the paper's Section III composes stages.

Polynomials are stored as numpy coefficient arrays in *descending*
powers of *s*, matching :func:`numpy.polyval`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = ["RationalTF", "first_order_lowpass", "second_order_lowpass",
           "pole_zero_tf"]


def _trim(coeffs: np.ndarray) -> np.ndarray:
    """Strip leading (highest-order) zeros, keeping at least one term."""
    coeffs = np.atleast_1d(np.asarray(coeffs, dtype=float))
    nonzero = np.flatnonzero(coeffs)
    if nonzero.size == 0:
        return np.zeros(1)
    return coeffs[nonzero[0]:]


@dataclasses.dataclass(frozen=True)
class RationalTF:
    """A transfer function ``H(s) = num(s) / den(s)``.

    Parameters
    ----------
    num, den:
        Polynomial coefficients in descending powers of *s*.  The
        denominator must not be the zero polynomial.
    """

    num: np.ndarray
    den: np.ndarray

    def __post_init__(self) -> None:
        num = _trim(self.num)
        den = _trim(self.den)
        if not np.any(den):
            raise ValueError("denominator polynomial is zero")
        # Normalize so the denominator's leading coefficient is 1; this
        # makes equality checks and discretization numerically stable.
        lead = den[0]
        object.__setattr__(self, "num", num / lead)
        object.__setattr__(self, "den", den / lead)

    # -- constructors -----------------------------------------------------
    @classmethod
    def constant(cls, gain: float) -> "RationalTF":
        """A frequency-independent gain."""
        return cls(np.array([float(gain)]), np.array([1.0]))

    @classmethod
    def integrator(cls, gain: float = 1.0) -> "RationalTF":
        """``gain / s`` — used by feedback-loop analyses."""
        return cls(np.array([float(gain)]), np.array([1.0, 0.0]))

    @classmethod
    def differentiator(cls, gain: float = 1.0) -> "RationalTF":
        """``gain * s`` — ideal differentiator."""
        return cls(np.array([float(gain), 0.0]), np.array([1.0]))

    @classmethod
    def from_poles_zeros(cls, zeros: Iterable[complex],
                         poles: Iterable[complex],
                         gain: float = 1.0) -> "RationalTF":
        """Build from explicit pole/zero locations (rad/s, complex).

        ``gain`` multiplies the monic rational; complex roots must come in
        conjugate pairs for the result to be real (enforced by discarding
        the negligible imaginary residue after polynomial expansion).
        """
        num = np.atleast_1d(np.poly(list(zeros))) * gain
        den = np.atleast_1d(np.poly(list(poles)))
        num_real = np.real_if_close(num, tol=1e6)
        den_real = np.real_if_close(den, tol=1e6)
        if np.iscomplexobj(num_real) or np.iscomplexobj(den_real):
            raise ValueError(
                "complex poles/zeros must come in conjugate pairs"
            )
        return cls(num_real.astype(float), den_real.astype(float))

    # -- algebra ------------------------------------------------------------
    def cascade(self, other: "RationalTF") -> "RationalTF":
        """Series connection: ``H = H1 * H2`` (buffered stages)."""
        return RationalTF(np.polymul(self.num, other.num),
                          np.polymul(self.den, other.den))

    __mul__ = cascade

    def parallel(self, other: "RationalTF") -> "RationalTF":
        """Parallel (summing) connection: ``H = H1 + H2``."""
        num = np.polyadd(np.polymul(self.num, other.den),
                         np.polymul(other.num, self.den))
        return RationalTF(num, np.polymul(self.den, other.den))

    __add__ = parallel

    def __sub__(self, other: "RationalTF") -> "RationalTF":
        return self.parallel(other.scaled(-1.0))

    def scaled(self, gain: float) -> "RationalTF":
        """Multiply by a frequency-independent gain."""
        return RationalTF(self.num * float(gain), self.den)

    def feedback(self, loop: "RationalTF | None" = None) -> "RationalTF":
        """Closed loop with negative feedback: ``H / (1 + H * G)``.

        With ``loop=None`` the feedback is unity.  This is the form used
        to close the DC-offset-cancellation loop around the limiting
        amplifier and the active-feedback loop inside Cherry-Hooper
        stages.
        """
        if loop is None:
            loop = RationalTF.constant(1.0)
        open_num = np.polymul(self.num, loop.den)
        den = np.polyadd(np.polymul(self.den, loop.den),
                         np.polymul(self.num, loop.num))
        return RationalTF(open_num, den)

    def inverse(self) -> "RationalTF":
        """``1 / H`` — only valid when the numerator is nonzero."""
        if not np.any(self.num):
            raise ValueError("cannot invert a zero transfer function")
        return RationalTF(self.den, self.num)

    # -- inspection ----------------------------------------------------------
    @property
    def order(self) -> int:
        """Denominator order (number of poles)."""
        return len(self.den) - 1

    def poles(self) -> np.ndarray:
        """Pole locations in rad/s (complex)."""
        if len(self.den) <= 1:
            return np.array([], dtype=complex)
        return np.roots(self.den)

    def zeros(self) -> np.ndarray:
        """Zero locations in rad/s (complex)."""
        if len(self.num) <= 1:
            return np.array([], dtype=complex)
        return np.roots(self.num)

    def is_stable(self) -> bool:
        """True when every pole lies strictly in the left half plane."""
        poles = self.poles()
        if poles.size == 0:
            return True
        return bool(np.all(poles.real < 0))

    def dc_gain(self) -> float:
        """H(0).  Raises if the TF has a pole at the origin."""
        den0 = self.den[-1]
        if den0 == 0:
            raise ZeroDivisionError("transfer function has a pole at s = 0")
        return float(self.num[-1] / den0)

    # -- frequency response ---------------------------------------------------
    def response(self, freq_hz: np.ndarray) -> np.ndarray:
        """Complex frequency response H(j 2*pi*f) at the given frequencies."""
        s = 2j * np.pi * np.asarray(freq_hz, dtype=float)
        return np.polyval(self.num, s) / np.polyval(self.den, s)

    def magnitude_db(self, freq_hz: np.ndarray) -> np.ndarray:
        """Magnitude response in dB."""
        mag = np.abs(self.response(freq_hz))
        return 20.0 * np.log10(np.maximum(mag, 1e-300))

    def phase_deg(self, freq_hz: np.ndarray) -> np.ndarray:
        """Unwrapped phase response in degrees."""
        return np.degrees(np.unwrap(np.angle(self.response(freq_hz))))

    def group_delay(self, freq_hz: np.ndarray) -> np.ndarray:
        """Group delay in seconds, -d(phase)/d(omega), by finite differences."""
        freq_hz = np.asarray(freq_hz, dtype=float)
        if freq_hz.size < 2:
            raise ValueError("group delay needs at least two frequency points")
        phase = np.unwrap(np.angle(self.response(freq_hz)))
        omega = 2.0 * np.pi * freq_hz
        return -np.gradient(phase, omega)

    def bandwidth_3db(self, f_max: float = 100e9,
                      reference_hz: float = 0.0) -> float:
        """The -3 dB bandwidth relative to the response at ``reference_hz``.

        Scans log-spaced frequencies up to ``f_max`` for the first
        crossing below ``|H(ref)| / sqrt(2)`` and refines it by bisection.
        Returns ``math.inf`` if no crossing is found below ``f_max``.
        """
        if reference_hz == 0.0:
            ref_mag = abs(self.dc_gain())
        else:
            ref_mag = float(abs(self.response(np.array([reference_hz]))[0]))
        if ref_mag == 0:
            raise ValueError("reference gain is zero; -3 dB point undefined")
        target = ref_mag / math.sqrt(2.0)

        freqs = np.logspace(5, math.log10(f_max), 2400)
        mags = np.abs(self.response(freqs))
        below = np.flatnonzero(mags < target)
        if below.size == 0:
            return math.inf
        hi_idx = below[0]
        if hi_idx == 0:
            return freqs[0]
        lo, hi = freqs[hi_idx - 1], freqs[hi_idx]
        for _ in range(60):
            mid = math.sqrt(lo * hi)
            mag = abs(self.response(np.array([mid]))[0])
            if mag < target:
                hi = mid
            else:
                lo = mid
        return math.sqrt(lo * hi)

    def peaking_db(self, f_max: float = 100e9) -> float:
        """Peak magnitude above the DC gain, in dB (0 when monotone).

        Inductive peaking shows up as a bump before roll-off; the paper's
        Fig 7(b) sweeps exactly this quantity via the PMOS load size.
        """
        dc = abs(self.dc_gain())
        if dc == 0:
            raise ValueError("DC gain is zero; peaking undefined")
        freqs = np.logspace(5, math.log10(f_max), 2400)
        peak = float(np.max(np.abs(self.response(freqs))))
        return max(0.0, 20.0 * math.log10(peak / dc))

    def __repr__(self) -> str:
        num = np.array2string(self.num, precision=4)
        den = np.array2string(self.den, precision=4)
        return f"RationalTF(num={num}, den={den})"


def first_order_lowpass(pole_hz: float, gain: float = 1.0) -> RationalTF:
    """``gain / (1 + s/wp)`` — the single-pole building block."""
    if pole_hz <= 0:
        raise ValueError(f"pole frequency must be positive, got {pole_hz}")
    wp = 2.0 * np.pi * pole_hz
    return RationalTF(np.array([gain]), np.array([1.0 / wp, 1.0]))


def second_order_lowpass(natural_hz: float, q: float,
                         gain: float = 1.0) -> RationalTF:
    """``gain * wn^2 / (s^2 + wn/Q s + wn^2)``.

    The canonical resonant low-pass; active feedback turns a cascade of
    two real poles into this form with Q set by the loop gain, which is
    how Cherry-Hooper stages extend bandwidth.
    """
    if natural_hz <= 0:
        raise ValueError(f"natural frequency must be positive, got {natural_hz}")
    if q <= 0:
        raise ValueError(f"Q must be positive, got {q}")
    wn = 2.0 * np.pi * natural_hz
    return RationalTF(np.array([gain * wn**2]),
                      np.array([1.0, wn / q, wn**2]))


def pole_zero_tf(pole_hz: Sequence[float], zero_hz: Sequence[float] = (),
                 gain: float = 1.0) -> RationalTF:
    """Build a TF from real pole/zero frequencies in Hz with DC gain ``gain``.

    Each entry contributes ``(1 + s/w)`` so that the DC gain equals
    ``gain`` exactly regardless of the pole/zero placement.
    """
    num = np.array([float(gain)])
    den = np.array([1.0])
    for fz in zero_hz:
        if fz <= 0:
            raise ValueError(f"zero frequency must be positive, got {fz}")
        num = np.polymul(num, np.array([1.0 / (2 * np.pi * fz), 1.0]))
    for fp in pole_hz:
        if fp <= 0:
            raise ValueError(f"pole frequency must be positive, got {fp}")
        den = np.polymul(den, np.array([1.0 / (2 * np.pi * fp), 1.0]))
    return RationalTF(num, den)
