"""Continuous-to-discrete conversion and time-domain filtering.

SPICE integrates circuit ODEs with adaptive timesteps; our substitute is
the bilinear (Tustin) transform, which maps a rational H(s) onto a
digital IIR filter that is exact at DC, preserves stability, and is
accurate well past the signal band when the waveform is oversampled
(the library's NRZ default of 32 samples/bit puts the 10 Gb/s Nyquist
at 160 GHz, far above every circuit pole we model).

The bilinear transform itself is implemented from scratch (it is the
substrate this library owes its transient results to); the inner
direct-form filtering loop is delegated to :func:`scipy.signal.lfilter`
purely as a vectorized kernel.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.signal import lfilter

from .transfer_function import RationalTF

__all__ = ["bilinear_transform", "simulate_tf", "impulse_response",
           "step_response"]


def bilinear_transform(tf: RationalTF, sample_rate: float,
                       prewarp_hz: float | None = None
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Map ``H(s)`` to digital filter coefficients ``(b, a)`` via Tustin.

    Substitutes ``s = k (z - 1)/(z + 1)`` with ``k = 2 fs`` (or the
    prewarped value matching the analog response exactly at
    ``prewarp_hz``).  Returns numerator/denominator coefficient arrays in
    descending powers of ``z^-1``, normalized so ``a[0] = 1``.

    The expansion is done with polynomial algebra: writing
    ``num(s) = sum c_i s^i``, each power ``s^i`` becomes
    ``k^i (z-1)^i (z+1)^(n-i)`` over the common denominator
    ``(z+1)^n`` where ``n`` is the TF order, so both digital polynomials
    are sums of binomial convolutions.
    """
    if sample_rate <= 0:
        raise ValueError(f"sample_rate must be positive, got {sample_rate}")
    if prewarp_hz is None:
        k = 2.0 * sample_rate
    else:
        if prewarp_hz <= 0:
            raise ValueError(f"prewarp_hz must be positive, got {prewarp_hz}")
        omega = 2.0 * np.pi * prewarp_hz
        if omega >= np.pi * sample_rate:
            raise ValueError(
                "prewarp frequency must be below Nyquist "
                f"({sample_rate / 2:.3g} Hz), got {prewarp_hz:.3g} Hz"
            )
        k = omega / np.tan(omega / (2.0 * sample_rate))

    num_s = np.atleast_1d(tf.num)
    den_s = np.atleast_1d(tf.den)
    n = max(len(num_s), len(den_s)) - 1  # overall order

    z_plus = np.array([1.0, 1.0])    # (z + 1) in descending powers of z
    z_minus = np.array([1.0, -1.0])  # (z - 1)

    def expand(poly_s: np.ndarray) -> np.ndarray:
        """Expand poly(s) over the common (z+1)^n denominator."""
        result = np.zeros(n + 1)
        order = len(poly_s) - 1
        for idx, coeff in enumerate(poly_s):
            power = order - idx  # power of s this coefficient multiplies
            if coeff == 0.0:
                continue
            term = np.array([coeff * (k**power)])
            for _ in range(power):
                term = np.polymul(term, z_minus)
            for _ in range(n - power):
                term = np.polymul(term, z_plus)
            result = np.polyadd(result, term)
        return result

    b = expand(num_s)
    a = expand(den_s)
    if a[0] == 0:
        raise ValueError("bilinear transform produced a degenerate filter")
    return b / a[0], a / a[0]


def simulate_tf(tf: RationalTF, data: np.ndarray, sample_rate: float,
                prewarp_hz: float | None = None,
                initial_value: float | None = None) -> np.ndarray:
    """Filter ``data`` through ``tf`` discretized at ``sample_rate``.

    ``initial_value`` sets the assumed constant input level before the
    first sample so filters start in steady state instead of ringing at
    t=0 (a link idles at a constant differential level before the
    pattern starts).  Defaults to the first data sample.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 1:
        raise ValueError(f"data must be 1-D, got shape {data.shape}")
    if data.size == 0:
        return data.copy()
    b, a = bilinear_transform(tf, sample_rate, prewarp_hz=prewarp_hz)
    x0 = float(data[0]) if initial_value is None else float(initial_value)
    # Steady-state warm-up: prepend a constant segment long enough for the
    # slowest filter mode to settle, then cut it off.
    y = _steady_state_lfilter(b, a, data, x0, tf, sample_rate)
    return y


def _steady_state_lfilter(b: np.ndarray, a: np.ndarray, data: np.ndarray,
                          x0: float, tf: RationalTF,
                          sample_rate: float) -> np.ndarray:
    """lfilter with initial conditions matching a constant input ``x0``."""
    from scipy.signal import lfilter_zi

    try:
        zi = lfilter_zi(b, a) * x0
    except (ValueError, np.linalg.LinAlgError):
        # Degenerate cases (pure gain, pole at z=1 from an s=0 pole):
        # fall back to an explicit warm-up run.
        n_warm = _settle_samples(tf, sample_rate)
        warm = np.full(n_warm, x0)
        y_all = lfilter(b, a, np.concatenate([warm, data]))
        return np.asarray(y_all[n_warm:])
    y, _ = lfilter(b, a, data, zi=zi)
    return np.asarray(y)


def _settle_samples(tf: RationalTF, sample_rate: float,
                    settle_factor: float = 10.0) -> int:
    """Number of samples for the slowest stable pole to settle."""
    poles = tf.poles()
    stable = poles[poles.real < 0]
    if stable.size == 0:
        return 16
    slowest_tau = 1.0 / np.min(np.abs(stable.real))
    n = int(np.ceil(settle_factor * slowest_tau * sample_rate))
    return int(np.clip(n, 16, 2_000_000))


def impulse_response(tf: RationalTF, sample_rate: float,
                     duration: float) -> np.ndarray:
    """Discrete-time impulse response (scaled by fs to approximate h(t))."""
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    n = max(2, int(round(duration * sample_rate)))
    impulse = np.zeros(n)
    impulse[0] = sample_rate  # unit-area discrete impulse
    b, a = bilinear_transform(tf, sample_rate)
    return np.asarray(lfilter(b, a, impulse))


def step_response(tf: RationalTF, sample_rate: float,
                  duration: float) -> np.ndarray:
    """Unit step response of the transfer function."""
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    n = max(2, int(round(duration * sample_rate)))
    step = np.ones(n)
    b, a = bilinear_transform(tf, sample_rate)
    return np.asarray(lfilter(b, a, step))
