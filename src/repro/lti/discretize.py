"""Continuous-to-discrete conversion and time-domain filtering.

SPICE integrates circuit ODEs with adaptive timesteps; our substitute is
the bilinear (Tustin) transform, which maps a rational H(s) onto a
digital IIR filter that is exact at DC, preserves stability, and is
accurate well past the signal band when the waveform is oversampled
(the library's NRZ default of 32 samples/bit puts the 10 Gb/s Nyquist
at 160 GHz, far above every circuit pole we model).

The bilinear transform itself is implemented from scratch (it is the
substrate this library owes its transient results to); the inner
direct-form filtering loop is delegated to :func:`scipy.signal.lfilter`
purely as a vectorized kernel.

Two properties matter for multi-scenario throughput:

* discretization is **memoized** — coefficient sets are keyed on the
  analog coefficients, the sample rate and the prewarp frequency, so a
  pipeline re-simulated across thousands of scenarios derives each
  digital filter once;
* filtering is **batched** — :func:`simulate_tf` accepts a 2-D
  ``(n_scenarios, n_samples)`` array and runs one ``lfilter`` call over
  the last axis with per-row steady-state initial conditions, which is
  what makes :class:`~repro.signals.batch.WaveformBatch` pipelines fast.
"""

from __future__ import annotations

import functools
from typing import Tuple

import numpy as np
from scipy.signal import lfilter, lfilter_zi

from .transfer_function import RationalTF

__all__ = ["bilinear_transform", "simulate_tf", "impulse_response",
           "step_response"]


@functools.lru_cache(maxsize=128)
def _binomial_cross_table(n: int) -> np.ndarray:
    """Rows of ``(z-1)^p (z+1)^(n-p)`` for ``p = 0..n``, degree ``n`` each.

    Built once per transfer-function order and cached: the bilinear
    expansion of any order-``n`` polynomial is then a weighted sum of
    these rows instead of a fresh O(n^2) chain of ``np.polymul`` calls
    per coefficient.
    """
    z_plus = np.array([1.0, 1.0])    # (z + 1) in descending powers of z
    z_minus = np.array([1.0, -1.0])  # (z - 1)
    minus_powers = [np.ones(1)]
    plus_powers = [np.ones(1)]
    for _ in range(n):
        minus_powers.append(np.polymul(minus_powers[-1], z_minus))
        plus_powers.append(np.polymul(plus_powers[-1], z_plus))
    table = np.stack([np.polymul(minus_powers[p], plus_powers[n - p])
                      for p in range(n + 1)])
    table.setflags(write=False)
    return table


@functools.lru_cache(maxsize=4096)
def _bilinear_cached(num: Tuple[float, ...], den: Tuple[float, ...],
                     k: float) -> Tuple[np.ndarray, np.ndarray]:
    """Normalized digital ``(b, a)`` for Tustin with substitution gain ``k``.

    The returned arrays are shared cache entries and marked read-only.
    """
    num_s = np.asarray(num)
    den_s = np.asarray(den)
    n = max(len(num_s), len(den_s)) - 1  # overall order
    table = _binomial_cross_table(n)

    def expand(poly_s: np.ndarray) -> np.ndarray:
        """Expand poly(s) over the common (z+1)^n denominator."""
        order = len(poly_s) - 1
        powers = order - np.arange(len(poly_s))  # power of s per coefficient
        weights = poly_s * (k ** powers.astype(float))
        return weights @ table[powers]

    b = expand(num_s)
    a = expand(den_s)
    if a[0] == 0:
        raise ValueError("bilinear transform produced a degenerate filter")
    b, a = b / a[0], a / a[0]
    b.setflags(write=False)
    a.setflags(write=False)
    return b, a


def bilinear_transform(tf: RationalTF, sample_rate: float,
                       prewarp_hz: float | None = None
                       ) -> Tuple[np.ndarray, np.ndarray]:
    """Map ``H(s)`` to digital filter coefficients ``(b, a)`` via Tustin.

    Substitutes ``s = k (z - 1)/(z + 1)`` with ``k = 2 fs`` (or the
    prewarped value matching the analog response exactly at
    ``prewarp_hz``).  Returns numerator/denominator coefficient arrays in
    descending powers of ``z^-1``, normalized so ``a[0] = 1``.

    The expansion is done with polynomial algebra: writing
    ``num(s) = sum c_i s^i``, each power ``s^i`` becomes
    ``k^i (z-1)^i (z+1)^(n-i)`` over the common denominator
    ``(z+1)^n`` where ``n`` is the TF order, so both digital polynomials
    are weighted sums of rows from a per-order binomial product table.

    Results are memoized on ``(tf coefficients, sample_rate, prewarp)``;
    the returned arrays are shared and read-only.
    """
    if sample_rate <= 0:
        raise ValueError(f"sample_rate must be positive, got {sample_rate}")
    if prewarp_hz is None:
        k = 2.0 * sample_rate
    else:
        if prewarp_hz <= 0:
            raise ValueError(f"prewarp_hz must be positive, got {prewarp_hz}")
        omega = 2.0 * np.pi * prewarp_hz
        if omega >= np.pi * sample_rate:
            raise ValueError(
                "prewarp frequency must be below Nyquist "
                f"({sample_rate / 2:.3g} Hz), got {prewarp_hz:.3g} Hz"
            )
        k = omega / np.tan(omega / (2.0 * sample_rate))

    num_s = np.atleast_1d(tf.num)
    den_s = np.atleast_1d(tf.den)
    return _bilinear_cached(tuple(num_s), tuple(den_s), float(k))


def simulate_tf(tf: RationalTF, data: np.ndarray, sample_rate: float,
                prewarp_hz: float | None = None,
                initial_value: float | np.ndarray | None = None
                ) -> np.ndarray:
    """Filter ``data`` through ``tf`` discretized at ``sample_rate``.

    ``data`` may be 1-D (one waveform) or 2-D ``(n_scenarios,
    n_samples)``; a 2-D input is filtered along the last axis in a single
    vectorized pass, each row initialized independently.

    ``initial_value`` sets the assumed constant input level before the
    first sample so filters start in steady state instead of ringing at
    t=0 (a link idles at a constant differential level before the
    pattern starts).  Defaults to the first data sample (per row for 2-D
    input); an array of per-row values is accepted for batches.
    """
    data = np.asarray(data, dtype=float)
    if data.ndim not in (1, 2):
        raise ValueError(
            f"data must be 1-D or 2-D (batch), got shape {data.shape}"
        )
    if data.size == 0:
        return data.copy()
    b, a = bilinear_transform(tf, sample_rate, prewarp_hz=prewarp_hz)
    if initial_value is None:
        x0 = np.asarray(data[..., 0], dtype=float)
    else:
        x0 = np.broadcast_to(np.asarray(initial_value, dtype=float),
                             data.shape[:-1])
    # Steady-state warm-up: initial filter state matching a constant
    # input at x0, or an explicit warm-up run when no such state exists.
    return _steady_state_lfilter(b, a, data, x0, tf, sample_rate)


@functools.lru_cache(maxsize=4096)
def _lfilter_zi_cached(b_key: bytes, a_key: bytes,
                       n: int) -> np.ndarray:
    """Unit-step-state ``lfilter_zi`` memoized on the coefficient bytes."""
    b = np.frombuffer(b_key, dtype=float, count=n)
    a = np.frombuffer(a_key, dtype=float)
    zi = lfilter_zi(b, a)
    zi.setflags(write=False)
    return zi


def _steady_state_lfilter(b: np.ndarray, a: np.ndarray, data: np.ndarray,
                          x0: np.ndarray, tf: RationalTF,
                          sample_rate: float) -> np.ndarray:
    """lfilter with initial conditions matching a constant input ``x0``.

    Works on 1-D data (scalar ``x0``) and on 2-D batches (``x0`` of
    shape ``(n_scenarios,)`` giving per-row initial conditions).
    """
    try:
        zi_unit = _lfilter_zi_cached(b.tobytes(), a.tobytes(), len(b))
    except (ValueError, np.linalg.LinAlgError):
        # Degenerate cases (pure gain, pole at z=1 from an s=0 pole):
        # fall back to an explicit warm-up run.
        n_warm = _settle_samples(tf, sample_rate)
        warm = np.broadcast_to(x0[..., np.newaxis],
                               data.shape[:-1] + (n_warm,))
        y_all = lfilter(b, a, np.concatenate([warm, data], axis=-1),
                        axis=-1)
        return np.asarray(y_all[..., n_warm:])
    zi = zi_unit * x0[..., np.newaxis]
    y, _ = lfilter(b, a, data, axis=-1, zi=zi)
    return np.asarray(y)


def _settle_samples(tf: RationalTF, sample_rate: float,
                    settle_factor: float = 10.0) -> int:
    """Number of samples for the slowest stable pole to settle."""
    poles = tf.poles()
    stable = poles[poles.real < 0]
    if stable.size == 0:
        return 16
    slowest_tau = 1.0 / np.min(np.abs(stable.real))
    n = int(np.ceil(settle_factor * slowest_tau * sample_rate))
    return int(np.clip(n, 16, 2_000_000))


def impulse_response(tf: RationalTF, sample_rate: float,
                     duration: float,
                     prewarp_hz: float | None = None) -> np.ndarray:
    """Discrete-time impulse response (scaled by fs to approximate h(t)).

    Routed through :func:`simulate_tf` with a zero pre-history, so the
    result is consistent with transient simulations even for transfer
    functions whose ``lfilter_zi`` is degenerate (e.g. an s=0 pole).
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    n = max(2, int(round(duration * sample_rate)))
    impulse = np.zeros(n)
    impulse[0] = sample_rate  # unit-area discrete impulse
    return simulate_tf(tf, impulse, sample_rate, prewarp_hz=prewarp_hz,
                       initial_value=0.0)


def step_response(tf: RationalTF, sample_rate: float,
                  duration: float,
                  prewarp_hz: float | None = None) -> np.ndarray:
    """Unit step response of the transfer function.

    The input is held at zero before t=0 (the same steady-state
    initialization as :func:`simulate_tf`), so the step transient agrees
    with a transient simulation of the same 0-to-1 input.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    n = max(2, int(round(duration * sample_rate)))
    step = np.ones(n)
    return simulate_tf(tf, step, sample_rate, prewarp_hz=prewarp_hz,
                       initial_value=0.0)
