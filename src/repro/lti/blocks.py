"""Composable signal-path blocks and the pipeline simulator.

A circuit in this library is a chain of :class:`Block` objects, each of
which transforms a :class:`~repro.signals.waveform.Waveform`.  Linear
blocks carry a :class:`~repro.lti.transfer_function.RationalTF` and are
simulated by bilinear discretization; nonlinear stages combine linear
dynamics with static nonlinearities (the Wiener-Hammerstein structure),
which captures the dominant behaviour of CML stages: linear pole/zero
dynamics around a tanh-limiting differential pair.

Every block is batch-transparent: passing a
:class:`~repro.signals.batch.WaveformBatch` instead of a single
:class:`~repro.signals.waveform.Waveform` processes all scenarios in one
vectorized pass (the batch mirrors the waveform API, and
:func:`~repro.lti.discretize.simulate_tf` filters 2-D data along the
last axis), with each row numerically identical to its serial run.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..signals.waveform import Waveform
from .discretize import simulate_tf
from .transfer_function import RationalTF

__all__ = [
    "Block",
    "LinearBlock",
    "StaticNonlinearity",
    "TanhLimiter",
    "WienerHammersteinBlock",
    "GainBlock",
    "DelayBlock",
    "SummingNode",
    "Pipeline",
]


class Block(abc.ABC):
    """Anything that maps an input waveform to an output waveform."""

    #: Human-readable label used by pipeline introspection and reports.
    name: str = "block"

    @abc.abstractmethod
    def process(self, wave: Waveform) -> Waveform:
        """Transform the input waveform into the block's output."""

    def transfer_function(self) -> Optional[RationalTF]:
        """Small-signal TF if the block is (locally) linear, else ``None``."""
        return None

    def __call__(self, wave: Waveform) -> Waveform:
        return self.process(wave)


@dataclasses.dataclass
class LinearBlock(Block):
    """A purely linear block defined by a rational transfer function."""

    tf: RationalTF
    name: str = "linear"

    def process(self, wave: Waveform) -> Waveform:
        out = simulate_tf(self.tf, wave.data, wave.sample_rate)
        return wave.with_data(out)

    def transfer_function(self) -> RationalTF:
        return self.tf


@dataclasses.dataclass
class StaticNonlinearity(Block):
    """A memoryless nonlinearity ``y[n] = f(x[n])``."""

    func: Callable[[np.ndarray], np.ndarray]
    name: str = "nonlinearity"

    def process(self, wave: Waveform) -> Waveform:
        return wave.with_data(np.asarray(self.func(wave.data), dtype=float))


@dataclasses.dataclass
class TanhLimiter(Block):
    """The CML differential-pair limiting characteristic.

    A MOS differential pair steers its tail current as a smooth
    saturating function of the input; the canonical behavioral model is
    ``y = limit * tanh(gain * x / limit)``:

    * small-signal slope = ``gain``;
    * output asymptote = ``+-limit`` (half the full differential output
      swing, i.e. a 250 mV pp stage has ``limit = 0.125``).
    """

    gain: float
    limit: float
    name: str = "tanh-limiter"

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise ValueError(f"limit must be positive, got {self.limit}")

    def process(self, wave: Waveform) -> Waveform:
        scaled = (self.gain / self.limit) * wave.data
        return wave.with_data(self.limit * np.tanh(scaled))

    def transfer_function(self) -> RationalTF:
        """Small-signal linearization around zero input."""
        return RationalTF.constant(self.gain)


@dataclasses.dataclass
class WienerHammersteinBlock(Block):
    """Linear dynamics - static nonlinearity - linear dynamics.

    The standard behavioral decomposition of a mildly nonlinear analog
    stage: ``pre`` models the input pole (device capacitance at the
    gate), ``nonlinearity`` the differential-pair limiting, ``post`` the
    load network (where inductive peaking lives).  Either linear section
    may be ``None``.
    """

    nonlinearity: Block
    pre: Optional[RationalTF] = None
    post: Optional[RationalTF] = None
    name: str = "wiener-hammerstein"

    def process(self, wave: Waveform) -> Waveform:
        if self.pre is not None:
            wave = wave.with_data(
                simulate_tf(self.pre, wave.data, wave.sample_rate)
            )
        wave = self.nonlinearity.process(wave)
        if self.post is not None:
            wave = wave.with_data(
                simulate_tf(self.post, wave.data, wave.sample_rate)
            )
        return wave

    def transfer_function(self) -> Optional[RationalTF]:
        inner = self.nonlinearity.transfer_function()
        if inner is None:
            return None
        tf = inner
        if self.pre is not None:
            tf = self.pre.cascade(tf)
        if self.post is not None:
            tf = tf.cascade(self.post)
        return tf


@dataclasses.dataclass
class GainBlock(Block):
    """A frequency-independent gain (ideal wideband amplifier/attenuator)."""

    gain: float
    name: str = "gain"

    def process(self, wave: Waveform) -> Waveform:
        return wave * self.gain

    def transfer_function(self) -> RationalTF:
        return RationalTF.constant(self.gain)


@dataclasses.dataclass
class DelayBlock(Block):
    """An ideal (possibly fractional-sample) pure delay."""

    delay_s: float
    name: str = "delay"

    def __post_init__(self) -> None:
        if self.delay_s < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay_s}")

    def process(self, wave: Waveform) -> Waveform:
        return wave.delayed(self.delay_s)


@dataclasses.dataclass
class SummingNode(Block):
    """Sum the main input with side branches fed from the same input.

    Models current summing at a CML output node: each branch processes a
    copy of the node's input and the results are added with weights.
    The voltage-peaking circuit is exactly this: main path + weighted
    differentiator branch.
    """

    branches: Sequence[Block]
    weights: Optional[Sequence[float]] = None
    include_input: bool = True
    name: str = "summing-node"

    def __post_init__(self) -> None:
        if self.weights is not None and len(self.weights) != len(self.branches):
            raise ValueError(
                f"{len(self.weights)} weights for {len(self.branches)} branches"
            )

    def process(self, wave: Waveform) -> Waveform:
        total = (wave.data.copy() if self.include_input
                 else np.zeros_like(wave.data))
        weights = self.weights or [1.0] * len(self.branches)
        for weight, branch in zip(weights, self.branches):
            total = total + weight * branch.process(wave).data
        return wave.with_data(total)


class Pipeline(Block):
    """A series chain of blocks — the whole signal path of an interface.

    Iterating a pipeline yields its blocks; indexing and ``stages()``
    give access for ablation studies (e.g. rebuilding the input interface
    without its equalizer for Fig 15(a)).
    """

    def __init__(self, blocks: Sequence[Block], name: str = "pipeline"):
        self._blocks: List[Block] = list(blocks)
        self.name = name

    def process(self, wave: Waveform) -> Waveform:
        for block in self._blocks:
            wave = block.process(wave)
        return wave

    def process_tapped(self, wave: Waveform) -> List[Waveform]:
        """Run the chain, returning the waveform after every stage.

        Index 0 is the input; index ``i`` is the output of block ``i-1``.
        Used by benches that plot intermediate nodes (e.g. the signal
        between driver stages where peaking is injected).
        """
        taps = [wave]
        for block in self._blocks:
            wave = block.process(wave)
            taps.append(wave)
        return taps

    def stages(self) -> List[Block]:
        """The blocks in order (a copy; mutating it does not edit the pipe)."""
        return list(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __getitem__(self, index: int) -> Block:
        return self._blocks[index]

    def __iter__(self):
        return iter(self._blocks)

    def transfer_function(self) -> Optional[RationalTF]:
        """Cascade of all stage TFs, or ``None`` if any stage is nonlinear
        without a small-signal linearization."""
        tf = RationalTF.constant(1.0)
        for block in self._blocks:
            stage_tf = block.transfer_function()
            if stage_tf is None:
                return None
            tf = tf.cascade(stage_tf)
        return tf

    def appended(self, *blocks: Block) -> "Pipeline":
        """A new pipeline with extra blocks at the end."""
        return Pipeline(self._blocks + list(blocks), name=self.name)

    def replaced(self, index: int, block: Block) -> "Pipeline":
        """A new pipeline with the block at ``index`` swapped out."""
        stages = list(self._blocks)
        stages[index] = block
        return Pipeline(stages, name=self.name)
