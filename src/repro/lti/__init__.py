"""LTI engine: the library's substitute for SPICE AC + transient analysis.

``RationalTF`` provides the s-domain algebra every linear circuit model
reduces to; ``discretize`` maps those models onto the sampled timebase
via the bilinear transform; ``blocks`` composes linear and nonlinear
stages into full signal paths.
"""

from .transfer_function import (
    RationalTF,
    first_order_lowpass,
    second_order_lowpass,
    pole_zero_tf,
)
from .discretize import (
    bilinear_transform,
    simulate_tf,
    impulse_response,
    step_response,
)
from .blocks import (
    Block,
    LinearBlock,
    StaticNonlinearity,
    TanhLimiter,
    WienerHammersteinBlock,
    GainBlock,
    DelayBlock,
    SummingNode,
    Pipeline,
)
from .coupling import AcCoupling, worst_case_wander_fraction

__all__ = [
    "RationalTF",
    "first_order_lowpass",
    "second_order_lowpass",
    "pole_zero_tf",
    "bilinear_transform",
    "simulate_tf",
    "impulse_response",
    "step_response",
    "Block",
    "LinearBlock",
    "StaticNonlinearity",
    "TanhLimiter",
    "WienerHammersteinBlock",
    "GainBlock",
    "DelayBlock",
    "SummingNode",
    "Pipeline",
    "AcCoupling",
    "worst_case_wander_fraction",
]
