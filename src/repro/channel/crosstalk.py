"""Crosstalk aggressors: NEXT and FEXT on the backplane.

Switch-fabric backplanes (the paper's Fig 1) route many serial lanes in
parallel; a victim lane's eye closes not only from its own loss but
from near-end (NEXT) and far-end (FEXT) coupling off neighbouring
lanes.  First-order behavioral model:

* **FEXT** — coupled energy travels *with* the victim signal; its
  transfer rises with frequency (coupling is capacitive/inductive
  derivative-like) and is attenuated by the full line: modeled as a
  scaled differentiation of the aggressor after the channel.
* **NEXT** — coupled energy travels *backwards* and appears at the
  victim's receive end without line attenuation: a scaled, high-passed
  copy of the (near-end) aggressor.

Both are knobs in dB of coupling at Nyquist, the way signal-integrity
budgets quote them.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..lti.blocks import Block
from ..signals.waveform import Waveform
from .backplane import BackplaneChannel

__all__ = ["CrosstalkAggressor", "CrosstalkChannel"]


@dataclasses.dataclass
class CrosstalkAggressor:
    """One interfering lane.

    Parameters
    ----------
    signal:
        The aggressor's transmitted waveform (same timebase as the
        victim).
    coupling_db:
        Coupling magnitude at the Nyquist frequency, positive dB down
        (e.g. 26 means the aggressor arrives 26 dB below its swing).
    nyquist_hz:
        The frequency at which ``coupling_db`` is specified.
    is_fext:
        True for far-end crosstalk (travels through the channel with
        the victim), False for near-end.
    """

    signal: Waveform
    coupling_db: float
    nyquist_hz: float = 5e9
    is_fext: bool = True

    def __post_init__(self) -> None:
        if self.coupling_db < 0:
            raise ValueError(
                f"coupling_db is positive-down, got {self.coupling_db}"
            )
        if self.nyquist_hz <= 0:
            raise ValueError(
                f"nyquist_hz must be positive, got {self.nyquist_hz}"
            )

    def coupled_waveform(self,
                         channel: Optional[BackplaneChannel]) -> Waveform:
        """The interference this aggressor adds at the victim's far end.

        The derivative coupling is normalized so a full-swing aggressor
        transition contributes ``10^(-coupling_db/20)`` of its swing at
        the specified Nyquist frequency.
        """
        wave = self.signal
        # Derivative coupling: d/dt normalized at Nyquist.
        derivative = np.gradient(wave.data) * wave.sample_rate
        scale = 10.0 ** (-self.coupling_db / 20.0) \
            / (2.0 * np.pi * self.nyquist_hz)
        coupled = wave.with_data(derivative * scale)
        if self.is_fext and channel is not None:
            coupled = channel.process(coupled)
        return coupled


@dataclasses.dataclass
class CrosstalkChannel(Block):
    """A victim channel with aggressor lanes summed at the far end."""

    channel: BackplaneChannel
    aggressors: Sequence[CrosstalkAggressor] = ()
    name: str = "crosstalk-channel"

    def process(self, wave: Waveform) -> Waveform:
        victim = self.channel.process(wave)
        total = victim.data.copy()
        n_samples = victim.data.shape[-1]
        for aggressor in self.aggressors:
            interference = aggressor.coupled_waveform(
                self.channel if aggressor.is_fext else None
            )
            if len(interference) != n_samples:
                raise ValueError(
                    "aggressor waveform length "
                    f"{len(interference)} != victim {n_samples}"
                )
            # Broadcasts across the rows of a WaveformBatch victim.
            total = total + interference.data
        return victim.with_data(total)

    def interference_rms(self) -> float:
        """RMS of the summed interference alone (victim silent)."""
        if not self.aggressors:
            return 0.0
        total = None
        for aggressor in self.aggressors:
            contribution = aggressor.coupled_waveform(
                self.channel if aggressor.is_fext else None
            ).data
            total = contribution if total is None else total + contribution
        return float(np.sqrt(np.mean(total**2)))
