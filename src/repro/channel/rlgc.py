"""RLGC transmission-line model (frequency-dependent, from first
principles).

The parametric skin + dielectric model in :mod:`repro.channel.backplane`
is an empirical fit; this module derives the same physics from the
telegrapher's equations.  A uniform line with per-metre R(f), L, G(f), C
has

    gamma(f) = sqrt((R + jwL)(G + jwC))      propagation constant
    Z0(f)    = sqrt((R + jwL)/(G + jwC))     characteristic impedance

with the skin effect making ``R ~ sqrt(f)`` and dielectric loss making
``G ~ f tan(delta)``.  The model provides |S21| for a matched line plus
the input impedance / reflection machinery for mismatched terminations,
and a consistency check against the parametric model used by the
benches.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from .backplane import ChannelParameters

__all__ = ["RlgcLine", "microstrip_like"]


@dataclasses.dataclass(frozen=True)
class RlgcLine:
    """A uniform transmission line described by RLGC parameters.

    Parameters
    ----------
    r_dc:
        DC conductor resistance per metre (ohm/m).
    r_skin:
        Skin-effect coefficient: R_ac = r_skin * sqrt(f) (ohm/(m sqrtHz)).
    inductance:
        Series inductance per metre (H/m).
    capacitance:
        Shunt capacitance per metre (F/m).
    tan_delta:
        Dielectric loss tangent: G = 2 pi f C tan_delta.
    length:
        Physical length in metres.
    """

    r_dc: float
    r_skin: float
    inductance: float
    capacitance: float
    tan_delta: float
    length: float

    def __post_init__(self) -> None:
        if min(self.inductance, self.capacitance, self.length) <= 0:
            raise ValueError("L, C and length must be positive")
        if self.r_dc < 0 or self.r_skin < 0 or self.tan_delta < 0:
            raise ValueError("loss terms must be non-negative")

    # -- per-metre quantities -------------------------------------------------
    def series_impedance(self, freq_hz: np.ndarray) -> np.ndarray:
        """Z(f) = R(f) + j w L per metre."""
        f = np.asarray(freq_hz, dtype=float)
        r = self.r_dc + self.r_skin * np.sqrt(np.abs(f))
        return r + 2j * np.pi * f * self.inductance

    def shunt_admittance(self, freq_hz: np.ndarray) -> np.ndarray:
        """Y(f) = G(f) + j w C per metre."""
        f = np.asarray(freq_hz, dtype=float)
        w = 2.0 * np.pi * f
        g = w * self.capacitance * self.tan_delta
        return g + 1j * w * self.capacitance

    def gamma(self, freq_hz: np.ndarray) -> np.ndarray:
        """Propagation constant sqrt(Z Y) (1/m), Re >= 0 branch."""
        value = np.sqrt(self.series_impedance(freq_hz)
                        * self.shunt_admittance(freq_hz))
        # Select the decaying branch.
        flip = value.real < 0
        value = np.where(flip, -value, value)
        return value

    def characteristic_impedance(self, freq_hz: np.ndarray) -> np.ndarray:
        """Z0(f) = sqrt(Z / Y)."""
        return np.sqrt(self.series_impedance(freq_hz)
                       / self.shunt_admittance(freq_hz))

    @property
    def z0_nominal(self) -> float:
        """Lossless-limit characteristic impedance sqrt(L/C)."""
        return math.sqrt(self.inductance / self.capacitance)

    @property
    def delay(self) -> float:
        """Lossless-limit propagation delay length * sqrt(L C)."""
        return self.length * math.sqrt(self.inductance * self.capacitance)

    # -- network responses -----------------------------------------------------
    def s21_matched(self, freq_hz: np.ndarray) -> np.ndarray:
        """Transmission through the line with matched terminations:
        exp(-gamma * length)."""
        return np.exp(-self.gamma(freq_hz) * self.length)

    def s21_db(self, freq_hz: np.ndarray) -> np.ndarray:
        """|S21| in dB (negative-going), matched."""
        return 20.0 * np.log10(np.maximum(np.abs(
            self.s21_matched(freq_hz)), 1e-30))

    def loss_db(self, freq_hz: np.ndarray) -> np.ndarray:
        """Positive insertion loss in dB, matched."""
        return -self.s21_db(freq_hz)

    def input_impedance(self, freq_hz: np.ndarray,
                        z_load: float) -> np.ndarray:
        """Impedance looking into the line terminated in ``z_load``:

            Zin = Z0 (Zl + Z0 tanh(g l)) / (Z0 + Zl tanh(g l))
        """
        if z_load < 0:
            raise ValueError(f"z_load must be >= 0, got {z_load}")
        z0 = self.characteristic_impedance(freq_hz)
        t = np.tanh(self.gamma(freq_hz) * self.length)
        return z0 * (z_load + z0 * t) / (z0 + z_load * t)

    def transfer_mismatched(self, freq_hz: np.ndarray, z_source: float,
                            z_load: float) -> np.ndarray:
        """Voltage transfer V_load/V_source with arbitrary resistive
        terminations (ABCD-matrix solution of the two-port)."""
        if z_source < 0 or z_load < 0:
            raise ValueError("termination impedances must be >= 0")
        g_l = self.gamma(freq_hz) * self.length
        z0 = self.characteristic_impedance(freq_hz)
        a = np.cosh(g_l)
        b = z0 * np.sinh(g_l)
        c = np.sinh(g_l) / z0
        d = np.cosh(g_l)
        # V_load / V_source for source impedance Zs into load Zl:
        denominator = (a * z_load + b + z_source * (c * z_load + d))
        return z_load / denominator

    # -- bridges -----------------------------------------------------------
    def equivalent_parameters(self, fit_freqs: np.ndarray | None = None
                              ) -> ChannelParameters:
        """Fit the parametric skin+dielectric model to this line's loss.

        The bridge between the physics model and the fast parametric
        channel the benches use.
        """
        from .fitting import fit_channel_parameters

        if fit_freqs is None:
            fit_freqs = np.linspace(0.5e9, 10e9, 40)
        return fit_channel_parameters(fit_freqs, self.loss_db(fit_freqs),
                                      length_m=self.length)


def microstrip_like(length: float, z0: float = 50.0,
                    er_eff: float = 3.0, tan_delta: float = 0.02,
                    trace_width: float = 150e-6) -> RlgcLine:
    """A realistic FR-4 microstrip/stripline RLGC description.

    L and C follow from the target Z0 and effective permittivity
    (v = c/sqrt(er_eff), Z0 = sqrt(L/C)); the skin coefficient comes
    from copper's surface resistance over the trace width.
    """
    if length <= 0 or z0 <= 0 or er_eff < 1 or trace_width <= 0:
        raise ValueError("non-physical microstrip parameters")
    c_light = 2.998e8
    velocity = c_light / math.sqrt(er_eff)
    inductance = z0 / velocity
    capacitance = 1.0 / (z0 * velocity)
    # Copper: Rs = sqrt(pi f mu0 rho); per metre R = 2 Rs / width
    # (factor 2: signal + return path crowding), so
    # r_skin = 2 sqrt(pi mu0 rho) / width.
    mu0 = 4e-7 * math.pi
    rho_copper = 1.68e-8
    r_skin = 2.0 * math.sqrt(math.pi * mu0 * rho_copper) / trace_width
    return RlgcLine(r_dc=5.0, r_skin=r_skin, inductance=inductance,
                    capacitance=capacitance, tan_delta=tan_delta,
                    length=length)
