"""Lossy backplane/PCB-trace channel model.

The paper's motivation (Section I) is that "serial interconnect signals
show a lot of high frequency attenuation, skin loss after propagation
through long PCB trace on the backplane".  The experiments of Figs 15
and 16 need exactly that: a low-pass channel whose loss at the 5 GHz
Nyquist frequency visibly closes an unequalized 10 Gb/s eye.

The model is the standard parametric stripline attenuation

    alpha(f) = k_skin * sqrt(f) + k_dielectric * f      [dB/m]

applied over a trace length, with a *causal* phase response: bulk
propagation delay plus the minimum-phase component implied by the loss
magnitude (computed with the real-cepstrum method).  Causality matters —
a zero-phase low-pass channel would smear energy symmetrically into
pre-cursor ISI that a real trace does not produce.

The paper never specifies its backplane; :data:`FR4_DEFAULT` is a
representative FR-4 stripline (loss tangent ~0.02) and the default
20-inch (0.5 m) length gives ~13 dB loss at 5 GHz — a typical mid-2000s
switch-fabric path.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..lti.blocks import Block
from ..signals.waveform import Waveform

__all__ = ["ChannelParameters", "FR4_DEFAULT", "BackplaneChannel"]

_SPEED_OF_LIGHT = 2.998e8


@dataclasses.dataclass(frozen=True)
class ChannelParameters:
    """Per-metre loss model of a PCB trace.

    Parameters
    ----------
    k_skin:
        Skin-effect (conductor) loss coefficient in dB/(m*sqrt(Hz)).
    k_dielectric:
        Dielectric loss coefficient in dB/(m*Hz).
    dielectric_constant:
        Effective relative permittivity (sets propagation velocity).
    """

    k_skin: float
    k_dielectric: float
    dielectric_constant: float = 4.2

    def __post_init__(self) -> None:
        if self.k_skin < 0 or self.k_dielectric < 0:
            raise ValueError("loss coefficients must be non-negative")
        if self.dielectric_constant < 1.0:
            raise ValueError(
                f"dielectric constant must be >= 1, got {self.dielectric_constant}"
            )

    def attenuation_db_per_m(self, freq_hz: np.ndarray) -> np.ndarray:
        """alpha(f) in dB/m at the given frequencies (>= 0)."""
        f = np.abs(np.asarray(freq_hz, dtype=float))
        return self.k_skin * np.sqrt(f) + self.k_dielectric * f

    @property
    def velocity(self) -> float:
        """Propagation velocity c/sqrt(eps_r) in m/s."""
        return _SPEED_OF_LIGHT / math.sqrt(self.dielectric_constant)


#: Representative FR-4 stripline: ~2.5 dB/m at 1 GHz dielectric-dominated
#: loss, modest skin term — 0.5 m gives ~13 dB at 5 GHz.
FR4_DEFAULT = ChannelParameters(
    k_skin=2.5e-5,          # dB/(m*sqrt(Hz))  -> 0.8 dB/m/sqrt(GHz)
    k_dielectric=5.0e-9,    # dB/(m*Hz)        -> 5 dB/m/GHz
    dielectric_constant=4.2,
)


@dataclasses.dataclass
class BackplaneChannel(Block):
    """A length of lossy trace, usable directly as a pipeline block.

    Parameters
    ----------
    length_m:
        Physical trace length in metres.
    params:
        Loss model; defaults to :data:`FR4_DEFAULT`.
    include_delay:
        When False the bulk propagation delay is removed (keeps eyes
        aligned with the transmit clock in benches); the dispersive
        minimum-phase component is always kept.
    """

    length_m: float
    params: ChannelParameters = FR4_DEFAULT
    include_delay: bool = False
    name: str = "backplane"

    def __post_init__(self) -> None:
        if self.length_m < 0:
            raise ValueError(f"length must be >= 0, got {self.length_m}")

    # -- frequency-domain description ---------------------------------------
    def loss_db(self, freq_hz: np.ndarray) -> np.ndarray:
        """Total insertion loss (positive dB) at the given frequencies."""
        return self.params.attenuation_db_per_m(freq_hz) * self.length_m

    def s21_db(self, freq_hz: np.ndarray) -> np.ndarray:
        """|S21| in dB (negative-going)."""
        return -self.loss_db(freq_hz)

    def magnitude(self, freq_hz: np.ndarray) -> np.ndarray:
        """Linear |H(f)|."""
        return 10.0 ** (-self.loss_db(freq_hz) / 20.0)

    def nyquist_loss_db(self, bit_rate: float) -> float:
        """Loss at the NRZ Nyquist frequency (bit_rate / 2)."""
        if bit_rate <= 0:
            raise ValueError(f"bit_rate must be positive, got {bit_rate}")
        return float(self.loss_db(np.array([bit_rate / 2.0]))[0])

    @property
    def propagation_delay(self) -> float:
        """Bulk delay length/velocity in seconds."""
        return self.length_m / self.params.velocity

    # -- time-domain application -------------------------------------------
    def frequency_response(self, freq_hz: np.ndarray,
                           n_fft: int | None = None,
                           sample_rate: float | None = None) -> np.ndarray:
        """Complex H(f) on an arbitrary grid: |H| plus causal phase.

        When ``n_fft``/``sample_rate`` are given the minimum-phase
        component is computed on that FFT grid (as used by
        :meth:`process`); otherwise only the bulk-delay phase is applied,
        which is adequate for plotting magnitude/delay.
        """
        freq_hz = np.asarray(freq_hz, dtype=float)
        mag = self.magnitude(freq_hz)
        phase = np.zeros_like(freq_hz)
        if self.include_delay:
            phase = phase - 2.0 * np.pi * freq_hz * self.propagation_delay
        del n_fft, sample_rate
        return mag * np.exp(1j * phase)

    def process(self, wave: Waveform) -> Waveform:
        """Pass a waveform through the channel (linear convolution).

        The channel's minimum-phase impulse response is synthesized on a
        long FFT grid and applied by *linear* convolution, so the long
        skin-effect tail never wraps around.  The link is assumed to
        have idled at the waveform's first value before time zero
        (steady state), so no artificial start-up step appears.

        A :class:`~repro.signals.batch.WaveformBatch` is convolved along
        its sample axis in one pass, each row idling at its own first
        value.
        """
        if self.length_m == 0:
            return wave
        data = wave.data
        n = data.shape[-1]
        if n == 0:
            return wave
        x0 = data[..., :1]
        deviation = data - x0

        h_t = self._impulse_response(wave.dt, min_length=n)
        from scipy.signal import fftconvolve

        h = h_t if data.ndim == 1 else h_t[np.newaxis, :]
        filtered = fftconvolve(deviation, h, axes=-1)[..., :n]
        dc_gain = float(np.sum(h_t))
        out = filtered + x0 * dc_gain
        return wave.with_data(out)

    def _impulse_response(self, dt: float, min_length: int) -> np.ndarray:
        """Discrete minimum-phase impulse response of the channel.

        Synthesized on a power-of-two grid at least 4x the signal length
        (and >= 2^13 samples) so the cepstral construction resolves the
        loss curve and the tail decays inside the grid.
        """
        n_fft = 1 << max(13, int(math.ceil(math.log2(max(min_length, 2))))
                         + 2)
        freq = np.fft.rfftfreq(n_fft, d=dt)
        h = self._causal_response(freq, n_fft)
        return np.fft.irfft(h, n=n_fft)

    def _causal_response(self, freq: np.ndarray, n_fft: int) -> np.ndarray:
        """Minimum-phase H on an rfft grid via the real-cepstrum method.

        The folded cepstrum of log|H| yields the unique minimum-phase
        spectrum with that magnitude; an optional linear-phase bulk delay
        is layered on top.
        """
        mag = np.maximum(self.magnitude(freq), 1e-12)
        log_mag_half = np.log(mag)
        # Build the full (hermitian-symmetric) log-magnitude spectrum.
        log_mag_full = np.concatenate([log_mag_half,
                                       log_mag_half[-2:0:-1]])
        cepstrum = np.fft.ifft(log_mag_full).real
        folded = np.zeros_like(cepstrum)
        half = n_fft // 2
        folded[0] = cepstrum[0]
        folded[1:half] = 2.0 * cepstrum[1:half]
        folded[half] = cepstrum[half]
        log_h_min = np.fft.fft(folded)
        h_full = np.exp(log_h_min)
        h = h_full[: len(freq)]
        if self.include_delay:
            h = h * np.exp(-2j * np.pi * freq * self.propagation_delay)
        return h

    # -- convenience ---------------------------------------------------------
    def scaled_to_loss(self, target_db: float, at_hz: float
                       ) -> "BackplaneChannel":
        """A channel of the length that produces ``target_db`` at ``at_hz``.

        Benches use this to dial in "a channel with N dB of Nyquist loss"
        without caring about physical length.
        """
        if target_db < 0:
            raise ValueError(f"target loss must be >= 0, got {target_db}")
        per_m = float(self.params.attenuation_db_per_m(np.array([at_hz]))[0])
        if per_m == 0:
            raise ValueError("channel parameters give zero loss; cannot scale")
        return dataclasses.replace(self, length_m=target_db / per_m)
