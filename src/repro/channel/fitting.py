"""Fitting channel models to measured loss data.

Real backplane characterization hands you |S21| points from a VNA (or a
Touchstone file).  This module fits the library's parametric
skin + dielectric model to such data by linear least squares — the loss
model ``alpha(f) = k_skin sqrt(f) + k_diel f`` is linear in its
coefficients — and provides a minimal Touchstone-like text parser so
recorded traces can be replayed through the simulator.
"""

from __future__ import annotations

import io
from typing import Tuple

import numpy as np

from .backplane import BackplaneChannel, ChannelParameters

__all__ = ["fit_channel_parameters", "fit_channel", "parse_s21_text",
           "format_s21_text"]


def fit_channel_parameters(freq_hz: np.ndarray, loss_db: np.ndarray,
                           length_m: float = 1.0) -> ChannelParameters:
    """Least-squares fit of (k_skin, k_dielectric) to loss samples.

    Parameters
    ----------
    freq_hz, loss_db:
        Measured insertion loss (positive dB) at each frequency.
    length_m:
        The physical length the measurement corresponds to; the
        returned parameters are per metre.
    """
    freq_hz = np.asarray(freq_hz, dtype=float)
    loss_db = np.asarray(loss_db, dtype=float)
    if freq_hz.shape != loss_db.shape or freq_hz.size < 2:
        raise ValueError("need matching frequency/loss arrays (>= 2 points)")
    if np.any(freq_hz <= 0):
        raise ValueError("frequencies must be positive")
    if np.any(loss_db < 0):
        raise ValueError("insertion loss must be >= 0 dB (positive-loss "
                         "convention)")
    if length_m <= 0:
        raise ValueError(f"length must be positive, got {length_m}")

    basis = np.column_stack([np.sqrt(freq_hz), freq_hz])
    coeffs, *_ = np.linalg.lstsq(basis, loss_db / length_m, rcond=None)
    k_skin, k_diel = (max(0.0, float(c)) for c in coeffs)
    if k_skin == 0.0 and k_diel == 0.0:
        raise ValueError("fit collapsed to zero loss; check the data")
    return ChannelParameters(k_skin=k_skin, k_dielectric=k_diel)


def fit_channel(freq_hz: np.ndarray, loss_db: np.ndarray,
                length_m: float = 1.0) -> BackplaneChannel:
    """Fit and wrap into a ready-to-use channel of the given length."""
    params = fit_channel_parameters(freq_hz, loss_db, length_m)
    return BackplaneChannel(length_m=length_m, params=params)


def parse_s21_text(text: str) -> Tuple[np.ndarray, np.ndarray]:
    """Parse a minimal Touchstone-like |S21| trace.

    Accepts lines of ``<freq_hz> <s21_db>`` with ``!``/``#`` comment and
    option lines ignored — the common subset of exported VNA traces.
    Returns (freq_hz, loss_db) with loss as *positive* dB.
    """
    freqs = []
    losses = []
    for raw in io.StringIO(text):
        line = raw.strip()
        if not line or line.startswith(("!", "#")):
            continue
        parts = line.split()
        if len(parts) < 2:
            raise ValueError(f"malformed S21 line: {line!r}")
        freq = float(parts[0])
        s21_db = float(parts[1])
        freqs.append(freq)
        losses.append(max(0.0, -s21_db))
    if len(freqs) < 2:
        raise ValueError("S21 trace needs at least two data lines")
    return np.asarray(freqs), np.asarray(losses)


def format_s21_text(channel: BackplaneChannel, freq_hz: np.ndarray,
                    comment: str = "exported by repro") -> str:
    """Export a channel's |S21| as the same text format."""
    freq_hz = np.asarray(freq_hz, dtype=float)
    if freq_hz.size < 2:
        raise ValueError("need at least two frequency points")
    lines = [f"! {comment}", "# HZ S DB R 50"]
    for f, s in zip(freq_hz, channel.s21_db(freq_hz)):
        lines.append(f"{f:.6e} {s:.4f}")
    return "\n".join(lines) + "\n"
