"""Channel substrate: the backplane the I/O interface drives.

Replaces the paper's physical FR-4 backplane with a parametric
skin + dielectric loss model (causal minimum-phase response) plus
termination/reflection bookkeeping.
"""

from .backplane import ChannelParameters, FR4_DEFAULT, BackplaneChannel
from .fitting import (
    fit_channel_parameters,
    fit_channel,
    parse_s21_text,
    format_s21_text,
)
from .rlgc import RlgcLine, microstrip_like
from .crosstalk import CrosstalkAggressor, CrosstalkChannel
from .terminations import (
    reflection_coefficient,
    return_loss_db,
    cml_output_swing,
    required_drive_current,
    Termination,
    ReflectiveLink,
)

__all__ = [
    "ChannelParameters",
    "FR4_DEFAULT",
    "BackplaneChannel",
    "fit_channel_parameters",
    "fit_channel",
    "parse_s21_text",
    "format_s21_text",
    "RlgcLine",
    "microstrip_like",
    "CrosstalkAggressor",
    "CrosstalkChannel",
    "reflection_coefficient",
    "return_loss_db",
    "cml_output_swing",
    "required_drive_current",
    "Termination",
    "ReflectiveLink",
]
