"""Termination and impedance-matching models.

The paper's input equalizer provides "50 ohm input impedance matching"
and the last driver stage sources ~8 mA into a 50 ohm load for a 250 mV
swing.  This module provides the small amount of transmission-line
bookkeeping those claims rest on: reflection coefficients, return loss,
the swing of a current-mode driver into a terminated line, and a
first-order model of the residual ISI echo produced by imperfect
terminations at both ends of a trace.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from ..lti.blocks import Block
from ..signals.waveform import Waveform

__all__ = [
    "reflection_coefficient",
    "return_loss_db",
    "cml_output_swing",
    "required_drive_current",
    "Termination",
    "ReflectiveLink",
]

Z0_DEFAULT = 50.0


def reflection_coefficient(z_load: float, z0: float = Z0_DEFAULT) -> float:
    """Gamma = (Zl - Z0)/(Zl + Z0)."""
    if z_load < 0 or z0 <= 0:
        raise ValueError("impedances must be non-negative (Z0 positive)")
    return (z_load - z0) / (z_load + z0)


def return_loss_db(z_load: float, z0: float = Z0_DEFAULT) -> float:
    """Return loss in positive dB; infinite for a perfect match."""
    gamma = abs(reflection_coefficient(z_load, z0))
    if gamma == 0:
        return math.inf
    return -20.0 * math.log10(gamma)


def cml_output_swing(tail_current: float, load_ohm: float = Z0_DEFAULT,
                     double_terminated: bool = True) -> float:
    """Single-ended output swing of a CML driver.

    A CML output switches its tail current into the load.  With double
    termination (on-chip 50 ohm in parallel with the far-end 50 ohm) the
    effective load is ``load/2``:  8 mA * 25 ohm = 200 mV; the paper's
    "approximately 8 mA ... output swing range up to 250 mV" corresponds
    to the lightly-loaded/single-termination end of that range
    (8 mA * 31 ohm) — both regimes are reachable with this helper.
    """
    if tail_current <= 0:
        raise ValueError(f"tail_current must be positive, got {tail_current}")
    if load_ohm <= 0:
        raise ValueError(f"load must be positive, got {load_ohm}")
    r_eff = load_ohm / 2.0 if double_terminated else load_ohm
    return tail_current * r_eff


def required_drive_current(swing_v: float, load_ohm: float = Z0_DEFAULT,
                           double_terminated: bool = True) -> float:
    """Tail current needed for a target single-ended swing."""
    if swing_v <= 0:
        raise ValueError(f"swing must be positive, got {swing_v}")
    r_eff = load_ohm / 2.0 if double_terminated else load_ohm
    return swing_v / r_eff


@dataclasses.dataclass(frozen=True)
class Termination:
    """One end of a link: its impedance looking into the line."""

    impedance: float
    z0: float = Z0_DEFAULT

    def __post_init__(self) -> None:
        if self.impedance < 0 or self.z0 <= 0:
            raise ValueError("impedances must be non-negative (Z0 positive)")

    @property
    def gamma(self) -> float:
        return reflection_coefficient(self.impedance, self.z0)

    @property
    def return_loss(self) -> float:
        return return_loss_db(self.impedance, self.z0)

    def is_matched(self, tolerance_pct: float = 10.0) -> bool:
        """Within a percentage band of Z0 (lab-style match criterion)."""
        return abs(self.impedance - self.z0) <= self.z0 * tolerance_pct / 100.0


@dataclasses.dataclass
class ReflectiveLink(Block):
    """First-order reflection (echo) model of a doubly-terminated trace.

    The dominant artifact of imperfect terminations is a single echo:
    energy reflects off the far end (gamma_rx), travels back, reflects
    off the near end (gamma_tx) and arrives one round trip later,
    attenuated by the trace twice.  The output is

        y(t) = x(t) + g_tx*g_rx*A_rt * y(t - t_rt)

    truncated to ``n_echoes`` terms.  Benches use this to show the
    equalizer's 50 ohm match (Cherry-Hooper input stage) suppresses the
    echo compared with a badly-matched receiver.
    """

    round_trip_delay: float
    round_trip_loss_db: float
    tx: Termination
    rx: Termination
    n_echoes: int = 3
    name: str = "reflective-link"

    def __post_init__(self) -> None:
        if self.round_trip_delay <= 0:
            raise ValueError("round_trip_delay must be positive")
        if self.round_trip_loss_db < 0:
            raise ValueError("round_trip_loss_db must be >= 0")
        if self.n_echoes < 0:
            raise ValueError("n_echoes must be >= 0")

    @property
    def echo_gain(self) -> float:
        """Amplitude of the first echo relative to the main signal."""
        attenuation = 10.0 ** (-self.round_trip_loss_db / 20.0)
        return self.tx.gamma * self.rx.gamma * attenuation

    def process(self, wave: Waveform) -> Waveform:
        out = wave.data.copy()
        gain = self.echo_gain
        if gain == 0 or self.n_echoes == 0:
            return wave.with_data(out)
        echo: Optional[np.ndarray] = wave.data
        accumulated = 1.0
        for _ in range(self.n_echoes):
            accumulated *= gain
            if abs(accumulated) < 1e-9:
                break
            echo_wave = wave.with_data(echo).delayed(self.round_trip_delay)
            echo = echo_wave.data
            out = out + accumulated * echo
        return wave.with_data(out)
