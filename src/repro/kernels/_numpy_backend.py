"""Pure-NumPy bit-serial kernels (the always-available fallback).

These are the PR 2/3 batch engines verbatim: every bit-step performs
one vectorized pass over all rows — interpolated sampling, Alexander
votes, per-row loop-state updates — so the Python interpreter runs
``total_bits`` iterations instead of ``n_rows * total_bits``.

The module is deliberately self-contained (NumPy only, no imports from
the rest of ``repro``) so backend selection at any point of package
import can never cycle.  The Alexander vote and the linear-interpolation
sampler are re-implemented here with the exact expression order of
``repro.cdr.phase_detector.vote_step`` and
``repro.signals.waveform.sample_uniform``; the numba backend mirrors
the same order scalar-by-scalar, which is what makes backends
bit-exact interchangeable.
"""

from __future__ import annotations

import numpy as np

NAME = "numpy"


def sample_uniform(data: np.ndarray, t0: float, sample_rate: float,
                   times) -> np.ndarray:
    """Linear interpolation on a uniform grid, vectorized over rows.

    Same contract and arithmetic as
    :func:`repro.signals.waveform.sample_uniform` (clamped instants,
    ``d0 + frac * (d1 - d0)``).
    """
    data = np.asarray(data, dtype=float)
    n = data.shape[-1]
    if n < 2:
        raise ValueError(f"need at least 2 samples to interpolate, got {n}")
    x = (np.asarray(times, dtype=float) - t0) * sample_rate
    x = np.clip(x, 0.0, float(n - 1))
    i0 = np.minimum(x.astype(np.int64), n - 2)
    frac = x - i0
    if data.ndim == 1:
        d0 = data[i0]
        d1 = data[i0 + 1]
    elif data.ndim == 2:
        n_rows = data.shape[0]
        if i0.ndim >= 1 and i0.shape[0] != n_rows:
            raise ValueError(
                f"per-row instants must be scalar, ({n_rows},) or "
                f"({n_rows}, m) for {n_rows} rows, got shape {i0.shape}"
            )
        rows = np.arange(n_rows)
        if i0.ndim == 2:
            rows = rows[:, np.newaxis]
        elif i0.ndim == 0:
            i0 = np.broadcast_to(i0, (n_rows,))
            frac = np.broadcast_to(frac, (n_rows,))
        d0 = data[rows, i0]
        d1 = data[rows, i0 + 1]
    else:
        raise ValueError(f"data must be 1-D or 2-D, got shape {data.shape}")
    return d0 + frac * (d1 - d0)


def _vote_step(previous_data: np.ndarray, samples_edge: np.ndarray,
               samples_data: np.ndarray) -> np.ndarray:
    """One Alexander vote per row (sign convention: zero counts high)."""
    def sign(values):
        signs = np.sign(values)
        signs[signs == 0] = 1
        return signs

    a = sign(previous_data)
    b = sign(samples_data)
    t = sign(samples_edge)
    transition = a != b
    votes = np.zeros(np.shape(t), dtype=np.int8)
    votes[transition & (t == a)] = 1     # EARLY
    votes[transition & (t == b)] = -1    # LATE
    return votes


def cdr_recover_batch(data: np.ndarray, t0: float, sample_rate: float,
                      t_last: float, ui: float, kp: float, ki: float,
                      phase: np.ndarray, integral: np.ndarray,
                      total_bits: int, thresholds=None):
    """Advance N bang-bang loops together, one bit-step at a time.

    Parameters mirror the loop state of
    :meth:`repro.cdr.BangBangCdr.recover`: per-row ``phase`` (UI) and
    ``integral`` (fractional frequency) starting states, shared
    ``kp``/``ki`` gains.  ``thresholds`` is the modulation's sorted
    decision-threshold vector (default ``[0.0]``, the binary sign
    slicer): data decisions are the count of thresholds strictly below
    the sample (= the Gray level index), and the Alexander votes slice
    at the *middle* threshold — the only eye whose transitions carry
    timing for a bang-bang loop.  Returns ``(decisions, phases, votes,
    slips, row_bits)`` with rows that ran out of waveform blanked past
    their last valid bit (0 decisions/votes, NaN phases).
    """
    data = np.asarray(data, dtype=float)
    thresholds = (np.zeros(1) if thresholds is None
                  else np.asarray(thresholds, dtype=float))
    center = float(thresholds[(len(thresholds) - 1) // 2])
    n_rows = data.shape[0]
    phase = np.array(phase, dtype=float)
    integral = np.array(integral, dtype=float)
    bit_offset = np.zeros(n_rows, dtype=np.int64)
    slips = np.zeros(n_rows, dtype=np.int64)
    active = np.ones(n_rows, dtype=bool)
    row_bits = np.full(n_rows, total_bits, dtype=np.int64)

    decisions = np.zeros((n_rows, total_bits), dtype=np.int8)
    phases = np.empty((n_rows, total_bits))
    votes = np.zeros((n_rows, total_bits), dtype=np.int8)
    previous_data = None
    previous_edge = None

    for k in range(total_bits):
        t_data = (k + 0.5 + bit_offset + phase) * ui
        t_edge = (k + 1.0 + bit_offset + phase) * ui
        ending = active & (t_edge >= t_last)
        if ending.any():
            row_bits[ending] = k
            active = active & ~ending
            if not active.any():
                break
        sample_data = sample_uniform(data, t0, sample_rate, t_data)
        sample_edge = sample_uniform(data, t0, sample_rate, t_edge)
        if len(thresholds) == 1:
            # Binary fast path: identical to the historical sign slicer.
            decisions[:, k] = sample_data > center
        else:
            decisions[:, k] = np.searchsorted(thresholds, sample_data,
                                              side="left")
        phases[:, k] = phase

        if k > 0:
            if center != 0.0:
                votes_k = _vote_step(previous_data - center,
                                     previous_edge - center,
                                     sample_data - center)
            else:
                votes_k = _vote_step(previous_data, previous_edge,
                                     sample_data)
            votes[:, k] = votes_k
            new_integral = integral + ki * votes_k
            new_phase = phase + (kp * votes_k + new_integral)
            integral = np.where(active, new_integral, integral)
            phase = np.where(active, new_phase, phase)
            # A wrap across +-1 UI is a cycle slip: fold the whole bit
            # into the index offset so the sampling instant (and the
            # decision sequence) stays continuous, and count it.
            wrap_up = active & (phase > 1.0)
            wrap_down = active & (phase < -1.0)
            phase[wrap_up] -= 1.0
            bit_offset[wrap_up] += 1
            slips[wrap_up] += 1
            phase[wrap_down] += 1.0
            bit_offset[wrap_down] -= 1
            slips[wrap_down] -= 1
        previous_data = sample_data
        previous_edge = sample_edge

    # Rows that ran out of waveform: blank everything past their last
    # valid bit so the rectangular arrays cannot leak the garbage
    # computed while other rows were still running.
    tail = np.arange(total_bits)[np.newaxis, :] >= row_bits[:, np.newaxis]
    decisions[tail] = 0
    votes[tail] = 0
    phases[tail] = np.nan
    return decisions, phases, votes, slips, row_bits


def dfe_equalize_batch(data: np.ndarray, taps: np.ndarray,
                       ui_samples: float, sample_phase_ui: float,
                       decision_amplitude: float, n_bits: int,
                       thresholds=None, decision_levels=None):
    """Advance N decision-feedback loops together, one bit per step.

    ``thresholds``/``decision_levels`` carry the modulation's sorted
    decision thresholds and the level value fed back for each decided
    symbol; the defaults (``[0.0]`` / ``[-A, +A]``) are the historical
    binary sign slicer, bit for bit.  Returns ``(decisions,
    corrected)`` of shape ``(n_rows, n_bits)``; decisions are level
    indices.  The feedback dot product accumulates tap by tap in index
    order — the same order the numba backend and the serial reference
    use — so the result is bit-exact across backends for any tap count.
    """
    data = np.asarray(data, dtype=float)
    taps = np.asarray(taps, dtype=float)
    thresholds = (np.zeros(1) if thresholds is None
                  else np.asarray(thresholds, dtype=float))
    if decision_levels is None:
        decision_levels = np.array([-decision_amplitude,
                                    decision_amplitude])
    else:
        decision_levels = np.asarray(decision_levels, dtype=float)
    n_rows = data.shape[0]
    n_taps = len(taps)
    decisions = np.zeros((n_rows, n_bits), dtype=np.int8)
    corrected = np.zeros((n_rows, n_bits))
    history = np.zeros((n_rows, n_taps))
    binary = len(thresholds) == 1
    threshold0 = float(thresholds[0])
    for k in range(n_bits):
        index = (k + sample_phase_ui) * ui_samples
        raw = sample_uniform(data, 0.0, 1.0, index)
        feedback = np.zeros(n_rows)
        for j in range(n_taps):
            feedback = feedback + taps[j] * history[:, j]
        values = raw - feedback
        corrected[:, k] = values
        if binary:
            # Fast path, identical to the historical sign slicer.
            symbols = (values > threshold0).astype(np.int64)
        else:
            symbols = np.searchsorted(thresholds, values, side="left")
        decisions[:, k] = symbols
        history[:, 1:] = history[:, :-1]
        history[:, 0] = decision_levels[symbols]
    return decisions, corrected
