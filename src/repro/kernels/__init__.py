"""Compiled bit-serial kernel backends.

The batched CDR and DFE engines advance N scenarios one bit-step at a
time; the per-bit recurrence (interpolation sample → vote/decision →
state update) is inherently serial along the bit axis, so the Python
loop over bits is the wall-clock floor of every sweep once the analog
stages are vectorized.  This package lowers those recurrences into a
backend selected once per process:

* ``numba`` — ``@njit``-compiled per-row loops (parallel over rows),
  another order of magnitude over the NumPy batch path on the
  bit-serial stages.  Optional: ``pip install .[fast]``.
* ``numpy`` — the pure-NumPy per-bit-step loop (the PR 2/3 engines),
  always available.

Selection order (decided lazily, on the first kernel call):

1. ``REPRO_KERNELS=numba`` or ``REPRO_KERNELS=numpy`` forces a backend;
   asking for ``numba`` without numba installed raises a clear error.
2. With the variable unset, ``numba`` is used when importable and the
   library falls back to ``numpy`` silently otherwise.

Both backends implement the same three kernels with identical floating
point expression order — the CDR phase/integral/slip recurrence with
Alexander votes, the DFE decision-feedback loop, and the shared
``sample_uniform`` linear interpolation — so switching backends is
bit-exact: same decisions, same phase tracks, same corrected samples.
``tests/test_kernels.py`` pins that equivalence and the benchmark
``benchmarks/bench_compiled_kernels.py`` gates the speedup.

Use :func:`use_backend` to pin a backend for a ``with`` block (tests,
A/B timing), :func:`set_backend` to switch the process default, and
:func:`backend_name` to see what is active.
"""

from __future__ import annotations

import contextlib
import os

__all__ = [
    "available_backends",
    "backend_name",
    "get_backend",
    "set_backend",
    "use_backend",
]

_BACKEND_NAMES = ("numba", "numpy")

#: The active backend module; ``None`` until first use (selection is
#: lazy so ``import repro`` never pays the numba import/compile cost).
_active = None


def _load(name: str):
    """Import one backend module by name."""
    if name == "numpy":
        from . import _numpy_backend
        return _numpy_backend
    if name == "numba":
        try:
            from . import _numba_backend
        except ImportError as error:
            raise RuntimeError(
                "REPRO_KERNELS requested the 'numba' kernel backend but "
                "numba is not importable; install the optional extra "
                "(pip install 'repro-cml-io-interface[fast]' or "
                "pip install numba) or set REPRO_KERNELS=numpy"
            ) from error
        return _numba_backend
    raise ValueError(
        f"unknown kernel backend {name!r}; choose from {_BACKEND_NAMES}"
    )


def _select_default():
    """Apply the documented selection order once."""
    requested = os.environ.get("REPRO_KERNELS", "").strip().lower()
    if requested:
        return _load(requested)
    try:
        from . import _numba_backend
        return _numba_backend
    except ImportError:
        from . import _numpy_backend
        return _numpy_backend


def get_backend(name: str | None = None):
    """The active backend module, or a specific one by name.

    With ``name=None`` this resolves (and caches) the process default
    per the selection order above; passing ``"numpy"``/``"numba"``
    loads that backend without changing the default.
    """
    global _active
    if name is not None:
        return _load(name)
    if _active is None:
        _active = _select_default()
    return _active


def set_backend(name: str):
    """Switch the process-default backend; returns the module."""
    global _active
    _active = _load(name)
    return _active


@contextlib.contextmanager
def use_backend(name: str):
    """Temporarily pin the default backend inside a ``with`` block."""
    global _active
    previous = _active
    _active = _load(name)
    try:
        yield _active
    finally:
        _active = previous


def backend_name() -> str:
    """Name of the active backend (resolving the default if needed)."""
    return get_backend().NAME


def available_backends() -> tuple:
    """Names of the backends importable in this environment."""
    names = []
    for name in _BACKEND_NAMES:
        try:
            _load(name)
        except (RuntimeError, ValueError):
            continue
        names.append(name)
    return tuple(names)
