"""Numba-compiled bit-serial kernels (the optional fast backend).

Importing this module requires numba (``pip install .[fast]``); the
package ``__init__`` turns the ImportError into either a silent fall
back to the NumPy backend (default selection) or a clear error
(``REPRO_KERNELS=numba`` forced).

Each kernel runs the *serial reference* recurrence per row — compiled,
and parallelized over rows with ``prange`` — instead of the NumPy
backend's vectorized per-bit-step passes.  Both orderings perform the
identical floating-point arithmetic per row (same expression order as
``sample_uniform``/``vote_step``/the serial loops, no fastmath, no
reassociation), so backends are bit-exact interchangeable; what changes
is only who iterates: compiled machine code over ``rows x bits``
instead of the Python interpreter over ``bits``.

``cache=True`` persists compiled machine code next to the module (or
under ``NUMBA_CACHE_DIR``), so repeated processes — CI legs, sweep
workers — pay the compile cost once.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange

NAME = "numba"


@njit(cache=True, inline="always")
def _sample_row(row, t0, sample_rate, t):
    """Scalar twin of ``sample_uniform``: clamp, floor, lerp.

    Expression order matches the NumPy kernel exactly:
    ``x = (t - t0) * rate``, clamp to ``[0, n-1]``, truncate, clamp the
    base index to ``n - 2``, then ``d0 + frac * (d1 - d0)``.
    """
    n = row.shape[0]
    x = (t - t0) * sample_rate
    if x < 0.0:
        x = 0.0
    top = float(n - 1)
    if x > top:
        x = top
    i0 = np.int64(x)
    if i0 > n - 2:
        i0 = n - 2
    frac = x - i0
    d0 = row[i0]
    return d0 + frac * (row[i0 + 1] - d0)


@njit(cache=True, inline="always")
def _slicer_sign(value):
    """Decision-slicer sign: zero samples count as high."""
    return 1.0 if value >= 0.0 else -1.0


@njit(cache=True, parallel=True)
def _cdr_kernel(data, t0, sample_rate, t_last, ui, kp, ki,
                phase0, integral0, total_bits, thresholds, center,
                decisions, phases, votes, slips, row_bits):
    n_rows = data.shape[0]
    n_thresholds = thresholds.shape[0]
    for r in prange(n_rows):
        row = data[r]
        phase = phase0[r]
        integral = integral0[r]
        bit_offset = 0
        slip = 0
        previous_data = 0.0
        previous_edge = 0.0
        n_valid = total_bits
        for k in range(total_bits):
            t_data = (k + 0.5 + bit_offset + phase) * ui
            t_edge = (k + 1.0 + bit_offset + phase) * ui
            if t_edge >= t_last:
                n_valid = k
                break
            sample_data = _sample_row(row, t0, sample_rate, t_data)
            sample_edge = _sample_row(row, t0, sample_rate, t_edge)
            # Count of thresholds strictly below the sample == the Gray
            # level index; for [0.0] this is the historical sign slicer.
            symbol = 0
            for j in range(n_thresholds):
                if sample_data > thresholds[j]:
                    symbol += 1
            decisions[r, k] = symbol
            phases[r, k] = phase
            if k > 0:
                # Alexander vote at the middle-eye threshold, same sign
                # convention as vote_step (subtracting a 0.0 center
                # cannot change any comparison, zeros stay high).
                a = _slicer_sign(previous_data - center)
                b = _slicer_sign(sample_data - center)
                t = _slicer_sign(previous_edge - center)
                vote = 0
                if a != b:
                    if t == a:
                        vote = 1    # EARLY
                    elif t == b:
                        vote = -1   # LATE
                votes[r, k] = vote
                integral = integral + ki * vote
                phase = phase + (kp * vote + integral)
                # A wrap across +-1 UI is a cycle slip: fold the whole
                # bit into the index offset so the sampling instant
                # stays continuous, and count it.
                if phase > 1.0:
                    phase -= 1.0
                    bit_offset += 1
                    slip += 1
                elif phase < -1.0:
                    phase += 1.0
                    bit_offset -= 1
                    slip -= 1
            previous_data = sample_data
            previous_edge = sample_edge
        slips[r] = slip
        row_bits[r] = n_valid
        # Blank the tail exactly like the NumPy backend does.
        for k in range(n_valid, total_bits):
            decisions[r, k] = 0
            votes[r, k] = 0
            phases[r, k] = np.nan


def cdr_recover_batch(data: np.ndarray, t0: float, sample_rate: float,
                      t_last: float, ui: float, kp: float, ki: float,
                      phase: np.ndarray, integral: np.ndarray,
                      total_bits: int, thresholds=None):
    """Compiled twin of the NumPy backend's ``cdr_recover_batch``."""
    data = np.ascontiguousarray(data, dtype=np.float64)
    thresholds = (np.zeros(1) if thresholds is None
                  else np.ascontiguousarray(thresholds, dtype=np.float64))
    center = float(thresholds[(len(thresholds) - 1) // 2])
    n_rows = data.shape[0]
    decisions = np.zeros((n_rows, total_bits), dtype=np.int8)
    phases = np.empty((n_rows, total_bits), dtype=np.float64)
    votes = np.zeros((n_rows, total_bits), dtype=np.int8)
    slips = np.zeros(n_rows, dtype=np.int64)
    row_bits = np.full(n_rows, total_bits, dtype=np.int64)
    _cdr_kernel(data, float(t0), float(sample_rate), float(t_last),
                float(ui), float(kp), float(ki),
                np.ascontiguousarray(phase, dtype=np.float64),
                np.ascontiguousarray(integral, dtype=np.float64),
                int(total_bits), thresholds, center,
                decisions, phases, votes, slips, row_bits)
    return decisions, phases, votes, slips, row_bits


@njit(cache=True, parallel=True)
def _dfe_kernel(data, taps, ui_samples, sample_phase_ui,
                thresholds, decision_levels, n_bits, decisions, corrected):
    n_rows = data.shape[0]
    n_taps = taps.shape[0]
    n_thresholds = thresholds.shape[0]
    for r in prange(n_rows):
        row = data[r]
        history = np.zeros(n_taps, dtype=np.float64)
        for k in range(n_bits):
            index = (k + sample_phase_ui) * ui_samples
            raw = _sample_row(row, 0.0, 1.0, index)
            # Tap-index-order accumulation: the exact summation order of
            # the NumPy backend and the serial reference.
            feedback = 0.0
            for j in range(n_taps):
                feedback = feedback + taps[j] * history[j]
            value = raw - feedback
            corrected[r, k] = value
            # Nearest-level slice: count of thresholds strictly below
            # the value; [0.0] reproduces the historical sign slicer.
            symbol = 0
            for j in range(n_thresholds):
                if value > thresholds[j]:
                    symbol += 1
            decisions[r, k] = symbol
            for j in range(n_taps - 1, 0, -1):
                history[j] = history[j - 1]
            history[0] = decision_levels[symbol]


def dfe_equalize_batch(data: np.ndarray, taps: np.ndarray,
                       ui_samples: float, sample_phase_ui: float,
                       decision_amplitude: float, n_bits: int,
                       thresholds=None, decision_levels=None):
    """Compiled twin of the NumPy backend's ``dfe_equalize_batch``."""
    data = np.ascontiguousarray(data, dtype=np.float64)
    thresholds = (np.zeros(1) if thresholds is None
                  else np.ascontiguousarray(thresholds, dtype=np.float64))
    if decision_levels is None:
        decision_levels = np.array([-decision_amplitude,
                                    decision_amplitude])
    decision_levels = np.ascontiguousarray(decision_levels,
                                           dtype=np.float64)
    n_rows = data.shape[0]
    decisions = np.zeros((n_rows, n_bits), dtype=np.int8)
    corrected = np.zeros((n_rows, n_bits), dtype=np.float64)
    _dfe_kernel(data, np.ascontiguousarray(taps, dtype=np.float64),
                float(ui_samples), float(sample_phase_ui),
                thresholds, decision_levels, int(n_bits),
                decisions, corrected)
    return decisions, corrected


@njit(cache=True, parallel=True)
def _sample_rows_kernel(data, t0, sample_rate, times, out):
    for r in prange(data.shape[0]):
        out[r] = _sample_row(data[r], t0, sample_rate, times[r])


def sample_uniform(data: np.ndarray, t0: float, sample_rate: float,
                   times) -> np.ndarray:
    """Linear interpolation on a uniform grid.

    The hot case — 2-D row stack, one instant per row, exactly what the
    bit-serial loops issue every bit-step — runs compiled; every other
    shape delegates to the NumPy kernel (identical arithmetic).
    """
    data_arr = np.asarray(data, dtype=np.float64)
    times_arr = np.asarray(times, dtype=np.float64)
    if data_arr.ndim == 2 and times_arr.shape == (data_arr.shape[0],) \
            and data_arr.shape[1] >= 2:
        out = np.empty(data_arr.shape[0], dtype=np.float64)
        _sample_rows_kernel(np.ascontiguousarray(data_arr), float(t0),
                            float(sample_rate),
                            np.ascontiguousarray(times_arr), out)
        return out
    from ._numpy_backend import sample_uniform as _numpy_sample
    return _numpy_sample(data, t0, sample_rate, times)
