"""Bilinear discretization and transient simulation accuracy."""

import math

import numpy as np
import pytest

from repro.lti import (
    RationalTF,
    bilinear_transform,
    first_order_lowpass,
    impulse_response,
    pole_zero_tf,
    second_order_lowpass,
    simulate_tf,
    step_response,
)


FS = 320e9  # the library's standard 32 samples/bit at 10 Gb/s


def test_constant_tf_passthrough():
    data = np.array([1.0, -2.0, 3.0])
    out = simulate_tf(RationalTF.constant(2.5), data, FS)
    np.testing.assert_allclose(out, 2.5 * data)


def test_bilinear_preserves_dc():
    tf = first_order_lowpass(2e9, gain=7.0)
    b, a = bilinear_transform(tf, FS)
    # H(z=1) = sum(b)/sum(a) equals the analog DC gain exactly.
    assert np.sum(b) / np.sum(a) == pytest.approx(7.0)


def test_bilinear_rejects_bad_rates():
    tf = first_order_lowpass(1e9)
    with pytest.raises(ValueError):
        bilinear_transform(tf, 0.0)
    with pytest.raises(ValueError):
        bilinear_transform(tf, 1e9, prewarp_hz=1e9)  # above Nyquist


def test_prewarp_matches_analog_exactly_at_frequency():
    tf = first_order_lowpass(3e9)
    fs = 20e9
    f0 = 3e9
    b, a = bilinear_transform(tf, fs, prewarp_hz=f0)
    z = np.exp(2j * np.pi * f0 / fs)
    h_digital = np.polyval(b, 1 / z) / np.polyval(a, 1 / z)
    h_analog = tf.response(np.array([f0]))[0]
    assert abs(h_digital) == pytest.approx(abs(h_analog), rel=1e-9)


def test_step_response_of_lowpass_settles_to_dc_gain():
    tf = first_order_lowpass(1e9, gain=3.0)
    y = step_response(tf, FS, duration=5e-9)
    assert y[-1] == pytest.approx(3.0, rel=1e-3)


def test_step_response_time_constant():
    tf = first_order_lowpass(1e9)
    y = step_response(tf, FS, duration=2e-9)
    tau = 1.0 / (2 * np.pi * 1e9)
    idx = int(round(tau * FS))
    assert y[idx] == pytest.approx(1 - math.exp(-1), rel=0.02)


def test_impulse_response_integrates_to_dc_gain():
    tf = first_order_lowpass(2e9, gain=4.0)
    h = impulse_response(tf, FS, duration=3e-9)
    assert np.sum(h) / FS == pytest.approx(4.0, rel=1e-3)


def test_sine_through_lowpass_matches_analytic_gain():
    tf = first_order_lowpass(5e9)
    f0 = 5e9
    t = np.arange(int(20 * FS / f0)) / FS
    x = np.sin(2 * np.pi * f0 * t)
    y = simulate_tf(tf, x, FS)
    steady = y[len(y) // 2:]
    assert np.max(np.abs(steady)) == pytest.approx(1 / math.sqrt(2),
                                                   rel=0.02)


def test_simulate_starts_in_steady_state():
    # A constant input should pass through a low-pass without transient.
    tf = first_order_lowpass(1e9, gain=2.0)
    out = simulate_tf(tf, np.full(64, 0.5), FS)
    np.testing.assert_allclose(out, 1.0, rtol=1e-6)


def test_simulate_initial_value_override():
    tf = first_order_lowpass(1e9, gain=1.0)
    # Pretend the line idled at 1.0 before a step to 0.
    out = simulate_tf(tf, np.zeros(3000), FS, initial_value=1.0)
    assert out[0] == pytest.approx(1.0, abs=0.05)
    assert out[-1] == pytest.approx(0.0, abs=1e-3)


def test_simulate_rejects_2d():
    with pytest.raises(ValueError):
        simulate_tf(RationalTF.constant(1.0), np.zeros((2, 2)), FS)


def test_empty_data_passthrough():
    out = simulate_tf(RationalTF.constant(1.0), np.array([]), FS)
    assert out.size == 0


def test_second_order_transient_matches_peaking():
    # A peaked TF overshoots a step; flat Q does not.
    peaked = second_order_lowpass(5e9, q=1.5)
    flat = second_order_lowpass(5e9, q=0.5)
    step = np.ones(int(FS * 2e-9))
    step[0] = 0.0
    y_peaked = simulate_tf(peaked, step, FS, initial_value=0.0)
    y_flat = simulate_tf(flat, step, FS, initial_value=0.0)
    assert y_peaked.max() > 1.05
    assert y_flat.max() < 1.01


def test_highpass_zero_differentiates_edges():
    # A TF with a zero boosts edges: output overshoots the settled value.
    tf = pole_zero_tf([8e9], [1e9], gain=1.0)
    step = np.concatenate([np.zeros(100), np.ones(4000)])
    y = simulate_tf(tf, step, FS, initial_value=0.0)
    assert y.max() > 1.5
    assert y[-1] == pytest.approx(1.0, rel=1e-2)


def test_duration_validation():
    tf = first_order_lowpass(1e9)
    with pytest.raises(ValueError):
        impulse_response(tf, FS, duration=0.0)
    with pytest.raises(ValueError):
        step_response(tf, FS, duration=-1.0)
