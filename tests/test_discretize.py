"""Bilinear discretization and transient simulation accuracy."""

import math

import numpy as np
import pytest

from repro.lti import (
    RationalTF,
    bilinear_transform,
    first_order_lowpass,
    impulse_response,
    pole_zero_tf,
    second_order_lowpass,
    simulate_tf,
    step_response,
)


FS = 320e9  # the library's standard 32 samples/bit at 10 Gb/s


def test_constant_tf_passthrough():
    data = np.array([1.0, -2.0, 3.0])
    out = simulate_tf(RationalTF.constant(2.5), data, FS)
    np.testing.assert_allclose(out, 2.5 * data)


def test_bilinear_preserves_dc():
    tf = first_order_lowpass(2e9, gain=7.0)
    b, a = bilinear_transform(tf, FS)
    # H(z=1) = sum(b)/sum(a) equals the analog DC gain exactly.
    assert np.sum(b) / np.sum(a) == pytest.approx(7.0)


def test_bilinear_rejects_bad_rates():
    tf = first_order_lowpass(1e9)
    with pytest.raises(ValueError):
        bilinear_transform(tf, 0.0)
    with pytest.raises(ValueError):
        bilinear_transform(tf, 1e9, prewarp_hz=1e9)  # above Nyquist


def test_prewarp_matches_analog_exactly_at_frequency():
    tf = first_order_lowpass(3e9)
    fs = 20e9
    f0 = 3e9
    b, a = bilinear_transform(tf, fs, prewarp_hz=f0)
    z = np.exp(2j * np.pi * f0 / fs)
    h_digital = np.polyval(b, 1 / z) / np.polyval(a, 1 / z)
    h_analog = tf.response(np.array([f0]))[0]
    assert abs(h_digital) == pytest.approx(abs(h_analog), rel=1e-9)


def test_step_response_of_lowpass_settles_to_dc_gain():
    tf = first_order_lowpass(1e9, gain=3.0)
    y = step_response(tf, FS, duration=5e-9)
    assert y[-1] == pytest.approx(3.0, rel=1e-3)


def test_step_response_time_constant():
    tf = first_order_lowpass(1e9)
    y = step_response(tf, FS, duration=2e-9)
    tau = 1.0 / (2 * np.pi * 1e9)
    idx = int(round(tau * FS))
    assert y[idx] == pytest.approx(1 - math.exp(-1), rel=0.02)


def test_impulse_response_integrates_to_dc_gain():
    tf = first_order_lowpass(2e9, gain=4.0)
    h = impulse_response(tf, FS, duration=3e-9)
    assert np.sum(h) / FS == pytest.approx(4.0, rel=1e-3)


def test_sine_through_lowpass_matches_analytic_gain():
    tf = first_order_lowpass(5e9)
    f0 = 5e9
    t = np.arange(int(20 * FS / f0)) / FS
    x = np.sin(2 * np.pi * f0 * t)
    y = simulate_tf(tf, x, FS)
    steady = y[len(y) // 2:]
    assert np.max(np.abs(steady)) == pytest.approx(1 / math.sqrt(2),
                                                   rel=0.02)


def test_simulate_starts_in_steady_state():
    # A constant input should pass through a low-pass without transient.
    tf = first_order_lowpass(1e9, gain=2.0)
    out = simulate_tf(tf, np.full(64, 0.5), FS)
    np.testing.assert_allclose(out, 1.0, rtol=1e-6)


def test_simulate_initial_value_override():
    tf = first_order_lowpass(1e9, gain=1.0)
    # Pretend the line idled at 1.0 before a step to 0.
    out = simulate_tf(tf, np.zeros(3000), FS, initial_value=1.0)
    assert out[0] == pytest.approx(1.0, abs=0.05)
    assert out[-1] == pytest.approx(0.0, abs=1e-3)


def test_simulate_accepts_2d_batches():
    tf = first_order_lowpass(1e9, gain=2.0)
    rows = np.stack([np.full(64, 0.5), np.full(64, -0.25)])
    out = simulate_tf(tf, rows, FS)
    assert out.shape == rows.shape
    # Per-row steady-state initialization: each row passes its own DC.
    np.testing.assert_allclose(out[0], 1.0, rtol=1e-6)
    np.testing.assert_allclose(out[1], -0.5, rtol=1e-6)


def test_simulate_2d_rows_match_1d_runs():
    tf = second_order_lowpass(5e9, q=1.2)
    rng = np.random.default_rng(7)
    rows = rng.standard_normal((5, 256))
    batched = simulate_tf(tf, rows, FS)
    for row_in, row_out in zip(rows, batched):
        np.testing.assert_array_equal(simulate_tf(tf, row_in, FS), row_out)


def test_simulate_rejects_3d():
    with pytest.raises(ValueError):
        simulate_tf(RationalTF.constant(1.0), np.zeros((2, 2, 2)), FS)


def test_empty_data_passthrough():
    out = simulate_tf(RationalTF.constant(1.0), np.array([]), FS)
    assert out.size == 0


def test_second_order_transient_matches_peaking():
    # A peaked TF overshoots a step; flat Q does not.
    peaked = second_order_lowpass(5e9, q=1.5)
    flat = second_order_lowpass(5e9, q=0.5)
    step = np.ones(int(FS * 2e-9))
    step[0] = 0.0
    y_peaked = simulate_tf(peaked, step, FS, initial_value=0.0)
    y_flat = simulate_tf(flat, step, FS, initial_value=0.0)
    assert y_peaked.max() > 1.05
    assert y_flat.max() < 1.01


def test_highpass_zero_differentiates_edges():
    # A TF with a zero boosts edges: output overshoots the settled value.
    tf = pole_zero_tf([8e9], [1e9], gain=1.0)
    step = np.concatenate([np.zeros(100), np.ones(4000)])
    y = simulate_tf(tf, step, FS, initial_value=0.0)
    assert y.max() > 1.5
    assert y[-1] == pytest.approx(1.0, rel=1e-2)


def test_step_response_accepts_prewarp():
    tf = first_order_lowpass(1e9, gain=3.0)
    y = step_response(tf, FS, duration=5e-9, prewarp_hz=1e9)
    assert y[-1] == pytest.approx(3.0, rel=1e-3)


def test_responses_consistent_with_transient_for_s0_pole():
    # An integrator (pole at s=0) has a degenerate lfilter_zi; the
    # responses must still agree with an equivalent transient run that
    # idles at zero before the edge.
    tf = RationalTF.integrator(gain=2e9)
    y_step = step_response(tf, FS, duration=1e-9)
    step = np.ones(len(y_step))
    y_sim = simulate_tf(tf, step, FS, initial_value=0.0)
    np.testing.assert_allclose(y_step, y_sim)
    # The integral of a unit step ramps at `gain`.
    t_end = (len(y_step) - 1) / FS
    assert y_step[-1] == pytest.approx(2e9 * t_end, rel=1e-2)


def test_impulse_response_batch_consistency():
    tf = pole_zero_tf([8e9], [1e9], gain=1.0)
    h = impulse_response(tf, FS, duration=1e-9, prewarp_hz=4e9)
    assert h.shape == (max(2, int(round(1e-9 * FS))),)


def test_duration_validation():
    tf = first_order_lowpass(1e9)
    with pytest.raises(ValueError):
        impulse_response(tf, FS, duration=0.0)
    with pytest.raises(ValueError):
        step_response(tf, FS, duration=-1.0)
