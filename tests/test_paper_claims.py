"""Integration tests pinning every quantitative claim in the paper.

One test per claim, labelled with the paper section it comes from.
These are the repository's reproduction contract: if a refactor breaks a
headline number, it fails here with the claim spelled out.
"""

import pytest

from repro import (
    BackplaneChannel,
    bits_to_nrz,
    build_input_interface,
    build_io_interface,
    build_output_interface,
    prbs7,
)
from repro.analysis import EyeDiagram, measure_dynamic_range
from repro.baselines import paper_style_comparison
from repro.core import BetaMultiplierReference


BIT_RATE = 10e9


def eye_of(wave):
    return EyeDiagram.measure_waveform(wave, BIT_RATE, skip_ui=16)


def test_claim_10gbps_operation_with_prbs7():
    """Abstract: '10 Gb/s operation' with 2^7-1 PRBS (Fig 14 setup)."""
    rx = build_input_interface()
    wave = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=0.1,
                       samples_per_bit=16)
    m = eye_of(rx.process(wave))
    assert m.is_open
    assert m.eye_width_ui > 0.7


def test_claim_total_power_70mw():
    """Abstract: 'total power consumption of the I/O interface is only
    70 mW'."""
    power_mw = build_io_interface().budget().total_power_w() * 1e3
    assert power_mw == pytest.approx(70.0, rel=0.10)


def test_claim_areas():
    """Abstract/Section IV: input 0.02 mm^2, output 0.008 mm^2, core
    0.028 mm^2."""
    rx = build_input_interface()
    tx = build_output_interface()
    assert rx.budget().total_area_mm2() == pytest.approx(0.02, rel=0.01)
    assert tx.budget().total_area_mm2() == pytest.approx(0.008, rel=0.01)
    total = build_io_interface().budget().total_area_mm2()
    assert total == pytest.approx(0.028, rel=0.01)


def test_claim_area_reduction_80_percent():
    """Abstract: 'reduce 80 % of the circuit area compared to the
    circuit area with on-chip inductors'."""
    assert paper_style_comparison().reduction_percent >= 70.0


def test_claim_40db_dc_gain():
    """Table I: DC gain (differential) 40 dB."""
    assert build_input_interface().dc_gain_db() == pytest.approx(40.0,
                                                                 abs=2.5)


def test_claim_9p5ghz_bandwidth():
    """Table I: bandwidth (-3 dB) 9.5 GHz."""
    assert build_input_interface().bandwidth_3db() == pytest.approx(
        9.5e9, rel=0.10
    )


def test_claim_4mv_sensitivity_and_40db_dynamic_range():
    """Abstract: '10 Gb/s with 40 dB input dynamic range and 4 mV input
    sensitivity'."""
    rx = build_input_interface()
    result = measure_dynamic_range(rx.process, full_swing=rx.output_swing,
                                   n_bits=150)
    assert result.sensitivity_vpp <= 6e-3
    assert result.dynamic_range_db >= 40.0


def test_claim_overload_1v8_input():
    """Fig 14(b): clean eye at 1.8 V pp input (the overload end)."""
    rx = build_input_interface()
    wave = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=1.8,
                       samples_per_bit=16)
    m = eye_of(rx.process(wave))
    assert m.is_open
    assert m.eye_width_ui > 0.6


def test_claim_250mv_output_swing():
    """Fig 14: 'output signals ... are up to 250 mV' (the LA limit)."""
    rx = build_input_interface()
    assert rx.output_swing == pytest.approx(0.25)
    wave = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=0.1,
                       samples_per_bit=16)
    m = eye_of(rx.process(wave))
    assert m.eye_amplitude == pytest.approx(2 * 0.25, rel=0.15)


def test_claim_8ma_driver():
    """Section II-B: 'approximately 8 mA driving current in order to
    drive 50 ohm load'."""
    assert build_output_interface().output_current == pytest.approx(8e-3)


def test_claim_equalizer_opens_channel_eye():
    """Fig 15: equalizer restores the eye after the backplane."""
    channel = BackplaneChannel(0.5)
    wave = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=0.2,
                       samples_per_bit=16)
    received = channel.process(wave)
    with_eq = build_input_interface(equalizer_control_voltage=0.55)
    without_eq = build_input_interface().without_equalizer()
    m_with = eye_of(with_eq.process(received))
    m_without = eye_of(without_eq.process(received))
    assert m_with.eye_width_ui > m_without.eye_width_ui + 0.1
    assert m_with.jitter_pp < 0.6 * m_without.jitter_pp


def test_claim_peaking_compensates_channel():
    """Fig 16: voltage peaking improves the transmitted signal after
    the channel."""
    channel = BackplaneChannel(0.5)
    wave = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=0.3,
                       samples_per_bit=16)
    with_peaking = channel.process(
        build_output_interface(peaking_enabled=True).process(wave)
    )
    without = channel.process(
        build_output_interface(peaking_enabled=False).process(wave)
    )
    assert eye_of(with_peaking).eye_height > eye_of(without).eye_height


def test_claim_peaking_tuning_range_20_percent():
    """Section II-B: 'tunable delay to alter the voltage-peaking tuning
    range up to 20 %'."""
    tx = build_output_interface()
    delay = tx.peaking.differentiator.delay
    assert delay.tuned(1.0 / 1.2).tuning_fraction() == pytest.approx(0.2)


def test_claim_bandgap_specs():
    """Section III-E: TC < 550 ppm/C, supply sensitivity < 26 mV/V,
    trim within 10 mV."""
    bmvr = BetaMultiplierReference()
    assert bmvr.temperature_coefficient_ppm(-40.0, 125.0) < 550.0
    assert bmvr.supply_sensitivity_mv_per_v(1.6, 2.0) < 26.0
    _, error = bmvr.trim_to(bmvr.reference_voltage() + 0.008)
    assert abs(error) <= 10e-3


def test_claim_50ohm_input_match():
    """Section II-A: 'input equalizer is for 50 ohm input impedance
    matching'."""
    eq = build_input_interface().equalizer
    assert eq.input_impedance() == pytest.approx(50.0, rel=0.1)
    assert eq.input_return_loss_db() > 15.0
