"""RLGC transmission line physics and crosstalk aggressors."""

import numpy as np
import pytest

from repro.channel import (
    BackplaneChannel,
    CrosstalkAggressor,
    CrosstalkChannel,
    RlgcLine,
    microstrip_like,
)
from repro.analysis import EyeDiagram
from repro.signals import bits_to_nrz, prbs7

BIT_RATE = 10e9


def line_half_metre():
    return microstrip_like(length=0.5)


# -- RLGC -----------------------------------------------------------------

def test_z0_is_50_ohm_by_construction():
    line = line_half_metre()
    assert line.z0_nominal == pytest.approx(50.0, rel=1e-6)
    z0 = line.characteristic_impedance(np.array([5e9]))
    assert abs(z0[0]) == pytest.approx(50.0, rel=0.05)


def test_delay_matches_er_eff():
    line = line_half_metre()
    # v = c/sqrt(3): 0.5 m in ~2.9 ns.
    assert line.delay == pytest.approx(0.5 * np.sqrt(3.0) / 2.998e8,
                                       rel=1e-6)


def test_loss_increases_with_frequency():
    line = line_half_metre()
    f = np.array([1e9, 5e9, 10e9])
    loss = line.loss_db(f)
    assert np.all(np.diff(loss) > 0)
    assert 5.0 < loss[1] < 40.0  # a lossy half metre of FR-4 at 5 GHz


def test_gamma_has_decaying_real_part():
    line = line_half_metre()
    gamma = line.gamma(np.array([1e9, 10e9]))
    assert np.all(gamma.real > 0)
    assert np.all(gamma.imag > 0)


def test_matched_input_impedance_is_z0():
    line = line_half_metre()
    f = np.array([2e9, 8e9])
    z0 = line.characteristic_impedance(f)
    zin = line.input_impedance(f, z_load=50.0)
    np.testing.assert_allclose(np.abs(zin), np.abs(z0), rtol=0.1)


def test_open_line_input_impedance_large_at_low_freq():
    line = microstrip_like(length=0.01)  # short stub
    zin = line.input_impedance(np.array([1e8]), z_load=1e9)
    assert abs(zin[0]) > 300.0


def test_mismatched_transfer_shows_ripple():
    line = line_half_metre()
    f = np.linspace(1e9, 10e9, 200)
    matched = np.abs(line.transfer_mismatched(f, 50.0, 50.0))
    mismatched = np.abs(line.transfer_mismatched(f, 20.0, 120.0))
    # Reflections create frequency ripple absent in the matched case.
    ripple_matched = np.std(np.diff(np.log(matched)))
    ripple_mismatched = np.std(np.diff(np.log(mismatched)))
    assert ripple_mismatched > 1.5 * ripple_matched


def test_equivalent_parameters_bridge():
    line = line_half_metre()
    params = line.equivalent_parameters()
    channel = BackplaneChannel(0.5, params=params)
    f = np.linspace(1e9, 9e9, 15)
    np.testing.assert_allclose(channel.loss_db(f), line.loss_db(f),
                               rtol=0.25, atol=1.0)


def test_rlgc_validation():
    with pytest.raises(ValueError):
        RlgcLine(r_dc=1.0, r_skin=1e-4, inductance=0.0,
                 capacitance=1e-10, tan_delta=0.02, length=0.5)
    with pytest.raises(ValueError):
        RlgcLine(r_dc=-1.0, r_skin=1e-4, inductance=3e-7,
                 capacitance=1e-10, tan_delta=0.02, length=0.5)
    with pytest.raises(ValueError):
        microstrip_like(length=0.0)
    line = line_half_metre()
    with pytest.raises(ValueError):
        line.input_impedance(np.array([1e9]), z_load=-1.0)


# -- crosstalk -----------------------------------------------------------

def victim_and_aggressor(coupling_db=20.0, is_fext=True):
    victim_wave = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=0.25,
                              samples_per_bit=16)
    aggressor_wave = bits_to_nrz(prbs7(260, seed=9), BIT_RATE,
                                 amplitude=0.25, samples_per_bit=16)
    channel = CrosstalkChannel(
        channel=BackplaneChannel(0.3),
        aggressors=[CrosstalkAggressor(signal=aggressor_wave,
                                       coupling_db=coupling_db,
                                       is_fext=is_fext)],
    )
    return victim_wave, channel


def test_crosstalk_closes_the_eye():
    victim, noisy_channel = victim_and_aggressor(coupling_db=14.0)
    clean_channel = BackplaneChannel(0.3)
    m_clean = EyeDiagram.measure_waveform(clean_channel.process(victim),
                                          BIT_RATE, skip_ui=16)
    m_noisy = EyeDiagram.measure_waveform(noisy_channel.process(victim),
                                          BIT_RATE, skip_ui=16)
    assert m_noisy.eye_height < m_clean.eye_height


def test_weaker_coupling_hurts_less():
    victim, strong = victim_and_aggressor(coupling_db=14.0)
    _, weak = victim_and_aggressor(coupling_db=34.0)
    m_strong = EyeDiagram.measure_waveform(strong.process(victim),
                                           BIT_RATE, skip_ui=16)
    m_weak = EyeDiagram.measure_waveform(weak.process(victim),
                                         BIT_RATE, skip_ui=16)
    assert m_weak.eye_height > m_strong.eye_height
    assert weak.interference_rms() < strong.interference_rms()


def test_next_bypasses_channel_attenuation():
    victim, fext = victim_and_aggressor(coupling_db=20.0, is_fext=True)
    _, next_ = victim_and_aggressor(coupling_db=20.0, is_fext=False)
    # NEXT arrives unattenuated: more interference at equal coupling.
    assert next_.interference_rms() > fext.interference_rms()


def test_no_aggressors_is_plain_channel():
    victim = bits_to_nrz(prbs7(100), BIT_RATE, samples_per_bit=16)
    bare = CrosstalkChannel(channel=BackplaneChannel(0.3))
    plain = BackplaneChannel(0.3)
    np.testing.assert_allclose(bare.process(victim).data,
                               plain.process(victim).data)
    assert bare.interference_rms() == 0.0


def test_crosstalk_validation():
    wave = bits_to_nrz(prbs7(50), BIT_RATE, samples_per_bit=16)
    with pytest.raises(ValueError):
        CrosstalkAggressor(signal=wave, coupling_db=-3.0)
    with pytest.raises(ValueError):
        CrosstalkAggressor(signal=wave, coupling_db=20.0, nyquist_hz=0.0)
    short = bits_to_nrz(prbs7(30), BIT_RATE, samples_per_bit=16)
    channel = CrosstalkChannel(
        channel=BackplaneChannel(0.3),
        aggressors=[CrosstalkAggressor(signal=short, coupling_db=20.0)],
    )
    victim = bits_to_nrz(prbs7(100), BIT_RATE, samples_per_bit=16)
    with pytest.raises(ValueError):
        channel.process(victim)
