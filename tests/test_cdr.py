"""Clock-data recovery: phase detector votes and loop locking."""

import numpy as np
import pytest

from repro.cdr import BangBangCdr, CdrConfig, PdVote, alexander_votes
from repro.signals import RandomJitter, NrzEncoder, bits_to_nrz, prbs7

BIT_RATE = 10e9


# -- phase detector -----------------------------------------------------------

def test_votes_on_transitions_only():
    # Data +1 -> +1: no transition, HOLD regardless of edge sample.
    votes = alexander_votes(np.array([1.0, 1.0]), np.array([0.5]))
    assert votes[0] == PdVote.HOLD


def test_early_vote():
    # Transition +1 -> -1 with edge sample still at the OLD value:
    # the edge came after the crossing sample -> clock EARLY.
    votes = alexander_votes(np.array([1.0, -1.0]), np.array([0.8]))
    assert votes[0] == PdVote.EARLY


def test_late_vote():
    # Edge sample already at the NEW value -> clock LATE.
    votes = alexander_votes(np.array([1.0, -1.0]), np.array([-0.8]))
    assert votes[0] == PdVote.LATE


def test_votes_vectorized():
    data = np.array([1.0, -1.0, -1.0, 1.0])
    edge = np.array([0.9, -0.5, 0.9])
    votes = alexander_votes(data, edge)
    # Edge sample at the old level (0.9 = prev bit) -> EARLY; no
    # transition -> HOLD; edge sample at the new level -> LATE.
    assert list(votes) == [PdVote.EARLY, PdVote.HOLD, PdVote.LATE]


def test_votes_length_validation():
    with pytest.raises(ValueError):
        alexander_votes(np.array([1.0, 1.0]), np.array([0.5, 0.5]))


# -- loop ---------------------------------------------------------------

def clean_wave(n_bits=600, amplitude=0.4, spb=16):
    return bits_to_nrz(prbs7(n_bits), BIT_RATE, amplitude=amplitude,
                       samples_per_bit=spb)


def test_cdr_locks_on_clean_data():
    result = BangBangCdr(CdrConfig(bit_rate=BIT_RATE)).recover(clean_wave())
    assert result.is_locked
    assert result.locked_at_bit < 300
    # Locks near zero phase (data sampled at bit centres).
    assert abs(result.steady_state_phase_ui()) < 0.06


def test_cdr_decisions_match_pattern():
    bits = prbs7(600)
    wave = bits_to_nrz(bits, BIT_RATE, amplitude=0.4, samples_per_bit=16)
    result = BangBangCdr(CdrConfig(bit_rate=BIT_RATE)).recover(wave)
    decisions = result.decisions
    errors = min(
        int(np.sum(decisions[lag:lag + 400] != bits[:400]))
        for lag in range(0, 4)
    )
    assert errors == 0


def test_cdr_hunting_jitter_scale():
    # Bang-bang limit cycle: recovered jitter on the order of kp.
    config = CdrConfig(bit_rate=BIT_RATE, kp=4e-3)
    result = BangBangCdr(config).recover(clean_wave())
    assert result.recovered_jitter_ui() < 10 * config.kp


def test_cdr_locks_from_any_initial_phase():
    for phase0 in (-0.4, -0.2, 0.1, 0.45):
        config = CdrConfig(bit_rate=BIT_RATE, initial_phase_ui=phase0)
        result = BangBangCdr(config).recover(clean_wave())
        assert result.is_locked, f"failed from phase {phase0}"


def test_cdr_tracks_frequency_offset():
    # 200 ppm offset: the integral path must absorb the ramp.
    config = CdrConfig(bit_rate=BIT_RATE, ki=5e-5,
                       initial_frequency_ppm=200.0)
    result = BangBangCdr(config).recover(clean_wave(n_bits=800))
    bits = prbs7(800)
    errors = min(
        int(np.sum(result.decisions[lag:lag + 500] != bits[:500]))
        for lag in range(0, 4)
    )
    assert errors <= 1


def test_cdr_tolerates_input_jitter():
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=16,
                         amplitude=0.4)
    bits = prbs7(600)
    jittered = encoder.encode(
        bits, edge_offsets=RandomJitter(2e-12, seed=3).offsets(600,
                                                               BIT_RATE)
    )
    result = BangBangCdr(CdrConfig(bit_rate=BIT_RATE)).recover(jittered)
    assert result.is_locked
    errors = min(
        int(np.sum(result.decisions[lag:lag + 400] != bits[:400]))
        for lag in range(0, 4)
    )
    assert errors == 0


def test_cdr_through_receiver_chain():
    from repro.core import build_input_interface

    rx = build_input_interface()
    wave = bits_to_nrz(prbs7(600), BIT_RATE, amplitude=0.01,
                       samples_per_bit=16)
    out = rx.process(wave)
    result = BangBangCdr(CdrConfig(bit_rate=BIT_RATE)).recover(out)
    assert result.is_locked


def test_cdr_validation():
    with pytest.raises(ValueError):
        CdrConfig(bit_rate=0.0)
    with pytest.raises(ValueError):
        CdrConfig(bit_rate=1e9, kp=0.0)
    short = bits_to_nrz(prbs7(10), BIT_RATE, samples_per_bit=16)
    with pytest.raises(ValueError):
        BangBangCdr(CdrConfig(bit_rate=BIT_RATE)).recover(short)


def test_result_accessors_require_lock():
    from repro.cdr import CdrResult

    unlocked = CdrResult(decisions=np.array([1]),
                         phase_track_ui=np.array([0.0]),
                         votes=np.array([0]), locked_at_bit=-1)
    assert not unlocked.is_locked
    with pytest.raises(ValueError):
        unlocked.steady_state_phase_ui()
    with pytest.raises(ValueError):
        unlocked.recovered_jitter_ui()
