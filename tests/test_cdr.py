"""Clock-data recovery: phase detector votes, loop locking, cycle
slips, and batched-vs-serial row-exactness."""

import dataclasses

import numpy as np
import pytest

from repro.cdr import (
    BangBangCdr,
    CdrConfig,
    PdVote,
    alexander_votes,
    alexander_votes_batch,
)
from repro.link import stage
from repro.signals import (
    RandomJitter,
    NrzEncoder,
    WaveformBatch,
    bits_to_nrz,
    prbs7,
)

BIT_RATE = 10e9


# -- phase detector -----------------------------------------------------------

def test_votes_on_transitions_only():
    # Data +1 -> +1: no transition, HOLD regardless of edge sample.
    votes = alexander_votes(np.array([1.0, 1.0]), np.array([0.5]))
    assert votes[0] == PdVote.HOLD


def test_early_vote():
    # Transition +1 -> -1 with edge sample still at the OLD value:
    # the edge came after the crossing sample -> clock EARLY.
    votes = alexander_votes(np.array([1.0, -1.0]), np.array([0.8]))
    assert votes[0] == PdVote.EARLY


def test_late_vote():
    # Edge sample already at the NEW value -> clock LATE.
    votes = alexander_votes(np.array([1.0, -1.0]), np.array([-0.8]))
    assert votes[0] == PdVote.LATE


def test_votes_vectorized():
    data = np.array([1.0, -1.0, -1.0, 1.0])
    edge = np.array([0.9, -0.5, 0.9])
    votes = alexander_votes(data, edge)
    # Edge sample at the old level (0.9 = prev bit) -> EARLY; no
    # transition -> HOLD; edge sample at the new level -> LATE.
    assert list(votes) == [PdVote.EARLY, PdVote.HOLD, PdVote.LATE]


def test_votes_length_validation():
    with pytest.raises(ValueError):
        alexander_votes(np.array([1.0, 1.0]), np.array([0.5, 0.5]))


def test_votes_batch_matches_rows():
    rng = np.random.default_rng(5)
    data = rng.normal(size=(6, 40))
    edge = rng.normal(size=(6, 39))
    batched = alexander_votes_batch(data, edge)
    for i in range(len(data)):
        np.testing.assert_array_equal(batched[i],
                                      alexander_votes(data[i], edge[i]))


def test_votes_batch_validation():
    with pytest.raises(ValueError):
        alexander_votes_batch(np.ones((2, 5)), np.ones((2, 5)))
    with pytest.raises(ValueError):
        alexander_votes_batch(np.ones(5), np.ones(4))


# -- loop ---------------------------------------------------------------

def clean_wave(n_bits=600, amplitude=0.4, spb=16):
    return bits_to_nrz(prbs7(n_bits), BIT_RATE, amplitude=amplitude,
                       samples_per_bit=spb)


def test_cdr_locks_on_clean_data():
    result = BangBangCdr(CdrConfig(bit_rate=BIT_RATE)).recover(clean_wave())
    assert result.is_locked
    assert result.locked_at_bit < 300
    # Locks near zero phase (data sampled at bit centres).
    assert abs(result.steady_state_phase_ui()) < 0.06


def test_cdr_decisions_match_pattern():
    bits = prbs7(600)
    wave = bits_to_nrz(bits, BIT_RATE, amplitude=0.4, samples_per_bit=16)
    result = BangBangCdr(CdrConfig(bit_rate=BIT_RATE)).recover(wave)
    decisions = result.decisions
    errors = min(
        int(np.sum(decisions[lag:lag + 400] != bits[:400]))
        for lag in range(0, 4)
    )
    assert errors == 0


def test_cdr_hunting_jitter_scale():
    # Bang-bang limit cycle: recovered jitter on the order of kp.
    config = CdrConfig(bit_rate=BIT_RATE, kp=4e-3)
    result = BangBangCdr(config).recover(clean_wave())
    assert result.recovered_jitter_ui() < 10 * config.kp


def test_cdr_locks_from_any_initial_phase():
    for phase0 in (-0.4, -0.2, 0.1, 0.45):
        config = CdrConfig(bit_rate=BIT_RATE, initial_phase_ui=phase0)
        result = BangBangCdr(config).recover(clean_wave())
        assert result.is_locked, f"failed from phase {phase0}"


def test_cdr_tracks_frequency_offset():
    # 200 ppm offset: the integral path must absorb the ramp.
    config = CdrConfig(bit_rate=BIT_RATE, ki=5e-5,
                       initial_frequency_ppm=200.0)
    result = BangBangCdr(config).recover(clean_wave(n_bits=800))
    bits = prbs7(800)
    errors = min(
        int(np.sum(result.decisions[lag:lag + 500] != bits[:500]))
        for lag in range(0, 4)
    )
    assert errors <= 1


def test_cdr_tolerates_input_jitter():
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=16,
                         amplitude=0.4)
    bits = prbs7(600)
    jittered = encoder.encode(
        bits, edge_offsets=RandomJitter(2e-12, seed=3).offsets(600,
                                                               BIT_RATE)
    )
    result = BangBangCdr(CdrConfig(bit_rate=BIT_RATE)).recover(jittered)
    assert result.is_locked
    errors = min(
        int(np.sum(result.decisions[lag:lag + 400] != bits[:400]))
        for lag in range(0, 4)
    )
    assert errors == 0


def test_cdr_through_receiver_chain():
    from repro.core import build_input_interface

    rx = build_input_interface()
    wave = bits_to_nrz(prbs7(600), BIT_RATE, amplitude=0.01,
                       samples_per_bit=16)
    out = rx.process(wave)
    result = BangBangCdr(CdrConfig(bit_rate=BIT_RATE)).recover(out)
    assert result.is_locked


def test_cdr_validation():
    with pytest.raises(ValueError):
        CdrConfig(bit_rate=0.0)
    with pytest.raises(ValueError):
        CdrConfig(bit_rate=1e9, kp=0.0)
    short = bits_to_nrz(prbs7(10), BIT_RATE, samples_per_bit=16)
    with pytest.raises(ValueError):
        BangBangCdr(CdrConfig(bit_rate=BIT_RATE)).recover(short)


def test_result_accessors_require_lock():
    from repro.cdr import CdrResult

    unlocked = CdrResult(decisions=np.array([1]),
                         phase_track_ui=np.array([0.0]),
                         votes=np.array([0]), locked_at_bit=-1)
    assert not unlocked.is_locked
    with pytest.raises(ValueError):
        unlocked.steady_state_phase_ui()
    with pytest.raises(ValueError):
        unlocked.recovered_jitter_ui()


# -- cycle slips and frequency offset -----------------------------------


def test_no_slips_on_clean_tracking():
    result = BangBangCdr(CdrConfig(bit_rate=BIT_RATE)).recover(clean_wave())
    assert result.slips == 0


def test_frequency_offset_pull_in():
    # A 300 ppm offset with a live integral path: the loop pulls the
    # frequency in without slipping a cycle and still decodes the data.
    config = CdrConfig(bit_rate=BIT_RATE, ki=5e-5,
                       initial_frequency_ppm=300.0)
    result = BangBangCdr(config).recover(clean_wave(n_bits=800))
    assert result.slips == 0
    assert result.is_locked
    bits = prbs7(800)
    errors = min(
        int(np.sum(result.decisions[lag:lag + 500] != bits[:500]))
        for lag in range(0, 4)
    )
    assert errors <= 1


def test_induced_cycle_slip_is_tracked_and_index_consistent():
    # ki = 0 cannot absorb a steady frequency ramp: the phase marches
    # through +-1 UI and must wrap.  The wrap is a counted slip and the
    # decision stream stays one-per-loop-step (no silent duplicates or
    # drops): after the slips, the decisions align to the transmitted
    # pattern at a lag that reflects the slipped bits.
    n_bits = 600
    bits = prbs7(n_bits)
    wave = bits_to_nrz(bits, BIT_RATE, amplitude=0.4, samples_per_bit=16)
    config = CdrConfig(bit_rate=BIT_RATE, ki=0.0,
                       initial_frequency_ppm=4000.0)
    result = BangBangCdr(config).recover(wave)

    assert result.slips >= 1
    # Index consistency: one decision, one phase point, one vote slot
    # per executed loop step.
    assert len(result.decisions) == len(result.phase_track_ui)
    assert len(result.decisions) == len(result.votes)
    # The tail of the decision stream matches the pattern shifted by
    # (about) the slip count — the slipped bits were skipped, not
    # duplicated into the stream.
    tail_len = 100
    k0 = len(result.decisions) - tail_len
    tail = result.decisions[k0:]
    matches = [
        lag for lag in range(result.slips + 3)
        if np.array_equal(tail, bits[k0 + lag:k0 + lag + tail_len])
    ]
    assert matches, "slipped stream no longer aligns to the pattern"
    assert max(matches) >= result.slips - 1


def test_slip_keeps_sampling_instant_continuous():
    # Across a wrap the recorded (wrapped) phase jumps by ~1 UI exactly
    # once per slip; the unwrapped sampling instant never jumps.
    config = CdrConfig(bit_rate=BIT_RATE, ki=0.0,
                       initial_frequency_ppm=4000.0)
    result = BangBangCdr(config).recover(clean_wave(n_bits=600))
    jumps = np.abs(np.diff(result.phase_track_ui)) > 0.5
    assert int(np.sum(jumps)) == abs(result.slips)


# -- vectorized lock detection ------------------------------------------


def naive_detect_lock(phases, window=64, tolerance_ui=0.05):
    """The seed's O(n*window) reference implementation."""
    if len(phases) < 2 * window:
        return -1
    for start in range(0, len(phases) - window):
        segment = phases[start:start + window]
        if np.ptp(segment) < tolerance_ui:
            remaining = phases[start:]
            if np.ptp(remaining) < 2 * tolerance_ui:
                return start
    return -1


def test_detect_lock_matches_naive_reference():
    rng = np.random.default_rng(17)
    tracks = [
        # Converging pull-in: ramp into a small limit cycle.
        np.concatenate([np.linspace(0.4, 0.0, 150),
                        0.004 * rng.standard_normal(250)]),
        # Pure limit cycle from the start.
        0.01 * np.sin(np.arange(300)),
        # Random walk: never locks.
        np.cumsum(0.02 * rng.standard_normal(400)),
        # Locks, then wanders off: the suffix guard must reject early
        # windows.
        np.concatenate([0.002 * rng.standard_normal(200),
                        np.linspace(0.0, 0.5, 100)]),
        # Too short for the window.
        np.zeros(100),
        # Exactly at the 2*window boundary.
        0.001 * rng.standard_normal(128),
    ]
    for i, track in enumerate(tracks):
        expected = naive_detect_lock(track)
        got = BangBangCdr._detect_lock(track)
        assert got == expected, f"track {i}: {got} != {expected}"


def test_detect_lock_matches_naive_on_real_tracks():
    for phase0 in (-0.4, 0.1, 0.45):
        config = CdrConfig(bit_rate=BIT_RATE, initial_phase_ui=phase0)
        track = BangBangCdr(config).recover(clean_wave()).phase_track_ui
        assert BangBangCdr._detect_lock(track) == naive_detect_lock(track)


# -- batched closed-loop recovery ---------------------------------------


def jittered_batch(n_rows=6, n_bits=600, amplitude=0.4):
    encoder = NrzEncoder(bit_rate=BIT_RATE, samples_per_bit=16,
                         amplitude=amplitude)
    bits = prbs7(n_bits)
    waves = [
        encoder.encode(bits, edge_offsets=RandomJitter(
            3e-12, seed=seed).offsets(n_bits, BIT_RATE))
        for seed in range(1, n_rows + 1)
    ]
    return WaveformBatch.stack(waves)


def test_recover_batch_rows_match_serial_on_jittered_waveforms():
    batch = jittered_batch()
    cdr = BangBangCdr(CdrConfig(bit_rate=BIT_RATE))
    batched = stage(cdr).recover(batch)
    assert batched.n_scenarios == len(batch)
    for i in range(len(batch)):
        serial = cdr.recover(batch[i])
        row = batched.row(i)
        np.testing.assert_array_equal(row.decisions, serial.decisions)
        np.testing.assert_array_equal(row.phase_track_ui,
                                      serial.phase_track_ui)
        np.testing.assert_array_equal(row.votes, serial.votes)
        assert row.locked_at_bit == serial.locked_at_bit
        assert row.slips == serial.slips
    assert batched.lock_yield() == 1.0
    assert np.isfinite(batched.recovered_jitter_ui()).all()


def test_recover_batch_rows_match_serial_with_slips():
    # Row-exactness must survive cycle slips and per-row truncation.
    batch = jittered_batch(n_rows=4)
    config = CdrConfig(bit_rate=BIT_RATE, ki=0.0,
                       initial_frequency_ppm=4000.0)
    cdr = BangBangCdr(config)
    batched = stage(cdr).recover(batch)
    for i in range(len(batch)):
        serial = cdr.recover(batch[i])
        row = batched.row(i)
        assert int(batched.n_bits[i]) == len(serial.decisions)
        np.testing.assert_array_equal(row.decisions, serial.decisions)
        np.testing.assert_array_equal(row.phase_track_ui,
                                      serial.phase_track_ui)
        assert row.slips == serial.slips
        assert row.slips >= 1


def test_recover_batch_initial_state_overrides():
    batch = jittered_batch(n_rows=3)
    base = CdrConfig(bit_rate=BIT_RATE)
    phases0 = np.array([-0.3, 0.0, 0.4])
    ppm = np.array([0.0, 100.0, -100.0])
    batched = stage(BangBangCdr(base)).recover(
        batch, initial_phase_ui=phases0, initial_frequency_ppm=ppm)
    for i in range(3):
        config = dataclasses.replace(base,
                                     initial_phase_ui=float(phases0[i]),
                                     initial_frequency_ppm=float(ppm[i]))
        serial = BangBangCdr(config).recover(batch[i])
        np.testing.assert_array_equal(batched.row(i).decisions,
                                      serial.decisions)
        np.testing.assert_array_equal(batched.row(i).phase_track_ui,
                                      serial.phase_track_ui)


def test_recover_batch_validation():
    batch = jittered_batch(n_rows=2)
    cdr = BangBangCdr(CdrConfig(bit_rate=BIT_RATE))
    with pytest.raises(ValueError):
        stage(cdr).recover(batch, initial_phase_ui=np.zeros(5))
    short = WaveformBatch.tiled(
        bits_to_nrz(prbs7(10), BIT_RATE, samples_per_bit=16), 3)
    with pytest.raises(ValueError):
        stage(cdr).recover(short)
