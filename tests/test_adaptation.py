"""Knob adaptation: scalar search and the equalizer/peaking adapters."""

import math

import pytest

from repro.channel import BackplaneChannel
from repro.core import (
    ScalarKnobSearch,
    adapt_equalizer,
    adapt_peaking,
    eye_quality_metric,
)
from repro.signals import bits_to_nrz, prbs7

BIT_RATE = 10e9


# -- scalar search -----------------------------------------------------------

def test_search_finds_parabola_peak():
    search = ScalarKnobSearch(lo=0.0, hi=10.0, n_grid=7, n_refine=20)
    result = search.maximize(lambda x: -(x - 3.7) ** 2)
    assert result.best_setting == pytest.approx(3.7, abs=0.05)
    assert result.evaluations == 7 + 2 + 20


def test_search_handles_edge_maximum():
    search = ScalarKnobSearch(lo=0.0, hi=1.0, n_refine=10)
    result = search.maximize(lambda x: x)  # monotone: peak at hi
    assert result.best_setting == pytest.approx(1.0, abs=0.1)


def test_search_history_records_everything():
    search = ScalarKnobSearch(lo=0.0, hi=1.0, n_grid=5, n_refine=3)
    result = search.maximize(lambda x: math.sin(3 * x))
    assert len(result.history) == result.evaluations
    best = max(result.history, key=lambda item: item[1])
    assert best[1] == result.best_score


def test_search_validation():
    with pytest.raises(ValueError):
        ScalarKnobSearch(lo=1.0, hi=0.0)
    with pytest.raises(ValueError):
        ScalarKnobSearch(lo=0.0, hi=1.0, n_grid=2)
    with pytest.raises(ValueError):
        ScalarKnobSearch(lo=0.0, hi=1.0, n_refine=-1)


# -- metric -----------------------------------------------------------------

def test_metric_ranks_clean_above_degraded():
    clean = bits_to_nrz(prbs7(260), BIT_RATE, amplitude=0.3,
                        samples_per_bit=16)
    degraded = BackplaneChannel(0.6).process(clean)
    assert eye_quality_metric(clean, BIT_RATE) \
        > eye_quality_metric(degraded, BIT_RATE)


def test_metric_penalizes_unmeasurable_waves():
    from repro.signals import Waveform
    import numpy as np

    flat = Waveform(np.zeros(200), 160e9)
    assert eye_quality_metric(flat, BIT_RATE) < 0


# -- adapters -----------------------------------------------------------

def test_equalizer_adaptation_prefers_boost_on_lossy_channel():
    result = adapt_equalizer(BackplaneChannel(0.5), n_refine=3)
    # ~13 dB of Nyquist loss wants strong equalization: V1 near the
    # bottom of its range (maximum boost).
    assert result.best_setting < 0.75
    assert result.best_score > 0.6  # a healthy reopened eye


def test_equalizer_adaptation_relaxed_on_short_channel():
    lossy = adapt_equalizer(BackplaneChannel(0.55), n_refine=3)
    mild = adapt_equalizer(BackplaneChannel(0.1), n_refine=3)
    # The mild channel needs less boost => higher (or equal) optimum V1.
    assert mild.best_setting >= lossy.best_setting - 0.05
    assert mild.best_score >= lossy.best_score


def test_peaking_adaptation_finds_nonzero_spike():
    result = adapt_peaking(BackplaneChannel(0.5), n_refine=3)
    assert 0.2e-3 <= result.best_setting <= 4e-3
    assert result.best_setting > 0.4e-3  # lossy channel wants peaking


# -- batched evaluation ------------------------------------------------------

def test_maximize_batch_matches_maximize_exactly():
    import numpy as np

    search = ScalarKnobSearch(lo=0.0, hi=10.0, n_grid=7, n_refine=8)
    objective = lambda x: math.sin(x) - 0.1 * (x - 4.0) ** 2
    serial = search.maximize(objective)
    batched = search.maximize_batch(
        lambda xs: np.array([objective(float(x)) for x in xs]))
    assert batched == serial  # same candidates, history and optimum


def test_maximize_batch_grid_goes_through_one_call():
    import numpy as np

    calls = []

    def objective_batch(xs):
        calls.append(len(xs))
        return -np.abs(xs - 0.4)

    search = ScalarKnobSearch(lo=0.0, hi=1.0, n_grid=5, n_refine=3)
    result = search.maximize_batch(objective_batch)
    assert calls[0] == 5              # the whole coarse grid at once
    assert all(n == 1 for n in calls[1:])  # golden-section refinements
    assert result.evaluations == 5 + 2 + 3


def test_maximize_batch_rejects_wrong_shape():
    import numpy as np
    import pytest

    search = ScalarKnobSearch(lo=0.0, hi=1.0)
    with pytest.raises(ValueError):
        search.maximize_batch(lambda xs: np.zeros(len(xs) + 1))


def test_eye_quality_metric_batch_is_exported():
    from repro.core import eye_quality_metric_batch
    from repro.signals import WaveformBatch

    clean = bits_to_nrz(prbs7(120), BIT_RATE, amplitude=0.3,
                        samples_per_bit=16)
    batch = WaveformBatch.stack([clean, BackplaneChannel(0.6).process(clean)])
    metrics = eye_quality_metric_batch(batch, BIT_RATE)
    assert metrics[0] == eye_quality_metric(clean, BIT_RATE)
    assert metrics[0] > metrics[1]


def test_adapt_equalizer_batched_matches_serial():
    channel = BackplaneChannel(0.4)
    batched = adapt_equalizer(channel, n_refine=2, batched=True)
    serial = adapt_equalizer(channel, n_refine=2, batched=False)
    assert batched == serial


def test_adapt_peaking_batched_matches_serial():
    channel = BackplaneChannel(0.5)
    batched = adapt_peaking(channel, n_refine=2, batched=True)
    serial = adapt_peaking(channel, n_refine=2, batched=False)
    assert batched == serial


def test_metric_batch_falls_back_on_non_integer_samples_per_ui():
    # The serial metric resamples non-integer samples/UI; the batched
    # fold cannot, so it must fall back per row instead of reporting
    # every row unmeasurable.
    import numpy as np
    from repro.core import eye_quality_metric_batch
    from repro.signals import WaveformBatch

    wave = bits_to_nrz(prbs7(120), BIT_RATE, amplitude=0.3,
                       samples_per_bit=16).resampled(15.5 * BIT_RATE)
    batch = WaveformBatch.stack([wave, wave * 0.5])
    metrics = eye_quality_metric_batch(batch, BIT_RATE)
    for i, row in enumerate(batch.rows()):
        assert metrics[i] == eye_quality_metric(row, BIT_RATE)
    assert np.all(metrics > 0)  # a clean eye, not the -10 sentinel
