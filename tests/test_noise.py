"""Noise sources and SNR helpers."""

import math

import numpy as np
import pytest

from repro.signals import (
    Waveform,
    WhiteNoise,
    add_awgn,
    snr_db,
    thermal_noise_rms,
)


def flat_wave(n=20000, fs=1e9):
    return Waveform(np.zeros(n), fs)


def test_white_noise_rms():
    noisy = WhiteNoise(rms_volts=3e-3, seed=3).apply(flat_wave())
    assert noisy.rms() == pytest.approx(3e-3, rel=0.05)


def test_white_noise_zero_is_identity():
    w = flat_wave(10)
    assert WhiteNoise(0.0).apply(w) is w


def test_white_noise_reproducible():
    a = WhiteNoise(1e-3, seed=5).apply(flat_wave(100))
    b = WhiteNoise(1e-3, seed=5).apply(flat_wave(100))
    np.testing.assert_array_equal(a.data, b.data)


def test_white_noise_rejects_negative():
    with pytest.raises(ValueError):
        WhiteNoise(-1.0)


def test_from_density():
    # 1 nV/rtHz over 10 GHz -> 100 uV RMS.
    source = WhiteNoise.from_density(1e-9, 10e9)
    assert source.rms_volts == pytest.approx(1e-4)


def test_from_density_rejects_bad_args():
    with pytest.raises(ValueError):
        WhiteNoise.from_density(-1e-9, 1e9)
    with pytest.raises(ValueError):
        WhiteNoise.from_density(1e-9, 0.0)


def test_thermal_noise_50ohm_10ghz():
    # sqrt(4kTRB): ~91 uV for 50 ohm over 10 GHz at 300 K.
    v = thermal_noise_rms(50.0, 10e9, temperature_k=300.0)
    expected = math.sqrt(4 * 1.380649e-23 * 300.0 * 50.0 * 10e9)
    assert v == pytest.approx(expected)
    assert 80e-6 < v < 100e-6


def test_thermal_noise_rejects_bad_args():
    with pytest.raises(ValueError):
        thermal_noise_rms(-1.0, 1e9)
    with pytest.raises(ValueError):
        thermal_noise_rms(50.0, 1e9, temperature_k=0.0)


def test_add_awgn_convenience():
    w = Waveform(np.ones(5000), 1e9)
    noisy = add_awgn(w, 0.1, seed=1)
    assert np.std(noisy.data - w.data) == pytest.approx(0.1, rel=0.1)


def test_snr_db():
    signal = Waveform(np.full(100, 0.1), 1e9)
    assert snr_db(signal, 0.01) == pytest.approx(20.0)


def test_snr_rejects_degenerate():
    with pytest.raises(ValueError):
        snr_db(Waveform(np.zeros(10), 1e9), 0.01)
    with pytest.raises(ValueError):
        snr_db(Waveform(np.ones(10), 1e9), 0.0)
