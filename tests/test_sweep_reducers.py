"""Streaming reducer layer: built-in reducer algebra (merge
associativity, chunking/order invariance), the runner's streaming
path (``reducers=`` / ``keep_results=False``), checkpoint integration
(fingerprint v3, partials-only journals), the LinkSession facade
passthrough, and the streaming reporting renderers.

Helpers are module-level so the pool tests can pickle them.
"""

import itertools
import random

import numpy as np
import pytest

from repro.lti import GainBlock
from repro.reporting import (format_aggregates, format_quantile_table,
                             render_histogram)
from repro.signals import Waveform
from repro.sweep import (Count, Histogram, MeanVar, MinMax, Quantiles,
                         ScenarioGrid, SweepAxis, SweepRunner, Yield)
from repro.sweep.reducers import describe_reducers

FS = 160e9


def stimulus(params):
    return Waveform(np.full(16, params["level"]), FS)


def build(params):
    return GainBlock(params["gain"])


def measure(wave, params):
    return float(wave.data[0])


def passes(value, params):
    return value > 1.0


LEVELS = tuple((i + 1) / 8 for i in range(8))


def make_grid():
    return ScenarioGrid([
        SweepAxis("gain", (2.0, 3.0), structural=True),
        SweepAxis("level", LEVELS),
    ])


def make_reducers():
    return {
        "n": Count(),
        "extrema": MinMax(),
        "mv": MeanVar(),
        "hist": Histogram(0.0, 3.5, n_bins=16),
        "q": Quantiles(qs=(0.1, 0.5, 0.9), lo=0.0, hi=3.5, n_bins=128),
        "yield": Yield(passes),
    }


def make_runner(**kwargs):
    defaults = dict(stimulus=stimulus, build=build, measure=measure,
                    retry_backoff_s=0.0)
    defaults.update(kwargs)
    return SweepRunner(make_grid(), **defaults)


DENSE_VALUES = np.array([g * level for g in (2.0, 3.0)
                         for level in LEVELS])


def finalized_equal(a, b, *, rtol=0.0):
    """Compare finalized aggregates, exact for integer-state reducers
    and within ``rtol`` for the floating MeanVar moments."""
    if isinstance(a, type(b)) and hasattr(a, "variance"):
        return (a.n == b.n
                and np.isclose(a.mean, b.mean, rtol=rtol, atol=0.0)
                and np.isclose(a.variance, b.variance, rtol=rtol,
                               atol=1e-300))
    if hasattr(a, "counts"):
        return (np.array_equal(a.counts, b.counts)
                and np.array_equal(a.edges, b.edges)
                and a.underflow == b.underflow
                and a.overflow == b.overflow)
    return a == b


# -- reducer algebra (property-style) -----------------------------------------

def chunked(values, params, sizes):
    """Split (values, params) into chunks cycling through ``sizes``."""
    chunks, i, k = [], 0, 0
    while i < len(values):
        size = sizes[k % len(sizes)]
        chunks.append((values[i:i + size], params[i:i + size]))
        i += size
        k += 1
    return chunks


@pytest.mark.parametrize("name", ["n", "extrema", "mv", "hist", "q",
                                  "yield"])
def test_reducer_is_merge_associative_and_chunking_invariant(name):
    """Every built-in must finalize to the same value no matter how the
    rows are chunked (chunk_rows 1 / 3 / 7 / all), how the partials are
    associated during the merge, or in what order units completed —
    exactly for integer-state reducers, ≤1e-9 relative for MeanVar."""
    reducer = make_reducers()[name]
    values = list(DENSE_VALUES)
    params = [{"i": i} for i in range(len(values))]
    rtol = 1e-9 if name == "mv" else 0.0

    references = None
    for sizes in ((1,), (3,), (7,), (len(values),), (1, 3, 7)):
        partials = [reducer.update(reducer.init(), vals, ps)
                    for vals, ps in chunked(values, params, sizes)]

        # Left fold, right fold, balanced tree: same finalized value.
        left = reducer.init()
        for partial in partials:
            left = reducer.merge(left, partial)
        right = reducer.init()
        for partial in reversed(partials):
            right = reducer.merge(partial, right)
        tree = list(partials)
        while len(tree) > 1:
            tree = [reducer.merge(tree[i], tree[i + 1])
                    if i + 1 < len(tree) else tree[i]
                    for i in range(0, len(tree), 2)]
        folds = [reducer.finalize(left), reducer.finalize(right),
                 reducer.finalize(tree[0])]

        # Shuffled completion order: merging the same partials in any
        # permutation is the pool's nondeterminism made explicit.
        rng = random.Random(17)
        for _ in range(4):
            shuffled = list(partials)
            rng.shuffle(shuffled)
            state = reducer.init()
            for partial in shuffled:
                state = reducer.merge(state, partial)
            folds.append(reducer.finalize(state))

        for other in folds[1:]:
            assert finalized_equal(folds[0], other, rtol=rtol), \
                f"{name}: fold mismatch under sizes {sizes}"
        if references is None:
            references = folds[0]
        else:
            assert finalized_equal(references, folds[0], rtol=rtol), \
                f"{name}: chunking {sizes} changed the aggregate"


def test_reducers_skip_quarantined_none_rows():
    values = [1.0, None, 3.0, None]
    params = [{"i": i} for i in range(4)]
    mv = MeanVar()
    n, mean, _ = mv.update(mv.init(), values, params)
    assert (n, mean) == (2, 2.0)
    counter = Count()
    assert counter.update(counter.init(), values, params) == 2
    tally = Yield(passes)
    assert tally.finalize(tally.update(tally.init(), values,
                                       params)).n_total == 2


def test_empty_sweep_finalizes_to_nan_not_crash():
    for name, reducer in make_reducers().items():
        final = reducer.finalize(reducer.init())
        if name == "n":
            assert final == 0
        elif name == "yield":
            assert final.n_total == 0 and np.isnan(final.fraction)
        elif name == "hist":
            assert final.n == 0
        elif name == "q":
            assert all(np.isnan(v) for v in final.values)
        else:
            assert final.n == 0 and np.isnan(final.mean
                                             if name == "mv"
                                             else final.min)


def test_histogram_out_of_range_and_quantile_interpolation():
    hist = Histogram(0.0, 1.0, n_bins=4)
    state = hist.update(hist.init(), [-1.0, 0.1, 0.3, 0.6, 0.9, 2.0],
                        [{}] * 6)
    final = hist.finalize(state)
    assert final.underflow == 1 and final.overflow == 1
    assert final.n == 6
    assert int(final.counts.sum()) == 4
    assert final.quantile(0.0) == 0.0
    assert final.quantile(1.0) == 1.0
    assert 0.0 <= final.quantile(0.5) <= 1.0
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        final.quantile(1.5)


def test_quantiles_result_lookup():
    q = Quantiles(qs=(0.5,), lo=0.0, hi=1.0)
    final = q.finalize(q.update(q.init(), [0.5] * 10, [{}] * 10))
    assert final[0.5] == pytest.approx(0.5, abs=1 / 256)
    with pytest.raises(KeyError, match="not requested"):
        final[0.9]


def test_extract_errors_name_the_scenario():
    mv = MeanVar(extract=lambda m, p: m["missing"])
    with pytest.raises(TypeError, match=r"level.*0.5"):
        mv.update(mv.init(), [1.0], [{"level": 0.5}])


def test_reducer_validation():
    with pytest.raises(ValueError, match="hi > lo"):
        Histogram(1.0, 0.0)
    with pytest.raises(ValueError, match="n_bins"):
        Histogram(0.0, 1.0, n_bins=0)
    with pytest.raises(ValueError, match="at least one quantile"):
        Quantiles(qs=())
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        Quantiles(qs=(1.5,))
    with pytest.raises(ValueError, match="predicate"):
        Yield()


def test_describe_reducers_is_stable_and_config_sensitive():
    assert describe_reducers(None) is None
    a = describe_reducers({"h": Histogram(0.0, 1.0, n_bins=8)})
    assert a == describe_reducers({"h": Histogram(0.0, 1.0, n_bins=8)})
    assert a != describe_reducers({"h": Histogram(0.0, 1.0, n_bins=9)})
    assert describe_reducers({"y": Yield(passes)}) \
        != describe_reducers({"y": Yield(lambda v, p: v > 2.0)})


# -- runner streaming path ----------------------------------------------------

def test_runner_validation_rejects_misuse():
    with pytest.raises(ValueError, match="keep_results=False without "
                                         "reducers"):
        make_runner(keep_results=False)
    with pytest.raises(ValueError, match="raw processed"):
        SweepRunner(make_grid(), stimulus=stimulus, build=build,
                    reducers=make_reducers())
    with pytest.raises(ValueError, match="at least one reducer"):
        make_runner(reducers={})
    with pytest.raises(TypeError, match="Reducer protocol"):
        make_runner(reducers={"bad": object()})


@pytest.mark.parametrize("chunk_rows", [1, 3, 7, None])
def test_streaming_aggregates_match_dense_run(chunk_rows):
    dense = make_runner().run()
    streaming = make_runner(chunk_rows=chunk_rows,
                            reducers=make_reducers(),
                            keep_results=False).run()
    values = np.asarray(dense.results, dtype=float)
    aggregates = streaming.aggregates
    # Exact for the integer-state reducers...
    assert aggregates["n"] == values.size
    assert aggregates["extrema"].min == values.min()
    assert aggregates["extrema"].max == values.max()
    assert aggregates["yield"].n_pass == int((values > 1.0).sum())
    assert aggregates["yield"].n_total == values.size
    dense_hist, _ = np.histogram(values, bins=aggregates["hist"].edges)
    assert np.array_equal(aggregates["hist"].counts, dense_hist)
    # ... ≤1e-9 relative for the Welford/Chan moments.
    assert aggregates["mv"].n == values.size
    assert np.isclose(aggregates["mv"].mean, values.mean(), rtol=1e-9)
    assert np.isclose(aggregates["mv"].variance, values.var(), rtol=1e-9)


def test_streaming_result_has_no_dense_rows():
    result = make_runner(chunk_rows=2, reducers=make_reducers(),
                         keep_results=False).run()
    assert result.results is None
    assert result.params is None
    assert len(result) == make_grid().n_scenarios
    with pytest.raises(ValueError, match="keep_results=False.*aggregates"):
        result.values(lambda r: r)


def test_dense_path_is_unchanged_alongside_reducers():
    reference = make_runner().run()
    both = make_runner(chunk_rows=3, reducers=make_reducers()).run()
    assert both.results == reference.results
    assert both.params == reference.params
    assert both.aggregates["n"] == len(reference)


def test_run_serial_supports_reducers_and_keep_results():
    dense = make_runner().run()
    serial = make_runner(reducers=make_reducers()).run_serial()
    assert serial.results == dense.results
    assert serial.aggregates["n"] == len(dense)
    lean = make_runner(reducers=make_reducers(),
                       keep_results=False).run_serial()
    assert lean.results is None
    assert np.isclose(lean.aggregates["mv"].mean,
                      serial.aggregates["mv"].mean, rtol=1e-9)


def test_pool_streaming_matches_inprocess():
    reference = make_runner(chunk_rows=2, reducers=make_reducers(),
                            keep_results=False).run()
    pooled = make_runner(chunk_rows=2, reducers=make_reducers(),
                         keep_results=False, processes=2).run()
    for name in reference.aggregates:
        assert finalized_equal(pooled.aggregates[name],
                               reference.aggregates[name]), name


def test_streaming_and_dense_journals_never_mix(tmp_path):
    dense = make_runner(chunk_rows=2)
    streaming = make_runner(chunk_rows=2, reducers=make_reducers(),
                            keep_results=False)
    assert dense._fingerprint()["version"] == 3
    assert dense._fingerprint() != streaming._fingerprint()
    dense.run(checkpoint_dir=tmp_path)
    streaming.run(checkpoint_dir=tmp_path)
    # Two distinct journal keys: a dense journal is never consumed by a
    # streaming run or vice versa.
    assert len(list(tmp_path.iterdir())) == 2
    # Different reducer configs also separate.
    rebinned = make_runner(chunk_rows=2,
                           reducers={"hist": Histogram(0.0, 3.5,
                                                       n_bins=32)},
                           keep_results=False)
    rebinned.run(checkpoint_dir=tmp_path)
    assert len(list(tmp_path.iterdir())) == 3


def test_streaming_checkpoint_replay_finalizes_identically(tmp_path):
    runner = make_runner(chunk_rows=2, reducers=make_reducers(),
                         keep_results=False)
    first = runner.run(checkpoint_dir=tmp_path)
    replay = runner.run(checkpoint_dir=tmp_path)
    for name in first.aggregates:
        assert finalized_equal(replay.aggregates[name],
                               first.aggregates[name]), name


# -- facade + reporting -------------------------------------------------------

def test_link_session_sweep_passes_reducers_through():
    from repro import ChannelConfig, LinkSession, TxConfig
    from repro.signals import bits_to_nrz, prbs7

    session = LinkSession.from_configs(tx=TxConfig(),
                                       channel=ChannelConfig(0.0),
                                       bit_rate=10e9)
    grid = ScenarioGrid([SweepAxis("amplitude", (0.2, 0.4, 0.8))])
    result = session.sweep(
        grid,
        stimulus=lambda p: bits_to_nrz(prbs7(48, seed=3), 10e9,
                                       amplitude=p["amplitude"],
                                       samples_per_bit=16),
        reducers={
            "height": MeanVar(extract=lambda r, p: r.eye.eye_height),
            "open": Yield(lambda r, p: r.eye.eye_height > 0.0),
        },
        keep_results=False,
    )
    assert result.results is None
    assert result.aggregates["height"].n == 3
    assert result.aggregates["open"].fraction == 1.0
    # Dense facade sweeps still carry no aggregates.
    dense = session.sweep(
        grid,
        stimulus=lambda p: bits_to_nrz(prbs7(48, seed=3), 10e9,
                                       amplitude=p["amplitude"],
                                       samples_per_bit=16))
    assert dense.aggregates is None and len(dense.results) == 3


def test_streaming_reporting_renders_without_per_row_data():
    result = make_runner(chunk_rows=2, reducers=make_reducers(),
                         keep_results=False).run()
    art = render_histogram(result.aggregates["hist"],
                           title="dc level", unit=" V")
    assert "dc level" in art and "16 in range" in art
    table = format_quantile_table(result.aggregates["q"], label="level")
    assert "p50" in table and "(n = 16)" in table
    summary = format_aggregates(result.aggregates)
    for name in result.aggregates:
        assert name in summary
    with pytest.raises(ValueError, match="no aggregates"):
        format_aggregates({})
    with pytest.raises(ValueError, match="edges"):
        render_histogram(type("Bad", (), {"edges": np.arange(3.0),
                                          "counts": np.ones(5)})())
