"""Tapered driver and level shifter (Fig 3)."""

import numpy as np
import pytest

from repro.core import build_output_interface
from repro.core.output_driver import LevelShifter, TaperedDriver
from repro.devices import nmos
from repro.signals import bits_to_nrz, prbs7


@pytest.fixture(scope="module")
def tx():
    return build_output_interface()


def test_taper_produces_8ma_final_stage(tx):
    assert tx.driver.output_current == pytest.approx(8e-3)


def test_stage_currents_double(tx):
    stages = tx.driver.stages()
    currents = [s.tail_current for s in stages]
    assert currents == pytest.approx([2e-3, 4e-3, 8e-3])


def test_stage_widths_double(tx):
    stages = tx.driver.stages()
    widths = [s.input_pair.width for s in stages]
    assert widths[1] == pytest.approx(2 * widths[0])
    assert widths[2] == pytest.approx(4 * widths[0])


def test_constant_overdrive_along_taper(tx):
    stages = tx.driver.stages()
    vovs = [s.input_pair.v_overdrive for s in stages]
    assert vovs[1] == pytest.approx(vovs[0], rel=1e-6)
    assert vovs[2] == pytest.approx(vovs[0], rel=1e-6)


def test_output_swing_into_terminated_line(tx):
    # 8 mA into 50||50 = 25 ohm: 200 mV single-ended, 400 mV diff pp.
    assert tx.driver.effective_load_ohm == pytest.approx(25.0)
    assert tx.driver.output_swing_pp == pytest.approx(0.200)
    assert tx.driver.differential_swing_pp == pytest.approx(0.400)


def test_driver_bandwidth_supports_10gbps(tx):
    assert tx.driver.bandwidth_3db() > 7e9


def test_driver_drives_prbs_to_full_swing(tx):
    wave = bits_to_nrz(prbs7(120), 10e9, amplitude=0.4, samples_per_bit=16)
    out = tx.driver.process(wave).skip(200)
    # Differential amplitude limit = I*R = 200 mV.
    assert out.peak_to_peak() == pytest.approx(0.4, rel=0.1)


def test_driver_small_signal_tf_stable(tx):
    assert tx.driver.small_signal_tf().is_stable()


def test_supply_current_is_taper_sum(tx):
    # 2 + 4 + 8 mA plus the feedback shares.
    total = tx.driver.supply_current
    assert 0.014 <= total <= 0.017


def test_taper_validation():
    first = build_output_interface().driver.first_stage
    with pytest.raises(ValueError):
        TaperedDriver(first_stage=first, taper_ratio=0.0)
    with pytest.raises(ValueError):
        TaperedDriver(first_stage=first, n_stages=0)
    with pytest.raises(ValueError):
        TaperedDriver(first_stage=first, line_impedance=-50.0)


def test_single_stage_driver():
    first = build_output_interface().driver.first_stage
    driver = TaperedDriver(first_stage=first, n_stages=1)
    assert driver.output_current == pytest.approx(first.tail_current)
    assert len(driver.stages()) == 1


# -- level shifter ----------------------------------------------------------

def test_level_shifter_gain_slightly_below_unity():
    shifter = LevelShifter(follower=nmos(20e-6, 0.18e-6, 0.5e-3))
    assert 0.8 <= shifter.gain < 1.0


def test_level_shifter_pole_above_data_band():
    shifter = LevelShifter(follower=nmos(20e-6, 0.18e-6, 0.5e-3))
    assert shifter.pole_hz > 10e9


def test_level_shifter_passes_waveform():
    shifter = LevelShifter(follower=nmos(20e-6, 0.18e-6, 0.5e-3))
    wave = bits_to_nrz(prbs7(60), 10e9, amplitude=0.2, samples_per_bit=16)
    out = shifter.process(wave).skip(100)
    assert out.peak_to_peak() == pytest.approx(
        shifter.gain * 0.2, rel=0.05
    )


def test_level_shifter_supply_current():
    shifter = LevelShifter(follower=nmos(20e-6, 0.18e-6, 0.5e-3))
    assert shifter.supply_current == pytest.approx(1e-3)
