"""Waveform container semantics."""

import numpy as np
import pytest

from repro.signals import DifferentialWaveform, Waveform


def make(data, fs=1e9, t0=0.0):
    return Waveform(np.asarray(data, dtype=float), fs, t0)


def test_basic_properties():
    w = make([0.0, 1.0, 2.0, 3.0], fs=4.0)
    assert len(w) == 4
    assert w.dt == pytest.approx(0.25)
    assert w.duration == pytest.approx(1.0)
    np.testing.assert_allclose(w.time, [0.0, 0.25, 0.5, 0.75])


def test_rejects_bad_sample_rate():
    with pytest.raises(ValueError):
        make([1.0], fs=0.0)


def test_rejects_2d_data():
    with pytest.raises(ValueError):
        Waveform(np.zeros((2, 2)), 1e9)


def test_statistics():
    w = make([-1.0, 1.0, -1.0, 1.0])
    assert w.peak_to_peak() == pytest.approx(2.0)
    assert w.rms() == pytest.approx(1.0)
    assert w.mean() == pytest.approx(0.0)


def test_empty_statistics_are_zero():
    w = make([])
    assert w.peak_to_peak() == 0.0
    assert w.rms() == 0.0
    assert w.mean() == 0.0


def test_addition_of_waveforms_and_scalars():
    a = make([1.0, 2.0])
    b = make([10.0, 20.0])
    np.testing.assert_allclose((a + b).data, [11.0, 22.0])
    np.testing.assert_allclose((a + 1.0).data, [2.0, 3.0])
    np.testing.assert_allclose((a - b).data, [-9.0, -18.0])
    np.testing.assert_allclose((2.0 * a).data, [2.0, 4.0])
    np.testing.assert_allclose((-a).data, [-1.0, -2.0])


def test_addition_rejects_mismatched_rates():
    a = make([1.0, 2.0], fs=1e9)
    b = make([1.0, 2.0], fs=2e9)
    with pytest.raises(ValueError):
        _ = a + b


def test_addition_rejects_mismatched_lengths():
    with pytest.raises(ValueError):
        _ = make([1.0, 2.0]) + make([1.0])


def test_clip():
    w = make([-2.0, 0.0, 2.0]).clip(-1.0, 1.0)
    np.testing.assert_allclose(w.data, [-1.0, 0.0, 1.0])
    with pytest.raises(ValueError):
        make([0.0]).clip(1.0, -1.0)


def test_slice_time():
    w = make(np.arange(10), fs=10.0)  # dt = 0.1 s
    part = w.slice_time(0.2, 0.5)
    np.testing.assert_allclose(part.data, [2.0, 3.0, 4.0])
    assert part.t0 == pytest.approx(0.2)


def test_skip():
    w = make(np.arange(5), fs=1.0)
    s = w.skip(2)
    np.testing.assert_allclose(s.data, [2.0, 3.0, 4.0])
    assert s.t0 == pytest.approx(2.0)
    # Skipping more than the length empties but doesn't raise.
    assert len(w.skip(99)) == 0
    with pytest.raises(ValueError):
        w.skip(-1)


def test_integer_delay_shifts_samples():
    w = make([1.0, 2.0, 3.0, 4.0], fs=1.0)
    d = w.delayed(2.0)
    np.testing.assert_allclose(d.data, [1.0, 1.0, 1.0, 2.0])


def test_fractional_delay_interpolates():
    w = make([0.0, 1.0, 2.0, 3.0], fs=1.0)
    d = w.delayed(0.5)
    # Linear interpolation between neighbours.
    np.testing.assert_allclose(d.data[1:], [0.5, 1.5, 2.5])


def test_zero_delay_is_identity():
    w = make([3.0, 1.0, 4.0])
    np.testing.assert_allclose(w.delayed(0.0).data, w.data)


def test_huge_delay_holds_first_value():
    w = make([5.0, 1.0, 2.0], fs=1.0)
    d = w.delayed(100.0)
    np.testing.assert_allclose(d.data, [5.0, 5.0, 5.0])


def test_resample_preserves_duration_and_values():
    w = make(np.sin(np.linspace(0, 2 * np.pi, 100)), fs=100.0)
    r = w.resampled(200.0)
    assert r.sample_rate == 200.0
    assert r.duration == pytest.approx(w.duration, rel=0.05)
    # A slow sine survives linear resampling.
    mid = np.interp(r.time, w.time, w.data)
    np.testing.assert_allclose(r.data, mid, atol=1e-9)


def test_resample_same_rate_is_identity():
    w = make([1.0, 2.0])
    assert w.resampled(w.sample_rate) is w


def test_map_applies_elementwise():
    w = make([1.0, -2.0]).map(np.abs)
    np.testing.assert_allclose(w.data, [1.0, 2.0])


# -- differential ------------------------------------------------------------

def test_differential_roundtrip():
    diff = make([0.2, -0.2, 0.2])
    pair = DifferentialWaveform.from_differential(diff, common_mode=0.9)
    np.testing.assert_allclose(pair.differential().data, diff.data)
    np.testing.assert_allclose(pair.common_mode().data, 0.9)


def test_differential_offset_moves_legs_not_cm():
    diff = make([0.0, 0.0])
    pair = DifferentialWaveform.from_differential(diff).with_offset(0.01)
    np.testing.assert_allclose(pair.differential().data, 0.01)
    np.testing.assert_allclose(pair.common_mode().data, 0.0, atol=1e-15)


def test_differential_map_each():
    diff = make([1.0, -1.0])
    pair = DifferentialWaveform.from_differential(diff)
    doubled = pair.map_each(lambda x: 2.0 * x)
    np.testing.assert_allclose(doubled.differential().data, [2.0, -2.0])


# -- interpolated sampling ----------------------------------------------------

def test_sample_at_matches_np_interp_inside_grid():
    rng = np.random.default_rng(2)
    w = make(rng.normal(size=32), fs=8.0, t0=0.5)
    times = np.linspace(0.6, 4.2, 40)
    np.testing.assert_allclose(w.sample_at(times),
                               np.interp(times, w.time, w.data),
                               rtol=0, atol=1e-15)


def test_sample_at_clamps_outside_grid():
    w = make([1.0, 2.0, 3.0], fs=1.0)
    assert float(w.sample_at(-5.0)) == 1.0
    assert float(w.sample_at(99.0)) == 3.0


def test_sample_at_scalar_and_exact_nodes():
    w = make([0.0, 1.0, 4.0, 9.0], fs=2.0)
    assert float(w.sample_at(0.5)) == 1.0
    assert float(w.sample_at(0.75)) == pytest.approx(2.5)


def test_sample_uniform_needs_two_samples():
    from repro.signals.waveform import sample_uniform

    with pytest.raises(ValueError):
        sample_uniform(np.array([1.0]), 0.0, 1.0, 0.0)
    with pytest.raises(ValueError):
        sample_uniform(np.zeros((2, 2, 2)), 0.0, 1.0, 0.0)
